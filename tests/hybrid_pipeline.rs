//! The batched hybrid screen→verify pipeline must be a deterministic
//! merge of its two tiers: rankings, quarantine sets, and health
//! telemetry bit-identical at any thread count, SPICE results from the
//! per-worker reusable circuits identical to fresh single-shot runs, and
//! the screening cache a pure memo — warm reruns simulate nothing and
//! change nothing.

use mtcmos_suite::circuits::adder::RippleAdder;
use mtcmos_suite::circuits::vectors::exhaustive_transitions;
use mtcmos_suite::core::health::{FailurePolicy, FaultPlan, SweepHealth};
use mtcmos_suite::core::hybrid::{
    run_hybrid, spice_delay_pair, HybridOptions, HybridReport, SpiceRunConfig,
};
use mtcmos_suite::core::sizing::{
    screen_vectors, size_for_target, size_for_target_cached, ScreeningCache, Transition,
};
use mtcmos_suite::core::vbsim::{Engine, VbsimOptions};
use mtcmos_suite::netlist::logic::bits_lsb_first;
use mtcmos_suite::netlist::tech::Technology;

const W_OVER_L: f64 = 10.0;

fn adder_transitions(stride: usize) -> Vec<Transition> {
    exhaustive_transitions(6)
        .into_iter()
        .step_by(stride)
        .map(|p| Transition::new(bits_lsb_first(p.from, 6), bits_lsb_first(p.to, 6)))
        .collect()
}

/// A coarse SPICE window keeps the verification tier affordable in tests
/// while still resolving the delays it measures.
fn test_spice_config() -> SpiceRunConfig {
    let mut cfg = SpiceRunConfig::window(40e-9);
    cfg.dt = 40e-9 / 250.0;
    cfg
}

fn assert_same_sweep_health(a: &SweepHealth, b: &SweepHealth, what: &str) {
    assert_eq!(a.items, b.items, "{what}: items");
    assert_eq!(a.completed, b.completed, "{what}: completed");
    assert_eq!(
        a.quarantined_indices(),
        b.quarantined_indices(),
        "{what}: quarantine set"
    );
    let retried = |h: &SweepHealth| h.quarantined.iter().map(|q| q.retried).collect::<Vec<_>>();
    assert_eq!(retried(a), retried(b), "{what}: quarantine retry flags");
    assert_eq!(a.retries, b.retries, "{what}: retries");
    assert_eq!(
        a.retry_successes, b.retry_successes,
        "{what}: retry successes"
    );
    assert_eq!(a.panics_recovered, b.panics_recovered, "{what}: panics");
    assert_eq!(a.runs, b.runs, "{what}: run counters");
}

fn run_at(threads: usize) -> HybridReport {
    let add = RippleAdder::paper();
    let tech = Technology::l07();
    let transitions = adder_transitions(31);
    let opts = HybridOptions {
        threads,
        top_k: 3,
        policy: FailurePolicy::quarantine(8),
        // One hard error, one transient overflow (retried), one worker
        // panic in the screening tier; one hard error on verification
        // candidate rank 1.
        fault: FaultPlan {
            error_at: vec![5],
            overflow_at: vec![9],
            panic_at: vec![12],
            ..FaultPlan::none()
        },
        verify_fault: FaultPlan {
            error_at: vec![1],
            ..FaultPlan::none()
        },
        ..HybridOptions::at_size(W_OVER_L, test_spice_config())
    };
    run_hybrid(&add.netlist, &tech, &transitions, &opts).expect("hybrid run")
}

#[test]
fn hybrid_report_is_bit_identical_at_any_thread_count() {
    let serial = run_at(1);

    // The injected faults must actually have fired, or the invariance
    // claim is vacuous.
    assert_eq!(serial.screen_health.quarantined_indices(), vec![5, 12]);
    assert_eq!(serial.screen_health.panics_recovered, 1);
    assert_eq!(serial.screen_health.retry_successes, 1);
    assert_eq!(serial.verify_health.quarantined_indices(), vec![1]);
    assert_eq!(serial.findings.len(), 3);
    assert!(serial.findings[0].verified.is_some());
    assert!(
        serial.findings[1].verified.is_none(),
        "quarantined candidate must have no verdict"
    );
    assert!(serial.findings[2].verified.is_some());
    // The screening tier really ranked: worst screened degradation first.
    assert!(serial.findings[0].screened.degradation() >= serial.findings[2].screened.degradation());
    // Screened-vs-verified deltas exist exactly where both tiers
    // measured a finite degradation (a stalled gate on either tier has
    // no meaningful signed error).
    for f in &serial.findings {
        let both_finite = f.screened.degradation().is_finite()
            && f.verified.is_some_and(|v| v.degradation().is_finite());
        assert_eq!(f.delta.is_some(), both_finite, "finding {}", f.index);
    }

    for threads in [2usize, 8] {
        let par = run_at(threads);
        assert_eq!(par.findings, serial.findings, "threads={threads}");
        assert_eq!(par.survivors, serial.survivors, "threads={threads}");
        assert_same_sweep_health(
            &par.screen_health,
            &serial.screen_health,
            &format!("screen, threads={threads}"),
        );
        assert_same_sweep_health(
            &par.verify_health,
            &serial.verify_health,
            &format!("verify, threads={threads}"),
        );
        let candidates =
            |r: &HybridReport| -> u64 { r.verify_workers.iter().map(|w| w.vectors).sum() };
        assert_eq!(candidates(&par), candidates(&serial), "threads={threads}");
    }
}

#[test]
fn hybrid_verification_matches_fresh_spice_runs() {
    // The per-worker circuits are reprogrammed between candidates
    // (replaced input waves, cleared+reapplied initial conditions); the
    // measurements must be indistinguishable from building a fresh
    // circuit per run.
    let add = RippleAdder::paper();
    let tech = Technology::l07();
    let transitions = adder_transitions(211);
    let cfg = test_spice_config();
    let opts = HybridOptions {
        top_k: 3,
        threads: 2,
        ..HybridOptions::at_size(W_OVER_L, cfg.clone())
    };
    let report = run_hybrid(&add.netlist, &tech, &transitions, &opts).expect("hybrid run");
    assert_eq!(report.findings.len(), 3);
    for f in &report.findings {
        let fresh = spice_delay_pair(
            &add.netlist,
            &tech,
            &transitions[f.index],
            None,
            W_OVER_L,
            &cfg,
        )
        .expect("fresh spice run");
        assert_eq!(f.verified, fresh, "candidate {}", f.index);
    }
}

#[test]
fn cached_sizing_rerun_is_free_and_bit_identical() {
    let add = RippleAdder::paper();
    let tech = Technology::l07();
    let engine = Engine::new(&add.netlist, &tech);
    let base = VbsimOptions::default();
    // The two worst screened transitions drive the sizing, as in the
    // paper's flow.
    let screened =
        screen_vectors(&engine, &adder_transitions(31), None, W_OVER_L, &base).expect("screen");
    let transitions = adder_transitions(31);
    let worst: Vec<Transition> = screened[..2]
        .iter()
        .map(|s| transitions[s.index].clone())
        .collect();

    let plain =
        size_for_target(&engine, &worst, None, 0.10, (1.0, 5000.0), &base).expect("plain sizing");

    let cache = ScreeningCache::new();
    let (cold, cold_health) =
        size_for_target_cached(&engine, &worst, None, 0.10, (1.0, 5000.0), &base, &cache)
            .expect("cold sizing");
    assert_eq!(cold, plain, "cache must not change the result");
    assert!(cold_health.cache_misses > 0);
    // Within one bisection each transition's CMOS baseline is computed
    // once and then served from the cache.
    assert!(cold_health.cache_hits > 0);

    let misses_before = cache.misses();
    let (warm, warm_health) =
        size_for_target_cached(&engine, &worst, None, 0.10, (1.0, 5000.0), &base, &cache)
            .expect("warm sizing");
    assert_eq!(warm, cold, "warm rerun must be bit-identical");
    assert_eq!(
        cache.misses(),
        misses_before,
        "warm rerun must perform zero redundant simulator runs"
    );
    assert_eq!(warm_health.cache_misses, 0);
    assert!(warm_health.cache_hits > 0);
    // The stored telemetry replays identically.
    assert_eq!(warm_health.breakpoints, cold_health.breakpoints);
    assert_eq!(warm_health.glitch_reversals, cold_health.glitch_reversals);
    assert_eq!(warm_health.vx_fallbacks, cold_health.vx_fallbacks);
}
