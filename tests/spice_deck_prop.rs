//! Deterministic property test of the SPICE deck round trip:
//! `to_deck` → `from_deck` must be the identity on canonical decks —
//! same device count, same node count, and a byte-exact serialization
//! fixpoint — over every golden design's expansion (CMOS and MTCMOS)
//! plus seeded random netlists spanning the full cell library, random
//! drives, ties, and extracted caps. No external property-testing
//! crate: trials come from `mtk_num::prng` streams, so a failure
//! reproduces from its trial number alone.

use mtcmos_suite::circuits::golden::golden_designs;
use mtcmos_suite::netlist::cell::CellKind;
use mtcmos_suite::netlist::expand::{expand, ExpandOptions};
use mtcmos_suite::netlist::logic::Logic;
use mtcmos_suite::netlist::netlist::Netlist;
use mtcmos_suite::netlist::tech::Technology;
use mtcmos_suite::num::prng::Xoshiro256pp;
use mtcmos_suite::spice::circuit::Circuit;
use mtcmos_suite::spice::deck::{from_deck_with_stats, to_deck};

const SEED: u64 = 0xDECC_1997;
const TRIALS: u64 = 64;

fn pick(rng: &mut Xoshiro256pp, n: usize) -> usize {
    (rng.next_u64() % n as u64) as usize
}

/// The round-trip property: parsing a canonical deck reproduces the
/// circuit (device and node population) and re-serializing is a
/// byte-exact fixpoint (which pins node names, device order, model
/// canonicalization, and every numeric parameter).
fn assert_deck_round_trip(circuit: &Circuit, label: &str) {
    let deck = to_deck(circuit, label);
    let (back, stats) = from_deck_with_stats(&deck)
        .unwrap_or_else(|e| panic!("{label}: canonical deck rejected: {e:?}"));
    assert!(
        !stats.title_skipped,
        "{label}: canonical decks open with a comment title"
    );
    assert_eq!(
        back.devices().len(),
        circuit.devices().len(),
        "{label}: device population"
    );
    assert_eq!(
        back.node_count(),
        circuit.node_count(),
        "{label}: node population"
    );
    assert_eq!(to_deck(&back, label), deck, "{label}: deck fixpoint");
}

#[test]
fn every_golden_expansion_round_trips_through_the_deck() {
    for (stem, design) in golden_designs() {
        for (tag, opts) in [
            ("cmos", ExpandOptions::cmos()),
            ("mtcmos", ExpandOptions::mtcmos(10.0)),
        ] {
            let ex = expand(&design.netlist, &design.tech, &opts)
                .unwrap_or_else(|e| panic!("{stem}/{tag}: {e}"));
            assert_deck_round_trip(&ex.circuit, &format!("{stem}/{tag}"));
        }
    }
}

/// A random acyclic netlist over the full cell library: 1–4 primary
/// inputs, an optional tied net, 1–12 gates with random fan-in chosen
/// from everything already readable, random drives and extracted caps.
fn random_design(trial: u64) -> (Netlist, Technology) {
    let mut rng = Xoshiro256pp::stream(SEED, trial);
    let tech = if rng.next_u64() & 1 == 0 {
        Technology::l07()
    } else {
        Technology::l03()
    };
    let mut nl = Netlist::new(&format!("prop{trial}"));
    let mut readable = Vec::new();
    for i in 0..1 + pick(&mut rng, 4) {
        let id = nl.add_net(&format!("i{i}")).unwrap();
        nl.mark_primary_input(id).unwrap();
        readable.push(id);
    }
    if rng.next_u64() & 1 == 0 {
        let id = nl.add_net("t0").unwrap();
        let level = if rng.next_u64() & 1 == 0 {
            Logic::Zero
        } else {
            Logic::One
        };
        nl.tie_net(id, level).unwrap();
        readable.push(id);
    }
    let kinds = CellKind::all();
    let mut last = None;
    for g in 0..1 + pick(&mut rng, 12) {
        let kind = kinds[pick(&mut rng, kinds.len())];
        let inputs: Vec<_> = (0..kind.n_inputs())
            .map(|_| readable[pick(&mut rng, readable.len())])
            .collect();
        let out = nl.add_net(&format!("n{g}")).unwrap();
        let drive = [1.0, 2.0, 4.0, 8.0][pick(&mut rng, 4)];
        nl.add_cell(&format!("g{g}"), kind, inputs, out, drive)
            .unwrap();
        if rng.next_u64() & 3 == 0 {
            nl.add_extra_cap(out, (1 + pick(&mut rng, 40)) as f64 * 1e-15);
        }
        readable.push(out);
        last = Some(out);
    }
    nl.mark_primary_output(last.expect("at least one gate"));
    (nl, tech)
}

#[test]
fn seeded_random_expansions_round_trip_through_the_deck() {
    for trial in 0..TRIALS {
        let (nl, tech) = random_design(trial);
        let mut rng = Xoshiro256pp::stream(SEED ^ 0xA5A5, trial);
        let opts = if rng.next_u64() & 1 == 0 {
            ExpandOptions::cmos()
        } else {
            ExpandOptions::mtcmos(1.0 + pick(&mut rng, 200) as f64 / 4.0)
        };
        let ex = expand(&nl, &tech, &opts).unwrap_or_else(|e| panic!("trial {trial}: {e}"));
        assert_deck_round_trip(&ex.circuit, &format!("trial {trial}"));
    }
}
