//! The fault-tolerant sweep contract: injected failures — overflows,
//! structured errors, outright worker panics — must be quarantined
//! deterministically. The quarantine set and every *surviving* result
//! must be bit-identical at any thread count, and identical to the
//! fault-free run minus the condemned indices. A panic inside one work
//! item must never take down the process.

use mtcmos_suite::circuits::adder::RippleAdder;
use mtcmos_suite::circuits::vectors::exhaustive_transitions;
use mtcmos_suite::core::health::{FailurePolicy, FaultPlan};
use mtcmos_suite::core::search::{search_worst_vector, SearchOptions};
use mtcmos_suite::core::sizing::{
    screen_vectors_par_quarantined, screen_vectors_quarantined, ScreenedVector, Transition,
};
use mtcmos_suite::core::vbsim::{Engine, SleepNetwork, VbsimOptions};
use mtcmos_suite::core::CoreError;
use mtcmos_suite::netlist::logic::bits_lsb_first;
use mtcmos_suite::netlist::tech::Technology;

const W_OVER_L: f64 = 10.0;

fn adder_transitions(n: usize) -> Vec<Transition> {
    exhaustive_transitions(6)
        .into_iter()
        .take(n)
        .map(|p| Transition::new(bits_lsb_first(p.from, 6), bits_lsb_first(p.to, 6)))
        .collect()
}

/// panic at 3, structured error at 5, transient overflow at 7 (recovers
/// via the relaxed-budget retry), persistent overflow at 9 (retried,
/// then quarantined).
fn faults() -> FaultPlan {
    FaultPlan {
        panic_at: vec![3],
        error_at: vec![5],
        overflow_at: vec![7],
        persistent_overflow_at: vec![9],
        ..FaultPlan::default()
    }
}

fn assert_same_survivors(faulted: &[ScreenedVector], reference: &[ScreenedVector], ctx: &str) {
    assert_eq!(faulted.len(), reference.len(), "{ctx}: survivor count");
    for (f, r) in faulted.iter().zip(reference) {
        assert_eq!(f.index, r.index, "{ctx}: ranking order");
        assert_eq!(
            f.delays.cmos.to_bits(),
            r.delays.cmos.to_bits(),
            "{ctx}: cmos delay not bit-identical at index {}",
            f.index
        );
        assert_eq!(
            f.delays.mtcmos.to_bits(),
            r.delays.mtcmos.to_bits(),
            "{ctx}: mtcmos delay not bit-identical at index {}",
            f.index
        );
    }
}

#[test]
fn quarantine_set_and_survivors_are_thread_count_invariant() {
    let add = RippleAdder::paper();
    let tech = Technology::l07();
    let transitions = adder_transitions(32);
    let base = VbsimOptions::default();

    // Fault-free reference, minus the indices the plan will condemn.
    let engine = Engine::new(&add.netlist, &tech);
    let (clean, clean_health) = screen_vectors_quarantined(
        &engine,
        &transitions,
        None,
        W_OVER_L,
        &base,
        FailurePolicy::FailFast,
        &FaultPlan::none(),
    )
    .expect("fault-free screen");
    assert!(clean_health.is_clean());
    let reference: Vec<ScreenedVector> = clean
        .into_iter()
        .filter(|e| ![3usize, 5, 9].contains(&e.index))
        .collect();

    for threads in [1usize, 2, 8] {
        let (screened, report) = screen_vectors_par_quarantined(
            &add.netlist,
            &tech,
            &transitions,
            None,
            W_OVER_L,
            &base,
            threads,
            FailurePolicy::quarantine(8),
            &faults(),
        )
        .unwrap_or_else(|e| panic!("threads={threads}: {e}"));
        let ctx = format!("threads={threads}");

        assert_eq!(
            report.health.quarantined_indices(),
            vec![3, 5, 9],
            "{ctx}: quarantine set"
        );
        // Index 7's transient overflow and index 9's persistent overflow
        // each trigger the relaxed-budget retry; only 7's succeeds.
        assert_eq!(report.health.retries, 2, "{ctx}: retries");
        assert_eq!(report.health.retry_successes, 1, "{ctx}: retry successes");
        assert_eq!(report.health.panics_recovered, 1, "{ctx}: panics recovered");
        assert_eq!(report.health.items, transitions.len());
        assert_eq!(report.health.completed, transitions.len() - 3);
        let q9 = report
            .health
            .quarantined
            .iter()
            .find(|q| q.index == 9)
            .expect("index 9 quarantined");
        assert!(q9.retried, "{ctx}: persistent overflow must be retried");
        assert!(
            matches!(q9.error, CoreError::EventOverflow { .. }),
            "{ctx}: {:?}",
            q9.error
        );

        assert_same_survivors(&screened, &reference, &ctx);
    }

    // The serial quarantining screener agrees with the parallel one.
    let (serial, serial_health) = screen_vectors_quarantined(
        &engine,
        &transitions,
        None,
        W_OVER_L,
        &base,
        FailurePolicy::quarantine(8),
        &faults(),
    )
    .expect("serial quarantining screen");
    assert_eq!(serial_health.quarantined_indices(), vec![3, 5, 9]);
    assert_same_survivors(&serial, &reference, "serial");
}

#[test]
fn fail_fast_surfaces_a_worker_panic_without_aborting() {
    let add = RippleAdder::paper();
    let tech = Technology::l07();
    let transitions = adder_transitions(8);
    let err = screen_vectors_par_quarantined(
        &add.netlist,
        &tech,
        &transitions,
        None,
        W_OVER_L,
        &VbsimOptions::default(),
        2,
        FailurePolicy::FailFast,
        &FaultPlan {
            panic_at: vec![3],
            ..FaultPlan::default()
        },
    )
    .expect_err("panic must fail the sweep under FailFast");
    match err {
        CoreError::WorkerPanic { index, message } => {
            assert_eq!(index, 3);
            assert!(message.contains("injected panic"), "{message}");
        }
        other => panic!("expected WorkerPanic, got {other:?}"),
    }
}

#[test]
fn quarantine_cap_aborts_with_too_many_failures() {
    let add = RippleAdder::paper();
    let tech = Technology::l07();
    let transitions = adder_transitions(12);
    let err = screen_vectors_par_quarantined(
        &add.netlist,
        &tech,
        &transitions,
        None,
        W_OVER_L,
        &VbsimOptions::default(),
        2,
        FailurePolicy::quarantine(2),
        &FaultPlan {
            error_at: vec![1, 4, 6],
            ..FaultPlan::default()
        },
    )
    .expect_err("three failures must blow a cap of two");
    match err {
        CoreError::TooManyFailures {
            failures,
            max_failures,
        } => {
            assert_eq!((failures, max_failures), (3, 2));
        }
        other => panic!("expected TooManyFailures, got {other:?}"),
    }
}

#[test]
fn faulted_search_is_thread_count_invariant() {
    let add = RippleAdder::paper();
    let tech = Technology::l07();
    let engine = Engine::new(&add.netlist, &tech);
    let run = |threads: usize| {
        search_worst_vector(
            &engine,
            &SearchOptions {
                random_samples: 16,
                restarts: 1,
                max_passes: 2,
                threads,
                policy: FailurePolicy::quarantine(8),
                fault: FaultPlan {
                    panic_at: vec![2],
                    error_at: vec![5],
                    ..FaultPlan::default()
                },
                ..SearchOptions::at_sleep(SleepNetwork::Transistor { w_over_l: W_OVER_L })
            },
        )
        .expect("faulted search must still produce a result")
    };
    let serial = run(1);
    assert_eq!(serial.health.quarantined_indices(), vec![2, 5]);
    assert_eq!(serial.health.panics_recovered, 1);
    for threads in [2usize, 8] {
        let par = run(threads);
        assert_eq!(par.transition, serial.transition, "threads={threads}");
        assert_eq!(
            par.degradation.to_bits(),
            serial.degradation.to_bits(),
            "threads={threads}"
        );
        assert_eq!(
            par.health.quarantined_indices(),
            serial.health.quarantined_indices(),
            "threads={threads}"
        );
        assert_eq!(
            par.health.panics_recovered, serial.health.panics_recovered,
            "threads={threads}"
        );
    }
}
