//! Integration tests pinning the paper's qualitative claims — the
//! "shape" results every figure depends on — at test-sized problem
//! scales.

use mtcmos_suite::circuits::adder::RippleAdder;
use mtcmos_suite::circuits::multiplier::ArrayMultiplier;
use mtcmos_suite::circuits::tree::InverterTree;
use mtcmos_suite::circuits::vectors::{multiplier_vector_a, multiplier_vector_b};
use mtcmos_suite::core::sizing::{vbsim_delay_pair, Transition};
use mtcmos_suite::core::vbsim::{Engine, SleepNetwork, VbsimOptions};
use mtcmos_suite::netlist::logic::{bits_lsb_first, Logic};
use mtcmos_suite::netlist::tech::Technology;

/// §2.1: only the high-to-low transition is affected by an NMOS sleep
/// transistor.
#[test]
fn nmos_sleep_only_slows_discharge() {
    let tree = InverterTree::paper();
    let tech = Technology::l07();
    let engine = Engine::new(&tree.netlist, &tech);
    // Probe the *output inverter* of stage 1 (rising for a rising input)
    // vs stage 2 leaves (falling).
    let rising_net = [tree.stage_outputs[1][0]];
    let tr = Transition::new(vec![Logic::Zero], vec![Logic::One]);
    let sleep = SleepNetwork::Transistor { w_over_l: 4.0 };
    let base = VbsimOptions::default();
    let rise = vbsim_delay_pair(&engine, &tr, Some(&rising_net), sleep, &base)
        .unwrap()
        .unwrap();
    let fall = vbsim_delay_pair(&engine, &tr, None, sleep, &base)
        .unwrap()
        .unwrap();
    // The rising stage-1 node is still *indirectly* slowed (its driver's
    // input edge came from a discharging gate), so compare degradations.
    assert!(
        fall.degradation() > rise.degradation(),
        "discharge {:.3} vs charge-path {:.3}",
        fall.degradation(),
        rise.degradation()
    );
}

/// §4: two vectors with the same conventional-CMOS delay can have very
/// different MTCMOS delay, and vector A (mass discharge) is the bad one.
#[test]
fn multiplier_vector_a_degrades_more_than_b() {
    let m = ArrayMultiplier::paper();
    let tech = Technology::l03();
    let engine = Engine::new(&m.netlist, &tech);
    let bits = 16;
    let tr_a = Transition::new(
        bits_lsb_first(multiplier_vector_a().from, bits),
        bits_lsb_first(multiplier_vector_a().to, bits),
    );
    let tr_b = Transition::new(
        bits_lsb_first(multiplier_vector_b().from, bits),
        bits_lsb_first(multiplier_vector_b().to, bits),
    );
    let sleep = SleepNetwork::Transistor { w_over_l: 60.0 };
    let base = VbsimOptions::default();
    let a = vbsim_delay_pair(&engine, &tr_a, None, sleep, &base)
        .unwrap()
        .unwrap();
    let b = vbsim_delay_pair(&engine, &tr_b, None, sleep, &base)
        .unwrap()
        .unwrap();
    // Same CMOS delay (within 5%)...
    assert!(
        (a.cmos - b.cmos).abs() / a.cmos < 0.05,
        "CMOS delays {:.3e} vs {:.3e}",
        a.cmos,
        b.cmos
    );
    // ...but a much larger MTCMOS penalty for A.
    assert!(
        a.degradation() > 1.5 * b.degradation(),
        "A {:.3} vs B {:.3}",
        a.degradation(),
        b.degradation()
    );
}

/// Table 1 shape: degradation decreasing in W/L, by large factors.
#[test]
fn multiplier_degradation_shrinks_with_size() {
    let m = ArrayMultiplier::paper();
    let tech = Technology::l03();
    let engine = Engine::new(&m.netlist, &tech);
    let bits = 16;
    let tr = Transition::new(
        bits_lsb_first(multiplier_vector_a().from, bits),
        bits_lsb_first(multiplier_vector_a().to, bits),
    );
    let base = VbsimOptions::default();
    let mut degradations = Vec::new();
    for wl in [60.0, 170.0, 500.0] {
        let p = vbsim_delay_pair(
            &engine,
            &tr,
            None,
            SleepNetwork::Transistor { w_over_l: wl },
            &base,
        )
        .unwrap()
        .unwrap();
        degradations.push(p.degradation());
    }
    assert!(degradations[0] > degradations[1] && degradations[1] > degradations[2]);
    // Rough Table 1 magnitudes: double-digit at 60, low single digit at 500.
    assert!(degradations[0] > 0.06, "{degradations:?}");
    assert!(degradations[2] < 0.05, "{degradations:?}");
}

/// §6.2: the exhaustive adder sweep is cheap for the switch-level
/// simulator (the whole reason the tool exists).
#[test]
fn exhaustive_adder_sweep_is_fast_and_settles_correctly() {
    let add = RippleAdder::paper();
    let tech = Technology::l07();
    let engine = Engine::new(&add.netlist, &tech);
    let opts = VbsimOptions::mtcmos(10.0);
    let start = std::time::Instant::now();
    for from in 0..64u64 {
        for to in (0..64u64).step_by(7) {
            let (a0, b0) = (from & 7, from >> 3);
            let (a1, b1) = (to & 7, to >> 3);
            let run = engine
                .run(&add.input_values(a0, b0), &add.input_values(a1, b1), &opts)
                .unwrap();
            assert!(!run.stalled, "stalled on {from}->{to}");
            // Spot-check the final state on the carry-out bit.
            let expect = (a1 + b1) >> 3 == 1;
            let v = run.waveform(add.cout).final_value().unwrap();
            assert_eq!(v > tech.v_switch(), expect, "{a1}+{b1}");
        }
    }
    // 64*10 vectors well under a second even in debug CI.
    assert!(start.elapsed().as_secs() < 60);
}

/// The transistor budget of the paper's circuits.
#[test]
fn transistor_budgets_match_paper() {
    assert_eq!(RippleAdder::paper().netlist.total_transistors(), 3 * 28);
    let m = ArrayMultiplier::paper();
    // 64 AND gates (6T) + 64 mirror FAs (28T).
    assert_eq!(m.netlist.total_transistors(), 64 * 6 + 64 * 28);
    assert_eq!(InverterTree::paper().netlist.total_transistors(), 26);
}
