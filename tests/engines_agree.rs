//! Cross-engine integration tests: the switch-level simulator must track
//! the transistor-level engine's *trends* (the Figs 10/13/14 validation),
//! at test-sized scales.

use mtcmos_suite::circuits::adder::{AdderSpec, RippleAdder};
use mtcmos_suite::circuits::tree::{InverterTree, TreeSpec};
use mtcmos_suite::core::hybrid::{spice_delay_pair, spice_transition, SpiceRunConfig};
use mtcmos_suite::core::sizing::{vbsim_delay_pair, Transition};
use mtcmos_suite::core::vbsim::{Engine, SleepNetwork, VbsimOptions};
use mtcmos_suite::netlist::expand::SleepImpl;
use mtcmos_suite::netlist::logic::Logic;
use mtcmos_suite::netlist::tech::Technology;

fn small_tree() -> InverterTree {
    InverterTree::new(&TreeSpec {
        fanout: 2,
        stages: 2,
        load_cap: 30e-15,
        drive: 1.0,
    })
    .unwrap()
}

/// Both engines agree that delay decreases with sleep W/L, and their
/// per-size ordering of two sizes matches.
#[test]
fn delay_vs_size_trends_match() {
    let tree = small_tree();
    let tech = Technology::l07();
    let engine = Engine::new(&tree.netlist, &tech);
    let tr = Transition::new(vec![Logic::Zero], vec![Logic::One]);
    let cfg = SpiceRunConfig::window(60e-9);
    let mut spice = Vec::new();
    let mut vbsim = Vec::new();
    for wl in [3.0, 8.0, 20.0] {
        let sp = spice_delay_pair(&tree.netlist, &tech, &tr, None, wl, &cfg)
            .unwrap()
            .unwrap();
        let vb = vbsim_delay_pair(
            &engine,
            &tr,
            None,
            SleepNetwork::Transistor { w_over_l: wl },
            &VbsimOptions::default(),
        )
        .unwrap()
        .unwrap();
        spice.push(sp.mtcmos);
        vbsim.push(vb.mtcmos);
    }
    assert!(spice[0] > spice[1] && spice[1] > spice[2], "{spice:?}");
    assert!(vbsim[0] > vbsim[1] && vbsim[1] > vbsim[2], "{vbsim:?}");
}

/// Virtual-ground bounce: the simulator's stepwise peak approximates the
/// SPICE peak within a factor of two at moderate sizes.
#[test]
fn vgnd_peaks_comparable() {
    let tree = small_tree();
    let tech = Technology::l07();
    let engine = Engine::new(&tree.netlist, &tech);
    let tr = Transition::new(vec![Logic::Zero], vec![Logic::One]);
    let wl = 4.0;
    let sp = spice_transition(
        &tree.netlist,
        &tech,
        &tr,
        None,
        SleepImpl::Transistor { w_over_l: wl },
        &SpiceRunConfig::window(60e-9),
    )
    .unwrap();
    let sp_peak = sp.vgnd.unwrap().max_value().unwrap();
    let vb = engine
        .run(&tr.from, &tr.to, &VbsimOptions::mtcmos(wl))
        .unwrap();
    let vb_peak = vb.peak_vgnd();
    assert!(sp_peak > 0.0 && vb_peak > 0.0);
    let ratio = vb_peak / sp_peak;
    assert!((0.5..2.0).contains(&ratio), "peaks {sp_peak} vs {vb_peak}");
}

/// On a 2-bit adder, both engines rank a mass-discharge vector above a
/// single-bit ripple vector.
#[test]
fn vector_ordering_matches_across_engines() {
    let add = RippleAdder::new(&AdderSpec {
        bits: 2,
        ..AdderSpec::default()
    })
    .unwrap();
    let tech = Technology::l07();
    let engine = Engine::new(&add.netlist, &tech);
    // Heavy: everything flips downward. Light: one input bit rises.
    let heavy = Transition::new(add.input_values(3, 3), add.input_values(0, 0));
    let light = Transition::new(add.input_values(0, 0), add.input_values(1, 0));
    let wl = 3.0;
    let cfg = SpiceRunConfig::window(80e-9);
    let base = VbsimOptions::default();
    let sleep = SleepNetwork::Transistor { w_over_l: wl };
    let sp_heavy = spice_delay_pair(&add.netlist, &tech, &heavy, None, wl, &cfg)
        .unwrap()
        .unwrap();
    let sp_light = spice_delay_pair(&add.netlist, &tech, &light, None, wl, &cfg)
        .unwrap()
        .unwrap();
    let vb_heavy = vbsim_delay_pair(&engine, &heavy, None, sleep, &base)
        .unwrap()
        .unwrap();
    let vb_light = vbsim_delay_pair(&engine, &light, None, sleep, &base)
        .unwrap()
        .unwrap();
    assert!(
        sp_heavy.degradation() > sp_light.degradation(),
        "spice: {:.4} vs {:.4}",
        sp_heavy.degradation(),
        sp_light.degradation()
    );
    assert!(
        vb_heavy.degradation() > vb_light.degradation(),
        "vbsim: {:.4} vs {:.4}",
        vb_heavy.degradation(),
        vb_light.degradation()
    );
}

/// The SPICE engine's settled logic state matches the gate-level
/// evaluator for an adder vector (end-to-end functional agreement).
#[test]
fn spice_settles_to_logic_state() {
    let add = RippleAdder::new(&AdderSpec {
        bits: 2,
        ..AdderSpec::default()
    })
    .unwrap();
    let tech = Technology::l07();
    let tr = Transition::new(add.input_values(0, 1), add.input_values(3, 2));
    let res = spice_transition(
        &add.netlist,
        &tech,
        &tr,
        None,
        SleepImpl::Transistor { w_over_l: 8.0 },
        &SpiceRunConfig::window(80e-9),
    )
    .unwrap();
    let expect = add.netlist.evaluate(&tr.to).unwrap();
    let probes = add.netlist.primary_outputs();
    for (k, w) in res.probe_waveforms.iter().enumerate() {
        let v = w.final_value().unwrap();
        let want = expect[probes[k].index()].to_bool().unwrap();
        assert_eq!(v > tech.v_switch(), want, "output {k} at {v} V");
    }
}
