//! The observability contract (DESIGN.md §10), pinned end to end:
//!
//! 1. The deterministic trace export is **byte-identical at any thread
//!    count**, including under injected faults — the PR 1 determinism
//!    contract extended to telemetry.
//! 2. The JSON schema is **golden**: any change to the set of key paths
//!    without a `SCHEMA_VERSION` bump fails a test.
//! 3. The two experiment binaries share **one footer/JSON renderer**:
//!    reports built the way `ext_screening` and `ext_search` build them
//!    produce structurally identical schemas and footer line shapes.

use mtcmos_suite::circuits::adder::RippleAdder;
use mtcmos_suite::circuits::vectors::exhaustive_transitions;
use mtcmos_suite::core::health::{FailurePolicy, FaultPlan};
use mtcmos_suite::core::sizing::{screen_vectors_par_quarantined, Transition};
use mtcmos_suite::core::vbsim::VbsimOptions;
use mtcmos_suite::netlist::logic::bits_lsb_first;
use mtcmos_suite::netlist::tech::Technology;
use mtcmos_suite::trace::json::{parse, validate_report, JsonValue};
use mtcmos_suite::trace::{
    CounterId, PhaseTrace, Span, TraceMode, TraceReport, WorkerTrace, SCHEMA_VERSION,
};
use std::collections::BTreeSet;

const W_OVER_L: f64 = 10.0;

fn adder_transitions(n: usize) -> Vec<Transition> {
    exhaustive_transitions(6)
        .into_iter()
        .take(n)
        .map(|p| Transition::new(bits_lsb_first(p.from, 6), bits_lsb_first(p.to, 6)))
        .collect()
}

/// Screens the adder under an injected fault plan and returns the
/// deterministic-mode trace JSON.
fn faulted_screen_trace(threads: usize) -> String {
    let add = RippleAdder::paper();
    let tech = Technology::l07();
    let transitions = adder_transitions(48);
    let faults = FaultPlan {
        panic_at: vec![3],
        error_at: vec![5, 21],
        overflow_at: vec![7],
        persistent_overflow_at: vec![9, 30],
        ..FaultPlan::default()
    };
    let (_screened, report) = screen_vectors_par_quarantined(
        &add.netlist,
        &tech,
        &transitions,
        None,
        W_OVER_L,
        &VbsimOptions::default(),
        threads,
        FailurePolicy::quarantine(8),
        &faults,
    )
    .expect("screen");
    let mut trace = TraceReport::new("trace_determinism");
    trace.push_phase(report.to_phase("screen"));
    trace.to_json(TraceMode::Deterministic)
}

#[test]
fn deterministic_trace_is_byte_identical_across_thread_counts() {
    let serial = faulted_screen_trace(1);
    validate_report(&serial).expect("serial trace validates");
    // The quarantine set must actually be exercised, or this test pins
    // nothing interesting.
    assert!(serial.contains("\"quarantined\": ["));
    for threads in [2usize, 8] {
        let par = faulted_screen_trace(threads);
        assert_eq!(
            par, serial,
            "deterministic trace differs at threads={threads}"
        );
    }
}

/// Collects every structural key path of a JSON value: object members
/// become `prefix.key`, array elements collapse to `prefix[]`.
fn key_paths(value: &JsonValue, prefix: &str, out: &mut BTreeSet<String>) {
    match value {
        JsonValue::Object(members) => {
            for (key, child) in members {
                let path = if prefix.is_empty() {
                    key.clone()
                } else {
                    format!("{prefix}.{key}")
                };
                out.insert(path.clone());
                key_paths(child, &path, out);
            }
        }
        JsonValue::Array(items) => {
            let path = format!("{prefix}[]");
            for item in items {
                key_paths(item, &path, out);
            }
        }
        _ => {}
    }
}

fn paths_of(json: &str) -> BTreeSet<String> {
    let value = parse(json).expect("parse");
    let mut out = BTreeSet::new();
    key_paths(&value, "", &mut out);
    out
}

/// A report exercising every schema feature: two phases, quarantined
/// items, workers, and a nested span.
fn exhaustive_sample(tool: &str) -> TraceReport {
    let mut screen = PhaseTrace::new("screen").with_wall(0.25);
    for id in CounterId::ALL {
        screen.counters.add(*id, 1);
    }
    screen.quarantined.extend([3, 9]);
    screen.breakpoints_per_item.record(42);
    screen.workers.push(WorkerTrace {
        worker: 0,
        items: 10,
        breakpoints: 420,
        busy_s: 0.2,
    });
    let mut verify = PhaseTrace::new("verify").with_wall(1.0);
    verify.counters.add(CounterId::Items, 2);
    let mut mc = PhaseTrace::new("mc").with_wall(0.5);
    mc.counters.add(CounterId::McTrials, 64);
    let mut degr = mtcmos_suite::trace::Histogram::new();
    degr.record(480);
    mc.extra_histograms.push(("mc_degradation_bp".into(), degr));
    let mut bounce = mtcmos_suite::trace::Histogram::new();
    bounce.record(48);
    mc.extra_histograms.push(("mc_bounce_mv".into(), bounce));
    let mut cluster = PhaseTrace::new("cluster").with_wall(0.1);
    cluster.counters.add(CounterId::Clusters, 4);
    let mut widths = mtcmos_suite::trace::Histogram::new();
    widths.record(23);
    cluster
        .extra_histograms
        .push(("cluster_w_over_l".into(), widths));
    let mut report = TraceReport::new(tool);
    report.push_phase(screen);
    report.push_phase(verify);
    report.push_phase(mc);
    report.push_phase(cluster);
    report.spans.push(Span {
        name: "run".into(),
        wall_s: 1.25,
        children: vec![Span {
            name: "screen".into(),
            wall_s: 0.25,
            children: Vec::new(),
        }],
    });
    report
}

/// Every key path of schema v6, spelled out by hand. Adding, removing or
/// renaming any key changes this set; doing so without bumping
/// [`SCHEMA_VERSION`] (and updating this golden list) is a contract
/// violation.
fn golden_v6_paths() -> BTreeSet<String> {
    let counters = [
        "items",
        "completed",
        "quarantined",
        "retries",
        "retry_successes",
        "panics_recovered",
        "breakpoints",
        "max_events",
        "glitch_reversals",
        "vx_fallbacks",
        "cache_hits",
        "cache_misses",
        "gmin_fallback_stages",
        "dt_halvings",
        "newton_iterations",
        "spice_steps",
        "lu_pattern_reuses",
        "store_hits",
        "store_misses",
        "store_corrupt_records",
        "conn_timeouts",
        "requests_rejected",
        "mc_trials",
        "mc_passed",
        "mc_p50_degr_bp",
        "mc_p95_degr_bp",
        "mc_p99_degr_bp",
        "mc_p99_bounce_uv",
        "clusters",
        "cluster_conflicts",
        "cluster_folds",
        "cluster_fallbacks",
        "import_cards",
        "import_subckts_flattened",
        "import_gates_recognized",
        "import_fallbacks",
        "wave_raw_points",
        "wave_vcd_changes",
    ];
    let mut golden: BTreeSet<String> = [
        "schema",
        "schema.name",
        "schema.version",
        "tool",
        "deterministic",
        "phases",
        "phases[].name",
        "phases[].counters",
        "phases[].histograms",
        "phases[].histograms.breakpoints_per_item",
        "phases[].histograms.breakpoints_per_item.count",
        "phases[].histograms.breakpoints_per_item.sum",
        "phases[].histograms.breakpoints_per_item.buckets",
        "phases[].histograms.mc_degradation_bp",
        "phases[].histograms.mc_degradation_bp.count",
        "phases[].histograms.mc_degradation_bp.sum",
        "phases[].histograms.mc_degradation_bp.buckets",
        "phases[].histograms.mc_bounce_mv",
        "phases[].histograms.mc_bounce_mv.count",
        "phases[].histograms.mc_bounce_mv.sum",
        "phases[].histograms.mc_bounce_mv.buckets",
        "phases[].histograms.cluster_w_over_l",
        "phases[].histograms.cluster_w_over_l.count",
        "phases[].histograms.cluster_w_over_l.sum",
        "phases[].histograms.cluster_w_over_l.buckets",
        "phases[].quarantined",
        "totals",
        "totals.counters",
        "timing",
        "timing.phases",
        "timing.phases[].name",
        "timing.phases[].wall_s",
        "timing.phases[].workers",
        "timing.phases[].workers[].worker",
        "timing.phases[].workers[].items",
        "timing.phases[].workers[].breakpoints",
        "timing.phases[].workers[].busy_s",
        "timing.spans",
        "timing.spans[].name",
        "timing.spans[].wall_s",
        "timing.spans[].children",
        "timing.spans[].children[].name",
        "timing.spans[].children[].wall_s",
        "timing.spans[].children[].children",
    ]
    .into_iter()
    .map(String::from)
    .collect();
    for c in counters {
        golden.insert(format!("phases[].counters.{c}"));
        golden.insert(format!("totals.counters.{c}"));
    }
    golden
}

#[test]
fn golden_schema_pins_every_key_path_to_the_version() {
    assert_eq!(
        SCHEMA_VERSION, 6,
        "SCHEMA_VERSION changed: regenerate golden_v6_paths() for the new \
         schema and rename this test's golden set"
    );
    let report = exhaustive_sample("golden");
    let full = paths_of(&report.to_json(TraceMode::Full));
    let golden = golden_v6_paths();
    let missing: Vec<_> = golden.difference(&full).collect();
    let extra: Vec<_> = full.difference(&golden).collect();
    assert!(
        missing.is_empty() && extra.is_empty(),
        "schema v5 key paths drifted without a version bump.\n\
         missing from output: {missing:?}\nnot in golden set: {extra:?}"
    );
    // Deterministic mode is exactly the golden set minus the timing tree.
    let det = paths_of(&report.to_json(TraceMode::Deterministic));
    let golden_det: BTreeSet<String> = golden
        .iter()
        .filter(|p| !p.starts_with("timing"))
        .cloned()
        .collect();
    assert_eq!(det, golden_det, "deterministic-mode schema drifted");
}

/// The bugfix contract: `ext_screening` and `ext_search` no longer carry
/// private footer formatting — reports shaped the way each binary shapes
/// them must serialize to the *same* key-path schema and render footers
/// with the same line structure.
#[test]
fn both_binaries_footer_schema_is_identical() {
    let screening = exhaustive_sample("ext_screening");
    let search = exhaustive_sample("ext_search");
    for mode in [TraceMode::Full, TraceMode::Deterministic] {
        let a = screening.to_json(mode);
        let b = search.to_json(mode);
        validate_report(&a).expect("ext_screening report validates");
        validate_report(&b).expect("ext_search report validates");
        assert_eq!(
            paths_of(&a),
            paths_of(&b),
            "the two binaries' JSON schemas diverged"
        );
    }
    // The human footers differ only in the tool name.
    let a = screening.render_text();
    let b = search.render_text();
    assert_eq!(
        a.replace("ext_screening", "TOOL"),
        b.replace("ext_search", "TOOL"),
        "the two binaries' text footers diverged"
    );
}
