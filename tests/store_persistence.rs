//! The persistence contract (ISSUE 7 / DESIGN.md §13): a warm rerun
//! **across processes** does zero simulator work — a fresh
//! `ScreeningCache` attached to an existing store log replays every leg
//! bit-identically, results *and* stored `RunHealth` telemetry — and a
//! torn final record loses at most that record, visibly.

use mtcmos_suite::circuits::tree::InverterTree;
use mtcmos_suite::core::sizing::{
    degradation_sweep_cached, size_for_target_cached, ScreeningCache, Transition,
};
use mtcmos_suite::core::vbsim::{Engine, VbsimOptions};
use mtcmos_suite::netlist::logic::Logic;
use mtcmos_suite::netlist::tech::Technology;
use mtcmos_suite::store::Store;
use std::path::PathBuf;

fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mtk_persist_{}_{name}.log", std::process::id()))
}

struct Cleanup(PathBuf);
impl Drop for Cleanup {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
        let mut lock = self.0.clone().into_os_string();
        lock.push(".lock");
        let _ = std::fs::remove_file(PathBuf::from(lock));
    }
}

#[test]
fn warm_rerun_across_processes_does_zero_simulator_work() {
    let path = scratch("warm");
    let _c = Cleanup(path.clone());
    let tree = InverterTree::paper();
    let tech = Technology::l07();
    let engine = Engine::new(&tree.netlist, &tech);
    let tr = Transition::new(vec![Logic::Zero], vec![Logic::One]);
    let base = VbsimOptions::default();
    let sizes = [20.0, 11.0, 5.0];

    // "Process 1": cold run against an empty store.
    let cold_cache = ScreeningCache::persistent(&path).unwrap();
    let (cold, cold_health) =
        degradation_sweep_cached(&engine, &tr, None, &sizes, &base, &cold_cache).unwrap();
    let cold_snap = cold_cache.snapshot();
    assert_eq!(cold_snap.misses, 1 + sizes.len(), "cold run simulates");
    assert_eq!(cold_snap.store_hits, 0);
    assert_eq!(cold_snap.store_misses, cold_snap.misses);
    assert_eq!(cold_snap.store_put_errors, 0);
    assert_eq!(
        cold_snap.store.unwrap().live_records,
        cold_snap.misses,
        "every simulated leg was written through"
    );
    drop(cold_cache);

    // "Process 2": a fresh cache over the same log. Zero simulator work,
    // and the replay is bit-identical — sweep points and telemetry.
    let warm_cache = ScreeningCache::persistent(&path).unwrap();
    assert!(warm_cache.is_empty(), "memory tier starts empty");
    let (warm, warm_health) =
        degradation_sweep_cached(&engine, &tr, None, &sizes, &base, &warm_cache).unwrap();
    assert_eq!(warm, cold, "cross-process warm rerun must be bit-identical");
    let warm_snap = warm_cache.snapshot();
    assert_eq!(warm_snap.misses, 0, "zero simulator work");
    assert_eq!(warm_snap.store_misses, 0);
    assert_eq!(
        warm_snap.store_hits,
        1 + sizes.len(),
        "every distinct leg decoded from the store once"
    );
    assert_eq!(warm_snap.hits, 2 * sizes.len(), "one lookup per leg use");
    // Stored telemetry replays identically (modulo the cache counters
    // themselves, which describe *this* run's traffic).
    assert_eq!(warm_health.breakpoints, cold_health.breakpoints);
    assert_eq!(warm_health.glitch_reversals, cold_health.glitch_reversals);
    assert_eq!(warm_health.vx_fallbacks, cold_health.vx_fallbacks);
    assert_eq!(warm_health.max_events, cold_health.max_events);
    assert_eq!(warm_health.cache_hits, 2 * sizes.len());
    assert_eq!(warm_health.cache_misses, 0);
}

#[test]
fn sizing_bisection_is_identical_with_and_without_store() {
    let path = scratch("sizing");
    let _c = Cleanup(path.clone());
    let tree = InverterTree::paper();
    let tech = Technology::l07();
    let engine = Engine::new(&tree.netlist, &tech);
    let transitions = [Transition::new(vec![Logic::Zero], vec![Logic::One])];
    let base = VbsimOptions::default();

    let memory = ScreeningCache::new();
    let (wl_mem, _) = size_for_target_cached(
        &engine,
        &transitions,
        None,
        1.05,
        (0.5, 200.0),
        &base,
        &memory,
    )
    .unwrap();

    let stored = ScreeningCache::persistent(&path).unwrap();
    let (wl_cold, _) = size_for_target_cached(
        &engine,
        &transitions,
        None,
        1.05,
        (0.5, 200.0),
        &base,
        &stored,
    )
    .unwrap();
    assert_eq!(wl_cold.to_bits(), wl_mem.to_bits());
    drop(stored);

    // Replayed entirely from disk: same size to the last bit.
    let replay = ScreeningCache::persistent(&path).unwrap();
    let (wl_warm, _) = size_for_target_cached(
        &engine,
        &transitions,
        None,
        1.05,
        (0.5, 200.0),
        &base,
        &replay,
    )
    .unwrap();
    assert_eq!(wl_warm.to_bits(), wl_mem.to_bits());
    assert_eq!(replay.snapshot().misses, 0, "bisection replayed from disk");
}

#[test]
fn torn_final_record_loses_only_that_leg_and_is_counted() {
    let path = scratch("torn");
    let _c = Cleanup(path.clone());
    let tree = InverterTree::paper();
    let tech = Technology::l07();
    let engine = Engine::new(&tree.netlist, &tech);
    let tr = Transition::new(vec![Logic::Zero], vec![Logic::One]);
    let base = VbsimOptions::default();
    let sizes = [20.0, 11.0, 5.0];

    let cache = ScreeningCache::persistent(&path).unwrap();
    let (full, _) = degradation_sweep_cached(&engine, &tr, None, &sizes, &base, &cache).unwrap();
    let records = cache.snapshot().store.unwrap().live_records;
    drop(cache);

    // Tear the last record mid-way, as a crash during the final append
    // would.
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();

    let recovered = ScreeningCache::persistent(&path).unwrap();
    let stats = recovered.snapshot().store.unwrap();
    assert_eq!(stats.live_records, records - 1, "only the torn leg lost");
    assert_eq!(stats.corrupt_records, 1, "and the loss is visible");
    // The rerun heals: same answer, exactly one leg re-simulated.
    let (again, _) =
        degradation_sweep_cached(&engine, &tr, None, &sizes, &base, &recovered).unwrap();
    assert_eq!(again, full, "recovery must not change the answer");
    assert_eq!(recovered.snapshot().misses, 1, "one leg re-simulated");
    drop(recovered);
    let healed = Store::open(&path).unwrap();
    assert_eq!(healed.stats().live_records, records);
    assert_eq!(healed.stats().corrupt_records, 0, "log healed by the put");
}

#[test]
fn store_tier_is_transparent_to_in_memory_callers() {
    // A cache with no store attached reports a store-free snapshot —
    // the documented `snapshot()` health surface for `mtk serve` status.
    let cache = ScreeningCache::new();
    let snap = cache.snapshot();
    assert_eq!(snap.legs, 0);
    assert_eq!(snap.store, None);
    assert_eq!(
        snap.store_hits + snap.store_misses + snap.store_put_errors,
        0
    );
}
