//! End-to-end deck export: a full MTCMOS expansion survives SPICE-deck
//! serialization, re-parsing, and re-simulation.

use mtcmos_suite::circuits::tree::{InverterTree, TreeSpec};
use mtcmos_suite::netlist::expand::{expand, ExpandOptions};
use mtcmos_suite::netlist::logic::Logic;
use mtcmos_suite::netlist::tech::Technology;
use mtcmos_suite::spice::dc::{operating_point, DcOptions};
use mtcmos_suite::spice::deck::{from_deck, to_deck};
use mtcmos_suite::spice::tran::{transient, TranOptions};

#[test]
fn expanded_mtcmos_tree_roundtrips_through_deck() {
    let tree = InverterTree::new(&TreeSpec {
        fanout: 2,
        stages: 2,
        load_cap: 20e-15,
        drive: 1.0,
    })
    .unwrap();
    let tech = Technology::l07();
    let mut ex = expand(&tree.netlist, &tech, &ExpandOptions::mtcmos(8.0)).unwrap();
    ex.set_input_transition(0, Logic::Zero, Logic::One, 1e-9)
        .unwrap();

    let deck = to_deck(&ex.circuit, "mtcmos tree");
    let parsed = from_deck(&deck).expect("parse back");
    assert_eq!(parsed.device_count(), ex.circuit.device_count());
    assert_eq!(parsed.node_count(), ex.circuit.node_count());
    // Canonical form: serializing again is a fixed point.
    assert_eq!(to_deck(&parsed, "mtcmos tree"), deck);

    // The parsed circuit is electrically equivalent: same OP and same
    // transient delay at the probe.
    let op_a = operating_point(&ex.circuit, &DcOptions::default()).unwrap();
    let op_b = operating_point(&parsed, &DcOptions::default()).unwrap();
    let probe = ex.node_of(tree.probe());
    let probe_b = parsed
        .find_node(ex.circuit.node_name(probe))
        .expect("probe exists in parsed circuit");
    assert!((op_a.voltage(probe) - op_b.voltage(probe_b)).abs() < 1e-9);

    let opts = TranOptions::to(40e-9).with_dt(40e-12);
    let wa = transient(&ex.circuit, &opts)
        .unwrap()
        .waveform(probe)
        .unwrap();
    let wb = transient(&parsed, &opts)
        .unwrap()
        .waveform(probe_b)
        .unwrap();
    let ca = wa.last_crossing(tech.v_switch(), mtcmos_suite::num::waveform::Edge::Any);
    let cb = wb.last_crossing(tech.v_switch(), mtcmos_suite::num::waveform::Edge::Any);
    match (ca, cb) {
        (Some(a), Some(b)) => assert!(
            (a.time - b.time).abs() < 1e-12,
            "delays differ: {} vs {}",
            a.time,
            b.time
        ),
        other => panic!("missing crossings: {other:?}"),
    }
}
