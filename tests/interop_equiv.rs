//! Cross-front-end equivalence for the standard-format interop path:
//! a design exported as a SPICE deck and re-imported (subcircuit
//! flattening + structural gate recognition) must be
//! **indistinguishable** from the `.mtk`-parsed original — the same
//! canonical bytes, the same netlist fingerprint, and the same
//! byte-identical deterministic screen trace at any thread count. This
//! is the `fe_roundtrip` tentpole guarantee extended to the third
//! front door (SPICE decks).

use mtcmos_suite::circuits::golden::golden_designs;
use mtcmos_suite::circuits::vectors::exhaustive_transitions;
use mtcmos_suite::core::health::{FailurePolicy, FaultPlan};
use mtcmos_suite::core::sizing::{screen_vectors_par_quarantined, Transition};
use mtcmos_suite::core::vbsim::VbsimOptions;
use mtcmos_suite::fe::interop::{export_deck, import_deck, Imported};
use mtcmos_suite::fe::Design;
use mtcmos_suite::netlist::logic::bits_lsb_first;
use mtcmos_suite::netlist::netlist::Netlist;
use mtcmos_suite::netlist::tech::Technology;
use mtcmos_suite::trace::{TraceMode, TraceReport};

/// Export with a footer and re-import, demanding the gate-level path.
fn round_trip(design: &Design, stem: &str) -> Design {
    let deck = export_deck(design, Some(8.0)).unwrap_or_else(|e| panic!("{stem}: {e}"));
    // The fallback technology is deliberately wrong (l03): hints must
    // carry the real one.
    match import_deck(&deck, &format!("{stem}.ckt"), &Technology::l03()) {
        Ok(Imported::Design {
            design: back,
            sleep_w_over_l,
            stats,
        }) => {
            assert_eq!(sleep_w_over_l, Some(8.0), "{stem}: footer W/L recovered");
            assert!(!stats.fallback, "{stem}");
            assert_eq!(
                stats.cells_recognized,
                design.netlist.cells().len(),
                "{stem}: every cell recognized"
            );
            *back
        }
        Ok(Imported::SpiceOnly { reason, .. }) => panic!("{stem} fell back: {reason}"),
        Err(e) => panic!("{stem}: {e}"),
    }
}

#[test]
fn every_golden_survives_deck_export_import_byte_exactly() {
    for (stem, design) in golden_designs() {
        let back = round_trip(&design, stem);
        assert_eq!(back.to_mtk(), design.to_mtk(), "{stem}: canonical bytes");
        assert_eq!(
            back.netlist.fingerprint(),
            design.netlist.fingerprint(),
            "{stem}: fingerprint identity"
        );
        assert_eq!(back.vectors, design.vectors, "{stem}: vectors survive");
        assert_eq!(back.tech, design.tech, "{stem}: technology survives");
    }
}

/// Screens the first 48 exhaustive transitions and returns the
/// deterministic-mode trace JSON (what `mtk screen
/// --trace-deterministic` writes).
fn screen_trace(netlist: &Netlist, tech: &Technology, threads: usize) -> String {
    let n_pi = netlist.primary_inputs().len() as u32;
    let transitions: Vec<Transition> = exhaustive_transitions(n_pi)
        .into_iter()
        .take(48)
        .map(|p| Transition::new(bits_lsb_first(p.from, n_pi), bits_lsb_first(p.to, n_pi)))
        .collect();
    let (_screened, report) = screen_vectors_par_quarantined(
        netlist,
        tech,
        &transitions,
        None,
        10.0,
        &VbsimOptions::default(),
        threads,
        FailurePolicy::quarantine(8),
        &FaultPlan::none(),
    )
    .expect("screen");
    let mut trace = TraceReport::new("mtk_screen");
    trace.push_phase(report.to_phase("screen"));
    trace.to_json(TraceMode::Deterministic)
}

#[test]
fn imported_designs_trace_byte_identically_to_the_fe_path() {
    for stem in ["adder3", "invtree", "rand8x40"] {
        let (_, design) = golden_designs()
            .into_iter()
            .find(|(s, _)| *s == stem)
            .unwrap();
        let back = round_trip(&design, stem);
        let reference = screen_trace(&design.netlist, &design.tech, 1);
        for threads in [1usize, 2, 8] {
            assert_eq!(
                screen_trace(&back.netlist, &back.tech, threads),
                reference,
                "{stem}: imported trace differs at threads={threads}"
            );
        }
    }
}
