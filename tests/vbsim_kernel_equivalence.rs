//! The event-driven kernel is a pure optimization of the dense-scan
//! kernel: for any circuit, any option set, and any scratch state, every
//! observable of a run — waveform points, virtual-ground staircase,
//! sleep current, breakpoint count, health counters — must match the
//! dense kernel bit-for-bit. These tests pin that contract directly on
//! engine runs and end-to-end through the fault-tolerant parallel
//! screener's deterministic trace.

use mtcmos_suite::circuits::adder::RippleAdder;
use mtcmos_suite::circuits::multiplier::ArrayMultiplier;
use mtcmos_suite::circuits::random_logic::{RandomLogic, RandomLogicSpec};
use mtcmos_suite::circuits::vectors::exhaustive_transitions;
use mtcmos_suite::core::health::{FailurePolicy, FaultPlan};
use mtcmos_suite::core::sizing::{screen_vectors_par_quarantined, Transition};
use mtcmos_suite::core::vbsim::{Engine, VbsimKernel, VbsimOptions, VbsimRun, VbsimScratch};
use mtcmos_suite::netlist::logic::{bits_lsb_first, Logic};
use mtcmos_suite::netlist::netlist::Netlist;
use mtcmos_suite::netlist::tech::Technology;
use mtcmos_suite::num::waveform::Pwl;
use mtcmos_suite::trace::{TraceMode, TraceReport};

/// Bit patterns of a waveform's points, so `-0.0` vs `0.0` or any ULP
/// of drift fails the comparison.
fn pwl_bits(w: &Pwl) -> Vec<(u64, u64)> {
    w.points()
        .iter()
        .map(|&(t, v)| (t.to_bits(), v.to_bits()))
        .collect()
}

fn assert_runs_identical(dense: &VbsimRun, event: &VbsimRun, ctx: &str) {
    assert_eq!(
        dense.waveforms.len(),
        event.waveforms.len(),
        "{ctx}: net count"
    );
    for (i, (wd, we)) in dense.waveforms.iter().zip(&event.waveforms).enumerate() {
        assert_eq!(pwl_bits(wd), pwl_bits(we), "{ctx}: waveform of net {i}");
    }
    assert_eq!(pwl_bits(&dense.vgnd), pwl_bits(&event.vgnd), "{ctx}: vgnd");
    assert_eq!(
        pwl_bits(&dense.sleep_current),
        pwl_bits(&event.sleep_current),
        "{ctx}: sleep current"
    );
    assert_eq!(dense.breakpoints, event.breakpoints, "{ctx}: breakpoints");
    assert_eq!(dense.stalled, event.stalled, "{ctx}: stalled");
    assert_eq!(dense.truncated, event.truncated, "{ctx}: truncated");
    assert_eq!(
        dense.max_simultaneous_discharging, event.max_simultaneous_discharging,
        "{ctx}: co-discharge metric"
    );
    assert_eq!(dense.t_end.to_bits(), event.t_end.to_bits(), "{ctx}: t_end");
    assert_eq!(dense.health, event.health, "{ctx}: health counters");
}

/// The option sets the kernels must agree under: plain CMOS, the paper's
/// MTCMOS sizes (well- and under-sized), and both §5.3/§2.3 extensions.
fn option_variants() -> Vec<VbsimOptions> {
    vec![
        VbsimOptions::cmos(),
        VbsimOptions::mtcmos(10.0),
        VbsimOptions::mtcmos(0.6),
        VbsimOptions {
            body_effect: true,
            ..VbsimOptions::mtcmos(5.0)
        },
        VbsimOptions {
            reverse_conduction: true,
            ..VbsimOptions::mtcmos(3.0)
        },
    ]
}

/// Runs every `(transition, options)` combination through both kernels —
/// the event kernel twice, once with a fresh scratch and once with a
/// scratch reused (and recycled into) across the whole sweep, so warm
/// memo tables and pooled buffers are proven not to leak into results.
fn assert_kernels_agree(
    netlist: &Netlist,
    tech: &Technology,
    transitions: &[(Vec<Logic>, Vec<Logic>)],
) {
    let engine = Engine::new(netlist, tech);
    let mut warm = VbsimScratch::new();
    for (k, opts) in option_variants().iter().enumerate() {
        let dense_opts = VbsimOptions {
            kernel: VbsimKernel::DenseScan,
            ..opts.clone()
        };
        for (i, (from, to)) in transitions.iter().enumerate() {
            let ctx = format!("{} variant {k} transition {i}", netlist.name());
            let dense = engine.run(from, to, &dense_opts).expect("dense run");
            let cold = engine.run(from, to, opts).expect("cold event run");
            assert_runs_identical(&dense, &cold, &format!("cold {ctx}"));
            let hot = engine
                .run_with(from, to, opts, &mut warm)
                .expect("warm event run");
            assert_runs_identical(&dense, &hot, &format!("warm {ctx}"));
            warm.recycle(hot);
        }
    }
}

#[test]
fn adder_runs_are_bit_identical_across_kernels() {
    let add = RippleAdder::paper();
    let transitions: Vec<_> = [
        (0u64, 0u64, 7u64, 5u64),
        (3, 4, 1, 6),
        (7, 7, 0, 1),
        (5, 2, 2, 5),
    ]
    .iter()
    .map(|&(a0, b0, a1, b1)| (add.input_values(a0, b0), add.input_values(a1, b1)))
    .collect();
    assert_kernels_agree(&add.netlist, &Technology::l07(), &transitions);
}

#[test]
fn random_logic_runs_are_bit_identical_across_kernels() {
    for seed in [7u64, 19, 1234] {
        let rl = RandomLogic::new(&RandomLogicSpec {
            inputs: 6,
            gates: 24,
            seed,
            ..RandomLogicSpec::default()
        })
        .expect("random logic");
        let transitions: Vec<_> = exhaustive_transitions(6)
            .into_iter()
            .step_by(509)
            .map(|p| (bits_lsb_first(p.from, 6), bits_lsb_first(p.to, 6)))
            .collect();
        assert_kernels_agree(&rl.netlist, &Technology::l07(), &transitions);
    }
}

#[test]
fn multiplier_runs_are_bit_identical_across_kernels() {
    // The glitch-heavy 8×8 array multiplier drives the deepest event
    // cascades (hundreds of breakpoints, mid-swing reversals).
    let mult = ArrayMultiplier::paper();
    let transitions: Vec<_> = [
        (0u64, 0u64, 255u64, 255u64),
        (170, 85, 85, 170),
        (19, 200, 19, 201),
    ]
    .iter()
    .map(|&(x0, y0, x1, y1)| (mult.input_values(x0, y0), mult.input_values(x1, y1)))
    .collect();
    assert_kernels_agree(&mult.netlist, &Technology::l07(), &transitions);
}

/// End-to-end: the fault-tolerant parallel screener must produce a
/// byte-identical deterministic trace no matter which kernel runs the
/// legs and no matter the thread count — including under injected
/// panics, errors, and overflow retries.
#[test]
fn faulted_screen_trace_is_kernel_and_thread_invariant() {
    let add = RippleAdder::paper();
    let tech = Technology::l07();
    let transitions: Vec<Transition> = exhaustive_transitions(6)
        .into_iter()
        .take(32)
        .map(|p| Transition::new(bits_lsb_first(p.from, 6), bits_lsb_first(p.to, 6)))
        .collect();
    let faults = FaultPlan {
        panic_at: vec![3],
        error_at: vec![5],
        overflow_at: vec![7],
        persistent_overflow_at: vec![9],
        ..FaultPlan::default()
    };

    let trace_of = |kernel: VbsimKernel, threads: usize| -> String {
        let opts = VbsimOptions {
            kernel,
            ..VbsimOptions::default()
        };
        let (_screened, report) = screen_vectors_par_quarantined(
            &add.netlist,
            &tech,
            &transitions,
            None,
            10.0,
            &opts,
            threads,
            FailurePolicy::quarantine(8),
            &faults,
        )
        .expect("screen");
        let mut trace = TraceReport::new("vbsim_kernel_equivalence");
        trace.push_phase(report.to_phase("screen"));
        trace.to_json(TraceMode::Deterministic)
    };

    let reference = trace_of(VbsimKernel::DenseScan, 1);
    assert!(reference.contains("\"quarantined\": ["));
    for kernel in [VbsimKernel::DenseScan, VbsimKernel::EventDriven] {
        for threads in [1usize, 2, 8] {
            let got = trace_of(kernel, threads);
            assert_eq!(
                got, reference,
                "deterministic trace differs for {kernel:?} at threads={threads}"
            );
        }
    }
}
