//! End-to-end validation on seeded random combinational blocks: the
//! zero-delay evaluator, the switch-level simulator, and the
//! transistor-level engine must all agree on the settled logic state —
//! for arbitrary (not hand-crafted) MTCMOS blocks.

use mtcmos_suite::circuits::random_logic::{RandomLogic, RandomLogicSpec};
use mtcmos_suite::core::hybrid::{spice_transition, SpiceRunConfig};
use mtcmos_suite::core::sizing::Transition;
use mtcmos_suite::core::vbsim::{Engine, VbsimOptions};
use mtcmos_suite::netlist::expand::SleepImpl;
use mtcmos_suite::netlist::lint::{lint, LintIssue};
use mtcmos_suite::netlist::logic::bits_lsb_first;
use mtcmos_suite::netlist::tech::Technology;

#[test]
fn generated_blocks_lint_clean() {
    for seed in 0..8 {
        let rl = RandomLogic::new(&RandomLogicSpec {
            seed,
            gates: 50,
            ..RandomLogicSpec::default()
        })
        .unwrap();
        // Unused inputs are possible by construction; nothing else is.
        let issues: Vec<_> = lint(&rl.netlist)
            .into_iter()
            .filter(|i| !matches!(i, LintIssue::UnusedInput(_)))
            .collect();
        assert!(issues.is_empty(), "seed {seed}: {issues:?}");
    }
}

#[test]
fn vbsim_settles_random_blocks_to_logic_state() {
    let tech = Technology::l07();
    for seed in 0..6 {
        let rl = RandomLogic::new(&RandomLogicSpec {
            seed,
            gates: 40,
            ..RandomLogicSpec::default()
        })
        .unwrap();
        let engine = Engine::new(&rl.netlist, &tech);
        for (from_v, to_v) in [(0u64, 255u64), (0xA5, 0x5A), (17, 204)] {
            let from = bits_lsb_first(from_v, 8);
            let to = bits_lsb_first(to_v, 8);
            let expect = rl.netlist.evaluate(&to).unwrap();
            for opts in [VbsimOptions::cmos(), VbsimOptions::mtcmos(15.0)] {
                let run = engine.run(&from, &to, &opts).unwrap();
                assert!(!run.stalled, "seed {seed} stalled");
                for net in rl.netlist.net_ids() {
                    if rl.netlist.net(net).tie.is_some() {
                        continue;
                    }
                    let v = run.waveform(net).final_value().unwrap();
                    let want = expect[net.index()].to_bool().unwrap();
                    assert_eq!(
                        v > tech.v_switch(),
                        want,
                        "seed {seed} {from_v:02x}->{to_v:02x} net {}",
                        rl.netlist.net(net).name
                    );
                }
            }
        }
    }
}

#[test]
fn spice_settles_a_random_block_to_logic_state() {
    let tech = Technology::l07();
    let rl = RandomLogic::new(&RandomLogicSpec {
        seed: 3,
        gates: 14,
        inputs: 5,
        ..RandomLogicSpec::default()
    })
    .unwrap();
    let from = bits_lsb_first(0b01101, 5);
    let to = bits_lsb_first(0b10010, 5);
    let tr = Transition::new(from, to.clone());
    let res = spice_transition(
        &rl.netlist,
        &tech,
        &tr,
        Some(&rl.outputs),
        SleepImpl::Transistor { w_over_l: 10.0 },
        &SpiceRunConfig::window(80e-9),
    )
    .unwrap();
    let expect = rl.netlist.evaluate(&to).unwrap();
    for (k, w) in res.probe_waveforms.iter().enumerate() {
        let v = w.final_value().unwrap();
        let want = expect[rl.outputs[k].index()].to_bool().unwrap();
        assert_eq!(v > tech.v_switch(), want, "output {k} at {v} V");
    }
}
