//! The Monte Carlo acceptance contract (ISSUE 8): an `mtk mc`-shaped
//! sweep over the adder — 256 trials, process sigmas set, faults
//! injected — exports a **byte-identical deterministic trace** at 1, 2,
//! and 8 threads, and a warm rerun against a persistent store replays
//! every trial with **zero simulator work** while keeping the simulator
//! telemetry (breakpoints, retries, histograms) bit-identical.

use mtcmos_suite::circuits::adder::RippleAdder;
use mtcmos_suite::circuits::vectors::exhaustive_transitions;
use mtcmos_suite::core::health::{FailurePolicy, FaultPlan};
use mtcmos_suite::core::mc::{run_mc, McOptions, McReport};
use mtcmos_suite::core::sizing::Transition;
use mtcmos_suite::netlist::logic::bits_lsb_first;
use mtcmos_suite::netlist::tech::Technology;
use mtcmos_suite::store::Store;
use mtcmos_suite::trace::json::validate_report;
use mtcmos_suite::trace::{TraceMode, TraceReport};
use std::path::PathBuf;

/// The adder's exhaustive transition space thinned by a stride, exactly
/// like `mtk mc --stride` thins it.
fn adder_transitions(stride: usize) -> Vec<Transition> {
    exhaustive_transitions(6)
        .into_iter()
        .step_by(stride)
        .map(|p| Transition::new(bits_lsb_first(p.from, 6), bits_lsb_first(p.to, 6)))
        .collect()
}

fn varied_tech() -> Technology {
    Technology {
        sigma_vt: 0.03,
        sigma_kp: 0.05,
        sigma_w: 0.04,
        ..Technology::l07()
    }
}

fn mc_opts(threads: usize) -> McOptions {
    McOptions {
        trials: 256,
        threads,
        widths: vec![10.0, 40.0],
        target: 0.25,
        policy: FailurePolicy::quarantine(8),
        ..McOptions::default()
    }
}

fn run(threads: usize, store: Option<&Store>, fault: &FaultPlan) -> McReport {
    let add = RippleAdder::paper();
    let tech = varied_tech();
    let transitions = adder_transitions(512);
    run_mc(
        &add.netlist,
        &tech,
        &transitions,
        None,
        &mc_opts(threads),
        store,
        fault,
    )
    .expect("mc sweep")
}

fn trace_of(report: &McReport) -> String {
    let mut trace = TraceReport::new("mc_determinism");
    trace.push_phase(report.to_phase("mc"));
    trace.to_json(TraceMode::Deterministic)
}

#[test]
fn mc_trace_is_byte_identical_across_thread_counts_under_faults() {
    // Faults exercise the quarantine and retry paths so the pinned
    // bytes include the degraded machinery, not just the happy path.
    let faults = FaultPlan {
        error_at: vec![7],
        overflow_at: vec![19],
        persistent_overflow_at: vec![123],
        ..FaultPlan::default()
    };
    let serial = run(1, None, &faults);
    let serial_json = trace_of(&serial);
    validate_report(&serial_json).expect("serial trace validates");
    assert_eq!(serial.samples.len(), 256);
    assert_eq!(serial.health.quarantined_indices(), vec![7, 123]);
    assert_eq!(serial.health.retry_successes, 1);
    // The distributions actually spread under the sigmas.
    assert!(serial_json.contains("mc_degradation_bp"));
    assert!(serial.degradation_percentile_bp(99.0) > serial.degradation_percentile_bp(50.0));
    for threads in [2usize, 8] {
        let par = run(threads, None, &faults);
        assert_eq!(
            trace_of(&par),
            serial_json,
            "deterministic mc trace differs at threads={threads}"
        );
    }
}

struct Cleanup(PathBuf);
impl Drop for Cleanup {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
        let mut lock = self.0.clone().into_os_string();
        lock.push(".lock");
        let _ = std::fs::remove_file(PathBuf::from(lock));
    }
}

#[test]
fn warm_store_mc_rerun_does_zero_simulator_work() {
    let path = std::env::temp_dir().join(format!("mtk_mc_det_{}.log", std::process::id()));
    let _cleanup = Cleanup(path.clone());
    let _ = std::fs::remove_file(&path);
    let cold = {
        let store = Store::open(&path).expect("open store");
        run(2, Some(&store), &FaultPlan::none())
    };
    assert_eq!(cold.store_hits(), 0);
    assert_eq!(cold.store_misses(), 256);
    // A fresh process over the same log replays everything, at a
    // different thread count for good measure.
    let warm = {
        let store = Store::open(&path).expect("reopen store");
        run(8, Some(&store), &FaultPlan::none())
    };
    assert_eq!(warm.store_hits(), 256, "warm rerun must replay all trials");
    assert_eq!(warm.store_misses(), 0, "warm rerun must simulate nothing");
    // Stored RunHealth replays, so the simulator telemetry — including
    // the per-item breakpoint histogram — is bit-identical to the cold
    // run; only the store-traffic counters move.
    assert_eq!(warm.health.runs, cold.health.runs);
    assert_eq!(
        warm.health.breakpoints_per_item,
        cold.health.breakpoints_per_item
    );
    let strip = |r: &McReport| {
        r.completed()
            .map(|s| (s.degradation, s.bounce, s.pass_at_width.clone()))
            .collect::<Vec<_>>()
    };
    assert_eq!(strip(&warm), strip(&cold));
    assert_eq!(warm.yield_curve(), cold.yield_curve());
}
