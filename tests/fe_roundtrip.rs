//! The `.mtk` frontend contract, pinned end to end:
//!
//! 1. The golden files under `examples/` are **byte-identical** to what
//!    the generators serialize today (CI regenerates and diffs them),
//!    and each one survives parse → write → parse as a fixpoint.
//! 2. A circuit loaded from a `.mtk` file is **indistinguishable** from
//!    the programmatically built one: same netlist, same fingerprint,
//!    and — the tentpole guarantee — the same byte-identical
//!    deterministic trace at any thread count.

use mtcmos_suite::circuits::golden::golden_designs;
use mtcmos_suite::circuits::vectors::exhaustive_transitions;
use mtcmos_suite::core::health::{FailurePolicy, FaultPlan};
use mtcmos_suite::core::sizing::{screen_vectors_par_quarantined, Transition};
use mtcmos_suite::core::vbsim::VbsimOptions;
use mtcmos_suite::fe::parse_str;
use mtcmos_suite::netlist::cell::CellKind;
use mtcmos_suite::netlist::hier::Module;
use mtcmos_suite::netlist::logic::bits_lsb_first;
use mtcmos_suite::netlist::netlist::Netlist;
use mtcmos_suite::netlist::tech::Technology;
use mtcmos_suite::trace::{TraceMode, TraceReport};
use std::path::PathBuf;

fn golden_path(stem: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("examples")
        .join(format!("{stem}.mtk"))
}

#[test]
fn golden_files_match_the_generators_and_are_fixpoints() {
    for (stem, design) in golden_designs() {
        let path = golden_path(stem);
        let on_disk = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!("{}: {e} — regenerate with `mtk gen --all`", path.display())
        });
        assert_eq!(
            on_disk,
            design.to_mtk(),
            "{stem}: examples/{stem}.mtk is stale — regenerate with `mtk gen --all`"
        );
        let parsed = parse_str(&on_disk, &format!("{stem}.mtk")).expect("golden parses");
        assert_eq!(parsed.netlist, design.netlist, "{stem}: netlist equality");
        assert_eq!(
            parsed.netlist.fingerprint(),
            design.netlist.fingerprint(),
            "{stem}: fingerprint identity"
        );
        assert_eq!(parsed.to_mtk(), on_disk, "{stem}: parse→write fixpoint");
        // Lint findings survive the round trip unchanged (mul8's
        // generator genuinely leaves its top carry-out unmarked, so
        // "clean" is not the invariant — stability is).
        assert_eq!(
            parsed.lint(),
            design.lint(),
            "{stem}: lint findings changed across the round trip"
        );
    }
}

/// A hierarchical source: one `module` with two instances. Must flatten
/// to exactly what [`Module::instantiate`] builds programmatically.
const HIER_SRC: &str = "\
mtk 1
module buf
net i
net m
net o
input i
output o
cell u0 inv i -> m
cell u1 inv m -> o drive=2
endmodule
circuit top
net a
net x
net y
input a
output y
inst b0 buf a -> x
inst b1 buf x -> y
vector 0 -> 1
end
";

#[test]
fn hierarchical_mtk_source_matches_the_programmatic_module_expansion() {
    let parsed = parse_str(HIER_SRC, "top.mtk").expect("hier source parses");

    // The same hierarchy, built through the library API.
    let mut body = Netlist::new("buf");
    let i = body.add_net("i").unwrap();
    let m = body.add_net("m").unwrap();
    let o = body.add_net("o").unwrap();
    body.mark_primary_input(i).unwrap();
    body.mark_primary_output(o);
    body.add_cell("u0", CellKind::Inv, vec![i], m, 1.0).unwrap();
    body.add_cell("u1", CellKind::Inv, vec![m], o, 2.0).unwrap();
    let buf = Module::new("buf", body).expect("module");
    let mut top = Netlist::new("top");
    let a = top.add_net("a").unwrap();
    let x = top.add_net("x").unwrap();
    let y = top.add_net("y").unwrap();
    top.mark_primary_input(a).unwrap();
    buf.instantiate(&mut top, "b0", &[a], &[x]).unwrap();
    buf.instantiate(&mut top, "b1", &[x], &[y]).unwrap();
    top.mark_primary_output(y);

    assert_eq!(parsed.netlist, top, "parse-time flattening must agree");
    assert_eq!(
        parsed.netlist.fingerprint(),
        top.fingerprint(),
        "fingerprint identity"
    );

    // The canonical on-disk form is FLAT: writing drops the module
    // sugar, keeps the hierarchical names, and is a fixpoint.
    let text = parsed.to_mtk();
    assert!(!text.contains("module"), "{text}");
    assert!(!text.contains("inst "), "{text}");
    assert!(text.contains("b0/u1"), "hierarchical names survive: {text}");
    let back = parse_str(&text, "top.mtk").expect("flat form parses");
    assert_eq!(back.netlist.fingerprint(), parsed.netlist.fingerprint());
    assert_eq!(back.vectors, parsed.vectors, "vectors survive");
    assert_eq!(back.to_mtk(), text, "flat canonical fixpoint");
}

/// Screens the first `n` exhaustive transitions and returns the
/// deterministic-mode trace JSON — the artifact `mtk screen
/// --trace-deterministic` writes.
fn screen_trace(netlist: &Netlist, tech: &Technology, threads: usize) -> String {
    let n_pi = netlist.primary_inputs().len() as u32;
    let transitions: Vec<Transition> = exhaustive_transitions(n_pi)
        .into_iter()
        .take(48)
        .map(|p| Transition::new(bits_lsb_first(p.from, n_pi), bits_lsb_first(p.to, n_pi)))
        .collect();
    let (_screened, report) = screen_vectors_par_quarantined(
        netlist,
        tech,
        &transitions,
        None,
        10.0,
        &VbsimOptions::default(),
        threads,
        FailurePolicy::quarantine(8),
        &FaultPlan::none(),
    )
    .expect("screen");
    let mut trace = TraceReport::new("mtk_screen");
    trace.push_phase(report.to_phase("screen"));
    trace.to_json(TraceMode::Deterministic)
}

#[test]
fn parsed_and_programmatic_traces_are_byte_identical() {
    let (_, design) = golden_designs()
        .into_iter()
        .find(|(s, _)| *s == "adder3")
        .unwrap();
    let text = std::fs::read_to_string(golden_path("adder3")).expect("golden file");
    let parsed = parse_str(&text, "adder3.mtk").expect("golden parses");

    let reference = screen_trace(&design.netlist, &design.tech, 1);
    for threads in [1usize, 2, 8] {
        let programmatic = screen_trace(&design.netlist, &design.tech, threads);
        let from_file = screen_trace(&parsed.netlist, &parsed.tech, threads);
        assert_eq!(
            programmatic, reference,
            "programmatic trace differs at threads={threads}"
        );
        assert_eq!(
            from_file, reference,
            "parsed-netlist trace differs from the programmatic one at threads={threads}"
        );
    }
}
