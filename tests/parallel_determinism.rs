//! The parallel screening/search engine must be a pure optimization:
//! same seed → bit-identical results whether the work runs on one thread
//! or eight. These tests pin that contract on the two circuits the
//! worst-vector search targets — a random combinational block and a
//! wider ripple adder.

use mtcmos_suite::circuits::adder::{AdderSpec, RippleAdder};
use mtcmos_suite::circuits::random_logic::{RandomLogic, RandomLogicSpec};
use mtcmos_suite::core::search::{search_worst_vector, SearchOptions, SearchResult};
use mtcmos_suite::core::vbsim::{Engine, SleepNetwork};
use mtcmos_suite::netlist::netlist::Netlist;
use mtcmos_suite::netlist::tech::Technology;

fn search_at(netlist: &Netlist, tech: &Technology, w_over_l: f64, threads: usize) -> SearchResult {
    let engine = Engine::new(netlist, tech);
    search_worst_vector(
        &engine,
        &SearchOptions {
            random_samples: 24,
            restarts: 2,
            max_passes: 2,
            threads,
            ..SearchOptions::at_sleep(SleepNetwork::Transistor { w_over_l })
        },
    )
    .expect("search")
}

fn assert_thread_invariant(netlist: &Netlist, tech: &Technology, w_over_l: f64) {
    let serial = search_at(netlist, tech, w_over_l, 1);
    for threads in [2usize, 8] {
        let par = search_at(netlist, tech, w_over_l, threads);
        assert_eq!(
            par.transition, serial.transition,
            "worst transition differs at threads={threads}"
        );
        assert_eq!(
            par.degradation.to_bits(),
            serial.degradation.to_bits(),
            "degradation is not bit-identical at threads={threads}"
        );
        assert_eq!(
            par.evaluations, serial.evaluations,
            "evaluation count differs at threads={threads}"
        );
        let counted: u64 = par.workers.iter().map(|w| w.vectors).sum();
        assert_eq!(counted as usize, par.evaluations);
    }
}

#[test]
fn random_logic_search_is_thread_count_invariant() {
    let rl = RandomLogic::new(&RandomLogicSpec {
        inputs: 6,
        gates: 24,
        seed: 7,
        ..RandomLogicSpec::default()
    })
    .expect("random logic");
    assert_thread_invariant(&rl.netlist, &Technology::l07(), 12.0);
}

#[test]
fn adder_search_is_thread_count_invariant() {
    let add = RippleAdder::new(&AdderSpec {
        bits: 8,
        ..AdderSpec::default()
    })
    .expect("adder");
    assert_thread_invariant(&add.netlist, &Technology::l07(), 25.0);
}
