//! The cluster co-optimisation contract (DESIGN.md §15), pinned end to
//! end on the ALU generator whose mutually-exclusive functional units
//! the partitioner exists for:
//!
//! 1. The clustered deterministic trace is **byte-identical at any
//!    thread count**, including under injected faults with a
//!    quarantined cluster — the workspace determinism contract extended
//!    to the cluster phase.
//! 2. The returned solution obeys the **never-worse rule** against the
//!    single shared device.
//! 3. With a persistent store, a warm rerun **replays every
//!    evaluation** — zero simulations — and returns the identical
//!    sizing.

use mtcmos_suite::circuits::alu::{AluOp, AluSlice, AluSpec};
use mtcmos_suite::core::cluster::{
    exclusive_partition, size_clusters_for_target, ClusterReport, ClusterSizing,
};
use mtcmos_suite::core::health::{FailurePolicy, FaultPlan};
use mtcmos_suite::core::sizing::Transition;
use mtcmos_suite::core::vbsim::VbsimOptions;
use mtcmos_suite::netlist::tech::Technology;
use mtcmos_suite::store::Store;
use mtcmos_suite::trace::{TraceMode, TraceReport};
use std::path::PathBuf;

const TARGET: f64 = 0.20;
const BRACKET: (f64, f64) = (0.5, 800.0);

fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mtk_cluster_{}_{name}.log", std::process::id()))
}

struct Cleanup(PathBuf);
impl Drop for Cleanup {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
        let mut lock = self.0.clone().into_os_string();
        lock.push(".lock");
        let _ = std::fs::remove_file(PathBuf::from(lock));
    }
}

fn alu() -> AluSlice {
    AluSlice::new(&AluSpec {
        bits: 2,
        ..AluSpec::default()
    })
    .expect("generator is self-consistent")
}

/// Per-opcode operand swings: the same `(a, b)` transition under a
/// logic opcode and under ADD discharge different functional units, so
/// the partitioner has real exclusivity to find.
fn alu_transitions(alu: &AluSlice) -> Vec<Transition> {
    let mut out = Vec::new();
    for op in [AluOp::And, AluOp::Or, AluOp::Add] {
        out.push(Transition::new(
            alu.input_values(0, 0, op),
            alu.input_values(3, 1, op),
        ));
        out.push(Transition::new(
            alu.input_values(3, 3, op),
            alu.input_values(1, 2, op),
        ));
    }
    out
}

fn size_alu(
    threads: usize,
    policy: FailurePolicy,
    fault: &FaultPlan,
    store: Option<&Store>,
) -> (ClusterSizing, ClusterReport) {
    let alu = alu();
    let transitions = alu_transitions(&alu);
    let partition = exclusive_partition(&alu.netlist, &transitions, 6).expect("partition");
    assert!(partition.n_clusters > 1, "ALU must yield real clusters");
    size_clusters_for_target(
        &alu.netlist,
        &Technology::l07(),
        &transitions,
        None,
        &partition,
        TARGET,
        BRACKET,
        &VbsimOptions::default(),
        threads,
        policy,
        fault,
        store,
    )
    .expect("cluster sizing")
}

/// Co-optimises the ALU under an injected fault plan and returns the
/// deterministic-mode trace JSON plus the sizing.
fn faulted_cluster_trace(threads: usize) -> (String, ClusterSizing) {
    let fault = FaultPlan {
        error_at: vec![1],
        ..FaultPlan::none()
    };
    let (sizing, report) = size_alu(threads, FailurePolicy::quarantine(4), &fault, None);
    let mut trace = TraceReport::new("cluster_determinism");
    trace.push_phase(report.to_phase("cluster", &sizing));
    (trace.to_json(TraceMode::Deterministic), sizing)
}

#[test]
fn clustered_deterministic_trace_is_byte_identical_across_thread_counts() {
    let (serial, s1) = faulted_cluster_trace(1);
    // The fault must actually bite (cluster 1 quarantined), or this
    // test pins nothing.
    assert!(serial.contains("\"quarantined\": ["), "{serial}");
    for threads in [2usize, 8] {
        let (par, s) = faulted_cluster_trace(threads);
        assert_eq!(
            par, serial,
            "deterministic cluster trace differs at threads={threads}"
        );
        assert_eq!(s, s1, "sizing differs at threads={threads}");
    }
}

#[test]
fn returned_solution_is_never_worse_than_the_single_device() {
    let (sizing, report) = size_alu(2, FailurePolicy::FailFast, &FaultPlan::none(), None);
    assert!(report.n_clusters > 1);
    if let Some(single) = sizing.single_w_over_l {
        assert!(
            sizing.total_width() <= single + 1e-9,
            "returned {} vs single {single}",
            sizing.total_width()
        );
    }
}

#[test]
fn warm_store_rerun_replays_every_evaluation() {
    let path = scratch("warm");
    let _c = Cleanup(path.clone());

    let cold_store = Store::open(&path).expect("open");
    let (cold, cold_report) = size_alu(
        2,
        FailurePolicy::FailFast,
        &FaultPlan::none(),
        Some(&cold_store),
    );
    assert!(cold_report.health.runs.cache_misses > 0, "cold run writes");
    drop(cold_store);

    // Reopen: every evaluation replays, nothing is simulated, and the
    // sizing is identical — even at a different thread count.
    let warm_store = Store::open(&path).expect("reopen");
    let (warm, warm_report) = size_alu(
        8,
        FailurePolicy::FailFast,
        &FaultPlan::none(),
        Some(&warm_store),
    );
    assert_eq!(warm_report.health.runs.cache_misses, 0, "warm run is free");
    assert_eq!(
        warm_report.health.runs.cache_hits,
        cold_report.health.runs.cache_hits + cold_report.health.runs.cache_misses,
        "every cold evaluation replays warm"
    );
    assert_eq!(warm, cold, "warm sizing must be identical");
}
