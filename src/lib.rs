//! Umbrella crate for the MTCMOS sizing reproduction suite.
//!
//! Re-exports every subsystem crate so the examples and integration tests
//! can use a single dependency. See `README.md` for the tour and
//! `DESIGN.md` for the per-experiment index.

pub use mtk_circuits as circuits;
pub use mtk_core as core;
pub use mtk_fe as fe;
pub use mtk_netlist as netlist;
pub use mtk_num as num;
pub use mtk_spice as spice;
pub use mtk_store as store;
pub use mtk_trace as trace;
pub use mtk_wave as wave;
