#!/usr/bin/env bash
# Tier-1 verification, run with zero network access. Fails on any test
# failure, on a workspace build failure, and on any clippy warning
# anywhere in the workspace.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== formatting =="
cargo fmt --check

echo "== tier 1: release build =="
cargo build --release

echo "== tier 1: test suite =="
cargo test -q

echo "== fault-tolerance contract (quarantine/panic isolation) =="
cargo test -q --test fault_injection

echo "== trace determinism & golden schema contract =="
cargo test -q --test trace_determinism

echo "== mc determinism contract (thread invariance + warm store) =="
cargo test -q --test mc_determinism

echo "== numeric edge cases stay hard errors in the release profile =="
# `next_f64_in` once guarded its interval with debug_assert!, so the
# release build silently extrapolated on reversed bounds. Pin the
# release-profile behaviour of the hardened PRNG module.
cargo test -q --release -p mtk-num prng

echo "== whole workspace must be clippy-clean =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== docs must build warning-free =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "== experiment harness (release) =="
cargo build --release -p mtk-bench

echo "== bench-harness targets still compile =="
cargo build -p mtk-bench --benches --features bench-harness

echo "== golden .mtk files match the generators =="
golden_dir="$(mktemp -d /tmp/ci_golden.XXXXXX)"
trap 'rm -rf "$golden_dir"' EXIT
cargo run --release -p mtk-bench --bin mtk -- gen --all --dir "$golden_dir"
for f in "$golden_dir"/*.mtk; do
  cmp "$f" "examples/$(basename "$f")" || {
    echo "ci: examples/$(basename "$f") is stale — regenerate with 'mtk gen --all'"
    exit 1
  }
done

echo "== mtk driver smoke (lint + deterministic screen on a golden file) =="
mtk_trace="$(mktemp /tmp/ci_mtk_trace.XXXXXX.json)"
trap 'rm -rf "$golden_dir" "$mtk_trace"' EXIT
cargo run --release -p mtk-bench --bin mtk -- lint examples/adder3.mtk
cargo run --release -p mtk-bench --bin mtk -- screen examples/adder3.mtk \
  --stride 16 --threads 2 --trace-deterministic --trace-json "$mtk_trace"

echo "== mtk smoke trace validates against the documented schema =="
cargo run --release -p mtk-bench --bin trace_check -- "$mtk_trace"

echo "== mtk mc smoke: deterministic Monte Carlo + warm store replay =="
# Cold run writes every trial through to the store; the warm rerun must
# replay all of them without touching the simulator, and both traces
# must validate against the schema.
mc_store="$(mktemp /tmp/ci_mc_store.XXXXXX.bin)"
mc_trace="$(mktemp /tmp/ci_mc_trace.XXXXXX.json)"
trap 'rm -rf "$golden_dir" "$mtk_trace" "$mc_store" "$mc_store.lock" "$mc_trace"' EXIT
cargo run --release -p mtk-bench --bin mtk -- mc examples/adder3.mtk \
  --smoke --sigma-vt 0.03 --sigma-kp 0.05 --sigma-w 0.04 --target 0.25 \
  --threads 2 --store "$mc_store" --trace-deterministic --trace-json "$mc_trace"
cargo run --release -p mtk-bench --bin trace_check -- "$mc_trace"
mc_warm="$(target/release/mtk mc examples/adder3.mtk \
  --smoke --sigma-vt 0.03 --sigma-kp 0.05 --sigma-w 0.04 --target 0.25 \
  --threads 8 --store "$mc_store" --trace-deterministic --trace-json "$mc_trace")"
grep -q ", 0 simulated" <<<"$mc_warm" || {
  echo "ci: warm mc rerun did simulator work: $mc_warm"
  exit 1
}
cargo run --release -p mtk-bench --bin trace_check -- "$mc_trace"

echo "== mtk cluster smoke: thread invariance, never-worse gate, warm replay =="
clu_store="$(mktemp /tmp/ci_clu_store.XXXXXX.bin)"
clu_a="$(mktemp /tmp/ci_clu_a.XXXXXX.json)"
clu_b="$(mktemp /tmp/ci_clu_b.XXXXXX.json)"
trap 'rm -rf "$golden_dir" "$mtk_trace" "$mc_store" "$mc_store.lock" "$mc_trace" "$clu_store" "$clu_store.lock" "$clu_a" "$clu_b"' EXIT
# Deterministic cluster traces must be byte-identical at any thread count.
cargo run --release -p mtk-bench --bin mtk -- cluster examples/mul16.mtk \
  --smoke --clusters 4 --threads 1 --trace-deterministic --trace-json "$clu_a" >/dev/null
for t in 2 8; do
  target/release/mtk cluster examples/mul16.mtk \
    --smoke --clusters 4 --threads "$t" --trace-deterministic --trace-json "$clu_b" >/dev/null
  cmp "$clu_a" "$clu_b" || { echo "ci: cluster trace differs at threads=$t"; exit 1; }
done
cargo run --release -p mtk-bench --bin trace_check -- "$clu_a"
# EXT-CLUSTER width gate on the 16x16 multiplier: the returned solution
# must use no more total sleep width than the single shared device (the
# never-worse rule, DESIGN.md §15.3).
clu_cold="$(target/release/mtk cluster examples/mul16.mtk \
  --smoke --clusters 4 --threads 2 --store "$clu_store")"
clu_summary="$(grep 'single-device W/L' <<<"$clu_cold")" || {
  echo "ci: cluster smoke printed no never-worse summary: $clu_cold"; exit 1; }
clu_total="$(sed -n 's/^clustered total W\/L = \([0-9.]*\).*/\1/p' <<<"$clu_summary")"
clu_single="$(sed -n 's/.*single-device W\/L = \([0-9.]*\).*/\1/p' <<<"$clu_summary")"
[ -n "$clu_single" ] || { echo "ci: single-device solution infeasible in cluster smoke"; exit 1; }
if grep -q 'returned the single-device solution' <<<"$clu_summary"; then
  clu_returned="$clu_single"
else
  clu_returned="$clu_total"
fi
awk -v r="$clu_returned" -v s="$clu_single" 'BEGIN { exit !(r <= s + 1e-9) }' || {
  echo "ci: never-worse rule violated — returned $clu_returned vs single $clu_single"
  exit 1
}
# The warm rerun must replay every evaluation from the store.
clu_warm="$(target/release/mtk cluster examples/mul16.mtk \
  --smoke --clusters 4 --threads 8 --store "$clu_store")"
grep -q ", 0 simulated" <<<"$clu_warm" || {
  echo "ci: warm cluster rerun did simulator work: $clu_warm"
  exit 1
}

echo "== hybrid pipeline smoke (4-bit adder screen + top-2 SPICE verify) =="
trace_json="$(mktemp /tmp/ci_trace.XXXXXX.json)"
trap 'rm -rf "$golden_dir" "$mtk_trace" "$mc_store" "$mc_store.lock" "$mc_trace" "$clu_store" "$clu_store.lock" "$clu_a" "$clu_b" "$trace_json"' EXIT
cargo run --release -p mtk-bench --bin ext_screening -- \
  --smoke --adder-bits 4 --stride 259 --top-k 2 --threads 2 \
  --trace-json "$trace_json"

echo "== smoke trace validates against the documented schema =="
cargo run --release -p mtk-bench --bin trace_check -- "$trace_json"

echo "== serve smoke: store-backed replay + graceful SIGTERM drain =="
# Starts `mtk serve` with a persistent store on an ephemeral port, runs
# the same hybrid job twice (the second must be a byte-identical store
# replay, visible in the trace counters), then TERMs the server and
# requires a clean drain (exit 0). Corruption recovery is covered by
# `cargo test` (crates/store/tests/corruption.rs, tests/store_persistence.rs).
serve_log="$(mktemp /tmp/ci_serve.XXXXXX.log)"
serve_store="$(mktemp /tmp/ci_serve_store.XXXXXX.bin)"
trap 'rm -rf "$golden_dir" "$mtk_trace" "$mc_store" "$mc_store.lock" "$mc_trace" "$clu_store" "$clu_store.lock" "$clu_a" "$clu_b" "$trace_json" "$serve_log" "$serve_store" "$serve_store.lock"' EXIT
target/release/mtk serve --addr 127.0.0.1:0 --store "$serve_store" >"$serve_log" &
serve_pid=$!
for _ in $(seq 1 100); do
  grep -q "listening on" "$serve_log" 2>/dev/null && break
  sleep 0.1
done
serve_addr="$(sed -n 's/^mtk serve: listening on //p' "$serve_log" | head -1)"
[ -n "$serve_addr" ] || { echo "ci: mtk serve never reported its address"; exit 1; }
first="$(target/release/mtk client "$serve_addr" hybrid examples/invtree.mtk --top-k 2)"
second="$(target/release/mtk client "$serve_addr" hybrid examples/invtree.mtk --top-k 2)"
grep -q '"cached":false' <<<"$first" || { echo "ci: first serve response not computed fresh"; exit 1; }
grep -q '"cached":true' <<<"$second" || { echo "ci: second serve response missed the store"; exit 1; }
if [ "${second/\"cached\":true/\"cached\":false}" != "$first" ]; then
  echo "ci: store replay is not byte-identical to the computed response"
  exit 1
fi
serve_status="$(target/release/mtk client "$serve_addr" status)"
grep -q '"store_hits":1' <<<"$serve_status" || {
  echo "ci: serve trace counters do not show the store hit: $serve_status"
  exit 1
}
kill -TERM "$serve_pid"
wait "$serve_pid" # non-zero drain exit fails the script (set -e)
grep -q "drained" "$serve_log" || { echo "ci: serve did not report a graceful drain"; exit 1; }

echo "== interop smoke: deck export/import identity + waveform exports =="
# Export a golden design as a hint-carrying SPICE deck, re-import it
# (structural gate recognition), and demand the canonical .mtk comes
# back byte-identical to the committed golden.
interop_dir="$(mktemp -d /tmp/ci_interop.XXXXXX)"
trap 'rm -rf "$golden_dir" "$mtk_trace" "$mc_store" "$mc_store.lock" "$mc_trace" "$clu_store" "$clu_store.lock" "$clu_a" "$clu_b" "$trace_json" "$serve_log" "$serve_store" "$serve_store.lock" "$interop_dir"' EXIT
target/release/mtk export examples/adder3.mtk --w-over-l 8 --out "$interop_dir/adder3.ckt"
target/release/mtk import "$interop_dir/adder3.ckt" --out "$interop_dir/adder3_back.mtk" >/dev/null
cmp "$interop_dir/adder3_back.mtk" examples/adder3.mtk || {
  echo "ci: deck export/import round trip is not byte-identical"; exit 1; }
# A hand-written .subckt deck must flatten, recognize, and run through
# the sizing flow end to end.
cat > "$interop_dir/subckt.ckt" <<'DECK'
* two-stage buffer from a subckt, mtcmos footer
.model mn nmos level=1 vto=0.55 kp=110u gamma=0.4 phi=0.8 lambda=0.04
.model mp pmos level=1 vto=-0.55 kp=55u gamma=0.4 phi=0.8 lambda=0.04
.model msleep nmos level=1 vto=0.8 kp=110u gamma=0.4 phi=0.8 lambda=0.04
.subckt inv in out vss
m_n out in vss vss mn w=1u l=1u
m_p out in vdd vdd mp w=2u l=1u
.ends
.global vdd
vdd vdd 0 dc 3.3
vsleep sleep 0 dc 3.3
msl vgnd sleep 0 0 msleep w=12u l=1u
vin_a a 0 dc 0
xu1 a m vgnd inv
xu2 m y vgnd inv
DECK
target/release/mtk import "$interop_dir/subckt.ckt" --out "$interop_dir/subckt.mtk" >/dev/null
target/release/mtk size "$interop_dir/subckt.mtk" --target 0.05 >/dev/null
# Deterministic screen with waveform exports: the rawfile, the VCD, and
# the trace must be byte-identical across thread counts, and the trace
# (schema v6, with the wave counters) must validate.
for t in 1 8; do
  target/release/mtk screen examples/adder3.mtk --stride 16 --threads "$t" \
    --raw "$interop_dir/s$t.raw" --vcd "$interop_dir/s$t.vcd" \
    --trace-deterministic --trace-json "$interop_dir/s$t.json" >/dev/null
done
cmp "$interop_dir/s1.raw" "$interop_dir/s8.raw" || { echo "ci: rawfile differs across threads"; exit 1; }
cmp "$interop_dir/s1.vcd" "$interop_dir/s8.vcd" || { echo "ci: VCD differs across threads"; exit 1; }
cmp "$interop_dir/s1.json" "$interop_dir/s8.json" || { echo "ci: screen trace differs across threads"; exit 1; }
grep -q '"wave_raw_points": 0' "$interop_dir/s1.json" && {
  echo "ci: screen --raw recorded no points"; exit 1; }
cargo run --release -p mtk-bench --bin trace_check -- "$interop_dir/s1.json"

echo "== bench smoke: kernel speed file regenerates, validates, and gates =="
# Regenerates BENCH_speed.json (schema-validated by the writer itself),
# then fails on any regression beyond the tolerance vs the committed
# baseline or an event-vs-dense speedup below the gate floor. Timings on
# loaded or slow hosts are noisy — skip with MTK_SKIP_BENCH=1.
if [[ "${MTK_SKIP_BENCH:-0}" == "1" ]]; then
  echo "bench smoke skipped (MTK_SKIP_BENCH=1)"
else
  bench_json="$(mktemp /tmp/ci_bench.XXXXXX.json)"
  trap 'rm -rf "$golden_dir" "$mtk_trace" "$mc_store" "$mc_store.lock" "$mc_trace" "$clu_store" "$clu_store.lock" "$clu_a" "$clu_b" "$trace_json" "$serve_log" "$serve_store" "$serve_store.lock" "$interop_dir" "$bench_json"' EXIT
  cargo run --release -p mtk-bench --bin speed_comparison -- \
    --no-spice --samples 3 --warmup 1 \
    --json "$bench_json" --check-against BENCH_speed.json
fi

echo "ci: all green"
