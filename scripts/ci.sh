#!/usr/bin/env bash
# Tier-1 verification, run with zero network access. Fails on any test
# failure, on a workspace build failure, and on any clippy warning
# anywhere in the workspace.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== formatting =="
cargo fmt --check

echo "== tier 1: release build =="
cargo build --release

echo "== tier 1: test suite =="
cargo test -q

echo "== fault-tolerance contract (quarantine/panic isolation) =="
cargo test -q --test fault_injection

echo "== trace determinism & golden schema contract =="
cargo test -q --test trace_determinism

echo "== whole workspace must be clippy-clean =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== docs must build warning-free =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "== experiment harness (release) =="
cargo build --release -p mtk-bench

echo "== bench-harness targets still compile =="
cargo build -p mtk-bench --benches --features bench-harness

echo "== hybrid pipeline smoke (4-bit adder screen + top-2 SPICE verify) =="
trace_json="$(mktemp /tmp/ci_trace.XXXXXX.json)"
trap 'rm -f "$trace_json"' EXIT
cargo run --release -p mtk-bench --bin ext_screening -- \
  --smoke --adder-bits 4 --stride 259 --top-k 2 --threads 2 \
  --trace-json "$trace_json"

echo "== smoke trace validates against the documented schema =="
cargo run --release -p mtk-bench --bin trace_check -- "$trace_json"

echo "ci: all green"
