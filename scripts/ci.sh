#!/usr/bin/env bash
# Tier-1 verification, run with zero network access. Fails on any test
# failure, on a workspace build failure, and on any clippy warning
# anywhere in the workspace.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== formatting =="
cargo fmt --check

echo "== tier 1: release build =="
cargo build --release

echo "== tier 1: test suite =="
cargo test -q

echo "== fault-tolerance contract (quarantine/panic isolation) =="
cargo test -q --test fault_injection

echo "== trace determinism & golden schema contract =="
cargo test -q --test trace_determinism

echo "== whole workspace must be clippy-clean =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== docs must build warning-free =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "== experiment harness (release) =="
cargo build --release -p mtk-bench

echo "== bench-harness targets still compile =="
cargo build -p mtk-bench --benches --features bench-harness

echo "== golden .mtk files match the generators =="
golden_dir="$(mktemp -d /tmp/ci_golden.XXXXXX)"
trap 'rm -rf "$golden_dir"' EXIT
cargo run --release -p mtk-bench --bin mtk -- gen --all --dir "$golden_dir"
for f in "$golden_dir"/*.mtk; do
  cmp "$f" "examples/$(basename "$f")" || {
    echo "ci: examples/$(basename "$f") is stale — regenerate with 'mtk gen --all'"
    exit 1
  }
done

echo "== mtk driver smoke (lint + deterministic screen on a golden file) =="
mtk_trace="$(mktemp /tmp/ci_mtk_trace.XXXXXX.json)"
trap 'rm -rf "$golden_dir" "$mtk_trace"' EXIT
cargo run --release -p mtk-bench --bin mtk -- lint examples/adder3.mtk
cargo run --release -p mtk-bench --bin mtk -- screen examples/adder3.mtk \
  --stride 16 --threads 2 --trace-deterministic --trace-json "$mtk_trace"

echo "== mtk smoke trace validates against the documented schema =="
cargo run --release -p mtk-bench --bin trace_check -- "$mtk_trace"

echo "== hybrid pipeline smoke (4-bit adder screen + top-2 SPICE verify) =="
trace_json="$(mktemp /tmp/ci_trace.XXXXXX.json)"
trap 'rm -rf "$golden_dir" "$mtk_trace" "$trace_json"' EXIT
cargo run --release -p mtk-bench --bin ext_screening -- \
  --smoke --adder-bits 4 --stride 259 --top-k 2 --threads 2 \
  --trace-json "$trace_json"

echo "== smoke trace validates against the documented schema =="
cargo run --release -p mtk-bench --bin trace_check -- "$trace_json"

echo "== bench smoke: kernel speed file regenerates, validates, and gates =="
# Regenerates BENCH_speed.json (schema-validated by the writer itself),
# then fails on any regression beyond the tolerance vs the committed
# baseline or an event-vs-dense speedup below the gate floor. Timings on
# loaded or slow hosts are noisy — skip with MTK_SKIP_BENCH=1.
if [[ "${MTK_SKIP_BENCH:-0}" == "1" ]]; then
  echo "bench smoke skipped (MTK_SKIP_BENCH=1)"
else
  bench_json="$(mktemp /tmp/ci_bench.XXXXXX.json)"
  trap 'rm -rf "$golden_dir" "$mtk_trace" "$trace_json" "$bench_json"' EXIT
  cargo run --release -p mtk-bench --bin speed_comparison -- \
    --no-spice --samples 3 --warmup 1 \
    --json "$bench_json" --check-against BENCH_speed.json
fi

echo "ci: all green"
