#!/usr/bin/env bash
# Tier-1 verification, run with zero network access. Fails on any test
# failure, on a workspace build failure, and on compiler warnings in the
# core crate.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== tier 1: release build =="
cargo build --release

echo "== tier 1: test suite =="
cargo test -q

echo "== mtk-core must be warning-free =="
touch crates/core/src/lib.rs  # force a recompile so warnings resurface
RUSTFLAGS="-D warnings" cargo build -p mtk-core

echo "== experiment harness (release) =="
cargo build --release -p mtk-bench

echo "== bench-harness targets still compile =="
cargo build -p mtk-bench --benches --features bench-harness

echo "ci: all green"
