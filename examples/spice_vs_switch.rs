//! Cross-checking the fast simulator against the transistor-level
//! engine, the way the paper's Figs 10/13 do.
//!
//! Runs several input-vector transitions of the 3-bit mirror adder
//! through both engines at the same sleep size and prints the delays
//! side by side.
//!
//! Run with: `cargo run --release --example spice_vs_switch`

use mtcmos_suite::circuits::adder::RippleAdder;
use mtcmos_suite::core::hybrid::{spice_delay_pair, SpiceRunConfig};
use mtcmos_suite::core::sizing::{vbsim_delay_pair, Transition};
use mtcmos_suite::core::vbsim::{Engine, SleepNetwork, VbsimOptions};
use mtcmos_suite::netlist::tech::Technology;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let add = RippleAdder::paper();
    let tech = Technology::l07();
    let engine = Engine::new(&add.netlist, &tech);
    let w_over_l = 10.0;
    let cfg = SpiceRunConfig::window(80e-9);

    println!("3-bit mirror adder, sleep W/L = {w_over_l}");
    println!("\n   vector            SPICE cmos/mtcmos [ns]    vbsim cmos/mtcmos [ns]");
    for &((a0, b0), (a1, b1)) in &[
        ((0u64, 0u64), (7u64, 5u64)),
        ((1, 0), (5, 6)),
        ((3, 3), (4, 4)),
        ((7, 0), (0, 7)),
        ((2, 5), (5, 2)),
    ] {
        let tr = Transition::new(add.input_values(a0, b0), add.input_values(a1, b1));
        let sp = spice_delay_pair(&add.netlist, &tech, &tr, None, w_over_l, &cfg)?;
        let vb = vbsim_delay_pair(
            &engine,
            &tr,
            None,
            SleepNetwork::Transistor { w_over_l },
            &VbsimOptions::default(),
        )?;
        match (sp, vb) {
            (Some(s), Some(v)) => println!(
                "({a0},{b0})->({a1},{b1})      {:>7.3} / {:<7.3}          {:>7.3} / {:<7.3}   \
                 (degr: {:.1}% vs {:.1}%)",
                s.cmos * 1e9,
                s.mtcmos * 1e9,
                v.cmos * 1e9,
                v.mtcmos * 1e9,
                s.degradation() * 100.0,
                v.degradation() * 100.0
            ),
            _ => println!("({a0},{b0})->({a1},{b1})      (no output transition)"),
        }
    }
    println!(
        "\nThe fast simulator is meant for *screening*: absolute delays sit below SPICE \
         (first-order saturation-current model), but vector-to-vector ordering tracks."
    );
    Ok(())
}
