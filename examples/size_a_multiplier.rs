//! The full sizing methodology on a carry-save multiplier.
//!
//! 1. Screen a large random vector space with the switch-level simulator
//!    to find the MTCMOS-sensitive transitions (§2.4: the worst CMOS
//!    vector is *not* the worst MTCMOS vector).
//! 2. Size the sleep transistor so the worst screened vector meets a 5 %
//!    degradation target.
//! 3. Compare against the two conservative baselines the paper
//!    criticises: peak-current sizing and sum-of-internal-widths sizing.
//!
//! Run with: `cargo run --release --example size_a_multiplier`

use mtcmos_suite::circuits::multiplier::{ArrayMultiplier, MultiplierSpec};
use mtcmos_suite::core::sizing::{
    peak_current_w_over_l, screen_vectors_par, size_for_target, sum_of_widths_w_over_l, Transition,
};
use mtcmos_suite::core::vbsim::{Engine, VbsimOptions};
use mtcmos_suite::netlist::logic::bits_lsb_first;
use mtcmos_suite::netlist::tech::Technology;
use mtcmos_suite::num::prng::Xoshiro256pp;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let m = ArrayMultiplier::new(&MultiplierSpec {
        bits: 6,
        ..MultiplierSpec::default()
    })?;
    let tech = Technology::l03();
    let engine = Engine::new(&m.netlist, &tech);
    let total_bits = 2 * m.bits() as u32;
    println!(
        "6x6 carry-save multiplier: {} transistors, Vdd={} V",
        m.netlist.total_transistors(),
        tech.vdd
    );

    // --- Step 1: screen 400 random vector transitions (in parallel;
    // sample i draws from PRNG stream (seed, i), so the sample set is
    // reproducible and independent of the thread count). ---
    let transitions: Vec<Transition> = (0..400u64)
        .map(|i| {
            let mut rng = Xoshiro256pp::stream(0xD_AC_19_97, i);
            let from = rng.next_below(1u64 << total_bits);
            let to = rng.next_below(1u64 << total_bits);
            Transition::new(
                bits_lsb_first(from, total_bits),
                bits_lsb_first(to, total_bits),
            )
        })
        .collect();
    let (screened, report) = screen_vectors_par(
        &m.netlist,
        &tech,
        &transitions,
        None,
        100.0,
        &VbsimOptions::default(),
        0, // all cores
    )?;
    println!(
        "screened {} random transitions across {} worker(s) in {:.2} s; {} exercise the outputs",
        transitions.len(),
        report.workers.len(),
        report.wall,
        screened.len()
    );
    println!("worst five at W/L=100:");
    for entry in screened.iter().take(5) {
        println!(
            "  #{:<4} degradation {:>6.2}%  (CMOS {:.3} ns -> MTCMOS {:.3} ns)",
            entry.index,
            entry.delays.degradation() * 100.0,
            entry.delays.cmos * 1e9,
            entry.delays.mtcmos * 1e9
        );
    }

    // --- Step 2: size for 5 % on the worst ten screened vectors. ---
    let worst: Vec<Transition> = screened
        .iter()
        .take(10)
        .map(|e| transitions[e.index].clone())
        .collect();
    let wl = size_for_target(
        &engine,
        &worst,
        None,
        0.05,
        (10.0, 5000.0),
        &VbsimOptions::default(),
    )?;
    println!("\nsized for <=5% worst-case degradation: sleep W/L = {wl:.0}");

    // --- Step 3: the conservative baselines. The peak-current rule
    // sizes for the largest current the block can draw, so take the
    // maximum over the screened worst set. ---
    let mut i_peak: f64 = 0.0;
    for tr in &worst {
        let cmos_run = engine.run(&tr.from, &tr.to, &VbsimOptions::cmos())?;
        i_peak = i_peak.max(cmos_run.peak_sleep_current());
    }
    let wl_peak = peak_current_w_over_l(&tech, i_peak, 0.05);
    let wl_sum = sum_of_widths_w_over_l(&m.netlist, &tech);
    println!(
        "peak-current sizing (Ipeak={:.2} mA, 50 mV budget): W/L = {wl_peak:.0}  ({:.1}x over)",
        i_peak * 1e3,
        wl_peak / wl
    );
    println!(
        "sum-of-widths sizing:                               W/L = {wl_sum:.0}  ({:.1}x over)",
        wl_sum / wl
    );
    println!(
        "\nthe methodology recovers a {:.0}% / {:.0}% area saving over the naive rules — \
         the paper's core argument.",
        (1.0 - wl / wl_peak) * 100.0,
        (1.0 - wl / wl_sum) * 100.0
    );
    Ok(())
}
