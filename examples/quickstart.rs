//! Quickstart: how much does a sleep transistor cost?
//!
//! Builds the paper's Fig 4 inverter tree, runs the variable-breakpoint
//! switch-level simulator across a range of sleep-transistor sizes, and
//! prints delay and virtual-ground bounce per size.
//!
//! Run with: `cargo run --release --example quickstart`

use mtcmos_suite::circuits::tree::InverterTree;
use mtcmos_suite::core::sizing::{degradation_sweep, Transition};
use mtcmos_suite::core::vbsim::{Engine, VbsimOptions};
use mtcmos_suite::netlist::logic::Logic;
use mtcmos_suite::netlist::tech::Technology;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's 1→3→9 inverter tree: when the input rises, all nine
    // third-stage inverters discharge through the shared sleep device.
    let tree = InverterTree::paper();
    let tech = Technology::l07();
    println!(
        "circuit: {} ({} gates, {} transistors), technology {} (Vdd={} V)",
        tree.netlist.name(),
        tree.netlist.cells().len(),
        tree.netlist.total_transistors(),
        tech.name,
        tech.vdd
    );

    let engine = Engine::new(&tree.netlist, &tech);
    let rising_input = Transition::new(vec![Logic::Zero], vec![Logic::One]);

    // Sweep the paper's Fig 5 sizes.
    let sweep = degradation_sweep(
        &engine,
        &rising_input,
        None,
        &[20.0, 17.0, 14.0, 11.0, 8.0, 5.0, 2.0],
        &VbsimOptions::default(),
    )?;

    println!("\n W/L   delay [ns]   degradation   peak bounce [V]");
    for point in &sweep {
        let run = engine.run(
            &rising_input.from,
            &rising_input.to,
            &VbsimOptions::mtcmos(point.w_over_l),
        )?;
        println!(
            "{:>4}   {:>10.3}   {:>10.1}%   {:>14.3}",
            point.w_over_l,
            point.delays.mtcmos * 1e9,
            point.delays.degradation() * 100.0,
            run.peak_vgnd()
        );
    }
    println!(
        "\nCMOS baseline delay: {:.3} ns — shrink the sleep device and the shared \
         virtual ground bounces, starving every discharging gate at once.",
        sweep[0].delays.cmos * 1e9
    );
    Ok(())
}
