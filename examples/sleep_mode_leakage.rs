//! Why bother with MTCMOS at all: standby leakage with and without the
//! sleep transistor (paper §1).
//!
//! Builds a small low-V<sub>t</sub> block in the aggressive 0.3 µm
//! technology, solves its DC operating point with subthreshold models
//! enabled, and compares standby current in three configurations:
//! unguarded low-V<sub>t</sub>, MTCMOS active (sleep gate high), and
//! MTCMOS sleeping (sleep gate low).
//!
//! Run with: `cargo run --release --example sleep_mode_leakage`

use mtcmos_suite::circuits::tree::{InverterTree, TreeSpec};
use mtcmos_suite::netlist::expand::{expand, ExpandOptions};
use mtcmos_suite::netlist::logic::Logic;
use mtcmos_suite::netlist::tech::Technology;
use mtcmos_suite::spice::dc::{operating_point, DcOptions};
use mtcmos_suite::spice::source::SourceWave;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tree = InverterTree::new(&TreeSpec {
        fanout: 2,
        stages: 3,
        load_cap: 20e-15,
        drive: 1.0,
    })?;
    let tech = Technology::l03();
    // Resolve femtoampere currents: extend the gmin ladder far below the
    // default floor.
    let mut dc = DcOptions::default();
    dc.gmin_steps.extend([1e-13, 1e-14, 1e-15, 1e-16]);

    let leak_of = |sleep_gate: Option<f64>| -> Result<f64, Box<dyn std::error::Error>> {
        let opts = ExpandOptions {
            with_leakage: true,
            ..(if sleep_gate.is_some() {
                ExpandOptions::mtcmos(10.0)
            } else {
                ExpandOptions::cmos()
            })
        };
        let mut ex = expand(&tree.netlist, &tech, &opts)?;
        if sleep_gate.is_none() {
            // The unguarded block settles at its logic state; seed the OP.
            let settled = tree.netlist.evaluate(&[Logic::Zero])?;
            ex.apply_initial_state(&settled);
        }
        if let Some(vg) = sleep_gate {
            let vsleep = ex.circuit.find_device("vsleep").expect("vsleep exists");
            ex.circuit.set_vsource_wave(vsleep, SourceWave::Dc(vg))?;
        }
        let op = operating_point(&ex.circuit, &dc)?;
        Ok(op.source_current("vdd").expect("vdd source").abs())
    };

    let unguarded = leak_of(None)?;
    let active = leak_of(Some(tech.vdd))?;
    let sleeping = leak_of(Some(0.0))?;

    println!(
        "standby supply current of a {}-gate low-Vt block:",
        tree.netlist.cells().len()
    );
    println!("  unguarded low-Vt CMOS : {:>12.4} nA", unguarded * 1e9);
    println!("  MTCMOS, active mode   : {:>12.4} nA", active * 1e9);
    println!(
        "  MTCMOS, sleep mode    : {:>12.6} nA  ({:.0}x below unguarded)",
        sleeping * 1e9,
        unguarded / sleeping
    );
    println!(
        "\nIn active mode the high-Vt device is on and leakage stays at the unguarded\n\
         nA scale (the absolute nA values carry Newton-tolerance noise); asleep, the\n\
         device starves the stack and the virtual ground self-reverse-biases the block."
    );
    Ok(())
}
