//! The `.mtk` text netlist frontend.
//!
//! The paper presents a *tool* a designer points at an arbitrary
//! low-V<sub>t</sub> block; this crate is the way such a block gets into
//! the suite without writing Rust. A `.mtk` file is a line-oriented
//! description of a gate-level circuit — cells, nets, primary I/O, an
//! optional technology override, and optional stimulus vectors — that
//! [`parse_str`] turns into the same [`mtk_netlist::netlist::Netlist`]
//! the built-in generators produce. The grammar, the stable error-code
//! table, and the parsed-vs-programmatic determinism guarantee are
//! specified in `DESIGN.md` §11.
//!
//! Three contracts this crate keeps:
//!
//! * **Precise diagnostics.** Every rejection carries `file:line:col`,
//!   a stable [`ErrorCode`], and — for misspelled cell kinds, nets,
//!   directives, and technology parameters — a "did you mean" hint.
//!   Malformed input never panics.
//! * **Canonical round-trip.** [`Design::to_mtk`] is a pure function of
//!   the design; `parse(write(d))` reproduces `d` exactly (netlist,
//!   technology, vectors), and `write(parse(s))` is a fixpoint for
//!   canonically written files. Byte-exact `f64` round-tripping rides on
//!   Rust's shortest-representation float formatting.
//! * **Identity with the generators.** A netlist loaded from a `.mtk`
//!   export of a generator fingerprints identically to the
//!   programmatically built one, so every downstream cache key, screen
//!   ranking, and deterministic trace is byte-identical between the two
//!   paths.
//!
//! # Example
//!
//! ```
//! let src = "\
//! mtk 1
//! circuit buf2
//! tech l07
//! net a
//! net mid
//! net y cap=1e-14
//! input a
//! output y
//! cell i1 inv a -> mid
//! cell i2 inv mid -> y
//! vector 0 -> 1
//! end
//! ";
//! let design = mtk_fe::parse_str(src, "buf2.mtk")?;
//! assert_eq!(design.netlist.cells().len(), 2);
//! assert_eq!(design.vectors.len(), 1);
//! let canonical = design.to_mtk();
//! let reparsed = mtk_fe::parse_str(&canonical, "buf2.mtk")?;
//! assert_eq!(reparsed.netlist, design.netlist);
//! # Ok::<(), mtk_fe::ParseError>(())
//! ```

#![warn(missing_docs)]

pub mod diag;
pub mod interop;
pub mod parse;
pub mod write;

use mtk_netlist::lint::{lint, LintIssue};
use mtk_netlist::logic::Logic;
use mtk_netlist::netlist::Netlist;
use mtk_netlist::tech::Technology;
use std::collections::HashMap;

pub use diag::{ErrorCode, ParseError};
pub use parse::parse_str;

/// The `.mtk` format version this crate reads and writes (the integer
/// after the `mtk` magic on the first line).
pub const FORMAT_VERSION: u64 = 1;

/// One stimulus transition from a `vector` line: settled levels before
/// the step and the levels applied at `t = 0`, both in primary-input
/// declaration order.
#[derive(Debug, Clone, PartialEq)]
pub struct Stimulus {
    /// Levels before the transition.
    pub from: Vec<Logic>,
    /// Levels after the transition.
    pub to: Vec<Logic>,
}

/// Where each named construct of a parsed design came from, for
/// rendering lint findings against the source file. Designs built
/// programmatically carry an empty map (no lines to point at).
#[derive(Debug, Clone, Default)]
pub struct SourceMap {
    /// The file name used in diagnostics.
    pub file: String,
    net_lines: HashMap<String, usize>,
    cell_lines: HashMap<String, usize>,
}

impl SourceMap {
    /// An empty map carrying only a file name.
    pub fn empty(file: &str) -> Self {
        SourceMap {
            file: file.to_string(),
            ..SourceMap::default()
        }
    }

    pub(crate) fn record_net(&mut self, name: &str, line: usize) {
        self.net_lines.insert(name.to_string(), line);
    }

    pub(crate) fn record_cell(&mut self, name: &str, line: usize) {
        self.cell_lines.insert(name.to_string(), line);
    }

    /// The 1-based source line a net was declared on.
    pub fn net_line(&self, name: &str) -> Option<usize> {
        self.net_lines.get(name).copied()
    }

    /// The 1-based source line a cell was instantiated on.
    pub fn cell_line(&self, name: &str) -> Option<usize> {
        self.cell_lines.get(name).copied()
    }

    /// The source line a lint finding refers to (the declaration of the
    /// offending net or cell).
    pub fn line_of(&self, issue: &LintIssue) -> Option<usize> {
        match issue {
            LintIssue::FloatingNet(n) | LintIssue::DanglingNet(n) | LintIssue::UnusedInput(n) => {
                self.net_line(n)
            }
            LintIssue::UnreachableCell(c) => self.cell_line(c),
        }
    }
}

/// A short stable slug identifying a lint finding kind, used in the
/// one-line rendering (`warning[floating-net]: …`).
pub fn lint_slug(issue: &LintIssue) -> &'static str {
    match issue {
        LintIssue::FloatingNet(_) => "floating-net",
        LintIssue::DanglingNet(_) => "dangling-net",
        LintIssue::UnreachableCell(_) => "unreachable-cell",
        LintIssue::UnusedInput(_) => "unused-input",
    }
}

/// A complete design: the circuit, the technology it is meant to run
/// under, and optional stimulus vectors — everything one `.mtk` file
/// describes and everything the unified driver needs to run the flow.
#[derive(Debug, Clone)]
pub struct Design {
    /// The gate-level netlist.
    pub netlist: Netlist,
    /// Technology parameters (a preset, possibly with per-parameter
    /// overrides from `tech.*` lines).
    pub tech: Technology,
    /// Stimulus transitions from `vector` lines, in file order.
    pub vectors: Vec<Stimulus>,
    /// Source locations for diagnostics (empty for programmatic designs).
    pub source: SourceMap,
}

impl Design {
    /// Wraps a programmatically built netlist (no vectors, no source
    /// locations).
    pub fn new(netlist: Netlist, tech: Technology) -> Self {
        Design {
            netlist,
            tech,
            vectors: Vec::new(),
            source: SourceMap::default(),
        }
    }

    /// Attaches stimulus vectors (builder style).
    #[must_use]
    pub fn with_vectors(mut self, vectors: Vec<Stimulus>) -> Self {
        self.vectors = vectors;
        self
    }

    /// Serializes the design to canonical `.mtk` text. See
    /// [`write::write_mtk`] — panics when the design carries a
    /// non-finite tech parameter, net cap, or cell drive (no grammar
    /// representation exists); use [`Design::try_to_mtk`] to get the
    /// rejection as a value.
    pub fn to_mtk(&self) -> String {
        write::write_mtk(self)
    }

    /// [`Design::to_mtk`] with non-finite values rejected as a
    /// [`write::WriteError`] instead of a panic.
    pub fn try_to_mtk(&self) -> Result<String, write::WriteError> {
        write::try_write_mtk(self)
    }

    /// Runs the structural lint over the netlist.
    pub fn lint(&self) -> Vec<LintIssue> {
        lint(&self.netlist)
    }

    /// Renders lint findings one per line as
    /// `file:line: warning[slug]: message`, with the source line of the
    /// offending declaration when known (0 when not).
    pub fn render_lint(&self, issues: &[LintIssue]) -> Vec<String> {
        issues
            .iter()
            .map(|issue| {
                format!(
                    "{}:{}: warning[{}]: {}",
                    if self.source.file.is_empty() {
                        "<memory>"
                    } else {
                        &self.source.file
                    },
                    self.source.line_of(issue).unwrap_or(0),
                    lint_slug(issue),
                    issue
                )
            })
            .collect()
    }
}

/// One `tech.*` parameter entry: key, getter, setter.
pub(crate) type TechParam = (
    &'static str,
    fn(&Technology) -> f64,
    fn(&mut Technology, f64),
);

/// The technology parameters a `tech.<param> <value>` line can override,
/// with their accessors. Shared by the parser (set) and the writer
/// (diff against the base preset), so the two can never disagree on the
/// parameter set.
pub(crate) const TECH_PARAMS: &[TechParam] = &[
    ("vdd", |t| t.vdd, |t, v| t.vdd = v),
    ("vtn", |t| t.vtn, |t, v| t.vtn = v),
    ("vtp", |t| t.vtp, |t, v| t.vtp = v),
    ("vt_high", |t| t.vt_high, |t, v| t.vt_high = v),
    ("kp_n", |t| t.kp_n, |t, v| t.kp_n = v),
    ("kp_p", |t| t.kp_p, |t, v| t.kp_p = v),
    ("gamma", |t| t.gamma, |t, v| t.gamma = v),
    ("phi", |t| t.phi, |t, v| t.phi = v),
    ("lambda", |t| t.lambda, |t, v| t.lambda = v),
    ("alpha", |t| t.alpha, |t, v| t.alpha = v),
    ("c_gate", |t| t.c_gate, |t, v| t.c_gate = v),
    ("c_drain", |t| t.c_drain, |t, v| t.c_drain = v),
    ("unit_wn", |t| t.unit_wn, |t, v| t.unit_wn = v),
    ("unit_wp", |t| t.unit_wp, |t, v| t.unit_wp = v),
    ("temp_c", |t| t.temp_c, |t, v| t.temp_c = v),
    ("sigma_vt", |t| t.sigma_vt, |t, v| t.sigma_vt = v),
    ("sigma_kp", |t| t.sigma_kp, |t, v| t.sigma_kp = v),
    ("sigma_w", |t| t.sigma_w, |t, v| t.sigma_w = v),
    ("sub_n", |t| t.subthreshold.n, |t, v| t.subthreshold.n = v),
    (
        "sub_i0",
        |t| t.subthreshold.i0,
        |t, v| t.subthreshold.i0 = v,
    ),
];

#[cfg(test)]
mod tests {
    use super::*;
    use mtk_netlist::cell::CellKind;

    fn chain() -> Design {
        let mut nl = Netlist::new("chain");
        let a = nl.add_net("a").unwrap();
        let y = nl.add_net("y").unwrap();
        nl.mark_primary_input(a).unwrap();
        nl.add_cell("i1", CellKind::Inv, vec![a], y, 1.0).unwrap();
        nl.mark_primary_output(y);
        Design::new(nl, Technology::l07())
    }

    #[test]
    fn lint_renders_with_line_zero_for_programmatic_designs() {
        let mut d = chain();
        let f = d.netlist.add_net("float").unwrap();
        let z = d.netlist.add_net("z").unwrap();
        let a = d.netlist.find_net("a").unwrap();
        d.netlist
            .add_cell("g", CellKind::Nand2, vec![a, f], z, 1.0)
            .unwrap();
        let issues = d.lint();
        let lines = d.render_lint(&issues);
        assert!(!lines.is_empty());
        for l in &lines {
            assert!(l.starts_with("<memory>:0: warning["), "{l}");
        }
    }

    #[test]
    fn tech_params_cover_every_field_and_are_distinct() {
        let base = Technology::l07();
        for (name, get, set) in TECH_PARAMS {
            let mut t = base.clone();
            let v = get(&base) * 2.0 + 1.0;
            set(&mut t, v);
            assert_eq!(get(&t), v, "param {name} does not round-trip");
            assert_ne!(
                t.fingerprint(),
                base.fingerprint(),
                "param {name} does not feed the technology fingerprint"
            );
        }
        let mut names: Vec<_> = TECH_PARAMS.iter().map(|p| p.0).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), TECH_PARAMS.len(), "duplicate param names");
    }

    #[test]
    fn lint_slugs_are_stable() {
        assert_eq!(
            lint_slug(&LintIssue::FloatingNet("x".into())),
            "floating-net"
        );
        assert_eq!(
            lint_slug(&LintIssue::DanglingNet("x".into())),
            "dangling-net"
        );
        assert_eq!(
            lint_slug(&LintIssue::UnreachableCell("x".into())),
            "unreachable-cell"
        );
        assert_eq!(
            lint_slug(&LintIssue::UnusedInput("x".into())),
            "unused-input"
        );
    }
}
