//! The canonical `.mtk` writer.
//!
//! [`write_mtk`] is a pure function of the design: the same design
//! always serializes to the same bytes, and the output is the *canonical
//! form* — parsing it and writing again reproduces it byte for byte
//! (the fixpoint the golden-file CI gate pins). Section order is fixed:
//! header, `circuit`, `tech` (+ overrides diffed against the preset),
//! nets in id order, `input`, `output`, ties, cells in id order,
//! vectors, `end`.

use crate::{Design, TECH_PARAMS};
use mtk_netlist::logic::Logic;
use mtk_netlist::tech::Technology;
use std::fmt::Write as _;

/// A design the canonical writer refuses to serialize: some numeric
/// field is `inf`/`NaN`, which the grammar cannot express (the parser
/// rejects non-finite literals with E006), so emitting it would break
/// the write→parse identity contract.
#[derive(Debug, Clone, PartialEq)]
pub struct WriteError {
    /// Which value was non-finite (e.g. `tech.vdd`, `net y cap`,
    /// `cell g1 drive`).
    pub what: String,
    /// The offending value (`inf`, `-inf`, or `NaN`).
    pub value: f64,
}

impl std::fmt::Display for WriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cannot write design: non-finite value {} in {}",
            self.value, self.what
        )
    }
}

impl std::error::Error for WriteError {}

/// The first non-finite numeric field of a design, if any — the value
/// [`try_write_mtk`] would refuse on. Scan order matches the canonical
/// section order (tech params, net caps, cell drives).
pub fn first_non_finite(design: &Design) -> Option<WriteError> {
    for (name, get, _) in TECH_PARAMS {
        let v = get(&design.tech);
        if !v.is_finite() {
            return Some(WriteError {
                what: format!("tech.{name}"),
                value: v,
            });
        }
    }
    for net in design.netlist.nets() {
        if !net.extra_cap.is_finite() {
            return Some(WriteError {
                what: format!("net {} cap", net.name),
                value: net.extra_cap,
            });
        }
    }
    for cell in design.netlist.cells() {
        if !cell.drive.is_finite() {
            return Some(WriteError {
                what: format!("cell {} drive", cell.name),
                value: cell.drive,
            });
        }
    }
    None
}

/// [`write_mtk`] with the non-finite check surfaced as a `Result`
/// instead of a panic — the form programmatic callers should prefer.
pub fn try_write_mtk(design: &Design) -> Result<String, WriteError> {
    match first_non_finite(design) {
        Some(e) => Err(e),
        None => Ok(write_mtk(design)),
    }
}

/// Serializes a design to canonical `.mtk` text.
///
/// Floats are written in Rust's shortest round-trip form (plain below
/// 10⁶, exponent notation otherwise), so every finite `f64` survives
/// write→parse exactly.
///
/// Two caveats, both outside what the parser can produce:
///
/// * a technology whose `name` is not a preset is diffed against `l07`
///   (the name itself cannot round-trip);
/// * stimulus vectors are dropped when the netlist has no primary
///   inputs (the grammar cannot express a zero-width vector).
///
/// # Panics
///
/// Panics when a tech parameter, net cap, or cell drive is `inf`/`NaN`
/// — such a value has no grammar representation and would silently
/// break round-tripping. Parsed designs can never contain one (the
/// parser rejects non-finite literals); programmatic callers that might
/// should use [`try_write_mtk`].
pub fn write_mtk(design: &Design) -> String {
    if let Some(e) = first_non_finite(design) {
        panic!("{e}");
    }
    let nl = &design.netlist;
    let mut out = String::new();
    let w = &mut out;
    writeln!(w, "mtk {}", crate::FORMAT_VERSION).expect("write to String");
    writeln!(w, "circuit {}", nl.name()).expect("write to String");

    let base = Technology::preset(design.tech.name).unwrap_or_else(Technology::l07);
    writeln!(w, "tech {}", base.name).expect("write to String");
    for (name, get, _) in TECH_PARAMS {
        let (have, want) = (get(&base), get(&design.tech));
        if have.to_bits() != want.to_bits() {
            writeln!(w, "tech.{name} {}", fmt_num(want)).expect("write to String");
        }
    }

    for net in nl.nets() {
        if net.extra_cap != 0.0 {
            writeln!(w, "net {} cap={}", net.name, fmt_num(net.extra_cap))
                .expect("write to String");
        } else {
            writeln!(w, "net {}", net.name).expect("write to String");
        }
    }

    for (marker, ports) in [
        ("input", nl.primary_inputs()),
        ("output", nl.primary_outputs()),
    ] {
        if !ports.is_empty() {
            write!(w, "{marker}").expect("write to String");
            for &id in ports {
                write!(w, " {}", nl.net(id).name).expect("write to String");
            }
            writeln!(w).expect("write to String");
        }
    }

    for id in nl.net_ids() {
        if let Some(v) = nl.net(id).tie {
            writeln!(w, "tie {} {v}", nl.net(id).name).expect("write to String");
        }
    }

    for cell in nl.cells() {
        write!(w, "cell {} {}", cell.name, cell.kind.name()).expect("write to String");
        for &inp in &cell.inputs {
            write!(w, " {}", nl.net(inp).name).expect("write to String");
        }
        write!(w, " -> {}", nl.net(cell.output).name).expect("write to String");
        if cell.drive != 1.0 {
            write!(w, " drive={}", fmt_num(cell.drive)).expect("write to String");
        }
        writeln!(w).expect("write to String");
    }

    if !nl.primary_inputs().is_empty() {
        for v in &design.vectors {
            writeln!(w, "vector {} -> {}", bits(&v.from), bits(&v.to)).expect("write to String");
        }
    }

    writeln!(w, "end").expect("write to String");
    out
}

fn bits(levels: &[Logic]) -> String {
    levels.iter().map(Logic::to_string).collect()
}

/// Shortest round-trip rendering of a finite `f64`: plain decimal in
/// the human-scale range, exponent notation outside it. Both forms use
/// Rust's shortest-digits algorithm, so `fmt_num(v).parse() == v`
/// exactly for every finite input.
pub(crate) fn fmt_num(v: f64) -> String {
    debug_assert!(v.is_finite(), "fmt_num on non-finite {v}");
    let a = v.abs();
    if v == 0.0 || (1e-4..1e6).contains(&a) {
        format!("{v}")
    } else {
        format!("{v:e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_str;
    use crate::Stimulus;
    use mtk_netlist::cell::CellKind;
    use mtk_netlist::netlist::Netlist;

    #[test]
    fn fmt_num_round_trips_awkward_values() {
        for v in [
            0.0,
            -0.0,
            1.0,
            -1.5,
            2.0 / 3.0,
            1e-14,
            1.7e-15,
            -3.25e-19,
            123456.789,
            9.999e5,
            1e6,
            f64::MIN_POSITIVE,
            f64::MAX,
        ] {
            let s = fmt_num(v);
            let back: f64 = s.parse().expect("reparse");
            assert_eq!(back.to_bits(), v.to_bits(), "{v} via `{s}`");
        }
    }

    #[test]
    fn writer_emits_canonical_sections_in_order() {
        let mut nl = Netlist::new("demo");
        let a = nl.add_net("a").unwrap();
        let gnd = nl.add_net("gnd").unwrap();
        let y = nl.add_net("y").unwrap();
        nl.mark_primary_input(a).unwrap();
        nl.tie_net(gnd, Logic::Zero).unwrap();
        nl.add_extra_cap(y, 2e-14);
        nl.add_cell("g1", CellKind::Nor2, vec![a, gnd], y, 3.0)
            .unwrap();
        nl.mark_primary_output(y);
        let mut tech = Technology::l03();
        tech.vdd = 0.9;
        let d = crate::Design::new(nl, tech).with_vectors(vec![Stimulus {
            from: vec![Logic::Zero],
            to: vec![Logic::One],
        }]);
        let text = d.to_mtk();
        assert_eq!(
            text,
            "\
mtk 1
circuit demo
tech l03
tech.vdd 0.9
net a
net gnd
net y cap=2e-14
input a
output y
tie gnd 0
cell g1 nor2 a gnd -> y drive=3
vector 0 -> 1
end
"
        );
    }

    #[test]
    fn write_parse_write_is_a_fixpoint() {
        let mut nl = Netlist::new("fix");
        let a = nl.add_net("a").unwrap();
        let b = nl.add_net("b").unwrap();
        let m = nl.add_net("m").unwrap();
        let y = nl.add_net("y").unwrap();
        nl.mark_primary_input(a).unwrap();
        nl.mark_primary_input(b).unwrap();
        nl.add_cell("n1", CellKind::Nand2, vec![a, b], m, 1.0)
            .unwrap();
        nl.add_cell("i1", CellKind::Inv, vec![m], y, 2.5).unwrap();
        nl.add_extra_cap(y, 1e-14);
        nl.mark_primary_output(y);
        let mut tech = Technology::l07();
        tech.alpha = 1.9;
        let d = crate::Design::new(nl, tech).with_vectors(vec![
            Stimulus {
                from: vec![Logic::Zero, Logic::One],
                to: vec![Logic::One, Logic::One],
            },
            Stimulus {
                from: vec![Logic::X, Logic::Zero],
                to: vec![Logic::One, Logic::Zero],
            },
        ]);
        let once = d.to_mtk();
        let parsed = parse_str(&once, "fix.mtk").unwrap();
        assert_eq!(parsed.netlist, d.netlist);
        assert_eq!(parsed.tech, d.tech);
        assert_eq!(parsed.vectors, d.vectors);
        assert_eq!(parsed.netlist.fingerprint(), d.netlist.fingerprint());
        let twice = parsed.to_mtk();
        assert_eq!(once, twice);
    }

    #[test]
    fn non_finite_values_are_rejected_not_emitted() {
        // A NaN cap used to serialize as `cap=NaN`, which the parser
        // then rejects (E006) — a silent round-trip break. The writer
        // now refuses up front.
        let mut nl = Netlist::new("bad");
        let a = nl.add_net("a").unwrap();
        let y = nl.add_net("y").unwrap();
        nl.mark_primary_input(a).unwrap();
        nl.add_cell("i1", CellKind::Inv, vec![a], y, 1.0).unwrap();
        nl.mark_primary_output(y);
        nl.add_extra_cap(y, f64::NAN);
        let d = crate::Design::new(nl, Technology::l07());
        let err = d.try_to_mtk().unwrap_err();
        assert_eq!(err.what, "net y cap");
        assert!(err.to_string().contains("non-finite"));

        let mut tech = Technology::l07();
        tech.sigma_vt = f64::INFINITY;
        let d2 = crate::Design::new(Netlist::new("t"), tech);
        assert_eq!(d2.try_to_mtk().unwrap_err().what, "tech.sigma_vt");

        // A finite design is untouched by the check.
        let ok = crate::Design::new(Netlist::new("ok"), Technology::l07());
        assert_eq!(ok.try_to_mtk().unwrap(), ok.to_mtk());
    }

    #[test]
    #[should_panic(expected = "non-finite value")]
    fn to_mtk_panics_on_non_finite_rather_than_corrupting() {
        let mut tech = Technology::l07();
        tech.vdd = f64::NAN;
        let _ = crate::Design::new(Netlist::new("p"), tech).to_mtk();
    }

    #[test]
    fn corner_and_sigma_fields_round_trip_as_tech_overrides() {
        let mut nl = Netlist::new("mc");
        let a = nl.add_net("a").unwrap();
        let y = nl.add_net("y").unwrap();
        nl.mark_primary_input(a).unwrap();
        nl.add_cell("i1", CellKind::Inv, vec![a], y, 1.0).unwrap();
        nl.mark_primary_output(y);
        let mut tech = Technology::l07().at_corner("slow").unwrap();
        tech.sigma_vt = 0.03;
        tech.sigma_kp = 0.05;
        tech.sigma_w = 0.02;
        let d = crate::Design::new(nl, tech);
        let text = d.to_mtk();
        assert!(text.contains("tech.temp_c 125"), "{text}");
        assert!(text.contains("tech.sigma_vt 0.03"), "{text}");
        let parsed = parse_str(&text, "mc.mtk").unwrap();
        assert_eq!(parsed.tech, d.tech);
        assert_eq!(parsed.tech.fingerprint(), d.tech.fingerprint());
        assert_eq!(parsed.to_mtk(), text, "fixpoint");
    }

    #[test]
    fn vectors_without_primary_inputs_are_dropped() {
        let nl = Netlist::new("empty");
        let d = crate::Design::new(nl, Technology::l07()).with_vectors(vec![Stimulus {
            from: vec![],
            to: vec![],
        }]);
        let text = d.to_mtk();
        assert!(!text.contains("vector"));
        parse_str(&text, "empty.mtk").unwrap();
    }
}
