//! The `.mtk` parser.
//!
//! Single pass, line oriented: statements are applied to the growing
//! [`Netlist`] in file order, so declare-before-use falls out of the
//! builder's own checks and every rejection points at the exact line
//! and column that caused it. The grammar is specified in DESIGN.md
//! §11; the stable error codes live in [`crate::diag`].

use crate::diag::{closest, ErrorCode, ParseError};
use crate::{Design, SourceMap, Stimulus, FORMAT_VERSION, TECH_PARAMS};
use mtk_netlist::cell::CellKind;
use mtk_netlist::hier::Module;
use mtk_netlist::logic::Logic;
use mtk_netlist::netlist::{NetId, Netlist};
use mtk_netlist::tech::Technology;
use mtk_netlist::NetlistError;

/// The known top-level directives, for "did you mean" suggestions.
const DIRECTIVES: [&str; 13] = [
    "circuit",
    "tech",
    "corner",
    "module",
    "endmodule",
    "net",
    "input",
    "output",
    "tie",
    "cell",
    "inst",
    "vector",
    "end",
];

/// The directives legal inside a `module` body.
const MODULE_DIRECTIVES: [&str; 6] = ["net", "input", "output", "tie", "cell", "endmodule"];

/// The technology presets a `tech` line may name.
const PRESETS: [&str; 2] = ["l07", "l03"];

/// Parses `.mtk` source text into a [`Design`].
///
/// `file` is used only for diagnostics (it is echoed in every
/// [`ParseError`] and stored in the design's [`SourceMap`]).
///
/// # Errors
///
/// Returns the first [`ParseError`] encountered, with a 1-based
/// line/column, a stable error code, and — where a close match exists —
/// a "did you mean" hint. Never panics on malformed input.
pub fn parse_str(src: &str, file: &str) -> Result<Design, ParseError> {
    Parser {
        file,
        netlist: None,
        tech: Technology::l07(),
        tech_preset_seen: false,
        tech_override_seen: false,
        corner_seen: false,
        vectors: Vec::new(),
        source: SourceMap::empty(file),
        end_seen: false,
        modules: Vec::new(),
        current_module: None,
    }
    .run(src)
}

/// One whitespace-delimited token with its 1-based source column.
struct Tok<'a> {
    text: &'a str,
    col: usize,
}

/// Splits a line into tokens, tracking 1-based character columns and
/// dropping everything from `#` onward.
fn tokenize(line: &str) -> Vec<Tok<'_>> {
    let mut toks = Vec::new();
    let mut start: Option<(usize, usize)> = None;
    let mut col = 0usize;
    for (i, ch) in line.char_indices() {
        col += 1;
        if ch == '#' {
            break;
        }
        if ch.is_whitespace() {
            if let Some((bs, cs)) = start.take() {
                toks.push(Tok {
                    text: &line[bs..i],
                    col: cs,
                });
            }
        } else if start.is_none() {
            start = Some((i, col));
        }
    }
    if let Some((bs, cs)) = start {
        let end = line.find('#').unwrap_or(line.len());
        toks.push(Tok {
            text: &line[bs..end],
            col: cs,
        });
    }
    toks
}

struct Parser<'f> {
    file: &'f str,
    netlist: Option<Netlist>,
    tech: Technology,
    tech_preset_seen: bool,
    tech_override_seen: bool,
    corner_seen: bool,
    vectors: Vec<Stimulus>,
    source: SourceMap,
    end_seen: bool,
    /// Completed `module` definitions, in declaration order (the order
    /// matters only for deterministic "did you mean" hints).
    modules: Vec<(String, Module)>,
    /// The body of the `module` block being parsed, if any.
    current_module: Option<(String, Netlist)>,
}

impl Parser<'_> {
    fn run(mut self, src: &str) -> Result<Design, ParseError> {
        let mut header_seen = false;
        let mut last_line = 0usize;
        for (idx, raw) in src.lines().enumerate() {
            let line = idx + 1;
            last_line = line;
            let toks = tokenize(raw);
            if toks.is_empty() {
                continue;
            }
            if !header_seen {
                self.header(line, &toks)?;
                header_seen = true;
                continue;
            }
            if self.end_seen {
                return Err(self.err(
                    line,
                    toks[0].col,
                    ErrorCode::BadStructure,
                    "content after `end`",
                ));
            }
            self.statement(line, &toks)?;
        }
        if !header_seen {
            return Err(self.err(
                1,
                1,
                ErrorCode::BadHeader,
                "empty input: first line must be `mtk <version>`",
            ));
        }
        if let Some((name, _)) = &self.current_module {
            return Err(self.err(
                last_line + 1,
                1,
                ErrorCode::BadModule,
                format!("`module {name}` is not terminated (missing `endmodule`)"),
            ));
        }
        if !self.end_seen {
            return Err(self.err(last_line + 1, 1, ErrorCode::BadStructure, "missing `end`"));
        }
        let netlist = self.netlist.take().ok_or_else(|| {
            self.err(last_line, 1, ErrorCode::BadCircuit, "no `circuit` declared")
        })?;
        Ok(Design {
            netlist,
            tech: self.tech,
            vectors: self.vectors,
            source: self.source,
        })
    }

    fn err(
        &self,
        line: usize,
        col: usize,
        code: ErrorCode,
        message: impl Into<String>,
    ) -> ParseError {
        ParseError::new(self.file, line, col, code, message)
    }

    fn header(&self, line: usize, toks: &[Tok<'_>]) -> Result<(), ParseError> {
        if toks[0].text != "mtk" {
            return Err(self.err(
                line,
                toks[0].col,
                ErrorCode::BadHeader,
                format!(
                    "first line must be `mtk <version>`, found `{}`",
                    toks[0].text
                ),
            ));
        }
        if toks.len() != 2 {
            return Err(self.err(
                line,
                toks[0].col,
                ErrorCode::BadHeader,
                "first line must be `mtk <version>`",
            ));
        }
        let version: u64 = toks[1].text.parse().map_err(|_| {
            self.err(
                line,
                toks[1].col,
                ErrorCode::BadHeader,
                format!(
                    "format version must be an integer, found `{}`",
                    toks[1].text
                ),
            )
        })?;
        if version != FORMAT_VERSION {
            return Err(self.err(
                line,
                toks[1].col,
                ErrorCode::UnsupportedVersion,
                format!("format version {version} is not supported (this reader understands {FORMAT_VERSION})"),
            ));
        }
        Ok(())
    }

    fn statement(&mut self, line: usize, toks: &[Tok<'_>]) -> Result<(), ParseError> {
        if self.current_module.is_some() {
            return self.module_statement(line, toks);
        }
        let dir = toks[0].text;
        if let Some(param) = dir.strip_prefix("tech.") {
            return self.tech_override(line, toks, param);
        }
        match dir {
            "circuit" => self.circuit(line, toks),
            "tech" => self.tech_preset(line, toks),
            "corner" => self.corner(line, toks),
            "module" => self.module_start(line, toks),
            "endmodule" => Err(self.err(
                line,
                toks[0].col,
                ErrorCode::BadModule,
                "`endmodule` without an open `module`",
            )),
            "inst" => self.inst(line, toks),
            "net" => self.net(line, toks),
            "input" => self.io(line, toks, true),
            "output" => self.io(line, toks, false),
            "tie" => self.tie(line, toks),
            "cell" => self.cell(line, toks),
            "vector" => self.vector(line, toks),
            "end" => {
                self.expect_len(line, toks, 1, "end")?;
                self.end_seen = true;
                Ok(())
            }
            _ => {
                let mut e = self.err(
                    line,
                    toks[0].col,
                    ErrorCode::UnknownDirective,
                    format!("unknown directive `{dir}`"),
                );
                if let Some(s) = closest(dir, DIRECTIVES) {
                    e = e.with_hint(format!("did you mean `{s}`?"));
                }
                Err(e)
            }
        }
    }

    /// Dispatches a statement inside a `module` body. The structural
    /// body-building directives are reused verbatim by temporarily
    /// swapping the module body in as the active netlist; everything
    /// else is a placement error.
    fn module_statement(&mut self, line: usize, toks: &[Tok<'_>]) -> Result<(), ParseError> {
        let dir = toks[0].text;
        match dir {
            "module" => Err(self.err(
                line,
                toks[0].col,
                ErrorCode::BadModule,
                "`module` definitions cannot nest",
            )),
            "endmodule" => self.module_end(line, toks),
            "net" | "input" | "output" | "tie" | "cell" => {
                let (name, body) = self.current_module.take().expect("checked by caller");
                let saved = self.netlist.replace(body);
                let r = match dir {
                    "net" => self.net(line, toks),
                    "input" => self.io(line, toks, true),
                    "output" => self.io(line, toks, false),
                    "tie" => self.tie(line, toks),
                    _ => self.cell(line, toks),
                };
                let body = std::mem::replace(&mut self.netlist, saved).expect("body was swapped");
                self.current_module = Some((name, body));
                r
            }
            _ => {
                let known = dir.starts_with("tech.") || DIRECTIVES.contains(&dir);
                if known {
                    let name = &self.current_module.as_ref().expect("checked by caller").0;
                    Err(self.err(
                        line,
                        toks[0].col,
                        ErrorCode::BadModule,
                        format!("`{dir}` is not allowed inside `module {name}`"),
                    ))
                } else {
                    let mut e = self.err(
                        line,
                        toks[0].col,
                        ErrorCode::UnknownDirective,
                        format!("unknown directive `{dir}`"),
                    );
                    if let Some(s) = closest(dir, MODULE_DIRECTIVES) {
                        e = e.with_hint(format!("did you mean `{s}`?"));
                    }
                    Err(e)
                }
            }
        }
    }

    fn module_start(&mut self, line: usize, toks: &[Tok<'_>]) -> Result<(), ParseError> {
        self.expect_len(line, toks, 2, "module <name>")?;
        let name = toks[1].text;
        if self.modules.iter().any(|(n, _)| n == name) {
            return Err(self.err(
                line,
                toks[1].col,
                ErrorCode::BadModule,
                format!("duplicate module `{name}`"),
            ));
        }
        self.current_module = Some((name.to_string(), Netlist::new(name)));
        Ok(())
    }

    fn module_end(&mut self, line: usize, toks: &[Tok<'_>]) -> Result<(), ParseError> {
        self.expect_len(line, toks, 1, "endmodule")?;
        let (name, body) = self.current_module.take().expect("checked by caller");
        let module = Module::new(&name, body).map_err(|e| self.clone_err(line, toks[0].col, &e))?;
        self.modules.push((name, module));
        Ok(())
    }

    /// `inst <name> <module> <in>... -> <out>...`: flattens one
    /// instance of a previously defined module into the circuit under
    /// the `name/` hierarchical prefix.
    fn inst(&mut self, line: usize, toks: &[Tok<'_>]) -> Result<(), ParseError> {
        const USAGE: &str = "inst <name> <module> <in>... -> <out>...";
        if toks.len() < 3 {
            return Err(self.err(
                line,
                toks[0].col,
                ErrorCode::BadArity,
                format!("`inst` is missing tokens (usage: `{USAGE}`)"),
            ));
        }
        self.netlist_mut(line, toks[0].col)?;
        let iname = &toks[1];
        let mtok = &toks[2];
        let Some(module) = self
            .modules
            .iter()
            .find(|(n, _)| n == mtok.text)
            .map(|(_, m)| m.clone())
        else {
            let mut e = self.err(
                line,
                mtok.col,
                ErrorCode::BadInstance,
                format!("unknown module `{}`", mtok.text),
            );
            if let Some(s) = closest(mtok.text, self.modules.iter().map(|(n, _)| n.as_str())) {
                e = e.with_hint(format!("did you mean `{s}`?"));
            }
            return Err(e);
        };
        let Some(arrow) = toks[3..].iter().position(|t| t.text == "->") else {
            return Err(self.err(
                line,
                toks[0].col,
                ErrorCode::BadInstance,
                format!("`inst` is missing `->` (usage: `{USAGE}`)"),
            ));
        };
        let arrow = arrow + 3;
        if arrow - 3 != module.n_inputs() || toks.len() - arrow - 1 != module.n_outputs() {
            return Err(self.err(
                line,
                toks[0].col,
                ErrorCode::BadInstance,
                format!(
                    "module `{}` has {} input(s) and {} output(s), `inst` connects {} and {}",
                    mtok.text,
                    module.n_inputs(),
                    module.n_outputs(),
                    arrow - 3,
                    toks.len() - arrow - 1,
                ),
            ));
        }
        let mut inputs = Vec::with_capacity(arrow - 3);
        for tok in &toks[3..arrow] {
            inputs.push(self.net_id(line, tok)?);
        }
        let mut outputs = Vec::with_capacity(toks.len() - arrow - 1);
        for tok in &toks[arrow + 1..] {
            outputs.push(self.net_id(line, tok)?);
        }
        let nl = self.netlist.as_mut().expect("netlist_mut checked circuit");
        module
            .instantiate(nl, iname.text, &inputs, &outputs)
            .map_err(|e| self.clone_err(line, iname.col, &e))?;
        self.source.record_cell(iname.text, line);
        Ok(())
    }

    fn expect_len(
        &self,
        line: usize,
        toks: &[Tok<'_>],
        n: usize,
        usage: &str,
    ) -> Result<(), ParseError> {
        if toks.len() != n {
            return Err(self.err(
                line,
                toks[0].col,
                ErrorCode::BadArity,
                format!(
                    "`{}` takes {} token(s), found {} (usage: `{usage}`)",
                    toks[0].text,
                    n - 1,
                    toks.len() - 1,
                ),
            ));
        }
        Ok(())
    }

    fn netlist_mut(&mut self, line: usize, col: usize) -> Result<&mut Netlist, ParseError> {
        if self.netlist.is_none() {
            return Err(self.err(
                line,
                col,
                ErrorCode::BadCircuit,
                "statement before `circuit`",
            ));
        }
        Ok(self.netlist.as_mut().expect("checked above"))
    }

    fn net_id(&self, line: usize, tok: &Tok<'_>) -> Result<NetId, ParseError> {
        let nl = self.netlist.as_ref().ok_or_else(|| {
            self.err(
                line,
                tok.col,
                ErrorCode::BadCircuit,
                "statement before `circuit`",
            )
        })?;
        nl.find_net(tok.text).ok_or_else(|| {
            let mut e = self.err(
                line,
                tok.col,
                ErrorCode::UnknownNet,
                format!("net `{}` is not declared", tok.text),
            );
            if let Some(s) = closest(tok.text, nl.nets().iter().map(|n| n.name.as_str())) {
                e = e.with_hint(format!("did you mean `{s}`?"));
            }
            e
        })
    }

    fn number(&self, line: usize, tok: &Tok<'_>) -> Result<f64, ParseError> {
        match tok.text.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(v),
            _ => Err(self.err(
                line,
                tok.col,
                ErrorCode::BadNumber,
                format!("expected a finite number, found `{}`", tok.text),
            )),
        }
    }

    /// Splits a `key=value` attribute token, checking the key against
    /// the allowed set for the directive.
    fn attribute<'a>(
        &self,
        line: usize,
        tok: &'a Tok<'_>,
        allowed: &[&str],
    ) -> Result<(&'a str, Tok<'a>), ParseError> {
        let Some(eq) = tok.text.find('=') else {
            return Err(self.err(
                line,
                tok.col,
                ErrorCode::BadAttribute,
                format!("expected `key=value` attribute, found `{}`", tok.text),
            ));
        };
        let key = &tok.text[..eq];
        let value = Tok {
            text: &tok.text[eq + 1..],
            col: tok.col + tok.text[..=eq].chars().count(),
        };
        if !allowed.contains(&key) {
            let mut e = self.err(
                line,
                tok.col,
                ErrorCode::BadAttribute,
                format!("unknown attribute `{key}`"),
            );
            if let Some(s) = closest(key, allowed.iter().copied()) {
                e = e.with_hint(format!("did you mean `{s}`?"));
            }
            return Err(e);
        }
        Ok((key, value))
    }

    fn circuit(&mut self, line: usize, toks: &[Tok<'_>]) -> Result<(), ParseError> {
        self.expect_len(line, toks, 2, "circuit <name>")?;
        if self.netlist.is_some() {
            return Err(self.err(
                line,
                toks[0].col,
                ErrorCode::BadCircuit,
                "duplicate `circuit`",
            ));
        }
        self.netlist = Some(Netlist::new(toks[1].text));
        Ok(())
    }

    fn tech_preset(&mut self, line: usize, toks: &[Tok<'_>]) -> Result<(), ParseError> {
        self.expect_len(line, toks, 2, "tech <preset>")?;
        self.netlist_mut(line, toks[0].col)?;
        if self.tech_preset_seen {
            return Err(self.err(line, toks[0].col, ErrorCode::BadTech, "duplicate `tech`"));
        }
        if self.tech_override_seen {
            return Err(self.err(
                line,
                toks[0].col,
                ErrorCode::BadTech,
                "`tech` preset must precede `tech.*` overrides",
            ));
        }
        if self.corner_seen {
            return Err(self.err(
                line,
                toks[0].col,
                ErrorCode::BadTech,
                "`tech` preset must precede `corner`",
            ));
        }
        let Some(t) = Technology::preset(toks[1].text) else {
            let mut e = self.err(
                line,
                toks[1].col,
                ErrorCode::BadTech,
                format!("unknown technology preset `{}`", toks[1].text),
            );
            if let Some(s) = closest(toks[1].text, PRESETS) {
                e = e.with_hint(format!("did you mean `{s}`?"));
            }
            return Err(e);
        };
        self.tech = t;
        self.tech_preset_seen = true;
        Ok(())
    }

    /// `corner <name>`: moves the technology to a named PVT corner
    /// (DESIGN.md §14). The corner is a value transform over the preset,
    /// so it must come after the `tech` preset (if any) and before any
    /// `tech.*` fine-tuning override; the canonical writer re-expresses
    /// its effect as plain `tech.*` overrides.
    fn corner(&mut self, line: usize, toks: &[Tok<'_>]) -> Result<(), ParseError> {
        self.expect_len(line, toks, 2, "corner <name>")?;
        self.netlist_mut(line, toks[0].col)?;
        if self.corner_seen {
            return Err(self.err(
                line,
                toks[0].col,
                ErrorCode::BadCorner,
                "duplicate `corner`",
            ));
        }
        if self.tech_override_seen {
            return Err(self.err(
                line,
                toks[0].col,
                ErrorCode::BadCorner,
                "`corner` must precede `tech.*` overrides",
            ));
        }
        let Some(t) = self.tech.at_corner(toks[1].text) else {
            let mut e = self.err(
                line,
                toks[1].col,
                ErrorCode::BadCorner,
                format!("unknown corner `{}`", toks[1].text),
            );
            if let Some(s) = closest(toks[1].text, Technology::corner_names()) {
                e = e.with_hint(format!("did you mean `{s}`?"));
            }
            return Err(e);
        };
        self.tech = t;
        self.corner_seen = true;
        Ok(())
    }

    fn tech_override(
        &mut self,
        line: usize,
        toks: &[Tok<'_>],
        param: &str,
    ) -> Result<(), ParseError> {
        self.expect_len(line, toks, 2, "tech.<param> <value>")?;
        self.netlist_mut(line, toks[0].col)?;
        let Some((_, _, set)) = TECH_PARAMS.iter().find(|(name, _, _)| *name == param) else {
            let mut e = self.err(
                line,
                toks[0].col,
                ErrorCode::BadTech,
                format!("unknown technology parameter `{param}`"),
            );
            if let Some(s) = closest(param, TECH_PARAMS.iter().map(|p| p.0)) {
                e = e.with_hint(format!("did you mean `tech.{s}`?"));
            }
            return Err(e);
        };
        let v = self.number(line, &toks[1])?;
        set(&mut self.tech, v);
        self.tech_override_seen = true;
        Ok(())
    }

    fn net(&mut self, line: usize, toks: &[Tok<'_>]) -> Result<(), ParseError> {
        if toks.len() < 2 {
            return Err(self.err(
                line,
                toks[0].col,
                ErrorCode::BadArity,
                "`net` takes a name (usage: `net <name> [cap=<farads>]`)",
            ));
        }
        let name = &toks[1];
        if name.text.contains('=') || name.text == "->" {
            return Err(self.err(
                line,
                name.col,
                ErrorCode::BadAttribute,
                format!("`{}` is not a valid net name", name.text),
            ));
        }
        let mut cap = None;
        for attr in &toks[2..] {
            let (key, value) = self.attribute(line, attr, &["cap"])?;
            debug_assert_eq!(key, "cap");
            cap = Some(self.number(line, &value)?);
        }
        self.netlist_mut(line, toks[0].col)?;
        let nl = self.netlist.as_mut().expect("checked above");
        let id = nl
            .add_net(name.text)
            .map_err(|e| self.clone_err(line, name.col, &e))?;
        if let Some(farads) = cap {
            self.netlist
                .as_mut()
                .expect("present")
                .add_extra_cap(id, farads);
        }
        self.source.record_net(name.text, line);
        Ok(())
    }

    /// `semantic` borrows `self` immutably, which conflicts with holding
    /// `&mut Netlist`; this tiny helper rebuilds the error afterwards.
    fn clone_err(&self, line: usize, col: usize, e: &NetlistError) -> ParseError {
        self.err(line, col, ErrorCode::Semantic, e.to_string())
    }

    fn io(&mut self, line: usize, toks: &[Tok<'_>], input: bool) -> Result<(), ParseError> {
        if toks.len() < 2 {
            return Err(self.err(
                line,
                toks[0].col,
                ErrorCode::BadArity,
                format!(
                    "`{}` takes at least one net (usage: `{} <net>...`)",
                    toks[0].text, toks[0].text
                ),
            ));
        }
        for tok in &toks[1..] {
            let id = self.net_id(line, tok)?;
            let nl = self.netlist.as_mut().expect("net_id checked circuit");
            if input {
                nl.mark_primary_input(id)
                    .map_err(|e| self.clone_err(line, tok.col, &e))?;
            } else {
                nl.mark_primary_output(id);
            }
        }
        Ok(())
    }

    fn logic(&self, line: usize, tok: &Tok<'_>) -> Result<Logic, ParseError> {
        match tok.text {
            "0" => Ok(Logic::Zero),
            "1" => Ok(Logic::One),
            "x" | "X" => Ok(Logic::X),
            other => Err(self.err(
                line,
                tok.col,
                ErrorCode::BadLogicValue,
                format!("logic level must be `0`, `1`, or `x`, found `{other}`"),
            )),
        }
    }

    fn tie(&mut self, line: usize, toks: &[Tok<'_>]) -> Result<(), ParseError> {
        self.expect_len(line, toks, 3, "tie <net> <0|1>")?;
        let id = self.net_id(line, &toks[1])?;
        let value = self.logic(line, &toks[2])?;
        let nl = self.netlist.as_mut().expect("net_id checked circuit");
        nl.tie_net(id, value)
            .map_err(|e| self.clone_err(line, toks[2].col, &e))?;
        Ok(())
    }

    fn cell(&mut self, line: usize, toks: &[Tok<'_>]) -> Result<(), ParseError> {
        const USAGE: &str = "cell <inst> <kind> <in>... -> <out> [drive=<x>]";
        if toks.len() < 3 {
            return Err(self.err(
                line,
                toks[0].col,
                ErrorCode::BadArity,
                format!("`cell` is missing tokens (usage: `{USAGE}`)"),
            ));
        }
        let inst = &toks[1];
        let kind_tok = &toks[2];
        let Some(kind) = CellKind::parse(kind_tok.text) else {
            let mut e = self.err(
                line,
                kind_tok.col,
                ErrorCode::UnknownCellKind,
                format!("unknown cell kind `{}`", kind_tok.text),
            );
            if let Some(s) = closest(kind_tok.text, CellKind::all().map(CellKind::name)) {
                e = e.with_hint(format!("did you mean `{s}`?"));
            }
            return Err(e);
        };
        let Some(arrow) = toks[3..].iter().position(|t| t.text == "->") else {
            return Err(self.err(
                line,
                toks[0].col,
                ErrorCode::BadArity,
                format!("`cell` is missing `->` (usage: `{USAGE}`)"),
            ));
        };
        let arrow = arrow + 3;
        let mut inputs = Vec::with_capacity(arrow - 3);
        for tok in &toks[3..arrow] {
            inputs.push(self.net_id(line, tok)?);
        }
        let Some(out_tok) = toks.get(arrow + 1) else {
            return Err(self.err(
                line,
                toks[arrow].col,
                ErrorCode::BadArity,
                format!("`cell` is missing the output net after `->` (usage: `{USAGE}`)"),
            ));
        };
        let output = self.net_id(line, out_tok)?;
        let mut drive = 1.0;
        for attr in &toks[arrow + 2..] {
            let (key, value) = self.attribute(line, attr, &["drive"])?;
            debug_assert_eq!(key, "drive");
            drive = self.number(line, &value)?;
        }
        let nl = self.netlist.as_mut().expect("net_id checked circuit");
        nl.add_cell(inst.text, kind, inputs, output, drive)
            .map_err(|e| self.clone_err(line, inst.col, &e))?;
        self.source.record_cell(inst.text, line);
        Ok(())
    }

    fn vector(&mut self, line: usize, toks: &[Tok<'_>]) -> Result<(), ParseError> {
        if toks.len() != 4 || toks[2].text != "->" {
            return Err(self.err(
                line,
                toks[0].col,
                ErrorCode::BadArity,
                "`vector` takes `<from> -> <to>` (usage: `vector 010 -> 110`)",
            ));
        }
        let width = self.netlist_mut(line, toks[0].col)?.primary_inputs().len();
        let from = self.bits(line, &toks[1], width)?;
        let to = self.bits(line, &toks[3], width)?;
        self.vectors.push(Stimulus { from, to });
        Ok(())
    }

    /// Parses a bit-string token; the leftmost character maps to the
    /// first declared primary input.
    fn bits(&self, line: usize, tok: &Tok<'_>, width: usize) -> Result<Vec<Logic>, ParseError> {
        let mut out = Vec::new();
        for (i, ch) in tok.text.chars().enumerate() {
            out.push(match ch {
                '0' => Logic::Zero,
                '1' => Logic::One,
                'x' | 'X' => Logic::X,
                other => {
                    return Err(self.err(
                        line,
                        tok.col + i,
                        ErrorCode::BadLogicValue,
                        format!("invalid logic level `{other}` in vector"),
                    ))
                }
            });
        }
        if out.len() != width {
            return Err(self.err(
                line,
                tok.col,
                ErrorCode::VectorWidth,
                format!(
                    "vector has {} bit(s) but the circuit has {} primary input(s)",
                    out.len(),
                    width
                ),
            ));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn good_src() -> &'static str {
        "\
mtk 1
# a two-inverter buffer
circuit buf2
tech l07
tech.vdd 1.5
net a
net mid
net y cap=1e-14
input a
output y
cell i1 inv a -> mid
cell i2 inv mid -> y drive=2
vector 0 -> 1
end
"
    }

    fn expect_err(src: &str, code: ErrorCode, line: usize, col: usize) -> ParseError {
        let e = parse_str(src, "t.mtk").expect_err("should fail");
        assert_eq!(e.code, code, "wrong code for {e}");
        assert_eq!((e.line, e.col), (line, col), "wrong location for {e}");
        e
    }

    #[test]
    fn parses_a_complete_design() {
        let d = parse_str(good_src(), "buf2.mtk").unwrap();
        assert_eq!(d.netlist.name(), "buf2");
        assert_eq!(d.netlist.nets().len(), 3);
        assert_eq!(d.netlist.cells().len(), 2);
        assert_eq!(d.netlist.primary_inputs().len(), 1);
        assert_eq!(d.netlist.primary_outputs().len(), 1);
        assert_eq!(d.tech.vdd, 1.5);
        assert_eq!(d.tech.name, "l07");
        assert_eq!(d.vectors.len(), 1);
        assert_eq!(d.vectors[0].from, vec![Logic::Zero]);
        assert_eq!(d.vectors[0].to, vec![Logic::One]);
        assert_eq!(d.netlist.cells()[1].drive, 2.0);
        let y = d.netlist.find_net("y").unwrap();
        assert_eq!(d.netlist.net(y).extra_cap, 1e-14);
        assert_eq!(d.source.net_line("a"), Some(6));
        assert_eq!(d.source.cell_line("i2"), Some(12));
    }

    #[test]
    fn e001_bad_header() {
        expect_err("circuit x\nend\n", ErrorCode::BadHeader, 1, 1);
        expect_err("mtk\nend\n", ErrorCode::BadHeader, 1, 1);
        expect_err("mtk one\nend\n", ErrorCode::BadHeader, 1, 5);
        expect_err("", ErrorCode::BadHeader, 1, 1);
        expect_err("# only a comment\n", ErrorCode::BadHeader, 1, 1);
    }

    #[test]
    fn e002_unsupported_version() {
        expect_err(
            "mtk 2\ncircuit x\nend\n",
            ErrorCode::UnsupportedVersion,
            1,
            5,
        );
    }

    #[test]
    fn e003_unknown_directive_suggests() {
        let e = expect_err(
            "mtk 1\ncircuit x\nnett a\nend\n",
            ErrorCode::UnknownDirective,
            3,
            1,
        );
        assert_eq!(e.hint.as_deref(), Some("did you mean `net`?"));
    }

    #[test]
    fn e004_bad_arity() {
        expect_err("mtk 1\ncircuit\nend\n", ErrorCode::BadArity, 2, 1);
        expect_err("mtk 1\ncircuit x\nnet\nend\n", ErrorCode::BadArity, 3, 1);
        expect_err("mtk 1\ncircuit x\ninput\nend\n", ErrorCode::BadArity, 3, 1);
        expect_err(
            "mtk 1\ncircuit x\nnet a\nnet y\ncell i1 inv a y\nend\n",
            ErrorCode::BadArity,
            5,
            1,
        );
        expect_err(
            "mtk 1\ncircuit x\nnet a\ncell i1 inv a ->\nend\n",
            ErrorCode::BadArity,
            4,
            15,
        );
        expect_err(
            "mtk 1\ncircuit x\nvector 0\nend\n",
            ErrorCode::BadArity,
            3,
            1,
        );
        expect_err("mtk 1\ncircuit x\nend now\n", ErrorCode::BadArity, 3, 1);
    }

    #[test]
    fn e005_circuit_placement() {
        expect_err("mtk 1\nnet a\nend\n", ErrorCode::BadCircuit, 2, 1);
        expect_err(
            "mtk 1\ncircuit x\ncircuit y\nend\n",
            ErrorCode::BadCircuit,
            3,
            1,
        );
        expect_err("mtk 1\nend\n", ErrorCode::BadCircuit, 2, 1);
        expect_err("mtk 1\ntech l07\nend\n", ErrorCode::BadCircuit, 2, 1);
    }

    #[test]
    fn e006_bad_number() {
        expect_err(
            "mtk 1\ncircuit x\nnet a cap=fast\nend\n",
            ErrorCode::BadNumber,
            3,
            11,
        );
        expect_err(
            "mtk 1\ncircuit x\ntech.vdd inf\nend\n",
            ErrorCode::BadNumber,
            3,
            10,
        );
    }

    #[test]
    fn e007_unknown_cell_kind_suggests() {
        let e = expect_err(
            "mtk 1\ncircuit x\nnet a\nnet y\ncell i1 nadn2 a a -> y\nend\n",
            ErrorCode::UnknownCellKind,
            5,
            9,
        );
        assert_eq!(e.hint.as_deref(), Some("did you mean `nand2`?"));
    }

    #[test]
    fn e008_unknown_net_suggests() {
        let e = expect_err(
            "mtk 1\ncircuit x\nnet alpha\nnet y\ncell i1 inv alhpa -> y\nend\n",
            ErrorCode::UnknownNet,
            5,
            13,
        );
        assert_eq!(e.hint.as_deref(), Some("did you mean `alpha`?"));
        expect_err(
            "mtk 1\ncircuit x\ninput q\nend\n",
            ErrorCode::UnknownNet,
            3,
            7,
        );
        expect_err(
            "mtk 1\ncircuit x\ntie q 0\nend\n",
            ErrorCode::UnknownNet,
            3,
            5,
        );
    }

    #[test]
    fn e009_bad_attribute() {
        let e = expect_err(
            "mtk 1\ncircuit x\nnet a cpa=1e-15\nend\n",
            ErrorCode::BadAttribute,
            3,
            7,
        );
        assert_eq!(e.hint.as_deref(), Some("did you mean `cap`?"));
        expect_err(
            "mtk 1\ncircuit x\nnet a extra\nend\n",
            ErrorCode::BadAttribute,
            3,
            7,
        );
        expect_err(
            "mtk 1\ncircuit x\nnet a\nnet y\ncell i1 inv a -> y cap=1\nend\n",
            ErrorCode::BadAttribute,
            5,
            20,
        );
        expect_err(
            "mtk 1\ncircuit x\nnet a=b\nend\n",
            ErrorCode::BadAttribute,
            3,
            5,
        );
    }

    #[test]
    fn e010_semantic_errors() {
        // Duplicate net.
        expect_err(
            "mtk 1\ncircuit x\nnet a\nnet a\nend\n",
            ErrorCode::Semantic,
            4,
            5,
        );
        // Arity mismatch.
        expect_err(
            "mtk 1\ncircuit x\nnet a\nnet y\ncell i1 nand2 a -> y\nend\n",
            ErrorCode::Semantic,
            5,
            6,
        );
        // Multiple drivers.
        expect_err(
            "mtk 1\ncircuit x\nnet a\nnet y\ncell i1 inv a -> y\ncell i2 inv a -> y\nend\n",
            ErrorCode::Semantic,
            6,
            6,
        );
        // Invalid drive.
        expect_err(
            "mtk 1\ncircuit x\nnet a\nnet y\ncell i1 inv a -> y drive=-1\nend\n",
            ErrorCode::Semantic,
            5,
            6,
        );
        // Tie of a driven net.
        expect_err(
            "mtk 1\ncircuit x\nnet a\nnet y\ncell i1 inv a -> y\ntie y 0\nend\n",
            ErrorCode::Semantic,
            6,
            7,
        );
        // Input marking of a driven net.
        expect_err(
            "mtk 1\ncircuit x\nnet a\nnet y\ncell i1 inv a -> y\ninput y\nend\n",
            ErrorCode::Semantic,
            6,
            7,
        );
        // X tie is rejected by the builder.
        expect_err(
            "mtk 1\ncircuit x\nnet a\ntie a x\nend\n",
            ErrorCode::Semantic,
            4,
            7,
        );
    }

    #[test]
    fn e011_bad_logic_value() {
        expect_err(
            "mtk 1\ncircuit x\nnet a\ntie a 2\nend\n",
            ErrorCode::BadLogicValue,
            4,
            7,
        );
        expect_err(
            "mtk 1\ncircuit x\nnet a\ninput a\nvector 2 -> 1\nend\n",
            ErrorCode::BadLogicValue,
            5,
            8,
        );
        // Column points at the bad character inside the bit string.
        expect_err(
            "mtk 1\ncircuit x\nnet a\nnet b\ninput a b\nvector 0q -> 11\nend\n",
            ErrorCode::BadLogicValue,
            6,
            9,
        );
    }

    #[test]
    fn e012_vector_width() {
        expect_err(
            "mtk 1\ncircuit x\nnet a\ninput a\nvector 00 -> 11\nend\n",
            ErrorCode::VectorWidth,
            5,
            8,
        );
        // No primary inputs at all.
        expect_err(
            "mtk 1\ncircuit x\nvector 0 -> 1\nend\n",
            ErrorCode::VectorWidth,
            3,
            8,
        );
    }

    #[test]
    fn e013_bad_tech() {
        let e = expect_err(
            "mtk 1\ncircuit x\ntech l08\nend\n",
            ErrorCode::BadTech,
            3,
            6,
        );
        assert_eq!(e.hint.as_deref(), Some("did you mean `l07`?"));
        let e = expect_err(
            "mtk 1\ncircuit x\ntech.vdd2 1.0\nend\n",
            ErrorCode::BadTech,
            3,
            1,
        );
        assert_eq!(e.hint.as_deref(), Some("did you mean `tech.vdd`?"));
        expect_err(
            "mtk 1\ncircuit x\ntech l07\ntech l03\nend\n",
            ErrorCode::BadTech,
            4,
            1,
        );
        expect_err(
            "mtk 1\ncircuit x\ntech.vdd 1.0\ntech l03\nend\n",
            ErrorCode::BadTech,
            4,
            1,
        );
    }

    #[test]
    fn e015_bad_corner() {
        let e = expect_err(
            "mtk 1\ncircuit x\ncorner slw\nend\n",
            ErrorCode::BadCorner,
            3,
            8,
        );
        assert_eq!(e.hint.as_deref(), Some("did you mean `slow`?"));
        expect_err(
            "mtk 1\ncircuit x\ncorner slow\ncorner fast\nend\n",
            ErrorCode::BadCorner,
            4,
            1,
        );
        expect_err(
            "mtk 1\ncircuit x\ntech.vdd 1.0\ncorner slow\nend\n",
            ErrorCode::BadCorner,
            4,
            1,
        );
        // A `tech` preset after `corner` is a tech-ordering error (E013).
        expect_err(
            "mtk 1\ncircuit x\ncorner slow\ntech l03\nend\n",
            ErrorCode::BadTech,
            4,
            1,
        );
        // Arity errors keep their existing code.
        expect_err("mtk 1\ncircuit x\ncorner\nend\n", ErrorCode::BadArity, 3, 1);
        // And `corner` before `circuit` is a placement error (E005).
        expect_err(
            "mtk 1\ncorner slow\ncircuit x\nend\n",
            ErrorCode::BadCircuit,
            2,
            1,
        );
    }

    #[test]
    fn corner_applies_to_the_preceding_preset_then_overrides_stack() {
        let src = "\
mtk 1
circuit c
tech l03
corner slow
tech.sigma_vt 0.03
net a
input a
end
";
        let d = parse_str(src, "c.mtk").unwrap();
        let mut want = Technology::l03().at_corner("slow").unwrap();
        want.sigma_vt = 0.03;
        assert_eq!(d.tech, want);
        // Without a preset line the corner applies to the l07 default.
        let d2 = parse_str("mtk 1\ncircuit c\ncorner fast\nend\n", "c.mtk").unwrap();
        assert_eq!(d2.tech, Technology::l07().at_corner("fast").unwrap());
        // The corner'd design round-trips through the canonical writer
        // (as tech.* value overrides — the corner name itself is not
        // part of the canonical form).
        let text = d.to_mtk();
        assert!(!text.contains("corner"), "{text}");
        let back = parse_str(&text, "c.mtk").unwrap();
        assert_eq!(back.tech, d.tech);
        assert_eq!(back.to_mtk(), text);
    }

    fn hier_src() -> &'static str {
        "\
mtk 1
module buf
net i
net m
net o
input i
output o
cell u0 inv i -> m
cell u1 inv m -> o drive=2
endmodule
circuit top
net a
net x
net y
input a
output y
inst b0 buf a -> x
inst b1 buf x -> y
vector 0 -> 1
end
"
    }

    #[test]
    fn modules_flatten_at_parse_time() {
        let d = parse_str(hier_src(), "top.mtk").unwrap();
        assert_eq!(d.netlist.name(), "top");
        // 3 top nets + 1 internal per instance.
        assert_eq!(d.netlist.nets().len(), 5);
        assert!(d.netlist.find_net("b0/m").is_some());
        assert!(d.netlist.find_net("b1/m").is_some());
        assert_eq!(d.netlist.cells().len(), 4);
        let u1 = d
            .netlist
            .cells()
            .iter()
            .find(|c| c.name == "b1/u1")
            .expect("hierarchical cell name");
        assert_eq!(u1.drive, 2.0);
        // Two buffers in series: identity.
        let v = d.netlist.evaluate(&[Logic::One]).unwrap();
        let y = d.netlist.find_net("y").unwrap();
        assert_eq!(v[y.index()], Logic::One);
        // The canonical form is flat: writing drops the module sugar
        // and the flat text is a writer fixpoint.
        let text = d.to_mtk();
        assert!(!text.contains("module"), "{text}");
        assert!(!text.contains("inst"), "{text}");
        let back = parse_str(&text, "top.mtk").unwrap();
        assert_eq!(back.netlist.fingerprint(), d.netlist.fingerprint());
        assert_eq!(back.to_mtk(), text);
    }

    #[test]
    fn e016_bad_module() {
        // Nested definition.
        expect_err(
            "mtk 1\nmodule a\nmodule b\nendmodule\nend\n",
            ErrorCode::BadModule,
            3,
            1,
        );
        // Unterminated (EOF points one past the last line).
        expect_err("mtk 1\nmodule a\nnet x\n", ErrorCode::BadModule, 4, 1);
        // `end` inside a module body is a placement error.
        expect_err("mtk 1\nmodule a\nend\n", ErrorCode::BadModule, 3, 1);
        // Stray endmodule.
        expect_err(
            "mtk 1\ncircuit c\nendmodule\nend\n",
            ErrorCode::BadModule,
            3,
            1,
        );
        // Duplicate module name.
        expect_err(
            "mtk 1\nmodule a\nendmodule\nmodule a\nendmodule\ncircuit c\nend\n",
            ErrorCode::BadModule,
            4,
            8,
        );
        // Directives that have no meaning inside a body.
        expect_err(
            "mtk 1\nmodule a\nvector 0 -> 1\nendmodule\ncircuit c\nend\n",
            ErrorCode::BadModule,
            3,
            1,
        );
        expect_err(
            "mtk 1\nmodule a\ntech.vdd 1.0\nendmodule\ncircuit c\nend\n",
            ErrorCode::BadModule,
            3,
            1,
        );
        expect_err(
            "mtk 1\nmodule a\ninst i a -> \nendmodule\ncircuit c\nend\n",
            ErrorCode::BadModule,
            3,
            1,
        );
        // Unknown directives inside a body still get E003 + a hint
        // drawn from the module-legal set.
        let e = expect_err(
            "mtk 1\nmodule a\nnett x\nendmodule\ncircuit c\nend\n",
            ErrorCode::UnknownDirective,
            3,
            1,
        );
        assert_eq!(e.hint.as_deref(), Some("did you mean `net`?"));
        // Arity errors keep E004.
        expect_err("mtk 1\nmodule\nend\n", ErrorCode::BadArity, 2, 1);
        // A cyclic body or an input/output port overlap is a semantic
        // (E010) rejection at the endmodule.
        expect_err(
            "mtk 1\nmodule a\nnet p\ninput p\noutput p\nendmodule\ncircuit c\nend\n",
            ErrorCode::Semantic,
            6,
            1,
        );
    }

    #[test]
    fn e017_bad_instance() {
        // Unknown module, with a suggestion.
        let e = expect_err(
            "mtk 1\nmodule buf\nnet i\nnet o\ninput i\noutput o\ncell u inv i -> o\nendmodule\n\
circuit c\nnet a\nnet y\ninput a\ninst b0 bfu a -> y\nend\n",
            ErrorCode::BadInstance,
            13,
            9,
        );
        assert_eq!(e.hint.as_deref(), Some("did you mean `buf`?"));
        // Missing arrow.
        expect_err(
            "mtk 1\nmodule buf\nnet i\nnet o\ninput i\noutput o\ncell u inv i -> o\nendmodule\n\
circuit c\nnet a\nnet y\ninput a\ninst b0 buf a y\nend\n",
            ErrorCode::BadInstance,
            13,
            1,
        );
        // Port-arity mismatch.
        expect_err(
            "mtk 1\nmodule buf\nnet i\nnet o\ninput i\noutput o\ncell u inv i -> o\nendmodule\n\
circuit c\nnet a\nnet y\ninput a\ninst b0 buf a a -> y\nend\n",
            ErrorCode::BadInstance,
            13,
            1,
        );
        // Too few tokens is an arity error (E004), matching `cell`.
        expect_err(
            "mtk 1\ncircuit c\ninst b0\nend\n",
            ErrorCode::BadArity,
            3,
            1,
        );
        // `inst` before `circuit` is a placement error (E005).
        expect_err(
            "mtk 1\nmodule buf\nnet i\nnet o\ninput i\noutput o\ncell u inv i -> o\nendmodule\n\
inst b0 buf a -> y\ncircuit c\nend\n",
            ErrorCode::BadCircuit,
            9,
            1,
        );
        // Unknown actual nets keep E008.
        expect_err(
            "mtk 1\nmodule buf\nnet i\nnet o\ninput i\noutput o\ncell u inv i -> o\nendmodule\n\
circuit c\nnet a\ninput a\ninst b0 buf a -> q\nend\n",
            ErrorCode::UnknownNet,
            12,
            18,
        );
        // Builder rejections during flattening keep E010 (here: the
        // output actual is already driven).
        expect_err(
            "mtk 1\nmodule buf\nnet i\nnet o\ninput i\noutput o\ncell u inv i -> o\nendmodule\n\
circuit c\nnet a\nnet y\ninput a\ncell g inv a -> y\ninst b0 buf a -> y\nend\n",
            ErrorCode::Semantic,
            14,
            6,
        );
    }

    #[test]
    fn e014_structure() {
        expect_err("mtk 1\ncircuit x\n", ErrorCode::BadStructure, 3, 1);
        expect_err(
            "mtk 1\ncircuit x\nend\nnet a\n",
            ErrorCode::BadStructure,
            4,
            1,
        );
    }

    #[test]
    fn comments_and_blank_lines_are_ignored_everywhere() {
        let src = "\
mtk 1   # header comment

circuit c  # named c
net a      # the input
input a
end
# trailing commentary is fine
";
        let d = parse_str(src, "c.mtk").unwrap();
        assert_eq!(d.netlist.name(), "c");
        assert_eq!(d.netlist.primary_inputs().len(), 1);
    }

    #[test]
    fn tech_defaults_to_l07_when_absent() {
        let d = parse_str("mtk 1\ncircuit c\nend\n", "c.mtk").unwrap();
        assert_eq!(d.tech, Technology::l07());
    }

    #[test]
    fn tokenizer_tracks_columns() {
        let toks = tokenize("  cell  i1   inv # tail");
        assert_eq!(toks.len(), 3);
        assert_eq!((toks[0].text, toks[0].col), ("cell", 3));
        assert_eq!((toks[1].text, toks[1].col), ("i1", 9));
        assert_eq!((toks[2].text, toks[2].col), ("inv", 14));
        assert!(tokenize("# whole-line comment").is_empty());
        assert!(tokenize("   ").is_empty());
        let glued = tokenize("net a#tail");
        assert_eq!(glued.len(), 2);
        assert_eq!(glued[1].text, "a");
    }

    #[test]
    fn uppercase_x_accepted_in_vectors_and_ties() {
        let d = parse_str(
            "mtk 1\ncircuit c\nnet a\nnet b\ninput a b\nvector X0 -> 11\nend\n",
            "c.mtk",
        )
        .unwrap();
        assert_eq!(d.vectors[0].from, vec![Logic::X, Logic::Zero]);
    }
}
