//! Standard-format interop: SPICE deck export with embedded `.mtk`
//! hints, and the matching importer that recovers a full [`Design`]
//! from a deck.
//!
//! The exporter writes the transistor-level expansion of a design as a
//! plain SPICE deck ([`mtk_spice::deck::to_deck`] cards), preceded by
//! `* mtk: <line>` comment cards carrying every non-`cell` line of the
//! design's canonical `.mtk` serialization. SPICE tools ignore the
//! comments; the importer uses them to recover net names, technology
//! parameters, port directions, and stimulus vectors exactly, while the
//! gate-level structure itself is *re-derived from the transistors* by
//! [`mtk_netlist::interop::recognize`] — so a deck whose devices were
//! edited by hand re-imports as the edited circuit, not the stale hint.
//!
//! Decks without hints (foreign SPICE) still import: recognition runs
//! against a caller-supplied technology preset, net names are taken
//! from the deck's node names, and port directions are inferred
//! structurally (sources drive inputs, unconsumed gate outputs are
//! outputs). When recognition fails — a non-CMOS topology, resistive
//! devices, partitioned sleep rails — the importer degrades to
//! [`Imported::SpiceOnly`] carrying the parsed transistor circuit and
//! the reason, so callers can still run SPICE-level analyses. Fallback
//! is policy, not a panic or a print.

use crate::write::fmt_num;
use crate::{parse_str, Design, TECH_PARAMS};
use mtk_netlist::expand::{expand, ExpandOptions};
use mtk_netlist::interop::{recognize, RecognizedCircuit};
use mtk_netlist::logic::Logic;
use mtk_netlist::tech::Technology;
use mtk_spice::circuit::{Circuit, NodeId};
use mtk_spice::deck::{from_deck_with_stats, to_deck, DeckStats};
use std::collections::HashMap;
use std::fmt::Write as _;

/// The comment prefix carrying one canonical `.mtk` line inside an
/// exported deck.
pub const HINT_PREFIX: &str = "* mtk: ";

/// A hard interop failure: the deck (or the design being exported)
/// could not be processed at all. Recognition failures are *not* errors
/// — they come back as [`Imported::SpiceOnly`].
#[derive(Debug, Clone, PartialEq)]
pub struct InteropError(pub String);

impl std::fmt::Display for InteropError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for InteropError {}

/// Counters describing one import, mirrored into `mtk_trace` by the
/// CLI layer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ImportStats {
    /// Deck-level statistics (cards, subckts flattened, depth).
    pub deck: DeckStats,
    /// `* mtk:` hint lines found.
    pub hint_lines: usize,
    /// Gates recovered by structural recognition.
    pub cells_recognized: usize,
    /// Whether the import fell back to SPICE-only analysis.
    pub fallback: bool,
}

/// The importer's result: a full gate-level design, or — when gate
/// recognition fails — the transistor circuit alone plus the reason.
#[derive(Debug)]
pub enum Imported {
    /// Recognition succeeded: the deck round-trips into the gate-level
    /// flow (lint, STA, screening, sizing).
    Design {
        /// The recovered design.
        design: Box<Design>,
        /// Footer sleep-transistor W/L recovered from the deck, if a
        /// footer was present.
        sleep_w_over_l: Option<f64>,
        /// Import counters.
        stats: ImportStats,
    },
    /// Recognition failed: only transistor-level (SPICE) analyses are
    /// possible.
    SpiceOnly {
        /// The parsed transistor circuit.
        circuit: Box<Circuit>,
        /// Why gate recognition was not possible.
        reason: String,
        /// Import counters.
        stats: ImportStats,
    },
}

impl Imported {
    /// The import counters, whichever way the import went.
    pub fn stats(&self) -> &ImportStats {
        match self {
            Imported::Design { stats, .. } | Imported::SpiceOnly { stats, .. } => stats,
        }
    }
}

/// Serializes a design as a SPICE deck with embedded `.mtk` hints.
///
/// The deck is `to_deck(expand(netlist))` — MOSFET cards, the supply
/// and input sources, extracted caps, and (when `sleep_w_over_l` is
/// `Some`) the high-V<sub>t</sub> footer — with one `* mtk:` comment
/// card per non-`cell` line of [`Design::to_mtk`] spliced after the
/// title. Importing the result reproduces the design byte-exactly
/// (same canonical `.mtk`, same netlist fingerprint).
///
/// # Errors
///
/// [`InteropError`] when the design cannot be serialized (non-finite
/// values) or expanded (combinational loop).
pub fn export_deck(design: &Design, sleep_w_over_l: Option<f64>) -> Result<String, InteropError> {
    let mtk = design
        .try_to_mtk()
        .map_err(|e| InteropError(format!("cannot export: {e}")))?;
    let opts = match sleep_w_over_l {
        Some(w) => ExpandOptions::mtcmos(w),
        None => ExpandOptions::cmos(),
    };
    let ex = expand(&design.netlist, &design.tech, &opts)
        .map_err(|e| InteropError(format!("cannot expand: {e}")))?;
    let deck = to_deck(&ex.circuit, design.netlist.name());
    let mut out = String::new();
    let mut lines = deck.lines();
    if let Some(title) = lines.next() {
        out.push_str(title);
        out.push('\n');
    }
    for line in mtk.lines() {
        if !line.starts_with("cell ") {
            let _ = writeln!(out, "{HINT_PREFIX}{line}");
        }
    }
    for line in lines {
        out.push_str(line);
        out.push('\n');
    }
    Ok(out)
}

/// Imports a SPICE deck, recovering a gate-level [`Design`] when the
/// transistor topology is recognizable static CMOS (plus an optional
/// sleep footer), and falling back to [`Imported::SpiceOnly`] when not.
///
/// `name` is used as the diagnostics file name and — for decks without
/// hints — the circuit name. `fallback_tech` supplies technology
/// parameters when the deck carries no `* mtk:` hints (its `vdd` is
/// replaced by the deck's actual supply voltage).
///
/// # Errors
///
/// [`InteropError`] when the deck itself does not parse. Everything
/// past that point degrades to `SpiceOnly` instead of erroring.
pub fn import_deck(
    text: &str,
    name: &str,
    fallback_tech: &Technology,
) -> Result<Imported, InteropError> {
    let (circuit, deck_stats) =
        from_deck_with_stats(text).map_err(|e| InteropError(format!("{name}: {e}")))?;
    let hints: Vec<&str> = text
        .lines()
        .filter_map(|l| l.trim_end().strip_prefix(HINT_PREFIX))
        .collect();
    let mut stats = ImportStats {
        deck: deck_stats,
        hint_lines: hints.len(),
        cells_recognized: 0,
        fallback: false,
    };
    let fall = |circuit: Circuit, mut stats: ImportStats, reason: String| {
        stats.fallback = true;
        Ok(Imported::SpiceOnly {
            circuit: Box::new(circuit),
            reason,
            stats,
        })
    };

    // Technology: from the hint block when present, else the caller's.
    let hint_design = if hints.is_empty() {
        None
    } else {
        let src = hints.join("\n") + "\n";
        match parse_str(&src, name) {
            Ok(d) => Some(d),
            Err(e) => return fall(circuit, stats, format!("bad interop hints: {e}")),
        }
    };
    let tech = hint_design
        .as_ref()
        .map(|d| d.tech.clone())
        .unwrap_or_else(|| fallback_tech.clone());

    let rec = match recognize(&circuit, &tech) {
        Ok(rec) => rec,
        Err(e) => return fall(circuit, stats, e.0),
    };
    stats.cells_recognized = rec.cells.len();

    let assembled = match &hint_design {
        Some(hinted) => assemble_hinted(&circuit, &rec, hinted, &hints),
        None => assemble_foreign(&circuit, &rec, &tech, name),
    };
    let src = match assembled {
        Ok(src) => src,
        Err(reason) => return fall(circuit, stats, reason),
    };
    match parse_str(&src, name) {
        Ok(design) => Ok(Imported::Design {
            design: Box::new(design),
            sleep_w_over_l: rec.sleep_w_over_l,
            stats,
        }),
        Err(e) => fall(circuit, stats, format!("recovered netlist rejected: {e}")),
    }
}

/// One canonical `cell` line for a recognized gate, given a node→name
/// resolver.
fn cell_line(
    cell: &mtk_netlist::interop::RecognizedCell,
    resolve: &dyn Fn(NodeId) -> Result<String, String>,
) -> Result<String, String> {
    let mut line = format!("cell {} {}", cell.name, cell.kind.name());
    for &inp in &cell.inputs {
        let _ = write!(line, " {}", resolve(inp)?);
    }
    let _ = write!(line, " -> {}", resolve(cell.output)?);
    if cell.drive != 1.0 {
        let _ = write!(line, " drive={}", fmt_num(cell.drive));
    }
    Ok(line)
}

/// Reassembles canonical `.mtk` text from the hint lines plus the
/// recognized gates: hint lines stay in order, recovered `cell` lines
/// slot in before the first `vector` line (or `end`), exactly where the
/// canonical writer puts them.
fn assemble_hinted(
    circuit: &Circuit,
    rec: &RecognizedCircuit,
    hinted: &Design,
    hints: &[&str],
) -> Result<String, String> {
    // Expansion names every non-tied net's node `n_<net>`; ties
    // collapse onto the rails, so a rail resolves to the (unique) net
    // tied to its level.
    let mut by_node: HashMap<NodeId, String> = HashMap::new();
    let mut tied = [Vec::new(), Vec::new()]; // [to 0, to 1]
    for net in hinted.netlist.nets() {
        match net.tie {
            None => {
                let node = circuit
                    .find_node(&format!("n_{}", net.name))
                    .map_err(|_| format!("hint net '{}' has no node in the deck", net.name))?;
                by_node.insert(node, net.name.clone());
            }
            Some(Logic::Zero) => tied[0].push(net.name.clone()),
            Some(Logic::One) => tied[1].push(net.name.clone()),
            Some(Logic::X) => unreachable!("parser rejects ties to X"),
        }
    }
    let resolve = |node: NodeId| -> Result<String, String> {
        if let Some(name) = by_node.get(&node) {
            return Ok(name.clone());
        }
        let rail = if node == Circuit::GND {
            Some(&tied[0])
        } else if node == rec.vdd_node {
            Some(&tied[1])
        } else {
            None
        };
        match rail {
            Some(names) if names.len() == 1 => Ok(names[0].clone()),
            Some(names) => Err(format!(
                "gate terminal on rail '{}' maps to {} tied nets",
                circuit.node_name(node),
                names.len()
            )),
            None => Err(format!(
                "gate terminal on unnamed node '{}'",
                circuit.node_name(node)
            )),
        }
    };
    let mut cells = Vec::with_capacity(rec.cells.len());
    for cell in &rec.cells {
        cells.push(cell_line(cell, &resolve)?);
    }
    let mut out = String::new();
    let mut placed = false;
    for line in hints {
        if !placed && (line.starts_with("vector ") || *line == "end") {
            for c in &cells {
                out.push_str(c);
                out.push('\n');
            }
            placed = true;
        }
        out.push_str(line);
        out.push('\n');
    }
    if !placed {
        return Err("interop hints carry no 'end' line".into());
    }
    Ok(out)
}

/// Builds canonical `.mtk` text for a hint-less (foreign) deck: net
/// names come from the deck's node names, inputs from its independent
/// sources, outputs are the unconsumed gate outputs, and rails used as
/// gate inputs become tied constant nets.
fn assemble_foreign(
    circuit: &Circuit,
    rec: &RecognizedCircuit,
    tech: &Technology,
    name: &str,
) -> Result<String, String> {
    // Net set: driven inputs and gate outputs, in node order (the
    // deck's first-mention order, which is deterministic).
    let mut nodes: Vec<NodeId> = rec.inputs.iter().map(|&(_, n)| n).collect();
    for cell in &rec.cells {
        if !nodes.contains(&cell.output) {
            nodes.push(cell.output);
        }
    }
    nodes.sort_by_key(|n| n.index());
    let mut names: Vec<String> = Vec::with_capacity(nodes.len());
    for &n in &nodes {
        let nm = circuit.node_name(n).to_string();
        if names.contains(&nm) {
            return Err(format!("duplicate net name '{nm}'"));
        }
        names.push(nm);
    }
    // Rails used as gate inputs become tied constant nets.
    let mut ties: Vec<(String, char)> = Vec::new();
    let rail_inputs: Vec<NodeId> = rec
        .cells
        .iter()
        .flat_map(|c| c.inputs.iter().copied())
        .filter(|&n| n == Circuit::GND || n == rec.vdd_node)
        .collect();
    for (rail, tie_name, level) in [(Circuit::GND, "const0", '0'), (rec.vdd_node, "const1", '1')] {
        if rail_inputs.contains(&rail) {
            if names.iter().any(|n| n == tie_name) {
                return Err(format!("net name '{tie_name}' collides with a tie net"));
            }
            nodes.push(rail);
            names.push(tie_name.to_string());
            ties.push((tie_name.to_string(), level));
        }
    }
    let resolve = |node: NodeId| -> Result<String, String> {
        nodes
            .iter()
            .position(|&n| n == node)
            .map(|k| names[k].clone())
            .ok_or_else(|| {
                format!(
                    "gate terminal on unnamed node '{}'",
                    circuit.node_name(node)
                )
            })
    };

    let mut out = String::new();
    let _ = writeln!(out, "mtk {}", crate::FORMAT_VERSION);
    let _ = writeln!(out, "circuit {name}");
    // Mirror the canonical writer's tech section: preset plus diffs,
    // with the deck's actual supply voltage taken over the preset's.
    let mut tech = tech.clone();
    tech.vdd = rec.vdd;
    let base = Technology::preset(tech.name).unwrap_or_else(Technology::l07);
    let _ = writeln!(out, "tech {}", base.name);
    for (pname, get, _) in TECH_PARAMS {
        let (have, want) = (get(&base), get(&tech));
        if have.to_bits() != want.to_bits() {
            let _ = writeln!(out, "tech.{pname} {}", fmt_num(want));
        }
    }
    for nm in &names {
        let _ = writeln!(out, "net {nm}");
    }
    if !rec.inputs.is_empty() {
        out.push_str("input");
        for &(_, node) in &rec.inputs {
            let _ = write!(out, " {}", resolve(node)?);
        }
        out.push('\n');
    }
    let consumed: Vec<NodeId> = rec
        .cells
        .iter()
        .flat_map(|c| c.inputs.iter().copied())
        .collect();
    let outputs: Vec<String> = nodes
        .iter()
        .zip(&names)
        .filter(|&(n, _)| rec.cells.iter().any(|c| c.output == *n) && !consumed.contains(n))
        .map(|(_, nm)| nm.clone())
        .collect();
    if !outputs.is_empty() {
        out.push_str("output");
        for nm in &outputs {
            let _ = write!(out, " {nm}");
        }
        out.push('\n');
    }
    for (nm, level) in &ties {
        let _ = writeln!(out, "tie {nm} {level}");
    }
    for cell in &rec.cells {
        out.push_str(&cell_line(cell, &resolve)?);
        out.push('\n');
    }
    out.push_str("end\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtk_netlist::cell::CellKind;
    use mtk_netlist::netlist::Netlist;

    fn demo() -> Design {
        let mut nl = Netlist::new("demo");
        let a = nl.add_net("a").unwrap();
        let b = nl.add_net("b").unwrap();
        let c0 = nl.add_net("c0").unwrap();
        let m = nl.add_net("m").unwrap();
        let y = nl.add_net("y").unwrap();
        nl.mark_primary_input(a).unwrap();
        nl.mark_primary_input(b).unwrap();
        nl.tie_net(c0, Logic::Zero).unwrap();
        nl.add_cell("u1", CellKind::Nand2, vec![a, b], m, 2.0)
            .unwrap();
        nl.add_cell("u2", CellKind::Nor2, vec![m, c0], y, 1.0)
            .unwrap();
        nl.add_extra_cap(y, 2e-14);
        nl.mark_primary_output(y);
        Design::new(nl, Technology::l07()).with_vectors(vec![crate::Stimulus {
            from: vec![Logic::Zero, Logic::One],
            to: vec![Logic::One, Logic::One],
        }])
    }

    #[test]
    fn export_import_is_the_identity_on_the_canonical_form() {
        let d = demo();
        let deck = export_deck(&d, Some(7.5)).unwrap();
        assert!(deck.contains("* mtk: circuit demo"), "{deck}");
        assert!(!deck.contains("* mtk: cell"), "cell hints must be omitted");
        match import_deck(&deck, "demo.ckt", &Technology::l03()).unwrap() {
            Imported::Design {
                design,
                sleep_w_over_l,
                stats,
            } => {
                assert_eq!(design.to_mtk(), d.to_mtk());
                assert_eq!(
                    design.netlist.fingerprint(),
                    d.netlist.fingerprint(),
                    "fingerprint identity"
                );
                assert_eq!(design.vectors, d.vectors);
                // Hints win over the fallback tech (l03 above).
                assert_eq!(design.tech, d.tech);
                assert_eq!(sleep_w_over_l, Some(7.5));
                assert_eq!(stats.cells_recognized, 2);
                assert!(!stats.fallback);
                assert!(stats.hint_lines >= 10);
            }
            Imported::SpiceOnly { reason, .. } => panic!("fell back: {reason}"),
        }
    }

    #[test]
    fn cmos_export_without_footer_reimports_too() {
        let d = demo();
        let deck = export_deck(&d, None).unwrap();
        match import_deck(&deck, "demo.ckt", &Technology::l07()).unwrap() {
            Imported::Design {
                design,
                sleep_w_over_l,
                ..
            } => {
                assert_eq!(design.to_mtk(), d.to_mtk());
                assert_eq!(sleep_w_over_l, None);
            }
            Imported::SpiceOnly { reason, .. } => panic!("fell back: {reason}"),
        }
    }

    #[test]
    fn foreign_deck_without_hints_imports_structurally() {
        // Hand-written flat deck: two inverters a -> m -> y at drive 1.
        let deck = "\
* two inverter chain
.model mn nmos level=1 vto=0.55 kp=110u gamma=0.4 phi=0.8 lambda=0.04
.model mp pmos level=1 vto=-0.55 kp=55u gamma=0.4 phi=0.8 lambda=0.04
vdd vdd 0 dc 3.3
vin_a a 0 dc 0
minv1_n m a 0 0 mn w=1u l=1u
minv1_p m a vdd vdd mp w=2u l=1u
minv2_n y m 0 0 mn w=1u l=1u
minv2_p y m vdd vdd mp w=2u l=1u
";
        match import_deck(deck, "chain", &Technology::l07()).unwrap() {
            Imported::Design { design, stats, .. } => {
                let mtk = design.to_mtk();
                assert!(mtk.contains("circuit chain"), "{mtk}");
                assert!(mtk.contains("tech.vdd 3.3"), "deck vdd wins: {mtk}");
                assert!(mtk.contains("input a"), "{mtk}");
                assert!(mtk.contains("output y"), "{mtk}");
                assert!(mtk.contains("cell inv1 inv a -> m"), "{mtk}");
                assert!(mtk.contains("cell inv2 inv m -> y"), "{mtk}");
                assert_eq!(stats.cells_recognized, 2);
                assert_eq!(stats.hint_lines, 0);
                // The recovered text is itself canonical (fixpoint).
                let re = parse_str(&mtk, "chain.mtk").unwrap();
                assert_eq!(re.to_mtk(), mtk);
            }
            Imported::SpiceOnly { reason, .. } => panic!("fell back: {reason}"),
        }
    }

    #[test]
    fn unrecognizable_deck_degrades_to_spice_only() {
        let deck = "\
* rc ladder, no gates
v1 in 0 dc 1
r1 in mid 1k
c1 mid 0 1p
r2 mid out 1k
c2 out 0 1p
";
        match import_deck(deck, "ladder", &Technology::l07()).unwrap() {
            Imported::SpiceOnly {
                circuit,
                reason,
                stats,
            } => {
                assert!(!reason.is_empty());
                assert!(stats.fallback);
                assert_eq!(stats.cells_recognized, 0);
                assert!(circuit.find_node("mid").is_ok());
            }
            Imported::Design { .. } => panic!("an RC ladder is not a gate netlist"),
        }
    }

    #[test]
    fn unparseable_deck_is_a_hard_error() {
        let err = import_deck("* t\nq1 a b c qmod\n", "bad", &Technology::l07()).unwrap_err();
        assert!(err.to_string().contains("bad"), "{err}");
    }
}
