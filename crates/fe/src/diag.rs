//! Diagnostics for the `.mtk` parser: stable error codes, a located
//! error type, and the "did you mean" suggestion machinery.
//!
//! Error codes are part of the format contract (DESIGN.md §11): scripts
//! may match on `E0xx` and the mapping from code to condition never
//! changes across releases. New conditions get new codes.

use std::fmt;

/// Stable machine-readable error codes for `.mtk` rejections.
///
/// The numeric assignment is frozen; see the table in DESIGN.md §11.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ErrorCode {
    /// E001: first line is not `mtk <version>`.
    BadHeader,
    /// E002: the header names a format version this reader cannot parse.
    UnsupportedVersion,
    /// E003: a line starts with an unknown directive.
    UnknownDirective,
    /// E004: a directive has the wrong number of tokens.
    BadArity,
    /// E005: missing, duplicate, or misplaced `circuit` line.
    BadCircuit,
    /// E006: a token that must be a finite number is not one.
    BadNumber,
    /// E007: a `cell` line names an unknown cell kind.
    UnknownCellKind,
    /// E008: a net is referenced before being declared.
    UnknownNet,
    /// E009: a malformed or unknown `key=value` attribute.
    BadAttribute,
    /// E010: the netlist builder rejected the statement (duplicate net,
    /// arity mismatch, multiple drivers, invalid tie/drive, …).
    Semantic,
    /// E011: a logic level that is not `0`, `1`, or `x`.
    BadLogicValue,
    /// E012: a vector whose width disagrees with the declared primary
    /// inputs.
    VectorWidth,
    /// E013: an unknown technology preset or `tech.*` parameter, or a
    /// misplaced technology line.
    BadTech,
    /// E014: structural violation — missing `end`, content after `end`,
    /// or a truncated file.
    BadStructure,
    /// E015: an unknown, duplicate, or misplaced `corner` line (a PVT
    /// corner must name an entry of `mtk_netlist::tech::CORNERS` and
    /// precede any `tech.*` override).
    BadCorner,
    /// E016: a malformed `module` block — nested or unterminated
    /// definitions, a duplicate module name, a stray `endmodule`, or a
    /// directive that is not allowed inside (or only allowed inside) a
    /// module body.
    BadModule,
    /// E017: a malformed `inst` line — unknown module name, missing
    /// `->` separator, or a port-arity mismatch against the module's
    /// declared inputs/outputs.
    BadInstance,
}

impl ErrorCode {
    /// The frozen `E0xx` code string.
    pub fn code(self) -> &'static str {
        match self {
            ErrorCode::BadHeader => "E001",
            ErrorCode::UnsupportedVersion => "E002",
            ErrorCode::UnknownDirective => "E003",
            ErrorCode::BadArity => "E004",
            ErrorCode::BadCircuit => "E005",
            ErrorCode::BadNumber => "E006",
            ErrorCode::UnknownCellKind => "E007",
            ErrorCode::UnknownNet => "E008",
            ErrorCode::BadAttribute => "E009",
            ErrorCode::Semantic => "E010",
            ErrorCode::BadLogicValue => "E011",
            ErrorCode::VectorWidth => "E012",
            ErrorCode::BadTech => "E013",
            ErrorCode::BadStructure => "E014",
            ErrorCode::BadCorner => "E015",
            ErrorCode::BadModule => "E016",
            ErrorCode::BadInstance => "E017",
        }
    }

    /// A one-line summary of the condition the code covers.
    pub fn summary(self) -> &'static str {
        match self {
            ErrorCode::BadHeader => "first line must be `mtk <version>`",
            ErrorCode::UnsupportedVersion => "unsupported format version",
            ErrorCode::UnknownDirective => "unknown directive",
            ErrorCode::BadArity => "wrong number of tokens for directive",
            ErrorCode::BadCircuit => "missing, duplicate, or misplaced `circuit`",
            ErrorCode::BadNumber => "expected a finite number",
            ErrorCode::UnknownCellKind => "unknown cell kind",
            ErrorCode::UnknownNet => "net referenced before declaration",
            ErrorCode::BadAttribute => "malformed or unknown attribute",
            ErrorCode::Semantic => "netlist construction failed",
            ErrorCode::BadLogicValue => "logic level must be 0, 1, or x",
            ErrorCode::VectorWidth => "vector width disagrees with primary inputs",
            ErrorCode::BadTech => "unknown technology preset or parameter",
            ErrorCode::BadStructure => "missing `end` or content after it",
            ErrorCode::BadCorner => "unknown, duplicate, or misplaced `corner`",
            ErrorCode::BadModule => "malformed `module` block",
            ErrorCode::BadInstance => "malformed `inst` line",
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// A located, coded `.mtk` parse error.
///
/// Renders as `file:line:col: error[E0xx]: message` with an optional
/// trailing `; did you mean …` hint. Line and column are 1-based;
/// column points at the offending token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// The file name the source was attributed to.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: usize,
    /// 1-based column of the offending token.
    pub col: usize,
    /// The stable error code.
    pub code: ErrorCode,
    /// Human-readable description of what went wrong.
    pub message: String,
    /// Optional suggestion (e.g. the closest known cell kind).
    pub hint: Option<String>,
}

impl ParseError {
    /// Builds an error at a location.
    pub fn new(
        file: &str,
        line: usize,
        col: usize,
        code: ErrorCode,
        message: impl Into<String>,
    ) -> Self {
        ParseError {
            file: file.to_string(),
            line,
            col,
            code,
            message: message.into(),
            hint: None,
        }
    }

    /// Attaches a `did you mean` hint (builder style).
    #[must_use]
    pub fn with_hint(mut self, hint: impl Into<String>) -> Self {
        self.hint = Some(hint.into());
        self
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: error[{}]: {}",
            self.file, self.line, self.col, self.code, self.message
        )?;
        if let Some(hint) = &self.hint {
            write!(f, "; {hint}")?;
        }
        Ok(())
    }
}

impl std::error::Error for ParseError {}

/// Levenshtein edit distance, for "did you mean" suggestions. Inputs
/// are short identifiers, so the O(nm) two-row DP is plenty.
pub(crate) fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// The candidate closest to `word` within edit distance 2, if any.
/// Ties resolve to the earliest candidate, so suggestions are
/// deterministic.
pub(crate) fn closest<'a, I>(word: &str, candidates: I) -> Option<&'a str>
where
    I: IntoIterator<Item = &'a str>,
{
    let mut best: Option<(usize, &str)> = None;
    for cand in candidates {
        let d = levenshtein(word, cand);
        if d <= 2 && best.is_none_or(|(bd, _)| d < bd) {
            best = Some((d, cand));
        }
    }
    best.map(|(_, c)| c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        let all = [
            ErrorCode::BadHeader,
            ErrorCode::UnsupportedVersion,
            ErrorCode::UnknownDirective,
            ErrorCode::BadArity,
            ErrorCode::BadCircuit,
            ErrorCode::BadNumber,
            ErrorCode::UnknownCellKind,
            ErrorCode::UnknownNet,
            ErrorCode::BadAttribute,
            ErrorCode::Semantic,
            ErrorCode::BadLogicValue,
            ErrorCode::VectorWidth,
            ErrorCode::BadTech,
            ErrorCode::BadStructure,
            ErrorCode::BadCorner,
            ErrorCode::BadModule,
            ErrorCode::BadInstance,
        ];
        let mut codes: Vec<_> = all.iter().map(|c| c.code()).collect();
        assert_eq!(codes[0], "E001");
        assert_eq!(codes[13], "E014", "E001–E014 are frozen");
        assert_eq!(codes[14], "E015");
        assert_eq!(codes[15], "E016");
        assert_eq!(codes[16], "E017");
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), all.len());
        for c in all {
            assert!(!c.summary().is_empty());
        }
    }

    #[test]
    fn display_includes_location_code_and_hint() {
        let e = ParseError::new(
            "a.mtk",
            7,
            13,
            ErrorCode::UnknownCellKind,
            "unknown cell kind `nadn2`",
        )
        .with_hint("did you mean `nand2`?");
        assert_eq!(
            e.to_string(),
            "a.mtk:7:13: error[E007]: unknown cell kind `nadn2`; did you mean `nand2`?"
        );
        let bare = ParseError::new("a.mtk", 1, 1, ErrorCode::BadHeader, "no header");
        assert_eq!(bare.to_string(), "a.mtk:1:1: error[E001]: no header");
    }

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("nadn2", "nand2"), 2);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
    }

    #[test]
    fn closest_respects_cutoff_and_ties() {
        let kinds = ["inv", "nand2", "nor2"];
        assert_eq!(closest("nadn2", kinds), Some("nand2"));
        assert_eq!(closest("inw", kinds), Some("inv"));
        assert_eq!(closest("zzzzzz", kinds), None);
        // Equidistant candidates resolve to the first.
        assert_eq!(closest("nnd2", ["nand2", "nond2"]), Some("nand2"));
    }
}
