//! Deterministic property test of the `.mtk` round trip: seeded random
//! netlists (technology overrides, ties, caps, drives, vectors, the
//! whole parser-settable surface) must survive write → parse with full
//! equality, identical fingerprints, identical lint findings, and a
//! canonical fixpoint. No external property-testing crate: the trials
//! come from `mtk_num::prng` streams, so a failure reproduces from its
//! trial number alone.

use mtk_fe::{parse_str, Design, Stimulus};
use mtk_netlist::cell::CellKind;
use mtk_netlist::hier::Module;
use mtk_netlist::logic::Logic;
use mtk_netlist::netlist::Netlist;
use mtk_netlist::tech::Technology;
use mtk_num::prng::Xoshiro256pp;

const SEED: u64 = 0xF0F0_1997;
const TRIALS: u64 = 64;
const HIER_TRIALS: u64 = 16;

/// A bounded random choice.
fn pick(rng: &mut Xoshiro256pp, n: usize) -> usize {
    (rng.next_u64() % n as u64) as usize
}

/// Random positive value spanning several decades, exercising both
/// `fmt_num` branches (plain decimal and scientific).
fn num(rng: &mut Xoshiro256pp) -> f64 {
    let mantissa = 1.0 + (rng.next_u64() % 8999) as f64 / 1000.0;
    let exp = [-15i32, -13, -3, 0, 2, 5][pick(rng, 6)];
    mantissa * 10f64.powi(exp)
}

/// Mutable-field setters covering a sample of the `tech.*` surface.
const TECH_SETTERS: &[fn(&mut Technology, f64)] = &[
    |t, v| t.vdd = v,
    |t, v| t.vtn = v,
    |t, v| t.kp_n = v,
    |t, v| t.c_gate = v,
    |t, v| t.subthreshold.i0 = v,
];

fn random_design(trial: u64) -> Design {
    let mut rng = Xoshiro256pp::stream(SEED, trial);

    let mut tech = if rng.next_u64() & 1 == 0 {
        Technology::l07()
    } else {
        Technology::l03()
    };
    for _ in 0..pick(&mut rng, 3) {
        TECH_SETTERS[pick(&mut rng, TECH_SETTERS.len())](&mut tech, num(&mut rng));
    }

    let mut nl = Netlist::new(&format!("prop{trial}"));
    let n_pi = 1 + pick(&mut rng, 5);
    let mut readable = Vec::new();
    for i in 0..n_pi {
        let id = nl.add_net(&format!("i{i}")).unwrap();
        nl.mark_primary_input(id).unwrap();
        readable.push(id);
    }
    if rng.next_u64() & 1 == 0 {
        let id = nl.add_net("t0").unwrap();
        let v = if rng.next_u64() & 1 == 0 {
            Logic::Zero
        } else {
            Logic::One
        };
        nl.tie_net(id, v).unwrap();
        readable.push(id);
    }
    let kinds = CellKind::all();
    let n_gates = 1 + pick(&mut rng, 15);
    for g in 0..n_gates {
        let kind = kinds[pick(&mut rng, kinds.len())];
        let inputs: Vec<_> = (0..kind.n_inputs())
            .map(|_| readable[pick(&mut rng, readable.len())])
            .collect();
        let out = nl.add_net(&format!("n{g}")).unwrap();
        let drive = [1.0, 2.0, 0.25 + pick(&mut rng, 8) as f64 * 0.25][pick(&mut rng, 3)];
        nl.add_cell(&format!("g{g}"), kind, inputs, out, drive)
            .unwrap();
        if pick(&mut rng, 4) == 0 {
            nl.add_extra_cap(out, num(&mut rng) * 1e-15);
        }
        if pick(&mut rng, 3) == 0 || g == n_gates - 1 {
            nl.mark_primary_output(out);
        }
        readable.push(out);
    }

    let levels = [Logic::Zero, Logic::One, Logic::X];
    let vectors: Vec<Stimulus> = (0..pick(&mut rng, 3))
        .map(|_| Stimulus {
            from: (0..n_pi).map(|_| levels[pick(&mut rng, 3)]).collect(),
            to: (0..n_pi).map(|_| levels[pick(&mut rng, 3)]).collect(),
        })
        .collect();

    Design::new(nl, tech).with_vectors(vectors)
}

#[test]
fn random_designs_round_trip_exactly() {
    for trial in 0..TRIALS {
        let design = random_design(trial);
        let text = design.to_mtk();
        let parsed = parse_str(&text, "prop.mtk").unwrap_or_else(|e| {
            panic!("trial {trial}: generated text does not parse: {e}\n{text}")
        });

        assert_eq!(parsed.netlist, design.netlist, "trial {trial}: netlist");
        assert_eq!(parsed.tech, design.tech, "trial {trial}: technology");
        assert_eq!(parsed.vectors, design.vectors, "trial {trial}: vectors");
        assert_eq!(
            parsed.netlist.fingerprint(),
            design.netlist.fingerprint(),
            "trial {trial}: netlist fingerprint"
        );
        assert_eq!(
            parsed.tech.fingerprint(),
            design.tech.fingerprint(),
            "trial {trial}: tech fingerprint"
        );
        assert_eq!(
            parsed.lint(),
            design.lint(),
            "trial {trial}: lint findings changed across the round trip"
        );
        assert_eq!(parsed.to_mtk(), text, "trial {trial}: canonical fixpoint");
    }
}

/// A random module body: a few inputs, a random gate chain, drives,
/// caps, an optional tie, and the last gate output as the single
/// output port.
fn random_module_body(rng: &mut Xoshiro256pp) -> Netlist {
    let mut body = Netlist::new("m");
    let n_in = 1 + pick(rng, 3);
    let mut readable = Vec::new();
    for i in 0..n_in {
        let id = body.add_net(&format!("i{i}")).unwrap();
        body.mark_primary_input(id).unwrap();
        readable.push(id);
    }
    if rng.next_u64() & 1 == 0 {
        let id = body.add_net("t0").unwrap();
        body.tie_net(id, Logic::Zero).unwrap();
        readable.push(id);
    }
    let kinds = CellKind::all();
    let n_gates = 1 + pick(rng, 6);
    let mut last = None;
    for g in 0..n_gates {
        let kind = kinds[pick(rng, kinds.len())];
        let inputs: Vec<_> = (0..kind.n_inputs())
            .map(|_| readable[pick(rng, readable.len())])
            .collect();
        let out = body.add_net(&format!("n{g}")).unwrap();
        let drive = [1.0, 2.0][pick(rng, 2)];
        body.add_cell(&format!("g{g}"), kind, inputs, out, drive)
            .unwrap();
        if pick(rng, 4) == 0 {
            body.add_extra_cap(out, num(rng) * 1e-15);
        }
        readable.push(out);
        last = Some(out);
    }
    body.mark_primary_output(last.expect("at least one gate"));
    body
}

/// Renders a netlist as the body of a `module` block, in the same
/// section order the canonical writer uses (nets, input, output, ties,
/// cells).
fn module_text(body: &Netlist) -> String {
    let mut s = String::from("module m\n");
    for net in body.nets() {
        s.push_str(&format!("net {}", net.name));
        if net.extra_cap > 0.0 {
            s.push_str(&format!(" cap={}", net.extra_cap));
        }
        s.push('\n');
    }
    s.push_str("input");
    for &pi in body.primary_inputs() {
        s.push_str(&format!(" {}", body.net(pi).name));
    }
    s.push('\n');
    s.push_str("output");
    for &po in body.primary_outputs() {
        s.push_str(&format!(" {}", body.net(po).name));
    }
    s.push('\n');
    for net in body.nets() {
        if let Some(v) = net.tie {
            s.push_str(&format!(
                "tie {} {}\n",
                net.name,
                if v == Logic::One { "1" } else { "0" }
            ));
        }
    }
    for cell in body.cells() {
        s.push_str(&format!("cell {} {}", cell.name, cell.kind.name()));
        for &i in &cell.inputs {
            s.push_str(&format!(" {}", body.net(i).name));
        }
        s.push_str(&format!(" -> {}", body.net(cell.output).name));
        if cell.drive != 1.0 {
            s.push_str(&format!(" drive={}", cell.drive));
        }
        s.push('\n');
    }
    s.push_str("endmodule\n");
    s
}

/// Hierarchical sources are non-canonical sugar: a `module`/`inst`
/// design must parse to exactly the netlist that `Module::instantiate`
/// builds, and its canonical written form is flat and a fixpoint.
#[test]
fn hierarchical_sources_normalise_to_the_flat_canonical_form() {
    for trial in 0..HIER_TRIALS {
        let mut rng = Xoshiro256pp::stream(SEED ^ 0x4_1E57, trial);
        let body = random_module_body(&mut rng);
        let n_in = body.primary_inputs().len();

        // The hierarchical source: the module, then a top circuit
        // chaining two instances.
        let mut src = String::from("mtk 1\n");
        src.push_str(&module_text(&body));
        src.push_str(&format!("circuit hier{trial}\n"));
        for i in 0..n_in {
            src.push_str(&format!("net a{i}\n"));
        }
        src.push_str("net w0\nnet w1\n");
        src.push_str("input");
        for i in 0..n_in {
            src.push_str(&format!(" a{i}"));
        }
        src.push('\n');
        src.push_str("output w1\n");
        src.push_str("inst u0 m");
        for i in 0..n_in {
            src.push_str(&format!(" a{i}"));
        }
        src.push_str(" -> w0\n");
        // The second instance reads the first one's output.
        src.push_str("inst u1 m w0");
        for i in 1..n_in {
            src.push_str(&format!(" a{i}"));
        }
        src.push_str(" -> w1\n");
        src.push_str(&format!(
            "vector {} -> {}\n",
            "0".repeat(n_in),
            "1".repeat(n_in)
        ));
        src.push_str("end\n");

        // The same design, flattened programmatically.
        let module = Module::new("m", body.clone()).unwrap();
        let mut expect = Netlist::new(&format!("hier{trial}"));
        let mut tops = Vec::new();
        for i in 0..n_in {
            tops.push(expect.add_net(&format!("a{i}")).unwrap());
        }
        let w0 = expect.add_net("w0").unwrap();
        let w1 = expect.add_net("w1").unwrap();
        for &t in &tops {
            expect.mark_primary_input(t).unwrap();
        }
        expect.mark_primary_output(w1);
        module.instantiate(&mut expect, "u0", &tops, &[w0]).unwrap();
        let mut second = vec![w0];
        second.extend(tops.iter().skip(1).copied());
        module
            .instantiate(&mut expect, "u1", &second, &[w1])
            .unwrap();

        let parsed = parse_str(&src, "hier.mtk").unwrap_or_else(|e| {
            panic!("trial {trial}: hierarchical text does not parse: {e}\n{src}")
        });
        assert_eq!(parsed.netlist, expect, "trial {trial}: flattened netlist");
        assert_eq!(
            parsed.netlist.fingerprint(),
            expect.fingerprint(),
            "trial {trial}: fingerprint"
        );

        // Canonical form: flat, and a writer fixpoint.
        let flat = parsed.to_mtk();
        assert!(!flat.contains("module"), "trial {trial}:\n{flat}");
        assert!(!flat.contains("inst "), "trial {trial}:\n{flat}");
        let back = parse_str(&flat, "hier.mtk").unwrap();
        assert_eq!(back.netlist, parsed.netlist, "trial {trial}: reparse");
        assert_eq!(back.to_mtk(), flat, "trial {trial}: canonical fixpoint");
    }
}

/// The random pool must actually exercise the interesting corners —
/// otherwise the property above can pass vacuously.
#[test]
fn random_pool_covers_the_parser_settable_surface() {
    let designs: Vec<Design> = (0..TRIALS).map(random_design).collect();
    assert!(designs
        .iter()
        .any(|d| d.netlist.nets().iter().any(|n| n.tie.is_some())));
    assert!(designs
        .iter()
        .any(|d| d.netlist.nets().iter().any(|n| n.extra_cap > 0.0)));
    assert!(designs
        .iter()
        .any(|d| d.netlist.cells().iter().any(|c| c.drive != 1.0)));
    assert!(designs
        .iter()
        .any(|d| d.vectors.iter().any(|s| s.from.contains(&Logic::X))));
    assert!(designs
        .iter()
        .any(|d| d.tech != Technology::l07() && d.tech != Technology::l03()));
    assert!(designs.iter().any(|d| !d.lint().is_empty()));
    let mut kinds_seen = std::collections::HashSet::new();
    for d in &designs {
        for c in d.netlist.cells() {
            kinds_seen.insert(c.kind);
        }
    }
    assert_eq!(
        kinds_seen.len(),
        CellKind::all().len(),
        "every cell kind must appear in the pool"
    );
}
