//! Self-timed micro-benchmarks of the two engines and their numeric
//! substrate. The headline §6.2 claim (switch-level ≫ SPICE) is measured
//! end-to-end in `sweeps.rs`; these isolate the pieces.
//!
//! Run with `cargo bench -p mtk-bench --features bench-harness`.

use mtk_bench::timing::bench;
use mtk_circuits::adder::RippleAdder;
use mtk_circuits::multiplier::ArrayMultiplier;
use mtk_circuits::tree::InverterTree;
use mtk_core::model::{solve_vx, VxOptions};
use mtk_core::vbsim::{Engine, VbsimOptions};
use mtk_netlist::logic::Logic;
use mtk_netlist::tech::Technology;
use mtk_num::sparse::Triplets;
use std::hint::black_box;

fn bench_vx_solver() {
    let tech = Technology::l07();
    let betas = vec![tech.kp_n; 9];
    let r = tech.sleep_resistance(8.0);
    bench("vx_solver/9_gates_body_effect", 100, 1000, || {
        black_box(
            solve_vx(
                black_box(&tech),
                black_box(r),
                black_box(&betas),
                VxOptions { body_effect: true },
            )
            .unwrap(),
        );
    });
}

fn bench_vbsim() {
    let tech07 = Technology::l07();
    let tree = InverterTree::paper();
    let tree_engine = Engine::new(&tree.netlist, &tech07);
    bench("vbsim/tree_vector", 20, 200, || {
        black_box(
            tree_engine
                .run(
                    black_box(&[Logic::Zero]),
                    black_box(&[Logic::One]),
                    &VbsimOptions::mtcmos(8.0),
                )
                .unwrap(),
        );
    });

    let add = RippleAdder::paper();
    let add_engine = Engine::new(&add.netlist, &tech07);
    let from = add.input_values(1, 0);
    let to = add.input_values(5, 6);
    bench("vbsim/adder_vector", 20, 200, || {
        black_box(
            add_engine
                .run(
                    black_box(&from),
                    black_box(&to),
                    &VbsimOptions::mtcmos(10.0),
                )
                .unwrap(),
        );
    });

    let tech03 = Technology::l03();
    let m = ArrayMultiplier::paper();
    let m_engine = Engine::new(&m.netlist, &tech03);
    let from = m.input_values(0, 0);
    let to = m.input_values(0xFF, 0x81);
    bench("vbsim/multiplier_vector_a", 5, 50, || {
        black_box(
            m_engine
                .run(
                    black_box(&from),
                    black_box(&to),
                    &VbsimOptions::mtcmos(170.0),
                )
                .unwrap(),
        );
    });
}

fn bench_sparse_lu() {
    // A banded system shaped like an MNA matrix (~5 nnz per row).
    let n = 500;
    let mut t = Triplets::new(n);
    for i in 0..n {
        t.add(i, i, 4.0);
        if i + 1 < n {
            t.add(i, i + 1, -1.0);
            t.add(i + 1, i, -1.0);
        }
        if i + 7 < n {
            t.add(i, i + 7, -0.5);
            t.add(i + 7, i, -0.5);
        }
    }
    let b: Vec<f64> = (0..n).map(|i| (i % 13) as f64).collect();
    bench("sparse_lu/factor_solve_500", 5, 50, || {
        let lu = black_box(&t).factor().unwrap();
        black_box(lu.solve(black_box(&b)).unwrap());
    });
}

fn main() {
    bench_vx_solver();
    bench_vbsim();
    bench_sparse_lu();
}
