//! End-to-end engine benchmarks behind the §6.2 speed table: the full
//! 4096-vector switch-level sweep and a single SPICE adder transient.
//! The ratio of these two (×4096) reproduces the paper's 4.78 h vs
//! 13.5 s comparison on modern hardware.
//!
//! Run with `cargo bench -p mtk-bench --features bench-harness`.

use mtk_bench::timing::bench;
use mtk_bench::transition_of;
use mtk_circuits::adder::RippleAdder;
use mtk_circuits::vectors::exhaustive_transitions;
use mtk_core::hybrid::{spice_transition, SpiceRunConfig};
use mtk_core::vbsim::{Engine, VbsimOptions};
use mtk_netlist::expand::SleepImpl;
use mtk_netlist::tech::Technology;
use std::hint::black_box;

fn bench_vbsim_exhaustive() {
    let add = RippleAdder::paper();
    let tech = Technology::l07();
    let engine = Engine::new(&add.netlist, &tech);
    let transitions: Vec<_> = exhaustive_transitions(6)
        .into_iter()
        .map(|p| transition_of(p, 6))
        .collect();
    bench("sweep/vbsim_adder_4096_vectors", 1, 10, || {
        let opts = VbsimOptions::mtcmos(10.0);
        for tr in &transitions {
            black_box(engine.run(&tr.from, &tr.to, &opts).unwrap());
        }
    });
}

fn bench_spice_adder_vector() {
    let add = RippleAdder::paper();
    let tech = Technology::l07();
    let tr = transition_of(
        mtk_circuits::vectors::VectorPair::new(0b000001, 0b110101),
        6,
    );
    let cfg = SpiceRunConfig::window(80e-9);
    bench("sweep/spice_adder_1_vector", 1, 10, || {
        black_box(
            spice_transition(
                &add.netlist,
                &tech,
                &tr,
                None,
                SleepImpl::Transistor { w_over_l: 10.0 },
                &cfg,
            )
            .unwrap(),
        );
    });
}

fn main() {
    bench_vbsim_exhaustive();
    bench_spice_adder_vector();
}
