//! End-to-end engine benchmarks behind the §6.2 speed table: the full
//! 4096-vector switch-level sweep and a single SPICE adder transient.
//! The ratio of these two (×4096) reproduces the paper's 4.78 h vs
//! 13.5 s comparison on modern hardware.

use criterion::{criterion_group, criterion_main, Criterion};
use mtk_bench::transition_of;
use mtk_circuits::adder::RippleAdder;
use mtk_circuits::vectors::exhaustive_transitions;
use mtk_core::hybrid::{spice_transition, SpiceRunConfig};
use mtk_core::vbsim::{Engine, VbsimOptions};
use mtk_netlist::expand::SleepImpl;
use mtk_netlist::tech::Technology;
use std::hint::black_box;
use std::time::Duration;

fn bench_vbsim_exhaustive(c: &mut Criterion) {
    let add = RippleAdder::paper();
    let tech = Technology::l07();
    let engine = Engine::new(&add.netlist, &tech);
    let transitions: Vec<_> = exhaustive_transitions(6)
        .into_iter()
        .map(|p| transition_of(p, 6))
        .collect();
    let mut g = c.benchmark_group("sweep");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(12));
    g.bench_function("vbsim_adder_4096_vectors", |b| {
        b.iter(|| {
            let opts = VbsimOptions::mtcmos(10.0);
            for tr in &transitions {
                black_box(engine.run(&tr.from, &tr.to, &opts).unwrap());
            }
        })
    });
    g.finish();
}

fn bench_spice_adder_vector(c: &mut Criterion) {
    let add = RippleAdder::paper();
    let tech = Technology::l07();
    let tr = transition_of(mtk_circuits::vectors::VectorPair::new(0b000001, 0b110101), 6);
    let cfg = SpiceRunConfig::window(80e-9);
    let mut g = c.benchmark_group("sweep");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(15));
    g.bench_function("spice_adder_1_vector", |b| {
        b.iter(|| {
            black_box(
                spice_transition(
                    &add.netlist,
                    &tech,
                    &tr,
                    None,
                    SleepImpl::Transistor { w_over_l: 10.0 },
                    &cfg,
                )
                .unwrap(),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_vbsim_exhaustive, bench_spice_adder_vector);
criterion_main!(benches);
