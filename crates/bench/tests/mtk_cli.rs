//! End-to-end contract of the `mtk` driver binary, through real
//! process invocations:
//!
//! * `mtk lint` exit codes: 0 clean, 1 on findings (0 with
//!   `--warn-only`), 2 on parse errors — with every `LintIssue`
//!   variant exercised through the file-based path and findings
//!   pointing at the offending `.mtk` source line.
//! * Malformed input yields a `file:line:col: error[E0xx]` diagnostic
//!   and exit 2, never a panic.
//! * `mtk screen --trace-deterministic` writes byte-identical JSON at
//!   thread counts 1, 2 and 8 on a golden example.
//! * `mtk gen <stem>` reproduces the checked-in golden file exactly.

use std::path::PathBuf;
use std::process::{Command, Output};

fn mtk(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mtk"))
        .args(args)
        .output()
        .expect("spawn mtk")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Writes a test `.mtk` file under the target tmp dir and returns its
/// path as a string.
fn fixture(name: &str, content: &str) -> String {
    let path = std::env::temp_dir().join(format!("mtk_cli_{}_{name}.mtk", std::process::id()));
    std::fs::write(&path, content).expect("write fixture");
    path.to_string_lossy().into_owned()
}

/// Path of a checked-in golden example (the workspace root is two
/// levels above this crate).
fn golden(stem: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples")
        .join(format!("{stem}.mtk"))
}

const CLEAN: &str = "mtk 1\ncircuit t\nnet a\nnet y\ninput a\ncell g1 inv a -> y\noutput y\nend\n";

#[test]
fn lint_clean_file_exits_zero() {
    let path = fixture("clean", CLEAN);
    let out = mtk(&["lint", &path]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("clean"));
}

#[test]
fn lint_floating_net_exits_one_with_source_line() {
    let src = "mtk 1\ncircuit t\nnet f\nnet y\ncell g1 inv f -> y\noutput y\nend\n";
    let path = fixture("floating", src);
    let out = mtk(&["lint", &path]);
    assert_eq!(out.status.code(), Some(1));
    // `net f` is declared on line 3 of the fixture.
    assert!(
        stdout(&out).contains(":3: warning[floating-net]: floating net 'f'"),
        "stdout: {}",
        stdout(&out)
    );
}

#[test]
fn lint_dangling_net_and_unreachable_cell_exit_one() {
    let src = "mtk 1\ncircuit t\nnet a\nnet m\nnet d\ninput a\ncell g1 inv a -> m\n\
               cell g2 inv a -> d\noutput m\nend\n";
    let path = fixture("dangling", src);
    let out = mtk(&["lint", &path]);
    assert_eq!(out.status.code(), Some(1));
    let text = stdout(&out);
    assert!(
        text.contains(":5: warning[dangling-net]: dangling net 'd'"),
        "stdout: {text}"
    );
    assert!(
        text.contains(":8: warning[unreachable-cell]: cell 'g2'"),
        "stdout: {text}"
    );
}

#[test]
fn lint_unused_input_exits_one_and_warn_only_downgrades() {
    let src = "mtk 1\ncircuit t\nnet a\nnet b\nnet y\ninput a b\ncell g1 inv a -> y\n\
               output y\nend\n";
    let path = fixture("unused", src);
    let out = mtk(&["lint", &path]);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        stdout(&out).contains(":4: warning[unused-input]: primary input 'b'"),
        "stdout: {}",
        stdout(&out)
    );
    // --warn-only keeps the findings but downgrades the exit code.
    let out = mtk(&["lint", &path, "--warn-only"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(stdout(&out).contains("warning[unused-input]"));
}

#[test]
fn malformed_input_is_a_diagnostic_not_a_panic() {
    // Unknown cell kind, with a "did you mean" hint.
    let src = "mtk 1\ncircuit t\nnet a\nnet y\ninput a\ncell g1 nnad2 a a -> y\noutput y\nend\n";
    let path = fixture("badkind", src);
    let out = mtk(&["lint", &path]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains(":6:9: error[E007]"), "stderr: {err}");
    assert!(err.contains("nand2"), "stderr: {err}");

    // Missing header.
    let path = fixture("badheader", "circuit t\nend\n");
    let out = mtk(&["lint", &path]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr(&out).contains("error[E001]"),
        "stderr: {}",
        stderr(&out)
    );
}

#[test]
fn missing_file_and_missing_args_exit_two() {
    let out = mtk(&["lint", "/nonexistent/nope.mtk"]);
    assert_eq!(out.status.code(), Some(2));
    let out = mtk(&[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("usage"));
    let out = mtk(&["frobnicate", "x.mtk"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn flow_commands_accept_a_golden_file() {
    let path = golden("adder3");
    let path = path.to_str().unwrap();
    let out = mtk(&["sta", path]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("critical delay"));
    let out = mtk(&["screen", path, "--stride", "512"]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("screened"));
}

#[test]
fn deterministic_screen_trace_is_byte_identical_across_threads() {
    let path = golden("adder3");
    let path = path.to_str().unwrap();
    let mut traces = Vec::new();
    for threads in ["1", "2", "8"] {
        let json = std::env::temp_dir().join(format!(
            "mtk_cli_{}_trace_t{threads}.json",
            std::process::id()
        ));
        let json = json.to_str().unwrap().to_string();
        let out = mtk(&[
            "screen",
            path,
            "--stride",
            "128",
            "--threads",
            threads,
            "--trace-deterministic",
            "--trace-json",
            &json,
        ]);
        assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
        traces.push(std::fs::read(&json).expect("trace artifact"));
    }
    assert_eq!(traces[0], traces[1], "threads 1 vs 2");
    assert_eq!(traces[0], traces[2], "threads 1 vs 8");
}

#[test]
fn gen_reproduces_the_checked_in_goldens() {
    let out = mtk(&["gen", "--list"]);
    assert_eq!(out.status.code(), Some(0));
    // Each `--list` line is `<stem>  <description>`; the stem is the
    // first whitespace-separated token.
    let stems: Vec<String> = stdout(&out)
        .lines()
        .filter_map(|l| l.split_whitespace().next())
        .map(str::to_string)
        .collect();
    assert!(stems.contains(&"adder3".to_string()));
    for stem in &stems {
        let out = mtk(&["gen", stem]);
        assert_eq!(out.status.code(), Some(0));
        let on_disk = std::fs::read_to_string(golden(stem)).expect("golden file");
        assert_eq!(
            stdout(&out),
            on_disk,
            "{stem}: `mtk gen` and examples/{stem}.mtk diverged — regenerate with `mtk gen --all`"
        );
    }
    let out = mtk(&["gen", "nope"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown golden design"));
}
