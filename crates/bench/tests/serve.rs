//! Wire-protocol contract of `mtk serve` (ISSUE 7 satellite): malformed
//! JSON, oversized requests, half-open connections, bounded
//! backpressure, concurrent identical requests deduped to one
//! simulation, store-hit replays byte-identical, and graceful drain.

use mtk_bench::serve::{request, ServeConfig, Server, ServerState};
use mtk_trace::json::{parse, JsonValue};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// A two-inverter chain with one file vector — small enough that every
/// job completes in milliseconds.
const CHAIN: &str = "mtk 1\ncircuit chain\ntech l07\nnet a\nnet m\nnet y cap=2e-14\n\
                     input a\noutput y\ncell i1 inv a -> m\ncell i2 inv m -> y\n\
                     vector 0 -> 1\nend\n";

const CLIENT_TIMEOUT: Duration = Duration::from_secs(120);

fn scratch(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("mtk_serve_{}_{name}.log", std::process::id()))
}

struct Cleanup(std::path::PathBuf);
impl Drop for Cleanup {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
        let mut lock = self.0.clone().into_os_string();
        lock.push(".lock");
        let _ = std::fs::remove_file(std::path::PathBuf::from(lock));
    }
}

/// Binds a server with `cfg`, runs it on a background thread, and
/// returns (addr, state, join handle).
fn start(cfg: ServeConfig) -> (String, Arc<ServerState>, std::thread::JoinHandle<()>) {
    let server = Server::bind(cfg).expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let state = server.state();
    let handle = std::thread::spawn(move || server.run().expect("run"));
    (addr, state, handle)
}

fn job_line(cmd: &str, extra: &str) -> String {
    let design = JsonValue::String(CHAIN.into()).to_compact();
    format!("{{\"cmd\":\"{cmd}\",\"design\":{design}{extra}}}")
}

/// Reads `trace.totals.counters.<name>` out of a status response.
fn counter(status: &str, name: &str) -> u64 {
    parse(status)
        .expect("status parses")
        .get("trace")
        .and_then(|t| t.get("totals"))
        .and_then(|t| t.get("counters"))
        .and_then(|c| c.get(name))
        .and_then(JsonValue::as_u64)
        .unwrap_or_else(|| panic!("counter {name} missing in {status}"))
}

fn shutdown(addr: &str, handle: std::thread::JoinHandle<()>) {
    let resp = request(addr, r#"{"cmd":"shutdown"}"#, CLIENT_TIMEOUT).expect("shutdown");
    assert!(resp.contains("\"draining\":true"), "{resp}");
    handle.join().expect("drained cleanly");
}

#[test]
fn identical_requests_replay_byte_identical_from_the_store() {
    let path = scratch("replay");
    let _c = Cleanup(path.clone());
    let (addr, _state, handle) = start(ServeConfig {
        store_path: Some(path.clone()),
        ..ServeConfig::default()
    });

    let line = job_line("hybrid", ",\"top_k\":4");
    let first = request(&addr, &line, CLIENT_TIMEOUT).expect("first");
    assert!(first.contains("\"status\":\"ok\""), "{first}");
    assert!(first.contains("\"cached\":false"), "{first}");
    assert!(first.contains("\"trace\":"), "{first}");

    // Same request again: a store hit whose payload is byte-identical.
    let second = request(&addr, &line, CLIENT_TIMEOUT).expect("second");
    assert!(second.contains("\"cached\":true"), "{second}");
    assert_eq!(
        second.replacen("\"cached\":true", "\"cached\":false", 1),
        first,
        "store replay must be byte-identical apart from the cached flag"
    );

    // The `threads` field is execution-only: a different thread count is
    // the same request and hits the same record.
    let threaded = request(
        &addr,
        &job_line("hybrid", ",\"top_k\":4,\"threads\":8"),
        CLIENT_TIMEOUT,
    )
    .expect("threaded");
    assert_eq!(
        threaded.replacen("\"cached\":true", "\"cached\":false", 1),
        first,
        "thread count must not key the store"
    );

    let status = request(&addr, r#"{"cmd":"status"}"#, CLIENT_TIMEOUT).expect("status");
    assert_eq!(counter(&status, "store_misses"), 1, "one simulation");
    assert_eq!(counter(&status, "store_hits"), 2, "two replays");
    shutdown(&addr, handle);

    // The log survives the server: a fresh one replays without work.
    let (addr2, _state2, handle2) = start(ServeConfig {
        store_path: Some(path),
        ..ServeConfig::default()
    });
    let revived = request(&addr2, &line, CLIENT_TIMEOUT).expect("revived");
    assert_eq!(
        revived.replacen("\"cached\":true", "\"cached\":false", 1),
        first,
        "replay must survive a server restart"
    );
    let status2 = request(&addr2, r#"{"cmd":"status"}"#, CLIENT_TIMEOUT).expect("status2");
    assert_eq!(counter(&status2, "store_misses"), 0);
    shutdown(&addr2, handle2);
}

#[test]
fn trace_is_byte_identical_at_any_thread_count() {
    // Three independent stores, same request at threads 1/2/8: each
    // server simulates once, and the deterministic payloads must agree
    // byte for byte (the workspace determinism contract, over the wire).
    let mut responses = Vec::new();
    for threads in [1usize, 2, 8] {
        let path = scratch(&format!("threads{threads}"));
        let _c = Cleanup(path.clone());
        let (addr, _state, handle) = start(ServeConfig {
            store_path: Some(path),
            ..ServeConfig::default()
        });
        let line = job_line("screen", &format!(",\"threads\":{threads}"));
        responses.push(request(&addr, &line, CLIENT_TIMEOUT).expect("screen"));
        shutdown(&addr, handle);
    }
    assert!(responses[0].contains("\"cached\":false"));
    assert_eq!(responses[0], responses[1], "threads 1 vs 2");
    assert_eq!(responses[0], responses[2], "threads 1 vs 8");
}

#[test]
fn concurrent_identical_requests_dedup_to_one_simulation() {
    let path = scratch("dedup");
    let _c = Cleanup(path.clone());
    let (addr, _state, handle) = start(ServeConfig {
        job_slots: 4,
        store_path: Some(path),
        ..ServeConfig::default()
    });
    let line = job_line("size", ",\"target\":0.08");
    let workers: Vec<_> = (0..4)
        .map(|_| {
            let addr = addr.clone();
            let line = line.clone();
            std::thread::spawn(move || request(&addr, &line, CLIENT_TIMEOUT).expect("job"))
        })
        .collect();
    let responses: Vec<String> = workers.into_iter().map(|w| w.join().unwrap()).collect();
    let normalized: Vec<String> = responses
        .iter()
        .map(|r| r.replacen("\"cached\":true", "\"cached\":false", 1))
        .collect();
    for r in &normalized[1..] {
        assert_eq!(r, &normalized[0], "deduped responses must agree");
    }
    let status = request(&addr, r#"{"cmd":"status"}"#, CLIENT_TIMEOUT).expect("status");
    assert_eq!(
        counter(&status, "store_misses"),
        1,
        "exactly one simulation for four identical concurrent requests"
    );
    assert_eq!(
        responses
            .iter()
            .filter(|r| r.contains("\"cached\":false"))
            .count(),
        1,
        "exactly one leader"
    );
    shutdown(&addr, handle);
}

#[test]
fn clustered_and_flat_requests_never_alias_in_the_store() {
    let path = scratch("alias");
    let _c = Cleanup(path.clone());
    let (addr, _state, handle) = start(ServeConfig {
        store_path: Some(path),
        ..ServeConfig::default()
    });

    // Same design, same target: a flat `size` and a clustered request
    // must key separate store records.
    let size_line = job_line("size", ",\"target\":0.08");
    let cluster_line = job_line("cluster", ",\"target\":0.08,\"clusters\":4");
    let size1 = request(&addr, &size_line, CLIENT_TIMEOUT).expect("size");
    assert!(size1.contains("\"status\":\"ok\""), "{size1}");
    assert!(size1.contains("\"cached\":false"), "{size1}");
    let cluster1 = request(&addr, &cluster_line, CLIENT_TIMEOUT).expect("cluster");
    assert!(cluster1.contains("\"status\":\"ok\""), "{cluster1}");
    assert!(
        cluster1.contains("\"cached\":false"),
        "a cluster request must never replay a size record: {cluster1}"
    );
    assert!(cluster1.contains("\"clustered_width\":"), "{cluster1}");

    // Reruns hit their *own* records, byte-identical.
    for (line, first) in [(&size_line, &size1), (&cluster_line, &cluster1)] {
        let again = request(&addr, line, CLIENT_TIMEOUT).expect("rerun");
        assert_eq!(
            &again.replacen("\"cached\":true", "\"cached\":false", 1),
            first,
            "rerun must replay its own record byte-identically"
        );
    }

    // The cluster cap is part of the key: a different `clusters` value
    // is a different job, not a replay.
    let recapped = request(
        &addr,
        &job_line("cluster", ",\"target\":0.08,\"clusters\":2"),
        CLIENT_TIMEOUT,
    )
    .expect("recapped");
    assert!(recapped.contains("\"cached\":false"), "{recapped}");

    let status = request(&addr, r#"{"cmd":"status"}"#, CLIENT_TIMEOUT).expect("status");
    assert_eq!(counter(&status, "store_misses"), 3, "three distinct jobs");
    assert_eq!(counter(&status, "store_hits"), 2, "two replays");
    shutdown(&addr, handle);
}

#[test]
fn malformed_and_unknown_requests_are_rejected() {
    let (addr, _state, handle) = start(ServeConfig::default());
    let bad = [
        "this is not json",
        r#"{"cmd":"explode"}"#,
        r#"{"cmd":"screen"}"#,
        r#"{"cmd":"screen","design":"mtk 1\nnot a design\nend\n"}"#,
        r#"{"cmd":"size","design":"","target":"not a number"}"#,
    ];
    for line in bad {
        let resp = request(&addr, line, CLIENT_TIMEOUT).expect("responds");
        assert!(resp.contains("\"status\":\"error\""), "{line} -> {resp}");
    }
    let status = request(&addr, r#"{"cmd":"status"}"#, CLIENT_TIMEOUT).expect("status");
    assert_eq!(counter(&status, "requests_rejected"), bad.len() as u64);
    // A rejected request must not poison the connection for valid ones:
    // errors and a success can share one connection (exercised via the
    // single-request client repeatedly above) — and the server still
    // serves jobs.
    let ok = request(&addr, &job_line("screen", ""), CLIENT_TIMEOUT).expect("screen");
    assert!(ok.contains("\"status\":\"ok\""), "{ok}");
    shutdown(&addr, handle);
}

#[test]
fn oversized_request_is_rejected_and_the_connection_closed() {
    let (addr, _state, handle) = start(ServeConfig {
        max_request_bytes: 1024,
        ..ServeConfig::default()
    });
    let huge = format!("{{\"cmd\":\"screen\",\"design\":\"{}\"}}", "x".repeat(4096));
    let resp = request(&addr, &huge, CLIENT_TIMEOUT).expect("responds");
    assert!(resp.contains("request too large"), "{resp}");
    let status = request(&addr, r#"{"cmd":"status"}"#, CLIENT_TIMEOUT).expect("status");
    assert_eq!(counter(&status, "requests_rejected"), 1);
    shutdown(&addr, handle);
}

#[test]
fn half_open_connection_times_out_and_is_counted() {
    let (addr, _state, handle) = start(ServeConfig {
        read_timeout: Duration::from_millis(150),
        ..ServeConfig::default()
    });
    // A client that sends half a request and stalls.
    let mut stalled = TcpStream::connect(&addr).expect("connect");
    stalled
        .write_all(b"{\"cmd\":\"status\"")
        .expect("partial write");
    // The server must drop us after its read timeout.
    stalled
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut buf = [0u8; 16];
    match stalled.read(&mut buf) {
        Ok(0) | Err(_) => {} // orderly FIN or reset — both are "dropped"
        Ok(n) => panic!("half-open connection must be closed, got {n} bytes"),
    }
    let status = request(&addr, r#"{"cmd":"status"}"#, CLIENT_TIMEOUT).expect("status");
    assert_eq!(counter(&status, "conn_timeouts"), 1);
    shutdown(&addr, handle);
}

#[test]
fn backpressure_is_an_explicit_busy_response() {
    let (addr, _state, handle) = start(ServeConfig {
        job_slots: 0,
        ..ServeConfig::default()
    });
    let resp = request(&addr, &job_line("screen", ""), CLIENT_TIMEOUT).expect("responds");
    assert_eq!(resp, r#"{"status":"busy"}"#);
    let status = request(&addr, r#"{"cmd":"status"}"#, CLIENT_TIMEOUT).expect("status");
    assert_eq!(counter(&status, "requests_rejected"), 1);
    // status/shutdown need no slot — the control plane stays responsive.
    shutdown(&addr, handle);
}

#[test]
fn drain_refuses_new_connections_and_run_returns() {
    let (addr, state, handle) = start(ServeConfig::default());
    assert!(!state.draining());
    shutdown(&addr, handle); // joins run(): drained and returned
    assert!(state.draining());
    // New connections are refused once drained (the listener is gone).
    let refused = TcpStream::connect(&addr);
    assert!(refused.is_err(), "listener must be closed after drain");
}

#[test]
fn status_reports_cache_and_store_health() {
    let path = scratch("status");
    let _c = Cleanup(path.clone());
    let (addr, _state, handle) = start(ServeConfig {
        store_path: Some(path),
        ..ServeConfig::default()
    });
    // A size job populates the shared screening cache through the store.
    let resp = request(&addr, &job_line("size", ""), CLIENT_TIMEOUT).expect("size");
    assert!(resp.contains("\"w_over_l\":"), "{resp}");
    let status = request(&addr, r#"{"cmd":"status"}"#, CLIENT_TIMEOUT).expect("status");
    let v = parse(&status).expect("parses");
    let server = v.get("server").expect("server section");
    let cache = server.get("cache").expect("cache section");
    assert!(
        cache.get("legs").and_then(JsonValue::as_u64).unwrap() > 0,
        "size job must populate the screening cache: {status}"
    );
    assert!(
        server
            .get("store")
            .and_then(|s| s.get("live_records"))
            .and_then(JsonValue::as_u64)
            .unwrap()
            > 0,
        "store must hold the request and leg records: {status}"
    );
    assert_eq!(
        server
            .get("store")
            .and_then(|s| s.get("corrupt_records"))
            .and_then(JsonValue::as_u64),
        Some(0)
    );
    shutdown(&addr, handle);
}
