//! The committed engine-speed baseline (`BENCH_speed.json`).
//!
//! `speed_comparison --json` writes one of these; CI regenerates it and
//! compares against the copy committed at the repo root, so an engine
//! change that quietly loses the event-kernel speedup fails the build
//! instead of surfacing months later. The file is versioned and
//! schema-checked on parse (same philosophy as the `mtk_trace` report:
//! a golden test, not a "whatever serializes" blob).
//!
//! Host-dependence: absolute medians move between machines, so the
//! regression gate combines a *generous* multiplicative tolerance on
//! per-bench medians with a hard floor on the host-independent derived
//! ratios (event-vs-dense speedup is a property of the code, not the
//! host).

use crate::timing::Stats;
use mtk_trace::json::{self, JsonValue};

/// Schema name (the `name` field of the file).
pub const SPEEDFILE_NAME: &str = "mtk-bench-speed";
/// Schema version. History: v1 — benches (min/median/mean/samples) plus
/// derived ratios.
pub const SPEEDFILE_VERSION: u64 = 1;

/// One benchmark's statistics under its stable name.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Stable bench name (e.g. `adder4096_event`).
    pub name: String,
    /// Measured statistics, seconds per run.
    pub stats: Stats,
}

/// The parsed/buildable contents of a `BENCH_speed.json`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpeedFile {
    /// Benchmarks in insertion order.
    pub benches: Vec<BenchEntry>,
    /// Derived host-independent ratios (e.g. `event_vs_dense_speedup`),
    /// in insertion order.
    pub derived: Vec<(String, f64)>,
}

impl SpeedFile {
    /// An empty file.
    pub fn new() -> Self {
        SpeedFile::default()
    }

    /// Appends one benchmark's statistics.
    pub fn push(&mut self, name: &str, stats: Stats) {
        self.benches.push(BenchEntry {
            name: name.to_string(),
            stats,
        });
    }

    /// Appends one derived ratio.
    pub fn push_derived(&mut self, key: &str, value: f64) {
        self.derived.push((key.to_string(), value));
    }

    /// The median of a bench by name.
    pub fn median(&self, name: &str) -> Option<f64> {
        self.benches
            .iter()
            .find(|b| b.name == name)
            .map(|b| b.stats.median)
    }

    /// A derived ratio by key.
    pub fn derived(&self, key: &str) -> Option<f64> {
        self.derived.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }

    /// Serializes to the versioned pretty-JSON format.
    pub fn to_json(&self) -> String {
        let benches: Vec<JsonValue> = self
            .benches
            .iter()
            .map(|b| {
                JsonValue::Object(vec![
                    ("name".into(), JsonValue::String(b.name.clone())),
                    ("min_s".into(), JsonValue::Number(b.stats.min)),
                    ("median_s".into(), JsonValue::Number(b.stats.median)),
                    ("mean_s".into(), JsonValue::Number(b.stats.mean)),
                    ("samples".into(), JsonValue::Number(b.stats.samples as f64)),
                ])
            })
            .collect();
        let derived: Vec<(String, JsonValue)> = self
            .derived
            .iter()
            .map(|(k, v)| (k.clone(), JsonValue::Number(*v)))
            .collect();
        JsonValue::Object(vec![
            ("name".into(), JsonValue::String(SPEEDFILE_NAME.into())),
            (
                "version".into(),
                JsonValue::Number(SPEEDFILE_VERSION as f64),
            ),
            ("benches".into(), JsonValue::Array(benches)),
            ("derived".into(), JsonValue::Object(derived)),
        ])
        .to_pretty()
    }

    /// Parses and schema-validates a speed file.
    ///
    /// # Errors
    ///
    /// A description of the first schema violation (wrong name/version,
    /// missing field, non-finite or negative statistic).
    pub fn parse(text: &str) -> Result<SpeedFile, String> {
        let root = json::parse(text)?;
        let name = root
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or("missing 'name'")?;
        if name != SPEEDFILE_NAME {
            return Err(format!("wrong schema name '{name}'"));
        }
        let version = root
            .get("version")
            .and_then(JsonValue::as_u64)
            .ok_or("missing 'version'")?;
        if version != SPEEDFILE_VERSION {
            return Err(format!(
                "unsupported version {version} (expected {SPEEDFILE_VERSION})"
            ));
        }
        let mut out = SpeedFile::new();
        let benches = root
            .get("benches")
            .and_then(JsonValue::as_array)
            .ok_or("missing 'benches' array")?;
        for (i, b) in benches.iter().enumerate() {
            let name = b
                .get("name")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("bench {i}: missing 'name'"))?;
            let field = |key: &str| -> Result<f64, String> {
                let v = b
                    .get(key)
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| format!("bench '{name}': missing '{key}'"))?;
                if !v.is_finite() || v < 0.0 {
                    return Err(format!("bench '{name}': bad {key} {v}"));
                }
                Ok(v)
            };
            let samples = b
                .get("samples")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("bench '{name}': missing 'samples'"))?;
            if samples == 0 {
                return Err(format!("bench '{name}': zero samples"));
            }
            out.push(
                name,
                Stats {
                    min: field("min_s")?,
                    median: field("median_s")?,
                    mean: field("mean_s")?,
                    samples: samples as usize,
                },
            );
        }
        let derived = root
            .get("derived")
            .and_then(JsonValue::as_object)
            .ok_or("missing 'derived' object")?;
        for (k, v) in derived {
            let v = v
                .as_f64()
                .ok_or_else(|| format!("derived '{k}': not a number"))?;
            if !v.is_finite() {
                return Err(format!("derived '{k}': non-finite {v}"));
            }
            out.push_derived(k, v);
        }
        Ok(out)
    }
}

/// Regression check of `current` against a committed `baseline`:
///
/// * every bench present in **both** files must satisfy
///   `current.median ≤ baseline.median × tolerance` (benches only one
///   side has are skipped, so a fast CI run may measure a subset);
/// * `current` must carry the `event_vs_dense_speedup` ratio and it
///   must be at least `min_speedup`.
///
/// Returns the list of violations (empty = pass) so the caller can
/// print all of them before failing.
pub fn check_regressions(
    baseline: &SpeedFile,
    current: &SpeedFile,
    tolerance: f64,
    min_speedup: f64,
) -> Vec<String> {
    let mut violations = Vec::new();
    for b in &baseline.benches {
        if let Some(cur) = current.median(&b.name) {
            let limit = b.stats.median * tolerance;
            if cur > limit {
                violations.push(format!(
                    "bench '{}' regressed: median {:.6}s > {:.6}s (baseline {:.6}s x tolerance {})",
                    b.name, cur, limit, b.stats.median, tolerance
                ));
            }
        }
    }
    match current.derived("event_vs_dense_speedup") {
        Some(s) if s >= min_speedup => {}
        Some(s) => violations.push(format!(
            "event_vs_dense_speedup {s:.2} below required {min_speedup}"
        )),
        None => violations.push("missing derived 'event_vs_dense_speedup'".to_string()),
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(median: f64) -> Stats {
        Stats {
            min: median * 0.9,
            median,
            mean: median * 1.05,
            samples: 5,
        }
    }

    fn sample_file() -> SpeedFile {
        let mut f = SpeedFile::new();
        f.push("adder4096_dense", stats(2.0));
        f.push("adder4096_event", stats(0.1));
        f.push_derived("event_vs_dense_speedup", 20.0);
        f.push_derived("spice_vs_switch_ratio", 800.0);
        f
    }

    #[test]
    fn roundtrips_through_json() {
        let f = sample_file();
        let parsed = SpeedFile::parse(&f.to_json()).unwrap();
        assert_eq!(f, parsed);
        assert_eq!(parsed.median("adder4096_event"), Some(0.1));
        assert_eq!(parsed.derived("event_vs_dense_speedup"), Some(20.0));
    }

    #[test]
    fn rejects_bad_schemas() {
        assert!(SpeedFile::parse("{}").is_err());
        assert!(SpeedFile::parse("{\"name\": \"other\", \"version\": 1}").is_err());
        let wrong_version = sample_file()
            .to_json()
            .replace("\"version\": 1", "\"version\": 99");
        assert!(SpeedFile::parse(&wrong_version).is_err());
        let negative = sample_file()
            .to_json()
            .replace("\"median_s\": 0.1", "\"median_s\": -0.1");
        assert!(SpeedFile::parse(&negative).is_err());
    }

    #[test]
    fn regression_gate_passes_within_tolerance() {
        let baseline = sample_file();
        let mut current = SpeedFile::new();
        current.push("adder4096_event", stats(0.15)); // 1.5x: inside 2x
        current.push_derived("event_vs_dense_speedup", 15.0);
        assert!(check_regressions(&baseline, &current, 2.0, 10.0).is_empty());
    }

    #[test]
    fn regression_gate_catches_slowdown_and_lost_speedup() {
        let baseline = sample_file();
        let mut current = SpeedFile::new();
        current.push("adder4096_event", stats(0.5)); // 5x slower
        current.push_derived("event_vs_dense_speedup", 4.0);
        let violations = check_regressions(&baseline, &current, 2.0, 10.0);
        assert_eq!(violations.len(), 2, "{violations:?}");
        // A current file missing the speedup ratio is itself a failure.
        let empty = SpeedFile::new();
        assert!(!check_regressions(&baseline, &empty, 2.0, 10.0).is_empty());
    }

    #[test]
    fn subset_runs_skip_missing_benches() {
        let baseline = sample_file();
        let mut current = SpeedFile::new();
        // No dense bench in this (fast CI) run: not a violation.
        current.push("adder4096_event", stats(0.1));
        current.push_derived("event_vs_dense_speedup", 20.0);
        assert!(check_regressions(&baseline, &current, 2.0, 10.0).is_empty());
    }
}
