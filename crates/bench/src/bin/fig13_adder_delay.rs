//! FIG13 — 3-bit ripple-adder delay vs sleep W/L: SPICE vs the
//! switch-level simulator, for the paper's displayed vector
//! `(000001) → (110101)`.

use mtk_bench::report::{ns, print_table};
use mtk_bench::stats::{pearson, spearman};
use mtk_bench::transition_of;
use mtk_circuits::adder::RippleAdder;
use mtk_circuits::vectors::VectorPair;
use mtk_core::hybrid::{spice_transition, SpiceRunConfig};
use mtk_core::vbsim::{Engine, VbsimOptions};
use mtk_netlist::expand::SleepImpl;
use mtk_netlist::tech::Technology;

fn main() {
    let add = RippleAdder::paper();
    let tech = Technology::l07();
    let engine = Engine::new(&add.netlist, &tech);
    // The Fig 13 caption's vector, bits packed (a = low 3, b = high 3).
    let pair = VectorPair::new(0b000001, 0b110101);
    let tr = transition_of(pair, 6);
    let cfg = SpiceRunConfig::window(80e-9);

    println!(
        "FIG13: 3-bit mirror ripple adder ({} transistors), vector (000001)->(110101)",
        add.netlist.total_transistors()
    );

    let sizes = [2.0, 4.0, 6.0, 8.0, 10.0, 15.0, 20.0, 30.0];
    let mut rows = Vec::new();
    let mut sp_all = Vec::new();
    let mut vb_all = Vec::new();
    for &wl in &sizes {
        let sp = spice_transition(
            &add.netlist,
            &tech,
            &tr,
            None,
            SleepImpl::Transistor { w_over_l: wl },
            &cfg,
        )
        .expect("spice run")
        .delay
        .expect("outputs switch");
        let vb = engine
            .run(&tr.from, &tr.to, &VbsimOptions::mtcmos(wl))
            .expect("vbsim run")
            .delay_over(add.netlist.primary_outputs())
            .expect("outputs switch");
        sp_all.push(sp);
        vb_all.push(vb);
        rows.push(vec![
            format!("{wl}"),
            ns(sp),
            ns(vb),
            format!("{:.2}", vb / sp),
        ]);
    }
    print_table(
        "Fig 13: adder delay vs W/L (SPICE vs simulator)",
        &["W/L", "SPICE [ns]", "simulator [ns]", "sim/SPICE"],
        &rows,
    );
    let monotone = |d: &[f64]| d.windows(2).all(|w| w[1] <= w[0] + 1e-15);
    println!("\nSPICE monotone decreasing: {}", monotone(&sp_all));
    println!("simulator monotone decreasing: {}", monotone(&vb_all));
    println!(
        "trend agreement: pearson {:.3}, spearman {:.3}",
        pearson(&sp_all, &vb_all),
        spearman(&sp_all, &vb_all)
    );
}
