//! FIG14 — % degradation of the 3-bit adder at sleep W/L = 10 for the
//! vector transitions that toggle the S2 output: SPICE (sorted,
//! worst-first) vs the switch-level simulator's estimate per vector.
//!
//! The paper plots 800 S2-transition vectors; SPICE is the line, the
//! simulator the scatter — "although the simulator shows a significant
//! spread about the SPICE prediction, the general trend is correct."
//!
//! Usage: `--spice-n <k>` controls how many vectors run through SPICE
//! (default 60, covering the degradation range by stratified sampling);
//! `--full` runs every S2 vector through SPICE (minutes).

use mtk_bench::report::{pct, print_table};
use mtk_bench::stats::{mean_abs_rel_error, pearson, spearman};
use mtk_bench::transition_of;
use mtk_circuits::adder::RippleAdder;
use mtk_circuits::vectors::exhaustive_transitions;
use mtk_core::hybrid::{spice_delay_pair, SpiceRunConfig};
use mtk_core::sizing::{vbsim_delay_pair, Transition};
use mtk_core::vbsim::{Engine, SleepNetwork, VbsimOptions};
use mtk_netlist::tech::Technology;

const W_OVER_L: f64 = 10.0;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let spice_n: usize = args
        .iter()
        .position(|a| a == "--spice-n")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);

    let add = RippleAdder::paper();
    let tech = Technology::l07();
    let engine = Engine::new(&add.netlist, &tech);
    let s2 = [add.sum[2]];
    let base = VbsimOptions::default();

    println!("FIG14: 3-bit adder degradation at W/L={W_OVER_L}, S2-transition vectors");

    // Screen the exhaustive space with the switch-level simulator,
    // keeping vectors where S2 actually switches.
    let mut screened: Vec<(Transition, f64)> = Vec::new();
    for pair in exhaustive_transitions(6) {
        let tr = transition_of(pair, 6);
        if let Some(p) = vbsim_delay_pair(
            &engine,
            &tr,
            Some(&s2),
            SleepNetwork::Transistor { w_over_l: W_OVER_L },
            &base,
        )
        .expect("vbsim run")
        {
            screened.push((tr, p.degradation()));
        }
    }
    println!(
        "S2-transition vectors found by the simulator: {} of 4096 (paper plots 800)",
        screened.len()
    );

    // Choose the SPICE subset: stratified across the simulator's own
    // severity ordering so the whole degradation range is covered.
    screened.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let chosen: Vec<&(Transition, f64)> = if full {
        screened.iter().collect()
    } else {
        let n = spice_n.min(screened.len()).max(2);
        (0..n)
            .map(|k| &screened[k * (screened.len() - 1) / (n - 1)])
            .collect()
    };

    let cfg = SpiceRunConfig::window(80e-9);
    let mut spice_deg = Vec::new();
    let mut vbsim_deg = Vec::new();
    for (tr, vb_d) in &chosen {
        let Some(pair) = spice_delay_pair(&add.netlist, &tech, tr, Some(&s2), W_OVER_L, &cfg)
            .expect("spice run")
        else {
            continue;
        };
        spice_deg.push(pair.degradation());
        vbsim_deg.push(*vb_d);
    }

    // Paper presentation: sorted worst-to-best by SPICE, simulator value
    // alongside.
    let mut order: Vec<usize> = (0..spice_deg.len()).collect();
    order.sort_by(|&a, &b| {
        spice_deg[b]
            .partial_cmp(&spice_deg[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let rows: Vec<Vec<String>> = order
        .iter()
        .enumerate()
        .map(|(rank, &i)| {
            vec![
                format!("{}", rank + 1),
                pct(spice_deg[i]),
                pct(vbsim_deg[i]),
            ]
        })
        .collect();
    print_table(
        "Fig 14: % degradation (SPICE sorted worst-first; simulator alongside)",
        &["rank", "SPICE", "simulator"],
        &rows,
    );

    println!(
        "\nagreement over {} SPICE-verified vectors: spearman {:.3}, pearson {:.3}, \
         mean |rel err| {:.2}",
        spice_deg.len(),
        spearman(&spice_deg, &vbsim_deg),
        pearson(&spice_deg, &vbsim_deg),
        mean_abs_rel_error(&vbsim_deg, &spice_deg)
    );
    println!(
        "(paper: correct general trend with significant spread — expect positive rank \
         correlation, not pointwise agreement)"
    );
}
