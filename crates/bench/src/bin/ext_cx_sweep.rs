//! ABL-CX / §2.2 — the impact of virtual-ground parasitic capacitance.
//!
//! The paper's argument: capacitance on the virtual-ground rail filters
//! the bounce (a local charge reservoir), but the capacitance needed to
//! rescue a poorly sized sleep transistor is impractically large, and a
//! large C<sub>x</sub> also makes the virtual ground slow to recover,
//! hurting *later* gates. "Rather than rely on large capacitances ... it
//! is much easier to lower the effective resistance with proper
//! transistor sizing instead."

use mtk_bench::report::{ns, print_table};
use mtk_circuits::tree::InverterTree;
use mtk_core::hybrid::{spice_transition, SpiceRunConfig};
use mtk_core::sizing::Transition;
use mtk_netlist::expand::SleepImpl;
use mtk_netlist::logic::Logic;
use mtk_netlist::tech::Technology;

fn main() {
    let tree = InverterTree::paper();
    let tech = Technology::l07();
    let tr = Transition::new(vec![Logic::Zero], vec![Logic::One]);
    let probe = [tree.probe()];
    let wl = 3.0; // deliberately small sleep device

    println!("ABL-CX (§2.2): virtual-ground capacitance sweep, tree @ sleep W/L={wl}");

    let mut rows = Vec::new();
    for &cx in &[0.0, 50e-15, 200e-15, 1e-12, 5e-12] {
        let cfg = SpiceRunConfig {
            vgnd_extra_cap: cx,
            ..SpiceRunConfig::window(200e-9)
        };
        let res = spice_transition(
            &tree.netlist,
            &tech,
            &tr,
            Some(&probe),
            SleepImpl::Transistor { w_over_l: wl },
            &cfg,
        )
        .expect("spice run");
        let vg = res.vgnd.as_ref().expect("vgnd probed");
        let peak = vg.max_value().unwrap_or(0.0);
        // Recovery: time from the peak until the bounce is below 10 mV.
        let t_peak = vg
            .points()
            .iter()
            .find(|&&(_, v)| v >= peak * 0.999)
            .map(|&(t, _)| t)
            .unwrap_or(0.0);
        let recovery = vg
            .points()
            .iter()
            .find(|&&(t, v)| t > t_peak && v < 0.01)
            .map(|&(t, _)| t - t_peak);
        rows.push(vec![
            format!("{:.0} fF", cx * 1e15),
            ns(res.delay.expect("switches")),
            format!("{:.3}", peak),
            recovery.map_or("> window".to_string(), |t| format!("{:.1} ns", t * 1e9)),
        ]);
    }
    print_table(
        "delay, peak bounce, and bounce recovery vs extra vgnd capacitance (SPICE)",
        &["Cx", "tphl [ns]", "peak vgnd [V]", "recovery to <10mV"],
        &rows,
    );

    // The paper's alternative: instead of the biggest capacitor above,
    // just size the device up.
    let cfg = SpiceRunConfig::window(200e-9);
    let res = spice_transition(
        &tree.netlist,
        &tech,
        &tr,
        Some(&probe),
        SleepImpl::Transistor { w_over_l: wl * 4.0 },
        &cfg,
    )
    .expect("spice run");
    println!(
        "\nfor comparison, no extra Cx but 4x the sleep width (W/L={}): tphl {} ns, peak \
         bounce {:.3} V — the sizing route the paper recommends",
        wl * 4.0,
        ns(res.delay.expect("switches")),
        res.vgnd.and_then(|w| w.max_value()).unwrap_or(0.0)
    );
}
