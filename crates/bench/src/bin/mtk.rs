//! `mtk` — the unified driver: run the sizing tool on circuits we
//! didn't generate.
//!
//! Every other binary in this crate hard-codes one of the paper's
//! generators. This one loads a `.mtk` netlist file (grammar in
//! DESIGN.md §11) and routes it through the same deterministic
//! machinery, so an externally supplied circuit gets the exact same
//! flow — and, under `--trace-deterministic`, the byte-identical JSON
//! trace — as a programmatically built one.
//!
//! Usage: `mtk <command> <file.mtk> [flags]`
//!
//! * `mtk lint <file>` — parse and lint; findings one per line with the
//!   source line of the offending declaration. Exits 1 on findings
//!   (`--warn-only` downgrades to 0), 2 on parse errors.
//! * `mtk sta <file>` — static timing: critical-path delay and the path
//!   itself.
//! * `mtk screen <file>` — parallel switch-level screening of the
//!   vector space (`--threads`, `--w-over-l`, `--top`).
//! * `mtk size <file>` — bisect the sleep-transistor W/L to a target
//!   degradation (`--target`, `--lo`, `--hi`). With `--clusters N` the
//!   run routes through the cluster co-optimizer instead (same flags as
//!   `mtk cluster`).
//! * `mtk cluster <file>` — partition gates into mutually-exclusive
//!   clusters inferred from the vector set, give each cluster its own
//!   virtual-ground sleep device, and co-optimize the widths to the
//!   target (`--clusters`, `--target`, `--lo`, `--hi`, `--threads`,
//!   `--store`; `--smoke` thins the vector set for CI). The
//!   single-device solution is always computed too and returned when it
//!   uses no more total width (the never-worse rule).
//! * `mtk hybrid <file>` — screen, then SPICE-verify the top-k
//!   survivors (`--threads`, `--top-k`, `--w-over-l`).
//! * `mtk mc <file>` — Monte Carlo yield analysis under process
//!   variation (`--trials`, `--seed`, `--corner`, `--widths`,
//!   `--target`, `--store`; `--smoke` shrinks the sweep for CI). The
//!   technology's `tech.sigma_*` fields set the variation; trial `i`
//!   draws from PRNG stream `(seed, i)`, so results are bit-identical
//!   at any `--threads` and a `--store` rerun replays every trial.
//! * `mtk gen [--list | --all [--dir D] | <stem>]` — export the
//!   built-in generators as golden `.mtk` files (the `examples/`
//!   directory; CI regenerates and diffs them).
//! * `mtk export <file.mtk>` — serialize the transistor-level expansion
//!   as a SPICE deck with embedded `* mtk:` hints (`--w-over-l`,
//!   `--cmos` for no footer, `--out PATH`). Importing the result
//!   reproduces the design byte-exactly.
//! * `mtk import <file.ckt>` — read a SPICE deck (subcircuits are
//!   flattened), recover the gate-level design by structural
//!   recognition, and print/write canonical `.mtk` (`--out PATH`,
//!   `--tech PRESET` for hint-less decks). When recognition fails the
//!   command reports the reason and — with `--raw PATH` — still runs a
//!   SPICE-only transient and writes the rawfile; otherwise exits 1.
//!
//! `sta`, `screen`, `size` and `hybrid` take `--raw PATH` / `--vcd
//! PATH` to export deterministic waveforms of the most interesting
//! vector (the worst-ranked one where a ranking exists): a binary SPICE
//! rawfile from a transistor-level transient, a VCD dump from the
//! switch-level run.
//!
//! Vector sourcing for `screen`/`size`/`hybrid`, in precedence order:
//! `vector` lines from the file; the exhaustive transition space when
//! the circuit has ≤ 6 primary inputs (subsample with `--stride N`);
//! otherwise a seeded random sample (`--samples N`, default 256 —
//! sample i comes from PRNG stream (seed, i), so the set is identical
//! at any thread count).
//!
//! All commands lint on load: findings are printed to stderr as
//! warnings (only `lint` turns them into an exit code). Parse errors
//! print a `file:line:col: error[E0xx]` diagnostic and exit 2 — never a
//! panic. `--max-failures N` / `--fail-fast` and `--trace-json PATH` /
//! `--trace-deterministic` behave as in every `ext_*` binary.

use mtk_bench::cli::{
    bool_flag, emit_trace, f64_flag, failure_policy, flag, str_flag, threads_label, trace_config,
};
use mtk_bench::design_transitions;
use mtk_bench::report::{ns, pct, print_table};
use mtk_bench::serve::{self, ServeConfig, Server};
use mtk_circuits::golden::{generator_catalog, golden_designs};
use mtk_core::cluster::{
    exclusive_partition, size_clusters_for_target, ClusterReport, ClusterSizing,
};
use mtk_core::health::FaultPlan;
use mtk_core::hybrid::{run_hybrid, HybridOptions, SpiceRunConfig};
use mtk_core::mc::{run_mc, McOptions};
use mtk_core::sizing::{
    screen_vectors_par_quarantined, size_for_target_cached, ScreeningCache, Transition,
};
use mtk_core::sta::Sta;
use mtk_core::vbsim::{Engine, VbsimOptions};
use mtk_fe::interop::{export_deck, import_deck, Imported};
use mtk_fe::Design;
use mtk_trace::{CounterId, PhaseTrace, SpanRecorder, TraceReport};
use std::time::{Duration, Instant};

fn usage() -> ! {
    eprintln!(
        "usage: mtk <lint|sta|screen|size|cluster|hybrid|mc|export> <file.mtk> [flags]\n\
         \x20      mtk import <file.ckt> [--out F] [--tech PRESET] [--raw F]\n\
         \x20      mtk gen [--list | --all [--dir D] | <stem>]\n\
         \x20      mtk serve [--addr H:P] [--store PATH] [--threads N] [--job-slots N]\n\
         \x20      mtk client <host:port> <status|shutdown|import|screen|size|cluster|hybrid> [file] [flags]\n\
         run `mtk` on a .mtk netlist; grammar and flags in DESIGN.md §11, protocol in §13"
    );
    std::process::exit(2);
}

fn die(msg: impl std::fmt::Display) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let cmd = args.get(1).map(String::as_str).unwrap_or("");
    if cmd == "gen" {
        return cmd_gen(&args[2..]);
    }
    if cmd == "serve" {
        return cmd_serve();
    }
    if cmd == "client" {
        return cmd_client(&args[2..]);
    }
    if cmd == "import" {
        return cmd_import(&args[2..]);
    }
    let path = match args.get(2) {
        Some(p) if !p.starts_with("--") => p.clone(),
        _ => usage(),
    };
    let design = load(&path);
    match cmd {
        "lint" => cmd_lint(&design),
        "sta" => cmd_sta(&design),
        "screen" => cmd_screen(&design),
        "size" => cmd_size(&design),
        "cluster" => cmd_cluster(&design),
        "hybrid" => cmd_hybrid(&design),
        "mc" => cmd_mc(&design),
        "export" => cmd_export(&design),
        _ => usage(),
    }
}

/// Reads and parses a `.mtk` file; any failure is a diagnostic on
/// stderr and exit 2, never a panic.
fn load(path: &str) -> Design {
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => die(format!("{path}: {e}")),
    };
    match mtk_fe::parse_str(&src, path) {
        Ok(d) => d,
        Err(e) => die(e),
    }
}

/// Lint-on-load for the flow commands: findings go to stderr as
/// warnings, the run continues.
fn warn_lint(design: &Design) {
    for line in design.render_lint(&design.lint()) {
        eprintln!("{line}");
    }
}

fn cmd_lint(design: &Design) {
    let issues = design.lint();
    for line in design.render_lint(&issues) {
        println!("{line}");
    }
    if issues.is_empty() {
        println!(
            "{}: clean ({} cells, {} nets)",
            design.source.file,
            design.netlist.cells().len(),
            design.netlist.nets().len()
        );
    } else if !bool_flag("--warn-only") {
        std::process::exit(1);
    }
}

fn cmd_sta(design: &Design) {
    warn_lint(design);
    let sta = match Sta::analyze(&design.netlist, &design.tech) {
        Ok(s) => s,
        Err(e) => die(e),
    };
    println!(
        "STA of {} ({}): critical delay {}",
        design.netlist.name(),
        design.tech.name,
        ns(sta.critical_delay())
    );
    print_table(
        "critical path (inputs toward the latest net)",
        &["cell", "kind", "output", "arrival"],
        &sta.critical_path()
            .iter()
            .map(|&cid| {
                let cell = design.netlist.cell(cid);
                vec![
                    cell.name.clone(),
                    cell.kind.name().to_string(),
                    design.netlist.net(cell.output).name.clone(),
                    ns(sta.arrival[cell.output.index()]),
                ]
            })
            .collect::<Vec<_>>(),
    );
    if str_flag("--raw").is_some() || str_flag("--vcd").is_some() {
        let (transitions, _) = transitions_of(design);
        export_waves(
            design,
            transitions.first(),
            Some(f64_flag("--w-over-l", 10.0)),
        );
    }
}

/// Handles `--raw PATH` / `--vcd PATH` on the flow commands: one
/// deterministic waveform export of the given transition — a binary
/// rawfile from a transistor-level transient, a VCD dump from a
/// switch-level run. Returns `(raw points, vcd changes)` written, for
/// the trace counters.
fn export_waves(design: &Design, tr: Option<&Transition>, w_over_l: Option<f64>) -> (u64, u64) {
    let raw_path = str_flag("--raw");
    let vcd_path = str_flag("--vcd");
    if raw_path.is_none() && vcd_path.is_none() {
        return (0, 0);
    }
    let Some(tr) = tr else {
        eprintln!("warning: no transition to export waveforms for");
        return (0, 0);
    };
    let mut raw_points = 0u64;
    let mut vcd_changes = 0u64;
    if let Some(path) = raw_path {
        let cfg = SpiceRunConfig::window(f64_flag("--t-stop", 80e-9));
        let raw = match mtk_bench::wave::raw_from_transition(design, tr, w_over_l, &cfg) {
            Ok(r) => r,
            Err(e) => die(format!("--raw: {e}")),
        };
        let bytes = match raw.to_bytes() {
            Ok(b) => b,
            Err(e) => die(format!("--raw: {e}")),
        };
        if let Err(e) = std::fs::write(&path, &bytes) {
            die(format!("--raw {path}: {e}"));
        }
        raw_points = raw.points() as u64;
        println!(
            "wrote {path}: {} variable(s), {} point(s)",
            raw.variables.len(),
            raw.points()
        );
    }
    if let Some(path) = vcd_path {
        let opts = match w_over_l {
            Some(w) => VbsimOptions::mtcmos(w),
            None => VbsimOptions::cmos(),
        };
        let engine = Engine::new(&design.netlist, &design.tech);
        let run = match engine.run(&tr.from, &tr.to, &opts) {
            Ok(r) => r,
            Err(e) => die(format!("--vcd: {e}")),
        };
        let vcd = mtk_bench::wave::vcd_from_run(design, &run);
        let text = match vcd.render() {
            Ok(t) => t,
            Err(e) => die(format!("--vcd: {e}")),
        };
        if let Err(e) = std::fs::write(&path, text) {
            die(format!("--vcd {path}: {e}"));
        }
        vcd_changes = (vcd.initial.len() + vcd.changes.len()) as u64;
        println!(
            "wrote {path}: {} signal(s), {vcd_changes} change(s)",
            vcd.signals.len()
        );
    }
    (raw_points, vcd_changes)
}

/// Adds the waveform-export counters to a trace phase.
fn count_waves(phase: &mut PhaseTrace, raw_points: u64, vcd_changes: u64) {
    phase.counters.add(CounterId::WaveRawPoints, raw_points);
    phase.counters.add(CounterId::WaveVcdChanges, vcd_changes);
}

/// The transitions a flow command runs, per the documented precedence,
/// plus a human label for where they came from (the CLI face of
/// [`design_transitions`], shared with `mtk serve`).
fn transitions_of(design: &Design) -> (Vec<Transition>, String) {
    design_transitions(design, flag("--stride", 1), flag("--samples", 256))
}

fn cmd_screen(design: &Design) {
    warn_lint(design);
    let threads = flag("--threads", 1);
    let w_over_l = f64_flag("--w-over-l", 10.0);
    let top = flag("--top", 10);
    let policy = failure_policy();
    let (transitions, label) = transitions_of(design);
    println!(
        "mtk screen: {} under {} — {label}, sleep W/L={w_over_l}, {} thread(s)",
        design.netlist.name(),
        design.tech.name,
        threads_label(threads)
    );
    let mut trace = TraceReport::new("mtk_screen");
    let mut spans = SpanRecorder::new(trace_config().spans);
    spans.begin("screen");
    let (screened, report) = match screen_vectors_par_quarantined(
        &design.netlist,
        &design.tech,
        &transitions,
        None,
        w_over_l,
        &VbsimOptions::default(),
        threads,
        policy,
        &FaultPlan::none(),
    ) {
        Ok(r) => r,
        Err(e) => die(e),
    };
    spans.end();
    println!(
        "screened {} transition(s) in {:.2} s wall; {} switch an output",
        transitions.len(),
        report.wall,
        screened.len()
    );
    print_table(
        &format!("worst {} of the screened ranking", top.min(screened.len())),
        &["rank", "vector", "degradation"],
        &screened
            .iter()
            .take(top)
            .enumerate()
            .map(|(k, e)| {
                vec![
                    format!("{}", k + 1),
                    format!("#{}", e.index),
                    pct(e.delays.degradation()),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let worst = screened
        .first()
        .map(|e| &transitions[e.index])
        .or_else(|| transitions.first());
    let (rp, vc) = export_waves(design, worst, Some(w_over_l));
    let mut phase = report.to_phase("screen");
    count_waves(&mut phase, rp, vc);
    trace.push_phase(phase);
    trace.spans = spans.finish();
    emit_trace(&trace);
}

fn cmd_size(design: &Design) {
    // `--clusters N` routes the whole run through the cluster
    // co-optimizer — one code path, so the two commands can't drift.
    if str_flag("--clusters").is_some() {
        return cmd_cluster(design);
    }
    warn_lint(design);
    let target = f64_flag("--target", 0.05);
    let lo = f64_flag("--lo", 1.0);
    let hi = f64_flag("--hi", 2000.0);
    let (transitions, label) = transitions_of(design);
    println!(
        "mtk size: {} under {} — bisect sleep W/L in [{lo}, {hi}] to ≤{} degradation over {label}",
        design.netlist.name(),
        design.tech.name,
        pct(target)
    );
    let engine = Engine::new(&design.netlist, &design.tech);
    // `--store PATH` makes warm reruns free across processes: every
    // simulated leg is written through to the crash-safe log and a
    // later `mtk size` over the same design replays it bit-identically.
    let cache = match str_flag("--store") {
        Some(path) => match ScreeningCache::persistent(&path) {
            Ok(c) => c,
            Err(e) => die(format!("--store {path}: {e}")),
        },
        None => ScreeningCache::new(),
    };
    let t0 = Instant::now();
    let (w_over_l, health) = match size_for_target_cached(
        &engine,
        &transitions,
        None,
        target,
        (lo, hi),
        &VbsimOptions::default(),
        &cache,
    ) {
        Ok(r) => r,
        Err(e) => die(e),
    };
    let wall = t0.elapsed().as_secs_f64();
    println!("sleep transistor W/L = {w_over_l:.2} ({:.2} s wall)", wall);
    if cache.store().is_some() {
        let snap = cache.snapshot();
        println!(
            "store: {} leg(s) replayed, {} simulated and written through",
            snap.store_hits, snap.misses
        );
    }
    let (rp, vc) = export_waves(design, transitions.first(), Some(w_over_l));
    let mut trace = TraceReport::new("mtk_size");
    let mut phase = PhaseTrace::new("size").with_wall(wall);
    phase.counters = health.counters();
    count_waves(&mut phase, rp, vc);
    trace.push_phase(phase);
    emit_trace(&trace);
}

/// The shared cluster co-optimization behind `mtk cluster`, `mtk size
/// --clusters` and `mtk hybrid --clusters`: partition by
/// mutually-exclusive switching, size one device per cluster, apply the
/// never-worse rule. Returns the sizing, the execution report and the
/// wall-clock label of the vector source.
fn run_cluster(design: &Design) -> (ClusterSizing, ClusterReport, String, usize) {
    let smoke = bool_flag("--smoke");
    let max_clusters = flag("--clusters", 8).max(1);
    let threads = flag("--threads", 1);
    let target = f64_flag("--target", 0.05);
    let lo = f64_flag("--lo", 1.0);
    let hi = f64_flag("--hi", 2000.0);
    // `--smoke` thins sampled vector sets so the CI run stays fast;
    // explicit `vector` lines in the file always run in full.
    let stride = flag("--stride", if smoke { 64 } else { 1 });
    let samples = flag("--samples", if smoke { 8 } else { 256 });
    let (transitions, label) = design_transitions(design, stride, samples);
    println!(
        "mtk cluster: {} under {} — ≤{max_clusters} cluster(s) over {label}, target {}, W/L in [{lo}, {hi}], {} thread(s)",
        design.netlist.name(),
        design.tech.name,
        pct(target),
        threads_label(threads)
    );
    let partition = match exclusive_partition(&design.netlist, &transitions, max_clusters) {
        Ok(p) => p,
        Err(e) => die(e),
    };
    println!(
        "partitioned {} cell(s) into {} cluster(s) ({} conflict edge(s), {} cell(s) folded by the cap)",
        design.netlist.cells().len(),
        partition.n_clusters,
        partition.conflict_edges,
        partition.folded
    );
    let store = str_flag("--store").map(|path| match mtk_store::Store::open(&path) {
        Ok(s) => s,
        Err(e) => die(format!("--store {path}: {e}")),
    });
    let n_transitions = transitions.len();
    let (sizing, report) = match size_clusters_for_target(
        &design.netlist,
        &design.tech,
        &transitions,
        None,
        &partition,
        target,
        (lo, hi),
        &VbsimOptions::default(),
        threads,
        failure_policy(),
        &FaultPlan::none(),
        store.as_ref(),
    ) {
        Ok(r) => r,
        Err(e) => die(e),
    };
    if store.is_some() {
        println!(
            "store: {} evaluation(s) replayed, {} simulated and written through",
            report.health.runs.cache_hits, report.health.runs.cache_misses
        );
    }
    (sizing, report, label, n_transitions)
}

fn cmd_cluster(design: &Design) {
    warn_lint(design);
    let (sizing, report, _, n_transitions) = run_cluster(design);
    print_table(
        "per-cluster sleep devices of the returned solution",
        &["cluster", "W/L"],
        &sizing
            .w_over_ls
            .iter()
            .enumerate()
            .map(|(g, wl)| vec![format!("{g}"), format!("{wl:.2}")])
            .collect::<Vec<_>>(),
    );
    let single = sizing
        .single_w_over_l
        .map_or("infeasible".to_string(), |w| format!("{w:.2}"));
    println!(
        "clustered total W/L = {:.2} over {n_transitions} transition(s); single-device W/L = {single}; returned the {} solution ({:.2} s wall)",
        sizing.clustered_width,
        if sizing.fell_back { "single-device" } else { "clustered" },
        report.wall
    );
    let mut trace = TraceReport::new("mtk_cluster");
    let mut spans = SpanRecorder::new(trace_config().spans);
    spans.begin("cluster");
    spans.end();
    trace.push_phase(report.to_phase("cluster", &sizing));
    trace.spans = spans.finish();
    emit_trace(&trace);
}

fn cmd_hybrid(design: &Design) {
    warn_lint(design);
    let threads = flag("--threads", 1);
    let top_k = flag("--top-k", 10);
    // `--clusters N` co-optimizes per-cluster devices first, then
    // SPICE-verifies at a single device of the same *total* width — a
    // conservative lumping (one device of equal width sinks at least
    // the current of the split devices), so the verification stays
    // meaningful without teaching the SPICE netlister about partitions.
    let cluster_phase = if str_flag("--clusters").is_some() {
        let (sizing, report, _, _) = run_cluster(design);
        println!(
            "hybrid verifies at the clustered total W/L = {:.2}",
            sizing.total_width()
        );
        Some((sizing.total_width(), report.to_phase("cluster", &sizing)))
    } else {
        None
    };
    let w_over_l = match &cluster_phase {
        Some((total, _)) => *total,
        None => f64_flag("--w-over-l", 10.0),
    };
    let policy = failure_policy();
    let (transitions, label) = transitions_of(design);
    println!(
        "mtk hybrid: {} under {} — screen {label}, SPICE-verify the top {top_k}, {} thread(s)",
        design.netlist.name(),
        design.tech.name,
        threads_label(threads)
    );
    let opts = HybridOptions {
        top_k,
        threads,
        policy,
        ..HybridOptions::at_size(w_over_l, SpiceRunConfig::window(80e-9))
    };
    let report = match run_hybrid(&design.netlist, &design.tech, &transitions, &opts) {
        Ok(r) => r,
        Err(e) => die(e),
    };
    println!(
        "screened {} transition(s) ({} switch an output) in {:.2} s; verified {} in {:.2} s",
        transitions.len(),
        report.survivors,
        report.screen_wall,
        report.findings.len(),
        report.verify_wall
    );
    print_table(
        "screened top-k, SPICE-verified",
        &["rank", "vector", "simulator degr", "SPICE degr", "delta"],
        &report
            .findings
            .iter()
            .enumerate()
            .map(|(k, f)| {
                vec![
                    format!("{}", k + 1),
                    format!("#{}", f.index),
                    pct(f.screened.degradation()),
                    f.verified
                        .map_or("quarantined".to_string(), |v| pct(v.degradation())),
                    f.delta.map_or("-".to_string(), pct),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let worst = report
        .findings
        .first()
        .map(|f| &transitions[f.index])
        .or_else(|| transitions.first());
    let (rp, vc) = export_waves(design, worst, Some(w_over_l));
    let mut trace = report.to_trace("mtk_hybrid");
    if rp + vc > 0 {
        let mut phase = PhaseTrace::new("wave");
        count_waves(&mut phase, rp, vc);
        trace.push_phase(phase);
    }
    if let Some((_, phase)) = cluster_phase {
        trace.push_phase(phase);
    }
    let mut spans = SpanRecorder::new(trace_config().spans);
    spans.begin("hybrid");
    spans.end();
    trace.spans = spans.finish();
    emit_trace(&trace);
}

/// `mtk mc`: Monte Carlo yield analysis under process variation. The
/// sweep is deterministic per `(design, seed, flags)` at any thread
/// count; `--store PATH` writes every simulated trial through to the
/// crash-safe log so a warm rerun replays the whole sweep without
/// touching the simulator.
fn cmd_mc(design: &Design) {
    warn_lint(design);
    let smoke = bool_flag("--smoke");
    let trials = flag("--trials", if smoke { 64 } else { 256 });
    let threads = flag("--threads", 1);
    let w_over_l = f64_flag("--w-over-l", 10.0);
    let target = f64_flag("--target", 0.05);
    let widths: Vec<f64> = match str_flag("--widths") {
        Some(list) => list
            .split(',')
            .map(|w| match w.trim().parse::<f64>() {
                Ok(v) => v,
                Err(_) => die(format!("--widths: `{w}` is not a number")),
            })
            .collect(),
        None => vec![5.0, 10.0, 20.0, 40.0],
    };
    let corner = str_flag("--corner");
    let mut tech = match &corner {
        Some(name) => match design.tech.at_corner(name) {
            Some(t) => t,
            None => die(format!(
                "--corner: unknown corner `{name}` (available: {})",
                mtk_netlist::tech::Technology::corner_names().join(", ")
            )),
        },
        None => design.tech.clone(),
    };
    // The design's `tech.sigma_*` fields set the variation; these flags
    // override them for what-if sweeps without editing the file.
    tech.sigma_vt = f64_flag("--sigma-vt", tech.sigma_vt);
    tech.sigma_kp = f64_flag("--sigma-kp", tech.sigma_kp);
    tech.sigma_w = f64_flag("--sigma-w", tech.sigma_w);
    // `--smoke` thins the exhaustive transition space so the CI sweep
    // stays fast; an explicit `--stride` still wins.
    let stride = flag("--stride", if smoke { 256 } else { 1 });
    let (transitions, label) = design_transitions(design, stride, flag("--samples", 256));
    let opts = McOptions {
        trials,
        seed: flag("--seed", 0x4D43) as u64,
        w_over_l,
        widths,
        target,
        threads,
        policy: failure_policy(),
        base: VbsimOptions::default(),
    };
    println!(
        "mtk mc: {} under {}{} — {trials} trial(s) over {label}, nominal W/L={w_over_l}, target {}, {} thread(s)",
        design.netlist.name(),
        tech.name,
        corner.map(|c| format!(" at corner {c}")).unwrap_or_default(),
        pct(target),
        threads_label(threads)
    );
    let store = str_flag("--store").map(|path| match mtk_store::Store::open(&path) {
        Ok(s) => s,
        Err(e) => die(format!("--store {path}: {e}")),
    });
    let report = match run_mc(
        &design.netlist,
        &tech,
        &transitions,
        None,
        &opts,
        store.as_ref(),
        &FaultPlan::none(),
    ) {
        Ok(r) => r,
        Err(e) => die(e),
    };
    println!(
        "{} of {} trial(s) within target at W/L={w_over_l} ({:.2} s wall); degradation p50/p95/p99 = {}/{}/{} bp, bounce p99 = {} uV",
        report.passed(),
        report.completed().count(),
        report.wall,
        report.degradation_percentile_bp(50.0),
        report.degradation_percentile_bp(95.0),
        report.degradation_percentile_bp(99.0),
        report.bounce_percentile_uv(99.0),
    );
    print_table(
        "yield vs sleep width",
        &["W/L", "pass rate"],
        &report
            .yield_curve()
            .iter()
            .map(|&(w, y)| vec![format!("{w}"), pct(y)])
            .collect::<Vec<_>>(),
    );
    if store.is_some() {
        println!(
            "store: {} trial(s) replayed, {} simulated and written through",
            report.store_hits(),
            report.store_misses()
        );
    }
    let mut trace = TraceReport::new("mtk_mc");
    let mut spans = SpanRecorder::new(trace_config().spans);
    spans.begin("mc");
    spans.end();
    trace.push_phase(report.to_phase("mc"));
    trace.spans = spans.finish();
    emit_trace(&trace);
}

/// `mtk gen`: serialize the golden designs. `--list` prints the stems,
/// `--all` writes `<dir>/<stem>.mtk` for every design (`--dir`,
/// default `examples`), a bare stem prints that design to stdout.
fn cmd_gen(rest: &[String]) {
    let designs = golden_designs();
    if bool_flag("--list") {
        // The stems and descriptions come from `generator_catalog`, the
        // same single source DESIGN.md §5 renders — a drift-guard test
        // pins it against `golden_designs`.
        for (stem, desc) in generator_catalog() {
            println!("{stem:<12} {desc}");
        }
        return;
    }
    if bool_flag("--all") {
        let dir = str_flag("--dir").unwrap_or_else(|| "examples".to_string());
        if let Err(e) = std::fs::create_dir_all(&dir) {
            die(format!("{dir}: {e}"));
        }
        for (stem, design) in &designs {
            let path = format!("{dir}/{stem}.mtk");
            if let Err(e) = std::fs::write(&path, design.to_mtk()) {
                die(format!("{path}: {e}"));
            }
            println!("wrote {path}");
        }
        return;
    }
    let stem = match rest.iter().find(|a| !a.starts_with("--")) {
        Some(s) => s.as_str(),
        None => usage(),
    };
    match designs.iter().find(|(s, _)| *s == stem) {
        Some((_, design)) => print!("{}", design.to_mtk()),
        None => {
            let stems: Vec<&str> = designs.iter().map(|(s, _)| *s).collect();
            die(format!(
                "unknown golden design `{stem}` (available: {})",
                stems.join(", ")
            ));
        }
    }
}

/// `mtk export`: serialize the transistor-level expansion of a `.mtk`
/// design as a SPICE deck with embedded `* mtk:` hint comments, so the
/// deck re-imports byte-exactly (`mtk import` reproduces the canonical
/// `.mtk`). `--w-over-l` sizes the footer, `--cmos` omits it, `--out`
/// writes a file instead of stdout.
fn cmd_export(design: &Design) {
    warn_lint(design);
    let sleep = if bool_flag("--cmos") {
        None
    } else {
        Some(f64_flag("--w-over-l", 10.0))
    };
    let deck = match export_deck(design, sleep) {
        Ok(d) => d,
        Err(e) => die(e),
    };
    match str_flag("--out") {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &deck) {
                die(format!("--out {path}: {e}"));
            }
            println!("wrote {path}: {} line(s)", deck.lines().count());
        }
        None => print!("{deck}"),
    }
}

/// `mtk import`: parse a SPICE deck (flattening subcircuits), recover
/// the gate-level design by structural recognition, and emit canonical
/// `.mtk`. Falls back to SPICE-only analysis when recognition fails:
/// the reason is reported, `--raw PATH` still runs a transient on the
/// raw circuit and writes the rawfile, and without `--raw` the exit
/// code is 1.
fn cmd_import(rest: &[String]) {
    let path = match rest.first() {
        Some(p) if !p.starts_with("--") => p.clone(),
        _ => usage(),
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => die(format!("{path}: {e}")),
    };
    let name = std::path::Path::new(&path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("imported")
        .to_string();
    let tech_name = str_flag("--tech").unwrap_or_else(|| "l07".to_string());
    let tech = match mtk_netlist::tech::Technology::preset(&tech_name) {
        Some(t) => t,
        None => die(format!("--tech: unknown preset `{tech_name}`")),
    };
    let imported = match import_deck(&text, &name, &tech) {
        Ok(i) => i,
        Err(e) => die(e),
    };
    let stats = imported.stats().clone();
    let mut trace = TraceReport::new("mtk_import");
    let mut phase = PhaseTrace::new("import");
    phase
        .counters
        .add(CounterId::ImportCards, stats.deck.cards as u64);
    phase.counters.add(
        CounterId::ImportSubcktsFlattened,
        stats.deck.instances_flattened as u64,
    );
    phase.counters.add(
        CounterId::ImportGatesRecognized,
        stats.cells_recognized as u64,
    );
    phase
        .counters
        .add(CounterId::ImportFallbacks, stats.fallback as u64);
    match imported {
        Imported::Design {
            design,
            sleep_w_over_l,
            ..
        } => {
            eprintln!(
                "{path}: {} card(s), {} subckt instance(s) flattened (depth {}), {} gate(s) recognized{}",
                stats.deck.cards,
                stats.deck.instances_flattened,
                stats.deck.max_instance_depth,
                stats.cells_recognized,
                sleep_w_over_l
                    .map(|w| format!(", sleep W/L={w}"))
                    .unwrap_or_default()
            );
            let mtk = design.to_mtk();
            match str_flag("--out") {
                Some(out) => {
                    if let Err(e) = std::fs::write(&out, &mtk) {
                        die(format!("--out {out}: {e}"));
                    }
                    println!("wrote {out}: {} line(s)", mtk.lines().count());
                }
                None => print!("{mtk}"),
            }
            trace.push_phase(phase);
            emit_trace(&trace);
        }
        Imported::SpiceOnly {
            circuit, reason, ..
        } => {
            eprintln!("{path}: gate recognition failed ({reason}); SPICE-only analysis available");
            let raw_path = str_flag("--raw");
            let fell_through = raw_path.is_none();
            if let Some(out) = raw_path {
                let opts = mtk_spice::tran::TranOptions::to(f64_flag("--t-stop", 80e-9));
                let result = match mtk_spice::tran::transient(&circuit, &opts) {
                    Ok(r) => r,
                    Err(e) => die(format!("--raw: {e}")),
                };
                let raw = mtk_bench::wave::raw_from_tran(&result, &name);
                phase
                    .counters
                    .add(CounterId::WaveRawPoints, raw.points() as u64);
                let bytes = match raw.to_bytes() {
                    Ok(b) => b,
                    Err(e) => die(format!("--raw: {e}")),
                };
                if let Err(e) = std::fs::write(&out, &bytes) {
                    die(format!("--raw {out}: {e}"));
                }
                println!(
                    "wrote {out}: {} variable(s), {} point(s)",
                    raw.variables.len(),
                    raw.points()
                );
            }
            trace.push_phase(phase);
            emit_trace(&trace);
            if fell_through {
                std::process::exit(1);
            }
        }
    }
}

/// Drain flag set by the SIGTERM handler; polled by a watcher thread
/// (the handler itself must stay async-signal-safe: one atomic store).
static TERM_REQUESTED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

extern "C" fn on_sigterm(_sig: i32) {
    TERM_REQUESTED.store(true, std::sync::atomic::Ordering::Relaxed);
}

/// Installs the SIGTERM handler via the libc `signal(2)` symbol (std
/// links libc on every supported platform; no crate dependency).
fn install_sigterm() {
    const SIGTERM: i32 = 15;
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    unsafe {
        signal(SIGTERM, on_sigterm as *const () as usize);
    }
}

/// `mtk serve`: bind, print the bound address (port 0 picks an
/// ephemeral one), accept until SIGTERM or a `shutdown` request, drain
/// in-flight work, exit 0. Protocol and hardening contract in
/// DESIGN.md §13.
fn cmd_serve() {
    let cfg = ServeConfig {
        addr: str_flag("--addr").unwrap_or_else(|| "127.0.0.1:0".to_string()),
        threads: flag("--threads", 1),
        job_slots: flag("--job-slots", 2).max(1),
        read_timeout: Duration::from_millis(flag("--read-timeout-ms", 5000) as u64),
        write_timeout: Duration::from_millis(flag("--write-timeout-ms", 5000) as u64),
        max_request_bytes: flag("--max-request-bytes", 8 * 1024 * 1024),
        store_path: str_flag("--store").map(std::path::PathBuf::from),
    };
    let server = match Server::bind(cfg) {
        Ok(s) => s,
        Err(e) => die(e),
    };
    let addr = match server.local_addr() {
        Ok(a) => a,
        Err(e) => die(e),
    };
    install_sigterm();
    let state = server.state();
    {
        let state = std::sync::Arc::clone(&state);
        std::thread::spawn(move || loop {
            if TERM_REQUESTED.load(std::sync::atomic::Ordering::Relaxed) {
                state.request_drain();
                return;
            }
            std::thread::sleep(Duration::from_millis(20));
        });
    }
    println!("mtk serve: listening on {addr}");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    if let Err(e) = server.run() {
        die(e);
    }
    let counters = state.counter_snapshot();
    println!(
        "mtk serve: drained ({} store hit(s), {} store miss(es), {} rejected, {} conn timeout(s))",
        counters.get(mtk_trace::CounterId::StoreHits),
        counters.get(mtk_trace::CounterId::StoreMisses),
        counters.get(mtk_trace::CounterId::RequestsRejected),
        counters.get(mtk_trace::CounterId::ConnTimeouts),
    );
}

/// `mtk client <host:port> <status|shutdown|screen|size|cluster|hybrid>
/// [file.mtk] [flags]`: builds the request line (job designs are sent
/// in canonical `.mtk` form so identical circuits dedup server-side),
/// prints the response line, exits 0 on `ok`, 3 on `busy`, 1 on
/// `error`, 2 on transport failures.
fn cmd_client(rest: &[String]) {
    let addr = match rest.first() {
        Some(a) if !a.starts_with("--") => a.clone(),
        _ => usage(),
    };
    let cmd = match rest.get(1) {
        Some(c) if !c.starts_with("--") => c.as_str(),
        _ => usage(),
    };
    let line = match cmd {
        "status" | "shutdown" => format!("{{\"cmd\":\"{cmd}\"}}"),
        "import" => {
            let path = match rest.get(2) {
                Some(p) if !p.starts_with("--") => p,
                _ => usage(),
            };
            let deck = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => die(format!("{path}: {e}")),
            };
            mtk_trace::json::JsonValue::Object(vec![
                (
                    "cmd".to_string(),
                    mtk_trace::json::JsonValue::String("import".to_string()),
                ),
                ("deck".to_string(), mtk_trace::json::JsonValue::String(deck)),
            ])
            .to_compact()
        }
        "screen" | "size" | "cluster" | "hybrid" => {
            let path = match rest.get(2) {
                Some(p) if !p.starts_with("--") => p,
                _ => usage(),
            };
            let design = load(path);
            let mut fields = vec![
                (
                    "cmd".to_string(),
                    mtk_trace::json::JsonValue::String(cmd.to_string()),
                ),
                (
                    "design".to_string(),
                    mtk_trace::json::JsonValue::String(design.to_mtk()),
                ),
            ];
            let numbers = [
                ("threads", flag("--threads", 1) as f64),
                ("w_over_l", f64_flag("--w-over-l", 10.0)),
                ("top_k", flag("--top-k", 10) as f64),
                ("target", f64_flag("--target", 0.05)),
                ("lo", f64_flag("--lo", 1.0)),
                ("hi", f64_flag("--hi", 2000.0)),
                ("stride", flag("--stride", 1) as f64),
                ("samples", flag("--samples", 256) as f64),
                ("top", flag("--top", 10) as f64),
                ("clusters", flag("--clusters", 8) as f64),
            ];
            for (name, value) in numbers {
                fields.push((name.to_string(), mtk_trace::json::JsonValue::Number(value)));
            }
            mtk_trace::json::JsonValue::Object(fields).to_compact()
        }
        _ => usage(),
    };
    let timeout = Duration::from_millis(flag("--timeout-ms", 120_000) as u64);
    let response = match serve::request(&addr, &line, timeout) {
        Ok(r) => r,
        Err(e) => die(format!("{addr}: {e}")),
    };
    println!("{response}");
    let status = mtk_trace::json::parse(&response)
        .ok()
        .and_then(|v| v.get("status").and_then(|s| s.as_str().map(String::from)))
        .unwrap_or_default();
    match status.as_str() {
        "ok" => {}
        "busy" => std::process::exit(3),
        _ => std::process::exit(1),
    }
}
