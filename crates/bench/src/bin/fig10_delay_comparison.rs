//! FIG10 — inverter-tree delay vs sleep W/L: SPICE vs the variable-
//! breakpoint switch-level simulator.
//!
//! The paper's Figure 10 compares the two engines on the Fig 4 tree for
//! a low-to-high input transition. The reproduction target is the shape:
//! both engines' delay curves decrease monotonically with W/L and the
//! switch-level simulator tracks the SPICE trend.

use mtk_bench::report::{ns, print_table};
use mtk_bench::stats::{pearson, spearman};
use mtk_circuits::tree::InverterTree;
use mtk_core::hybrid::{spice_transition, SpiceRunConfig};
use mtk_core::sizing::Transition;
use mtk_core::vbsim::{Engine, VbsimOptions};
use mtk_netlist::expand::SleepImpl;
use mtk_netlist::logic::Logic;
use mtk_netlist::tech::Technology;

fn main() {
    let tree = InverterTree::paper();
    let tech = Technology::l07();
    let tr = Transition::new(vec![Logic::Zero], vec![Logic::One]);
    let probe = [tree.probe()];
    let engine = Engine::new(&tree.netlist, &tech);
    let cfg = SpiceRunConfig::window(60e-9);

    println!("FIG10: inverter-tree delay vs sleep W/L, SPICE vs switch-level simulator");

    let sizes = [2.0, 5.0, 8.0, 11.0, 14.0, 17.0, 20.0];
    let mut rows = Vec::new();
    let mut spice_delays = Vec::new();
    let mut vbsim_delays = Vec::new();
    for &wl in &sizes {
        let sp = spice_transition(
            &tree.netlist,
            &tech,
            &tr,
            Some(&probe),
            SleepImpl::Transistor { w_over_l: wl },
            &cfg,
        )
        .expect("spice run")
        .delay
        .expect("output switches");
        let vb = engine
            .run(&tr.from, &tr.to, &VbsimOptions::mtcmos(wl))
            .expect("vbsim run")
            .delay_over(&probe)
            .expect("output switches");
        spice_delays.push(sp);
        vbsim_delays.push(vb);
        rows.push(vec![
            format!("{wl}"),
            ns(sp),
            ns(vb),
            format!("{:.2}", vb / sp),
        ]);
    }
    print_table(
        "Fig 10: delay vs W/L (SPICE vs simulator)",
        &["W/L", "SPICE [ns]", "simulator [ns]", "sim/SPICE"],
        &rows,
    );

    let monotone = |d: &[f64]| d.windows(2).all(|w| w[1] <= w[0] + 1e-15);
    println!(
        "\nSPICE curve monotone decreasing in W/L: {}",
        monotone(&spice_delays)
    );
    println!(
        "simulator curve monotone decreasing in W/L: {}",
        monotone(&vbsim_delays)
    );
    println!(
        "trend agreement: pearson {:.3}, spearman {:.3}",
        pearson(&spice_delays, &vbsim_delays),
        spearman(&spice_delays, &vbsim_delays)
    );
}
