//! TAB1 + FIG7 + §4 — the 8×8 carry-save multiplier study.
//!
//! * Fig 7: delay vs sleep W/L for the paper's two vectors —
//!   A `(00,00)→(FF,81)` (many simultaneous internal transitions) and
//!   B `(7F,81)→(FF,81)` (a rippling computation) — A degrades far more.
//! * Table 1: % degradation at W/L ∈ {60, 170, 500} for vector A
//!   (paper: 18.1 %, 4.8 %, 1.7 %).
//! * §4: sizing from vector B alone under-sizes A; sizing from the peak
//!   current (paper: 1.174 mA, 50 mV budget → W/L > 500) is ≈3×
//!   conservative; the sum-of-widths baseline is larger still.
//!
//! SPICE on the 2176-transistor multiplier takes ~30 s per run; pass
//! `--skip-spice` to reproduce the switch-level portion only.

use mtk_bench::report::{ns, pct, print_table};
use mtk_bench::transition_of;
use mtk_circuits::multiplier::ArrayMultiplier;
use mtk_circuits::vectors::{multiplier_vector_a, multiplier_vector_b, VectorPair};
use mtk_core::hybrid::{spice_transition, SpiceRunConfig};
use mtk_core::sizing::{size_for_target, vbsim_delay_pair, Transition};
use mtk_core::vbsim::{Engine, SleepNetwork, VbsimOptions};
use mtk_netlist::expand::SleepImpl;
use mtk_netlist::tech::Technology;

fn main() {
    let skip_spice = std::env::args().any(|a| a == "--skip-spice");
    let m = ArrayMultiplier::paper();
    let tech = Technology::l03();
    let engine = Engine::new(&m.netlist, &tech);
    let bits = 2 * m.bits() as u32;
    let tr_a = transition_of(multiplier_vector_a(), bits);
    let tr_b = transition_of(multiplier_vector_b(), bits);

    println!(
        "TAB1/FIG7: 8x8 carry-save multiplier, {} transistors, Vdd=1.0V, Vt=±0.2V, Vt_high=0.7V",
        m.netlist.total_transistors()
    );

    // ---- Fig 7: delay vs W/L for vectors A and B (switch-level). ----
    let sizes = [40.0, 60.0, 100.0, 170.0, 300.0, 500.0, 1000.0];
    let vb_pair = |tr: &Transition, wl: f64| {
        vbsim_delay_pair(
            &engine,
            tr,
            None,
            SleepNetwork::Transistor { w_over_l: wl },
            &VbsimOptions::default(),
        )
        .expect("vbsim run")
        .expect("outputs switch")
    };
    let mut rows = Vec::new();
    let mut worst_a_at_wl60 = 0.0;
    for &wl in &sizes {
        let a = vb_pair(&tr_a, wl);
        let b = vb_pair(&tr_b, wl);
        if wl == 60.0 {
            worst_a_at_wl60 = a.degradation();
        }
        rows.push(vec![
            format!("{wl}"),
            ns(a.mtcmos),
            pct(a.degradation()),
            ns(b.mtcmos),
            pct(b.degradation()),
        ]);
    }
    print_table(
        "Fig 7 (switch-level): multiplier delay vs sleep W/L for vectors A and B",
        &["W/L", "A delay [ns]", "A degr", "B delay [ns]", "B degr"],
        &rows,
    );

    // ---- Table 1 rows. ----
    let mut t1 = Vec::new();
    let mut spice_cmos_a = None;
    if !skip_spice {
        let cfg = SpiceRunConfig::window(25e-9);
        let run = |sleep: SleepImpl, tr: &Transition| {
            spice_transition(&m.netlist, &tech, tr, None, sleep, &cfg)
                .expect("spice run")
                .delay
                .expect("outputs switch")
        };
        let d_cmos = run(SleepImpl::AlwaysOn, &tr_a);
        spice_cmos_a = Some(d_cmos);
        for &wl in &[60.0, 170.0, 500.0] {
            let d = run(SleepImpl::Transistor { w_over_l: wl }, &tr_a);
            t1.push(vec![
                format!("{wl}"),
                ns(d_cmos),
                ns(d),
                pct((d - d_cmos) / d_cmos),
                match wl as u64 {
                    60 => "18.1%",
                    170 => "4.8%",
                    _ => "1.7%",
                }
                .to_string(),
            ]);
        }
        print_table(
            "Table 1 (SPICE): vector-A degradation vs W/L (paper values right column)",
            &["W/L", "CMOS [ns]", "MTCMOS [ns]", "degradation", "paper"],
            &t1,
        );
    } else {
        println!("\n(--skip-spice: Table 1 SPICE rows skipped)");
    }

    // ---- §4: the input-vector trap. ----
    // Size for <= 5% using vector B only, then check vector A at that size.
    let base = VbsimOptions::default();
    let wl_from_b = size_for_target(
        &engine,
        std::slice::from_ref(&tr_b),
        None,
        0.05,
        (10.0, 4000.0),
        &base,
    )
    .expect("sizing from B");
    let wl_from_a = size_for_target(
        &engine,
        std::slice::from_ref(&tr_a),
        None,
        0.05,
        (10.0, 4000.0),
        &base,
    )
    .expect("sizing from A");
    let a_at_b_size = vb_pair(&tr_a, wl_from_b).degradation();
    println!("\n== §4: input-vector dependence of sizing ==");
    println!("sizing for <=5% on vector B alone:  W/L = {wl_from_b:.0}");
    println!("sizing for <=5% on vector A:        W/L = {wl_from_a:.0}");
    println!(
        "vector A at the B-derived size:     {} degradation (paper: sizing from B at W/L=60 \
         leaves A with 18.1%)",
        pct(a_at_b_size)
    );
    println!(
        "consistency: A-degradation at W/L=60 was {} in the Fig 7 sweep",
        pct(worst_a_at_wl60)
    );

    // ---- §4: peak-current sizing baseline. ----
    let cmos_run = engine
        .run(&tr_a.from, &tr_a.to, &VbsimOptions::cmos())
        .expect("cmos run");
    let i_peak = cmos_run.peak_sleep_current();
    let wl_peak = mtk_core::sizing::peak_current_w_over_l(&tech, i_peak, 0.05);
    println!("\n== §4: conservative baselines ==");
    println!(
        "peak discharge current (vector A, switch-level): {:.3} mA (paper: 1.174 mA)",
        i_peak * 1e3
    );
    println!("peak-current sizing for a 50 mV budget: W/L = {wl_peak:.0} (paper: >500, ~3x over)");
    println!(
        "  -> {:.1}x larger than the {:.0} the 5% target actually needs",
        wl_peak / wl_from_a,
        wl_from_a
    );
    let wl_sum = mtk_core::sizing::sum_of_widths_w_over_l(&m.netlist, &tech);
    println!(
        "sum-of-internal-NMOS-widths sizing: W/L = {wl_sum:.0} ({:.1}x over)",
        wl_sum / wl_from_a
    );

    if let Some(d) = spice_cmos_a {
        println!("\n(SPICE CMOS vector-A delay for reference: {} ns)", ns(d));
    }

    // ---- Same-CMOS-delay check (§4 premise). ----
    let a_pair = vb_pair(&tr_a, 1e6);
    let b_pair = vb_pair(&tr_b, 1e6);
    println!(
        "\npremise check: CMOS delays nearly equal (A {} ns vs B {} ns) yet MTCMOS behaviour \
         differs strongly",
        ns(a_pair.cmos),
        ns(b_pair.cmos)
    );
    let _ = VectorPair::new(0, 0);
}
