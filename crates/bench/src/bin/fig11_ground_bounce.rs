//! FIG11 — virtual-ground bounce transient: SPICE vs the switch-level
//! simulator's stepwise staircase.
//!
//! The paper's Figure 11: the simulator's virtual ground is stepwise
//! (constant-current gates, no parasitic capacitance across the sleep
//! device), while SPICE shows the smooth version; for an unrealistically
//! high sleep resistance the SPICE virtual ground is slow to discharge
//! (large RC on the virtual-ground rail, §2.2).

use mtk_bench::report::{print_series, print_table};
use mtk_circuits::tree::InverterTree;
use mtk_core::hybrid::{spice_transition, SpiceRunConfig};
use mtk_core::sizing::Transition;
use mtk_core::vbsim::{Engine, SleepNetwork, VbsimOptions};
use mtk_netlist::expand::SleepImpl;
use mtk_netlist::logic::Logic;
use mtk_netlist::tech::Technology;

fn main() {
    let dump_series = std::env::args().any(|a| a == "--series");
    let tree = InverterTree::paper();
    let tech = Technology::l07();
    let tr = Transition::new(vec![Logic::Zero], vec![Logic::One]);
    let probe = [tree.probe()];
    let engine = Engine::new(&tree.netlist, &tech);

    println!("FIG11: virtual-ground transient, SPICE vs switch-level simulator");

    let mut rows = Vec::new();
    for &wl in &[8.0, 2.0] {
        let cfg = SpiceRunConfig::window(80e-9);
        let sp = spice_transition(
            &tree.netlist,
            &tech,
            &tr,
            Some(&probe),
            SleepImpl::Transistor { w_over_l: wl },
            &cfg,
        )
        .expect("spice run");
        let vb = engine
            .run(&tr.from, &tr.to, &VbsimOptions::mtcmos(wl))
            .expect("vbsim run");
        let vg_sp = sp.vgnd.as_ref().expect("vgnd probed");
        rows.push(vec![
            format!("{wl}"),
            format!("{:.3}", vg_sp.max_value().unwrap_or(0.0)),
            format!("{:.3}", vb.peak_vgnd()),
            format!("{}", vb.vgnd.len()),
        ]);
        if dump_series {
            print_series(&format!("fig11_spice_vgnd_wl{wl}"), vg_sp, 250);
            print_series(&format!("fig11_vbsim_vgnd_wl{wl}"), &vb.vgnd, 250);
        }
    }
    print_table(
        "Fig 11: peak virtual-ground bounce (simulator staircase point count shown)",
        &[
            "W/L",
            "SPICE peak [V]",
            "simulator peak [V]",
            "staircase pts",
        ],
        &rows,
    );

    // High-resistance case: "the virtual ground is very slow in
    // discharging due to a larger RC time constant" — visible only in
    // SPICE (the switch-level model has no vgnd capacitance).
    let r_big = tech.sleep_resistance(0.5);
    let cfg = SpiceRunConfig {
        vgnd_extra_cap: 200e-15,
        ..SpiceRunConfig::window(400e-9)
    };
    let sp = spice_transition(
        &tree.netlist,
        &tech,
        &tr,
        Some(&probe),
        SleepImpl::Resistor { ohms: r_big },
        &cfg,
    )
    .expect("spice run");
    let vg = sp.vgnd.expect("vgnd probed");
    let peak = vg.max_value().unwrap_or(0.0);
    let t_peak_to_10pct = {
        let after_peak: Vec<(f64, f64)> = vg
            .points()
            .iter()
            .copied()
            .skip_while(|&(_, v)| v < peak * 0.999)
            .collect();
        after_peak
            .iter()
            .find(|&&(_, v)| v < peak * 0.1)
            .map(|&(t, _)| t)
    };
    println!(
        "\nhigh-R case (R={:.0} ohm, +200fF on vgnd): peak bounce {:.3} V, decays to 10% at {} \
         (slow recovery, matching Fig 11's high-R trace)",
        r_big,
        peak,
        t_peak_to_10pct.map_or("never within window".to_string(), |t| format!(
            "{:.1} ns",
            t * 1e9
        )),
    );
    if dump_series {
        print_series("fig11_spice_vgnd_highR", &vg, 300);
    }

    // The simulator's staircase: verify it is genuinely stepwise (jump
    // discontinuities encoded as repeated time points).
    let vb = engine
        .run(
            &tr.from,
            &tr.to,
            &VbsimOptions {
                sleep: SleepNetwork::Transistor { w_over_l: 8.0 },
                ..VbsimOptions::default()
            },
        )
        .expect("vbsim run");
    let jumps = vb
        .vgnd
        .points()
        .windows(2)
        .filter(|w| w[0].0 == w[1].0 && w[0].1 != w[1].1)
        .count();
    println!("simulator staircase discontinuities @ W/L=8: {jumps} (stepwise, as in Fig 11)");
}
