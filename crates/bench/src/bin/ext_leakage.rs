//! EXT-LEAK / §1 — the reason MTCMOS exists: subthreshold leakage in
//! sleep mode vs the unguarded low-V<sub>t</sub> block.
//!
//! DC operating points of the Fig 4 tree structure in the aggressive
//! 0.3 µm technology (V<sub>t</sub> = 0.2 V, where subthreshold leakage
//! is the §1 problem) with subthreshold conduction enabled: the
//! low-V<sub>t</sub>-only block leaks through whichever devices are off;
//! gating it with the high-V<sub>t</sub> sleep device (gate low)
//! suppresses the leakage by orders of magnitude. Active-mode delay
//! shrinks with W/L while standby leakage grows with it — the
//! area/standby-power/performance triangle the sizing tool navigates.

use mtk_bench::report::{ns, print_table};
use mtk_circuits::tree::InverterTree;
use mtk_core::hybrid::{spice_transition, SpiceRunConfig};
use mtk_core::sizing::Transition;
use mtk_netlist::expand::{expand, ExpandOptions, SleepImpl};
use mtk_netlist::logic::Logic;
use mtk_netlist::tech::Technology;
use mtk_spice::dc::{operating_point, DcOptions};
use mtk_spice::source::SourceWave;

/// DC options precise enough to resolve femtoampere leakage: the usual
/// g<sub>min</sub> floor of 1e-12 S would itself draw ~pA per node.
fn leakage_dc_options() -> DcOptions {
    let mut opts = DcOptions::default();
    opts.gmin_steps.extend([1e-13, 1e-14, 1e-15, 1e-16]);
    opts
}

fn main() {
    let tree = InverterTree::paper();
    let tech = Technology::l03();

    println!("EXT-LEAK (§1): standby leakage vs sleep W/L (0.3um low-Vt process, subthreshold on)");

    // Baseline: conventional low-Vt CMOS, idle with input low.
    let cmos_leak = {
        let opts = ExpandOptions {
            with_leakage: true,
            ..ExpandOptions::cmos()
        };
        let mut ex = expand(&tree.netlist, &tech, &opts).expect("expand");
        let settled = tree.netlist.evaluate(&[Logic::Zero]).expect("settled");
        ex.apply_initial_state(&settled);
        let op = operating_point(&ex.circuit, &leakage_dc_options()).expect("op");
        op.source_current("vdd").expect("vdd source").abs()
    };
    println!(
        "low-Vt block without sleep device: {:.3} nA standby leakage",
        cmos_leak * 1e9
    );

    let mut rows = Vec::new();
    for &wl in &[2.0, 5.0, 10.0, 20.0, 50.0] {
        // Sleep mode: sleep gate low.
        let opts = ExpandOptions {
            with_leakage: true,
            ..ExpandOptions::mtcmos(wl)
        };
        let mut ex = expand(&tree.netlist, &tech, &opts).expect("expand");
        let vsleep = ex.circuit.find_device("vsleep").expect("vsleep source");
        ex.circuit
            .set_vsource_wave(vsleep, SourceWave::Dc(0.0))
            .expect("set sleep wave");
        let op = operating_point(&ex.circuit, &leakage_dc_options()).expect("op");
        let leak = op.source_current("vdd").expect("vdd source").abs();
        let vgnd = ex.circuit.find_node("vgnd").expect("vgnd");
        let v_float = op.voltage(vgnd);

        // Active-mode delay at this size (leakage models off for speed).
        let tr = Transition::new(vec![Logic::Zero], vec![Logic::One]);
        let d = spice_transition(
            &tree.netlist,
            &tech,
            &tr,
            Some(&[tree.probe()]),
            SleepImpl::Transistor { w_over_l: wl },
            &SpiceRunConfig::window(120e-9),
        )
        .expect("spice run")
        .delay
        .expect("switches");
        rows.push(vec![
            format!("{wl}"),
            format!("{:.4} pA", leak * 1e12),
            format!("{:.0}x", cmos_leak / leak),
            format!("{:.3} V", v_float),
            ns(d),
        ]);
    }
    print_table(
        "sleep-mode leakage, virtual-ground float, and active delay vs sleep W/L",
        &[
            "W/L",
            "standby leakage",
            "reduction",
            "vgnd float",
            "active tphl [ns]",
        ],
        &rows,
    );
    println!(
        "\n(the off high-Vt device starves the stack: the virtual ground floats up and the \
         block's leakage collapses by orders of magnitude — ref [4]'s self-reverse-bias \
         mechanism. Leakage grows with sleep width while delay shrinks: §2.1's trade-off.)"
    );
}
