//! ABL-CAPS — lumped vs distributed capacitance modelling.
//!
//! The MTCMOS expansion (and the paper's switch-level model) lumps every
//! gate's input capacitance into one capacitor on the driving net. The
//! SPICE engine also supports intrinsic per-terminal MOSFET caps
//! (Meyer-style constants). This ablation builds the same inverter chain
//! both ways with the *same total capacitance* and compares delay and
//! waveform character (the distributed version shows Miller kickback and
//! gate-input RC that the lumped version cannot).

use mtk_bench::report::{ns, print_table};
use mtk_netlist::tech::Technology;
use mtk_num::waveform::propagation_delay;
use mtk_spice::circuit::{Circuit, NodeId};
use mtk_spice::mos::MosCaps;
use mtk_spice::source::SourceWave;
use mtk_spice::tran::{transient, TranOptions};

const STAGES: usize = 4;
const FANOUT_CAP_UNITS: f64 = 3.0; // pretend each stage drives 3 gates

fn build(tech: &Technology, distributed: bool) -> (Circuit, NodeId, NodeId) {
    let mut c = Circuit::new();
    let vdd_n = c.node("vdd");
    c.vsource("vdd", vdd_n, Circuit::GND, SourceWave::Dc(tech.vdd));
    let mut nm = tech.nmos_model(false);
    let mut pm = tech.pmos_model(false);
    if distributed {
        let caps = MosCaps::split(tech.c_gate, tech.c_drain);
        nm = nm.with_caps(caps);
        pm = pm.with_caps(caps);
    }
    let nmid = c.add_model(nm);
    let pmid = c.add_model(pm);
    let inp = c.node("in");
    c.vsource(
        "vin",
        inp,
        Circuit::GND,
        SourceWave::ramp(0.5e-9, 0.1e-9, 0.0, tech.vdd),
    );
    let mut prev = inp;
    let mut out = inp;
    for k in 0..STAGES {
        out = c.node(&format!("s{k}"));
        c.mosfet(
            &format!("mp{k}"),
            out,
            prev,
            vdd_n,
            vdd_n,
            pmid,
            tech.unit_wp,
        );
        c.mosfet(
            &format!("mn{k}"),
            out,
            prev,
            Circuit::GND,
            Circuit::GND,
            nmid,
            tech.unit_wn,
        );
        // Equal total loading in both variants: the fanout gate load is
        // lumped when the devices are cap-free, and reduced by the
        // next stage's own intrinsic input cap when distributed.
        let next_stage_gate = (tech.unit_wn + tech.unit_wp) * tech.c_gate;
        let lumped = if distributed {
            FANOUT_CAP_UNITS * next_stage_gate - if k + 1 < STAGES { next_stage_gate } else { 0.0 }
        } else {
            FANOUT_CAP_UNITS * next_stage_gate
        };
        if lumped > 0.0 {
            c.capacitor(&format!("cl{k}"), out, Circuit::GND, lumped);
        }
        prev = out;
    }
    (c, inp, out)
}

fn main() {
    let tech = Technology::l07();
    println!("ABL-CAPS: {STAGES}-stage inverter chain, equal total capacitance");
    let mut rows = Vec::new();
    let mut results = Vec::new();
    for (label, distributed) in [("lumped", false), ("distributed", true)] {
        let (c, inp, out) = build(&tech, distributed);
        let res = transient(&c, &TranOptions::to(25e-9).with_dt(5e-12)).expect("transient");
        let w_in = res.waveform(inp).expect("in");
        let w_out = res.waveform(out).expect("out");
        let d = propagation_delay(&w_in, &w_out, tech.v_switch(), 0.0).expect("delay");
        let overshoot = (w_out.max_value().unwrap() - tech.vdd).max(0.0)
            + (-w_out.min_value().unwrap()).max(0.0);
        rows.push(vec![
            label.to_string(),
            ns(d),
            format!("{:.1} mV", overshoot * 1e3),
        ]);
        results.push(d);
    }
    print_table(
        "chain delay and rail overshoot (Miller kickback)",
        &["cap model", "delay [ns]", "overshoot"],
        &rows,
    );
    println!(
        "\nthe distributed run is {:.0}% slower at equal nominal capacitance: the gate-drain \
         cap is Miller-multiplied on every switching edge and the junction caps add load the \
         lumped convention never counts. This bounds the systematic optimism of the lumped \
         model that both engines share — a §5.3-class accuracy item (\"better compound gate \
         models\"), and part of why the switch-level simulator sits below SPICE in Figs \
         10/13.",
        ((results[1] - results[0]) / results[0] * 100.0).abs()
    );
}
