//! EXT-SEARCH / §4 — worst-vector search where enumeration is
//! impossible.
//!
//! The 8×8 multiplier has 2³² input transitions; "it soon becomes
//! impossible" to enumerate them even with the fast simulator. This
//! experiment runs the random + hill-climbing search on the multiplier
//! and checks it (a) beats the paper's named vector A, or at least finds
//! its regime, and (b) on the 3-bit adder, lands in the top percentile
//! of the exhaustively known distribution at a fraction of the cost.
//!
//! Usage: `ext_search [--threads N] [--size-target PCT]
//! [--max-failures N] [--fail-fast] [--trace-json PATH]`
//! (`--threads 0` = all cores; the search result is bit-identical at
//! any thread count — only wall time changes). By default candidates
//! that fail to simulate are quarantined (up to `--max-failures`,
//! default 32) and reported in the telemetry footer; `--fail-fast`
//! aborts on the first failure instead. `--size-target PCT` (default 5)
//! sets the degradation target of the cached-sizing phase (c), which
//! sizes the adder's sleep device from the screened worst vectors twice
//! through one `ScreeningCache` to show a warm rerun simulates nothing.
//! `--trace-json PATH` writes the versioned machine-readable trace
//! (schema in DESIGN.md §10) next to the human footer;
//! `--trace-deterministic` drops its schedule-dependent `timing`
//! section so the file is byte-identical at any thread count.

use mtk_bench::cli::{emit_trace, failure_policy, flag, threads_label, trace_config};
use mtk_bench::report::{pct, print_table};
use mtk_bench::transition_of;
use mtk_circuits::adder::RippleAdder;
use mtk_circuits::multiplier::ArrayMultiplier;
use mtk_circuits::vectors::{exhaustive_transitions, multiplier_vector_a};
use mtk_core::health::SweepHealth;
use mtk_core::search::{search_worst_vector, SearchOptions};
use mtk_core::sizing::{
    screen_vectors, size_for_target_cached, vbsim_delay_pair, ScreeningCache, Transition,
};
use mtk_core::vbsim::{Engine, SleepNetwork, VbsimOptions};
use mtk_netlist::tech::Technology;
use mtk_trace::{PhaseTrace, SpanRecorder, TraceReport};
use std::time::Instant;

fn main() {
    let threads = flag("--threads", 1);
    let policy = failure_policy();
    let mut trace = TraceReport::new("ext_search");
    let mut spans = SpanRecorder::new(trace_config().spans);
    spans.begin("run");

    // --- (a) 8x8 multiplier: search the 2^32 transition space. ---
    let m = ArrayMultiplier::paper();
    let tech = Technology::l03();
    let engine = Engine::new(&m.netlist, &tech);
    let sleep = SleepNetwork::Transistor { w_over_l: 100.0 };
    let base = VbsimOptions::default();

    let tr_a = transition_of(multiplier_vector_a(), 16);
    let a = vbsim_delay_pair(&engine, &tr_a, None, sleep, &base)
        .expect("run")
        .expect("switches");

    println!(
        "EXT-SEARCH (a): 8x8 multiplier @ sleep W/L=100 (2^32 possible transitions), \
         {} thread(s)",
        threads_label(threads)
    );
    println!(
        "paper's hand-picked vector A: {} degradation",
        pct(a.degradation())
    );
    spans.begin("search");
    let t0 = Instant::now();
    let result = search_worst_vector(
        &engine,
        &SearchOptions {
            random_samples: 400,
            restarts: 4,
            max_passes: 10,
            threads,
            policy,
            ..SearchOptions::at_sleep(sleep)
        },
    )
    .expect("search");
    let t_search = t0.elapsed().as_secs_f64();
    spans.end();
    println!(
        "search found {} degradation in {} evaluations ({:.2} s)",
        pct(result.degradation),
        result.evaluations,
        t_search
    );
    trace.push_phase(result.to_phase("search").with_wall(t_search));
    println!(
        "search vs vector A: {:.2}x — {}",
        result.degradation / a.degradation(),
        if result.degradation >= a.degradation() {
            "the heuristic matches or beats the expert-chosen worst case"
        } else {
            "vector A remains worse (expert knowledge wins at this budget)"
        }
    );

    // --- (b) 3-bit adder: calibrate against exhaustive truth. ---
    let add = RippleAdder::paper();
    let tech07 = Technology::l07();
    let engine = Engine::new(&add.netlist, &tech07);
    let sleep = SleepNetwork::Transistor { w_over_l: 10.0 };
    let transitions: Vec<Transition> = exhaustive_transitions(6)
        .into_iter()
        .map(|p| transition_of(p, 6))
        .collect();
    let screened = screen_vectors(&engine, &transitions, None, 10.0, &VbsimOptions::default())
        .expect("screen");
    let exhaustive_worst = screened[0].delays.degradation();
    let mut rows = Vec::new();
    let mut calibrate_health = SweepHealth::default();
    spans.begin("calibrate");
    for &(samples, restarts) in &[(50usize, 1usize), (150, 2), (400, 4)] {
        let res = search_worst_vector(
            &engine,
            &SearchOptions {
                random_samples: samples,
                restarts,
                max_passes: 8,
                threads,
                policy,
                ..SearchOptions::at_sleep(sleep)
            },
        )
        .expect("search");
        calibrate_health.absorb(res.health);
        // Percentile of the found degradation in the exhaustive ranking.
        let better = screened
            .iter()
            .filter(|e| e.delays.degradation() > res.degradation + 1e-12)
            .count();
        rows.push(vec![
            format!("{samples}+{restarts} restarts"),
            format!("{}", res.evaluations),
            pct(res.degradation),
            format!(
                "top {:.2}%",
                (better + 1) as f64 / screened.len() as f64 * 100.0
            ),
        ]);
    }
    spans.end();
    trace.push_phase(calibrate_health.phase("calibrate"));
    rows.push(vec![
        "exhaustive (4096)".into(),
        "4096".into(),
        pct(exhaustive_worst),
        "top 0.03%".into(),
    ]);
    print_table(
        "EXT-SEARCH (b): 3-bit adder, search budget vs rank of the found worst case",
        &[
            "budget",
            "evaluations",
            "found degradation",
            "exhaustive rank",
        ],
        &rows,
    );

    // --- (c) cached sizing: the screened worst vectors drive the
    // bisection, and a ScreeningCache makes a repeated sweep free. ---
    let target = flag("--size-target", 5) as f64 / 100.0;
    let worst: Vec<Transition> = screened[..5.min(screened.len())]
        .iter()
        .map(|s| transitions[s.index].clone())
        .collect();
    println!(
        "\nEXT-SEARCH (c): sizing the adder's sleep device to {} degradation from the \
         {} screened worst vectors, twice through one screening cache",
        pct(target),
        worst.len()
    );
    let base = VbsimOptions::default();
    let cache = ScreeningCache::new();
    spans.begin("sizing");
    let t0 = Instant::now();
    let (wl_cold, health_cold) =
        size_for_target_cached(&engine, &worst, None, target, (1.0, 5000.0), &base, &cache)
            .expect("cold sizing");
    let t_cold = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let (wl_warm, health_warm) =
        size_for_target_cached(&engine, &worst, None, target, (1.0, 5000.0), &base, &cache)
            .expect("warm sizing");
    let t_warm = t0.elapsed().as_secs_f64();
    spans.end();
    assert_eq!(wl_cold, wl_warm, "cached rerun must be bit-identical");
    assert_eq!(health_warm.cache_misses, 0, "warm rerun must not simulate");
    let mut cold_phase = PhaseTrace::new("sizing_cold").with_wall(t_cold);
    cold_phase.counters = health_cold.counters();
    trace.push_phase(cold_phase);
    let mut warm_phase = PhaseTrace::new("sizing_warm").with_wall(t_warm);
    warm_phase.counters = health_warm.counters();
    trace.push_phase(warm_phase);
    print_table(
        "cached sizing: cold vs warm rerun",
        &["run", "W/L", "cache hits", "cache misses", "wall s"],
        &[
            vec![
                "cold".into(),
                format!("{wl_cold:.1}"),
                format!("{}", health_cold.cache_hits),
                format!("{}", health_cold.cache_misses),
                format!("{t_cold:.3}"),
            ],
            vec![
                "warm".into(),
                format!("{wl_warm:.1}"),
                format!("{}", health_warm.cache_hits),
                format!("{}", health_warm.cache_misses),
                format!("{t_warm:.3}"),
            ],
        ],
    );
    println!(
        "warm rerun reused {} legs with zero simulator runs ({:.0}x faster)",
        health_warm.cache_hits,
        if t_warm > 0.0 {
            t_cold / t_warm
        } else {
            f64::INFINITY
        }
    );

    trace.spans = spans.finish();
    emit_trace(&trace);
}
