//! EXT-STYLE / §2.4 — implementation style changes the MTCMOS picture.
//!
//! The mirror adder and the nine-NAND adder compute the same function,
//! but their internal structures discharge differently through a shared
//! sleep transistor: their worst vectors, degradation levels, and the
//! sleep size each needs for a 5 % target all differ. A sizing rule
//! that looks only at the function (or the CMOS critical path) misses
//! this entirely.

use mtk_bench::report::{ns, pct, print_table};
use mtk_bench::transition_of;
use mtk_circuits::adder::RippleAdder;
use mtk_circuits::nand_adder::{NandAdderSpec, NandRippleAdder};
use mtk_circuits::vectors::exhaustive_transitions;
use mtk_core::sizing::{screen_vectors, size_for_target, Transition};
use mtk_core::vbsim::{Engine, VbsimOptions};
use mtk_netlist::netlist::Netlist;
use mtk_netlist::tech::Technology;

fn study(name: &str, netlist: &Netlist, tech: &Technology) -> Vec<String> {
    let engine = Engine::new(netlist, tech);
    let transitions: Vec<Transition> = exhaustive_transitions(6)
        .into_iter()
        .map(|p| transition_of(p, 6))
        .collect();
    let base = VbsimOptions::default();
    let screened = screen_vectors(&engine, &transitions, None, 10.0, &base).expect("screen");
    let worst = &screened[0];
    let worst_trs: Vec<Transition> = screened
        .iter()
        .take(10)
        .map(|e| transitions[e.index].clone())
        .collect();
    let wl_5pct =
        size_for_target(&engine, &worst_trs, None, 0.05, (1.0, 2000.0), &base).expect("sizing");
    vec![
        name.to_string(),
        format!("{}", netlist.total_transistors()),
        ns(worst.delays.cmos),
        pct(worst.delays.degradation()),
        format!("{:06b}->{:06b}", worst.index / 64, worst.index % 64),
        format!("{wl_5pct:.0}"),
    ]
}

fn main() {
    let tech = Technology::l07();
    let mirror = RippleAdder::paper();
    let nand = NandRippleAdder::new(&NandAdderSpec::default()).expect("nand adder");

    println!("EXT-STYLE (§2.4): same function, different structure, different MTCMOS needs");
    let rows = vec![
        study("mirror adder", &mirror.netlist, &tech),
        study("9-NAND adder", &nand.netlist, &tech),
    ];
    print_table(
        "3-bit adders @ screening W/L=10; sizing target 5% on each one's own worst 10 vectors",
        &[
            "implementation",
            "transistors",
            "worst CMOS [ns]",
            "worst degr @10",
            "worst vector",
            "W/L for 5%",
        ],
        &rows,
    );
    println!(
        "\n(Both rows implement a + b identically; everything MTCMOS cares about differs — \
         the §2.4 warning that sizing must look at internal structure, not function.)"
    );
}
