//! EXT-ENERGY / §2.1 — the switching-energy overhead of the sleep
//! transistor and the break-even idle time.
//!
//! "If sized too large, then valuable silicon area would be wasted and
//! switching energy overhead would be increased." This experiment
//! quantifies that overhead three ways: the analytic `C·Vdd²` model, a
//! SPICE measurement of the energy drawn while toggling the sleep gate,
//! and the resulting break-even idle duration against the measured
//! standby-leakage savings.

use mtk_bench::report::print_table;
use mtk_circuits::tree::InverterTree;
use mtk_core::energy::{
    break_even_idle_time, gated_leakage_current, sleep_switching_energy, unguarded_leakage_current,
};
use mtk_netlist::expand::{expand, ExpandOptions};
use mtk_netlist::tech::Technology;
use mtk_spice::measure::supply_energy;
use mtk_spice::source::SourceWave;
use mtk_spice::tran::{transient, TranOptions};

fn main() {
    let tree = InverterTree::paper();
    let tech = Technology::l03();

    println!("EXT-ENERGY (§2.1): sleep-device switching energy and break-even idle time");
    println!(
        "block leakage if unguarded (analytic): {:.3} nA; gated @ W/L=10: {:.4} pA",
        unguarded_leakage_current(&tree.netlist, &tech) * 1e9,
        gated_leakage_current(&tech, 10.0) * 1e12
    );

    let mut rows = Vec::new();
    for &wl in &[5.0, 20.0, 80.0, 320.0] {
        // SPICE: toggle only the sleep gate (logic inputs static) and
        // integrate the energy drawn from the sleep-control driver.
        let opts = ExpandOptions {
            with_leakage: false,
            ..ExpandOptions::mtcmos(wl)
        };
        let mut ex = expand(&tree.netlist, &tech, &opts).expect("expand");
        let vsleep = ex.circuit.find_device("vsleep").expect("vsleep");
        // One wake pulse: low → high → low.
        ex.circuit
            .set_vsource_wave(
                vsleep,
                SourceWave::pulse(0.0, tech.vdd, 2e-9, 0.2e-9, 0.2e-9, 10e-9, 0.0),
            )
            .expect("set wave");
        let res =
            transient(&ex.circuit, &TranOptions::to(30e-9).with_dt(20e-12)).expect("transient");
        // Conventional CV² accounting: count only the charge *drawn* from
        // the driver (the stored energy is later dumped to ground, not
        // returned to the supply in a real gate driver).
        let drawn: mtk_num::waveform::Pwl = res
            .source_current("vsleep")
            .expect("vsleep current")
            .points()
            .iter()
            .map(|&(t, i)| (t, (-i).max(0.0)))
            .collect();
        let e_spice = supply_energy(&drawn, tech.vdd);
        let e_model = sleep_switching_energy(&tech, wl);
        let t_be = break_even_idle_time(&tree.netlist, &tech, wl);
        rows.push(vec![
            format!("{wl}"),
            format!("{:.3} fJ", e_model * 1e15),
            format!("{:.3} fJ", e_spice * 1e15),
            format!("{:.2} us", t_be * 1e6),
        ]);
    }
    print_table(
        "per sleep/wake cycle: gate energy (model vs SPICE) and break-even idle time",
        &["W/L", "C*Vdd^2 model", "SPICE measured", "break-even idle"],
        &rows,
    );
    println!(
        "\n(An event-driven system must sleep for at least the break-even time to save \
         energy; over-sizing the sleep device pushes that threshold up linearly — the \
         energy face of the §2.1 trade-off.)"
    );
}
