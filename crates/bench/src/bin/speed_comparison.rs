//! §6.2 — CPU-time comparison on the exhaustive 4096-vector adder sweep.
//!
//! The paper: SPICE needed 4.78 h on a Sparc 5; the (unoptimized)
//! switch-level simulator needed 13.5 s — a ≈1275× ratio. Here both
//! engines run on the same host: the full 4096-vector sweep through the
//! switch-level simulator is timed directly, and the SPICE total is
//! measured on a sample and extrapolated (pass `--full-spice` to really
//! run all 4096 — expect ~10 minutes).

use mtk_bench::report::print_table;
use mtk_bench::transition_of;
use mtk_circuits::adder::RippleAdder;
use mtk_circuits::vectors::exhaustive_transitions;
use mtk_core::hybrid::{spice_transition, SpiceRunConfig};
use mtk_core::vbsim::{Engine, VbsimOptions};
use mtk_netlist::expand::SleepImpl;
use mtk_netlist::tech::Technology;
use std::time::Instant;

fn main() {
    let full_spice = std::env::args().any(|a| a == "--full-spice");
    let add = RippleAdder::paper();
    let tech = Technology::l07();
    let engine = Engine::new(&add.netlist, &tech);
    let all = exhaustive_transitions(6);
    let opts = VbsimOptions::mtcmos(10.0);

    println!("SPEED (§6.2): exhaustive 4096-vector sweep of the 3-bit adder");

    // Switch-level: the full sweep.
    let t0 = Instant::now();
    let mut total_breakpoints = 0usize;
    for pair in &all {
        let tr = transition_of(*pair, 6);
        let run = engine.run(&tr.from, &tr.to, &opts).expect("vbsim run");
        total_breakpoints += run.breakpoints;
    }
    let t_vbsim = t0.elapsed().as_secs_f64();

    // SPICE: sample (or full).
    let cfg = SpiceRunConfig::window(80e-9);
    let sample: Vec<_> = if full_spice {
        all.clone()
    } else {
        all.iter().step_by(256).copied().collect() // 16 spread samples
    };
    let t0 = Instant::now();
    for pair in &sample {
        let tr = transition_of(*pair, 6);
        let _ = spice_transition(
            &add.netlist,
            &tech,
            &tr,
            None,
            SleepImpl::Transistor { w_over_l: 10.0 },
            &cfg,
        )
        .expect("spice run");
    }
    let t_sample = t0.elapsed().as_secs_f64();
    let t_spice_total = t_sample / sample.len() as f64 * all.len() as f64;

    let rows = vec![
        vec![
            "switch-level (this work)".into(),
            format!("{:.3} s", t_vbsim),
            "13.5 s (Sparc 5)".into(),
        ],
        vec![
            if full_spice {
                "SPICE engine (measured, all 4096)".into()
            } else {
                format!("SPICE engine (extrapolated from {})", sample.len())
            },
            format!("{:.0} s", t_spice_total),
            "17208 s = 4.78 h (Sparc 5)".into(),
        ],
        vec![
            "ratio".into(),
            format!("{:.0}x", t_spice_total / t_vbsim),
            "~1275x".into(),
        ],
    ];
    print_table(
        "CPU time, 4096 vectors",
        &["engine", "this host", "paper"],
        &rows,
    );
    println!(
        "\nswitch-level sweep processed {} breakpoints ({:.1} us per vector)",
        total_breakpoints,
        t_vbsim / all.len() as f64 * 1e6
    );
}
