//! §6.2 — CPU-time comparison on the exhaustive 4096-vector adder sweep.
//!
//! The paper: SPICE needed 4.78 h on a Sparc 5; the (unoptimized)
//! switch-level simulator needed 13.5 s — a ≈1275× ratio. Here both
//! engines run on the same host, and both switch-level kernels are
//! measured: the legacy dense-scan kernel and the event-driven kernel
//! (the default), which must agree bit-for-bit
//! (`tests/vbsim_kernel_equivalence.rs`) while skipping the dense
//! kernel's whole-netlist scans, per-breakpoint equilibrium re-solves,
//! and per-run allocations. The SPICE total is measured on a sample and
//! extrapolated (pass `--full-spice` to really run all 4096 — expect
//! ~10 minutes).
//!
//! Every timing is median-of-N with warm-up runs excluded
//! ([`mtk_bench::timing::measure`]); earlier versions reported a single
//! cold wall-clock pass, which bundled one-time construction and cache
//! warm-up into the number.
//!
//! Two secondary workloads probe how the kernels scale with circuit
//! size and switching activity: the 8×8 array multiplier (384 cells)
//! under whole-vector transitions (glitch-heavy, most gates switch, both
//! kernels bound by the shared bit-pinned Vₓ solver) and under
//! single-bit input toggles (small activity cone, the event kernel's
//! best case).
//!
//! Flags:
//!
//! * `--samples N` / `--warmup N` — timed / untimed sweep repetitions
//!   (default 5 / 1).
//! * `--spice-samples N` — SPICE transitions per timed sample
//!   (default 16; ignored with `--full-spice`).
//! * `--no-spice` — skip the SPICE leg entirely (fast CI smoke).
//! * `--json PATH` — write the measurements as a versioned
//!   `BENCH_speed.json` ([`mtk_bench::speedfile`]).
//! * `--check-against PATH` — load a committed baseline and exit
//!   non-zero if any shared bench regressed beyond `--tolerance`
//!   (default 4.0×, generous because hosts differ) or the
//!   event-vs-dense speedup fell below `--min-speedup` (default 1.5 —
//!   a floor under the ~2–2.5× median this sweep actually measures;
//!   the kernels share the bit-pinned Vₓ solver and must emit identical
//!   waveforms, which bounds the gap on a 12-cell netlist — see the
//!   speed table notes in `EXPERIMENTS.md`).

use mtk_bench::cli;
use mtk_bench::report::print_table;
use mtk_bench::speedfile::{check_regressions, SpeedFile};
use mtk_bench::timing::{human, measure};
use mtk_bench::transition_of;
use mtk_circuits::adder::RippleAdder;
use mtk_circuits::multiplier::ArrayMultiplier;
use mtk_circuits::vectors::exhaustive_transitions;
use mtk_core::hybrid::{spice_transition, SpiceRunConfig};
use mtk_core::vbsim::{Engine, VbsimKernel, VbsimOptions, VbsimScratch};
use mtk_netlist::expand::SleepImpl;
use mtk_netlist::tech::Technology;

fn main() {
    let full_spice = cli::bool_flag("--full-spice");
    let no_spice = cli::bool_flag("--no-spice");
    let samples = cli::flag("--samples", 5);
    let warmup = cli::flag("--warmup", 1);
    let spice_samples = cli::flag("--spice-samples", 16).max(1);
    let json_path = cli::str_flag("--json");
    let baseline_path = cli::str_flag("--check-against");
    let tolerance = cli::f64_flag("--tolerance", 4.0);
    let min_speedup = cli::f64_flag("--min-speedup", 1.5);

    let add = RippleAdder::paper();
    let tech = Technology::l07();
    let engine = Engine::new(&add.netlist, &tech);
    let all = exhaustive_transitions(6);
    let opts = VbsimOptions::mtcmos(10.0);
    let dense_opts = VbsimOptions {
        kernel: VbsimKernel::DenseScan,
        ..opts
    };

    println!("SPEED (§6.2): exhaustive 4096-vector sweep of the 3-bit adder");
    println!("median of {samples} samples after {warmup} warm-up run(s)\n");

    // Switch-level: the full sweep through each kernel. The event kernel
    // reuses one scratch across the whole sweep, which is exactly how the
    // sizing/search hot paths drive it.
    let mut total_breakpoints = 0usize;
    let mut scratch = VbsimScratch::new();
    let event = measure(warmup, samples, || {
        total_breakpoints = 0;
        for pair in &all {
            let tr = transition_of(*pair, 6);
            let run = engine
                .run_with(&tr.from, &tr.to, &opts, &mut scratch)
                .expect("vbsim event run");
            total_breakpoints += run.breakpoints;
            scratch.recycle(run);
        }
    });
    let dense = measure(warmup, samples, || {
        for pair in &all {
            let tr = transition_of(*pair, 6);
            engine
                .run(&tr.from, &tr.to, &dense_opts)
                .expect("vbsim dense run");
        }
    });
    let speedup = dense.median / event.median;

    // Scaling probes on the 8×8 array multiplier: 64 whole-vector
    // transitions (high activity) and 64 single-bit toggles (small
    // activity cone). The operand sequence is a fixed Weyl-style hash so
    // every host times the same work.
    let mult = ArrayMultiplier::paper();
    let meng = Engine::new(&mult.netlist, &tech);
    let mult_pairs: Vec<(u64, u64, u64, u64)> = (0..64u64)
        .map(|i| {
            let a = i.wrapping_mul(2_654_435_761) & 0xffff;
            let b = i.wrapping_mul(40_503).wrapping_add(12_345) & 0xffff;
            (a & 0xff, a >> 8, b & 0xff, b >> 8)
        })
        .collect();
    let bit_pairs: Vec<(u64, u64, u64, u64)> = (0..64u64)
        .map(|i| {
            let x = i.wrapping_mul(2_654_435_761) & 0xff;
            let y = i.wrapping_mul(40_503).wrapping_add(12_345) & 0xff;
            (x, y, x ^ (1 << (i % 8)), y)
        })
        .collect();
    let mut time_mult = |pairs: &[(u64, u64, u64, u64)], dense_kernel: bool| {
        measure(warmup, samples, || {
            for &(x0, y0, x1, y1) in pairs {
                let from = mult.input_values(x0, y0);
                let to = mult.input_values(x1, y1);
                if dense_kernel {
                    meng.run(&from, &to, &dense_opts).expect("mult dense run");
                } else {
                    let run = meng
                        .run_with(&from, &to, &opts, &mut scratch)
                        .expect("mult event run");
                    scratch.recycle(run);
                }
            }
        })
    };
    let mult_event = time_mult(&mult_pairs, false);
    let mult_dense = time_mult(&mult_pairs, true);
    let bit_event = time_mult(&bit_pairs, false);
    let bit_dense = time_mult(&bit_pairs, true);

    // SPICE: sample (or full), extrapolated to the 4096-vector total.
    let spice_total = if no_spice {
        None
    } else {
        let cfg = SpiceRunConfig::window(80e-9);
        let sample: Vec<_> = if full_spice {
            all.clone()
        } else {
            let step = (all.len() / spice_samples).max(1);
            all.iter().step_by(step).copied().collect()
        };
        // One SPICE sample set is minutes of work; never repeat it.
        let stats = measure(0, 1, || {
            for pair in &sample {
                let tr = transition_of(*pair, 6);
                spice_transition(
                    &add.netlist,
                    &tech,
                    &tr,
                    None,
                    SleepImpl::Transistor { w_over_l: 10.0 },
                    &cfg,
                )
                .expect("spice run");
            }
        });
        Some((
            stats.median / sample.len() as f64 * all.len() as f64,
            sample.len(),
        ))
    };

    let mut rows = vec![
        vec![
            "switch-level, event kernel (default)".into(),
            format!("{:.3} s", event.median),
            "13.5 s (Sparc 5)".into(),
        ],
        vec![
            "switch-level, dense-scan kernel".into(),
            format!("{:.3} s", dense.median),
            "13.5 s (Sparc 5)".into(),
        ],
        vec![
            "event-vs-dense speedup".into(),
            format!("{speedup:.1}x"),
            "-".into(),
        ],
        vec![
            "mult 8x8, 64 vectors: event / dense".into(),
            format!(
                "{:.3} s / {:.3} s ({:.1}x)",
                mult_event.median,
                mult_dense.median,
                mult_dense.median / mult_event.median
            ),
            "-".into(),
        ],
        vec![
            "mult 8x8, 64 one-bit toggles: event / dense".into(),
            format!(
                "{:.3} s / {:.3} s ({:.1}x)",
                bit_event.median,
                bit_dense.median,
                bit_dense.median / bit_event.median
            ),
            "-".into(),
        ],
    ];
    if let Some((t_spice, n)) = spice_total {
        rows.push(vec![
            if full_spice {
                "SPICE engine (measured, all 4096)".into()
            } else {
                format!("SPICE engine (extrapolated from {n})")
            },
            format!("{t_spice:.0} s"),
            "17208 s = 4.78 h (Sparc 5)".into(),
        ]);
        rows.push(vec![
            "SPICE / switch-level ratio".into(),
            format!("{:.0}x", t_spice / event.median),
            "~1275x".into(),
        ]);
    }
    print_table(
        "CPU time, 4096 vectors (medians)",
        &["engine", "this host", "paper"],
        &rows,
    );
    println!(
        "\nevent sweep processed {} breakpoints ({} per vector, {} per sweep min)",
        total_breakpoints,
        human(event.median / all.len() as f64),
        human(event.min),
    );

    // Machine-readable output + regression gate.
    let mut file = SpeedFile::new();
    file.push("adder4096_event", event);
    file.push("adder4096_dense", dense);
    file.push("mult8x8_64vec_event", mult_event);
    file.push("mult8x8_64vec_dense", mult_dense);
    file.push("mult8x8_1bit_event", bit_event);
    file.push("mult8x8_1bit_dense", bit_dense);
    file.push_derived("event_vs_dense_speedup", speedup);
    if let Some((t_spice, _)) = spice_total {
        file.push_derived("spice_vs_switch_ratio", t_spice / event.median);
    }
    if let Some(path) = &json_path {
        let text = file.to_json();
        SpeedFile::parse(&text).expect("self-written speed file must validate");
        std::fs::write(path, text).expect("write --json file");
        println!("wrote {path}");
    }
    if let Some(path) = &baseline_path {
        let text =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read baseline {path}: {e}"));
        let baseline =
            SpeedFile::parse(&text).unwrap_or_else(|e| panic!("parse baseline {path}: {e}"));
        let violations = check_regressions(&baseline, &file, tolerance, min_speedup);
        if violations.is_empty() {
            println!(
                "regression gate vs {path}: PASS (tolerance {tolerance}x, min speedup {min_speedup}x)"
            );
        } else {
            eprintln!("regression gate vs {path}: FAIL");
            for v in &violations {
                eprintln!("  {v}");
            }
            std::process::exit(1);
        }
    }
}
