//! ABL-STA / §4 — why conventional critical-path tools are not adequate
//! for MTCMOS.
//!
//! "One cannot simply examine a critical path in the circuit, but must
//! also consider all other accompanying gates that are switching" and
//! "current tools to extract critical paths may not be adequate since
//! they do not take into account the virtual ground bounce."
//!
//! A conventional STA reports one vector-blind, sizing-blind critical
//! delay. This experiment shows (a) the STA number does not move with
//! the sleep size while the true delay explodes, and (b) the vector that
//! exercises the STA critical path is *not* the MTCMOS-worst vector.

use mtk_bench::report::{ns, pct, print_table};
use mtk_bench::transition_of;
use mtk_circuits::adder::RippleAdder;
use mtk_circuits::tree::InverterTree;
use mtk_circuits::vectors::exhaustive_transitions;
use mtk_core::sizing::{screen_vectors, vbsim_delay_pair, Transition};
use mtk_core::sta::Sta;
use mtk_core::vbsim::{Engine, SleepNetwork, VbsimOptions};
use mtk_netlist::logic::Logic;
use mtk_netlist::tech::Technology;

fn main() {
    let tech = Technology::l07();

    // --- (a) The tree: STA vs vbsim across sleep sizes. ---
    let tree = InverterTree::paper();
    let sta = Sta::analyze(&tree.netlist, &tech).expect("sta");
    let engine = Engine::new(&tree.netlist, &tech);
    println!("ABL-STA (a): Fig 4 tree — STA critical delay vs actual MTCMOS delay");
    println!(
        "STA critical path: {} gates, {} ns (vector- and sizing-blind)",
        sta.critical_path().len(),
        ns(sta.critical_delay())
    );
    let mut rows = Vec::new();
    for &wl in &[20.0, 8.0, 2.0] {
        let run = engine
            .run(&[Logic::Zero], &[Logic::One], &VbsimOptions::mtcmos(wl))
            .expect("vbsim");
        let d = run.delay_over(tree.leaves()).expect("switches");
        rows.push(vec![
            format!("{wl}"),
            ns(sta.critical_delay()),
            ns(d),
            format!("{:+.0}%", (d / sta.critical_delay() - 1.0) * 100.0),
        ]);
    }
    print_table(
        "STA is constant; reality is not",
        &["sleep W/L", "STA [ns]", "vbsim worst [ns]", "STA error"],
        &rows,
    );

    // --- (b) The adder: is the STA critical path the MTCMOS worst case? ---
    let add = RippleAdder::paper();
    let sta = Sta::analyze(&add.netlist, &tech).expect("sta");
    let engine = Engine::new(&add.netlist, &tech);
    println!(
        "\nABL-STA (b): 3-bit adder — STA critical delay {} ns (path through {} gates)",
        ns(sta.critical_delay()),
        sta.critical_path().len()
    );
    // The classic STA-driven test vector: provoke the full carry ripple
    // (a = 111, b = 001 -> carry propagates through every FA).
    let ripple_vector = Transition::new(add.input_values(7, 0), add.input_values(7, 1));
    let wl = 10.0;
    let base = VbsimOptions::default();
    let ripple = vbsim_delay_pair(
        &engine,
        &ripple_vector,
        None,
        SleepNetwork::Transistor { w_over_l: wl },
        &base,
    )
    .expect("run")
    .expect("switches");
    // The true MTCMOS-worst vector from exhaustive screening.
    let transitions: Vec<Transition> = exhaustive_transitions(6)
        .into_iter()
        .map(|p| transition_of(p, 6))
        .collect();
    let screened = screen_vectors(&engine, &transitions, None, wl, &base).expect("screen");
    let worst = &screened[0];
    let worst_tr = &transitions[worst.index];
    let packed = |tr: &Transition| -> (u64, u64) {
        let enc = |bits: &[Logic]| {
            bits.iter()
                .enumerate()
                .fold(0u64, |acc, (k, &b)| acc | ((b == Logic::One) as u64) << k)
        };
        (enc(&tr.from), enc(&tr.to))
    };
    let (wf, wt) = packed(worst_tr);
    let rows = vec![
        vec![
            "carry-ripple (STA-style) vector".into(),
            ns(ripple.cmos),
            ns(ripple.mtcmos),
            pct(ripple.degradation()),
        ],
        vec![
            format!("screened worst ({wf:06b}->{wt:06b})"),
            ns(worst.delays.cmos),
            ns(worst.delays.mtcmos),
            pct(worst.delays.degradation()),
        ],
    ];
    print_table(
        &format!("adder @ sleep W/L={wl}: the STA-style vector vs the screened worst"),
        &["vector", "CMOS [ns]", "MTCMOS [ns]", "degradation"],
        &rows,
    );
    println!(
        "\nThe longest-CMOS-path vector suffers {} degradation; the simultaneous-discharge \
         vector suffers {} — a critical-path tool never finds it (§2.4/§4).",
        pct(ripple.degradation()),
        pct(worst.delays.degradation())
    );
}
