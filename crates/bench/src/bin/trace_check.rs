//! Validates a `--trace-json` artifact against the observability
//! contract (DESIGN.md §10).
//!
//! Usage: `trace_check <trace.json> [more.json ...]`
//!
//! Exits non-zero if any file fails to parse or violates the documented
//! schema (wrong schema name/version, counter keys out of registry
//! order, malformed histogram, missing/extra timing section, ...). CI
//! runs this over the smoke run's trace so a schema drift without a
//! version bump cannot land silently.

use mtk_trace::json::validate_report;

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: trace_check <trace.json> [more.json ...]");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &paths {
        let contents = match std::fs::read_to_string(path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("{path}: unreadable: {e}");
                failed = true;
                continue;
            }
        };
        match validate_report(&contents) {
            Ok(()) => println!(
                "{path}: valid mtk-trace v{} report",
                mtk_trace::SCHEMA_VERSION
            ),
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
