//! EXT-SCREEN / §5, §7 — the intended design flow: screen the whole
//! vector space with the switch-level simulator, then verify only the
//! survivors in SPICE.
//!
//! "The tool is more useful for identifying potential vectors that will
//! cause large variations in an MTCMOS circuit and can be used to narrow
//! down the vector space to be analyzed with a more detailed simulator
//! like SPICE."
//!
//! This binary quantifies the flow on the 3-bit adder: does the
//! simulator's top-k contain SPICE's true worst vector, and how much
//! SPICE time does screening save?

use mtk_bench::report::{pct, print_table};
use mtk_bench::transition_of;
use mtk_circuits::adder::RippleAdder;
use mtk_circuits::vectors::exhaustive_transitions;
use mtk_core::hybrid::{spice_delay_pair, SpiceRunConfig};
use mtk_core::sizing::screen_vectors;
use mtk_core::vbsim::{Engine, VbsimOptions};
use mtk_netlist::tech::Technology;
use std::time::Instant;

const W_OVER_L: f64 = 10.0;
const TOP_K: usize = 10;

fn main() {
    let add = RippleAdder::paper();
    let tech = Technology::l07();
    let engine = Engine::new(&add.netlist, &tech);

    println!("EXT-SCREEN: vbsim screening of all 4096 adder vectors, SPICE verification of top {TOP_K}");

    // Phase 1: screen everything with the switch-level simulator.
    let transitions: Vec<_> = exhaustive_transitions(6)
        .into_iter()
        .map(|p| transition_of(p, 6))
        .collect();
    let t0 = Instant::now();
    let screened = screen_vectors(
        &engine,
        &transitions,
        None,
        W_OVER_L,
        &VbsimOptions::default(),
    )
    .expect("screening");
    let t_screen = t0.elapsed().as_secs_f64();
    println!(
        "screened {} transitions ({} switch an output) in {:.2} s",
        transitions.len(),
        screened.len(),
        t_screen
    );

    // Phase 2: SPICE on the simulator's top-k.
    let cfg = SpiceRunConfig::window(80e-9);
    let t0 = Instant::now();
    let mut rows = Vec::new();
    let mut spice_worst: f64 = 0.0;
    for entry in screened.iter().take(TOP_K) {
        let tr = &transitions[entry.index];
        let pair = spice_delay_pair(&add.netlist, &tech, tr, None, W_OVER_L, &cfg)
            .expect("spice run")
            .expect("outputs switch");
        spice_worst = spice_worst.max(pair.degradation());
        rows.push(vec![
            format!("{:06b}->{:06b}", entry.index / 64, entry.index % 64),
            pct(entry.delays.degradation()),
            pct(pair.degradation()),
        ]);
    }
    let t_verify = t0.elapsed().as_secs_f64();
    print_table(
        "simulator top-10 vectors, SPICE-verified",
        &["vector", "simulator degr", "SPICE degr"],
        &rows,
    );

    // Phase 3: control — SPICE on a uniform sample to estimate the true
    // worst-case degradation without screening.
    let t0 = Instant::now();
    let mut control_worst: f64 = 0.0;
    let sample: Vec<usize> = (0..transitions.len()).step_by(101).collect();
    for &i in &sample {
        if let Some(pair) =
            spice_delay_pair(&add.netlist, &tech, &transitions[i], None, W_OVER_L, &cfg)
                .expect("spice run")
        {
            control_worst = control_worst.max(pair.degradation());
        }
    }
    let t_control = t0.elapsed().as_secs_f64();

    println!("\nworst SPICE degradation in screened top-{TOP_K}: {}", pct(spice_worst));
    println!(
        "worst SPICE degradation in a blind {}-vector sample: {} (took {:.0} s vs {:.0} s \
         screen+verify)",
        sample.len(),
        pct(control_worst),
        t_control,
        t_screen + t_verify
    );
    let full_estimate = t_control / sample.len() as f64 * transitions.len() as f64;
    println!(
        "exhaustive SPICE would need ≈{:.0} s; the hybrid flow used {:.0} s ({}x less SPICE \
         time) and found a worst case {} the blind sample's",
        full_estimate,
        t_screen + t_verify,
        (full_estimate / (t_screen + t_verify)) as u64,
        if spice_worst >= control_worst { "at least as bad as" } else { "below" }
    );
}
