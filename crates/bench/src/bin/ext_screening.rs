//! EXT-SCREEN / §5, §7 — the intended design flow: screen the whole
//! vector space with the switch-level simulator, then verify only the
//! survivors in SPICE.
//!
//! "The tool is more useful for identifying potential vectors that will
//! cause large variations in an MTCMOS circuit and can be used to narrow
//! down the vector space to be analyzed with a more detailed simulator
//! like SPICE."
//!
//! This binary quantifies the flow on a ripple adder using the batched
//! hybrid pipeline (`run_hybrid`): screen → rank/dedupe → batched SPICE
//! verification of the top-k over the same deterministic executor. Does
//! the simulator's top-k contain SPICE's true worst vector, and how much
//! SPICE time does screening save? A later phase screens a random sample
//! of the 8×8 multiplier's 2³² transition space, where the parallel
//! screener's speedup actually matters.
//!
//! Usage: `ext_screening [--threads N] [--top-k N] [--adder-bits N]
//! [--stride N] [--mult-samples N] [--max-failures N] [--fail-fast]
//! [--smoke] [--trace-json PATH]`
//!
//! * `--threads 0` = all cores; findings and health are bit-identical at
//!   any thread count.
//! * `--adder-bits N` sizes the adder (default 3 → 4096 transitions);
//!   `--stride N` subsamples its exhaustive transition space.
//! * `--smoke` runs only the hybrid screen+verify phase — the CI smoke
//!   configuration.
//! * By default vectors that fail to simulate are quarantined (up to
//!   `--max-failures`, default 32) and reported in the telemetry
//!   footer; `--fail-fast` aborts on the first failure instead.
//! * `--trace-json PATH` writes the versioned machine-readable trace
//!   (schema in DESIGN.md §10) next to the human footer;
//!   `--trace-deterministic` drops its schedule-dependent `timing`
//!   section so the file is byte-identical at any thread count.

use mtk_bench::cli::{bool_flag, emit_trace, failure_policy, flag, threads_label, trace_config};
use mtk_bench::report::{pct, print_table};
use mtk_bench::transition_of;
use mtk_circuits::adder::{AdderSpec, RippleAdder};
use mtk_circuits::multiplier::ArrayMultiplier;
use mtk_circuits::vectors::exhaustive_transitions;
use mtk_core::health::FaultPlan;
use mtk_core::hybrid::{run_hybrid, spice_delay_pair, HybridOptions, SpiceRunConfig};
use mtk_core::sizing::{screen_vectors_par_quarantined, Transition};
use mtk_netlist::logic::bits_lsb_first;
use mtk_netlist::tech::Technology;
use mtk_num::prng::Xoshiro256pp;
use mtk_trace::{SpanRecorder, TraceReport};
use std::time::Instant;

const W_OVER_L: f64 = 10.0;
const MULT_SEED: u64 = 0xDAC97;

fn main() {
    let threads = flag("--threads", 1);
    let top_k = flag("--top-k", 10);
    let bits = flag("--adder-bits", 3);
    let stride = flag("--stride", 1).max(1);
    let mult_samples = flag("--mult-samples", 512);
    let smoke = bool_flag("--smoke");
    let policy = failure_policy();
    let mut trace = TraceReport::new("ext_screening");
    let mut spans = SpanRecorder::new(trace_config().spans);
    spans.begin("run");

    let add = RippleAdder::new(&AdderSpec {
        bits,
        ..AdderSpec::default()
    })
    .expect("adder spec");
    let tech = Technology::l07();
    let n_inputs = 2 * bits as u32;

    // The (possibly strided) exhaustive transition space of the adder.
    let transitions: Vec<_> = exhaustive_transitions(n_inputs)
        .into_iter()
        .step_by(stride)
        .map(|p| transition_of(p, n_inputs))
        .collect();
    println!(
        "EXT-SCREEN: hybrid pipeline on the {bits}-bit adder — vbsim screen of {} \
         transitions ({} thread(s)), batched SPICE verification of top {top_k}",
        transitions.len(),
        threads_label(threads)
    );

    // Phases 1+2: the batched hybrid pipeline. Screening, ranking,
    // dedupe and the SPICE fan-out all run on the deterministic
    // executor; both tiers report their own health.
    let cfg = SpiceRunConfig::window(80e-9);
    let opts = HybridOptions {
        top_k,
        threads,
        policy,
        ..HybridOptions::at_size(W_OVER_L, cfg.clone())
    };
    spans.begin("hybrid");
    let report = run_hybrid(&add.netlist, &tech, &transitions, &opts).expect("hybrid run");
    spans.end();
    println!(
        "screened {} transitions ({} switch an output) in {:.2} s wall",
        transitions.len(),
        report.survivors,
        report.screen_wall
    );
    println!(
        "verified {} candidates in {:.2} s wall",
        report.findings.len(),
        report.verify_wall
    );
    trace.push_phase(report.screen_phase());
    trace.push_phase(report.verify_phase());

    let mask = (1usize << n_inputs) - 1;
    let mut spice_worst: f64 = 0.0;
    print_table(
        &format!("simulator top-{top_k} vectors, SPICE-verified"),
        &["vector", "simulator degr", "SPICE degr", "delta"],
        &report
            .findings
            .iter()
            .map(|f| {
                let packed = f.index * stride;
                if let Some(v) = f.verified {
                    spice_worst = spice_worst.max(v.degradation());
                }
                vec![
                    format!(
                        "{:0w$b}->{:0w$b}",
                        (packed >> n_inputs) & mask,
                        packed & mask,
                        w = n_inputs as usize
                    ),
                    pct(f.screened.degradation()),
                    f.verified
                        .map_or("quarantined".to_string(), |v| pct(v.degradation())),
                    f.delta.map_or("-".to_string(), pct),
                ]
            })
            .collect::<Vec<_>>(),
    );

    if smoke {
        println!("\n--smoke: skipping the blind SPICE control and multiplier phases");
        trace.spans = spans.finish();
        emit_trace(&trace);
        return;
    }

    // Phase 3: control — SPICE on a uniform sample to estimate the true
    // worst-case degradation without screening.
    spans.begin("control");
    let t0 = Instant::now();
    let mut control_worst: f64 = 0.0;
    let sample: Vec<usize> = (0..transitions.len()).step_by(101).collect();
    for &i in &sample {
        if let Some(pair) =
            spice_delay_pair(&add.netlist, &tech, &transitions[i], None, W_OVER_L, &cfg)
                .expect("spice run")
        {
            control_worst = control_worst.max(pair.degradation());
        }
    }
    let t_control = t0.elapsed().as_secs_f64();
    spans.end();
    let t_hybrid = report.screen_wall + report.verify_wall;

    println!(
        "\nworst SPICE degradation in screened top-{top_k}: {}",
        pct(spice_worst)
    );
    println!(
        "worst SPICE degradation in a blind {}-vector sample: {} (took {:.0} s vs {:.0} s \
         screen+verify)",
        sample.len(),
        pct(control_worst),
        t_control,
        t_hybrid
    );
    let full_estimate = t_control / sample.len() as f64 * transitions.len() as f64;
    println!(
        "exhaustive SPICE would need ≈{:.0} s; the hybrid flow used {:.0} s ({}x less SPICE \
         time) and found a worst case {} the blind sample's",
        full_estimate,
        t_hybrid,
        (full_estimate / t_hybrid) as u64,
        if spice_worst >= control_worst {
            "at least as bad as"
        } else {
            "below"
        }
    );

    // Phase 4: 8×8 multiplier sample screening — the workload the
    // parallel screener exists for. The 2³² transitions cannot be
    // enumerated; screen a deterministic random sample (sample i comes
    // from PRNG stream (seed, i), so the sample set — and therefore the
    // ranking — is identical at any thread count).
    let m = ArrayMultiplier::paper();
    let tech03 = Technology::l03();
    let mult_mask = (1u64 << 16) - 1;
    let mult_transitions: Vec<Transition> = (0..mult_samples as u64)
        .map(|i| {
            let mut rng = Xoshiro256pp::stream(MULT_SEED, i);
            Transition::new(
                bits_lsb_first(rng.next_u64() & mult_mask, 16),
                bits_lsb_first(rng.next_u64() & mult_mask, 16),
            )
        })
        .collect();
    println!(
        "\nEXT-SCREEN (multiplier): {} random transitions of the 8x8 multiplier @ sleep \
         W/L=170, {} thread(s)",
        mult_transitions.len(),
        threads_label(threads)
    );
    spans.begin("multiplier");
    let (mscreened, mreport) = screen_vectors_par_quarantined(
        &m.netlist,
        &tech03,
        &mult_transitions,
        None,
        170.0,
        &mtk_core::vbsim::VbsimOptions::default(),
        threads,
        policy,
        &FaultPlan::none(),
    )
    .expect("multiplier screening");
    spans.end();
    let throughput = mult_transitions.len() as f64 / mreport.wall;
    println!(
        "screened {} transitions in {:.2} s wall ({:.1} vectors/s)",
        mult_transitions.len(),
        mreport.wall,
        throughput
    );
    trace.push_phase(mreport.to_phase("multiplier_screen"));
    print_table(
        "multiplier sample: worst 5 of the screened ranking",
        &["rank", "degradation"],
        &mscreened
            .iter()
            .take(5)
            .enumerate()
            .map(|(k, e)| vec![format!("{}", k + 1), pct(e.delays.degradation())])
            .collect::<Vec<_>>(),
    );

    trace.spans = spans.finish();
    emit_trace(&trace);
}
