//! FIG5 — inverter-tree SPICE transients for W/L = 20, 17, 14, 11, 8, 5, 2.
//!
//! Reproduces the paper's Figure 5: the virtual-ground transient shows
//! an initial bump when the first inverter discharges and a much larger
//! bump when the third stage's nine inverters discharge together, and
//! the output's high-to-low edge slows as the sleep transistor shrinks.
//!
//! Usage: `cargo run -p mtk-bench --release --bin fig05_inverter_tree
//! [--series]` (the flag additionally dumps CSV waveform series).

use mtk_bench::report::{ns, print_series, print_table};
use mtk_circuits::tree::InverterTree;
use mtk_core::hybrid::{spice_transition, SpiceRunConfig};
use mtk_core::sizing::Transition;
use mtk_netlist::expand::SleepImpl;
use mtk_netlist::logic::Logic;
use mtk_netlist::tech::Technology;

fn main() {
    let dump_series = std::env::args().any(|a| a == "--series");
    let tree = InverterTree::paper();
    let tech = Technology::l07();
    let tr = Transition::new(vec![Logic::Zero], vec![Logic::One]);
    let probe = [tree.probe()];
    let cfg = SpiceRunConfig::window(60e-9);

    println!("FIG5: MTCMOS inverter tree (Fig 4), input 0->1, Vdd=1.2V, CL=50fF");
    println!(
        "tree: {} inverters, {} transistors",
        tree.netlist.cells().len(),
        tree.netlist.total_transistors()
    );

    // CMOS baseline.
    let cmos = spice_transition(
        &tree.netlist,
        &tech,
        &tr,
        Some(&probe),
        SleepImpl::AlwaysOn,
        &cfg,
    )
    .expect("cmos run");
    let d_cmos = cmos.delay.expect("output switches");

    let mut rows = Vec::new();
    rows.push(vec![
        "CMOS".to_string(),
        ns(d_cmos),
        "-".to_string(),
        "0.000".to_string(),
    ]);
    for &wl in &[20.0, 17.0, 14.0, 11.0, 8.0, 5.0, 2.0] {
        let res = spice_transition(
            &tree.netlist,
            &tech,
            &tr,
            Some(&probe),
            SleepImpl::Transistor { w_over_l: wl },
            &cfg,
        )
        .expect("mtcmos run");
        let d = res.delay.expect("output switches");
        let vg = res.vgnd.as_ref().expect("vgnd probed");
        rows.push(vec![
            format!("W/L={wl}"),
            ns(d),
            format!("{:.1}%", (d - d_cmos) / d_cmos * 100.0),
            format!("{:.3}", vg.max_value().unwrap_or(0.0)),
        ]);
        if dump_series {
            print_series(&format!("fig5_out_wl{wl}"), &res.probe_waveforms[0], 200);
            print_series(&format!("fig5_vgnd_wl{wl}"), vg, 200);
        }
    }
    print_table(
        "Fig 5 summary: output H->L delay and peak virtual-ground bounce vs sleep W/L",
        &["sleep", "tphl [ns]", "degradation", "peak vgnd [V]"],
        &rows,
    );

    // The two-bump signature: at a representative size, the bounce while
    // stage 2 (nine inverters) discharges must exceed the stage-0 bounce.
    let res = spice_transition(
        &tree.netlist,
        &tech,
        &tr,
        Some(&probe),
        SleepImpl::Transistor { w_over_l: 8.0 },
        &cfg,
    )
    .expect("mtcmos run");
    let vg = res.vgnd.expect("vgnd probed");
    let t_mid = res.t_ref + d_cmos; // roughly after stage 0/1, before leaves settle
    let early_peak = vg
        .points()
        .iter()
        .filter(|&&(t, _)| t <= t_mid)
        .map(|&(_, v)| v)
        .fold(0.0, f64::max);
    let late_peak = vg
        .points()
        .iter()
        .filter(|&&(t, _)| t > t_mid)
        .map(|&(_, v)| v)
        .fold(0.0, f64::max);
    println!(
        "\ntwo-bump check @ W/L=8: first-stage bump {early_peak:.3} V < third-stage bump {late_peak:.3} V -> {}",
        if late_peak > early_peak { "OK (matches Fig 5)" } else { "MISMATCH" }
    );
    if dump_series {
        print_series("fig5_vgnd_wl8_full", &vg, 300);
    }
}
