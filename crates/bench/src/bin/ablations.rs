//! Ablations of the delay-model design choices the paper calls out in
//! §5.3 ("by addressing these issues in future work, the simulator
//! accuracy can be improved significantly"):
//!
//! * ABL-BODY — V<sub>x</sub> equilibrium with vs without the body
//!   effect, against SPICE (which always has it).
//! * ABL-ALPHA — square-law (α = 2) vs short-channel alpha-power
//!   exponents in the first-order delay model.
//! * ABL-REVCOND — reverse-conduction pinning on/off: low outputs ride
//!   the virtual-ground bounce in SPICE (§2.3); the extension reproduces
//!   that, the paper's simple model does not.

use mtk_bench::report::{ns, print_table};
use mtk_circuits::tree::InverterTree;
use mtk_core::hybrid::{spice_transition, SpiceRunConfig};
use mtk_core::model::{n_inverter_delay, solve_vx, VxOptions};
use mtk_core::sizing::Transition;
use mtk_core::vbsim::{Engine, VbsimOptions};
use mtk_netlist::expand::SleepImpl;
use mtk_netlist::logic::Logic;
use mtk_netlist::tech::Technology;

fn main() {
    let tree = InverterTree::paper();
    let tech = Technology::l07();
    let engine = Engine::new(&tree.netlist, &tech);
    let tr = Transition::new(vec![Logic::Zero], vec![Logic::One]);
    let probe = [tree.probe()];
    let cfg = SpiceRunConfig::window(60e-9);

    // ---------------- ABL-BODY ----------------
    println!("ABL-BODY: body effect in the Vx equilibrium (Fig 4 tree, input 0->1)");
    let mut rows = Vec::new();
    for &wl in &[2.0, 5.0, 11.0, 20.0] {
        let sp = spice_transition(
            &tree.netlist,
            &tech,
            &tr,
            Some(&probe),
            SleepImpl::Transistor { w_over_l: wl },
            &cfg,
        )
        .expect("spice run")
        .delay
        .expect("switches");
        let d = |body: bool| {
            engine
                .run(
                    &tr.from,
                    &tr.to,
                    &VbsimOptions {
                        body_effect: body,
                        ..VbsimOptions::mtcmos(wl)
                    },
                )
                .expect("vbsim run")
                .delay_over(&probe)
                .expect("switches")
        };
        let d_plain = d(false);
        let d_body = d(true);
        rows.push(vec![
            format!("{wl}"),
            ns(sp),
            ns(d_plain),
            ns(d_body),
            format!("{:.1}%", ((d_plain / sp) - 1.0).abs() * 100.0),
            format!("{:.1}%", ((d_body / sp) - 1.0).abs() * 100.0),
        ]);
    }
    print_table(
        "tree delay: SPICE vs simulator without/with body effect (|error| vs SPICE)",
        &[
            "W/L",
            "SPICE [ns]",
            "sim plain [ns]",
            "sim +body [ns]",
            "err plain",
            "err +body",
        ],
        &rows,
    );

    // Vx itself.
    let mut rows = Vec::new();
    for &wl in &[2.0, 5.0, 11.0, 20.0] {
        let r = tech.sleep_resistance(wl);
        let betas = vec![tech.kp_n * tech.unit_wn; 9];
        let vx0 = solve_vx(&tech, r, &betas, VxOptions { body_effect: false }).unwrap();
        let vx1 = solve_vx(&tech, r, &betas, VxOptions { body_effect: true }).unwrap();
        rows.push(vec![
            format!("{wl}"),
            format!("{:.4}", vx0),
            format!("{:.4}", vx1),
        ]);
    }
    print_table(
        "Vx equilibrium for 9 discharging unit inverters",
        &["W/L", "Vx plain [V]", "Vx +body [V]"],
        &rows,
    );

    // ---------------- ABL-ALPHA ----------------
    println!("\nABL-ALPHA: alpha-power exponent in the first-order model");
    let mut rows = Vec::new();
    let r = tech.sleep_resistance(8.0);
    for &alpha in &[2.0, 1.7, 1.4, 1.1] {
        let t_alpha = Technology {
            alpha,
            ..tech.clone()
        };
        let d = n_inverter_delay(
            &t_alpha,
            r,
            9,
            tech.kp_n * tech.unit_wn,
            50e-15,
            VxOptions { body_effect: false },
        )
        .unwrap();
        let d0 = n_inverter_delay(
            &t_alpha,
            0.0,
            9,
            tech.kp_n * tech.unit_wn,
            50e-15,
            VxOptions { body_effect: false },
        )
        .unwrap();
        rows.push(vec![
            format!("{alpha}"),
            ns(d0),
            ns(d),
            format!("{:.1}%", (d / d0 - 1.0) * 100.0),
        ]);
    }
    print_table(
        "9-inverter model delay at sleep W/L=8 vs alpha (CMOS baseline alongside)",
        &["alpha", "cmos [ns]", "mtcmos [ns]", "degradation"],
        &rows,
    );
    println!(
        "(lower alpha = stronger velocity saturation: the same bounce costs relatively less \
         gate drive, so degradation shrinks — quantifying the §5.3 'velocity saturation' item)"
    );

    // ---------------- ABL-REVCOND ----------------
    println!("\nABL-REVCOND: reverse-conduction pinning (§2.3)");
    // Stage-0 output is logic low while the third stage discharges; in
    // SPICE it rides the bounce. Compare its peak against both simulator
    // modes.
    let wl = 3.0;
    let sp = spice_transition(
        &tree.netlist,
        &tech,
        &tr,
        Some(&[tree.stage_outputs[0][0]]),
        SleepImpl::Transistor { w_over_l: wl },
        &cfg,
    )
    .expect("spice run");
    let s0 = tree.stage_outputs[0][0];
    // Peak of the stage-0 output *after* it has fallen (its low phase).
    let low_phase_peak = |w: &mtk_num::waveform::Pwl, t_from: f64| {
        w.points()
            .iter()
            .filter(|&&(t, _)| t > t_from)
            .map(|&(_, v)| v)
            .fold(0.0, f64::max)
    };
    let sp_w = &sp.probe_waveforms[0];
    let t_fall = sp_w
        .last_crossing(0.1, mtk_num::waveform::Edge::Falling)
        .map(|c| c.time)
        .unwrap_or(sp.t_ref);
    let sp_peak = low_phase_peak(sp_w, t_fall);
    let run = |rc: bool| {
        engine
            .run(
                &tr.from,
                &tr.to,
                &VbsimOptions {
                    reverse_conduction: rc,
                    ..VbsimOptions::mtcmos(wl)
                },
            )
            .expect("vbsim run")
    };
    let plain = run(false);
    let rcond = run(true);
    let t_fall_vb = plain
        .waveform(s0)
        .last_crossing(0.1, mtk_num::waveform::Edge::Falling)
        .map(|c| c.time)
        .unwrap_or(0.0);
    let rows = vec![
        vec!["SPICE".into(), format!("{:.4} V", sp_peak)],
        vec![
            "simulator, plain".into(),
            format!("{:.4} V", low_phase_peak(plain.waveform(s0), t_fall_vb)),
        ],
        vec![
            "simulator, +reverse-conduction".into(),
            format!("{:.4} V", low_phase_peak(rcond.waveform(s0), t_fall_vb)),
        ],
    ];
    print_table(
        &format!("stage-0 (logic-low) output peak during the third-stage discharge, W/L={wl}"),
        &["model", "low-phase peak"],
        &rows,
    );
    println!(
        "(the extension reproduces SPICE's nonzero ride; the paper's simple model pins low \
         outputs to 0 V)"
    );
}
