//! EXT-MODULES — per-module sleep devices and mutually exclusive
//! discharge (the paper's future-work direction; the authors' 1998
//! follow-up, "MTCMOS Hierarchical Sizing Based on Mutual Exclusive
//! Discharge Patterns").
//!
//! Two identical inverter trees share one netlist. If the workload
//! guarantees only one tree switches at a time (mutually exclusive
//! discharge), one *shared* sleep device sized for a single tree
//! suffices — roughly half the total width of one device per tree, and
//! far less than a device sized for the simultaneous worst case. If
//! both trees can fire together, sharing buys nothing and partitioning
//! decouples their virtual-ground noise instead.

use mtk_bench::report::print_table;
use mtk_circuits::tree::TreeSpec;
use mtk_core::modules::{size_modules_for_target, total_width, worst_degradation_partitioned};
use mtk_core::sizing::{size_for_target, Transition};
use mtk_core::vbsim::{Engine, VbsimOptions};
use mtk_netlist::cell::CellKind;
use mtk_netlist::logic::Logic;
use mtk_netlist::netlist::{NetId, Netlist};
use mtk_netlist::tech::Technology;

/// Two independent Fig-4-style trees in one netlist. Returns the
/// netlist and, per tree, its input position and its cell-count.
fn double_tree(spec: &TreeSpec) -> (Netlist, usize) {
    let mut nl = Netlist::new("double_tree");
    let mut cells_per_tree = 0;
    for tree_idx in 0..2 {
        let input = nl.add_net(&format!("in{tree_idx}")).unwrap();
        nl.mark_primary_input(input).unwrap();
        let mut frontier: Vec<NetId> = vec![input];
        let mut gate = 0usize;
        for stage in 0..spec.stages {
            let per_driver = if stage == 0 { 1 } else { spec.fanout };
            let mut next = Vec::new();
            for &drv in &frontier {
                for _ in 0..per_driver {
                    let out = nl
                        .add_net(&format!("t{tree_idx}_s{stage}_{}", next.len()))
                        .unwrap();
                    nl.add_cell(
                        &format!("t{tree_idx}_inv{gate}"),
                        CellKind::Inv,
                        vec![drv],
                        out,
                        spec.drive,
                    )
                    .unwrap();
                    nl.add_extra_cap(out, spec.load_cap);
                    gate += 1;
                    next.push(out);
                }
            }
            frontier = next;
        }
        for &leaf in &frontier {
            nl.mark_primary_output(leaf);
        }
        if tree_idx == 0 {
            cells_per_tree = nl.cells().len();
        }
    }
    (nl, cells_per_tree)
}

fn main() {
    let tech = Technology::l07();
    let (nl, cells_per_tree) = double_tree(&TreeSpec::default());
    let engine = Engine::new(&nl, &tech);
    let assignment: Vec<usize> = (0..nl.cells().len())
        .map(|c| usize::from(c >= cells_per_tree))
        .collect();
    let target = 0.10;
    let base = VbsimOptions::default();

    // Workloads: exclusive (one tree rises at a time) vs simultaneous.
    let tr_a = Transition::new(
        vec![Logic::Zero, Logic::Zero],
        vec![Logic::One, Logic::Zero],
    );
    let tr_b = Transition::new(
        vec![Logic::Zero, Logic::Zero],
        vec![Logic::Zero, Logic::One],
    );
    let tr_both = Transition::new(vec![Logic::Zero, Logic::Zero], vec![Logic::One, Logic::One]);
    let exclusive = [tr_a.clone(), tr_b.clone()];
    let simultaneous = [tr_both.clone()];

    println!(
        "EXT-MODULES: two independent Fig-4 trees, one netlist ({} cells), {}% target",
        nl.cells().len(),
        target * 100.0
    );

    let bounds = (0.5, 2000.0);
    let w_shared_excl =
        size_for_target(&engine, &exclusive, None, target, bounds, &base).expect("sizing");
    let w_shared_simul =
        size_for_target(&engine, &simultaneous, None, target, bounds, &base).expect("sizing");
    let per_module = size_modules_for_target(
        &engine,
        &exclusive,
        None,
        &assignment,
        2,
        target,
        bounds,
        &VbsimOptions::cmos(),
    )
    .expect("module sizing");
    let check = worst_degradation_partitioned(
        &engine,
        &exclusive,
        None,
        &assignment,
        &per_module,
        &VbsimOptions::cmos(),
    )
    .expect("verify");

    let rows = vec![
        vec![
            "shared device, exclusive workload".into(),
            format!("{w_shared_excl:.1}"),
            format!("{w_shared_excl:.1}"),
        ],
        vec![
            "shared device, simultaneous workload".into(),
            format!("{w_shared_simul:.1}"),
            format!("{w_shared_simul:.1}"),
        ],
        vec![
            "one device per tree, exclusive workload".into(),
            format!("{:.1} + {:.1}", per_module[0], per_module[1]),
            format!("{:.1}", total_width(&per_module)),
        ],
    ];
    print_table(
        "sleep sizing for the same 10% target (verified degradation of the per-module row shown below)",
        &["configuration", "device W/L", "total width"],
        &rows,
    );
    println!(
        "per-module verified worst degradation: {:.1}%",
        check * 100.0
    );
    println!(
        "\nmutually exclusive discharge lets ONE shared device of W/L {w_shared_excl:.0} do the \
         work that costs {:.0} in per-module width and {w_shared_simul:.0} under the \
         no-exclusivity assumption — merging exclusive patterns onto a shared device saves \
         {:.0}% width, the 1998 follow-up's core observation.",
        total_width(&per_module),
        (1.0 - w_shared_excl / total_width(&per_module)) * 100.0
    );
}
