//! Minimal self-timing harness for the `bench-harness` benchmark
//! targets. Replaces the external Criterion dependency so the workspace
//! builds with zero network access: each benchmark warms up, then runs a
//! fixed number of timed samples and reports min / median / mean.

use std::time::Instant;

/// One measured benchmark: `samples` timed runs after `warmup` untimed
/// ones. Prints a single aligned line with min/median/mean per
/// iteration.
pub fn bench<F: FnMut()>(name: &str, warmup: usize, samples: usize, mut f: F) {
    for _ in 0..warmup {
        f();
    }
    let mut times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples.max(1) {
        let t0 = Instant::now();
        f();
        times.push(t0.elapsed().as_secs_f64());
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let min = times[0];
    let median = times[times.len() / 2];
    let mean: f64 = times.iter().sum::<f64>() / times.len() as f64;
    println!(
        "{name:<40} min {:>12}  median {:>12}  mean {:>12}  ({} samples)",
        human(min),
        human(median),
        human(mean),
        times.len()
    );
}

/// Formats a duration in seconds with an auto-selected unit.
pub fn human(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{:.3} s", secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_units() {
        assert!(human(5e-9).ends_with("ns"));
        assert!(human(5e-6).ends_with("us"));
        assert!(human(5e-3).ends_with("ms"));
        assert!(human(5.0).ends_with('s'));
    }

    #[test]
    fn bench_runs_closure() {
        let mut count = 0u32;
        bench("noop", 1, 3, || count += 1);
        assert_eq!(count, 4);
    }
}
