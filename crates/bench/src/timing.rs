//! Minimal self-timing harness for the `bench-harness` benchmark
//! targets. Replaces the external Criterion dependency so the workspace
//! builds with zero network access: each benchmark warms up, then runs a
//! fixed number of timed samples and reports min / median / mean.
//!
//! The statistics come from [`measure`], which the speed binaries use
//! directly: earlier versions timed a *single* wall-clock pass that
//! included one-time setup, so a cold cache or an unlucky scheduler
//! quantum landed straight in the reported number. Warm-up runs are
//! excluded and the headline statistic is the median, which is robust
//! to one slow outlier sample.

use std::time::Instant;

/// Timing statistics of one measured benchmark, in seconds per run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Fastest sample.
    pub min: f64,
    /// Median sample — the headline number (robust to outliers).
    pub median: f64,
    /// Mean over all samples.
    pub mean: f64,
    /// Number of timed samples (warm-up runs excluded).
    pub samples: usize,
}

/// Runs `f` `warmup` untimed times, then `samples` timed times, and
/// returns the [`Stats`] of the timed runs. At least one sample is
/// always taken.
pub fn measure<F: FnMut()>(warmup: usize, samples: usize, mut f: F) -> Stats {
    for _ in 0..warmup {
        f();
    }
    let mut times: Vec<f64> = Vec::with_capacity(samples.max(1));
    for _ in 0..samples.max(1) {
        let t0 = Instant::now();
        f();
        times.push(t0.elapsed().as_secs_f64());
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    Stats {
        min: times[0],
        median: times[times.len() / 2],
        mean: times.iter().sum::<f64>() / times.len() as f64,
        samples: times.len(),
    }
}

/// One measured benchmark: `samples` timed runs after `warmup` untimed
/// ones. Prints a single aligned line with min/median/mean per
/// iteration and returns the statistics.
pub fn bench<F: FnMut()>(name: &str, warmup: usize, samples: usize, f: F) -> Stats {
    let stats = measure(warmup, samples, f);
    println!(
        "{name:<40} min {:>12}  median {:>12}  mean {:>12}  ({} samples)",
        human(stats.min),
        human(stats.median),
        human(stats.mean),
        stats.samples
    );
    stats
}

/// Formats a duration in seconds with an auto-selected unit.
pub fn human(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{:.3} s", secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_units() {
        assert!(human(5e-9).ends_with("ns"));
        assert!(human(5e-6).ends_with("us"));
        assert!(human(5e-3).ends_with("ms"));
        assert!(human(5.0).ends_with('s'));
    }

    #[test]
    fn bench_runs_closure() {
        let mut count = 0u32;
        bench("noop", 1, 3, || count += 1);
        assert_eq!(count, 4);
    }

    #[test]
    fn measure_excludes_warmup_and_orders_stats() {
        let mut count = 0u32;
        let stats = measure(2, 5, || count += 1);
        assert_eq!(count, 7, "2 warm-up + 5 timed");
        assert_eq!(stats.samples, 5);
        assert!(stats.min <= stats.median && stats.median <= stats.mean * 5.0);
        assert!(stats.min >= 0.0);
    }

    #[test]
    fn measure_always_takes_one_sample() {
        let mut count = 0u32;
        let stats = measure(0, 0, || count += 1);
        assert_eq!(count, 1);
        assert_eq!(stats.samples, 1);
    }
}
