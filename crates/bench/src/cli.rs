//! Shared command-line plumbing for the experiment binaries: flag
//! parsing, the failure-policy knob, and the `--trace-json` export.
//!
//! Every `ext_*` binary used to hand-roll these (and the copies had
//! started to drift); they now live here so flags and telemetry behave
//! identically across tools.

use mtk_core::health::FailurePolicy;
use mtk_trace::{TraceConfig, TraceReport};

/// Value of `--<name> N`, or `default` when absent/unparsable.
pub fn flag(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// True when `--<name>` is present.
pub fn bool_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// Value of `--<name> X` as a float, or `default` when
/// absent/unparsable.
pub fn f64_flag(name: &str, default: f64) -> f64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Value of `--<name> <string>`, when present.
pub fn str_flag(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// The failure policy shared by every sweep-running binary:
/// quarantine-with-a-cap by default (`--max-failures N`, default 32),
/// `--fail-fast` to abort on the first failure.
pub fn failure_policy() -> FailurePolicy {
    if bool_flag("--fail-fast") {
        FailurePolicy::FailFast
    } else {
        FailurePolicy::quarantine(flag("--max-failures", 32))
    }
}

/// Renders `threads` the way the binaries report it (`0` = all cores).
pub fn threads_label(threads: usize) -> String {
    if threads == 0 {
        "all".to_string()
    } else {
        threads.to_string()
    }
}

/// The flag-driven trace configuration shared by every binary: full
/// tracing by default, `--trace-deterministic` to drop the
/// schedule-dependent `timing` section (and span recording with it) so
/// the written JSON is byte-identical at any thread count.
pub fn trace_config() -> TraceConfig {
    if bool_flag("--trace-deterministic") {
        TraceConfig::deterministic()
    } else {
        TraceConfig::full()
    }
}

/// Prints the shared telemetry footer and, when `--trace-json <path>`
/// was given, writes the versioned JSON trace there (the `BENCH_*.json`
/// artifact of a run) under the mode from [`trace_config`].
pub fn emit_trace(report: &TraceReport) {
    print!("\n{}", report.render_text());
    if let Some(path) = str_flag("--trace-json") {
        let json = report.to_json(trace_config().mode);
        match std::fs::write(&path, &json) {
            Ok(()) => println!("trace written to {path}"),
            Err(e) => {
                eprintln!("error: could not write trace to {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
