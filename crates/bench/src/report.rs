//! Plain-text reporting: aligned tables and sampled series, printed in
//! the same rows/columns the paper's tables and figure axes use.

use mtk_num::waveform::Pwl;

/// Prints an aligned table with a title, headers, and rows.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (k, cell) in row.iter().enumerate() {
            if k < widths.len() {
                widths[k] = widths[k].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (k, c) in cells.iter().enumerate() {
            s.push_str(&format!(
                "{:>w$}  ",
                c,
                w = widths.get(k).copied().unwrap_or(8)
            ));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|&w| "-".repeat(w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Formats seconds as engineering-notation nanoseconds.
pub fn ns(t: f64) -> String {
    format!("{:.4}", t * 1e9)
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    if x.is_finite() {
        format!("{:.1}%", x * 100.0)
    } else {
        "inf".to_string()
    }
}

/// Prints a waveform as `t_ns, volts` CSV rows sampled at `n` uniform
/// points (figure-series output).
pub fn print_series(label: &str, w: &Pwl, n: usize) {
    let (Some(t0), Some(t1)) = (w.start_time(), w.end_time()) else {
        println!("# {label}: empty");
        return;
    };
    println!("# series: {label}");
    println!("t_ns,volts");
    if t1 <= t0 || n < 2 {
        println!("{:.5},{:.6}", t0 * 1e9, w.value_at(t0));
        return;
    }
    let dt = (t1 - t0) / (n - 1) as f64;
    for k in 0..n {
        let t = t0 + k as f64 * dt;
        println!("{:.5},{:.6}", t * 1e9, w.value_at(t));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(ns(1.5e-9), "1.5000");
        assert_eq!(pct(0.048), "4.8%");
        assert_eq!(pct(f64::INFINITY), "inf");
    }

    #[test]
    fn table_and_series_do_not_panic() {
        print_table(
            "t",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["30".into(), "4".into()]],
        );
        let w: Pwl = [(0.0, 0.0), (1e-9, 1.0)].into_iter().collect();
        print_series("w", &w, 5);
        print_series("empty", &Pwl::new(), 5);
    }
}
