//! Experiment harness for the paper reproduction.
//!
//! One binary per data-bearing table/figure of the paper (see the
//! per-experiment index in `DESIGN.md`), plus self-timed benchmarks for
//! the engine-speed claims (run with
//! `cargo bench -p mtk-bench --features bench-harness`). This library
//! holds what the binaries share: plain-text table/series reporting, the
//! statistics used to compare the two engines, and the timing harness.

pub mod cli;
pub mod report;
pub mod speedfile;
pub mod stats;
pub mod timing;

use mtk_circuits::vectors::VectorPair;
use mtk_core::sizing::Transition;
use mtk_netlist::logic::bits_lsb_first;

/// Converts a packed [`VectorPair`] into a [`Transition`] over a circuit
/// with `total_bits` primary inputs (the adder/multiplier generators
/// declare inputs in exactly the packed bit order).
pub fn transition_of(pair: VectorPair, total_bits: u32) -> Transition {
    Transition::new(
        bits_lsb_first(pair.from, total_bits),
        bits_lsb_first(pair.to, total_bits),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtk_netlist::logic::Logic;

    #[test]
    fn transition_bit_order_matches_generators() {
        let tr = transition_of(VectorPair::new(0b000001, 0b110101), 6);
        assert_eq!(tr.from[0], Logic::One);
        assert_eq!(tr.from[1], Logic::Zero);
        assert_eq!(tr.to[0], Logic::One);
        assert_eq!(tr.to[2], Logic::One);
        assert_eq!(tr.to[5], Logic::One);
    }
}
