//! Experiment harness for the paper reproduction.
//!
//! One binary per data-bearing table/figure of the paper (see the
//! per-experiment index in `DESIGN.md`), plus self-timed benchmarks for
//! the engine-speed claims (run with
//! `cargo bench -p mtk-bench --features bench-harness`). This library
//! holds what the binaries share: plain-text table/series reporting, the
//! statistics used to compare the two engines, and the timing harness.

pub mod cli;
pub mod report;
pub mod serve;
pub mod speedfile;
pub mod stats;
pub mod timing;
pub mod wave;

use mtk_circuits::vectors::VectorPair;
use mtk_core::sizing::Transition;
use mtk_netlist::logic::{bits_lsb_first, Logic};
use mtk_num::prng::Xoshiro256pp;

/// Stream seed for the seeded random vector sample (`--samples` and the
/// `samples` request field) — sample *i* comes from PRNG stream
/// `(SAMPLE_SEED, i)`, so the set is identical at any thread count.
pub const SAMPLE_SEED: u64 = 0x4D_54_4B; // "MTK"

/// The transitions a flow command or serve job runs, per the documented
/// precedence — `vector` lines from the file, else the exhaustive
/// transition space when the circuit has ≤ 6 primary inputs (subsampled
/// by `stride`), else `samples` seeded random pairs — plus a human label
/// for where they came from. Shared by the `mtk` CLI and `mtk serve` so
/// a design means the same workload on both paths.
pub fn design_transitions(
    design: &mtk_fe::Design,
    stride: usize,
    samples: usize,
) -> (Vec<Transition>, String) {
    if !design.vectors.is_empty() {
        let trs = design
            .vectors
            .iter()
            .map(|s| Transition::new(s.from.clone(), s.to.clone()))
            .collect::<Vec<_>>();
        let label = format!("{} vector(s) from the file", trs.len());
        return (trs, label);
    }
    let n = design.netlist.primary_inputs().len() as u32;
    if n <= 6 {
        let stride = stride.max(1);
        let trs: Vec<Transition> = mtk_circuits::vectors::exhaustive_transitions(n)
            .into_iter()
            .step_by(stride)
            .map(|p| transition_of(p, n))
            .collect();
        let label = format!(
            "{} exhaustive transition(s) of {n} input(s), stride {stride}",
            trs.len()
        );
        return (trs, label);
    }
    let bit = |rng: &mut Xoshiro256pp| {
        if rng.next_u64() & 1 == 1 {
            Logic::One
        } else {
            Logic::Zero
        }
    };
    let trs: Vec<Transition> = (0..samples as u64)
        .map(|i| {
            let mut rng = Xoshiro256pp::stream(SAMPLE_SEED, i);
            Transition::new(
                (0..n).map(|_| bit(&mut rng)).collect(),
                (0..n).map(|_| bit(&mut rng)).collect(),
            )
        })
        .collect();
    let label = format!("{samples} seeded random sample(s) over {n} inputs");
    (trs, label)
}

/// Converts a packed [`VectorPair`] into a [`Transition`] over a circuit
/// with `total_bits` primary inputs (the adder/multiplier generators
/// declare inputs in exactly the packed bit order).
pub fn transition_of(pair: VectorPair, total_bits: u32) -> Transition {
    Transition::new(
        bits_lsb_first(pair.from, total_bits),
        bits_lsb_first(pair.to, total_bits),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtk_netlist::logic::Logic;

    #[test]
    fn transition_bit_order_matches_generators() {
        let tr = transition_of(VectorPair::new(0b000001, 0b110101), 6);
        assert_eq!(tr.from[0], Logic::One);
        assert_eq!(tr.from[1], Logic::Zero);
        assert_eq!(tr.to[0], Logic::One);
        assert_eq!(tr.to[2], Logic::One);
        assert_eq!(tr.to[5], Logic::One);
    }
}
