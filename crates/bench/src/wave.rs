//! Waveform export glue: SPICE rawfiles from transistor-level
//! transients and VCD dumps from switch-level runs.
//!
//! Every export here is deterministic — fixed `Date:`/`$date` strings,
//! a uniform sample grid derived from the run configuration, and
//! change lists ordered by `(time, signal)` — so the emitted bytes are
//! a pure function of the design, the vector, and the flags, exactly
//! like every other artifact of the suite.

use mtk_core::hybrid::{spice_transition, SpiceRunConfig};
use mtk_core::sizing::Transition;
use mtk_core::vbsim::VbsimRun;
use mtk_core::CoreError;
use mtk_fe::Design;
use mtk_netlist::expand::SleepImpl;
use mtk_spice::tran::TranResult;
use mtk_wave::rawfile::{RawFile, Variable};
use mtk_wave::vcd::{Vcd, VcdValue};

/// The fixed `Date:`/`$date` text of deterministic exports.
pub const DETERMINISTIC_DATE: &str = "deterministic";

/// Runs one transistor-level transient of the design under the given
/// vector and packs the analog waveforms as a rawfile: `time`, one
/// `v(<output>)` per primary output, `v(vgnd)` and `i(vdd)` when the
/// run produced them — all sampled on the uniform `cfg.dt` grid.
///
/// # Errors
///
/// As [`spice_transition`] (expansion problems, analysis failures, a
/// vector driving an input to `X`).
pub fn raw_from_transition(
    design: &Design,
    tr: &Transition,
    w_over_l: Option<f64>,
    cfg: &SpiceRunConfig,
) -> Result<RawFile, CoreError> {
    let sleep = match w_over_l {
        Some(w) => SleepImpl::Transistor { w_over_l: w },
        None => SleepImpl::AlwaysOn,
    };
    let run = spice_transition(&design.netlist, &design.tech, tr, None, sleep, cfg)?;
    let n = (cfg.t_stop / cfg.dt).round().max(1.0) as usize;
    let times: Vec<f64> = (0..=n).map(|k| k as f64 * cfg.dt).collect();
    let mut variables = vec![Variable::new("time", "time")];
    let mut data = vec![times.clone()];
    for (probe, wave) in design
        .netlist
        .primary_outputs()
        .iter()
        .zip(&run.probe_waveforms)
    {
        let name = &design.netlist.net(*probe).name;
        variables.push(Variable::new(format!("v({name})"), "voltage"));
        data.push(times.iter().map(|&t| wave.value_at(t)).collect());
    }
    if let Some(vgnd) = &run.vgnd {
        variables.push(Variable::new("v(vgnd)", "voltage"));
        data.push(times.iter().map(|&t| vgnd.value_at(t)).collect());
    }
    if let Some(supply) = &run.supply_current {
        variables.push(Variable::new("i(vdd)", "current"));
        data.push(times.iter().map(|&t| supply.value_at(t)).collect());
    }
    Ok(RawFile {
        title: format!("{} transient", design.netlist.name()),
        date: DETERMINISTIC_DATE.into(),
        plotname: "Transient Analysis".into(),
        variables,
        data,
    })
}

/// Packs a raw SPICE transient result (the `mtk import --raw` fallback
/// path, where no gate-level design exists) as a rawfile: the solver's
/// own time points, every recorded node voltage, every branch current.
pub fn raw_from_tran(result: &TranResult, title: &str) -> RawFile {
    let mut variables = vec![Variable::new("time", "time")];
    let mut data = vec![result.time().to_vec()];
    for (k, name) in result.node_names().iter().enumerate() {
        if let Some(series) = result.node_series(k) {
            variables.push(Variable::new(format!("v({name})"), "voltage"));
            data.push(series.to_vec());
        }
    }
    for (k, name) in result.branch_names().iter().enumerate() {
        if let Some(series) = result.branch_series(k) {
            variables.push(Variable::new(format!("i({name})"), "current"));
            data.push(series.to_vec());
        }
    }
    RawFile {
        title: title.into(),
        date: DETERMINISTIC_DATE.into(),
        plotname: "Transient Analysis".into(),
        variables,
        data,
    }
}

/// Digitizes an analog level against the rails: below 45 % of
/// V<sub>dd</sub> is `0`, above 55 % is `1`, the mid band is `x`.
pub fn digitize(v: f64, vdd: f64) -> VcdValue {
    if v < 0.45 * vdd {
        VcdValue::Zero
    } else if v > 0.55 * vdd {
        VcdValue::One
    } else {
        VcdValue::X
    }
}

/// Converts one switch-level run into a VCD dump: every net of the
/// design becomes a 1-bit wire (declaration order = net id order), the
/// settled pre-step levels form the `$dumpvars` block, and each
/// waveform breakpoint that crosses the digitization bands becomes a
/// value change. Times are picoseconds; same-picosecond updates of one
/// signal keep the last value.
pub fn vcd_from_run(design: &Design, run: &VbsimRun) -> Vcd {
    let vdd = design.tech.vdd;
    let nets = design.netlist.nets();
    let signals: Vec<String> = nets.iter().map(|n| n.name.clone()).collect();
    let mut initial = Vec::with_capacity(nets.len());
    let mut changes: Vec<(u64, usize, VcdValue)> = Vec::new();
    for (k, wave) in run.waveforms.iter().enumerate().take(nets.len()) {
        let first = digitize(wave.value_at(0.0), vdd);
        initial.push(first);
        let mut prev = first;
        for &(t, v) in wave.points() {
            let d = digitize(v, vdd);
            if t <= 0.0 {
                prev = d;
                continue;
            }
            if d != prev {
                let t_ps = (t * 1e12).round() as u64;
                match changes.last_mut() {
                    Some(last) if last.0 == t_ps && last.1 == k => last.2 = d,
                    _ => changes.push((t_ps, k, d)),
                }
                prev = d;
            }
        }
    }
    changes.sort_by_key(|&(t, k, _)| (t, k));
    Vcd {
        date: DETERMINISTIC_DATE.into(),
        version: "mtk-wave".into(),
        timescale: "1ps".into(),
        scope: design.netlist.name().to_string(),
        signals,
        initial,
        changes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtk_core::vbsim::{Engine, VbsimOptions};
    use mtk_netlist::cell::CellKind;
    use mtk_netlist::logic::Logic;
    use mtk_netlist::netlist::Netlist;
    use mtk_netlist::tech::Technology;

    fn chain() -> Design {
        let mut nl = Netlist::new("chain");
        let a = nl.add_net("a").unwrap();
        let m = nl.add_net("m").unwrap();
        let y = nl.add_net("y").unwrap();
        nl.mark_primary_input(a).unwrap();
        nl.add_cell("i1", CellKind::Inv, vec![a], m, 1.0).unwrap();
        nl.add_cell("i2", CellKind::Inv, vec![m], y, 1.0).unwrap();
        nl.mark_primary_output(y);
        Design::new(nl, Technology::l07())
    }

    #[test]
    fn spice_transient_exports_a_valid_round_tripping_rawfile() {
        let d = chain();
        let tr = Transition {
            from: vec![Logic::Zero],
            to: vec![Logic::One],
        };
        let raw = raw_from_transition(&d, &tr, Some(10.0), &SpiceRunConfig::window(20e-9)).unwrap();
        raw.check().unwrap();
        assert_eq!(raw.points(), 1001);
        assert!(raw.series("v(y)").is_some());
        assert!(raw.series("v(vgnd)").is_some());
        assert!(raw.series("i(vdd)").is_some());
        let bytes = raw.to_bytes().unwrap();
        let back = RawFile::from_bytes(&bytes).unwrap();
        assert_eq!(back, raw);
        assert_eq!(back.to_bytes().unwrap(), bytes, "byte-exact round trip");
        // The output settles high after a falling-through-rising chain.
        let y = raw.series("v(y)").unwrap();
        assert!(y[raw.points() - 1] > 0.9 * d.tech.vdd, "{}", y[1000]);
    }

    #[test]
    fn vbsim_run_exports_a_validating_vcd() {
        let d = chain();
        let engine = Engine::new(&d.netlist, &d.tech);
        let run = engine
            .run(&[Logic::Zero], &[Logic::One], &VbsimOptions::mtcmos(10.0))
            .unwrap();
        let vcd = vcd_from_run(&d, &run);
        assert_eq!(vcd.signals, ["a", "m", "y"]);
        let text = vcd.render().unwrap();
        let summary = mtk_wave::vcd::validate(&text).unwrap();
        assert_eq!(summary.vars, 3);
        // a rises, m falls, y rises: at least one change per net beyond
        // the initial block.
        assert!(summary.changes >= 6, "{summary:?}");
    }

    #[test]
    fn digitize_bands_are_exclusive() {
        assert_eq!(digitize(0.0, 3.3), VcdValue::Zero);
        assert_eq!(digitize(3.3, 3.3), VcdValue::One);
        assert_eq!(digitize(1.65, 3.3), VcdValue::X);
    }
}
