//! Small statistics used to compare the two engines (Fig 14's
//! "the general trend is correct" claim is quantified as a rank
//! correlation here).

/// Ranks of a slice (average ranks for ties), 1-based.
fn ranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| {
        xs[a]
            .partial_cmp(&xs[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

/// Pearson correlation coefficient of two equal-length samples.
///
/// Returns `NaN` for degenerate inputs (length < 2 or zero variance).
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "samples must have equal length");
    let n = a.len();
    if n < 2 {
        return f64::NAN;
    }
    let ma = a.iter().sum::<f64>() / n as f64;
    let mb = b.iter().sum::<f64>() / n as f64;
    let mut sab = 0.0;
    let mut saa = 0.0;
    let mut sbb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        sab += (x - ma) * (y - mb);
        saa += (x - ma) * (x - ma);
        sbb += (y - mb) * (y - mb);
    }
    sab / (saa * sbb).sqrt()
}

/// Spearman rank correlation of two equal-length samples.
pub fn spearman(a: &[f64], b: &[f64]) -> f64 {
    pearson(&ranks(a), &ranks(b))
}

/// Mean absolute relative error of `est` against `reference`
/// (entries with zero reference are skipped).
pub fn mean_abs_rel_error(est: &[f64], reference: &[f64]) -> f64 {
    assert_eq!(est.len(), reference.len());
    let mut sum = 0.0;
    let mut n = 0usize;
    for (&e, &r) in est.iter().zip(reference) {
        if r != 0.0 {
            sum += ((e - r) / r).abs();
            n += 1;
        }
    }
    if n == 0 {
        f64::NAN
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_line() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = b.iter().map(|x| -x).collect();
        assert!((pearson(&a, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_monotone_nonlinear() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [1.0, 8.0, 27.0, 64.0, 125.0]; // monotone → rank corr 1
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_ties() {
        let a = [1.0, 1.0, 2.0, 3.0];
        let b = [1.0, 1.0, 2.0, 3.0];
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_are_nan() {
        assert!(pearson(&[1.0], &[1.0]).is_nan());
        assert!(pearson(&[1.0, 1.0], &[1.0, 2.0]).is_nan());
        assert!(mean_abs_rel_error(&[], &[]).is_nan());
    }

    #[test]
    fn rel_error() {
        let e = mean_abs_rel_error(&[1.1, 0.9], &[1.0, 1.0]);
        assert!((e - 0.1).abs() < 1e-12);
    }
}
