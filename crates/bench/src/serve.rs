//! The `mtk serve` front-end: a long-lived, hardened TCP line/JSON
//! protocol over the deterministic sizing machinery, backed by the
//! crash-safe persistent result store.
//!
//! # Protocol (DESIGN.md §13)
//!
//! One JSON object per line in each direction. Requests:
//!
//! * `{"cmd":"screen"|"size"|"cluster"|"hybrid","design":"<.mtk text>",
//!   ...}` — run a job. Optional numeric fields: `threads`, `w_over_l`,
//!   `top_k`, `target`, `lo`, `hi`, `stride`, `samples`, `top`,
//!   `clusters`.
//! * `{"cmd":"import","deck":"<SPICE text>"}` — standard-format import:
//!   flatten subcircuits, recognize gates, return canonical `.mtk` (or
//!   `recognized:false` with the reason — the SPICE-only fallback).
//! * `{"cmd":"status"}` — health snapshot: serve counters as a schema-v3
//!   trace report, cache occupancy, store stats, connection gauges.
//! * `{"cmd":"shutdown"}` — begin a graceful drain.
//!
//! Responses (always one line):
//!
//! * `{"status":"ok","cached":<bool>,"result":...,"trace":...}` — job
//!   done; `trace` is the deterministic-mode trace report of the run
//!   that *produced* the result. A cached response replays the stored
//!   bytes, so identical requests get byte-identical `result`+`trace`
//!   whether computed or replayed.
//! * `{"status":"busy"}` — all job slots taken (bounded backpressure:
//!   the server never queues unboundedly; retry).
//! * `{"status":"error","error":"..."}` — malformed/oversized/failed.
//!
//! # Hardening contract
//!
//! Per-connection read *and* write timeouts (a stalled or half-open
//! client costs one `conn_timeouts` tick, never a hung worker), a
//! max-request-size bound (`requests_rejected`), bounded worker
//! backpressure (explicit `busy`), in-flight dedup of identical
//! requests (concurrent duplicates wait for the one execution and
//! replay it), and graceful drain (stop accepting, finish in-flight
//! work, exit cleanly). Every failure path is an `mtk_trace` counter —
//! never an `eprintln!`.
//!
//! The request fingerprint (and store key) excludes `threads`: results
//! are thread-count invariant by the workspace determinism contract, so
//! the same design+options served at any parallelism dedups to one
//! record.

use mtk_core::cluster::{exclusive_partition, size_clusters_for_target};
use mtk_core::health::{FailurePolicy, FaultPlan};
use mtk_core::hybrid::{run_hybrid, HybridOptions, SpiceRunConfig};
use mtk_core::sizing::{screen_vectors_par_quarantined, size_for_target_cached, ScreeningCache};
use mtk_core::vbsim::{Engine, VbsimOptions};
use mtk_fe::Design;
use mtk_store::{Store, StoreStats};
use mtk_trace::json::{parse, JsonValue};
use mtk_trace::{CounterId, CounterSet, PhaseTrace, TraceMode, TraceReport};
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering::Relaxed};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Tag prefix of request-level records in the store, versioned
/// separately from the container: bump when the request fingerprint or
/// payload layout changes so stale records read as misses.
const REQUEST_RECORD_TAG: &[u8; 5] = b"req2:";

/// Knobs of one server instance. `Default` is tuned for tests and the
/// CI smoke; production raises the timeouts and slots.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (read it back from
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Default worker threads per job (a request's `threads` field
    /// overrides; 0 means all cores).
    pub threads: usize,
    /// Maximum concurrently executing jobs; further job requests get an
    /// explicit `busy` instead of queueing.
    pub job_slots: usize,
    /// Per-connection read timeout (bounds stalled/half-open clients).
    pub read_timeout: Duration,
    /// Per-connection write timeout (bounds clients that stop reading).
    pub write_timeout: Duration,
    /// Largest accepted request line, bytes.
    pub max_request_bytes: usize,
    /// Optional store log path; `None` serves without persistence
    /// (in-flight dedup still works, replays are per-process).
    pub store_path: Option<std::path::PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            threads: 1,
            job_slots: 2,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            max_request_bytes: 8 * 1024 * 1024,
            store_path: None,
        }
    }
}

/// One in-flight job other connections can wait on.
#[derive(Default)]
struct Inflight {
    done: Mutex<Option<Result<String, String>>>,
    cv: Condvar,
}

impl Inflight {
    fn publish(&self, outcome: Result<String, String>) {
        *self.done.lock().unwrap() = Some(outcome);
        self.cv.notify_all();
    }

    /// Waits for the leader's outcome (bounded, so a lost leader cannot
    /// wedge a waiter forever).
    fn wait(&self) -> Option<Result<String, String>> {
        let mut done = self.done.lock().unwrap();
        let deadline = Duration::from_secs(600);
        while done.is_none() {
            let (guard, timeout) = self.cv.wait_timeout(done, deadline).unwrap();
            done = guard;
            if timeout.timed_out() {
                break;
            }
        }
        done.clone()
    }
}

/// Shared state behind one server: counters, the screening cache, the
/// persistent store, in-flight dedup, and the drain flag.
pub struct ServerState {
    counters: Mutex<CounterSet>,
    cache: ScreeningCache,
    store: Option<Store>,
    inflight: Mutex<HashMap<Vec<u8>, Arc<Inflight>>>,
    slots_free: Mutex<usize>,
    draining: AtomicBool,
    open_conns: AtomicUsize,
    store_put_errors: AtomicUsize,
    default_threads: usize,
}

impl ServerState {
    fn count(&self, id: CounterId, n: u64) {
        self.counters.lock().unwrap().add(id, n);
    }

    /// Requests a graceful drain: the accept loop closes, in-flight
    /// connections finish, [`Server::run`] returns.
    pub fn request_drain(&self) {
        self.draining.store(true, Relaxed);
    }

    /// True once a drain was requested.
    pub fn draining(&self) -> bool {
        self.draining.load(Relaxed)
    }

    /// A copy of the serve counter set (for post-drain summaries).
    pub fn counter_snapshot(&self) -> CounterSet {
        self.counters.lock().unwrap().clone()
    }

    /// Serves the stored payload for a request key, counting the hit.
    fn store_lookup(&self, key: &[u8]) -> Option<String> {
        let store = self.store.as_ref()?;
        let payload = String::from_utf8(store.get(key)?).ok()?;
        self.count(CounterId::StoreHits, 1);
        Some(payload)
    }
}

/// RAII job slot: acquired before execution, returned on drop.
struct SlotGuard<'a> {
    state: &'a ServerState,
}

impl<'a> SlotGuard<'a> {
    fn try_acquire(state: &'a ServerState) -> Option<SlotGuard<'a>> {
        let mut free = state.slots_free.lock().unwrap();
        if *free == 0 {
            return None;
        }
        *free -= 1;
        Some(SlotGuard { state })
    }
}

impl Drop for SlotGuard<'_> {
    fn drop(&mut self) {
        *self.state.slots_free.lock().unwrap() += 1;
    }
}

/// A bound listener plus its shared state; [`Server::run`] is the
/// accept/drain loop.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
    cfg: ServeConfig,
}

impl Server {
    /// Binds the listener and opens the store (when configured).
    ///
    /// # Errors
    ///
    /// Bind errors, and store open failures mapped to
    /// [`std::io::ErrorKind::InvalidData`] — a corrupt-beyond-recovery
    /// or foreign store file must fail loudly at startup, not serve
    /// wrong bits later.
    pub fn bind(cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let (store, cache) = match &cfg.store_path {
            Some(path) => {
                let open = |p| {
                    Store::open(p)
                        .map_err(|e| std::io::Error::new(ErrorKind::InvalidData, e.to_string()))
                };
                // Two handles on one log: request-level records and the
                // screening cache's leg records share the file, writers
                // serialized by the store's lock.
                (Some(open(path)?), ScreeningCache::with_store(open(path)?))
            }
            None => (None, ScreeningCache::new()),
        };
        let state = Arc::new(ServerState {
            counters: Mutex::new(CounterSet::new()),
            cache,
            store,
            inflight: Mutex::new(HashMap::new()),
            slots_free: Mutex::new(cfg.job_slots),
            draining: AtomicBool::new(false),
            open_conns: AtomicUsize::new(0),
            store_put_errors: AtomicUsize::new(0),
            default_threads: cfg.threads,
        });
        Ok(Server {
            listener,
            state,
            cfg,
        })
    }

    /// The bound address (read the ephemeral port back from here).
    ///
    /// # Errors
    ///
    /// Propagates the socket error.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle to the shared state (drain requests, counter summaries).
    pub fn state(&self) -> Arc<ServerState> {
        Arc::clone(&self.state)
    }

    /// Accepts connections until a drain is requested (by SIGTERM via
    /// [`ServerState::request_drain`] or a `shutdown` request), then
    /// refuses new connections and waits for the open ones to finish.
    ///
    /// # Errors
    ///
    /// Propagates fatal listener errors; per-connection errors are
    /// counters, not failures.
    pub fn run(self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        while !self.state.draining() {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let state = Arc::clone(&self.state);
                    let cfg = self.cfg.clone();
                    state.open_conns.fetch_add(1, Relaxed);
                    std::thread::spawn(move || {
                        handle_conn(&state, stream, &cfg);
                        state.open_conns.fetch_sub(1, Relaxed);
                    });
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        // Drain: the listener drops here (new connections refused); open
        // connections run to completion, bounded by their timeouts.
        drop(self.listener);
        while self.state.open_conns.load(Relaxed) > 0 {
            std::thread::sleep(Duration::from_millis(5));
        }
        Ok(())
    }
}

/// What one read off the wire produced.
enum ReadOutcome {
    Line(String),
    Eof,
    TooLarge,
    Timeout,
    Error,
}

/// Reads newline-terminated requests with a size cap; leftover bytes
/// after a newline stay buffered for the next request on the same
/// connection.
struct LineReader {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl LineReader {
    fn read_line(&mut self, cap: usize) -> ReadOutcome {
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.buf.drain(..=pos).collect();
                return ReadOutcome::Line(String::from_utf8_lossy(&line).into_owned());
            }
            if self.buf.len() > cap {
                return ReadOutcome::TooLarge;
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return ReadOutcome::Eof,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    return ReadOutcome::Timeout
                }
                Err(_) => return ReadOutcome::Error,
            }
        }
    }
}

/// Writes one response line; a timeout counts against the connection.
fn write_line(state: &ServerState, stream: &TcpStream, line: &str) -> bool {
    let mut out = Vec::with_capacity(line.len() + 1);
    out.extend_from_slice(line.as_bytes());
    out.push(b'\n');
    match (&mut (&*stream)).write_all(&out) {
        Ok(()) => true,
        Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
            state.count(CounterId::ConnTimeouts, 1);
            false
        }
        Err(_) => false,
    }
}

/// One connection's request loop.
fn handle_conn(state: &Arc<ServerState>, stream: TcpStream, cfg: &ServeConfig) {
    let _ = stream.set_read_timeout(Some(cfg.read_timeout));
    let _ = stream.set_write_timeout(Some(cfg.write_timeout));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = LineReader {
        stream,
        buf: Vec::new(),
    };
    loop {
        match reader.read_line(cfg.max_request_bytes) {
            ReadOutcome::Line(line) => {
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                let (response, close) = handle_request(state, line);
                if !write_line(state, &write_half, &response) || close {
                    break;
                }
            }
            ReadOutcome::TooLarge => {
                state.count(CounterId::RequestsRejected, 1);
                let _ = write_line(state, &write_half, &error_line("request too large"));
                break;
            }
            ReadOutcome::Timeout => {
                state.count(CounterId::ConnTimeouts, 1);
                break;
            }
            ReadOutcome::Eof | ReadOutcome::Error => break,
        }
    }
}

/// Routes one request line to its handler; the bool asks the connection
/// loop to close afterwards.
fn handle_request(state: &Arc<ServerState>, line: &str) -> (String, bool) {
    let request = match parse(line) {
        Ok(v) => v,
        Err(e) => {
            state.count(CounterId::RequestsRejected, 1);
            return (error_line(&format!("malformed request: {e}")), false);
        }
    };
    match request.get("cmd").and_then(JsonValue::as_str) {
        Some("status") => (status_line(state), false),
        Some("shutdown") => {
            state.request_drain();
            (r#"{"status":"ok","draining":true}"#.to_string(), true)
        }
        Some(cmd @ ("screen" | "size" | "cluster" | "hybrid")) => {
            match JobSpec::from_request(cmd, &request, state.default_threads) {
                Ok(spec) => (handle_job(state, &spec), false),
                Err(msg) => {
                    state.count(CounterId::RequestsRejected, 1);
                    (error_line(&msg), false)
                }
            }
        }
        Some("import") => (handle_import(state, &request), false),
        _ => {
            state.count(CounterId::RequestsRejected, 1);
            (
                error_line("unknown cmd (want import|screen|size|cluster|hybrid|status|shutdown)"),
                false,
            )
        }
    }
}

/// `{"cmd":"import","deck":"<SPICE text>"}` — run the standard-format
/// importer on a deck: subcircuits are flattened, gates recovered by
/// structural recognition. Responds
/// `{"status":"ok","recognized":true,"mtk":"<canonical .mtk>","gates":N}`
/// on success and `{"status":"ok","recognized":false,"reason":"…"}`
/// when the deck parses but is not a recognizable gate netlist (the
/// SPICE-only fallback — not an error). Deck parse failures and a
/// missing `deck` field are errors and count as rejected requests.
fn handle_import(state: &Arc<ServerState>, request: &JsonValue) -> String {
    let Some(text) = request.get("deck").and_then(JsonValue::as_str) else {
        state.count(CounterId::RequestsRejected, 1);
        return error_line("missing `deck` (the SPICE netlist text)");
    };
    let tech = mtk_netlist::tech::Technology::l07();
    let imported = match mtk_fe::interop::import_deck(text, "<request>", &tech) {
        Ok(i) => i,
        Err(e) => {
            state.count(CounterId::RequestsRejected, 1);
            return error_line(&e.to_string());
        }
    };
    let stats = imported.stats();
    state.count(CounterId::ImportCards, stats.deck.cards as u64);
    state.count(
        CounterId::ImportSubcktsFlattened,
        stats.deck.instances_flattened as u64,
    );
    state.count(
        CounterId::ImportGatesRecognized,
        stats.cells_recognized as u64,
    );
    state.count(CounterId::ImportFallbacks, stats.fallback as u64);
    match imported {
        mtk_fe::interop::Imported::Design { design, stats, .. } => JsonValue::Object(vec![
            ("status".into(), JsonValue::String("ok".into())),
            ("recognized".into(), JsonValue::Bool(true)),
            ("mtk".into(), JsonValue::String(design.to_mtk())),
            (
                "gates".into(),
                JsonValue::Number(stats.cells_recognized as f64),
            ),
        ])
        .to_compact(),
        mtk_fe::interop::Imported::SpiceOnly { reason, .. } => JsonValue::Object(vec![
            ("status".into(), JsonValue::String("ok".into())),
            ("recognized".into(), JsonValue::Bool(false)),
            ("reason".into(), JsonValue::String(reason)),
        ])
        .to_compact(),
    }
}

/// Store tier → in-flight dedup → bounded execution, in that order.
fn handle_job(state: &Arc<ServerState>, spec: &JobSpec) -> String {
    if state.draining() {
        state.count(CounterId::RequestsRejected, 1);
        return r#"{"status":"busy"}"#.to_string();
    }
    let key = spec.store_key();
    if let Some(payload) = state.store_lookup(&key) {
        return ok_line(true, &payload);
    }
    enum Role<'a> {
        Leader(SlotGuard<'a>, Arc<Inflight>),
        Waiter(Arc<Inflight>),
    }
    let role = {
        let mut map = state.inflight.lock().unwrap();
        if let Some(flight) = map.get(&key) {
            Role::Waiter(Arc::clone(flight))
        } else {
            match SlotGuard::try_acquire(state) {
                None => {
                    state.count(CounterId::RequestsRejected, 1);
                    return r#"{"status":"busy"}"#.to_string();
                }
                Some(guard) => {
                    let flight = Arc::new(Inflight::default());
                    map.insert(key.clone(), Arc::clone(&flight));
                    Role::Leader(guard, flight)
                }
            }
        }
    };
    match role {
        Role::Waiter(flight) => {
            let outcome = flight.wait();
            // Prefer the committed store record so the replay serves the
            // exact stored bytes (and counts as the store hit it is).
            if let Some(payload) = state.store_lookup(&key) {
                return ok_line(true, &payload);
            }
            match outcome {
                Some(Ok(payload)) => ok_line(true, &payload),
                Some(Err(msg)) => error_line(&msg),
                None => error_line("deduplicated request timed out"),
            }
        }
        Role::Leader(guard, flight) => {
            // Close the lookup→insert race: a previous leader may have
            // committed between our store miss and winning the in-flight
            // slot. Re-checking here keeps "identical requests run one
            // simulation" exact, not just probable.
            if let Some(payload) = state.store_lookup(&key) {
                state.inflight.lock().unwrap().remove(&key);
                flight.publish(Ok(payload.clone()));
                drop(guard);
                return ok_line(true, &payload);
            }
            if state.store.is_some() {
                state.count(CounterId::StoreMisses, 1);
            }
            let outcome = execute(state, spec);
            if let (Ok(payload), Some(store)) = (&outcome, &state.store) {
                if store.put(&key, payload.as_bytes()).is_err() {
                    state.store_put_errors.fetch_add(1, Relaxed);
                }
            }
            state.inflight.lock().unwrap().remove(&key);
            flight.publish(outcome.clone());
            drop(guard);
            match outcome {
                Ok(payload) => ok_line(false, &payload),
                Err(msg) => error_line(&msg),
            }
        }
    }
}

/// One validated job: canonicalized design plus every option that keys
/// the result. `threads` is execution-only and excluded from the key.
struct JobSpec {
    cmd: &'static str,
    design: Design,
    canonical: String,
    threads: usize,
    w_over_l: f64,
    top_k: usize,
    target: f64,
    lo: f64,
    hi: f64,
    stride: usize,
    samples: usize,
    top: usize,
    clusters: usize,
}

fn field_f64(req: &JsonValue, key: &str, default: f64) -> Result<f64, String> {
    match req.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_f64()
            .filter(|x| x.is_finite())
            .ok_or_else(|| format!("field `{key}` must be a finite number")),
    }
}

fn field_usize(req: &JsonValue, key: &str, default: usize) -> Result<usize, String> {
    match req.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .map(|x| x as usize)
            .ok_or_else(|| format!("field `{key}` must be a non-negative integer")),
    }
}

impl JobSpec {
    fn from_request(cmd: &str, req: &JsonValue, default_threads: usize) -> Result<JobSpec, String> {
        let cmd = match cmd {
            "screen" => "screen",
            "size" => "size",
            "cluster" => "cluster",
            _ => "hybrid",
        };
        let text = req
            .get("design")
            .and_then(JsonValue::as_str)
            .ok_or("missing `design` (the .mtk netlist text)")?;
        let design = mtk_fe::parse_str(text, "<request>").map_err(|e| e.to_string())?;
        let canonical = design.to_mtk();
        Ok(JobSpec {
            cmd,
            design,
            canonical,
            threads: field_usize(req, "threads", default_threads)?,
            w_over_l: field_f64(req, "w_over_l", 10.0)?,
            top_k: field_usize(req, "top_k", 10)?,
            target: field_f64(req, "target", 0.05)?,
            lo: field_f64(req, "lo", 1.0)?,
            hi: field_f64(req, "hi", 2000.0)?,
            stride: field_usize(req, "stride", 1)?,
            samples: field_usize(req, "samples", 256)?,
            top: field_usize(req, "top", 10)?,
            clusters: field_usize(req, "clusters", 8)?.max(1),
        })
    }

    /// Content-addressed request fingerprint: tag + compact JSON of the
    /// canonical design and every result-determining option, `threads`
    /// deliberately excluded (results are thread-count invariant).
    fn store_key(&self) -> Vec<u8> {
        let obj = JsonValue::Object(vec![
            ("cmd".into(), JsonValue::String(self.cmd.into())),
            ("design".into(), JsonValue::String(self.canonical.clone())),
            ("w_over_l".into(), JsonValue::Number(self.w_over_l)),
            ("top_k".into(), JsonValue::Number(self.top_k as f64)),
            ("target".into(), JsonValue::Number(self.target)),
            ("lo".into(), JsonValue::Number(self.lo)),
            ("hi".into(), JsonValue::Number(self.hi)),
            ("stride".into(), JsonValue::Number(self.stride as f64)),
            ("samples".into(), JsonValue::Number(self.samples as f64)),
            ("top".into(), JsonValue::Number(self.top as f64)),
            ("clusters".into(), JsonValue::Number(self.clusters as f64)),
        ]);
        let mut key = REQUEST_RECORD_TAG.to_vec();
        key.extend_from_slice(obj.to_compact().as_bytes());
        key
    }
}

/// Runs one job and serializes its payload:
/// `{"result":...,"trace":<deterministic trace>}` — the unit the store
/// persists and identical requests replay byte-for-byte.
fn execute(state: &ServerState, spec: &JobSpec) -> Result<String, String> {
    let (transitions, _label) = crate::design_transitions(&spec.design, spec.stride, spec.samples);
    let policy = FailurePolicy::quarantine(32);
    let (result, trace) = match spec.cmd {
        "screen" => {
            let (screened, report) = screen_vectors_par_quarantined(
                &spec.design.netlist,
                &spec.design.tech,
                &transitions,
                None,
                spec.w_over_l,
                &VbsimOptions::default(),
                spec.threads,
                policy,
                &FaultPlan::none(),
            )
            .map_err(|e| e.to_string())?;
            let mut trace = TraceReport::new("mtk_screen");
            trace.push_phase(report.to_phase("screen"));
            let top: Vec<JsonValue> = screened
                .iter()
                .take(spec.top)
                .map(|s| {
                    JsonValue::Object(vec![
                        ("index".into(), JsonValue::Number(s.index as f64)),
                        (
                            "degradation".into(),
                            JsonValue::Number(s.delays.degradation()),
                        ),
                    ])
                })
                .collect();
            let result = JsonValue::Object(vec![
                (
                    "transitions".into(),
                    JsonValue::Number(transitions.len() as f64),
                ),
                ("switching".into(), JsonValue::Number(screened.len() as f64)),
                ("top".into(), JsonValue::Array(top)),
            ]);
            (result, trace)
        }
        "size" => {
            let engine = Engine::new(&spec.design.netlist, &spec.design.tech);
            let (w_over_l, health) = size_for_target_cached(
                &engine,
                &transitions,
                None,
                spec.target,
                (spec.lo, spec.hi),
                &VbsimOptions::default(),
                &state.cache,
            )
            .map_err(|e| e.to_string())?;
            let mut trace = TraceReport::new("mtk_size");
            let mut phase = PhaseTrace::new("size");
            phase.counters = health.counters();
            trace.push_phase(phase);
            let result = JsonValue::Object(vec![("w_over_l".into(), JsonValue::Number(w_over_l))]);
            (result, trace)
        }
        "cluster" => {
            let partition = exclusive_partition(&spec.design.netlist, &transitions, spec.clusters)
                .map_err(|e| e.to_string())?;
            let (sizing, report) = size_clusters_for_target(
                &spec.design.netlist,
                &spec.design.tech,
                &transitions,
                None,
                &partition,
                spec.target,
                (spec.lo, spec.hi),
                &VbsimOptions::default(),
                spec.threads,
                policy,
                &FaultPlan::none(),
                state.store.as_ref(),
            )
            .map_err(|e| e.to_string())?;
            let mut trace = TraceReport::new("mtk_cluster");
            trace.push_phase(report.to_phase("cluster", &sizing));
            let widths: Vec<JsonValue> = sizing
                .w_over_ls
                .iter()
                .map(|&w| JsonValue::Number(w))
                .collect();
            let result = JsonValue::Object(vec![
                (
                    "clusters".into(),
                    JsonValue::Number(report.n_clusters as f64),
                ),
                (
                    "conflict_edges".into(),
                    JsonValue::Number(report.conflict_edges as f64),
                ),
                ("folded".into(), JsonValue::Number(report.folded as f64)),
                ("w_over_ls".into(), JsonValue::Array(widths)),
                (
                    "clustered_width".into(),
                    JsonValue::Number(sizing.clustered_width),
                ),
                (
                    "single_w_over_l".into(),
                    sizing
                        .single_w_over_l
                        .map_or(JsonValue::Null, JsonValue::Number),
                ),
                ("fell_back".into(), JsonValue::Bool(sizing.fell_back)),
                (
                    "total_width".into(),
                    JsonValue::Number(sizing.total_width()),
                ),
            ]);
            (result, trace)
        }
        _ => {
            let opts = HybridOptions {
                top_k: spec.top_k,
                threads: spec.threads,
                policy,
                ..HybridOptions::at_size(spec.w_over_l, SpiceRunConfig::window(80e-9))
            };
            let report = run_hybrid(&spec.design.netlist, &spec.design.tech, &transitions, &opts)
                .map_err(|e| e.to_string())?;
            let findings: Vec<JsonValue> = report
                .findings
                .iter()
                .map(|f| {
                    JsonValue::Object(vec![
                        ("index".into(), JsonValue::Number(f.index as f64)),
                        (
                            "screened".into(),
                            JsonValue::Number(f.screened.degradation()),
                        ),
                        (
                            "verified".into(),
                            f.verified
                                .map_or(JsonValue::Null, |v| JsonValue::Number(v.degradation())),
                        ),
                        (
                            "delta".into(),
                            f.delta.map_or(JsonValue::Null, JsonValue::Number),
                        ),
                    ])
                })
                .collect();
            let result = JsonValue::Object(vec![
                (
                    "transitions".into(),
                    JsonValue::Number(transitions.len() as f64),
                ),
                (
                    "survivors".into(),
                    JsonValue::Number(report.survivors as f64),
                ),
                ("findings".into(), JsonValue::Array(findings)),
            ]);
            (result, report.to_trace("mtk_hybrid"))
        }
    };
    let trace_value = parse(&trace.to_json(TraceMode::Deterministic))
        .map_err(|e| format!("internal: trace serialization failed: {e}"))?;
    let payload = JsonValue::Object(vec![
        ("result".into(), result),
        ("trace".into(), trace_value),
    ]);
    Ok(payload.to_compact())
}

/// Splices a stored/computed payload object into a response line without
/// re-serializing it — replays stay byte-identical by construction.
fn ok_line(cached: bool, payload: &str) -> String {
    debug_assert!(payload.starts_with('{') && payload.len() > 1);
    format!("{{\"status\":\"ok\",\"cached\":{cached},{}", &payload[1..])
}

fn error_line(msg: &str) -> String {
    JsonValue::Object(vec![
        ("status".into(), JsonValue::String("error".into())),
        ("error".into(), JsonValue::String(msg.into())),
    ])
    .to_compact()
}

fn store_stats_value(stats: StoreStats) -> JsonValue {
    JsonValue::Object(vec![
        (
            "live_records".into(),
            JsonValue::Number(stats.live_records as f64),
        ),
        (
            "dead_records".into(),
            JsonValue::Number(stats.dead_records as f64),
        ),
        (
            "conflicting_records".into(),
            JsonValue::Number(stats.conflicting_records as f64),
        ),
        (
            "corrupt_records".into(),
            JsonValue::Number(stats.corrupt_records as f64),
        ),
        (
            "log_bytes".into(),
            JsonValue::Number(stats.log_bytes as f64),
        ),
    ])
}

/// The status response: connection gauges, cache occupancy
/// ([`ScreeningCache::snapshot`]), store health, and the serve counters
/// as a validating schema-v3 trace report.
fn status_line(state: &ServerState) -> String {
    let mut counters = state.counter_snapshot();
    if let Some(store) = &state.store {
        counters.add(
            CounterId::StoreCorruptRecords,
            store.stats().corrupt_records as u64,
        );
    }
    let mut report = TraceReport::new("mtk_serve");
    let mut phase = PhaseTrace::new("serve");
    phase.counters = counters;
    report.push_phase(phase);
    let trace = parse(&report.to_json(TraceMode::Deterministic)).unwrap_or(JsonValue::Null);
    let snap = state.cache.snapshot();
    let cache = JsonValue::Object(vec![
        ("legs".into(), JsonValue::Number(snap.legs as f64)),
        ("hits".into(), JsonValue::Number(snap.hits as f64)),
        ("misses".into(), JsonValue::Number(snap.misses as f64)),
        (
            "store_hits".into(),
            JsonValue::Number(snap.store_hits as f64),
        ),
        (
            "store_misses".into(),
            JsonValue::Number(snap.store_misses as f64),
        ),
        (
            "store_put_errors".into(),
            JsonValue::Number(snap.store_put_errors as f64),
        ),
    ]);
    let server = JsonValue::Object(vec![
        ("draining".into(), JsonValue::Bool(state.draining())),
        (
            "open_connections".into(),
            JsonValue::Number(state.open_conns.load(Relaxed) as f64),
        ),
        (
            "in_flight".into(),
            JsonValue::Number(state.inflight.lock().unwrap().len() as f64),
        ),
        (
            "job_slots_free".into(),
            JsonValue::Number(*state.slots_free.lock().unwrap() as f64),
        ),
        (
            "store_put_errors".into(),
            JsonValue::Number(state.store_put_errors.load(Relaxed) as f64),
        ),
        (
            "store".into(),
            state
                .store
                .as_ref()
                .map_or(JsonValue::Null, |s| store_stats_value(s.stats())),
        ),
        ("cache".into(), cache),
    ]);
    JsonValue::Object(vec![
        ("status".into(), JsonValue::String("ok".into())),
        ("server".into(), server),
        ("trace".into(), trace),
    ])
    .to_compact()
}

/// A minimal blocking client for tests, the `mtk client` subcommand,
/// and the CI smoke: one request line out, one response line back.
///
/// # Errors
///
/// Connection and i/o errors; a response without a newline within the
/// timeout is an error (the protocol is line-framed).
pub fn request(addr: &str, line: &str, timeout: Duration) -> std::io::Result<String> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut out = Vec::with_capacity(line.len() + 1);
    out.extend_from_slice(line.as_bytes());
    out.push(b'\n');
    (&mut (&stream)).write_all(&out)?;
    let mut reader = LineReader {
        stream,
        buf: Vec::new(),
    };
    match reader.read_line(64 * 1024 * 1024) {
        ReadOutcome::Line(l) => Ok(l.trim_end().to_string()),
        ReadOutcome::Eof => Err(std::io::Error::new(
            ErrorKind::UnexpectedEof,
            "server closed the connection before responding",
        )),
        ReadOutcome::Timeout => Err(std::io::Error::new(
            ErrorKind::TimedOut,
            "timed out waiting for the response line",
        )),
        ReadOutcome::TooLarge | ReadOutcome::Error => Err(std::io::Error::new(
            ErrorKind::InvalidData,
            "unreadable response",
        )),
    }
}
