//! IEEE-1364 value-change-dump (VCD) writer, plus a small grammar
//! validator so tests and CI can check an emitted file without an
//! external viewer.
//!
//! The writer emits the minimal single-scope profile every VCD viewer
//! understands: `$date`/`$version`/`$timescale` headers, one
//! `$scope module … $end` with 1-bit `$var wire` declarations,
//! `$enddefinitions`, a `$dumpvars` block with every signal's initial
//! value, then strictly increasing `#time` sections of value changes.

use crate::{Result, WaveError};

/// A scalar VCD value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VcdValue {
    /// Logic low.
    Zero,
    /// Logic high.
    One,
    /// Unknown / mid-swing.
    X,
}

impl VcdValue {
    fn ch(self) -> char {
        match self {
            VcdValue::Zero => '0',
            VcdValue::One => '1',
            VcdValue::X => 'x',
        }
    }
}

/// An in-memory single-scope VCD: header strings, signal names, initial
/// values, and a time-ordered change list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Vcd {
    /// `$date` text. Deterministic exports use a fixed string.
    pub date: String,
    /// `$version` text.
    pub version: String,
    /// `$timescale` text, e.g. `1ps`.
    pub timescale: String,
    /// `$scope module <scope>` name.
    pub scope: String,
    /// 1-bit wire names, declaration order fixes the id codes.
    pub signals: Vec<String>,
    /// Initial value per signal (the `$dumpvars` block), parallel with
    /// `signals`.
    pub initial: Vec<VcdValue>,
    /// `(time, signal index, value)` changes; must be sorted by time.
    pub changes: Vec<(u64, usize, VcdValue)>,
}

/// Identifier code for signal `n`: base-94 over the printable ASCII
/// range `!`..`~`, the standard VCD shorthand alphabet.
fn id_code(mut n: usize) -> String {
    let mut s = String::new();
    loop {
        s.push((b'!' + (n % 94) as u8) as char);
        n /= 94;
        if n == 0 {
            break;
        }
    }
    s
}

impl Vcd {
    /// Renders the dump as VCD text.
    ///
    /// # Errors
    ///
    /// [`WaveError::Invalid`] for empty/multi-token signal names, an
    /// `initial` list of the wrong length, an out-of-range signal index,
    /// or a change list that is not sorted by time.
    pub fn render(&self) -> Result<String> {
        if self.signals.is_empty() {
            return Err(WaveError::Invalid("no signals".into()));
        }
        if self.initial.len() != self.signals.len() {
            return Err(WaveError::Invalid(format!(
                "{} initial values for {} signals",
                self.initial.len(),
                self.signals.len()
            )));
        }
        for field in [&self.date, &self.version, &self.timescale, &self.scope] {
            if field.contains('\n') || field.contains("$end") {
                return Err(WaveError::Invalid(format!("bad header text '{field}'")));
            }
        }
        for name in &self.signals {
            if name.is_empty() || name.chars().any(|c| c.is_whitespace()) {
                return Err(WaveError::Invalid(format!("bad signal name '{name}'")));
            }
        }
        let mut out = String::new();
        out.push_str(&format!("$date {} $end\n", self.date));
        out.push_str(&format!("$version {} $end\n", self.version));
        out.push_str(&format!("$timescale {} $end\n", self.timescale));
        out.push_str(&format!("$scope module {} $end\n", self.scope));
        for (k, name) in self.signals.iter().enumerate() {
            out.push_str(&format!("$var wire 1 {} {} $end\n", id_code(k), name));
        }
        out.push_str("$upscope $end\n");
        out.push_str("$enddefinitions $end\n");
        out.push_str("$dumpvars\n");
        for (k, v) in self.initial.iter().enumerate() {
            out.push(v.ch());
            out.push_str(&id_code(k));
            out.push('\n');
        }
        out.push_str("$end\n");
        let mut last_time: Option<u64> = None;
        for &(t, k, v) in &self.changes {
            if k >= self.signals.len() {
                return Err(WaveError::Invalid(format!(
                    "change references signal #{k}, only {} declared",
                    self.signals.len()
                )));
            }
            if last_time.is_some_and(|lt| t < lt) {
                return Err(WaveError::Invalid(format!(
                    "changes not sorted by time at #{t}"
                )));
            }
            if last_time != Some(t) {
                out.push_str(&format!("#{t}\n"));
                last_time = Some(t);
            }
            out.push(v.ch());
            out.push_str(&id_code(k));
            out.push('\n');
        }
        Ok(out)
    }
}

/// Summary returned by [`validate`]: what the grammar check saw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VcdSummary {
    /// Declared `$var` count.
    pub vars: usize,
    /// Value-change lines after `$enddefinitions` (including the
    /// `$dumpvars` block).
    pub changes: usize,
    /// Distinct `#time` sections.
    pub times: usize,
}

/// Validates VCD text against the viewer grammar: header keywords, one
/// scope of `$var … $end` declarations closed by `$enddefinitions`,
/// then only `#time` and scalar value-change lines referencing declared
/// id codes.
///
/// # Errors
///
/// [`WaveError::Parse`] naming the first offending line.
pub fn validate(text: &str) -> Result<VcdSummary> {
    let mut ids: Vec<String> = Vec::new();
    let mut lines = text.lines();
    let mut saw_enddefs = false;
    let mut saw_timescale = false;
    for line in lines.by_ref() {
        let t = line.trim();
        if t.is_empty() {
            continue;
        }
        if !t.starts_with('$') {
            return Err(WaveError::Parse(format!(
                "non-declaration line before $enddefinitions: '{t}'"
            )));
        }
        let mut toks = t.split_whitespace();
        let kw = toks.next().unwrap_or("");
        let body: Vec<&str> = toks.collect();
        match kw {
            "$date" | "$version" | "$comment" | "$scope" | "$upscope" => {
                if body.last() != Some(&"$end") {
                    return Err(WaveError::Parse(format!("'{kw}' not closed by $end")));
                }
            }
            "$timescale" => {
                if body.last() != Some(&"$end") {
                    return Err(WaveError::Parse("'$timescale' not closed by $end".into()));
                }
                saw_timescale = true;
            }
            "$var" => {
                // $var <type> <width> <id> <name> $end
                if body.len() != 5 || body[4] != "$end" {
                    return Err(WaveError::Parse(format!("bad $var line '{t}'")));
                }
                ids.push(body[2].to_string());
            }
            "$enddefinitions" => {
                if body.last() != Some(&"$end") {
                    return Err(WaveError::Parse(
                        "'$enddefinitions' not closed by $end".into(),
                    ));
                }
                saw_enddefs = true;
                break;
            }
            other => {
                return Err(WaveError::Parse(format!(
                    "unknown declaration keyword '{other}'"
                )));
            }
        }
    }
    if !saw_enddefs {
        return Err(WaveError::Parse("no $enddefinitions section".into()));
    }
    if !saw_timescale {
        return Err(WaveError::Parse("no $timescale declaration".into()));
    }
    if ids.is_empty() {
        return Err(WaveError::Parse("no $var declarations".into()));
    }
    let mut changes = 0usize;
    let mut times = 0usize;
    let mut last_time: Option<u64> = None;
    for line in lines {
        let t = line.trim();
        if t.is_empty() || t == "$dumpvars" || t == "$end" {
            continue;
        }
        if let Some(stamp) = t.strip_prefix('#') {
            let stamp: u64 = stamp
                .parse()
                .map_err(|_| WaveError::Parse(format!("bad timestamp '{t}'")))?;
            if last_time.is_some_and(|lt| stamp <= lt) {
                return Err(WaveError::Parse(format!(
                    "timestamps not strictly increasing at '{t}'"
                )));
            }
            last_time = Some(stamp);
            times += 1;
            continue;
        }
        if !t.is_char_boundary(1) {
            return Err(WaveError::Parse(format!("bad value-change line '{t}'")));
        }
        let (val, id) = t.split_at(1);
        if !matches!(val, "0" | "1" | "x" | "X" | "z" | "Z") {
            return Err(WaveError::Parse(format!("bad value-change line '{t}'")));
        }
        if !ids.iter().any(|i| i == id) {
            return Err(WaveError::Parse(format!(
                "value change for undeclared id '{id}'"
            )));
        }
        changes += 1;
    }
    Ok(VcdSummary {
        vars: ids.len(),
        changes,
        times,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vcd {
        Vcd {
            date: "deterministic".into(),
            version: "mtk-wave".into(),
            timescale: "1ps".into(),
            scope: "top".into(),
            signals: vec!["a".into(), "b".into(), "sum".into()],
            initial: vec![VcdValue::Zero, VcdValue::One, VcdValue::X],
            changes: vec![
                (10, 0, VcdValue::One),
                (10, 2, VcdValue::Zero),
                (25, 1, VcdValue::Zero),
                (40, 2, VcdValue::One),
            ],
        }
    }

    #[test]
    fn rendered_vcd_passes_the_grammar_validator() {
        let text = sample().render().unwrap();
        let summary = validate(&text).unwrap();
        assert_eq!(summary.vars, 3);
        // 3 initial values + 4 changes.
        assert_eq!(summary.changes, 7);
        assert_eq!(summary.times, 3);
    }

    #[test]
    fn rendered_sections_are_in_viewer_order() {
        let text = sample().render().unwrap();
        let ts = text.find("$timescale 1ps $end").unwrap();
        let scope = text.find("$scope module top $end").unwrap();
        let var = text.find("$var wire 1 ! a $end").unwrap();
        let endd = text.find("$enddefinitions $end").unwrap();
        let dump = text.find("$dumpvars").unwrap();
        let t10 = text.find("#10").unwrap();
        assert!(ts < scope && scope < var && var < endd && endd < dump && dump < t10);
        // Same-time changes share one #10 section.
        assert_eq!(text.matches("#10").count(), 1);
        assert!(text.contains("1!\n"), "{text}");
        assert!(text.contains("0#\n"), "signal 2 has id '#': {text}");
    }

    #[test]
    fn id_codes_cover_the_printable_alphabet() {
        assert_eq!(id_code(0), "!");
        assert_eq!(id_code(93), "~");
        assert_eq!(id_code(94), "!\"");
        assert_eq!(id_code(94 * 94), "!!\"");
    }

    #[test]
    fn render_rejects_malformed_dumps() {
        let mut v = sample();
        v.changes[0].0 = 99; // now unsorted
        assert!(matches!(v.render(), Err(WaveError::Invalid(_))));
        let mut v = sample();
        v.changes[0].1 = 7;
        assert!(matches!(v.render(), Err(WaveError::Invalid(_))));
        let mut v = sample();
        v.signals[0] = "two words".into();
        assert!(matches!(v.render(), Err(WaveError::Invalid(_))));
        let mut v = sample();
        v.initial.pop();
        assert!(matches!(v.render(), Err(WaveError::Invalid(_))));
    }

    #[test]
    fn validator_rejects_broken_grammar() {
        assert!(validate("").is_err());
        assert!(validate("$enddefinitions $end\n").is_err());
        let good = sample().render().unwrap();
        let no_ts = good.replace("$timescale 1ps $end\n", "");
        assert!(validate(&no_ts).is_err());
        let bad_id = good.replace("1!\n", "1@@@\n");
        assert!(validate(&bad_id).is_err());
        let bad_stamp = good.replace("#25", "#9");
        assert!(validate(&bad_stamp).is_err());
    }
}
