//! Binary SPICE rawfile writer and reader.
//!
//! The format is the spice3/ngspice interchange shape: an ASCII header
//! (`Title:`, `Date:`, `Plotname:`, `Flags: real`, `No. Variables:`,
//! `No. Points:`, a tab-indented `Variables:` table) terminated by a
//! `Binary:` line, followed by `points × variables` little-endian
//! `f64` samples in point-major order.
//!
//! The writer emits one canonical byte form and the reader accepts
//! exactly the header fields the writer produces (unknown header lines
//! are rejected, not skipped), so write → read → write is byte-exact —
//! the round-trip contract CI checks with our own reader after every
//! export.

use crate::{Result, WaveError};

/// One column of the rawfile: a signal name plus its kind label
/// (`time`, `voltage`, `current`, …) as shown in the `Variables:`
/// table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Variable {
    /// Signal name, e.g. `v(out)` or `time`.
    pub name: String,
    /// Kind label, e.g. `time`, `voltage`, `current`.
    pub kind: String,
}

impl Variable {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, kind: impl Into<String>) -> Self {
        Variable {
            name: name.into(),
            kind: kind.into(),
        }
    }
}

/// An in-memory rawfile: header fields plus one sample series per
/// variable (series-major; [`RawFile::to_bytes`] interleaves into the
/// on-disk point-major order).
#[derive(Debug, Clone, PartialEq)]
pub struct RawFile {
    /// `Title:` header line (single line, no tabs/newlines).
    pub title: String,
    /// `Date:` header line. Deterministic exports use a fixed string —
    /// nothing in this crate reads a clock.
    pub date: String,
    /// `Plotname:` header line, conventionally `Transient Analysis`.
    pub plotname: String,
    /// The columns, first conventionally the time axis.
    pub variables: Vec<Variable>,
    /// `data[v][p]`: sample `p` of variable `v`. All series must share
    /// one length.
    pub data: Vec<Vec<f64>>,
}

impl RawFile {
    /// Number of points per series (0 for an empty file).
    pub fn points(&self) -> usize {
        self.data.first().map_or(0, Vec::len)
    }

    /// The series recorded for `name`, if present.
    pub fn series(&self, name: &str) -> Option<&[f64]> {
        let k = self.variables.iter().position(|v| v.name == name)?;
        self.data.get(k).map(Vec::as_slice)
    }

    /// Validates the file shape: at least one variable, single-token
    /// variable names, uniform series lengths, header text free of
    /// tabs/newlines. [`RawFile::to_bytes`] runs this first.
    ///
    /// # Errors
    ///
    /// [`WaveError::Invalid`] naming the first violation.
    pub fn check(&self) -> Result<()> {
        if self.variables.is_empty() {
            return Err(WaveError::Invalid("no variables".into()));
        }
        if self.variables.len() != self.data.len() {
            return Err(WaveError::Invalid(format!(
                "{} variables but {} data series",
                self.variables.len(),
                self.data.len()
            )));
        }
        let points = self.points();
        for (k, series) in self.data.iter().enumerate() {
            if series.len() != points {
                return Err(WaveError::Invalid(format!(
                    "series '{}' has {} points, expected {points}",
                    self.variables[k].name,
                    series.len()
                )));
            }
        }
        for field in [&self.title, &self.date, &self.plotname] {
            if field.contains('\n') || field.contains('\t') {
                return Err(WaveError::Invalid(format!(
                    "header field contains tab/newline: '{field}'"
                )));
            }
        }
        for v in &self.variables {
            if v.name.is_empty()
                || [&v.name, &v.kind]
                    .iter()
                    .any(|s| s.contains('\n') || s.contains('\t') || s.contains(' '))
            {
                return Err(WaveError::Invalid(format!(
                    "variable '{}'/'{}' must be non-empty, single-token",
                    v.name, v.kind
                )));
            }
        }
        Ok(())
    }

    /// Serializes to the canonical binary rawfile byte stream.
    ///
    /// # Errors
    ///
    /// [`WaveError::Invalid`] when the description is malformed (series
    /// length mismatch, empty variable list, multi-line header field).
    pub fn to_bytes(&self) -> Result<Vec<u8>> {
        self.check()?;
        let points = self.points();
        let mut out = Vec::new();
        out.extend_from_slice(format!("Title: {}\n", self.title).as_bytes());
        out.extend_from_slice(format!("Date: {}\n", self.date).as_bytes());
        out.extend_from_slice(format!("Plotname: {}\n", self.plotname).as_bytes());
        out.extend_from_slice(b"Flags: real\n");
        out.extend_from_slice(format!("No. Variables: {}\n", self.variables.len()).as_bytes());
        out.extend_from_slice(format!("No. Points: {points}\n").as_bytes());
        out.extend_from_slice(b"Variables:\n");
        for (k, v) in self.variables.iter().enumerate() {
            out.extend_from_slice(format!("\t{k}\t{}\t{}\n", v.name, v.kind).as_bytes());
        }
        out.extend_from_slice(b"Binary:\n");
        for p in 0..points {
            for series in &self.data {
                out.extend_from_slice(&series[p].to_le_bytes());
            }
        }
        Ok(out)
    }

    /// Parses a binary rawfile produced by [`RawFile::to_bytes`] (or any
    /// writer of the same canonical shape).
    ///
    /// # Errors
    ///
    /// [`WaveError::Parse`] on any deviation from the canonical header
    /// or a truncated/oversized binary section.
    pub fn from_bytes(bytes: &[u8]) -> Result<RawFile> {
        let mut cur = Cursor { bytes, pos: 0 };
        let title = cur.field("Title:")?;
        let date = cur.field("Date:")?;
        let plotname = cur.field("Plotname:")?;
        let flags = cur.field("Flags:")?;
        if flags != "real" {
            return Err(WaveError::Parse(format!(
                "unsupported Flags '{flags}' (only 'real')"
            )));
        }
        let n_vars: usize = cur
            .field("No. Variables:")?
            .parse()
            .map_err(|_| WaveError::Parse("bad No. Variables".into()))?;
        let n_points: usize = cur
            .field("No. Points:")?
            .parse()
            .map_err(|_| WaveError::Parse("bad No. Points".into()))?;
        let vars_line = cur.next_line("Variables:")?;
        if vars_line != "Variables:" {
            return Err(WaveError::Parse(format!(
                "expected 'Variables:', got '{vars_line}'"
            )));
        }
        let mut variables = Vec::with_capacity(n_vars);
        for k in 0..n_vars {
            let line = cur.next_line("variable row")?;
            let mut cols = line.split('\t');
            let lead = cols.next().unwrap_or("x");
            let idx = cols.next().unwrap_or("");
            let name = cols.next().unwrap_or("");
            let kind = cols.next().unwrap_or("");
            if !lead.is_empty() || idx != k.to_string() || name.is_empty() || kind.is_empty() {
                return Err(WaveError::Parse(format!("bad variable row '{line}'")));
            }
            if cols.next().is_some() {
                return Err(WaveError::Parse(format!(
                    "trailing columns in variable row '{line}'"
                )));
            }
            variables.push(Variable::new(name, kind));
        }
        let bin_line = cur.next_line("Binary:")?;
        if bin_line != "Binary:" {
            return Err(WaveError::Parse(format!(
                "expected 'Binary:', got '{bin_line}'"
            )));
        }
        let payload = &bytes[cur.pos..];
        let expect = n_vars
            .checked_mul(n_points)
            .and_then(|n| n.checked_mul(8))
            .ok_or_else(|| WaveError::Parse("point count overflow".into()))?;
        if payload.len() != expect {
            return Err(WaveError::Parse(format!(
                "binary section is {} bytes, expected {expect} ({n_vars} vars × {n_points} points)",
                payload.len()
            )));
        }
        let mut data = vec![Vec::with_capacity(n_points); n_vars];
        for (i, chunk) in payload.chunks_exact(8).enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(chunk);
            data[i % n_vars].push(f64::from_le_bytes(b));
        }
        Ok(RawFile {
            title,
            date,
            plotname,
            variables,
            data,
        })
    }
}

/// Header-section scanner: hands out one `\n`-terminated line at a
/// time, tracking the byte offset where the binary payload starts.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn next_line(&mut self, label: &str) -> Result<String> {
        let rest = &self.bytes[self.pos..];
        let nl = rest
            .iter()
            .position(|&b| b == b'\n')
            .ok_or_else(|| WaveError::Parse(format!("unterminated header at '{label}'")))?;
        let line = std::str::from_utf8(&rest[..nl])
            .map_err(|_| WaveError::Parse(format!("non-UTF8 header line at '{label}'")))?
            .to_string();
        self.pos += nl + 1;
        Ok(line)
    }

    fn field(&mut self, label: &str) -> Result<String> {
        let line = self.next_line(label)?;
        line.strip_prefix(label)
            .map(|r| r.strip_prefix(' ').unwrap_or(r).to_string())
            .ok_or_else(|| WaveError::Parse(format!("expected '{label}', got '{line}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RawFile {
        RawFile {
            title: "mtk export".into(),
            date: "deterministic".into(),
            plotname: "Transient Analysis".into(),
            variables: vec![
                Variable::new("time", "time"),
                Variable::new("v(out)", "voltage"),
                Variable::new("i(vdd)", "current"),
            ],
            data: vec![
                vec![0.0, 1e-12, 2e-12],
                vec![0.0, 0.6, 1.2],
                vec![1e-6, -2e-6, f64::MIN_POSITIVE],
            ],
        }
    }

    #[test]
    fn round_trip_is_byte_exact() {
        let raw = sample();
        let bytes = raw.to_bytes().unwrap();
        let back = RawFile::from_bytes(&bytes).unwrap();
        assert_eq!(back, raw);
        assert_eq!(back.to_bytes().unwrap(), bytes, "write→read→write bytes");
    }

    #[test]
    fn header_is_the_canonical_ascii_shape() {
        let bytes = sample().to_bytes().unwrap();
        let text = String::from_utf8_lossy(&bytes[..bytes.len() - 3 * 3 * 8]);
        assert!(text.starts_with("Title: mtk export\n"));
        assert!(text.contains("\nFlags: real\n"));
        assert!(text.contains("\nNo. Variables: 3\n"));
        assert!(text.contains("\nNo. Points: 3\n"));
        assert!(text.contains("\n\t1\tv(out)\tvoltage\n"));
        assert!(text.ends_with("Binary:\n"));
    }

    #[test]
    fn series_lookup_by_name() {
        let raw = sample();
        assert_eq!(raw.series("v(out)").unwrap(), &[0.0, 0.6, 1.2]);
        assert!(raw.series("v(missing)").is_none());
        assert_eq!(raw.points(), 3);
    }

    #[test]
    fn shape_errors_are_invalid() {
        let mut raw = sample();
        raw.data[1].pop();
        assert!(matches!(raw.to_bytes(), Err(WaveError::Invalid(_))));
        let mut raw = sample();
        raw.variables.clear();
        raw.data.clear();
        assert!(matches!(raw.to_bytes(), Err(WaveError::Invalid(_))));
        let mut raw = sample();
        raw.title = "two\nlines".into();
        assert!(matches!(raw.to_bytes(), Err(WaveError::Invalid(_))));
        let mut raw = sample();
        raw.variables[0].name = "with space".into();
        assert!(matches!(raw.to_bytes(), Err(WaveError::Invalid(_))));
    }

    #[test]
    fn truncated_and_corrupt_streams_are_parse_errors() {
        let bytes = sample().to_bytes().unwrap();
        assert!(matches!(
            RawFile::from_bytes(&bytes[..bytes.len() - 1]),
            Err(WaveError::Parse(_))
        ));
        let mut longer = bytes.clone();
        longer.extend_from_slice(&[0u8; 8]);
        assert!(matches!(
            RawFile::from_bytes(&longer),
            Err(WaveError::Parse(_))
        ));
        let mut corrupt = bytes;
        corrupt[0] = b'X';
        assert!(matches!(
            RawFile::from_bytes(&corrupt),
            Err(WaveError::Parse(_))
        ));
    }

    #[test]
    fn nan_and_signed_zero_survive_bit_for_bit() {
        let mut raw = sample();
        raw.data[1] = vec![f64::NAN, -0.0, f64::INFINITY];
        let bytes = raw.to_bytes().unwrap();
        let back = RawFile::from_bytes(&bytes).unwrap();
        let s = back.series("v(out)").unwrap();
        assert!(s[0].is_nan());
        assert!(s[1].is_sign_negative() && s[1] == 0.0);
        assert_eq!(s[2], f64::INFINITY);
        assert_eq!(back.to_bytes().unwrap(), bytes);
    }

    #[test]
    fn empty_point_series_round_trips() {
        let raw = RawFile {
            title: "t".into(),
            date: "d".into(),
            plotname: "Transient Analysis".into(),
            variables: vec![Variable::new("time", "time")],
            data: vec![vec![]],
        };
        let bytes = raw.to_bytes().unwrap();
        assert_eq!(RawFile::from_bytes(&bytes).unwrap(), raw);
    }
}
