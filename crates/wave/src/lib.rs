//! Standard waveform interchange formats, dependency-free.
//!
//! Two formats, both deterministic (no clocks, no environment):
//!
//! - [`rawfile`]: the classic binary SPICE rawfile (`Title:` /
//!   `Plotname:` ASCII header followed by point-major little-endian
//!   `f64` samples) with both a writer and a reader. A write → read →
//!   write trip is byte-exact, so external viewers and our own tooling
//!   see the same artifact.
//! - [`vcd`]: an IEEE-1364 value-change-dump writer (plus a small
//!   grammar validator) for switch-level digital views of event traces.
//!
//! The crate deliberately has no workspace dependencies: callers adapt
//! their simulation results into the plain `Vec<f64>` / event forms
//! here, keeping the formats reusable outside the suite.

pub mod rawfile;
pub mod vcd;

pub use rawfile::RawFile;
pub use vcd::Vcd;

/// Errors producing or parsing a waveform artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WaveError {
    /// The in-memory description is not writable (shape mismatch,
    /// embedded newline, empty variable list, …).
    Invalid(String),
    /// The byte stream is not a well-formed artifact of this format.
    Parse(String),
}

impl std::fmt::Display for WaveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WaveError::Invalid(m) => write!(f, "invalid waveform description: {m}"),
            WaveError::Parse(m) => write!(f, "waveform parse error: {m}"),
        }
    }
}

impl std::error::Error for WaveError {}

/// Crate-level result alias.
pub type Result<T> = std::result::Result<T, WaveError>;
