//! Fault-injection coverage for the crash-safety contract (ISSUE 7
//! satellite): truncate and corrupt the log at **every byte offset of
//! the last record** and assert clean recovery — no panic, the prefix
//! records stay intact and bit-identical, and the corrupt-record
//! counter reports exactly what was lost.

use mtk_store::{fnv1a, Store, StoreStats, STORE_VERSION};
use std::path::PathBuf;

/// A unique scratch path under the system temp dir.
fn scratch(name: &str) -> PathBuf {
    static SEQ: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
    let n = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "mtk_store_fault_{}_{}_{name}.log",
        std::process::id(),
        n
    ))
}

struct Cleanup(PathBuf);
impl Drop for Cleanup {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
        let mut lock = self.0.clone().into_os_string();
        lock.push(".lock");
        let _ = std::fs::remove_file(PathBuf::from(lock));
    }
}

/// Builds a store with `n` records of varied sizes and returns the raw
/// log image plus the byte offset where the last record starts.
fn build_log(path: &PathBuf, n: usize) -> (Vec<u8>, u64) {
    let store = Store::open(path).unwrap();
    let mut last_start = 0u64;
    for i in 0..n {
        last_start = store.stats().log_bytes;
        // Varied key/value lengths so offsets exercise every field.
        let key = format!("key-{i:04}").into_bytes();
        let value: Vec<u8> = (0..(7 + 13 * i)).map(|j| (i * 31 + j) as u8).collect();
        store.put(&key, &value).unwrap();
    }
    drop(store);
    let bytes = std::fs::read(path).unwrap();
    (bytes, last_start)
}

/// Asserts that a store opened from `path` serves exactly the first
/// `n_expected` records written by `build_log`, bit-identically.
fn assert_prefix_intact(path: &PathBuf, n_expected: usize) -> StoreStats {
    let store = Store::open(path).unwrap();
    assert_eq!(store.len(), n_expected, "live record count");
    for i in 0..n_expected {
        let key = format!("key-{i:04}").into_bytes();
        let want: Vec<u8> = (0..(7 + 13 * i)).map(|j| (i * 31 + j) as u8).collect();
        assert_eq!(
            store.get(&key).as_deref(),
            Some(want.as_slice()),
            "record {i} must replay bit-identically"
        );
    }
    store.stats()
}

#[test]
fn truncation_at_every_byte_offset_of_the_last_record_recovers() {
    let path = scratch("truncate");
    let _c = Cleanup(path.clone());
    const N: usize = 5;
    let (full, last_start) = build_log(&path, N);

    // Cut the file to every length from "last record entirely gone" up
    // to "one byte short of complete".
    for cut in last_start..full.len() as u64 {
        std::fs::write(&path, &full[..cut as usize]).unwrap();
        let stats = assert_prefix_intact(&path, N - 1);
        let expected_corrupt = usize::from(cut != last_start);
        assert_eq!(
            stats.corrupt_records, expected_corrupt,
            "cut at {cut}: truncation strictly inside the last record \
             counts one corrupt record; a clean boundary counts none"
        );
        assert_eq!(stats.log_bytes, last_start, "valid prefix length");
    }

    // The untouched file serves all N records with nothing corrupt.
    std::fs::write(&path, &full).unwrap();
    let stats = assert_prefix_intact(&path, N);
    assert_eq!(stats.corrupt_records, 0);
}

#[test]
fn bitflip_at_every_byte_offset_of_the_last_record_recovers() {
    let path = scratch("bitflip");
    let _c = Cleanup(path.clone());
    const N: usize = 5;
    let (full, last_start) = build_log(&path, N);

    for off in last_start..full.len() as u64 {
        let mut image = full.clone();
        image[off as usize] ^= 0xA5;
        std::fs::write(&path, &image).unwrap();
        let store = Store::open(&path).unwrap();
        let stats = store.stats();
        // A flipped byte inside the last record either invalidates that
        // record (checksum/length mismatch → exactly one corrupt record,
        // prefix intact) or — only when it lands inside the *value* or
        // *key* bytes — produces a record that still fails its checksum,
        // because the checksum covers the whole body. The length prefix
        // or checksum field flips likewise fail validation. In every
        // case: no panic, first N-1 records intact, exactly one corrupt
        // record, and the last key either absent or absent-as-corrupt.
        drop(store);
        let stats2 = assert_prefix_intact(&path, N - 1);
        assert_eq!(stats, stats2, "stats stable across reopen");
        assert_eq!(
            stats.corrupt_records, 1,
            "bitflip at {off} must count exactly one corrupt record"
        );
        assert_eq!(stats.log_bytes, last_start, "valid prefix length");
    }
}

#[test]
fn garbage_appended_after_valid_log_is_contained() {
    let path = scratch("garbage_tail");
    let _c = Cleanup(path.clone());
    const N: usize = 3;
    let (full, _) = build_log(&path, N);
    for tail in [&[0xFFu8][..], &[0u8; 3], &[0x42; 17]] {
        let mut image = full.clone();
        image.extend_from_slice(tail);
        std::fs::write(&path, &image).unwrap();
        let stats = assert_prefix_intact(&path, N);
        assert_eq!(
            stats.corrupt_records, 1,
            "garbage tail is one corrupt record"
        );
        assert_eq!(stats.log_bytes, full.len() as u64);
    }
}

#[test]
fn put_after_torn_tail_truncates_and_heals() {
    let path = scratch("heal");
    let _c = Cleanup(path.clone());
    const N: usize = 4;
    let (full, last_start) = build_log(&path, N);
    // Tear the last record in half.
    let cut = last_start + (full.len() as u64 - last_start) / 2;
    std::fs::write(&path, &full[..cut as usize]).unwrap();

    let store = Store::open(&path).unwrap();
    assert_eq!(store.stats().corrupt_records, 1);
    // Writing a new record truncates the torn tail and appends cleanly.
    store.put(b"healed", b"payload").unwrap();
    drop(store);

    let again = Store::open(&path).unwrap();
    assert_eq!(again.len(), N - 1 + 1);
    assert_eq!(again.get(b"healed").as_deref(), Some(&b"payload"[..]));
    assert_eq!(
        again.stats().corrupt_records,
        0,
        "healed log must scan clean"
    );
    assert!(again.verify().unwrap().corrupt_records == 0);
}

#[test]
fn version_constant_and_checksum_are_pinned() {
    // The on-disk format is a compatibility contract: pin the version
    // and the checksum primitive so accidental changes fail loudly.
    assert_eq!(STORE_VERSION, 1);
    assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
    assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
}
