//! A crash-safe, content-addressed, on-disk result store.
//!
//! The sizing pipeline's `ScreeningCache` makes warm reruns free *within*
//! one process; this crate makes them free *across* processes and CI
//! runs, and gives `mtk serve` a durable result tier. The design goal is
//! robustness first: a process crash, a torn write, or a corrupted tail
//! must never panic a reader, never serve bad bits, and lose at most the
//! record that was being written.
//!
//! # On-disk format
//!
//! One append-only log file:
//!
//! ```text
//! header:  "MTKSTORE" (8 bytes) | u32 LE STORE_VERSION
//! record:  u32 LE body_len | body | u64 LE fnv1a(body)
//! body:    u32 LE key_len | key bytes | value bytes
//! ```
//!
//! Records are content-addressed: the key is caller-chosen bytes
//! (typically a fingerprint tuple) and the value is an opaque payload.
//! The log is never updated in place — `put` only appends, and
//! [`Store::compact`] rewrites the whole file atomically (temp file +
//! rename).
//!
//! # Crash-safety contract
//!
//! * **Torn tails are truncated, not trusted.** Loading scans records
//!   front to back; the first record whose length prefix, body bytes, or
//!   checksum is invalid ends the valid prefix. Everything before it is
//!   served; everything from it on is counted as **one** corrupt record
//!   ([`StoreStats::corrupt_records`]) and physically truncated by the
//!   next write. No scan path panics.
//! * **Duplicate keys never shadow silently.** A later record whose key
//!   already exists with a *different* payload is a conflict: the first
//!   writer wins and [`StoreStats::conflicting_records`] is incremented
//!   (the append-only analogue of the `Triplets` duplicate-merge bug —
//!   see DESIGN.md §13). A later record with an *identical* payload is
//!   merely dead weight and counts in [`StoreStats::dead_records`].
//! * **One writer at a time, readers lock-free.** An exclusive OS
//!   advisory lock (`flock(2)` via [`std::fs::File::try_lock`]) on a
//!   sibling `.lock` file serializes writers across processes *and*
//!   across handles within one process — two `Store`s on one path (the
//!   `mtk serve` configuration) contend exactly like two processes do.
//!   The kernel releases the lock when the holder's descriptor closes,
//!   crash included, so locks cannot go stale and never need to be
//!   broken. Readers never touch the lock file — they only ever see the
//!   log's valid prefix, which appends cannot invalidate.
//!
//! # Maintenance
//!
//! [`Store::verify`] re-scans the file from disk and reports what a
//! fresh open would find. [`Store::compact`] rewrites the log with only
//! live records (dropping dead, conflicting, and corrupt bytes),
//! atomically.

#![warn(missing_docs)]

use std::collections::HashMap;
use std::fs::{File, OpenOptions, TryLockError};
use std::io::{ErrorKind, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Version number embedded in the log header. Bump on any change to the
/// record layout; [`Store::open`] refuses files written by a different
/// version rather than guessing.
pub const STORE_VERSION: u32 = 1;

/// Magic bytes opening every store file.
const MAGIC: &[u8; 8] = b"MTKSTORE";

/// Header length: magic + version.
const HEADER_LEN: u64 = 12;

/// Upper bound on one record body, a plausibility guard so a corrupt
/// length prefix cannot drive a multi-gigabyte allocation.
const MAX_BODY_BYTES: u32 = 64 * 1024 * 1024;

/// How long [`Store::put`] waits for the writer lock before giving up.
const LOCK_TIMEOUT: Duration = Duration::from_secs(10);

/// FNV-1a over a byte slice — the checksum primitive of the record log
/// (the same hash family the netlist/technology fingerprints use).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Everything that can go wrong opening or writing a store.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem error.
    Io(std::io::Error),
    /// The file exists but does not start with the store magic — it is
    /// not a store log, so it is refused rather than truncated.
    NotAStore {
        /// The offending path.
        path: PathBuf,
    },
    /// The file is a store log written by an incompatible version.
    VersionMismatch {
        /// Version found in the header.
        found: u32,
    },
    /// The writer lock could not be acquired within the timeout.
    LockTimeout {
        /// The lock file path.
        path: PathBuf,
    },
    /// A record exceeds the plausibility bound and cannot be written.
    RecordTooLarge {
        /// Size of the offending record body.
        bytes: usize,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::NotAStore { path } => {
                write!(f, "{} is not an mtk-store log (bad magic)", path.display())
            }
            StoreError::VersionMismatch { found } => write!(
                f,
                "store version {found} is not the supported {STORE_VERSION}"
            ),
            StoreError::LockTimeout { path } => {
                write!(f, "timed out waiting for writer lock {}", path.display())
            }
            StoreError::RecordTooLarge { bytes } => {
                write!(f, "record body of {bytes} bytes exceeds {MAX_BODY_BYTES}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Health counters of a store: what a scan found and what maintenance
/// would reclaim.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Distinct keys currently served.
    pub live_records: usize,
    /// Redundant records (duplicate key, identical payload).
    pub dead_records: usize,
    /// Duplicate-key records with a *different* payload that were
    /// rejected (first writer wins).
    pub conflicting_records: usize,
    /// Torn or corrupt tails detected and excluded (at most one per
    /// recovery — the log cannot be resynchronized past the first bad
    /// byte).
    pub corrupt_records: usize,
    /// Length in bytes of the valid log prefix (header included).
    pub log_bytes: u64,
}

/// Outcome of scanning a log image.
struct Scan {
    /// Live entries in first-written order.
    entries: Vec<(Vec<u8>, Vec<u8>)>,
    /// Key → index into `entries`.
    index: HashMap<Vec<u8>, usize>,
    stats: StoreStats,
}

/// Scans record bytes (the region after the header) and produces the
/// live map plus stats. Never panics: any malformed byte ends the valid
/// prefix.
fn scan_records(bytes: &[u8], base_offset: u64) -> Scan {
    let mut entries: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
    let mut index: HashMap<Vec<u8>, usize> = HashMap::new();
    let mut stats = StoreStats::default();
    let mut off: usize = 0;
    loop {
        let rest = &bytes[off..];
        if rest.is_empty() {
            break;
        }
        // Length prefix.
        let Some(len_bytes) = rest.get(0..4) else {
            stats.corrupt_records += 1;
            break;
        };
        let body_len = u32::from_le_bytes(len_bytes.try_into().unwrap()) as usize;
        if body_len < 4 || body_len > MAX_BODY_BYTES as usize {
            stats.corrupt_records += 1;
            break;
        }
        let Some(body) = rest.get(4..4 + body_len) else {
            stats.corrupt_records += 1;
            break;
        };
        let Some(sum_bytes) = rest.get(4 + body_len..4 + body_len + 8) else {
            stats.corrupt_records += 1;
            break;
        };
        let stored_sum = u64::from_le_bytes(sum_bytes.try_into().unwrap());
        if stored_sum != fnv1a(body) {
            stats.corrupt_records += 1;
            break;
        }
        // Body: key_len | key | value.
        let key_len = u32::from_le_bytes(body[0..4].try_into().unwrap()) as usize;
        if key_len > body_len - 4 {
            stats.corrupt_records += 1;
            break;
        }
        let key = body[4..4 + key_len].to_vec();
        let value = body[4 + key_len..].to_vec();
        match index.get(&key) {
            Some(&at) if entries[at].1 == value => stats.dead_records += 1,
            Some(_) => stats.conflicting_records += 1, // first writer wins
            None => {
                index.insert(key.clone(), entries.len());
                entries.push((key, value));
            }
        }
        off += 4 + body_len + 8;
    }
    stats.live_records = entries.len();
    stats.log_bytes = base_offset + off as u64;
    Scan {
        entries,
        index,
        stats,
    }
}

/// Serializes one record (length prefix + body + checksum).
fn encode_record(key: &[u8], value: &[u8]) -> Result<Vec<u8>, StoreError> {
    let body_len = 4 + key.len() + value.len();
    if body_len > MAX_BODY_BYTES as usize {
        return Err(StoreError::RecordTooLarge { bytes: body_len });
    }
    let mut out = Vec::with_capacity(4 + body_len + 8);
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    out.extend_from_slice(&(key.len() as u32).to_le_bytes());
    out.extend_from_slice(key);
    out.extend_from_slice(value);
    let body_start = 4;
    let sum = fnv1a(&out[body_start..]);
    out.extend_from_slice(&sum.to_le_bytes());
    Ok(out)
}

/// The store header bytes.
fn header_bytes() -> [u8; HEADER_LEN as usize] {
    let mut h = [0u8; HEADER_LEN as usize];
    h[..8].copy_from_slice(MAGIC);
    h[8..].copy_from_slice(&STORE_VERSION.to_le_bytes());
    h
}

/// In-memory state behind the store's mutex.
struct Inner {
    /// Live entries in first-written order (compaction preserves it).
    entries: Vec<(Vec<u8>, Vec<u8>)>,
    /// Key → index into `entries`.
    index: HashMap<Vec<u8>, usize>,
    /// End offset of the valid log prefix (header included). Appends go
    /// here; anything beyond is a torn tail awaiting truncation.
    valid_len: u64,
    stats: StoreStats,
}

/// RAII guard for the writer lock: an exclusively-locked sibling
/// `.lock` file. Dropping it releases the OS lock. The lock *file* is
/// never unlinked — removing a locked file would let a waiter holding
/// the old inode and a newcomer creating a fresh one both "win".
struct LockGuard {
    file: File,
}

impl Drop for LockGuard {
    fn drop(&mut self) {
        let _ = self.file.unlock();
    }
}

/// Acquires the writer lock — an exclusive OS advisory lock
/// ([`File::try_lock`], `flock(2)` on Linux) on the sibling `.lock`
/// file — waiting up to [`LOCK_TIMEOUT`].
///
/// The OS lock is keyed to the open file description, so it excludes
/// other *handles* as well as other processes: two `Store`s on one path
/// in one process serialize exactly like two processes do. It cannot go
/// stale — the kernel drops it when the holder's descriptor closes,
/// crash included — so there is no staleness heuristic and no
/// break-the-lock race.
fn acquire_lock(lock_path: &Path) -> Result<LockGuard, StoreError> {
    let file = OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(false)
        .open(lock_path)?;
    let deadline = Instant::now() + LOCK_TIMEOUT;
    loop {
        match file.try_lock() {
            Ok(()) => {
                // Best-effort debuggability: leave the holder's PID in
                // the file. The lock itself never depends on it.
                let _ = file.set_len(0);
                let _ = write!(&file, "{}", std::process::id());
                return Ok(LockGuard { file });
            }
            Err(TryLockError::WouldBlock) => {
                if Instant::now() >= deadline {
                    return Err(StoreError::LockTimeout {
                        path: lock_path.to_path_buf(),
                    });
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(TryLockError::Error(e)) => return Err(StoreError::Io(e)),
        }
    }
}

/// Makes a directory-entry change (file creation or rename) durable by
/// fsyncing the parent directory — without this, `rename` itself can be
/// lost on power failure even though both files' contents were synced.
/// Platforms where a directory cannot be opened as a file skip silently;
/// the data-file fsyncs still hold there.
fn sync_parent_dir(path: &Path) -> std::io::Result<()> {
    let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) else {
        return Ok(());
    };
    match File::open(parent) {
        Ok(dir) => dir.sync_all(),
        Err(_) => Ok(()),
    }
}

/// A content-addressed, versioned, crash-safe on-disk cache (see the
/// crate docs for the format and recovery rules).
///
/// The store is `Sync`: in-process readers and the writer share one
/// mutex (cheap — lookups are a map probe). The *file* lock only
/// serializes writers across processes; in-process and cross-process
/// readers never take it.
pub struct Store {
    path: PathBuf,
    lock_path: PathBuf,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store")
            .field("path", &self.path)
            .field("stats", &self.stats())
            .finish()
    }
}

impl Store {
    /// Opens (or lazily creates) the store at `path`, scanning the
    /// existing log into memory. A missing file is an empty store; a
    /// file with a torn tail loses exactly the torn record(s past the
    /// first bad byte) and counts one corrupt record — never an error,
    /// never a panic. A file that is not a store log, or was written by
    /// a different [`STORE_VERSION`], is refused.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`], [`StoreError::NotAStore`],
    /// [`StoreError::VersionMismatch`].
    pub fn open(path: impl AsRef<Path>) -> Result<Store, StoreError> {
        let path = path.as_ref().to_path_buf();
        let mut lock_path = path.clone().into_os_string();
        lock_path.push(".lock");
        let lock_path = PathBuf::from(lock_path);

        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(StoreError::Io(e)),
        };
        let inner = Self::scan_image(&path, &bytes)?;
        Ok(Store {
            path,
            lock_path,
            inner: Mutex::new(inner),
        })
    }

    /// Scans a full file image (header + records) into an [`Inner`].
    fn scan_image(path: &Path, bytes: &[u8]) -> Result<Inner, StoreError> {
        if bytes.is_empty() {
            // Missing or empty file: an empty store whose header is
            // written by the first put.
            return Ok(Inner {
                entries: Vec::new(),
                index: HashMap::new(),
                valid_len: 0,
                stats: StoreStats::default(),
            });
        }
        if bytes.len() < HEADER_LEN as usize {
            // A crash during initial creation tore the header itself:
            // nothing is recoverable, but nothing was stored either.
            let stats = StoreStats {
                corrupt_records: 1,
                ..StoreStats::default()
            };
            return Ok(Inner {
                entries: Vec::new(),
                index: HashMap::new(),
                valid_len: 0,
                stats,
            });
        }
        if &bytes[..8] != MAGIC {
            return Err(StoreError::NotAStore {
                path: path.to_path_buf(),
            });
        }
        let found = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if found != STORE_VERSION {
            return Err(StoreError::VersionMismatch { found });
        }
        let scan = scan_records(&bytes[HEADER_LEN as usize..], HEADER_LEN);
        Ok(Inner {
            entries: scan.entries,
            index: scan.index,
            valid_len: scan.stats.log_bytes,
            stats: scan.stats,
        })
    }

    /// The log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of distinct keys currently served.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().entries.len()
    }

    /// True when no key is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current health counters (as of open plus every write/resync
    /// since).
    pub fn stats(&self) -> StoreStats {
        self.inner.lock().unwrap().stats
    }

    /// Looks up a key, returning the payload of the *first* record ever
    /// written under it.
    pub fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        let inner = self.inner.lock().unwrap();
        inner.index.get(key).map(|&at| inner.entries[at].1.clone())
    }

    /// Appends one record durably (the data is flushed before the call
    /// returns). First writer wins: a key that already exists with an
    /// identical payload is a no-op; one that exists with a *different*
    /// payload is rejected and counted as a conflict, and the stored
    /// payload is left untouched.
    ///
    /// Takes the writer lock (exclusive across processes and across
    /// handles) for the duration of the append; before appending it
    /// adopts any records another writer appended since our last scan,
    /// rescans from scratch if the file shrank under us (a foreign
    /// `compact`), and truncates any torn tail.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`], [`StoreError::LockTimeout`],
    /// [`StoreError::RecordTooLarge`].
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        let record = encode_record(key, value)?;
        let mut inner = self.inner.lock().unwrap();
        match inner.index.get(key) {
            Some(&at) if inner.entries[at].1 == value => return Ok(()),
            Some(_) => {
                inner.stats.conflicting_records += 1;
                return Ok(());
            }
            None => {}
        }
        let _lock = acquire_lock(&self.lock_path)?;
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&self.path)?;
        self.resync_locked(&mut inner, &mut file)?;
        // A concurrent writer may have stored this key while we waited
        // for the lock; re-apply first-writer-wins against the adopted
        // state.
        match inner.index.get(key) {
            Some(&at) if inner.entries[at].1 == value => return Ok(()),
            Some(_) => {
                inner.stats.conflicting_records += 1;
                return Ok(());
            }
            None => {}
        }
        file.seek(SeekFrom::Start(inner.valid_len))?;
        file.write_all(&record)?;
        file.sync_data()?;
        inner.valid_len += record.len() as u64;
        inner.stats.log_bytes = inner.valid_len;
        let at = inner.entries.len();
        inner.entries.push((key.to_vec(), value.to_vec()));
        inner.index.insert(key.to_vec(), at);
        inner.stats.live_records = inner.entries.len();
        Ok(())
    }

    /// With the writer lock held: bring `inner` up to date with the file
    /// (adopting records other processes appended), write the header if
    /// the file is new, and physically truncate any torn tail so the
    /// next append lands on a valid boundary.
    fn resync_locked(&self, inner: &mut Inner, file: &mut File) -> Result<(), StoreError> {
        let disk_len = file.metadata()?.len();
        if disk_len == 0 {
            file.write_all(&header_bytes())?;
            file.sync_data()?;
            // Make the just-created log's directory entry durable too.
            sync_parent_dir(&self.path)?;
            inner.valid_len = HEADER_LEN;
            inner.stats.log_bytes = HEADER_LEN;
            return Ok(());
        }
        if inner.valid_len < HEADER_LEN || disk_len < inner.valid_len {
            // Full rescan, two causes: we opened on a torn/absent header
            // but the file is nonempty (a concurrent writer may have
            // rewritten it), or the file *shrank* past our valid prefix
            // (another handle compacted it — appending at the stale
            // offset would punch a zero-filled hole that orphans the
            // record and poisons every later append).
            let mut bytes = Vec::new();
            file.seek(SeekFrom::Start(0))?;
            file.read_to_end(&mut bytes)?;
            let prior_corrupt = inner.stats.corrupt_records;
            let mut fresh = Self::scan_image(&self.path, &bytes)?;
            if fresh.valid_len < HEADER_LEN {
                // Still torn: reset to an empty, well-formed log.
                file.set_len(0)?;
                file.seek(SeekFrom::Start(0))?;
                file.write_all(&header_bytes())?;
                file.sync_data()?;
                fresh.valid_len = HEADER_LEN;
                fresh.stats.log_bytes = HEADER_LEN;
            }
            fresh.stats.corrupt_records += prior_corrupt;
            *inner = fresh;
        } else if disk_len > inner.valid_len {
            // Another process appended (or the tail is torn). Scan just
            // the new region and adopt what parses.
            let mut tail = vec![0u8; (disk_len - inner.valid_len) as usize];
            file.seek(SeekFrom::Start(inner.valid_len))?;
            file.read_exact(&mut tail)?;
            let scan = scan_records(&tail, inner.valid_len);
            for (key, value) in scan.entries {
                match inner.index.get(&key) {
                    Some(&at) if inner.entries[at].1 == value => {
                        inner.stats.dead_records += 1;
                    }
                    Some(_) => inner.stats.conflicting_records += 1,
                    None => {
                        let at = inner.entries.len();
                        inner.index.insert(key.clone(), at);
                        inner.entries.push((key, value));
                    }
                }
            }
            inner.stats.dead_records += scan.stats.dead_records;
            inner.stats.conflicting_records += scan.stats.conflicting_records;
            inner.stats.corrupt_records += scan.stats.corrupt_records;
            inner.valid_len = scan.stats.log_bytes;
            inner.stats.live_records = inner.entries.len();
            inner.stats.log_bytes = inner.valid_len;
        }
        if file.metadata()?.len() > inner.valid_len {
            // Whatever is left past the valid prefix is torn: cut it so
            // the next append does not bury a corrupt region.
            file.set_len(inner.valid_len)?;
            file.sync_data()?;
        }
        Ok(())
    }

    /// Re-scans the log **from disk** and reports what a fresh open
    /// would find — the maintenance health check. The in-memory state is
    /// not modified.
    ///
    /// # Errors
    ///
    /// As [`Store::open`].
    pub fn verify(&self) -> Result<StoreStats, StoreError> {
        let bytes = match std::fs::read(&self.path) {
            Ok(b) => b,
            Err(e) if e.kind() == ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(StoreError::Io(e)),
        };
        Ok(Self::scan_image(&self.path, &bytes)?.stats)
    }

    /// Rewrites the log atomically with only the live records (in
    /// first-written order), dropping dead, conflicting, and corrupt
    /// bytes. Returns the stats of the compacted log.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`], [`StoreError::LockTimeout`].
    pub fn compact(&self) -> Result<StoreStats, StoreError> {
        let mut inner = self.inner.lock().unwrap();
        let _lock = acquire_lock(&self.lock_path)?;
        {
            let mut file = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(false)
                .open(&self.path)?;
            self.resync_locked(&mut inner, &mut file)?;
        }
        let mut tmp_path = self.path.clone().into_os_string();
        tmp_path.push(".tmp");
        let tmp_path = PathBuf::from(tmp_path);
        {
            let mut tmp = File::create(&tmp_path)?;
            tmp.write_all(&header_bytes())?;
            let mut written = HEADER_LEN;
            for (key, value) in &inner.entries {
                let record = encode_record(key, value)?;
                tmp.write_all(&record)?;
                written += record.len() as u64;
            }
            tmp.sync_all()?;
            inner.valid_len = written;
        }
        std::fs::rename(&tmp_path, &self.path)?;
        // The rename itself is a directory-entry update; fsync the
        // parent so it survives power loss.
        sync_parent_dir(&self.path)?;
        inner.stats = StoreStats {
            live_records: inner.entries.len(),
            dead_records: 0,
            conflicting_records: 0,
            corrupt_records: 0,
            log_bytes: inner.valid_len,
        };
        Ok(inner.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A unique scratch path under the system temp dir.
    fn scratch(name: &str) -> PathBuf {
        static SEQ: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        let n = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::env::temp_dir().join(format!("mtk_store_{}_{}_{name}.log", std::process::id(), n))
    }

    struct Cleanup(PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
            let mut lock = self.0.clone().into_os_string();
            lock.push(".lock");
            let _ = std::fs::remove_file(lock);
        }
    }

    #[test]
    fn put_get_roundtrip_and_reopen() {
        let path = scratch("roundtrip");
        let _c = Cleanup(path.clone());
        let store = Store::open(&path).unwrap();
        assert!(store.is_empty());
        store.put(b"k1", b"v1").unwrap();
        store.put(b"k2", &[0u8, 255, 7]).unwrap();
        assert_eq!(store.get(b"k1").unwrap(), b"v1");
        assert_eq!(store.get(b"k2").unwrap(), vec![0u8, 255, 7]);
        assert_eq!(store.get(b"nope"), None);
        drop(store);
        // A fresh open (a "new process") serves the same bits.
        let again = Store::open(&path).unwrap();
        assert_eq!(again.len(), 2);
        assert_eq!(again.get(b"k1").unwrap(), b"v1");
        assert_eq!(again.stats().corrupt_records, 0);
    }

    #[test]
    fn first_writer_wins_on_conflicting_put() {
        let path = scratch("conflict");
        let _c = Cleanup(path.clone());
        let store = Store::open(&path).unwrap();
        store.put(b"k", b"first").unwrap();
        store.put(b"k", b"second").unwrap(); // rejected, counted
        assert_eq!(store.get(b"k").unwrap(), b"first");
        assert_eq!(store.stats().conflicting_records, 1);
        // Identical re-put is a free no-op, not a conflict.
        store.put(b"k", b"first").unwrap();
        assert_eq!(store.stats().conflicting_records, 1);
        assert_eq!(store.stats().dead_records, 0);
    }

    #[test]
    fn conflicting_records_on_disk_resolve_first_writer_wins() {
        let path = scratch("disk_conflict");
        let _c = Cleanup(path.clone());
        // Hand-craft a log with key "k" written twice with different
        // payloads and once redundantly.
        let mut bytes = header_bytes().to_vec();
        for value in [&b"first"[..], b"second", b"first"] {
            bytes.extend_from_slice(&encode_record(b"k", value).unwrap());
        }
        std::fs::write(&path, &bytes).unwrap();
        let store = Store::open(&path).unwrap();
        assert_eq!(store.get(b"k").unwrap(), b"first");
        let stats = store.stats();
        assert_eq!(stats.live_records, 1);
        assert_eq!(stats.conflicting_records, 1);
        assert_eq!(stats.dead_records, 1);
        assert_eq!(stats.corrupt_records, 0);
    }

    #[test]
    fn refuses_foreign_files_and_future_versions() {
        let path = scratch("foreign");
        let _c = Cleanup(path.clone());
        std::fs::write(&path, b"definitely not a store file").unwrap();
        assert!(matches!(
            Store::open(&path),
            Err(StoreError::NotAStore { .. })
        ));
        let mut future = MAGIC.to_vec();
        future.extend_from_slice(&(STORE_VERSION + 1).to_le_bytes());
        std::fs::write(&path, &future).unwrap();
        assert!(matches!(
            Store::open(&path),
            Err(StoreError::VersionMismatch { found }) if found == STORE_VERSION + 1
        ));
    }

    #[test]
    fn torn_header_recovers_to_empty() {
        let path = scratch("torn_header");
        let _c = Cleanup(path.clone());
        std::fs::write(&path, &MAGIC[..5]).unwrap();
        let store = Store::open(&path).unwrap();
        assert!(store.is_empty());
        assert_eq!(store.stats().corrupt_records, 1);
        // The next put heals the file.
        store.put(b"k", b"v").unwrap();
        drop(store);
        let again = Store::open(&path).unwrap();
        assert_eq!(again.get(b"k").unwrap(), b"v");
        assert_eq!(again.stats().corrupt_records, 0);
    }

    #[test]
    fn compact_drops_dead_and_corrupt_bytes() {
        let path = scratch("compact");
        let _c = Cleanup(path.clone());
        let mut bytes = header_bytes().to_vec();
        bytes.extend_from_slice(&encode_record(b"a", b"1").unwrap());
        bytes.extend_from_slice(&encode_record(b"a", b"1").unwrap()); // dead
        bytes.extend_from_slice(&encode_record(b"b", b"2").unwrap());
        bytes.extend_from_slice(&encode_record(b"a", b"X").unwrap()); // conflict
        bytes.extend_from_slice(&[9, 9, 9]); // torn tail
        std::fs::write(&path, &bytes).unwrap();
        let store = Store::open(&path).unwrap();
        let before = store.stats();
        assert_eq!(before.live_records, 2);
        assert_eq!(before.dead_records, 1);
        assert_eq!(before.conflicting_records, 1);
        assert_eq!(before.corrupt_records, 1);
        let after = store.compact().unwrap();
        assert_eq!(after.live_records, 2);
        assert_eq!(after.dead_records + after.conflicting_records, 0);
        assert_eq!(after.corrupt_records, 0);
        // Reopen: clean, same content, smaller file.
        let again = Store::open(&path).unwrap();
        assert_eq!(again.get(b"a").unwrap(), b"1");
        assert_eq!(again.get(b"b").unwrap(), b"2");
        assert_eq!(again.stats(), after);
        assert!(again.verify().unwrap().corrupt_records == 0);
    }

    #[test]
    fn two_handles_interleave_through_the_lock() {
        // Two Store handles on the same path (as two processes would
        // have): appends through either are visible to fresh opens, and
        // the second handle adopts the first's records on its next put.
        let path = scratch("two_handles");
        let _c = Cleanup(path.clone());
        let a = Store::open(&path).unwrap();
        let b = Store::open(&path).unwrap();
        a.put(b"ka", b"va").unwrap();
        b.put(b"kb", b"vb").unwrap(); // resyncs, adopts ka, appends kb
        assert_eq!(b.get(b"ka").unwrap(), b"va");
        let fresh = Store::open(&path).unwrap();
        assert_eq!(fresh.len(), 2);
        assert_eq!(fresh.get(b"ka").unwrap(), b"va");
        assert_eq!(fresh.get(b"kb").unwrap(), b"vb");
        assert_eq!(fresh.stats().corrupt_records, 0);
    }

    #[test]
    fn leftover_lock_file_does_not_block() {
        let path = scratch("leftover_lock");
        let _c = Cleanup(path.clone());
        let mut lock = path.clone().into_os_string();
        lock.push(".lock");
        // A lock file left behind by a crashed writer (any contents —
        // the OS lock died with the process) must not block acquisition.
        std::fs::write(&lock, format!("{}", std::process::id())).unwrap();
        let store = Store::open(&path).unwrap();
        store.put(b"k", b"v").unwrap();
        assert_eq!(store.get(b"k").unwrap(), b"v");
    }

    #[test]
    fn same_process_handles_contend_for_the_lock() {
        // Regression for the own-PID staleness bug: handle A holding the
        // writer lock must exclude handle B *in the same process* (the
        // `mtk serve` configuration: request tier + screening cache on
        // one log). With the old PID-file scheme B saw its own PID,
        // declared the lock stale, broke it, and corrupted the log.
        let path = scratch("same_process_contend");
        let _c = Cleanup(path.clone());
        let a = Store::open(&path).unwrap();
        let guard = acquire_lock(&a.lock_path).unwrap();
        let b = Store::open(&path).unwrap();
        // B must *wait*, not break A's lock. A short probe on the lock
        // file itself proves exclusion without eating the full timeout.
        let probe = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&b.lock_path)
            .unwrap();
        assert!(matches!(probe.try_lock(), Err(TryLockError::WouldBlock)));
        drop(guard);
        // Released: B acquires and appends normally.
        b.put(b"k", b"v").unwrap();
        assert_eq!(Store::open(&path).unwrap().get(b"k").unwrap(), b"v");
    }

    #[test]
    fn concurrent_two_handle_writers_never_corrupt() {
        // Two handles on one log hammered from two threads of one
        // process: every record must survive, bit-exact, zero corrupt.
        let path = scratch("concurrent_two_handles");
        let _c = Cleanup(path.clone());
        let a = std::sync::Arc::new(Store::open(&path).unwrap());
        let b = std::sync::Arc::new(Store::open(&path).unwrap());
        let mut threads = Vec::new();
        for (id, store) in [(0u8, a), (1u8, b)] {
            threads.push(std::thread::spawn(move || {
                for i in 0..50u8 {
                    store.put(&[id, i], &[i; 17]).unwrap();
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        let fresh = Store::open(&path).unwrap();
        assert_eq!(fresh.len(), 100);
        assert_eq!(fresh.stats().corrupt_records, 0);
        for id in 0..2u8 {
            for i in 0..50u8 {
                assert_eq!(fresh.get(&[id, i]).unwrap(), vec![i; 17]);
            }
        }
    }

    #[test]
    fn append_after_foreign_compact_rescans_shrunk_file() {
        // Handle B's valid_len can point past EOF after another handle
        // compacts the log. A put through B must rescan from scratch,
        // not seek past EOF (which would punch a zero-filled hole and
        // orphan the appended record).
        let path = scratch("shrunk_by_compact");
        let _c = Cleanup(path.clone());
        let mut bytes = header_bytes().to_vec();
        bytes.extend_from_slice(&encode_record(b"k", b"v1").unwrap());
        bytes.extend_from_slice(&encode_record(b"k", b"v1").unwrap()); // dead
        bytes.extend_from_slice(&encode_record(b"j", b"v2").unwrap());
        std::fs::write(&path, &bytes).unwrap();
        let b = Store::open(&path).unwrap(); // valid_len spans all 3 records
        let a = Store::open(&path).unwrap();
        a.compact().unwrap(); // drops the dead record: file shrinks
        b.put(b"new", b"v3").unwrap(); // must detect the shrink
        let fresh = Store::open(&path).unwrap();
        assert_eq!(fresh.get(b"k").unwrap(), b"v1");
        assert_eq!(fresh.get(b"j").unwrap(), b"v2");
        assert_eq!(fresh.get(b"new").unwrap(), b"v3");
        assert_eq!(fresh.stats().corrupt_records, 0);
        assert_eq!(fresh.len(), 3);
    }

    #[test]
    fn oversized_record_rejected() {
        let path = scratch("oversized");
        let _c = Cleanup(path.clone());
        let store = Store::open(&path).unwrap();
        // Construct the error without allocating 64 MiB: key_len alone
        // cannot exceed the bound, so check encode_record directly.
        let err = encode_record(&[0u8; (MAX_BODY_BYTES as usize) + 1], b"").unwrap_err();
        assert!(matches!(err, StoreError::RecordTooLarge { .. }));
        drop(store);
    }
}
