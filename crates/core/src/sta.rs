//! Conventional static timing analysis — the tool the paper says is
//! *not enough* for MTCMOS.
//!
//! §4: "current tools to extract critical paths may not be adequate
//! since they do not take into account the virtual ground bounce
//! associated with discharge currents." This module implements exactly
//! such a conventional tool: per-gate constant delays (the same
//! equivalent-inverter model the switch-level simulator uses, but with
//! V<sub>x</sub> = 0 and no input-vector awareness), longest-path
//! arrival times, and critical-path extraction. The ABL-STA experiment
//! quantifies how far its "critical path" is from the vector-dependent
//! MTCMOS truth.

use crate::model;
use crate::CoreError;
use mtk_netlist::cell::equivalent_inverter;
use mtk_netlist::netlist::{CellId, NetId, Netlist};
use mtk_netlist::tech::Technology;

/// Per-cell constant delays used by the STA.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellDelays {
    /// Output high→low delay (pull-down), seconds.
    pub tphl: f64,
    /// Output low→high delay (pull-up), seconds.
    pub tplh: f64,
}

impl CellDelays {
    /// The direction-agnostic worst case.
    pub fn worst(&self) -> f64 {
        self.tphl.max(self.tplh)
    }
}

/// Conventional per-gate-constant-delay STA.
#[derive(Debug)]
pub struct Sta;

impl Sta {
    /// Computes per-cell delays from the equivalent-inverter model at
    /// V<sub>x</sub> = 0 (the conventional-CMOS assumption).
    pub fn cell_delays(netlist: &Netlist, tech: &Technology) -> Vec<CellDelays> {
        netlist
            .cells()
            .iter()
            .map(|cell| {
                let eq = equivalent_inverter(cell.kind, cell.drive, tech);
                let cl = netlist.load_cap(cell.output, tech).max(1e-18);
                let i_n = model::discharge_current(tech, eq.beta_n, 0.0, false);
                let i_p = model::charge_current(tech, eq.beta_p);
                CellDelays {
                    tphl: model::constant_current_delay(tech, cl, i_n),
                    tplh: model::constant_current_delay(tech, cl, i_p),
                }
            })
            .collect()
    }

    /// Longest-path arrival-time analysis (direction-agnostic: each cell
    /// contributes its worst-case delay, the standard conservative STA).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Netlist`] for cyclic netlists.
    pub fn analyze(netlist: &Netlist, tech: &Technology) -> Result<StaAnalysis, CoreError> {
        let delays = Self::cell_delays(netlist, tech);
        let order = netlist.topo_order().map_err(CoreError::Netlist)?;
        let mut arrival = vec![0.0f64; netlist.nets().len()];
        let mut critical_driver: Vec<Option<CellId>> = vec![None; netlist.nets().len()];
        let mut critical_input: Vec<Option<NetId>> = vec![None; netlist.nets().len()];
        for ci in order {
            let cell = netlist.cell(ci);
            let (worst_in, worst_net) = cell.inputs.iter().map(|&n| (arrival[n.index()], n)).fold(
                (0.0f64, None),
                |(best, bn), (a, n)| {
                    if a >= best {
                        (a, Some(n))
                    } else {
                        (best, bn)
                    }
                },
            );
            let out = cell.output.index();
            arrival[out] = worst_in + delays[ci.index()].worst();
            critical_driver[out] = Some(ci);
            critical_input[out] = worst_net;
        }
        let critical_net = netlist
            .net_ids()
            .max_by(|&a, &b| {
                arrival[a.index()]
                    .partial_cmp(&arrival[b.index()])
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .filter(|&n| arrival[n.index()] > 0.0);
        Ok(StaAnalysis {
            arrival,
            critical_driver,
            critical_input,
            critical_net,
        })
    }
}

/// The result of [`Sta::analyze`].
#[derive(Debug, Clone)]
pub struct StaAnalysis {
    /// Worst arrival time per net (seconds), indexed by `NetId::index()`.
    pub arrival: Vec<f64>,
    critical_driver: Vec<Option<CellId>>,
    critical_input: Vec<Option<NetId>>,
    /// The latest-arriving net.
    pub critical_net: Option<NetId>,
}

impl StaAnalysis {
    /// The critical-path delay.
    pub fn critical_delay(&self) -> f64 {
        self.critical_net
            .map(|n| self.arrival[n.index()])
            .unwrap_or(0.0)
    }

    /// The critical path as cells from inputs toward the critical net.
    pub fn critical_path(&self) -> Vec<CellId> {
        let mut path = Vec::new();
        let mut net = self.critical_net;
        while let Some(n) = net {
            match self.critical_driver[n.index()] {
                Some(c) => {
                    path.push(c);
                    net = self.critical_input[n.index()];
                }
                None => break,
            }
        }
        path.reverse();
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtk_circuits::adder::RippleAdder;
    use mtk_circuits::tree::InverterTree;
    use mtk_netlist::logic::Logic;

    #[test]
    fn tree_arrival_is_stage_sum() {
        let tree = InverterTree::paper();
        let tech = Technology::l07();
        let sta = Sta::analyze(&tree.netlist, &tech).unwrap();
        // The critical path has exactly three inverters.
        assert_eq!(sta.critical_path().len(), 3);
        // Arrival at a leaf = sum of the three stage delays.
        let delays = Sta::cell_delays(&tree.netlist, &tech);
        let leaf = tree.probe();
        let got = sta.arrival[leaf.index()];
        assert!(got > 0.0);
        // All leaves share the same arrival (symmetric tree).
        for &l in tree.leaves() {
            assert!((sta.arrival[l.index()] - got).abs() < 1e-18);
        }
        let _ = delays;
    }

    #[test]
    fn adder_critical_path_reaches_msb_region() {
        let add = RippleAdder::paper();
        let tech = Technology::l07();
        let sta = Sta::analyze(&add.netlist, &tech).unwrap();
        let d = sta.critical_delay();
        assert!(d > 0.0);
        // The ripple path is the longest: the critical net must arrive
        // later than the LSB sum output.
        assert!(sta.arrival[add.sum[0].index()] < d);
        assert!(!sta.critical_path().is_empty());
    }

    /// STA is conservative relative to the vector-aware CMOS simulation:
    /// no vbsim vector produces a longer CMOS delay than the STA bound
    /// (same underlying per-gate model).
    #[test]
    fn sta_upper_bounds_cmos_vbsim() {
        let add = RippleAdder::paper();
        let tech = Technology::l07();
        let sta = Sta::analyze(&add.netlist, &tech).unwrap();
        let bound = sta.critical_delay();
        let engine = crate::vbsim::Engine::new(&add.netlist, &tech);
        for (a0, b0, a1, b1) in [(0u64, 0u64, 7u64, 7u64), (3, 4, 4, 3), (0, 7, 7, 0)] {
            let run = engine
                .run(
                    &add.input_values(a0, b0),
                    &add.input_values(a1, b1),
                    &crate::vbsim::VbsimOptions::cmos(),
                )
                .unwrap();
            if let Some(d) = run.delay_over(add.netlist.primary_outputs()) {
                assert!(
                    d <= bound * 1.001,
                    "vector ({a0},{b0})->({a1},{b1}): {d} > bound {bound}"
                );
            }
        }
        let _ = Logic::X;
    }

    /// The paper's point: STA is vector- and sizing-blind — its critical
    /// delay does not change with the sleep size at all.
    #[test]
    fn sta_is_blind_to_sleep_sizing() {
        let tree = InverterTree::paper();
        let tech = Technology::l07();
        let d1 = Sta::analyze(&tree.netlist, &tech).unwrap().critical_delay();
        let d2 = Sta::analyze(&tree.netlist, &tech).unwrap().critical_delay();
        assert_eq!(d1, d2);
        // Whereas vbsim at a small sleep size exceeds the STA number.
        let engine = crate::vbsim::Engine::new(&tree.netlist, &tech);
        let run = engine
            .run(
                &[Logic::Zero],
                &[Logic::One],
                &crate::vbsim::VbsimOptions::mtcmos(2.0),
            )
            .unwrap();
        let d_mt = run.delay_over(tree.leaves()).unwrap();
        assert!(d_mt > d1, "MTCMOS {d_mt} must exceed the STA bound {d1}");
    }
}
