//! Worst-case input-vector search for circuits too large to enumerate.
//!
//! §4: "Although one could exhaustively simulate all possible input
//! transitions with SPICE for smaller circuits, it soon becomes
//! impossible with more complicated logic blocks." Even the fast
//! switch-level simulator cannot enumerate 2³² transitions of an 8×8
//! multiplier, so the sizing flow needs a search heuristic: random
//! sampling to seed, then bit-flip hill climbing on the transition
//! endpoints, with restarts.
//!
//! Both phases are embarrassingly parallel and run on the
//! [`crate::par`] executor. Determinism is independent of the thread
//! count: every random sample `i` draws from PRNG stream `(seed, i)` and
//! every restart `r` from stream `(seed, R | r)`, so the set of evaluated
//! transitions — and therefore the result — is a pure function of
//! [`SearchOptions`], no matter how the work is sharded.

use crate::health::{
    fold_item_reports, FailurePolicy, FaultPlan, ItemReport, RunHealth, SweepHealth,
    RETRY_BUDGET_FACTOR,
};
use crate::par::{merge_stats, try_parallel_map_with, WorkerStats};
use crate::sizing::{vbsim_delay_pair_health_with, Transition};
use crate::vbsim::{Engine, SleepNetwork, VbsimOptions, VbsimScratch};
use crate::CoreError;
use mtk_netlist::logic::bits_lsb_first;
use mtk_netlist::netlist::NetId;
use mtk_num::prng::Xoshiro256pp;

/// Stream-id namespace for restart points (disjoint from the sample
/// indices, which start at 0).
const RESTART_STREAM: u64 = 1 << 62;

/// Options for [`search_worst_vector`].
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOptions {
    /// Sleep size the degradation is evaluated at.
    pub sleep: SleepNetwork,
    /// Random seeds to draw before climbing.
    pub random_samples: usize,
    /// Hill-climbing restarts (restart 0 climbs from the best random
    /// sample, the rest from fresh random points).
    pub restarts: usize,
    /// Maximum climbing passes per restart (each pass tries every
    /// single-bit flip of both endpoints).
    pub max_passes: usize,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for the sampling and restart phases
    /// (`0` = all available cores, `1` = run inline). The result is
    /// identical at any setting.
    pub threads: usize,
    /// Probes for the delay measurement (`None` = primary outputs).
    pub probes: Option<Vec<NetId>>,
    /// Base simulator options.
    pub base: VbsimOptions,
    /// What to do when a work item (sample or restart climb) fails.
    pub policy: FailurePolicy,
    /// Deterministic fault injection for tests. The item index space is
    /// samples first (`0..random_samples`), then restarts
    /// (`random_samples..random_samples + restarts`).
    pub fault: FaultPlan,
}

impl SearchOptions {
    /// A reasonable default budget at a given sleep size.
    pub fn at_sleep(sleep: SleepNetwork) -> Self {
        SearchOptions {
            sleep,
            random_samples: 200,
            restarts: 3,
            max_passes: 8,
            seed: 0xDAC97,
            threads: 1,
            probes: None,
            base: VbsimOptions::default(),
            policy: FailurePolicy::FailFast,
            fault: FaultPlan::none(),
        }
    }
}

/// The outcome of a search.
#[derive(Debug)]
pub struct SearchResult {
    /// The worst transition found.
    pub transition: Transition,
    /// Its fractional degradation.
    pub degradation: f64,
    /// Simulator runs spent.
    pub evaluations: usize,
    /// Per-worker execution counters (vectors, breakpoints, busy wall
    /// time), merged over both phases. Reporting only — the fields above
    /// never depend on the schedule.
    pub workers: Vec<WorkerStats>,
    /// Sweep-level health merged over both phases: quarantined items
    /// (sample indices first, then `random_samples + r` for restart
    /// `r`), retries, recovered panics, and run counters.
    pub health: SweepHealth,
}

impl SearchResult {
    /// This search as a [`mtk_trace::PhaseTrace`]: the merged health
    /// counters (deterministic) plus the per-worker sinks of both
    /// search phases (timing section).
    pub fn to_phase(&self, name: &str) -> mtk_trace::PhaseTrace {
        let mut phase = self.health.phase(name);
        phase.workers = crate::par::worker_traces(&self.workers);
        phase
    }
}

/// A candidate transition as packed endpoint words plus its score.
type Candidate = (u64, u64, f64);

/// One work-item body: evaluate under the given options, recording
/// health and per-worker stats into the provided scratch.
type ItemBody<'a> = dyn Fn(
        &VbsimOptions,
        &mut RunHealth,
        &mut WorkerStats,
        &mut VbsimScratch,
    ) -> Result<Candidate, CoreError>
    + 'a;

/// Searches for the transition with the largest MTCMOS degradation.
///
/// # Errors
///
/// Propagates simulator errors; returns [`CoreError::UnknownState`] if
/// the circuit has no primary inputs.
pub fn search_worst_vector(
    engine: &Engine<'_>,
    opts: &SearchOptions,
) -> Result<SearchResult, CoreError> {
    let n_bits = engine.netlist().primary_inputs().len() as u32;
    if n_bits == 0 {
        return Err(CoreError::UnknownState(
            "circuit has no primary inputs".to_string(),
        ));
    }
    let probes = opts.probes.as_deref();
    let mask = if n_bits >= 64 {
        u64::MAX
    } else {
        (1u64 << n_bits) - 1
    };

    // One simulator evaluation. Counts into the calling worker's stats
    // and the item's run health; the returned score is
    // schedule-independent.
    let score = |from: u64,
                 to: u64,
                 base: &VbsimOptions,
                 run: &mut RunHealth,
                 stats: &mut WorkerStats,
                 scratch: &mut VbsimScratch|
     -> Result<f64, CoreError> {
        stats.vectors += 1;
        let tr = Transition::new(bits_lsb_first(from, n_bits), bits_lsb_first(to, n_bits));
        match vbsim_delay_pair_health_with(engine, &tr, probes, opts.sleep, base, scratch) {
            Ok((pair, health)) => {
                run.absorb(&health);
                stats.breakpoints += health.breakpoints as u64;
                Ok(match pair {
                    Some(p) => p.degradation(),
                    None => f64::NEG_INFINITY, // doesn't exercise the probes
                })
            }
            Err(e) => {
                if let CoreError::EventOverflow { events, .. } = e {
                    run.breakpoints += events;
                    run.max_events = run.max_events.max(base.max_events);
                    stats.breakpoints += events as u64;
                }
                Err(e)
            }
        }
    };

    // Runs one whole work item (a sample evaluation or a full climb),
    // retrying it once at a relaxed breakpoint budget if any evaluation
    // inside it overflowed. Retry-then-quarantine is decided per item,
    // so the outcome is a pure function of the item index.
    let run_item = |index: usize,
                    stats: &mut WorkerStats,
                    scratch: &mut VbsimScratch,
                    body: &ItemBody<'_>|
     -> ItemReport<Candidate> {
        let mut run = RunHealth::default();
        let mut value = opts
            .fault
            .check(index, 0)
            .and_then(|()| body(&opts.base, &mut run, stats, scratch));
        let mut retried = false;
        if matches!(value, Err(CoreError::EventOverflow { .. })) {
            retried = true;
            let relaxed = VbsimOptions {
                max_events: opts.base.max_events.saturating_mul(RETRY_BUDGET_FACTOR),
                ..opts.base.clone()
            };
            value = opts
                .fault
                .check(index, 1)
                .and_then(|()| body(&relaxed, &mut run, stats, scratch));
        }
        ItemReport {
            value,
            retried,
            run,
        }
    };

    // Phase 1: random sampling. Sample i draws from stream (seed, i).
    let sample_ids: Vec<u64> = (0..opts.random_samples.max(1) as u64).collect();
    let (sample_reports, sample_stats) = try_parallel_map_with(
        opts.threads,
        8,
        &sample_ids,
        VbsimScratch::new,
        |scratch, _, &i, stats| {
            run_item(i as usize, stats, scratch, &|base, run, stats, scratch| {
                let mut rng = Xoshiro256pp::stream(opts.seed, i);
                let from = rng.next_u64() & mask;
                let to = rng.next_u64() & mask;
                score(from, to, base, run, stats, scratch).map(|s| (from, to, s))
            })
        },
    );
    let (samples, mut health) = fold_item_reports(sample_reports, opts.policy)?;
    let mut best: Candidate = (0, 0, f64::NEG_INFINITY);
    for cand in samples.into_iter().flatten() {
        if cand.2 > best.2 {
            best = cand;
        }
    }

    // Phase 2: hill climbing with restarts. Each restart is an
    // independent deterministic climb; restart 0 starts from the phase-1
    // best, the rest from fresh random points on their own streams.
    let restart_ids: Vec<u64> = (0..opts.restarts as u64).collect();
    let (climb_reports, climb_stats) = try_parallel_map_with(
        opts.threads,
        1,
        &restart_ids,
        VbsimScratch::new,
        |scratch, _, &r, stats| {
            run_item(
                opts.random_samples + r as usize,
                stats,
                scratch,
                &|base, run, stats, scratch| {
                    // Climbing revisits transitions whenever a pass
                    // undoes an earlier flip; scores are pure per
                    // attempt, so memoise them. The memo is attempt-
                    // local: a retry at a relaxed budget re-evaluates
                    // everything, keeping the outcome a pure function of
                    // the item index.
                    let mut memo: std::collections::HashMap<(u64, u64), f64> =
                        std::collections::HashMap::new();
                    let from_best = r == 0 || best.2 == f64::NEG_INFINITY;
                    if from_best {
                        memo.insert((best.0, best.1), best.2);
                    }
                    let mut score_memo = |f: u64,
                                          t: u64,
                                          run: &mut RunHealth,
                                          stats: &mut WorkerStats,
                                          scratch: &mut VbsimScratch|
                     -> Result<f64, CoreError> {
                        if let Some(&s) = memo.get(&(f, t)) {
                            return Ok(s);
                        }
                        let s = score(f, t, base, run, stats, scratch)?;
                        memo.insert((f, t), s);
                        Ok(s)
                    };
                    let (mut from, mut to, mut cur) = if from_best {
                        best
                    } else {
                        let mut rng = Xoshiro256pp::stream(opts.seed, RESTART_STREAM | r);
                        let f = rng.next_u64() & mask;
                        let t = rng.next_u64() & mask;
                        let s = score_memo(f, t, run, stats, scratch)?;
                        (f, t, s)
                    };
                    for _ in 0..opts.max_passes {
                        let mut improved = false;
                        for bit in 0..n_bits {
                            for endpoint in 0..2 {
                                let (nf, nt) = if endpoint == 0 {
                                    (from ^ (1 << bit), to)
                                } else {
                                    (from, to ^ (1 << bit))
                                };
                                let s = score_memo(nf, nt, run, stats, scratch)?;
                                if s > cur {
                                    from = nf;
                                    to = nt;
                                    cur = s;
                                    improved = true;
                                }
                            }
                        }
                        if !improved {
                            break;
                        }
                    }
                    Ok((from, to, cur))
                },
            )
        },
    );
    let (climbs, mut climb_health) = fold_item_reports(climb_reports, opts.policy)?;
    for q in &mut climb_health.quarantined {
        q.index += opts.random_samples;
    }
    health.absorb(climb_health);
    for cand in climbs.into_iter().flatten() {
        if cand.2 > best.2 {
            best = cand;
        }
    }

    let workers = merge_stats(&[sample_stats, climb_stats]);
    let evaluations = workers.iter().map(|w| w.vectors).sum::<u64>() as usize;
    Ok(SearchResult {
        transition: Transition::new(
            bits_lsb_first(best.0, n_bits),
            bits_lsb_first(best.1, n_bits),
        ),
        degradation: best.2,
        evaluations,
        workers,
        health,
    })
}

/// Helper: did the found transition at least match a reference
/// degradation within a tolerance fraction?
pub fn found_at_least(result: &SearchResult, reference: f64, tolerance: f64) -> bool {
    result.degradation >= reference * (1.0 - tolerance)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sizing::screen_vectors;
    use mtk_circuits::adder::RippleAdder;
    use mtk_circuits::vectors::exhaustive_transitions;
    use mtk_netlist::tech::Technology;

    #[test]
    fn search_approaches_exhaustive_worst_on_small_adder() {
        let add = RippleAdder::paper();
        let tech = Technology::l07();
        let engine = Engine::new(&add.netlist, &tech);
        let sleep = SleepNetwork::Transistor { w_over_l: 10.0 };

        // Ground truth from exhaustive screening.
        let transitions: Vec<Transition> = exhaustive_transitions(6)
            .into_iter()
            .map(|p| Transition::new(bits_lsb_first(p.from, 6), bits_lsb_first(p.to, 6)))
            .collect();
        let screened =
            screen_vectors(&engine, &transitions, None, 10.0, &VbsimOptions::default()).unwrap();
        let true_worst = screened[0].delays.degradation();

        let result = search_worst_vector(
            &engine,
            &SearchOptions {
                random_samples: 120,
                restarts: 2,
                max_passes: 6,
                ..SearchOptions::at_sleep(sleep)
            },
        )
        .unwrap();
        assert!(result.evaluations < 4096, "must beat exhaustive cost");
        // The global worst can be a needle (a glitch-amplified vector the
        // paper's §6.3 discusses); the search must at least land in the
        // top 2% of the exhaustive degradation distribution.
        let p98 = screened[screened.len() * 2 / 100].delays.degradation();
        assert!(
            result.degradation >= p98,
            "search found {:.3}, 98th percentile {:.3}, exhaustive worst {:.3}",
            result.degradation,
            p98,
            true_worst
        );
        assert!(found_at_least(&result, p98, 0.0));
    }

    #[test]
    fn search_is_deterministic_per_seed() {
        let add = RippleAdder::paper();
        let tech = Technology::l07();
        let engine = Engine::new(&add.netlist, &tech);
        let opts = SearchOptions {
            random_samples: 30,
            restarts: 1,
            max_passes: 2,
            ..SearchOptions::at_sleep(SleepNetwork::Transistor { w_over_l: 10.0 })
        };
        let a = search_worst_vector(&engine, &opts).unwrap();
        let b = search_worst_vector(&engine, &opts).unwrap();
        assert_eq!(a.degradation, b.degradation);
        assert_eq!(a.transition, b.transition);
    }

    #[test]
    fn search_result_is_identical_across_thread_counts() {
        let add = RippleAdder::paper();
        let tech = Technology::l07();
        let engine = Engine::new(&add.netlist, &tech);
        let base = SearchOptions {
            random_samples: 24,
            restarts: 2,
            max_passes: 2,
            ..SearchOptions::at_sleep(SleepNetwork::Transistor { w_over_l: 10.0 })
        };
        let serial = search_worst_vector(&engine, &base).unwrap();
        for threads in [2usize, 5] {
            let par = search_worst_vector(
                &engine,
                &SearchOptions {
                    threads,
                    ..base.clone()
                },
            )
            .unwrap();
            assert_eq!(par.transition, serial.transition, "threads={threads}");
            assert_eq!(par.degradation, serial.degradation, "threads={threads}");
            assert_eq!(par.evaluations, serial.evaluations, "threads={threads}");
        }
    }

    #[test]
    fn worker_counters_account_for_every_evaluation() {
        let add = RippleAdder::paper();
        let tech = Technology::l07();
        let engine = Engine::new(&add.netlist, &tech);
        let result = search_worst_vector(
            &engine,
            &SearchOptions {
                random_samples: 16,
                restarts: 1,
                max_passes: 1,
                threads: 2,
                ..SearchOptions::at_sleep(SleepNetwork::Transistor { w_over_l: 10.0 })
            },
        )
        .unwrap();
        let vectors: u64 = result.workers.iter().map(|w| w.vectors).sum();
        assert_eq!(vectors as usize, result.evaluations);
        let breakpoints: u64 = result.workers.iter().map(|w| w.breakpoints).sum();
        assert!(breakpoints > 0, "adder runs must solve breakpoints");
    }

    #[test]
    fn no_inputs_is_an_error() {
        let nl = mtk_netlist::netlist::Netlist::new("empty");
        let tech = Technology::l07();
        let engine = Engine::new(&nl, &tech);
        let opts = SearchOptions::at_sleep(SleepNetwork::Cmos);
        assert!(search_worst_vector(&engine, &opts).is_err());
    }
}
