//! Worst-case input-vector search for circuits too large to enumerate.
//!
//! §4: "Although one could exhaustively simulate all possible input
//! transitions with SPICE for smaller circuits, it soon becomes
//! impossible with more complicated logic blocks." Even the fast
//! switch-level simulator cannot enumerate 2³² transitions of an 8×8
//! multiplier, so the sizing flow needs a search heuristic: random
//! sampling to seed, then bit-flip hill climbing on the transition
//! endpoints, with restarts.

use crate::sizing::{vbsim_delay_pair, Transition};
use crate::vbsim::{Engine, SleepNetwork, VbsimOptions};
use crate::CoreError;
use mtk_netlist::logic::bits_lsb_first;
use mtk_netlist::netlist::NetId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Options for [`search_worst_vector`].
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOptions {
    /// Sleep size the degradation is evaluated at.
    pub sleep: SleepNetwork,
    /// Random seeds to draw before climbing.
    pub random_samples: usize,
    /// Hill-climbing restarts (each from the best-so-far or a fresh
    /// random point).
    pub restarts: usize,
    /// Maximum climbing passes per restart (each pass tries every
    /// single-bit flip of both endpoints).
    pub max_passes: usize,
    /// RNG seed.
    pub seed: u64,
    /// Probes for the delay measurement (`None` = primary outputs).
    pub probes: Option<Vec<NetId>>,
    /// Base simulator options.
    pub base: VbsimOptions,
}

impl SearchOptions {
    /// A reasonable default budget at a given sleep size.
    pub fn at_sleep(sleep: SleepNetwork) -> Self {
        SearchOptions {
            sleep,
            random_samples: 200,
            restarts: 3,
            max_passes: 8,
            seed: 0xDAC97,
            probes: None,
            base: VbsimOptions::default(),
        }
    }
}

/// The outcome of a search.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// The worst transition found.
    pub transition: Transition,
    /// Its fractional degradation.
    pub degradation: f64,
    /// Simulator runs spent.
    pub evaluations: usize,
}

/// Searches for the transition with the largest MTCMOS degradation.
///
/// # Errors
///
/// Propagates simulator errors; returns [`CoreError::UnknownState`] if
/// the circuit has no primary inputs.
pub fn search_worst_vector(
    engine: &Engine<'_>,
    opts: &SearchOptions,
) -> Result<SearchResult, CoreError> {
    let n_bits = engine.netlist().primary_inputs().len() as u32;
    if n_bits == 0 {
        return Err(CoreError::UnknownState(
            "circuit has no primary inputs".to_string(),
        ));
    }
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut evals = 0usize;
    let probes = opts.probes.as_deref();

    let score = |from: u64, to: u64, evals: &mut usize| -> Result<f64, CoreError> {
        *evals += 1;
        let tr = Transition::new(bits_lsb_first(from, n_bits), bits_lsb_first(to, n_bits));
        Ok(
            match vbsim_delay_pair(engine, &tr, probes, opts.sleep, &opts.base)? {
                Some(p) => p.degradation(),
                None => f64::NEG_INFINITY, // doesn't exercise the probes
            },
        )
    };

    let mask = if n_bits >= 64 {
        u64::MAX
    } else {
        (1u64 << n_bits) - 1
    };

    // Phase 1: random sampling.
    let mut best = (0u64, 0u64, f64::NEG_INFINITY);
    for _ in 0..opts.random_samples.max(1) {
        let from = rng.gen::<u64>() & mask;
        let to = rng.gen::<u64>() & mask;
        let s = score(from, to, &mut evals)?;
        if s > best.2 {
            best = (from, to, s);
        }
    }

    // Phase 2: hill climbing with restarts.
    for restart in 0..opts.restarts {
        let (mut from, mut to, mut cur) = if restart == 0 || best.2 == f64::NEG_INFINITY {
            best
        } else {
            let f = rng.gen::<u64>() & mask;
            let t = rng.gen::<u64>() & mask;
            let s = score(f, t, &mut evals)?;
            (f, t, s)
        };
        for _ in 0..opts.max_passes {
            let mut improved = false;
            for bit in 0..n_bits {
                for endpoint in 0..2 {
                    let (nf, nt) = if endpoint == 0 {
                        (from ^ (1 << bit), to)
                    } else {
                        (from, to ^ (1 << bit))
                    };
                    let s = score(nf, nt, &mut evals)?;
                    if s > cur {
                        from = nf;
                        to = nt;
                        cur = s;
                        improved = true;
                    }
                }
            }
            if !improved {
                break;
            }
        }
        if cur > best.2 {
            best = (from, to, cur);
        }
    }

    Ok(SearchResult {
        transition: Transition::new(
            bits_lsb_first(best.0, n_bits),
            bits_lsb_first(best.1, n_bits),
        ),
        degradation: best.2,
        evaluations: evals,
    })
}

/// Helper: did the found transition at least match a reference
/// degradation within a tolerance fraction?
pub fn found_at_least(result: &SearchResult, reference: f64, tolerance: f64) -> bool {
    result.degradation >= reference * (1.0 - tolerance)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sizing::screen_vectors;
    use mtk_circuits::adder::RippleAdder;
    use mtk_circuits::vectors::exhaustive_transitions;
    use mtk_netlist::tech::Technology;

    #[test]
    fn search_approaches_exhaustive_worst_on_small_adder() {
        let add = RippleAdder::paper();
        let tech = Technology::l07();
        let engine = Engine::new(&add.netlist, &tech);
        let sleep = SleepNetwork::Transistor { w_over_l: 10.0 };

        // Ground truth from exhaustive screening.
        let transitions: Vec<Transition> = exhaustive_transitions(6)
            .into_iter()
            .map(|p| {
                Transition::new(bits_lsb_first(p.from, 6), bits_lsb_first(p.to, 6))
            })
            .collect();
        let screened =
            screen_vectors(&engine, &transitions, None, 10.0, &VbsimOptions::default()).unwrap();
        let true_worst = screened[0].delays.degradation();

        let result = search_worst_vector(
            &engine,
            &SearchOptions {
                random_samples: 120,
                restarts: 2,
                max_passes: 6,
                ..SearchOptions::at_sleep(sleep)
            },
        )
        .unwrap();
        assert!(result.evaluations < 4096, "must beat exhaustive cost");
        // The global worst can be a needle (a glitch-amplified vector the
        // paper's §6.3 discusses); the search must at least land in the
        // top 2% of the exhaustive degradation distribution.
        let p98 = screened[screened.len() * 2 / 100].delays.degradation();
        assert!(
            result.degradation >= p98,
            "search found {:.3}, 98th percentile {:.3}, exhaustive worst {:.3}",
            result.degradation,
            p98,
            true_worst
        );
        assert!(found_at_least(&result, p98, 0.0));
    }

    #[test]
    fn search_is_deterministic_per_seed() {
        let add = RippleAdder::paper();
        let tech = Technology::l07();
        let engine = Engine::new(&add.netlist, &tech);
        let opts = SearchOptions {
            random_samples: 30,
            restarts: 1,
            max_passes: 2,
            ..SearchOptions::at_sleep(SleepNetwork::Transistor { w_over_l: 10.0 })
        };
        let a = search_worst_vector(&engine, &opts).unwrap();
        let b = search_worst_vector(&engine, &opts).unwrap();
        assert_eq!(a.degradation, b.degradation);
        assert_eq!(a.transition, b.transition);
    }

    #[test]
    fn no_inputs_is_an_error() {
        let nl = mtk_netlist::netlist::Netlist::new("empty");
        let tech = Technology::l07();
        let engine = Engine::new(&nl, &tech);
        let opts = SearchOptions::at_sleep(SleepNetwork::Cmos);
        assert!(search_worst_vector(&engine, &opts).is_err());
    }
}
