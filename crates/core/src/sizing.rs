//! The sleep-transistor sizing methodology.
//!
//! The paper's flow (§4–§5): the switch-level simulator rapidly computes
//! MTCMOS delay degradation over a *large* input-vector space, the worst
//! vectors are identified, and the sleep transistor is sized so the worst
//! degradation meets a target. Two conservative baselines the paper
//! criticises are also implemented: sizing from the sum of internal NMOS
//! widths, and sizing from the worst-case peak current (§4: "almost three
//! times larger than necessary").

use crate::health::{
    fold_item_reports, FailurePolicy, FaultPlan, ItemReport, RunHealth, SweepHealth,
    RETRY_BUDGET_FACTOR,
};
use crate::par::{try_parallel_map_with, ItemPanic, WorkerStats};
use crate::vbsim::{Engine, SleepNetwork, VbsimOptions, VbsimScratch};
use crate::CoreError;
use mtk_netlist::logic::Logic;
use mtk_netlist::netlist::{NetId, Netlist};
use mtk_netlist::tech::Technology;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// One input-vector transition, as primary-input logic levels.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// Settled levels before the step.
    pub from: Vec<Logic>,
    /// Levels after the step at `t = 0`.
    pub to: Vec<Logic>,
}

impl Transition {
    /// Creates a transition.
    pub fn new(from: Vec<Logic>, to: Vec<Logic>) -> Self {
        Transition { from, to }
    }
}

/// A CMOS-vs-MTCMOS delay pair for one transition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayPair {
    /// Baseline delay with no sleep device, seconds.
    pub cmos: f64,
    /// Delay through the sized sleep device, seconds.
    pub mtcmos: f64,
}

impl DelayPair {
    /// Fractional degradation `(mtcmos − cmos) / cmos`.
    ///
    /// A zero (or negative) baseline is a broken measurement, not "no
    /// degradation": if the MTCMOS leg still took time, the degradation
    /// is reported as `f64::INFINITY` so sizing treats the pair as
    /// worst-case instead of silently ranking it harmless. Only when
    /// both legs are ≤ 0 (nothing switched in either) is it 0.
    pub fn degradation(&self) -> f64 {
        if self.cmos > 0.0 {
            (self.mtcmos - self.cmos) / self.cmos
        } else if self.mtcmos > 0.0 {
            f64::INFINITY
        } else {
            0.0
        }
    }
}

/// Measures the CMOS and MTCMOS delays of one transition with the
/// switch-level simulator. `probes` restricts the delay measurement
/// (`None` = the netlist's primary outputs). Returns `None` when no
/// probed net switches (the transition does not exercise the probes).
///
/// A stalled MTCMOS run reports `f64::INFINITY` delay.
///
/// # Errors
///
/// Propagates simulator errors ([`CoreError`]).
pub fn vbsim_delay_pair(
    engine: &Engine<'_>,
    tr: &Transition,
    probes: Option<&[NetId]>,
    sleep: SleepNetwork,
    base: &VbsimOptions,
) -> Result<Option<DelayPair>, CoreError> {
    vbsim_delay_pair_stats(engine, tr, probes, sleep, base).map(|(pair, _)| pair)
}

/// [`vbsim_delay_pair`] plus the number of breakpoints the two runs
/// solved — the cost counter the parallel screening/search engines report
/// per worker.
///
/// # Errors
///
/// As [`vbsim_delay_pair`].
pub fn vbsim_delay_pair_stats(
    engine: &Engine<'_>,
    tr: &Transition,
    probes: Option<&[NetId]>,
    sleep: SleepNetwork,
    base: &VbsimOptions,
) -> Result<(Option<DelayPair>, u64), CoreError> {
    vbsim_delay_pair_health(engine, tr, probes, sleep, base)
        .map(|(pair, health)| (pair, health.breakpoints as u64))
}

/// [`vbsim_delay_pair`] plus the summed [`RunHealth`] of the CMOS and
/// MTCMOS runs — the telemetry the quarantining sweeps aggregate into
/// [`SweepHealth`].
///
/// # Errors
///
/// As [`vbsim_delay_pair`].
pub fn vbsim_delay_pair_health(
    engine: &Engine<'_>,
    tr: &Transition,
    probes: Option<&[NetId]>,
    sleep: SleepNetwork,
    base: &VbsimOptions,
) -> Result<(Option<DelayPair>, RunHealth), CoreError> {
    vbsim_delay_pair_health_with(engine, tr, probes, sleep, base, &mut VbsimScratch::new())
}

/// [`vbsim_delay_pair_health`] with caller-owned simulator scratch (see
/// [`Engine::run_with`]): a sweep measuring many transitions reuses one
/// scratch so the warm simulator loop allocates nothing. Results are
/// bit-identical to the scratch-free call.
///
/// # Errors
///
/// As [`vbsim_delay_pair`].
pub fn vbsim_delay_pair_health_with(
    engine: &Engine<'_>,
    tr: &Transition,
    probes: Option<&[NetId]>,
    sleep: SleepNetwork,
    base: &VbsimOptions,
    scratch: &mut VbsimScratch,
) -> Result<(Option<DelayPair>, RunHealth), CoreError> {
    let outputs = resolve_probes(engine, probes);
    let cmos = run_leg(
        engine,
        tr,
        &outputs,
        &leg_options(SleepNetwork::Cmos, base),
        scratch,
    )?;
    if baseline_delay(&cmos).is_none() {
        return Ok((None, cmos.health));
    }
    let mt = run_leg(engine, tr, &outputs, &leg_options(sleep, base), scratch)?;
    Ok(pair_from_legs(&cmos, &mt))
}

/// The probed nets of a delay measurement (`None` = primary outputs).
fn resolve_probes(engine: &Engine<'_>, probes: Option<&[NetId]>) -> Vec<NetId> {
    match probes {
        Some(p) => p.to_vec(),
        None => engine.netlist().primary_outputs().to_vec(),
    }
}

/// The caller's base options with one leg's sleep network swapped in.
fn leg_options(sleep: SleepNetwork, base: &VbsimOptions) -> VbsimOptions {
    VbsimOptions {
        sleep,
        ..base.clone()
    }
}

/// Everything delay extraction needs from one simulator leg (one engine
/// run at one sleep configuration) — the unit a [`ScreeningCache`]
/// stores. Keeping the *stored* [`RunHealth`] alongside the crossings is
/// what makes cached reruns bit-identical: a cache hit replays the
/// original run's telemetry instead of re-measuring it.
#[derive(Debug, Clone, PartialEq)]
struct LegResult {
    /// Per-probe last V<sub>dd</sub>/2 crossing time, index-aligned with
    /// the probe list; `None` when that probe never switched.
    crossings: Vec<Option<f64>>,
    /// The run stalled (a discharge path was cut off by the sleep device).
    stalled: bool,
    /// The run hit its breakpoint budget before settling.
    truncated: bool,
    /// The run's own health counters.
    health: RunHealth,
}

/// Runs one leg and condenses it to the measurements sizing needs.
fn run_leg(
    engine: &Engine<'_>,
    tr: &Transition,
    outputs: &[NetId],
    opts: &VbsimOptions,
    scratch: &mut VbsimScratch,
) -> Result<LegResult, CoreError> {
    let run = engine.run_with(&tr.from, &tr.to, opts, scratch)?;
    Ok(LegResult {
        crossings: outputs.iter().map(|&n| run.last_crossing_time(n)).collect(),
        stalled: run.stalled,
        truncated: run.truncated,
        health: run.health,
    })
}

/// The worst baseline delay over the probes, `None` when nothing
/// switched in the CMOS leg (the transition does not exercise them).
fn baseline_delay(cmos: &LegResult) -> Option<f64> {
    cmos.crossings
        .iter()
        .flatten()
        .copied()
        .fold(None, |acc: Option<f64>, t| {
            Some(acc.map_or(t, |a| a.max(t)))
        })
}

/// Combines a CMOS and an MTCMOS leg into a [`DelayPair`] plus summed
/// health. Probes that crossed in the baseline but never crossed under
/// MTCMOS report an infinite delay (the gate stalled) rather than being
/// silently dropped — see [`crate::vbsim::worst_delay_vs_baseline`].
fn pair_from_legs(cmos: &LegResult, mt: &LegResult) -> (Option<DelayPair>, RunHealth) {
    let mut health = cmos.health;
    let Some(d_cmos) = baseline_delay(cmos) else {
        return (None, health);
    };
    health.absorb(&mt.health);
    let d_mt = if mt.stalled || mt.truncated {
        f64::INFINITY
    } else {
        crate::vbsim::worst_delay_vs_baseline(&cmos.crossings, &mt.crossings).unwrap_or(d_cmos)
    };
    (
        Some(DelayPair {
            cmos: d_cmos,
            mtcmos: d_mt,
        }),
        health,
    )
}

/// The exact inputs that determine one leg's result: netlist and
/// technology fingerprints, probes, transition, sleep network, and
/// every [`VbsimOptions`] field the simulator reads. Two legs with
/// equal keys produce bit-identical [`LegResult`]s, so a cache lookup
/// can stand in for a re-simulation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct LegKey {
    fingerprint: u64,
    /// [`Technology::fingerprint`] of the engine's technology — the
    /// same netlist under different process parameters must not share
    /// cached legs.
    tech: u64,
    probes: Vec<usize>,
    from: Vec<u8>,
    to: Vec<u8>,
    /// Discriminant plus bit pattern of the parameter (0 for CMOS).
    sleep: (u8, u64),
    body_effect: bool,
    reverse_conduction: bool,
    t_stop_bits: u64,
    max_events: usize,
}

/// Tag prefix of leg records in a persistent store, versioned
/// separately from the store container format: bump when the key or
/// value encoding below changes so stale records read as misses (the
/// key no longer matches), never as wrong answers.
const LEG_RECORD_TAG: &[u8; 4] = b"leg1";

impl LegKey {
    /// Canonical byte encoding of the key for the persistent store:
    /// tag, then every field little-endian with length-prefixed
    /// variable parts. Equal keys encode to equal bytes and vice versa.
    fn store_key(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.probes.len() * 8);
        out.extend_from_slice(LEG_RECORD_TAG);
        out.extend_from_slice(&self.fingerprint.to_le_bytes());
        out.extend_from_slice(&self.tech.to_le_bytes());
        out.extend_from_slice(&(self.probes.len() as u32).to_le_bytes());
        for &p in &self.probes {
            out.extend_from_slice(&(p as u64).to_le_bytes());
        }
        out.extend_from_slice(&(self.from.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.from);
        out.extend_from_slice(&(self.to.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.to);
        out.push(self.sleep.0);
        out.extend_from_slice(&self.sleep.1.to_le_bytes());
        out.push(self.body_effect as u8);
        out.push(self.reverse_conduction as u8);
        out.extend_from_slice(&self.t_stop_bits.to_le_bytes());
        out.extend_from_slice(&(self.max_events as u64).to_le_bytes());
        out
    }
}

impl LegResult {
    /// Byte encoding of one stored leg: crossings (presence byte +
    /// `f64::to_bits`), flags, then every [`RunHealth`] counter — the
    /// stored health is what makes a cross-process replay bit-identical.
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.crossings.len() * 9);
        out.extend_from_slice(&(self.crossings.len() as u32).to_le_bytes());
        for c in &self.crossings {
            match c {
                Some(t) => {
                    out.push(1);
                    out.extend_from_slice(&t.to_bits().to_le_bytes());
                }
                None => {
                    out.push(0);
                    out.extend_from_slice(&0u64.to_le_bytes());
                }
            }
        }
        out.push(self.stalled as u8);
        out.push(self.truncated as u8);
        for v in [
            self.health.breakpoints,
            self.health.max_events,
            self.health.glitch_reversals,
            self.health.vx_fallbacks,
            self.health.cache_hits,
            self.health.cache_misses,
        ] {
            out.extend_from_slice(&(v as u64).to_le_bytes());
        }
        out
    }

    /// Inverse of [`LegResult::encode`]. Returns `None` on any length or
    /// flag mismatch — a malformed record is treated as a cache miss,
    /// never served.
    fn decode(bytes: &[u8]) -> Option<LegResult> {
        fn take<'a>(bytes: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
            if bytes.len() < n {
                return None;
            }
            let (head, tail) = bytes.split_at(n);
            *bytes = tail;
            Some(head)
        }
        fn take_u64(bytes: &mut &[u8]) -> Option<u64> {
            Some(u64::from_le_bytes(take(bytes, 8)?.try_into().ok()?))
        }
        let mut rest = bytes;
        let n = u32::from_le_bytes(take(&mut rest, 4)?.try_into().ok()?) as usize;
        let mut crossings = Vec::with_capacity(n);
        for _ in 0..n {
            let present = take(&mut rest, 1)?[0];
            let bits = take_u64(&mut rest)?;
            crossings.push(match present {
                0 => None,
                1 => Some(f64::from_bits(bits)),
                _ => return None,
            });
        }
        let flag = |b: u8| match b {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        };
        let stalled = flag(take(&mut rest, 1)?[0])?;
        let truncated = flag(take(&mut rest, 1)?[0])?;
        let health = RunHealth {
            breakpoints: take_u64(&mut rest)? as usize,
            max_events: take_u64(&mut rest)? as usize,
            glitch_reversals: take_u64(&mut rest)? as usize,
            vx_fallbacks: take_u64(&mut rest)? as usize,
            cache_hits: take_u64(&mut rest)? as usize,
            cache_misses: take_u64(&mut rest)? as usize,
        };
        if !rest.is_empty() {
            return None;
        }
        Some(LegResult {
            crossings,
            stalled,
            truncated,
            health,
        })
    }
}

impl LegKey {
    fn new(
        fingerprint: u64,
        tech: u64,
        outputs: &[NetId],
        tr: &Transition,
        sleep: SleepNetwork,
        base: &VbsimOptions,
    ) -> Self {
        fn levels(side: &[Logic]) -> Vec<u8> {
            side.iter()
                .map(|l| match l {
                    Logic::Zero => 0,
                    Logic::One => 1,
                    Logic::X => 2,
                })
                .collect()
        }
        LegKey {
            fingerprint,
            tech,
            probes: outputs.iter().map(|n| n.index()).collect(),
            from: levels(&tr.from),
            to: levels(&tr.to),
            sleep: match sleep {
                SleepNetwork::Cmos => (0, 0),
                SleepNetwork::Resistance(r) => (1, r.to_bits()),
                SleepNetwork::Transistor { w_over_l } => (2, w_over_l.to_bits()),
            },
            body_effect: base.body_effect,
            reverse_conduction: base.reverse_conduction,
            t_stop_bits: base.t_stop.to_bits(),
            max_events: base.max_events,
        }
    }
}

/// A deterministic memo of switch-level simulator legs, keyed by
/// everything that determines a leg's result (`LegKey`). The sizing
/// entry points (`*_cached`) consult it before simulating, so a
/// bisection that probes the same transition at many sleep sizes pays
/// for its CMOS baseline once, and a repeated sweep pays for nothing.
///
/// Determinism contract: a hit returns the *stored* `LegResult` —
/// crossings **and** [`RunHealth`] — so warm reruns are bit-identical to
/// cold ones, including aggregated telemetry. Hit/miss totals are
/// exposed here and per-call in [`RunHealth::cache_hits`] /
/// [`RunHealth::cache_misses`]. The cache is `Sync`, but the counters
/// are only schedule-independent when each key is driven from one
/// thread (the serial sizing loops); racing computes of the same key
/// stay correct but may double-count misses.
///
/// # Persistence
///
/// By default the memo is in-memory only and dies with the process.
/// [`ScreeningCache::with_store`] / [`ScreeningCache::persistent`]
/// attach a crash-safe [`mtk_store::Store`] tier consulted between the
/// memory map and the simulator: a store hit decodes the stored leg
/// (replaying its [`RunHealth`] bit-identically, exactly like a memory
/// hit), and every simulated leg is written through. Store write
/// failures are counted ([`CacheSnapshot::store_put_errors`]), never
/// propagated — a broken disk degrades to an in-memory cache, it does
/// not fail sizing.
#[derive(Debug, Default)]
pub struct ScreeningCache {
    legs: std::sync::Mutex<std::collections::HashMap<LegKey, LegResult>>,
    hits: std::sync::atomic::AtomicUsize,
    misses: std::sync::atomic::AtomicUsize,
    store: Option<mtk_store::Store>,
    store_hits: std::sync::atomic::AtomicUsize,
    store_misses: std::sync::atomic::AtomicUsize,
    store_put_errors: std::sync::atomic::AtomicUsize,
}

/// A point-in-time health snapshot of a [`ScreeningCache`], the unit
/// `mtk serve` reports in its status response. All counters are
/// **process-lifetime** (since the cache was constructed), except
/// [`CacheSnapshot::store`], which reflects the persistent log.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// Distinct legs in the in-memory map right now.
    pub legs: usize,
    /// Legs served from memory or store since construction.
    pub hits: usize,
    /// Legs simulated since construction.
    pub misses: usize,
    /// Legs decoded from the persistent store (subset of `hits`).
    pub store_hits: usize,
    /// Legs simulated because the attached store had no usable record.
    /// Zero when no store is attached.
    pub store_misses: usize,
    /// Store writes that failed and were swallowed (cache degraded to
    /// memory-only for those legs).
    pub store_put_errors: usize,
    /// Health of the attached persistent store, when there is one.
    pub store: Option<mtk_store::StoreStats>,
}

impl ScreeningCache {
    /// An empty in-memory cache (no persistence).
    pub fn new() -> Self {
        ScreeningCache::default()
    }

    /// An empty cache backed by an already-open persistent store.
    pub fn with_store(store: mtk_store::Store) -> Self {
        ScreeningCache {
            store: Some(store),
            ..ScreeningCache::default()
        }
    }

    /// Opens (or creates) the store log at `path` and attaches it.
    ///
    /// # Errors
    ///
    /// Any [`mtk_store::StoreError`] from [`mtk_store::Store::open`].
    pub fn persistent(path: impl AsRef<std::path::Path>) -> Result<Self, mtk_store::StoreError> {
        Ok(ScreeningCache::with_store(mtk_store::Store::open(path)?))
    }

    /// The attached persistent store, when there is one.
    pub fn store(&self) -> Option<&mtk_store::Store> {
        self.store.as_ref()
    }

    /// Total legs served from the cache (memory or store) since
    /// construction. **Process-lifetime**, not persistent: a new process
    /// starts at zero even when it reuses a store log.
    pub fn hits(&self) -> usize {
        self.hits.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Total legs simulated and inserted since construction
    /// (**process-lifetime**, like [`ScreeningCache::hits`]).
    pub fn misses(&self) -> usize {
        self.misses.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Number of distinct legs in the in-memory map. Store records not
    /// yet touched by this process are not counted — see
    /// [`ScreeningCache::snapshot`] for the store's own occupancy.
    pub fn len(&self) -> usize {
        self.legs.lock().unwrap().len()
    }

    /// Whether the in-memory map holds no legs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A consistent point-in-time health snapshot (occupancy, hit/miss
    /// totals, store tier) for status reporting.
    pub fn snapshot(&self) -> CacheSnapshot {
        use std::sync::atomic::Ordering::Relaxed;
        CacheSnapshot {
            legs: self.len(),
            hits: self.hits.load(Relaxed),
            misses: self.misses.load(Relaxed),
            store_hits: self.store_hits.load(Relaxed),
            store_misses: self.store_misses.load(Relaxed),
            store_put_errors: self.store_put_errors.load(Relaxed),
            store: self.store.as_ref().map(|s| s.stats()),
        }
    }

    /// Looks up or computes one leg. The boolean reports a hit. Only
    /// successful runs are cached; errors always propagate fresh.
    fn leg(
        &self,
        engine: &Engine<'_>,
        tr: &Transition,
        outputs: &[NetId],
        sleep: SleepNetwork,
        base: &VbsimOptions,
        scratch: &mut VbsimScratch,
    ) -> Result<(LegResult, bool), CoreError> {
        use std::sync::atomic::Ordering::Relaxed;
        let key = LegKey::new(
            engine.fingerprint(),
            engine.tech().fingerprint(),
            outputs,
            tr,
            sleep,
            base,
        );
        if let Some(found) = self.legs.lock().unwrap().get(&key).cloned() {
            self.hits.fetch_add(1, Relaxed);
            return Ok((found, true));
        }
        // Second tier: the persistent store. A decodable record replays
        // exactly like a memory hit (stored health included); a missing
        // or malformed one falls through to simulation.
        if let Some(store) = &self.store {
            if let Some(leg) = store
                .get(&key.store_key())
                .and_then(|bytes| LegResult::decode(&bytes))
            {
                self.store_hits.fetch_add(1, Relaxed);
                self.hits.fetch_add(1, Relaxed);
                self.legs.lock().unwrap().insert(key, leg.clone());
                return Ok((leg, true));
            }
            self.store_misses.fetch_add(1, Relaxed);
        }
        // Simulate without holding the lock; concurrent misses on the
        // same key both compute (identical results, so last-write-wins
        // is harmless).
        let leg = run_leg(engine, tr, outputs, &leg_options(sleep, base), scratch)?;
        self.misses.fetch_add(1, Relaxed);
        if let Some(store) = &self.store {
            if store.put(&key.store_key(), &leg.encode()).is_err() {
                self.store_put_errors.fetch_add(1, Relaxed);
            }
        }
        self.legs.lock().unwrap().insert(key, leg.clone());
        Ok((leg, false))
    }
}

/// Adds per-leg cache hit/miss counts to a measurement's health.
fn count_cache_legs(health: &mut RunHealth, leg_hits: &[bool]) {
    for &hit in leg_hits {
        if hit {
            health.cache_hits += 1;
        } else {
            health.cache_misses += 1;
        }
    }
}

/// [`vbsim_delay_pair_health`] through a [`ScreeningCache`]: each of the
/// two legs is served from the cache when an identical leg was measured
/// before. The returned pair is bit-identical to the uncached call; the
/// returned health additionally carries [`RunHealth::cache_hits`] /
/// [`RunHealth::cache_misses`] for the legs this call needed.
///
/// # Errors
///
/// As [`vbsim_delay_pair`].
pub fn vbsim_delay_pair_cached(
    engine: &Engine<'_>,
    tr: &Transition,
    probes: Option<&[NetId]>,
    sleep: SleepNetwork,
    base: &VbsimOptions,
    cache: &ScreeningCache,
) -> Result<(Option<DelayPair>, RunHealth), CoreError> {
    vbsim_delay_pair_cached_with(
        engine,
        tr,
        probes,
        sleep,
        base,
        cache,
        &mut VbsimScratch::new(),
    )
}

/// [`vbsim_delay_pair_cached`] with caller-owned simulator scratch, so a
/// bisection or sweep pays no per-measurement allocation on cache
/// misses. Results are bit-identical to the scratch-free call.
///
/// # Errors
///
/// As [`vbsim_delay_pair`].
pub fn vbsim_delay_pair_cached_with(
    engine: &Engine<'_>,
    tr: &Transition,
    probes: Option<&[NetId]>,
    sleep: SleepNetwork,
    base: &VbsimOptions,
    cache: &ScreeningCache,
    scratch: &mut VbsimScratch,
) -> Result<(Option<DelayPair>, RunHealth), CoreError> {
    let outputs = resolve_probes(engine, probes);
    let (cmos, cmos_hit) = cache.leg(engine, tr, &outputs, SleepNetwork::Cmos, base, scratch)?;
    if baseline_delay(&cmos).is_none() {
        let mut health = cmos.health;
        count_cache_legs(&mut health, &[cmos_hit]);
        return Ok((None, health));
    }
    let (mt, mt_hit) = cache.leg(engine, tr, &outputs, sleep, base, scratch)?;
    let (pair, mut health) = pair_from_legs(&cmos, &mt);
    count_cache_legs(&mut health, &[cmos_hit, mt_hit]);
    Ok((pair, health))
}

/// One point of a sizing sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Sleep transistor W/L.
    pub w_over_l: f64,
    /// Delays at this size.
    pub delays: DelayPair,
}

/// Sweeps sleep-transistor sizes for one transition (the Fig 7 / Fig 10 /
/// Fig 13 x-axis).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn degradation_sweep(
    engine: &Engine<'_>,
    tr: &Transition,
    probes: Option<&[NetId]>,
    sizes: &[f64],
    base: &VbsimOptions,
) -> Result<Vec<SweepPoint>, CoreError> {
    // A throwaway cache still pays off within one call: the CMOS
    // baseline leg is shared by every size.
    let cache = ScreeningCache::new();
    degradation_sweep_cached(engine, tr, probes, sizes, base, &cache).map(|(out, _)| out)
}

/// [`degradation_sweep`] through a caller-owned [`ScreeningCache`]:
/// sweep points are bit-identical to the uncached call, the CMOS
/// baseline is simulated at most once, and legs already in the cache
/// (e.g. from a previous sweep of the same transition) are not rerun.
/// The summed [`RunHealth`] reports the per-leg cache traffic.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn degradation_sweep_cached(
    engine: &Engine<'_>,
    tr: &Transition,
    probes: Option<&[NetId]>,
    sizes: &[f64],
    base: &VbsimOptions,
    cache: &ScreeningCache,
) -> Result<(Vec<SweepPoint>, RunHealth), CoreError> {
    let mut health = RunHealth::default();
    let mut out = Vec::with_capacity(sizes.len());
    let mut scratch = VbsimScratch::new();
    for &wl in sizes {
        let (pair, h) = vbsim_delay_pair_cached_with(
            engine,
            tr,
            probes,
            SleepNetwork::Transistor { w_over_l: wl },
            base,
            cache,
            &mut scratch,
        )?;
        health.absorb(&h);
        if let Some(delays) = pair {
            out.push(SweepPoint {
                w_over_l: wl,
                delays,
            });
        }
    }
    Ok((out, health))
}

/// A screened vector: its index in the caller's transition list and its
/// measured delays.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScreenedVector {
    /// Index into the transition slice passed to [`screen_vectors`].
    pub index: usize,
    /// Delays at the screening size.
    pub delays: DelayPair,
}

/// The screening tool (§5, §7): runs every transition through the
/// switch-level simulator at a fixed sleep size and returns those that
/// switch the probes, sorted worst-degradation first. The top of this
/// list is what one then verifies "with a more detailed simulator like
/// SPICE".
///
/// # Errors
///
/// Propagates simulator errors.
pub fn screen_vectors(
    engine: &Engine<'_>,
    transitions: &[Transition],
    probes: Option<&[NetId]>,
    w_over_l: f64,
    base: &VbsimOptions,
) -> Result<Vec<ScreenedVector>, CoreError> {
    screen_vectors_quarantined(
        engine,
        transitions,
        probes,
        w_over_l,
        base,
        FailurePolicy::FailFast,
        &FaultPlan::none(),
    )
    .map(|(screened, _)| screened)
}

/// One screening attempt of one transition: fault-injection check, then
/// the CMOS/MTCMOS delay pair, with health and worker counters updated.
#[allow(clippy::too_many_arguments)]
fn screen_attempt(
    engine: &Engine<'_>,
    scratch: &mut VbsimScratch,
    index: usize,
    tr: &Transition,
    probes: Option<&[NetId]>,
    w_over_l: f64,
    opts: &VbsimOptions,
    fault: &FaultPlan,
    attempt: usize,
    run: &mut RunHealth,
    stats: &mut WorkerStats,
) -> Result<Option<ScreenedVector>, CoreError> {
    fault.check(index, attempt)?;
    let result = vbsim_delay_pair_health_with(
        engine,
        tr,
        probes,
        SleepNetwork::Transistor { w_over_l },
        opts,
        scratch,
    );
    match result {
        Ok((pair, health)) => {
            run.absorb(&health);
            stats.breakpoints += health.breakpoints as u64;
            Ok(pair.map(|delays| ScreenedVector { index, delays }))
        }
        Err(e) => {
            if let CoreError::EventOverflow { events, .. } = e {
                // The overflowing run's cost is real — count it.
                run.breakpoints += events;
                run.max_events = run.max_events.max(opts.max_events);
                stats.breakpoints += events as u64;
            }
            Err(e)
        }
    }
}

/// One screening work item under the retry policy: a first attempt at
/// the caller's budget, then — only for [`CoreError::EventOverflow`] —
/// one retry at a budget relaxed by [`RETRY_BUDGET_FACTOR`].
#[allow(clippy::too_many_arguments)]
fn screen_item(
    engine: &Engine<'_>,
    scratch: &mut VbsimScratch,
    index: usize,
    tr: &Transition,
    probes: Option<&[NetId]>,
    w_over_l: f64,
    base: &VbsimOptions,
    fault: &FaultPlan,
    stats: &mut WorkerStats,
) -> ItemReport<Option<ScreenedVector>> {
    stats.vectors += 1;
    let mut run = RunHealth::default();
    let mut value = screen_attempt(
        engine, scratch, index, tr, probes, w_over_l, base, fault, 0, &mut run, stats,
    );
    let mut retried = false;
    if matches!(value, Err(CoreError::EventOverflow { .. })) {
        retried = true;
        let relaxed = VbsimOptions {
            max_events: base.max_events.saturating_mul(RETRY_BUDGET_FACTOR),
            ..base.clone()
        };
        value = screen_attempt(
            engine, scratch, index, tr, probes, w_over_l, &relaxed, fault, 1, &mut run, stats,
        );
    }
    ItemReport {
        value,
        retried,
        run,
    }
}

/// [`screen_vectors`] with quarantine semantics: per-transition failures
/// (including panics, caught at the item boundary) are collected
/// index-ordered in the returned [`SweepHealth`] under
/// [`FailurePolicy::Quarantine`] instead of aborting the sweep, and
/// `EventOverflow` transitions get one automatic retry at a relaxed
/// breakpoint budget before being quarantined. `fault` injects
/// deterministic failures for testing ([`FaultPlan::none`] in
/// production).
///
/// # Errors
///
/// * Under [`FailurePolicy::FailFast`], the error of the lowest-indexed
///   failing transition.
/// * Under [`FailurePolicy::Quarantine`],
///   [`CoreError::TooManyFailures`] when more than `max_failures`
///   transitions fail.
pub fn screen_vectors_quarantined(
    engine: &Engine<'_>,
    transitions: &[Transition],
    probes: Option<&[NetId]>,
    w_over_l: f64,
    base: &VbsimOptions,
    policy: FailurePolicy,
    fault: &FaultPlan,
) -> Result<(Vec<ScreenedVector>, SweepHealth), CoreError> {
    let mut stats = WorkerStats::default();
    let mut scratch = VbsimScratch::new();
    let reports: Vec<Result<ItemReport<Option<ScreenedVector>>, ItemPanic>> = transitions
        .iter()
        .enumerate()
        .map(|(index, tr)| {
            catch_unwind(AssertUnwindSafe(|| {
                screen_item(
                    engine,
                    &mut scratch,
                    index,
                    tr,
                    probes,
                    w_over_l,
                    base,
                    fault,
                    &mut stats,
                )
            }))
            .map_err(|payload| ItemPanic {
                index,
                message: crate::par::panic_message(payload),
            })
        })
        .collect();
    let (values, health) = fold_item_reports(reports, policy)?;
    let mut out: Vec<ScreenedVector> = values.into_iter().flatten().flatten().collect();
    sort_worst_first(&mut out);
    Ok((out, health))
}

/// Worst-degradation-first ordering shared by the serial and parallel
/// screeners. The sort is stable, so ties keep transition-index order and
/// the result is identical however the measurements were scheduled.
fn sort_worst_first(screened: &mut [ScreenedVector]) {
    screened.sort_by(|a, b| {
        b.delays
            .degradation()
            .partial_cmp(&a.delays.degradation())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
}

/// Execution report of one [`screen_vectors_par`] call.
#[derive(Debug)]
pub struct ScreenReport {
    /// Per-worker counters (vectors simulated, breakpoints solved, busy
    /// seconds).
    pub workers: Vec<WorkerStats>,
    /// End-to-end wall time of the screening phase, seconds.
    pub wall: f64,
    /// Sweep-level health: quarantined vectors, retries, recovered
    /// panics, and summed per-run counters.
    pub health: SweepHealth,
}

impl ScreenReport {
    /// This screening phase as a [`mtk_trace::PhaseTrace`]: the health
    /// counters (deterministic) plus this report's wall time and
    /// per-worker sinks (timing section).
    pub fn to_phase(&self, name: &str) -> mtk_trace::PhaseTrace {
        let mut phase = self.health.phase(name).with_wall(self.wall);
        phase.workers = crate::par::worker_traces(&self.workers);
        phase
    }
}

/// Parallel [`screen_vectors`]: shards the transitions across worker
/// threads, each owning its own [`Engine`] over the shared
/// netlist/technology (engine setup is paid once per worker, not per
/// vector). The returned ranking is bit-identical to the serial screener
/// at any thread count.
///
/// # Errors
///
/// Propagates simulator errors (the error of the lowest-indexed failing
/// transition, deterministically).
pub fn screen_vectors_par(
    netlist: &Netlist,
    tech: &Technology,
    transitions: &[Transition],
    probes: Option<&[NetId]>,
    w_over_l: f64,
    base: &VbsimOptions,
    threads: usize,
) -> Result<(Vec<ScreenedVector>, ScreenReport), CoreError> {
    screen_vectors_par_quarantined(
        netlist,
        tech,
        transitions,
        probes,
        w_over_l,
        base,
        threads,
        FailurePolicy::FailFast,
        &FaultPlan::none(),
    )
}

/// [`screen_vectors_par`] with quarantine semantics — the parallel
/// counterpart of [`screen_vectors_quarantined`]. Worker panics are
/// caught at the item boundary by the executor; failures, retries and
/// fallback counters land index-ordered in `report.health`, so both the
/// ranking *and* the quarantine set are bit-identical at any thread
/// count.
///
/// # Errors
///
/// As [`screen_vectors_quarantined`].
#[allow(clippy::too_many_arguments)]
pub fn screen_vectors_par_quarantined(
    netlist: &Netlist,
    tech: &Technology,
    transitions: &[Transition],
    probes: Option<&[NetId]>,
    w_over_l: f64,
    base: &VbsimOptions,
    threads: usize,
    policy: FailurePolicy,
    fault: &FaultPlan,
) -> Result<(Vec<ScreenedVector>, ScreenReport), CoreError> {
    let t0 = Instant::now();
    let (reports, workers) = try_parallel_map_with(
        threads,
        8,
        transitions,
        || (Engine::new(netlist, tech), VbsimScratch::new()),
        |(engine, scratch), index, tr, stats| {
            screen_item(
                engine, scratch, index, tr, probes, w_over_l, base, fault, stats,
            )
        },
    );
    let (values, health) = fold_item_reports(reports, policy)?;
    let mut out: Vec<ScreenedVector> = values.into_iter().flatten().flatten().collect();
    sort_worst_first(&mut out);
    Ok((
        out,
        ScreenReport {
            workers,
            wall: t0.elapsed().as_secs_f64(),
            health,
        },
    ))
}

/// Binary-searches the smallest sleep W/L whose worst degradation over
/// the given transitions is at most `target` (e.g. `0.05` for the
/// paper's 5 % criterion), within `[lo, hi]`.
///
/// # Errors
///
/// * [`CoreError::SizingInfeasible`] when even `hi` misses the target.
/// * Propagates simulator errors.
pub fn size_for_target(
    engine: &Engine<'_>,
    transitions: &[Transition],
    probes: Option<&[NetId]>,
    target: f64,
    (lo, hi): (f64, f64),
    base: &VbsimOptions,
) -> Result<f64, CoreError> {
    // A throwaway cache still pays off within one call: every bisection
    // probe shares each transition's CMOS baseline leg.
    let cache = ScreeningCache::new();
    size_for_target_cached(engine, transitions, probes, target, (lo, hi), base, &cache)
        .map(|(wl, _)| wl)
}

/// [`size_for_target`] through a caller-owned [`ScreeningCache`]: the
/// returned size is bit-identical to the uncached call, each
/// transition's CMOS baseline is simulated at most once across the whole
/// bisection, and a repeated run with the same cache re-simulates
/// nothing. The summed [`RunHealth`] reports the per-leg cache traffic.
///
/// # Errors
///
/// As [`size_for_target`].
pub fn size_for_target_cached(
    engine: &Engine<'_>,
    transitions: &[Transition],
    probes: Option<&[NetId]>,
    target: f64,
    (lo, hi): (f64, f64),
    base: &VbsimOptions,
    cache: &ScreeningCache,
) -> Result<(f64, RunHealth), CoreError> {
    assert!(lo > 0.0 && hi > lo, "invalid sizing bracket");
    let mut health = RunHealth::default();
    let mut scratch = VbsimScratch::new();
    let worst_degradation =
        |wl: f64, health: &mut RunHealth, scratch: &mut VbsimScratch| -> Result<f64, CoreError> {
            let mut worst = 0.0f64;
            for tr in transitions {
                let (pair, h) = vbsim_delay_pair_cached_with(
                    engine,
                    tr,
                    probes,
                    SleepNetwork::Transistor { w_over_l: wl },
                    base,
                    cache,
                    scratch,
                )?;
                health.absorb(&h);
                if let Some(p) = pair {
                    worst = worst.max(p.degradation());
                }
            }
            Ok(worst)
        };
    if worst_degradation(hi, &mut health, &mut scratch)? > target {
        return Err(CoreError::SizingInfeasible {
            target,
            at_w_over_l: hi,
        });
    }
    let (mut lo, mut hi) = (lo, hi);
    for _ in 0..40 {
        let mid = (lo * hi).sqrt(); // log-space bisection
        if worst_degradation(mid, &mut health, &mut scratch)? > target {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi / lo < 1.005 {
            break;
        }
    }
    Ok((hi, health))
}

/// The peak-current sizing baseline (§4): size the sleep device so a
/// *sustained* current `i_peak` bounces the virtual ground by at most
/// `vx_budget` volts:
/// `W/L = i_peak / (kp_n · (vdd − vt_high) · vx_budget)`.
///
/// The paper shows this is ≈3× conservative because real current peaks
/// are brief.
pub fn peak_current_w_over_l(tech: &Technology, i_peak: f64, vx_budget: f64) -> f64 {
    assert!(
        i_peak > 0.0 && vx_budget > 0.0,
        "need positive current and budget"
    );
    let r_needed = vx_budget / i_peak;
    1.0 / (tech.kp_n * (tech.vdd - tech.vt_high) * r_needed)
}

/// The sum-of-widths sizing baseline (§2: "can produce unnecessarily
/// large estimates"): W/L equal to the total internal low-V<sub>t</sub>
/// NMOS width.
pub fn sum_of_widths_w_over_l(netlist: &Netlist, tech: &Technology) -> f64 {
    netlist.total_nmos_width_units(tech)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtk_circuits::tree::InverterTree;

    fn tree_transition(_tree: &InverterTree) -> Transition {
        Transition::new(vec![Logic::Zero], vec![Logic::One])
    }

    #[test]
    fn degradation_with_zero_baseline_is_infinite() {
        // Regression: a broken (zero) baseline with a real MTCMOS delay
        // used to report 0.0 — "no degradation" — and rank the vector
        // harmless. It must rank worst-case instead.
        let broken = DelayPair {
            cmos: 0.0,
            mtcmos: 1e-9,
        };
        assert_eq!(broken.degradation(), f64::INFINITY);
        let negative = DelayPair {
            cmos: -1e-12,
            mtcmos: 1e-9,
        };
        assert_eq!(negative.degradation(), f64::INFINITY);
        // Only when neither leg took time is there genuinely nothing to
        // degrade.
        let quiet = DelayPair {
            cmos: 0.0,
            mtcmos: 0.0,
        };
        assert_eq!(quiet.degradation(), 0.0);
    }

    #[test]
    fn cached_sweep_is_bit_identical_and_reuses_legs() {
        let tree = InverterTree::paper();
        let tech = Technology::l07();
        let engine = Engine::new(&tree.netlist, &tech);
        let tr = tree_transition(&tree);
        let base = VbsimOptions::default();
        let sizes = [20.0, 11.0, 5.0];

        let plain = degradation_sweep(&engine, &tr, None, &sizes, &base).unwrap();
        let cache = ScreeningCache::new();
        let (cold, cold_health) =
            degradation_sweep_cached(&engine, &tr, None, &sizes, &base, &cache).unwrap();
        assert_eq!(cold, plain);
        // Cold run: one CMOS baseline leg + one MTCMOS leg per size, and
        // the shared baseline already hits after its first computation.
        assert_eq!(cold_health.cache_misses, 1 + sizes.len());
        assert_eq!(cold_health.cache_hits, sizes.len() - 1);
        assert_eq!(cache.misses(), 1 + sizes.len());

        let misses_before = cache.misses();
        let (warm, warm_health) =
            degradation_sweep_cached(&engine, &tr, None, &sizes, &base, &cache).unwrap();
        assert_eq!(warm, cold, "warm rerun must be bit-identical");
        assert_eq!(
            cache.misses(),
            misses_before,
            "warm rerun simulated nothing"
        );
        assert_eq!(warm_health.cache_misses, 0);
        // Two leg lookups per size, all served from the cache.
        assert_eq!(warm_health.cache_hits, 2 * sizes.len());
        // Stored telemetry replays identically: apart from the cache
        // counters themselves, warm health equals cold health.
        assert_eq!(warm_health.breakpoints, cold_health.breakpoints);
        assert_eq!(warm_health.glitch_reversals, cold_health.glitch_reversals);
        assert_eq!(warm_health.vx_fallbacks, cold_health.vx_fallbacks);
    }

    /// Satellite regression for the `.mtk` frontend: every field the
    /// parser can set — technology parameters, primary-output markers,
    /// per-cell drive overrides — must produce distinct cache keys.
    /// Before the technology fingerprint joined `LegKey`, two engines
    /// over the same netlist under different processes shared legs.
    #[test]
    fn cache_keys_distinguish_parser_settable_fields() {
        use mtk_netlist::cell::CellKind;
        use mtk_netlist::netlist::Netlist;

        fn chain(drive: f64, extra_po: bool) -> Netlist {
            let mut nl = Netlist::new("chain");
            let a = nl.add_net("a").unwrap();
            let m = nl.add_net("m").unwrap();
            let y = nl.add_net("y").unwrap();
            nl.mark_primary_input(a).unwrap();
            nl.add_cell("i1", CellKind::Inv, vec![a], m, drive).unwrap();
            nl.add_cell("i2", CellKind::Inv, vec![m], y, 1.0).unwrap();
            nl.mark_primary_output(y);
            if extra_po {
                nl.mark_primary_output(m);
            }
            nl
        }

        let cache = ScreeningCache::new();
        let base = VbsimOptions::default();
        let tr = Transition::new(vec![Logic::Zero], vec![Logic::One]);
        let sleep = SleepNetwork::Transistor { w_over_l: 10.0 };
        let t07 = Technology::l07();
        let t03 = Technology::l03();

        let nl = chain(1.0, false);
        let probes = [nl.find_net("y").unwrap()];
        let e1 = Engine::new(&nl, &t07);
        vbsim_delay_pair_cached(&e1, &tr, Some(&probes), sleep, &base, &cache).unwrap();
        let per_engine = cache.len();
        assert!(per_engine > 0);

        // The same engine again adds no keys (pure hits).
        vbsim_delay_pair_cached(&e1, &tr, Some(&probes), sleep, &base, &cache).unwrap();
        assert_eq!(cache.len(), per_engine, "identical engine must hit");

        // Same netlist, different technology: all legs re-keyed.
        let e2 = Engine::new(&nl, &t03);
        vbsim_delay_pair_cached(&e2, &tr, Some(&probes), sleep, &base, &cache).unwrap();
        assert_eq!(
            cache.len(),
            2 * per_engine,
            "technology change must not share cached legs"
        );

        // Identical except for an extra primary-output marker (probing
        // the same net, so only the netlist fingerprint differs).
        let nl_po = chain(1.0, true);
        let probes_po = [nl_po.find_net("y").unwrap()];
        let e3 = Engine::new(&nl_po, &t07);
        vbsim_delay_pair_cached(&e3, &tr, Some(&probes_po), sleep, &base, &cache).unwrap();
        assert_eq!(
            cache.len(),
            3 * per_engine,
            "primary-output marking must not share cached legs"
        );

        // Identical except for one cell's drive override.
        let nl_drive = chain(2.0, false);
        let probes_drive = [nl_drive.find_net("y").unwrap()];
        let e4 = Engine::new(&nl_drive, &t07);
        vbsim_delay_pair_cached(&e4, &tr, Some(&probes_drive), sleep, &base, &cache).unwrap();
        assert_eq!(
            cache.len(),
            4 * per_engine,
            "cell drive must not share cached legs"
        );
    }

    #[test]
    fn degradation_positive_and_monotone() {
        let tree = InverterTree::paper();
        let tech = Technology::l07();
        let engine = Engine::new(&tree.netlist, &tech);
        let tr = tree_transition(&tree);
        let sweep = degradation_sweep(
            &engine,
            &tr,
            None,
            &[20.0, 11.0, 5.0, 2.0],
            &VbsimOptions::default(),
        )
        .unwrap();
        assert_eq!(sweep.len(), 4);
        let mut last = 0.0;
        for p in &sweep {
            let d = p.delays.degradation();
            assert!(d >= last - 1e-9, "degradation not monotone: {sweep:?}");
            assert!(d > 0.0);
            last = d;
        }
    }

    #[test]
    fn size_for_target_meets_target() {
        let tree = InverterTree::paper();
        let tech = Technology::l07();
        let engine = Engine::new(&tree.netlist, &tech);
        let tr = tree_transition(&tree);
        let base = VbsimOptions::default();
        let wl = size_for_target(
            &engine,
            std::slice::from_ref(&tr),
            None,
            0.30,
            (1.0, 5000.0),
            &base,
        )
        .unwrap();
        let p = vbsim_delay_pair(
            &engine,
            &tr,
            None,
            SleepNetwork::Transistor { w_over_l: wl },
            &base,
        )
        .unwrap()
        .unwrap();
        assert!(p.degradation() <= 0.30 + 1e-6, "{}", p.degradation());
        // And a 2x smaller device misses it (minimality within the
        // bisection tolerance).
        let p_small = vbsim_delay_pair(
            &engine,
            &tr,
            None,
            SleepNetwork::Transistor { w_over_l: wl / 2.0 },
            &base,
        )
        .unwrap()
        .unwrap();
        assert!(p_small.degradation() > 0.30 * 0.8);
    }

    #[test]
    fn infeasible_target_reported() {
        let tree = InverterTree::paper();
        let tech = Technology::l07();
        let engine = Engine::new(&tree.netlist, &tech);
        let tr = tree_transition(&tree);
        let err = size_for_target(
            &engine,
            &[tr],
            None,
            1e-9, // impossible within the tiny bracket below
            (0.1, 0.2),
            &VbsimOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::SizingInfeasible { .. }));
    }

    #[test]
    fn peak_current_formula() {
        let tech = Technology::l03();
        // The paper's own numbers: 1.174 mA, 50 mV budget → W/L ≈ 500
        // (with the paper's implied kp). With our kp of 150 µA/V² and
        // 0.3 V of sleep-gate drive the formula is checked structurally.
        let wl = peak_current_w_over_l(&tech, 1.174e-3, 0.05);
        let r = 0.05 / 1.174e-3;
        assert!((wl - 1.0 / (tech.kp_n * 0.3 * r)).abs() < 1e-9);
    }

    #[test]
    fn parallel_screen_matches_serial_at_any_thread_count() {
        use mtk_circuits::adder::RippleAdder;
        use mtk_circuits::vectors::exhaustive_transitions;
        use mtk_netlist::logic::bits_lsb_first;

        let add = RippleAdder::paper();
        let tech = Technology::l07();
        let engine = Engine::new(&add.netlist, &tech);
        // A slice of the exhaustive space keeps the test fast while still
        // exercising chunked sharding.
        let transitions: Vec<Transition> = exhaustive_transitions(6)
            .into_iter()
            .step_by(17)
            .map(|p| Transition::new(bits_lsb_first(p.from, 6), bits_lsb_first(p.to, 6)))
            .collect();
        let base = VbsimOptions::default();
        let serial = screen_vectors(&engine, &transitions, None, 10.0, &base).unwrap();
        for threads in [1usize, 3, 8] {
            let (par, report) = screen_vectors_par(
                &add.netlist,
                &tech,
                &transitions,
                None,
                10.0,
                &base,
                threads,
            )
            .unwrap();
            assert_eq!(par, serial, "threads={threads}");
            let vectors: u64 = report.workers.iter().map(|w| w.vectors).sum();
            assert_eq!(vectors as usize, transitions.len());
            assert!(report.workers.iter().map(|w| w.breakpoints).sum::<u64>() > 0);
        }
    }

    #[test]
    fn screen_sorts_worst_first() {
        let tree = InverterTree::paper();
        let tech = Technology::l07();
        let engine = Engine::new(&tree.netlist, &tech);
        // 0->1 discharges all nine leaves (bad); 1->0 charges them (good:
        // the NMOS sleep device does not slow pull-ups).
        let trs = vec![
            Transition::new(vec![Logic::One], vec![Logic::Zero]),
            Transition::new(vec![Logic::Zero], vec![Logic::One]),
        ];
        let screened = screen_vectors(&engine, &trs, None, 5.0, &VbsimOptions::default()).unwrap();
        assert_eq!(screened.len(), 2);
        assert_eq!(screened[0].index, 1, "rising input must be worse");
        assert!(screened[0].delays.degradation() > screened[1].delays.degradation());
    }
}
