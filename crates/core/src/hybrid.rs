//! The hybrid flow: switch-level screening → SPICE verification.
//!
//! The paper's intended use of the tool (§5, §7): the fast simulator
//! narrows the input-vector space to the candidates that are sensitive to
//! MTCMOS, and "after the design and simulation space is narrowed
//! sufficiently, the designer could then use a more detailed simulator
//! like SPICE to verify circuit details". This module provides the
//! SPICE side: running a vector transition through the transistor-level
//! expansion and measuring the same delay the switch-level engine
//! reports.

use crate::sizing::{DelayPair, Transition};
use crate::CoreError;
use mtk_netlist::expand::{expand, ExpandOptions, SleepImpl};
use mtk_netlist::netlist::{NetId, Netlist};
use mtk_netlist::tech::Technology;
use mtk_num::waveform::{Edge, Pwl};
use mtk_spice::tran::{transient, TranOptions};

/// Configuration of a SPICE verification run.
#[derive(Debug, Clone, PartialEq)]
pub struct SpiceRunConfig {
    /// Simulation window, seconds.
    pub t_stop: f64,
    /// Nominal time step, seconds.
    pub dt: f64,
    /// Time at which the input vector transitions.
    pub t0: f64,
    /// Whether devices model subthreshold leakage.
    pub with_leakage: bool,
    /// Extra virtual-ground capacitance (§2.2 studies).
    pub vgnd_extra_cap: f64,
}

impl SpiceRunConfig {
    /// A window of `t_stop` seconds with 1000 nominal steps and the
    /// transition at 2 % of the window.
    pub fn window(t_stop: f64) -> Self {
        SpiceRunConfig {
            t_stop,
            dt: t_stop / 1000.0,
            t0: t_stop * 0.02,
            with_leakage: false,
            vgnd_extra_cap: 0.0,
        }
    }
}

/// The outcome of one SPICE transition run.
#[derive(Debug, Clone)]
pub struct SpiceTransition {
    /// Worst settling delay over the probes (last V<sub>dd</sub>/2
    /// crossing after the input reference edge), or `None` if no probe
    /// switched.
    pub delay: Option<f64>,
    /// Per-probe waveforms, parallel to the probe list.
    pub probe_waveforms: Vec<Pwl>,
    /// Virtual-ground waveform (`None` for the CMOS baseline).
    pub vgnd: Option<Pwl>,
    /// Supply-current waveform (through the V<sub>dd</sub> source,
    /// sign-flipped so positive means current drawn from the supply).
    pub supply_current: Option<Pwl>,
    /// The input reference time used for delay measurement.
    pub t_ref: f64,
    /// Gmin-continuation stages the operating point needed (0 = the
    /// direct solve converged).
    pub op_gmin_fallback_stages: usize,
    /// Time steps the transient integrator had to halve to converge.
    pub dt_halvings: usize,
}

/// Runs one input-vector transition at the transistor level.
///
/// `sleep` selects the MTCMOS implementation ([`SleepImpl::AlwaysOn`]
/// for the CMOS baseline). Probes default to the primary outputs.
///
/// # Errors
///
/// * [`CoreError::Netlist`] for expansion problems.
/// * [`CoreError::Spice`] for analysis failures.
/// * [`CoreError::UnknownState`] when a vector drives an input to `X`.
pub fn spice_transition(
    netlist: &Netlist,
    tech: &Technology,
    tr: &Transition,
    probes: Option<&[NetId]>,
    sleep: SleepImpl,
    cfg: &SpiceRunConfig,
) -> Result<SpiceTransition, CoreError> {
    let opts = ExpandOptions {
        sleep,
        vgnd_extra_cap: cfg.vgnd_extra_cap,
        with_leakage: cfg.with_leakage,
        vgnd_junction_cap: true,
    };
    let mut ex = expand(netlist, tech, &opts).map_err(CoreError::Netlist)?;
    if tr.from.len() != netlist.primary_inputs().len() {
        return Err(CoreError::UnknownState(format!(
            "vector width {} != {} primary inputs",
            tr.from.len(),
            netlist.primary_inputs().len()
        )));
    }
    for pos in 0..tr.from.len() {
        ex.set_input_transition(pos, tr.from[pos], tr.to[pos], cfg.t0)
            .map_err(CoreError::Netlist)?;
    }
    // Seed the operating point with the settled logic state — stacked
    // MOSFET netlists are fragile to solve from a cold start, and the
    // gate-level evaluation already knows every rail.
    let settled = netlist.evaluate(&tr.from).map_err(CoreError::Netlist)?;
    ex.apply_initial_state(&settled);
    let probe_nets: Vec<NetId> = match probes {
        Some(p) => p.to_vec(),
        None => netlist.primary_outputs().to_vec(),
    };
    let mut probe_nodes: Vec<_> = probe_nets.iter().map(|&n| ex.node_of(n)).collect();
    if let Some(vg) = ex.vgnd {
        probe_nodes.push(vg);
    }
    let tran_opts = TranOptions::to(cfg.t_stop)
        .with_dt(cfg.dt)
        .with_probes(probe_nodes.clone());
    let res = transient(&ex.circuit, &tran_opts).map_err(CoreError::Spice)?;

    // The input reference edge: the stimulus ramp's 50 % point.
    let t_ref = cfg.t0 + ex.default_slew / 2.0;
    let v_half = tech.v_switch();
    let mut delay: Option<f64> = None;
    let mut probe_waveforms = Vec::with_capacity(probe_nets.len());
    for &n in &probe_nets {
        let w = res.waveform(ex.node_of(n)).map_err(CoreError::Spice)?;
        let last = w
            .crossings(v_half)
            .into_iter().rfind(|c| c.time >= t_ref);
        if let Some(c) = last {
            let d = c.time - t_ref;
            delay = Some(delay.map_or(d, |cur: f64| cur.max(d)));
        }
        probe_waveforms.push(w);
    }
    let vgnd = match ex.vgnd {
        Some(vg) => Some(res.waveform(vg).map_err(CoreError::Spice)?),
        None => None,
    };
    let supply_current = res.source_current("vdd").map(|w| {
        // Branch current flows into the source's positive terminal;
        // current *drawn from* the supply is its negation.
        w.points().iter().map(|&(t, i)| (t, -i)).collect()
    });
    Ok(SpiceTransition {
        delay,
        probe_waveforms,
        vgnd,
        supply_current,
        t_ref,
        op_gmin_fallback_stages: res.op_gmin_fallback_stages,
        dt_halvings: res.dt_halvings,
    })
}

/// Measures the CMOS-vs-MTCMOS delay pair for one transition entirely in
/// SPICE (the reference methodology the switch-level tool is validated
/// against in Figs 10/13/14).
///
/// Returns `None` when no probe switches.
///
/// # Errors
///
/// Propagates [`CoreError`] from either run.
pub fn spice_delay_pair(
    netlist: &Netlist,
    tech: &Technology,
    tr: &Transition,
    probes: Option<&[NetId]>,
    w_over_l: f64,
    cfg: &SpiceRunConfig,
) -> Result<Option<DelayPair>, CoreError> {
    let cmos = spice_transition(netlist, tech, tr, probes, SleepImpl::AlwaysOn, cfg)?;
    let Some(d_cmos) = cmos.delay else {
        return Ok(None);
    };
    let mt = spice_transition(
        netlist,
        tech,
        tr,
        probes,
        SleepImpl::Transistor { w_over_l },
        cfg,
    )?;
    let d_mt = mt.delay.unwrap_or(d_cmos);
    Ok(Some(DelayPair {
        cmos: d_cmos,
        mtcmos: d_mt,
    }))
}

/// Convenience: the last time a waveform crosses `v` after `t_from`, or
/// `None`.
pub fn last_crossing_after(w: &Pwl, v: f64, t_from: f64) -> Option<f64> {
    w.crossings(v)
        .into_iter().rfind(|c| c.time >= t_from)
        .map(|c| c.time)
}

/// First crossing in a given direction after `t_from`.
pub fn first_crossing_after(w: &Pwl, v: f64, edge: Edge, t_from: f64) -> Option<f64> {
    w.first_crossing(v, edge, t_from).map(|c| c.time)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtk_circuits::tree::{InverterTree, TreeSpec};
    use mtk_netlist::logic::Logic;

    fn small_tree() -> InverterTree {
        InverterTree::new(&TreeSpec {
            fanout: 2,
            stages: 2,
            load_cap: 20e-15,
            drive: 1.0,
        })
        .unwrap()
    }

    #[test]
    fn spice_cmos_delay_is_measured() {
        let tree = small_tree();
        let tech = Technology::l07();
        let tr = Transition::new(vec![Logic::Zero], vec![Logic::One]);
        let res = spice_transition(
            &tree.netlist,
            &tech,
            &tr,
            None,
            SleepImpl::AlwaysOn,
            &SpiceRunConfig::window(30e-9),
        )
        .unwrap();
        let d = res.delay.expect("outputs must switch");
        assert!(d > 0.0 && d < 30e-9, "{d}");
        assert!(res.vgnd.is_none());
    }

    #[test]
    fn spice_mtcmos_slower_than_cmos() {
        let tree = small_tree();
        let tech = Technology::l07();
        let tr = Transition::new(vec![Logic::Zero], vec![Logic::One]);
        let pair = spice_delay_pair(
            &tree.netlist,
            &tech,
            &tr,
            None,
            4.0,
            &SpiceRunConfig::window(40e-9),
        )
        .unwrap()
        .unwrap();
        assert!(
            pair.mtcmos > pair.cmos,
            "MTCMOS {} vs CMOS {}",
            pair.mtcmos,
            pair.cmos
        );
        assert!(pair.degradation() > 0.01, "{}", pair.degradation());
    }

    #[test]
    fn vgnd_waveform_bounces() {
        let tree = small_tree();
        let tech = Technology::l07();
        let tr = Transition::new(vec![Logic::Zero], vec![Logic::One]);
        let res = spice_transition(
            &tree.netlist,
            &tech,
            &tr,
            None,
            SleepImpl::Transistor { w_over_l: 4.0 },
            &SpiceRunConfig::window(40e-9),
        )
        .unwrap();
        let vg = res.vgnd.unwrap();
        assert!(vg.max_value().unwrap() > 0.01, "{:?}", vg.max_value());
        // And it recovers toward 0 at the end.
        assert!(vg.final_value().unwrap() < 0.05);
    }

    #[test]
    fn wrong_vector_width_rejected() {
        let tree = small_tree();
        let tech = Technology::l07();
        let tr = Transition::new(vec![], vec![]);
        assert!(spice_transition(
            &tree.netlist,
            &tech,
            &tr,
            None,
            SleepImpl::AlwaysOn,
            &SpiceRunConfig::window(10e-9),
        )
        .is_err());
    }
}
