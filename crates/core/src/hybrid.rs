//! The hybrid flow: switch-level screening → SPICE verification.
//!
//! The paper's intended use of the tool (§5, §7): the fast simulator
//! narrows the input-vector space to the candidates that are sensitive to
//! MTCMOS, and "after the design and simulation space is narrowed
//! sufficiently, the designer could then use a more detailed simulator
//! like SPICE to verify circuit details". This module provides the
//! SPICE side: running a vector transition through the transistor-level
//! expansion and measuring the same delay the switch-level engine
//! reports.

use crate::health::{
    fold_item_reports, FailurePolicy, FaultPlan, ItemReport, RunHealth, SweepHealth,
};
use crate::par::{try_parallel_map_with, WorkerStats};
use crate::sizing::{screen_vectors_par_quarantined, DelayPair, ScreenedVector, Transition};
use crate::vbsim::{worst_delay_vs_baseline, VbsimOptions};
use crate::CoreError;
use mtk_netlist::expand::{expand, ExpandOptions, Expanded, SleepImpl};
use mtk_netlist::logic::Logic;
use mtk_netlist::netlist::{NetId, Netlist};
use mtk_netlist::tech::Technology;
use mtk_num::waveform::{Edge, Pwl};
use mtk_spice::tran::{transient, TranOptions};
use std::time::Instant;

/// Configuration of a SPICE verification run.
#[derive(Debug, Clone, PartialEq)]
pub struct SpiceRunConfig {
    /// Simulation window, seconds.
    pub t_stop: f64,
    /// Nominal time step, seconds.
    pub dt: f64,
    /// Time at which the input vector transitions.
    pub t0: f64,
    /// Whether devices model subthreshold leakage.
    pub with_leakage: bool,
    /// Extra virtual-ground capacitance (§2.2 studies).
    pub vgnd_extra_cap: f64,
}

impl SpiceRunConfig {
    /// A window of `t_stop` seconds with 1000 nominal steps and the
    /// transition at 2 % of the window.
    pub fn window(t_stop: f64) -> Self {
        SpiceRunConfig {
            t_stop,
            dt: t_stop / 1000.0,
            t0: t_stop * 0.02,
            with_leakage: false,
            vgnd_extra_cap: 0.0,
        }
    }
}

/// The outcome of one SPICE transition run.
#[derive(Debug, Clone)]
pub struct SpiceTransition {
    /// Worst settling delay over the probes (last V<sub>dd</sub>/2
    /// crossing after the input reference edge), or `None` if no probe
    /// switched.
    pub delay: Option<f64>,
    /// Per-probe settling delay, parallel to the probe list; `None`
    /// where that probe never crossed after the reference edge. This is
    /// what baseline comparisons need: a probe that switched in CMOS but
    /// is `None` under MTCMOS is a stalled gate, not a quiet one.
    pub probe_delays: Vec<Option<f64>>,
    /// Per-probe waveforms, parallel to the probe list.
    pub probe_waveforms: Vec<Pwl>,
    /// Virtual-ground waveform (`None` for the CMOS baseline).
    pub vgnd: Option<Pwl>,
    /// Supply-current waveform (through the V<sub>dd</sub> source,
    /// sign-flipped so positive means current drawn from the supply).
    pub supply_current: Option<Pwl>,
    /// The input reference time used for delay measurement.
    pub t_ref: f64,
    /// Gmin-continuation stages the operating point needed (0 = the
    /// direct solve converged).
    pub op_gmin_fallback_stages: usize,
    /// Time steps the transient integrator had to halve to converge.
    pub dt_halvings: usize,
}

/// Runs one input-vector transition at the transistor level.
///
/// `sleep` selects the MTCMOS implementation ([`SleepImpl::AlwaysOn`]
/// for the CMOS baseline). Probes default to the primary outputs.
///
/// # Errors
///
/// * [`CoreError::Netlist`] for expansion problems.
/// * [`CoreError::Spice`] for analysis failures.
/// * [`CoreError::UnknownState`] when a vector drives an input to `X`.
pub fn spice_transition(
    netlist: &Netlist,
    tech: &Technology,
    tr: &Transition,
    probes: Option<&[NetId]>,
    sleep: SleepImpl,
    cfg: &SpiceRunConfig,
) -> Result<SpiceTransition, CoreError> {
    let opts = ExpandOptions {
        sleep,
        vgnd_extra_cap: cfg.vgnd_extra_cap,
        with_leakage: cfg.with_leakage,
        vgnd_junction_cap: true,
    };
    let mut ex = expand(netlist, tech, &opts).map_err(CoreError::Netlist)?;
    if tr.from.len() != netlist.primary_inputs().len() {
        return Err(CoreError::UnknownState(format!(
            "vector width {} != {} primary inputs",
            tr.from.len(),
            netlist.primary_inputs().len()
        )));
    }
    for pos in 0..tr.from.len() {
        ex.set_input_transition(pos, tr.from[pos], tr.to[pos], cfg.t0)
            .map_err(CoreError::Netlist)?;
    }
    // Seed the operating point with the settled logic state — stacked
    // MOSFET netlists are fragile to solve from a cold start, and the
    // gate-level evaluation already knows every rail.
    let settled = netlist.evaluate(&tr.from).map_err(CoreError::Netlist)?;
    ex.apply_initial_state(&settled);
    let probe_nets: Vec<NetId> = match probes {
        Some(p) => p.to_vec(),
        None => netlist.primary_outputs().to_vec(),
    };
    let mut probe_nodes: Vec<_> = probe_nets.iter().map(|&n| ex.node_of(n)).collect();
    if let Some(vg) = ex.vgnd {
        probe_nodes.push(vg);
    }
    let tran_opts = TranOptions::to(cfg.t_stop)
        .with_dt(cfg.dt)
        .with_probes(probe_nodes.clone());
    let res = transient(&ex.circuit, &tran_opts).map_err(CoreError::Spice)?;

    // The input reference edge: the stimulus ramp's 50 % point.
    let t_ref = cfg.t0 + ex.default_slew / 2.0;
    let v_half = tech.v_switch();
    let mut delay: Option<f64> = None;
    let mut probe_delays = Vec::with_capacity(probe_nets.len());
    let mut probe_waveforms = Vec::with_capacity(probe_nets.len());
    for &n in &probe_nets {
        let w = res.waveform(ex.node_of(n)).map_err(CoreError::Spice)?;
        let d = w
            .crossings(v_half)
            .into_iter()
            .rfind(|c| c.time >= t_ref)
            .map(|c| c.time - t_ref);
        if let Some(d) = d {
            delay = Some(delay.map_or(d, |cur: f64| cur.max(d)));
        }
        probe_delays.push(d);
        probe_waveforms.push(w);
    }
    let vgnd = match ex.vgnd {
        Some(vg) => Some(res.waveform(vg).map_err(CoreError::Spice)?),
        None => None,
    };
    let supply_current = res.source_current("vdd").map(|w| {
        // Branch current flows into the source's positive terminal;
        // current *drawn from* the supply is its negation.
        w.points().iter().map(|&(t, i)| (t, -i)).collect()
    });
    Ok(SpiceTransition {
        delay,
        probe_delays,
        probe_waveforms,
        vgnd,
        supply_current,
        t_ref,
        op_gmin_fallback_stages: res.op_gmin_fallback_stages,
        dt_halvings: res.dt_halvings,
    })
}

/// Measures the CMOS-vs-MTCMOS delay pair for one transition entirely in
/// SPICE (the reference methodology the switch-level tool is validated
/// against in Figs 10/13/14).
///
/// Returns `None` when no probe switches.
///
/// # Errors
///
/// Propagates [`CoreError`] from either run.
pub fn spice_delay_pair(
    netlist: &Netlist,
    tech: &Technology,
    tr: &Transition,
    probes: Option<&[NetId]>,
    w_over_l: f64,
    cfg: &SpiceRunConfig,
) -> Result<Option<DelayPair>, CoreError> {
    let cmos = spice_transition(netlist, tech, tr, probes, SleepImpl::AlwaysOn, cfg)?;
    let Some(d_cmos) = cmos.delay else {
        return Ok(None);
    };
    let mt = spice_transition(
        netlist,
        tech,
        tr,
        probes,
        SleepImpl::Transistor { w_over_l },
        cfg,
    )?;
    // Per-probe against the baseline: a probe that crossed in CMOS but
    // never under MTCMOS is a stalled gate and reports an infinite
    // delay, not the baseline value.
    let d_mt = worst_delay_vs_baseline(&cmos.probe_delays, &mt.probe_delays).unwrap_or(d_cmos);
    Ok(Some(DelayPair {
        cmos: d_cmos,
        mtcmos: d_mt,
    }))
}

/// Convenience: the last time a waveform crosses `v` after `t_from`, or
/// `None`.
pub fn last_crossing_after(w: &Pwl, v: f64, t_from: f64) -> Option<f64> {
    w.crossings(v)
        .into_iter()
        .rfind(|c| c.time >= t_from)
        .map(|c| c.time)
}

/// First crossing in a given direction after `t_from`.
pub fn first_crossing_after(w: &Pwl, v: f64, edge: Edge, t_from: f64) -> Option<f64> {
    w.first_crossing(v, edge, t_from).map(|c| c.time)
}

/// Configuration of [`run_hybrid`].
#[derive(Debug, Clone)]
pub struct HybridOptions {
    /// Sleep transistor W/L used by both tiers.
    pub w_over_l: f64,
    /// How many top-ranked screened survivors get SPICE verification.
    pub top_k: usize,
    /// Worker threads for both the screening and verification fan-outs.
    pub threads: usize,
    /// Probed nets (`None` = primary outputs).
    pub probes: Option<Vec<NetId>>,
    /// Switch-level simulator options for the screening tier.
    pub base: VbsimOptions,
    /// SPICE window for the verification tier.
    pub spice: SpiceRunConfig,
    /// Failure routing shared by both tiers.
    pub policy: FailurePolicy,
    /// Deterministic fault injection into the screening tier (tests).
    pub fault: FaultPlan,
    /// Deterministic fault injection into the verification tier (tests).
    pub verify_fault: FaultPlan,
}

impl HybridOptions {
    /// Defaults at a given sleep size and SPICE window: top-10
    /// verification, serial, primary-output probes, fail-fast, no
    /// injected faults.
    pub fn at_size(w_over_l: f64, spice: SpiceRunConfig) -> Self {
        HybridOptions {
            w_over_l,
            top_k: 10,
            threads: 1,
            probes: None,
            base: VbsimOptions::default(),
            spice,
            policy: FailurePolicy::FailFast,
            fault: FaultPlan::none(),
            verify_fault: FaultPlan::none(),
        }
    }
}

/// One verified candidate of a hybrid run, in rank order (worst screened
/// degradation first).
#[derive(Debug, Clone, PartialEq)]
pub struct HybridFinding {
    /// Index into the caller's transition list.
    pub index: usize,
    /// The switch-level screening measurement.
    pub screened: DelayPair,
    /// The SPICE measurement; `None` when no probe switched at the
    /// transistor level or the verification was quarantined.
    pub verified: Option<DelayPair>,
    /// `verified.degradation() − screened.degradation()` when both are
    /// finite — the screening tier's signed error for this vector.
    pub delta: Option<f64>,
    /// Gmin-continuation stages the two SPICE operating points needed.
    pub op_gmin_fallback_stages: usize,
    /// Time-step halvings the two SPICE transients needed.
    pub dt_halvings: usize,
}

/// The merged report of one [`run_hybrid`] call.
#[derive(Debug)]
pub struct HybridReport {
    /// Verified candidates, worst screened degradation first.
    pub findings: Vec<HybridFinding>,
    /// Screened survivors before deduplication and the top-k cut.
    pub survivors: usize,
    /// Sweep health of the screening tier (quarantines, retries, cache
    /// and simulator counters).
    pub screen_health: SweepHealth,
    /// Sweep health of the verification tier.
    pub verify_health: SweepHealth,
    /// Per-worker counters of the screening tier.
    pub screen_workers: Vec<WorkerStats>,
    /// Per-worker counters of the verification tier (`vectors` counts
    /// candidates verified).
    pub verify_workers: Vec<WorkerStats>,
    /// Wall time of the screening tier, seconds.
    pub screen_wall: f64,
    /// Wall time of the verification tier, seconds.
    pub verify_wall: f64,
}

impl HybridReport {
    /// The screening tier as a `"screen"` [`mtk_trace::PhaseTrace`].
    pub fn screen_phase(&self) -> mtk_trace::PhaseTrace {
        let mut phase = self
            .screen_health
            .phase("screen")
            .with_wall(self.screen_wall);
        phase.workers = crate::par::worker_traces(&self.screen_workers);
        phase
    }

    /// The verification tier as a `"verify"` [`mtk_trace::PhaseTrace`].
    ///
    /// On top of the sweep health this folds in the SPICE solver-stress
    /// counters the findings carried back (g<sub>min</sub> continuation
    /// stages and dt halvings), summed in finding order.
    pub fn verify_phase(&self) -> mtk_trace::PhaseTrace {
        let mut phase = self
            .verify_health
            .phase("verify")
            .with_wall(self.verify_wall);
        phase.workers = crate::par::worker_traces(&self.verify_workers);
        for finding in &self.findings {
            phase.counters.add(
                mtk_trace::CounterId::GminFallbackStages,
                finding.op_gmin_fallback_stages as u64,
            );
            phase
                .counters
                .add(mtk_trace::CounterId::DtHalvings, finding.dt_halvings as u64);
        }
        phase
    }

    /// The whole hybrid run as a [`mtk_trace::TraceReport`] with the
    /// canonical `screen` → `verify` phases.
    pub fn to_trace(&self, tool: &str) -> mtk_trace::TraceReport {
        let mut report = mtk_trace::TraceReport::new(tool);
        report.push_phase(self.screen_phase());
        report.push_phase(self.verify_phase());
        report
    }
}

/// What one SPICE verification of one candidate measured.
#[derive(Debug, Clone, PartialEq)]
struct VerifiedDelays {
    pair: Option<DelayPair>,
    op_gmin_fallback_stages: usize,
    dt_halvings: usize,
}

/// A worker's pair of reusable transistor-level circuits. Expansion is
/// paid once per worker; each candidate only reprograms input waveforms
/// and initial conditions.
struct SpiceVerifier {
    cmos: Expanded,
    mtcmos: Expanded,
}

/// Expansion options of one verification leg.
fn verify_expand_options(sleep: SleepImpl, cfg: &SpiceRunConfig) -> ExpandOptions {
    ExpandOptions {
        sleep,
        vgnd_extra_cap: cfg.vgnd_extra_cap,
        with_leakage: cfg.with_leakage,
        vgnd_junction_cap: true,
    }
}

/// Reprograms an expanded circuit for one transition and runs the
/// transient, returning per-probe settling delays plus solver-stress
/// counters. The circuit is reused across candidates: input waves are
/// *replaced* and the previous vector's initial conditions are cleared
/// before the settled state of this vector is applied —
/// [`mtk_spice::circuit::Circuit::set_ic`] appends, so skipping the
/// clear would leave stale rails tugging on the operating point.
fn run_reused(
    ex: &mut Expanded,
    netlist: &Netlist,
    tech: &Technology,
    tr: &Transition,
    probe_nets: &[NetId],
    cfg: &SpiceRunConfig,
) -> Result<(Vec<Option<f64>>, usize, usize), CoreError> {
    if tr.from.len() != netlist.primary_inputs().len() {
        return Err(CoreError::UnknownState(format!(
            "vector width {} != {} primary inputs",
            tr.from.len(),
            netlist.primary_inputs().len()
        )));
    }
    for pos in 0..tr.from.len() {
        ex.set_input_transition(pos, tr.from[pos], tr.to[pos], cfg.t0)
            .map_err(CoreError::Netlist)?;
    }
    let settled = netlist.evaluate(&tr.from).map_err(CoreError::Netlist)?;
    ex.circuit.clear_ics();
    ex.apply_initial_state(&settled);
    let mut probe_nodes: Vec<_> = probe_nets.iter().map(|&n| ex.node_of(n)).collect();
    if let Some(vg) = ex.vgnd {
        probe_nodes.push(vg);
    }
    let tran_opts = TranOptions::to(cfg.t_stop)
        .with_dt(cfg.dt)
        .with_probes(probe_nodes);
    let res = transient(&ex.circuit, &tran_opts).map_err(CoreError::Spice)?;
    let t_ref = cfg.t0 + ex.default_slew / 2.0;
    let v_half = tech.v_switch();
    let mut delays = Vec::with_capacity(probe_nets.len());
    for &n in probe_nets {
        let w = res.waveform(ex.node_of(n)).map_err(CoreError::Spice)?;
        delays.push(
            w.crossings(v_half)
                .into_iter()
                .rfind(|c| c.time >= t_ref)
                .map(|c| c.time - t_ref),
        );
    }
    Ok((delays, res.op_gmin_fallback_stages, res.dt_halvings))
}

/// Verifies one candidate on a worker's reusable circuit pair.
fn verify_candidate(
    ver: &mut SpiceVerifier,
    netlist: &Netlist,
    tech: &Technology,
    tr: &Transition,
    probe_nets: &[NetId],
    cfg: &SpiceRunConfig,
) -> Result<VerifiedDelays, CoreError> {
    let (cmos, op_c, halve_c) = run_reused(&mut ver.cmos, netlist, tech, tr, probe_nets, cfg)?;
    let d_cmos = cmos
        .iter()
        .flatten()
        .copied()
        .fold(None, |acc: Option<f64>, t| {
            Some(acc.map_or(t, |a| a.max(t)))
        });
    let Some(d_cmos) = d_cmos else {
        return Ok(VerifiedDelays {
            pair: None,
            op_gmin_fallback_stages: op_c,
            dt_halvings: halve_c,
        });
    };
    let (mt, op_m, halve_m) = run_reused(&mut ver.mtcmos, netlist, tech, tr, probe_nets, cfg)?;
    let d_mt = worst_delay_vs_baseline(&cmos, &mt).unwrap_or(d_cmos);
    Ok(VerifiedDelays {
        pair: Some(DelayPair {
            cmos: d_cmos,
            mtcmos: d_mt,
        }),
        op_gmin_fallback_stages: op_c + op_m,
        dt_halvings: halve_c + halve_m,
    })
}

/// The batched hybrid pipeline (§5, §7): screen every transition with
/// the switch-level simulator, rank and dedupe the survivors, then fan
/// the top `top_k` candidates out as SPICE verifications over the same
/// deterministic executor.
///
/// Both tiers share the executor's contracts: per-worker engines /
/// expanded circuits, index-ordered folds, panic isolation, and
/// [`FailurePolicy`] routing, so findings, quarantine sets, and both
/// [`SweepHealth`]s are bit-identical at any thread count. Survivors
/// whose transitions are duplicates keep only the best-ranked instance.
///
/// # Errors
///
/// * Screening failures per [`screen_vectors_par_quarantined`].
/// * [`CoreError::Netlist`] when the netlist cannot be expanded to the
///   transistor level (checked once, before workers spawn).
/// * Verification failures routed per `opts.policy`, fail-fast errors
///   deterministically reporting the lowest-ranked failing candidate.
pub fn run_hybrid(
    netlist: &Netlist,
    tech: &Technology,
    transitions: &[Transition],
    opts: &HybridOptions,
) -> Result<HybridReport, CoreError> {
    let (screened, screen_report) = screen_vectors_par_quarantined(
        netlist,
        tech,
        transitions,
        opts.probes.as_deref(),
        opts.w_over_l,
        &opts.base,
        opts.threads,
        opts.policy,
        &opts.fault,
    )?;
    let survivors = screened.len();

    // Rank order is already worst-first; keep the first (best-ranked)
    // instance of each distinct transition.
    let mut seen = std::collections::HashSet::new();
    let mut candidates: Vec<ScreenedVector> = Vec::new();
    for s in &screened {
        if candidates.len() == opts.top_k {
            break;
        }
        let tr = &transitions[s.index];
        let encode = |side: &[Logic]| -> Vec<u8> {
            side.iter()
                .map(|l| match l {
                    Logic::Zero => 0u8,
                    Logic::One => 1,
                    Logic::X => 2,
                })
                .collect()
        };
        if seen.insert((encode(&tr.from), encode(&tr.to))) {
            candidates.push(*s);
        }
    }

    // Validate both expansions once up front so worker initialisation
    // (which cannot return an error) is infallible.
    let cmos_opts = verify_expand_options(SleepImpl::AlwaysOn, &opts.spice);
    let mt_opts = verify_expand_options(
        SleepImpl::Transistor {
            w_over_l: opts.w_over_l,
        },
        &opts.spice,
    );
    expand(netlist, tech, &cmos_opts).map_err(CoreError::Netlist)?;
    expand(netlist, tech, &mt_opts).map_err(CoreError::Netlist)?;

    let probe_nets = match &opts.probes {
        Some(p) => p.clone(),
        None => netlist.primary_outputs().to_vec(),
    };
    let t0 = Instant::now();
    let (reports, verify_workers) = try_parallel_map_with(
        opts.threads,
        1,
        &candidates,
        || SpiceVerifier {
            cmos: expand(netlist, tech, &cmos_opts).expect("validated above"),
            mtcmos: expand(netlist, tech, &mt_opts).expect("validated above"),
        },
        |ver, rank, cand, stats| -> ItemReport<VerifiedDelays> {
            stats.vectors += 1;
            let value = opts.verify_fault.check(rank, 0).and_then(|()| {
                verify_candidate(
                    ver,
                    netlist,
                    tech,
                    &transitions[cand.index],
                    &probe_nets,
                    &opts.spice,
                )
            });
            ItemReport {
                value,
                retried: false,
                run: RunHealth::default(),
            }
        },
    );
    let (values, verify_health) = fold_item_reports(reports, opts.policy)?;
    let verify_wall = t0.elapsed().as_secs_f64();

    let findings = candidates
        .iter()
        .zip(values)
        .map(|(cand, v)| {
            let pair = v.as_ref().and_then(|v| v.pair);
            let delta = pair.and_then(|p| {
                let (s, v) = (cand.delays.degradation(), p.degradation());
                (s.is_finite() && v.is_finite()).then_some(v - s)
            });
            HybridFinding {
                index: cand.index,
                screened: cand.delays,
                verified: pair,
                delta,
                op_gmin_fallback_stages: v.as_ref().map_or(0, |v| v.op_gmin_fallback_stages),
                dt_halvings: v.as_ref().map_or(0, |v| v.dt_halvings),
            }
        })
        .collect();
    Ok(HybridReport {
        findings,
        survivors,
        screen_health: screen_report.health,
        verify_health,
        screen_workers: screen_report.workers,
        verify_workers,
        screen_wall: screen_report.wall,
        verify_wall,
    })
}

/// Exports one candidate's MTCMOS verification circuit as a runnable
/// SPICE deck (`.ic` seeding plus a `.tran` card), for checking a
/// finding in an external simulator.
///
/// # Errors
///
/// As [`spice_transition`].
pub fn candidate_deck(
    netlist: &Netlist,
    tech: &Technology,
    tr: &Transition,
    w_over_l: f64,
    cfg: &SpiceRunConfig,
) -> Result<String, CoreError> {
    let opts = verify_expand_options(SleepImpl::Transistor { w_over_l }, cfg);
    let mut ex = expand(netlist, tech, &opts).map_err(CoreError::Netlist)?;
    if tr.from.len() != netlist.primary_inputs().len() {
        return Err(CoreError::UnknownState(format!(
            "vector width {} != {} primary inputs",
            tr.from.len(),
            netlist.primary_inputs().len()
        )));
    }
    for pos in 0..tr.from.len() {
        ex.set_input_transition(pos, tr.from[pos], tr.to[pos], cfg.t0)
            .map_err(CoreError::Netlist)?;
    }
    let settled = netlist.evaluate(&tr.from).map_err(CoreError::Netlist)?;
    ex.apply_initial_state(&settled);
    Ok(mtk_spice::deck::to_deck_with_tran(
        &ex.circuit,
        "mtcmos verification candidate",
        cfg.dt,
        cfg.t_stop,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtk_circuits::tree::{InverterTree, TreeSpec};
    use mtk_netlist::logic::Logic;

    fn small_tree() -> InverterTree {
        InverterTree::new(&TreeSpec {
            fanout: 2,
            stages: 2,
            load_cap: 20e-15,
            drive: 1.0,
        })
        .unwrap()
    }

    #[test]
    fn spice_cmos_delay_is_measured() {
        let tree = small_tree();
        let tech = Technology::l07();
        let tr = Transition::new(vec![Logic::Zero], vec![Logic::One]);
        let res = spice_transition(
            &tree.netlist,
            &tech,
            &tr,
            None,
            SleepImpl::AlwaysOn,
            &SpiceRunConfig::window(30e-9),
        )
        .unwrap();
        let d = res.delay.expect("outputs must switch");
        assert!(d > 0.0 && d < 30e-9, "{d}");
        assert!(res.vgnd.is_none());
    }

    #[test]
    fn spice_mtcmos_slower_than_cmos() {
        let tree = small_tree();
        let tech = Technology::l07();
        let tr = Transition::new(vec![Logic::Zero], vec![Logic::One]);
        let pair = spice_delay_pair(
            &tree.netlist,
            &tech,
            &tr,
            None,
            4.0,
            &SpiceRunConfig::window(40e-9),
        )
        .unwrap()
        .unwrap();
        assert!(
            pair.mtcmos > pair.cmos,
            "MTCMOS {} vs CMOS {}",
            pair.mtcmos,
            pair.cmos
        );
        assert!(pair.degradation() > 0.01, "{}", pair.degradation());
    }

    #[test]
    fn vgnd_waveform_bounces() {
        let tree = small_tree();
        let tech = Technology::l07();
        let tr = Transition::new(vec![Logic::Zero], vec![Logic::One]);
        let res = spice_transition(
            &tree.netlist,
            &tech,
            &tr,
            None,
            SleepImpl::Transistor { w_over_l: 4.0 },
            &SpiceRunConfig::window(40e-9),
        )
        .unwrap();
        let vg = res.vgnd.unwrap();
        assert!(vg.max_value().unwrap() > 0.01, "{:?}", vg.max_value());
        // And it recovers toward 0 at the end.
        assert!(vg.final_value().unwrap() < 0.05);
    }

    #[test]
    fn wrong_vector_width_rejected() {
        let tree = small_tree();
        let tech = Technology::l07();
        let tr = Transition::new(vec![], vec![]);
        assert!(spice_transition(
            &tree.netlist,
            &tech,
            &tr,
            None,
            SleepImpl::AlwaysOn,
            &SpiceRunConfig::window(10e-9),
        )
        .is_err());
    }
}
