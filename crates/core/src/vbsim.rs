//! The variable-breakpoint switch-level simulator (paper §5.2).
//!
//! Every gate is reduced to an equivalent inverter discharging (or
//! charging) its lumped load capacitance with a piecewise-constant
//! current, so every node voltage is piecewise linear. *Breakpoints*
//! occur whenever any gate starts or stops switching: at a breakpoint the
//! virtual-ground equilibrium (Eq. 5) is re-solved, every active gate's
//! slope is updated, and the expected threshold-crossing / finish times
//! are recomputed — "the breakpoint times for individual gates are not
//! fixed because if another gate switches first, then the speed of the
//! subsequent gate will change".
//!
//! Gates begin switching exactly when an input crosses V<sub>dd</sub>/2
//! and their logic function says the output changes; a gate whose target
//! flips mid-swing reverses from its current voltage (glitching, §6.3).

use crate::health::RunHealth;
use crate::model::{self, VxOptions};
use crate::CoreError;
use mtk_netlist::cell::equivalent_inverter;
use mtk_netlist::logic::Logic;
use mtk_netlist::netlist::{CellId, NetId, Netlist};
use mtk_netlist::tech::Technology;
use mtk_netlist::NetlistError;
use mtk_num::waveform::Pwl;

/// How the sleep path is modelled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SleepNetwork {
    /// Conventional CMOS: zero resistance to ground.
    Cmos,
    /// An explicit linear resistance (§2.1 approximation).
    Resistance(f64),
    /// A high-V<sub>t</sub> sleep transistor of the given W/L, converted
    /// to its triode resistance.
    Transistor {
        /// Sleep device W/L.
        w_over_l: f64,
    },
}

impl SleepNetwork {
    /// The effective resistance under a technology.
    pub fn resistance(&self, tech: &Technology) -> f64 {
        match *self {
            SleepNetwork::Cmos => 0.0,
            SleepNetwork::Resistance(r) => r,
            SleepNetwork::Transistor { w_over_l } => tech.sleep_resistance(w_over_l),
        }
    }
}

/// A per-module sleep assignment: each cell belongs to one module, and
/// each module has its own sleep network (the paper's future-work
/// hierarchical structure; see [`crate::modules`]).
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionedSleep {
    /// Module index per cell (parallel to `Netlist::cells()`).
    pub assignment: Vec<usize>,
    /// Sleep network per module.
    pub networks: Vec<SleepNetwork>,
}

/// Which breakpoint loop implementation a run uses.
///
/// Both kernels implement the same §5.2 variable-breakpoint algorithm
/// and produce **bit-identical** observables (waveforms, virtual-ground
/// staircase, sleep current, breakpoint counts, health counters); they
/// differ only in how much work each breakpoint costs. The dense kernel
/// is kept as the executable specification the event kernel is tested
/// against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VbsimKernel {
    /// Event-driven loop: a deterministic min-reduction over breakpoint
    /// candidates (`f64::total_cmp` on the time, ties broken on gate
    /// index — insertion-order free, exactly a one-pop binary-heap
    /// queue), an active-gate list instead of whole-netlist scans,
    /// incremental V<sub>x</sub> re-solves touching only sleep groups
    /// whose drive set changed, and per-run scratch reuse so the warm
    /// loop allocates nothing.
    #[default]
    EventDriven,
    /// The original dense loop: every breakpoint rescans all gates and
    /// re-solves every group's equilibrium from scratch.
    DenseScan,
}

/// Options for a switch-level run.
#[derive(Debug, Clone, PartialEq)]
pub struct VbsimOptions {
    /// Sleep-path model.
    pub sleep: SleepNetwork,
    /// Include the body effect in the V<sub>x</sub> equilibrium
    /// (paper §5.3 extension; the paper's simple tool omits it).
    pub body_effect: bool,
    /// Pin discharged outputs to V<sub>x</sub> instead of 0 V
    /// (the §2.3 reverse-conduction behaviour; extension, default off).
    pub reverse_conduction: bool,
    /// Hard stop time, seconds.
    pub t_stop: f64,
    /// Hard cap on processed breakpoints (guards glitch storms).
    pub max_events: usize,
    /// Breakpoint-loop implementation (results are identical either way).
    pub kernel: VbsimKernel,
}

impl Default for VbsimOptions {
    fn default() -> Self {
        VbsimOptions {
            sleep: SleepNetwork::Cmos,
            body_effect: false,
            reverse_conduction: false,
            t_stop: 1e-6,
            max_events: 200_000,
            kernel: VbsimKernel::default(),
        }
    }
}

impl VbsimOptions {
    /// MTCMOS mode with a sleep transistor of the given W/L.
    pub fn mtcmos(w_over_l: f64) -> Self {
        VbsimOptions {
            sleep: SleepNetwork::Transistor { w_over_l },
            ..VbsimOptions::default()
        }
    }

    /// Conventional-CMOS mode (the degradation baseline).
    pub fn cmos() -> Self {
        VbsimOptions::default()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    Rising,
    Falling,
}

/// A reusable simulator for one netlist: per-cell equivalent inverters,
/// load capacitances, and fanout lists are computed once, so large
/// vector sweeps (the 4096-transition adder experiment) pay only the
/// per-run event processing.
#[derive(Debug)]
pub struct Engine<'a> {
    netlist: &'a Netlist,
    tech: &'a Technology,
    /// Per-cell effective pull-down β.
    beta_n: Vec<f64>,
    /// Per-cell effective pull-up β.
    beta_p: Vec<f64>,
    /// Per-cell output load capacitance.
    cl: Vec<f64>,
    /// Per-cell output net index (hoisted out of the breakpoint loop).
    out_of: Vec<usize>,
    /// Per-cell pull-up (charge) current — independent of V<sub>x</sub>,
    /// so it is a pure function of the cell and can be precomputed.
    i_charge: Vec<f64>,
    /// Per-net list of reading cells (deduplicated).
    fanout: Vec<Vec<CellId>>,
    /// Topological cell order, computed once (`None` = combinational
    /// loop, reported as the same error [`Netlist::evaluate`] raises).
    /// The event kernel settles logic itself instead of paying
    /// `evaluate`'s per-call order rebuild.
    topo: Option<Vec<CellId>>,
    /// The technology fingerprint, hashed once per engine instead of
    /// once per run (it stamps the cross-run V<sub>x</sub> memo).
    tech_stamp: u64,
    /// Lazily computed netlist fingerprint (the screening-cache key
    /// component); hashing a large netlist once per engine, not per run.
    fingerprint: std::sync::OnceLock<u64>,
}

impl<'a> Engine<'a> {
    /// Prepares an engine for a netlist under a technology.
    pub fn new(netlist: &'a Netlist, tech: &'a Technology) -> Self {
        let beta_n;
        let beta_p;
        let cl;
        let out_of;
        let i_charge;
        {
            let mut bn = Vec::with_capacity(netlist.cells().len());
            let mut bp = Vec::with_capacity(netlist.cells().len());
            let mut c = Vec::with_capacity(netlist.cells().len());
            let mut outs = Vec::with_capacity(netlist.cells().len());
            let mut ic = Vec::with_capacity(netlist.cells().len());
            for cell in netlist.cells() {
                let eq = equivalent_inverter(cell.kind, cell.drive, tech);
                bn.push(eq.beta_n);
                bp.push(eq.beta_p);
                c.push(netlist.load_cap(cell.output, tech).max(1e-18));
                outs.push(cell.output.index());
                ic.push(model::charge_current(tech, eq.beta_p));
            }
            beta_n = bn;
            beta_p = bp;
            cl = c;
            out_of = outs;
            i_charge = ic;
        }
        let mut fanout: Vec<Vec<CellId>> = vec![Vec::new(); netlist.nets().len()];
        for ni in netlist.net_ids() {
            let mut cells: Vec<CellId> =
                netlist.fanout_of(ni).into_iter().map(|(c, _)| c).collect();
            cells.dedup();
            fanout[ni.index()] = cells;
        }
        Engine {
            netlist,
            tech,
            beta_n,
            beta_p,
            cl,
            out_of,
            i_charge,
            fanout,
            topo: netlist.topo_order().ok(),
            tech_stamp: tech.fingerprint(),
            fingerprint: std::sync::OnceLock::new(),
        }
    }

    /// The netlist this engine simulates.
    pub fn netlist(&self) -> &Netlist {
        self.netlist
    }

    /// The technology the engine was prepared under.
    pub fn tech(&self) -> &Technology {
        self.tech
    }

    /// The netlist's structural fingerprint
    /// ([`Netlist::fingerprint`]), computed on first use and cached for
    /// the engine's lifetime.
    pub fn fingerprint(&self) -> u64 {
        *self.fingerprint.get_or_init(|| self.netlist.fingerprint())
    }

    /// Simulates one input-vector transition: the circuit is settled at
    /// `from`, and at `t = 0` the primary inputs step to `to`.
    ///
    /// # Errors
    ///
    /// * [`CoreError::UnknownState`] when the settled state under `from`
    ///   (or `to`) contains `X` nets.
    /// * [`CoreError::EventOverflow`] when `max_events` is exceeded.
    /// * Netlist evaluation errors are passed through.
    pub fn run(
        &self,
        from: &[Logic],
        to: &[Logic],
        opts: &VbsimOptions,
    ) -> Result<VbsimRun, CoreError> {
        self.run_partitioned(from, to, None, opts)
    }

    /// Like [`Engine::run`], but with an optional per-module sleep
    /// partition: each module has its own virtual ground and sleep
    /// network, so modules only interact through logic, not through a
    /// shared rail. With `None`, `opts.sleep` applies globally.
    ///
    /// # Errors
    ///
    /// As [`Engine::run`], plus [`CoreError::UnknownState`] when the
    /// partition's shape disagrees with the netlist.
    pub fn run_partitioned(
        &self,
        from: &[Logic],
        to: &[Logic],
        partition: Option<&PartitionedSleep>,
        opts: &VbsimOptions,
    ) -> Result<VbsimRun, CoreError> {
        match opts.kernel {
            VbsimKernel::DenseScan => self.run_partitioned_dense(from, to, partition, opts),
            VbsimKernel::EventDriven => {
                let mut scratch = VbsimScratch::new();
                self.run_partitioned_event(from, to, partition, opts, &mut scratch)
            }
        }
    }

    /// Like [`Engine::run`], but reusing caller-owned scratch so a sweep
    /// of many transitions allocates nothing per run after the first.
    /// The scratch also carries the cross-run V<sub>x</sub>-equilibrium
    /// memo, so repeated drive sets skip the Brent solve entirely.
    ///
    /// # Errors
    ///
    /// As [`Engine::run`].
    pub fn run_with(
        &self,
        from: &[Logic],
        to: &[Logic],
        opts: &VbsimOptions,
        scratch: &mut VbsimScratch,
    ) -> Result<VbsimRun, CoreError> {
        self.run_partitioned_with(from, to, None, opts, scratch)
    }

    /// [`Engine::run_partitioned`] with caller-owned scratch (see
    /// [`Engine::run_with`]). The [`VbsimKernel::DenseScan`] kernel
    /// ignores the scratch — it exists as the allocation-heavy reference
    /// implementation.
    ///
    /// # Errors
    ///
    /// As [`Engine::run_partitioned`].
    pub fn run_partitioned_with(
        &self,
        from: &[Logic],
        to: &[Logic],
        partition: Option<&PartitionedSleep>,
        opts: &VbsimOptions,
        scratch: &mut VbsimScratch,
    ) -> Result<VbsimRun, CoreError> {
        match opts.kernel {
            VbsimKernel::DenseScan => self.run_partitioned_dense(from, to, partition, opts),
            VbsimKernel::EventDriven => {
                self.run_partitioned_event(from, to, partition, opts, scratch)
            }
        }
    }

    /// The original dense-scan breakpoint loop, kept verbatim as the
    /// executable specification: every breakpoint rescans all gates,
    /// rebuilds every group's β list, and re-solves every equilibrium.
    /// `tests/vbsim_kernel_equivalence.rs` pins the event kernel to this
    /// one bit-for-bit.
    fn run_partitioned_dense(
        &self,
        from: &[Logic],
        to: &[Logic],
        partition: Option<&PartitionedSleep>,
        opts: &VbsimOptions,
    ) -> Result<VbsimRun, CoreError> {
        if !(opts.t_stop.is_finite() && opts.t_stop > 0.0) {
            return Err(CoreError::InvalidOptions(format!(
                "t_stop must be positive and finite, got {}",
                opts.t_stop
            )));
        }
        if opts.max_events == 0 {
            return Err(CoreError::InvalidOptions(
                "max_events must be > 0".to_string(),
            ));
        }
        let nl = self.netlist;
        let tech = self.tech;
        let vdd = tech.vdd;
        let vth_sw = tech.v_switch();
        let (group_of, rs): (Vec<usize>, Vec<f64>) = match partition {
            Some(p) => {
                if p.assignment.len() != nl.cells().len() {
                    return Err(CoreError::UnknownState(format!(
                        "partition covers {} cells, netlist has {}",
                        p.assignment.len(),
                        nl.cells().len()
                    )));
                }
                if let Some(&bad) = p.assignment.iter().find(|&&g| g >= p.networks.len()) {
                    return Err(CoreError::UnknownState(format!(
                        "partition group {bad} has no sleep network"
                    )));
                }
                (
                    p.assignment.clone(),
                    p.networks.iter().map(|n| n.resistance(tech)).collect(),
                )
            }
            None => (vec![0; nl.cells().len()], vec![opts.sleep.resistance(tech)]),
        };
        let n_groups = rs.len();
        let vx_opts = VxOptions {
            body_effect: opts.body_effect,
        };

        // Settled initial state.
        let init = nl.evaluate(from).map_err(CoreError::Netlist)?;
        let mut digital: Vec<bool> = Vec::with_capacity(init.len());
        for (idx, lv) in init.iter().enumerate() {
            match lv.to_bool() {
                Some(b) => digital.push(b),
                None => return Err(CoreError::UnknownState(nl.nets()[idx].name.clone())),
            }
        }
        // The destination state must also be fully defined (it's the
        // caller's contract that the vector pair is meaningful).
        let _ = nl.evaluate(to).map_err(CoreError::Netlist)?;

        let n_nets = nl.nets().len();
        let mut v: Vec<f64> = digital.iter().map(|&b| if b { vdd } else { 0.0 }).collect();
        let mut slope = vec![0.0f64; n_nets];
        let mut wave: Vec<Pwl> = v
            .iter()
            .map(|&vv| {
                let mut w = Pwl::new();
                w.push(0.0, vv);
                w
            })
            .collect();
        let mut dir: Vec<Option<Dir>> = vec![None; nl.cells().len()];
        let mut vgnd = Pwl::new();
        vgnd.push(0.0, 0.0);
        let mut i_total_wave = Pwl::new();
        i_total_wave.push(0.0, 0.0);

        // Apply the input step.
        let mut reeval: Vec<CellId> = Vec::new();
        if from.len() != to.len() {
            return Err(CoreError::UnknownState(format!(
                "vector widths differ: {} vs {}",
                from.len(),
                to.len()
            )));
        }
        for (pos, &ni) in nl.primary_inputs().iter().enumerate() {
            let new = to[pos].to_bool().ok_or_else(|| {
                CoreError::UnknownState(format!("input '{}' driven to X", nl.net(ni).name))
            })?;
            if new != digital[ni.index()] {
                let idx = ni.index();
                wave[idx].push(0.0, v[idx]);
                v[idx] = if new { vdd } else { 0.0 };
                wave[idx].push(0.0, v[idx]);
                digital[idx] = new;
                reeval.extend(self.fanout[idx].iter().copied());
            }
        }

        let mut t = 0.0f64;
        let mut vx = vec![0.0f64; n_groups];
        let mut breakpoints = 0usize;
        let mut glitch_reversals = 0usize;
        let mut vx_fallbacks = 0usize;
        let mut stalled = false;
        let mut truncated = false;
        let mut max_falling = 0usize;

        // Scratch: which cells are switching (kept as a dense scan; the
        // circuits here are small enough that scans beat queue churn).
        loop {
            // (1) Gate re-evaluation from threshold crossings.
            reeval.sort_unstable();
            reeval.dedup();
            for &ci in &reeval {
                if self.update_gate(ci, &digital, &v, &mut dir, vdd) {
                    glitch_reversals += 1;
                }
            }
            reeval.clear();

            // (2) Re-solve each module's virtual-ground equilibrium from
            // its currently discharging gates.
            let mut betas_by_group: Vec<Vec<f64>> = vec![Vec::new(); n_groups];
            let mut n_falling = 0usize;
            for (ci, d) in dir.iter().enumerate() {
                if *d == Some(Dir::Falling) {
                    betas_by_group[group_of[ci]].push(self.beta_n[ci]);
                    n_falling += 1;
                }
            }
            max_falling = max_falling.max(n_falling);
            let mut any_vx_change = false;
            for g in 0..n_groups {
                let (new_vx, fell_back) =
                    model::solve_vx_tracked(tech, rs[g], &betas_by_group[g], vx_opts)?;
                if fell_back {
                    vx_fallbacks += 1;
                }
                if (new_vx - vx[g]).abs() > 1e-12 {
                    if g == 0 {
                        vgnd.push(t, vx[g]);
                        vgnd.push(t, new_vx);
                    }
                    vx[g] = new_vx;
                    any_vx_change = true;
                }
            }
            if any_vx_change && opts.reverse_conduction {
                // Reverse conduction: idle low outputs ride their own
                // module's bounce.
                for (ci, d) in dir.iter().enumerate() {
                    if d.is_none() {
                        let vxg = vx[group_of[ci]];
                        let out = self.netlist.cells()[ci].output.index();
                        if !digital[out] && (v[out] - vxg).abs() > 1e-12 && v[out] < vth_sw {
                            wave[out].push(t, v[out]);
                            v[out] = vxg.min(vth_sw * 0.999);
                            wave[out].push(t, v[out]);
                        }
                    }
                }
            }

            // (3) Update slopes and find the earliest next event.
            let mut i_total = 0.0f64;
            let mut dt_min = f64::INFINITY;
            let mut any_switching = false;
            for (ci, d) in dir.iter().enumerate() {
                let Some(d) = *d else { continue };
                any_switching = true;
                let vxg = vx[group_of[ci]];
                let floor = if opts.reverse_conduction { vxg } else { 0.0 };
                let out = self.netlist.cells()[ci].output.index();
                let (s, target) = match d {
                    Dir::Falling => {
                        let i =
                            model::discharge_current(tech, self.beta_n[ci], vxg, opts.body_effect);
                        i_total += i;
                        (-i / self.cl[ci], floor)
                    }
                    Dir::Rising => {
                        let i = model::charge_current(tech, self.beta_p[ci]);
                        (i / self.cl[ci], vdd)
                    }
                };
                slope[out] = s;
                if s == 0.0 {
                    continue; // stalled: waits for vx to drop
                }
                // Threshold crossing still ahead?
                let crossing_ahead = match d {
                    Dir::Falling => v[out] > vth_sw,
                    Dir::Rising => v[out] < vth_sw,
                };
                if crossing_ahead {
                    let dt = (vth_sw - v[out]) / s;
                    if dt >= 0.0 {
                        dt_min = dt_min.min(dt);
                    }
                }
                // Finish.
                let dt_fin = (target - v[out]) / s;
                if dt_fin >= 0.0 {
                    dt_min = dt_min.min(dt_fin);
                }
            }
            i_total_wave.push(t, i_total);

            if !any_switching {
                break; // settled
            }
            if !dt_min.is_finite() {
                // Every active gate is stalled and nothing can unstick
                // them: the circuit has logically failed at this sizing.
                stalled = true;
                break;
            }
            let t_next = t + dt_min;
            if t_next > opts.t_stop {
                truncated = true;
                break;
            }
            breakpoints += 1;
            if breakpoints > opts.max_events {
                return Err(CoreError::EventOverflow {
                    events: breakpoints,
                    t: t_next,
                });
            }

            // (4) Advance all moving nets to the breakpoint.
            for (ci, d) in dir.iter().enumerate() {
                if d.is_none() {
                    continue;
                }
                let out = self.netlist.cells()[ci].output.index();
                if slope[out] != 0.0 {
                    v[out] += slope[out] * dt_min;
                    wave[out].push(t_next, v[out]);
                }
            }
            t = t_next;

            // (5) Fire events that landed on this breakpoint.
            let eps = 1e-15 + vdd * 1e-12;
            for ci in 0..dir.len() {
                let Some(d) = dir[ci] else { continue };
                let out = self.netlist.cells()[ci].output.index();
                if slope[out] == 0.0 {
                    continue;
                }
                let floor = if opts.reverse_conduction {
                    vx[group_of[ci]]
                } else {
                    0.0
                };
                let (target, rail_digital) = match d {
                    Dir::Falling => (floor, false),
                    Dir::Rising => (vdd, true),
                };
                // Threshold event.
                let crossed_now = match d {
                    Dir::Falling => v[out] <= vth_sw + eps && digital[out],
                    Dir::Rising => v[out] >= vth_sw - eps && !digital[out],
                };
                if crossed_now {
                    digital[out] = rail_digital;
                    reeval.extend(self.fanout[out].iter().copied());
                }
                // Finish event.
                let finished = match d {
                    Dir::Falling => v[out] <= target + eps,
                    Dir::Rising => v[out] >= target - eps,
                };
                if finished {
                    v[out] = target;
                    // Re-emit the clamped endpoint to kill rounding drift.
                    wave[out].push(t, v[out]);
                    dir[ci] = None;
                    slope[out] = 0.0;
                }
            }
        }

        // Final flat segment so every waveform spans [0, t].
        for (idx, w) in wave.iter_mut().enumerate() {
            if w.end_time().unwrap_or(0.0) < t {
                w.push(t, v[idx]);
            }
        }
        vgnd.push(t, vx[0]);
        i_total_wave.push(t, 0.0);

        Ok(VbsimRun {
            waveforms: wave,
            vgnd,
            sleep_current: i_total_wave,
            breakpoints,
            stalled,
            truncated,
            max_simultaneous_discharging: max_falling,
            t_end: t,
            vdd,
            health: RunHealth {
                breakpoints,
                max_events: opts.max_events,
                glitch_reversals,
                vx_fallbacks,
                ..RunHealth::default()
            },
        })
    }

    /// Re-evaluates a gate after one of its inputs crossed the switching
    /// threshold, starting or reversing its output swing as needed.
    /// Returns `true` when the gate reversed mid-swing (a glitch).
    fn update_gate(
        &self,
        ci: CellId,
        digital: &[bool],
        v: &[f64],
        dir: &mut [Option<Dir>],
        vdd: f64,
    ) -> bool {
        let cell = &self.netlist.cells()[ci.index()];
        let mut ins: Vec<Logic> = Vec::with_capacity(cell.inputs.len());
        ins.extend(
            cell.inputs
                .iter()
                .map(|&n| Logic::from_bool(digital[n.index()])),
        );
        let target = cell
            .kind
            .eval(&ins)
            .to_bool()
            .expect("boolean inputs give boolean outputs");
        let out = cell.output.index();
        let want = if target { Dir::Rising } else { Dir::Falling };
        match dir[ci.index()] {
            Some(current) => {
                if current != want {
                    dir[ci.index()] = Some(want); // reverse mid-swing
                    return true;
                }
                false
            }
            None => {
                let at_target_rail = if target {
                    v[out] >= vdd * 0.999
                } else {
                    v[out] <= vdd * 0.001 + 1e-12
                };
                if target != digital[out] || !at_target_rail {
                    dir[ci.index()] = Some(want);
                }
                false
            }
        }
    }

    /// The event-driven breakpoint loop (see [`VbsimKernel::EventDriven`]).
    ///
    /// Bit-identity with the dense kernel rests on four invariants:
    ///
    /// * The breakpoint queue is rebuilt from fresh `(dt, cell)`
    ///   candidates every iteration — candidates are *relative* times
    ///   computed from the current voltages, so the popped minimum is
    ///   the same value the dense kernel's `min`-fold produces
    ///   (persisting absolute times across breakpoints would round
    ///   differently).
    /// * The active list is kept sorted by cell index, so β lists,
    ///   current sums, and fire events happen in the same
    ///   ascending-index order as the dense whole-netlist scans.
    /// * A group's equilibrium is replayed from its cached solution only
    ///   while its falling-drive set is unchanged — and
    ///   [`model::solve_vx_tracked`] is a pure function of `(tech, r,
    ///   betas, body_effect)`, which is exactly the memo key.
    /// * Only `Ok` solutions are memoized, so error paths re-execute.
    fn run_partitioned_event(
        &self,
        from: &[Logic],
        to: &[Logic],
        partition: Option<&PartitionedSleep>,
        opts: &VbsimOptions,
        scratch: &mut VbsimScratch,
    ) -> Result<VbsimRun, CoreError> {
        if !(opts.t_stop.is_finite() && opts.t_stop > 0.0) {
            return Err(CoreError::InvalidOptions(format!(
                "t_stop must be positive and finite, got {}",
                opts.t_stop
            )));
        }
        if opts.max_events == 0 {
            return Err(CoreError::InvalidOptions(
                "max_events must be > 0".to_string(),
            ));
        }
        let nl = self.netlist;
        let tech = self.tech;
        let vdd = tech.vdd;
        let vth_sw = tech.v_switch();
        scratch.group_of.clear();
        scratch.rs.clear();
        match partition {
            Some(p) => {
                if p.assignment.len() != nl.cells().len() {
                    return Err(CoreError::UnknownState(format!(
                        "partition covers {} cells, netlist has {}",
                        p.assignment.len(),
                        nl.cells().len()
                    )));
                }
                if let Some(&bad) = p.assignment.iter().find(|&&g| g >= p.networks.len()) {
                    return Err(CoreError::UnknownState(format!(
                        "partition group {bad} has no sleep network"
                    )));
                }
                scratch.group_of.extend_from_slice(&p.assignment);
                scratch
                    .rs
                    .extend(p.networks.iter().map(|n| n.resistance(tech)));
            }
            None => {
                scratch.group_of.resize(nl.cells().len(), 0);
                scratch.rs.push(opts.sleep.resistance(tech));
            }
        }
        let n_groups = scratch.rs.len();
        let vx_opts = VxOptions {
            body_effect: opts.body_effect,
        };

        // The Vx memo survives across runs (and engines) but not across
        // technologies: key bit patterns only identify a solution under
        // the technology they were computed for.
        let stamp = self.tech_stamp;
        if scratch.memo_stamp != Some(stamp) {
            scratch.vx_memo.clear();
            scratch.memo_stamp = Some(stamp);
        }

        // Settled initial state, converted to booleans/voltages and the
        // per-net output waveforms in one pass. Waveform buffers come
        // from the scratch pool when the caller recycles finished runs
        // ([`VbsimScratch::recycle`]): a warm sweep then allocates
        // nothing, it just refills retained capacity.
        self.settle_digital(from, scratch)?;
        let n_nets = nl.nets().len();
        let n_cells = nl.cells().len();
        let mut wave: Vec<Pwl> = scratch.wave_pool.pop().unwrap_or_default();
        wave.reserve(n_nets);
        {
            let VbsimScratch {
                logic,
                digital,
                v,
                pwl_pool,
                ..
            } = &mut *scratch;
            digital.clear();
            v.clear();
            for (idx, lv) in logic.iter().enumerate() {
                match lv.to_bool() {
                    Some(b) => {
                        digital.push(b);
                        let vv = if b { vdd } else { 0.0 };
                        v.push(vv);
                        let mut w = pwl_pool.pop().unwrap_or_default();
                        w.clear();
                        w.push(0.0, vv);
                        wave.push(w);
                    }
                    None => return Err(CoreError::UnknownState(nl.nets()[idx].name.clone())),
                }
            }
        }
        // The destination vector must also be well-formed (the dense
        // kernel evaluates it and discards the values; the only errors
        // that evaluation can raise are the arity mismatch checked here
        // and the combinational loop `settle_digital` already ruled out).
        if to.len() != nl.primary_inputs().len() {
            return Err(CoreError::Netlist(NetlistError::ArityMismatch {
                cell: format!("{} primary inputs", nl.name()),
                expected: nl.primary_inputs().len(),
                actual: to.len(),
            }));
        }

        scratch.slope.clear();
        scratch.slope.resize(n_nets, 0.0);
        scratch.dir.clear();
        scratch.dir.resize(n_cells, None);
        scratch.active.clear();
        scratch.reeval.clear();
        scratch.vx.clear();
        scratch.vx.resize(n_groups, 0.0);
        scratch.vx_sol.clear();
        scratch.vx_sol.resize(n_groups, 0.0);
        scratch.vx_fell.clear();
        scratch.vx_fell.resize(n_groups, false);
        scratch.dirty.clear();
        scratch.dirty.resize(n_groups, true);
        scratch.falling_count.clear();
        scratch.falling_count.resize(n_groups, 0);
        if scratch.betas.len() < n_groups {
            scratch.betas.resize_with(n_groups, Vec::new);
        }
        scratch.disch_bits.clear();
        scratch.disch_bits.resize(n_cells, u64::MAX);
        scratch.disch_i.clear();
        scratch.disch_i.resize(n_cells, 0.0);

        let mut vgnd = scratch.pwl_pool.pop().unwrap_or_default();
        vgnd.clear();
        vgnd.push(0.0, 0.0);
        let mut i_total_wave = scratch.pwl_pool.pop().unwrap_or_default();
        i_total_wave.clear();
        i_total_wave.push(0.0, 0.0);

        // Apply the input step.
        if from.len() != to.len() {
            return Err(CoreError::UnknownState(format!(
                "vector widths differ: {} vs {}",
                from.len(),
                to.len()
            )));
        }
        for (pos, &ni) in nl.primary_inputs().iter().enumerate() {
            let new = to[pos].to_bool().ok_or_else(|| {
                CoreError::UnknownState(format!("input '{}' driven to X", nl.net(ni).name))
            })?;
            if new != scratch.digital[ni.index()] {
                let idx = ni.index();
                wave[idx].push(0.0, scratch.v[idx]);
                scratch.v[idx] = if new { vdd } else { 0.0 };
                wave[idx].push(0.0, scratch.v[idx]);
                scratch.digital[idx] = new;
                scratch.reeval.extend(self.fanout[idx].iter().copied());
            }
        }

        let mut t = 0.0f64;
        let mut breakpoints = 0usize;
        let mut glitch_reversals = 0usize;
        let mut vx_fallbacks = 0usize;
        let mut stalled = false;
        let mut truncated = false;
        let mut max_falling = 0usize;

        loop {
            // (1) Gate re-evaluation from threshold crossings. Most
            // breakpoints wake zero or one gate, where a sort is a
            // no-op not worth its dispatch cost.
            if scratch.reeval.len() > 1 {
                scratch.reeval.sort_unstable();
                scratch.reeval.dedup();
            }
            for k in 0..scratch.reeval.len() {
                let ci = scratch.reeval[k];
                if self.update_gate_event(ci, scratch, vdd) {
                    glitch_reversals += 1;
                }
            }
            scratch.reeval.clear();

            // (2) Re-solve only the equilibria whose falling-drive set
            // changed since their last solve; clean groups replay the
            // cached solution (including its fallback flag — the dense
            // kernel re-solves every iteration, so the counter must tick
            // on replays too).
            if scratch.dirty[..n_groups].iter().any(|&d| d) {
                let VbsimScratch {
                    active,
                    dir,
                    group_of,
                    dirty,
                    betas,
                    ..
                } = &mut *scratch;
                for (g, b) in betas.iter_mut().enumerate().take(n_groups) {
                    if dirty[g] {
                        b.clear();
                    }
                }
                for &ci in active.iter() {
                    if dir[ci] == Some(Dir::Falling) {
                        let g = group_of[ci];
                        if dirty[g] {
                            betas[g].push(self.beta_n[ci]);
                        }
                    }
                }
            }
            let n_falling: usize = scratch.falling_count[..n_groups].iter().sum();
            max_falling = max_falling.max(n_falling);
            let mut any_vx_change = false;
            for g in 0..n_groups {
                let (new_vx, fell_back) = if scratch.dirty[g] {
                    let sol = self.solve_group_memoized(g, opts, vx_opts, scratch)?;
                    scratch.vx_sol[g] = sol.0;
                    scratch.vx_fell[g] = sol.1;
                    scratch.dirty[g] = false;
                    sol
                } else {
                    (scratch.vx_sol[g], scratch.vx_fell[g])
                };
                if fell_back {
                    vx_fallbacks += 1;
                }
                if (new_vx - scratch.vx[g]).abs() > 1e-12 {
                    if g == 0 {
                        vgnd.push(t, scratch.vx[g]);
                        vgnd.push(t, new_vx);
                    }
                    scratch.vx[g] = new_vx;
                    any_vx_change = true;
                }
            }
            if any_vx_change && opts.reverse_conduction {
                // Reverse conduction: idle low outputs ride their own
                // module's bounce.
                let VbsimScratch {
                    dir,
                    group_of,
                    vx,
                    v,
                    digital,
                    ..
                } = &mut *scratch;
                for (ci, d) in dir.iter().enumerate() {
                    if d.is_none() {
                        let vxg = vx[group_of[ci]];
                        let out = self.out_of[ci];
                        if !digital[out] && (v[out] - vxg).abs() > 1e-12 && v[out] < vth_sw {
                            wave[out].push(t, v[out]);
                            v[out] = vxg.min(vth_sw * 0.999);
                            wave[out].push(t, v[out]);
                        }
                    }
                }
            }

            // (3) Update slopes and pick the next breakpoint: a
            // deterministic min-reduction over the candidate `(dt, cell)`
            // pairs. `total_cmp` on the time with ties broken on the
            // cell index makes the choice insertion-order free — the
            // strict comparison keeps the earlier candidate on exact
            // ties, and candidates arrive in ascending cell order, so
            // this selects exactly what a binary-heap queue would pop.
            let mut i_total = 0.0f64;
            let mut next_bp: Option<(f64, usize)> = None;
            let any_switching = !scratch.active.is_empty();
            {
                let VbsimScratch {
                    active,
                    dir,
                    group_of,
                    vx,
                    v,
                    slope,
                    disch_bits,
                    disch_i,
                    ..
                } = &mut *scratch;
                let mut consider = |dt: f64, ci: usize| {
                    let earlier = next_bp.is_none_or(|best| match dt.total_cmp(&best.0) {
                        std::cmp::Ordering::Less => true,
                        std::cmp::Ordering::Greater => false,
                        std::cmp::Ordering::Equal => ci < best.1,
                    });
                    if earlier {
                        next_bp = Some((dt, ci));
                    }
                };
                for &ci in active.iter() {
                    let Some(d) = dir[ci] else { continue };
                    let vxg = vx[group_of[ci]];
                    let floor = if opts.reverse_conduction { vxg } else { 0.0 };
                    let out = self.out_of[ci];
                    let (s, target) = match d {
                        Dir::Falling => {
                            // Per-cell discharge-current memo: Vx moves
                            // only at breakpoints, so the common case
                            // replays the previous value.
                            let bits = vxg.to_bits();
                            let i = if disch_bits[ci] == bits {
                                disch_i[ci]
                            } else {
                                let i = model::discharge_current(
                                    tech,
                                    self.beta_n[ci],
                                    vxg,
                                    opts.body_effect,
                                );
                                disch_bits[ci] = bits;
                                disch_i[ci] = i;
                                i
                            };
                            i_total += i;
                            (-i / self.cl[ci], floor)
                        }
                        Dir::Rising => (self.i_charge[ci] / self.cl[ci], vdd),
                    };
                    slope[out] = s;
                    if s == 0.0 {
                        continue; // stalled: waits for vx to drop
                    }
                    // Threshold crossing still ahead?
                    let crossing_ahead = match d {
                        Dir::Falling => v[out] > vth_sw,
                        Dir::Rising => v[out] < vth_sw,
                    };
                    if crossing_ahead {
                        let dt = (vth_sw - v[out]) / s;
                        if dt >= 0.0 {
                            consider(dt, ci);
                        }
                    }
                    // Finish.
                    let dt_fin = (target - v[out]) / s;
                    if dt_fin >= 0.0 {
                        consider(dt_fin, ci);
                    }
                }
            }
            i_total_wave.push(t, i_total);

            if !any_switching {
                break; // settled
            }
            let dt_min = match next_bp {
                Some((dt, _)) => dt,
                None => f64::INFINITY,
            };
            if !dt_min.is_finite() {
                // Every active gate is stalled and nothing can unstick
                // them: the circuit has logically failed at this sizing.
                stalled = true;
                break;
            }
            let t_next = t + dt_min;
            if t_next > opts.t_stop {
                truncated = true;
                break;
            }
            breakpoints += 1;
            if breakpoints > opts.max_events {
                return Err(CoreError::EventOverflow {
                    events: breakpoints,
                    t: t_next,
                });
            }

            // (4+5) Advance all moving nets to the breakpoint and fire
            // the events that landed on it — one pass over the active
            // list. Per-cell effects are disjoint (each active cell
            // owns its output net), so interleaving fire of cell A with
            // advance of cell B is observably identical to the dense
            // kernel's two whole-list passes.
            t = t_next;
            let eps = 1e-15 + vdd * 1e-12;
            let mut any_finished = false;
            for k in 0..scratch.active.len() {
                let ci = scratch.active[k];
                let Some(d) = scratch.dir[ci] else { continue };
                let out = self.out_of[ci];
                if scratch.slope[out] == 0.0 {
                    continue;
                }
                scratch.v[out] += scratch.slope[out] * dt_min;
                wave[out].push(t, scratch.v[out]);
                let floor = if opts.reverse_conduction {
                    scratch.vx[scratch.group_of[ci]]
                } else {
                    0.0
                };
                let (target, rail_digital) = match d {
                    Dir::Falling => (floor, false),
                    Dir::Rising => (vdd, true),
                };
                // Threshold event.
                let crossed_now = match d {
                    Dir::Falling => scratch.v[out] <= vth_sw + eps && scratch.digital[out],
                    Dir::Rising => scratch.v[out] >= vth_sw - eps && !scratch.digital[out],
                };
                if crossed_now {
                    scratch.digital[out] = rail_digital;
                    scratch.reeval.extend(self.fanout[out].iter().copied());
                }
                // Finish event.
                let finished = match d {
                    Dir::Falling => scratch.v[out] <= target + eps,
                    Dir::Rising => scratch.v[out] >= target - eps,
                };
                if finished {
                    scratch.v[out] = target;
                    // Re-emit the clamped endpoint to kill rounding drift.
                    wave[out].push(t, scratch.v[out]);
                    scratch.dir[ci] = None;
                    scratch.slope[out] = 0.0;
                    any_finished = true;
                    if d == Dir::Falling {
                        let g = scratch.group_of[ci];
                        scratch.falling_count[g] -= 1;
                        scratch.dirty[g] = true;
                    }
                }
            }
            if any_finished {
                let VbsimScratch { active, dir, .. } = &mut *scratch;
                active.retain(|&ci| dir[ci].is_some());
            }
        }

        // Final flat segment so every waveform spans [0, t].
        for (idx, w) in wave.iter_mut().enumerate() {
            if w.end_time().unwrap_or(0.0) < t {
                w.push(t, scratch.v[idx]);
            }
        }
        vgnd.push(t, scratch.vx[0]);
        i_total_wave.push(t, 0.0);

        Ok(VbsimRun {
            waveforms: wave,
            vgnd,
            sleep_current: i_total_wave,
            breakpoints,
            stalled,
            truncated,
            max_simultaneous_discharging: max_falling,
            t_end: t,
            vdd,
            health: RunHealth {
                breakpoints,
                max_events: opts.max_events,
                glitch_reversals,
                vx_fallbacks,
                ..RunHealth::default()
            },
        })
    }

    /// [`Netlist::evaluate`] over the engine's precomputed topological
    /// order, writing into scratch buffers: identical values and
    /// identical errors (arity mismatch, combinational loop), but no
    /// per-call order rebuild and no allocation once warm. Settled net
    /// values land in `scratch.logic`.
    fn settle_digital(
        &self,
        inputs: &[Logic],
        scratch: &mut VbsimScratch,
    ) -> Result<(), CoreError> {
        let nl = self.netlist;
        if inputs.len() != nl.primary_inputs().len() {
            return Err(CoreError::Netlist(NetlistError::ArityMismatch {
                cell: format!("{} primary inputs", nl.name()),
                expected: nl.primary_inputs().len(),
                actual: inputs.len(),
            }));
        }
        let order = self.topo.as_ref().ok_or_else(|| {
            CoreError::Netlist(NetlistError::CombinationalLoop(nl.name().to_string()))
        })?;
        let VbsimScratch { logic, ins, .. } = &mut *scratch;
        logic.clear();
        logic.resize(nl.nets().len(), Logic::X);
        for (net, &v) in nl.primary_inputs().iter().zip(inputs) {
            logic[net.index()] = v;
        }
        for (idx, net) in nl.nets().iter().enumerate() {
            if let Some(t) = net.tie {
                logic[idx] = t;
            }
        }
        for &ci in order {
            let cell = &nl.cells()[ci.index()];
            ins.clear();
            ins.extend(cell.inputs.iter().map(|&n| logic[n.index()]));
            logic[cell.output.index()] = cell.kind.eval(ins);
        }
        Ok(())
    }

    /// Solves one group's equilibrium through the cross-run memo. The
    /// key is exactly the solver's argument list — `(r, body effect, βs
    /// in ascending cell order)` — and the technology stamp is checked
    /// at run start, so a hit replays the identical solution the dense
    /// kernel would recompute. Only `Ok` solutions are cached.
    fn solve_group_memoized(
        &self,
        g: usize,
        opts: &VbsimOptions,
        vx_opts: VxOptions,
        scratch: &mut VbsimScratch,
    ) -> Result<(f64, bool), CoreError> {
        let r = scratch.rs[g];
        if r <= 0.0 || scratch.betas[g].is_empty() {
            // solve_vx_tracked's own fast path; not worth a memo entry.
            return Ok((0.0, false));
        }
        scratch.key_buf.clear();
        scratch.key_buf.push(r.to_bits());
        scratch.key_buf.push(opts.body_effect as u64);
        scratch
            .key_buf
            .extend(scratch.betas[g].iter().map(|b| b.to_bits()));
        if let Some(&hit) = scratch.vx_memo.get(scratch.key_buf.as_slice()) {
            return Ok(hit);
        }
        let sol = model::solve_vx_tracked(self.tech, r, &scratch.betas[g], vx_opts)?;
        if scratch.vx_memo.len() >= VX_MEMO_CAP {
            scratch.vx_memo.clear();
        }
        scratch.vx_memo.insert(scratch.key_buf.clone(), sol);
        Ok(sol)
    }

    /// [`Engine::update_gate`] for the event kernel: the same decision
    /// logic, backed by scratch buffers and charged with maintaining the
    /// kernel's incremental state (sorted active list, per-group falling
    /// counts, dirty flags).
    fn update_gate_event(&self, ci: CellId, scratch: &mut VbsimScratch, vdd: f64) -> bool {
        let cell = &self.netlist.cells()[ci.index()];
        {
            let VbsimScratch { ins, digital, .. } = &mut *scratch;
            ins.clear();
            ins.extend(
                cell.inputs
                    .iter()
                    .map(|&n| Logic::from_bool(digital[n.index()])),
            );
        }
        let target = cell
            .kind
            .eval(&scratch.ins)
            .to_bool()
            .expect("boolean inputs give boolean outputs");
        let out = cell.output.index();
        let want = if target { Dir::Rising } else { Dir::Falling };
        let idx = ci.index();
        match scratch.dir[idx] {
            Some(current) => {
                if current != want {
                    scratch.dir[idx] = Some(want); // reverse mid-swing
                    let g = scratch.group_of[idx];
                    match want {
                        Dir::Falling => scratch.falling_count[g] += 1,
                        Dir::Rising => scratch.falling_count[g] -= 1,
                    }
                    scratch.dirty[g] = true;
                    return true;
                }
                false
            }
            None => {
                let at_target_rail = if target {
                    scratch.v[out] >= vdd * 0.999
                } else {
                    scratch.v[out] <= vdd * 0.001 + 1e-12
                };
                if target != scratch.digital[out] || !at_target_rail {
                    scratch.dir[idx] = Some(want);
                    if let Err(pos) = scratch.active.binary_search(&idx) {
                        scratch.active.insert(pos, idx);
                    }
                    if want == Dir::Falling {
                        let g = scratch.group_of[idx];
                        scratch.falling_count[g] += 1;
                        scratch.dirty[g] = true;
                    }
                }
                false
            }
        }
    }
}

/// Upper bound on cross-run V<sub>x</sub>-memo entries; the memo is
/// cleared (not evicted) at the cap, which keeps hot sweeps cheap while
/// bounding a pathological workload's footprint.
const VX_MEMO_CAP: usize = 1 << 16;

/// Reusable working memory for the event-driven kernel (see
/// [`Engine::run_with`]). One scratch serves any number of runs of any
/// engine — buffers are resized to the current netlist at run start, so
/// the warm breakpoint loop performs no allocation. The scratch also
/// carries the cross-run V<sub>x</sub>-equilibrium memo, keyed by
/// `(r_sleep, body effect, β list)` and stamped with the technology
/// fingerprint.
#[derive(Debug, Clone, Default)]
pub struct VbsimScratch {
    digital: Vec<bool>,
    v: Vec<f64>,
    slope: Vec<f64>,
    dir: Vec<Option<Dir>>,
    /// Cells currently switching, sorted by index — the event kernel's
    /// replacement for the dense whole-netlist scans. Invariant outside
    /// the fire step: holds exactly the cells whose `dir` is set.
    active: Vec<usize>,
    reeval: Vec<CellId>,
    ins: Vec<Logic>,
    group_of: Vec<usize>,
    rs: Vec<f64>,
    vx: Vec<f64>,
    /// Last computed equilibrium per group, replayed while clean.
    vx_sol: Vec<f64>,
    vx_fell: Vec<bool>,
    /// Whether a group's falling-drive set changed since its last solve.
    dirty: Vec<bool>,
    falling_count: Vec<usize>,
    betas: Vec<Vec<f64>>,
    /// Per-cell discharge-current memo: the `vx` bit pattern the current
    /// was last computed at (`u64::MAX` = never) and the current itself.
    disch_bits: Vec<u64>,
    disch_i: Vec<f64>,
    key_buf: Vec<u64>,
    vx_memo: std::collections::HashMap<Vec<u64>, (f64, bool), FnvBuild>,
    memo_stamp: Option<u64>,
    /// Settled logic values (the event kernel's zero-alloc stand-in for
    /// [`Netlist::evaluate`]'s return vector).
    logic: Vec<Logic>,
    /// Recycled waveform buffers ([`VbsimScratch::recycle`]); popped at
    /// run start so warm sweeps reuse capacity instead of allocating.
    pwl_pool: Vec<Pwl>,
    wave_pool: Vec<Vec<Pwl>>,
}

impl VbsimScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        VbsimScratch::default()
    }

    /// Returns a finished run's waveform buffers to the scratch pool.
    ///
    /// Entirely optional — a [`VbsimRun`] is self-contained and can
    /// simply be dropped — but hot loops that extract a measurement and
    /// discard the run (vector screening, sizing bisection, benchmark
    /// sweeps) should recycle it: the next [`Engine::run_with`] on this
    /// scratch then reuses the retained capacity and the warm loop
    /// performs no heap allocation at all.
    pub fn recycle(&mut self, run: VbsimRun) {
        let VbsimRun {
            mut waveforms,
            mut vgnd,
            mut sleep_current,
            ..
        } = run;
        for mut w in waveforms.drain(..) {
            w.clear();
            self.pwl_pool.push(w);
        }
        self.wave_pool.push(waveforms);
        vgnd.clear();
        self.pwl_pool.push(vgnd);
        sleep_current.clear();
        self.pwl_pool.push(sleep_current);
    }
}

/// FNV-1a hashing for the V<sub>x</sub> memo: the keys are short
/// `Vec<u64>` bit patterns hashed once per breakpoint, where SipHash's
/// per-call setup cost is measurable and its DoS resistance buys
/// nothing (keys come from the simulator itself, not from input data).
#[derive(Debug, Clone, Copy, Default)]
struct FnvBuild;

impl std::hash::BuildHasher for FnvBuild {
    type Hasher = FnvHasher;

    fn build_hasher(&self) -> FnvHasher {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

#[derive(Debug, Clone, Copy)]
struct FnvHasher(u64);

impl std::hash::Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, i: u64) {
        // Whole-word FNV-1a round: the memo keys are u64 sequences, so
        // this is the only path the hot lookup takes.
        self.0 = (self.0 ^ i).wrapping_mul(0x100_0000_01b3);
    }

    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }
}

/// The recorded output of one switch-level run.
#[derive(Debug, Clone)]
pub struct VbsimRun {
    /// Piecewise-linear voltage per net (indexed by `NetId::index()`).
    pub waveforms: Vec<Pwl>,
    /// The stepwise virtual-ground voltage (Fig 11's characteristic
    /// staircase).
    pub vgnd: Pwl,
    /// Total discharge current through the sleep path over time
    /// (stepwise), used for the §4 peak-current analysis.
    pub sleep_current: Pwl,
    /// Breakpoints processed.
    pub breakpoints: usize,
    /// True when active gates stalled with no way to finish (sleep
    /// device too small — logical failure).
    pub stalled: bool,
    /// True when the run hit `t_stop` before settling.
    pub truncated: bool,
    /// The largest number of gates discharging through the sleep path at
    /// any instant — the §4 "how many gates switch simultaneously"
    /// co-discharge metric that separates vector A from vector B.
    pub max_simultaneous_discharging: usize,
    /// Final simulated time.
    pub t_end: f64,
    vdd: f64,
    /// Per-run health counters (budget use, glitch reversals, fallback
    /// solves) for sweep-level telemetry.
    pub health: RunHealth,
}

impl VbsimRun {
    /// The waveform of a net.
    pub fn waveform(&self, net: NetId) -> &Pwl {
        &self.waveforms[net.index()]
    }

    /// Time of the *last* V<sub>dd</sub>/2 crossing of a net (the paper's
    /// delay reference for glitchy nodes), or `None` if it never crosses.
    pub fn last_crossing_time(&self, net: NetId) -> Option<f64> {
        self.waveforms[net.index()]
            .last_crossing(self.vdd / 2.0, mtk_num::waveform::Edge::Any)
            .map(|c| c.time)
    }

    /// The worst (largest) settling delay over a set of nets: inputs step
    /// at `t = 0`, so the delay is simply the latest crossing time.
    /// `None` when none of the nets switches.
    ///
    /// A net that never crosses V<sub>dd</sub>/2 drops out of the
    /// max-fold entirely — which is correct only when that net was not
    /// supposed to switch. When a CMOS baseline run is available, use
    /// [`VbsimRun::delay_over_baseline`] instead so a gate stalled by
    /// virtual-ground bounce is reported as infinite delay rather than
    /// silently vanishing.
    pub fn delay_over(&self, nets: &[NetId]) -> Option<f64> {
        nets.iter()
            .filter_map(|&n| self.last_crossing_time(n))
            .fold(None, |acc, t| Some(acc.map_or(t, |a: f64| a.max(t))))
    }

    /// [`VbsimRun::delay_over`] measured against a baseline run:
    /// a net that crossed V<sub>dd</sub>/2 in `baseline` but never
    /// crosses here stalled (sleep device too small) and reports
    /// `f64::INFINITY`; a net that crosses in neither run is skipped.
    pub fn delay_over_baseline(&self, nets: &[NetId], baseline: &VbsimRun) -> Option<f64> {
        let base: Vec<Option<f64>> = nets
            .iter()
            .map(|&n| baseline.last_crossing_time(n))
            .collect();
        let here: Vec<Option<f64>> = nets.iter().map(|&n| self.last_crossing_time(n)).collect();
        worst_delay_vs_baseline(&base, &here)
    }

    /// Peak total discharge current (§4's worst-case current analysis).
    pub fn peak_sleep_current(&self) -> f64 {
        self.sleep_current.max_value().unwrap_or(0.0)
    }

    /// Peak virtual-ground bounce.
    pub fn peak_vgnd(&self) -> f64 {
        self.vgnd.max_value().unwrap_or(0.0)
    }
}

/// The worst settling delay of an observed (possibly degraded) run
/// against a baseline, from per-probe last-crossing times: a probe that
/// crossed in the baseline but not in the observed run stalled and
/// contributes `f64::INFINITY` instead of dropping out of the max-fold;
/// a probe that crossed in neither is skipped (it was never meant to
/// switch); a crossing only the observed run saw still counts. `None`
/// when every probe is skipped. Shared by the switch-level and SPICE
/// delay-pair measurements so both tiers report stalls identically.
pub fn worst_delay_vs_baseline(baseline: &[Option<f64>], observed: &[Option<f64>]) -> Option<f64> {
    baseline
        .iter()
        .zip(observed)
        .filter_map(|pair| match pair {
            (Some(_), Some(t)) | (None, Some(t)) => Some(*t),
            (Some(_), None) => Some(f64::INFINITY),
            (None, None) => None,
        })
        .fold(None, |acc, t| Some(acc.map_or(t, |a: f64| a.max(t))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model;
    use mtk_circuits::adder::RippleAdder;
    use mtk_circuits::multiplier::{ArrayMultiplier, MultiplierSpec};
    use mtk_circuits::tree::{InverterTree, TreeSpec};

    fn tech07() -> Technology {
        Technology::l07()
    }

    #[test]
    fn stalled_probe_reports_infinite_delay_against_baseline() {
        // A probe that switched in the baseline but never crossed in the
        // observed run must surface as infinite delay, not vanish.
        let baseline = [Some(1e-9), Some(2e-9), None];
        let stalled = [Some(1.5e-9), None, None];
        assert_eq!(
            worst_delay_vs_baseline(&baseline, &stalled),
            Some(f64::INFINITY)
        );
        let healthy = [Some(1.5e-9), Some(3e-9), None];
        assert_eq!(worst_delay_vs_baseline(&baseline, &healthy), Some(3e-9));
        // A probe quiet in both legs is skipped, not infinite.
        assert_eq!(worst_delay_vs_baseline(&[None], &[None]), None);
        // A crossing only the observed leg saw (e.g. an MTCMOS-induced
        // glitch) still counts toward the worst case.
        assert_eq!(worst_delay_vs_baseline(&[None], &[Some(4e-9)]), Some(4e-9));
    }

    #[test]
    fn engine_fingerprint_matches_netlist() {
        let tree = InverterTree::paper();
        let tech = tech07();
        let engine = Engine::new(&tree.netlist, &tech);
        assert_eq!(engine.fingerprint(), tree.netlist.fingerprint());
        assert_eq!(engine.fingerprint(), engine.fingerprint());
    }

    #[test]
    fn cmos_tree_delay_matches_constant_current_model() {
        // A 1-stage "tree" is just an inverter: the vbsim delay must equal
        // the Eq. 3 hand calculation exactly (same constant-current model).
        let tree = InverterTree::new(&TreeSpec {
            fanout: 1,
            stages: 1,
            load_cap: 50e-15,
            drive: 1.0,
        })
        .unwrap();
        let tech = tech07();
        let engine = Engine::new(&tree.netlist, &tech);
        let run = engine
            .run(&[Logic::Zero], &[Logic::One], &VbsimOptions::cmos())
            .unwrap();
        let d = run.last_crossing_time(tree.probe()).unwrap();
        let cl = tree.netlist.load_cap(tree.probe(), &tech);
        let i = tech.nmos_isat(tech.unit_wn, 0.0, false);
        let expect = model::constant_current_delay(&tech, cl, i);
        assert!((d - expect).abs() / expect < 1e-9, "{d} vs {expect}");
        assert!(!run.stalled && !run.truncated);
    }

    #[test]
    fn cmos_mode_equals_zero_resistance_mtcmos() {
        let tree = InverterTree::paper();
        let tech = tech07();
        let engine = Engine::new(&tree.netlist, &tech);
        let a = engine
            .run(&[Logic::Zero], &[Logic::One], &VbsimOptions::cmos())
            .unwrap();
        let b = engine
            .run(
                &[Logic::Zero],
                &[Logic::One],
                &VbsimOptions {
                    sleep: SleepNetwork::Resistance(0.0),
                    ..VbsimOptions::default()
                },
            )
            .unwrap();
        for net in tree.netlist.net_ids() {
            let (ta, tb) = (a.last_crossing_time(net), b.last_crossing_time(net));
            match (ta, tb) {
                (Some(x), Some(y)) => assert!((x - y).abs() < 1e-18),
                (None, None) => {}
                other => panic!("crossing mismatch on {net:?}: {other:?}"),
            }
        }
        assert_eq!(a.peak_vgnd(), 0.0);
    }

    #[test]
    fn sleep_transistor_slows_discharging_tree() {
        let tree = InverterTree::paper();
        let tech = tech07();
        let engine = Engine::new(&tree.netlist, &tech);
        let cmos = engine
            .run(&[Logic::Zero], &[Logic::One], &VbsimOptions::cmos())
            .unwrap();
        let mt = engine
            .run(&[Logic::Zero], &[Logic::One], &VbsimOptions::mtcmos(5.0))
            .unwrap();
        let d_cmos = cmos.delay_over(tree.leaves()).unwrap();
        let d_mt = mt.delay_over(tree.leaves()).unwrap();
        assert!(d_mt > d_cmos * 1.05, "{d_mt} vs {d_cmos}");
        assert!(mt.peak_vgnd() > 0.01);
        // The vgnd staircase shows the third-stage bump larger than the
        // first-stage bump (the Fig 5 signature): max comes after the
        // first step.
        let first_step = mt.vgnd.crossings(mt.peak_vgnd() * 0.99);
        assert!(!first_step.is_empty());
    }

    #[test]
    fn rising_transition_unaffected_by_sleep_device() {
        // Input 1 -> 0 makes the leaf outputs charge (pull-up), which an
        // NMOS sleep device does not slow (§2.1).
        let tree = InverterTree::paper();
        let tech = tech07();
        let engine = Engine::new(&tree.netlist, &tech);
        let cmos = engine
            .run(&[Logic::One], &[Logic::Zero], &VbsimOptions::cmos())
            .unwrap();
        let mt = engine
            .run(&[Logic::One], &[Logic::Zero], &VbsimOptions::mtcmos(3.0))
            .unwrap();
        let d_cmos = cmos.delay_over(tree.leaves()).unwrap();
        let d_mt = mt.delay_over(tree.leaves()).unwrap();
        // Stage 2 (middle) still discharges, so some slowdown leaks into
        // the path, but the final charging edge dominates: the penalty
        // must be far smaller than for the discharging direction.
        let fall_cmos = engine
            .run(&[Logic::Zero], &[Logic::One], &VbsimOptions::cmos())
            .unwrap()
            .delay_over(tree.leaves())
            .unwrap();
        let fall_mt = engine
            .run(&[Logic::Zero], &[Logic::One], &VbsimOptions::mtcmos(3.0))
            .unwrap()
            .delay_over(tree.leaves())
            .unwrap();
        let rise_penalty = (d_mt - d_cmos) / d_cmos;
        let fall_penalty = (fall_mt - fall_cmos) / fall_cmos;
        assert!(
            rise_penalty < fall_penalty * 0.6,
            "rise {rise_penalty} vs fall {fall_penalty}"
        );
    }

    #[test]
    fn tiny_sleep_device_cripples_the_tree() {
        let tree = InverterTree::paper();
        let tech = tech07();
        let engine = Engine::new(&tree.netlist, &tech);
        let cmos = engine
            .run(&[Logic::Zero], &[Logic::One], &VbsimOptions::cmos())
            .unwrap()
            .delay_over(tree.leaves())
            .unwrap();
        // W/L = 0.05 → R ≈ 0.9 MΩ: the nine leaves starve. The
        // equilibrium never reaches a literal stall (some trickle always
        // flows), but the delay explodes by orders of magnitude — or the
        // run is truncated by t_stop.
        let run = engine
            .run(&[Logic::Zero], &[Logic::One], &VbsimOptions::mtcmos(0.05))
            .unwrap();
        if !(run.stalled || run.truncated) {
            let d = run.delay_over(tree.leaves()).unwrap();
            assert!(d > 20.0 * cmos, "crippled delay {d} vs cmos {cmos}");
        }
    }

    #[test]
    fn vgnd_is_staircase_and_bounded() {
        let tree = InverterTree::paper();
        let tech = tech07();
        let engine = Engine::new(&tree.netlist, &tech);
        let run = engine
            .run(&[Logic::Zero], &[Logic::One], &VbsimOptions::mtcmos(8.0))
            .unwrap();
        let vg = &run.vgnd;
        assert!(vg.max_value().unwrap() < tech.vdd);
        assert!(vg.min_value().unwrap() >= 0.0);
        // Ends settled at 0 (no current at the end).
        assert!(vg.final_value().unwrap().abs() < 1e-12);
        assert!(run.peak_sleep_current() > 0.0);
    }

    #[test]
    fn adder_vbsim_reaches_correct_logic_state() {
        let add = RippleAdder::paper();
        let tech = tech07();
        let engine = Engine::new(&add.netlist, &tech);
        for &(a0, b0, a1, b1) in &[(0u64, 0u64, 7u64, 5u64), (3, 4, 1, 6), (7, 7, 0, 1)] {
            let run = engine
                .run(
                    &add.input_values(a0, b0),
                    &add.input_values(a1, b1),
                    &VbsimOptions::mtcmos(10.0),
                )
                .unwrap();
            assert!(!run.stalled && !run.truncated);
            // Final analog state must encode a1 + b1.
            let expect = a1 + b1;
            let mut got = 0u64;
            for (k, &s) in add.sum.iter().enumerate() {
                let v = run.waveform(s).final_value().unwrap();
                got |= ((v > tech.v_switch()) as u64) << k;
            }
            let vc = run.waveform(add.cout).final_value().unwrap();
            got |= ((vc > tech.v_switch()) as u64) << add.bits();
            assert_eq!(got, expect, "{a0}+{b0} -> {a1}+{b1}");
        }
    }

    #[test]
    fn multiplier_vector_a_bounces_more_than_b() {
        // §4: vector A (00,00)->(FF,81) causes many simultaneous internal
        // transitions; vector B (7F,81)->(FF,81) ripples. A must draw a
        // larger current spike and bounce the virtual ground harder.
        let m = ArrayMultiplier::new(&MultiplierSpec {
            bits: 8,
            ..MultiplierSpec::default()
        })
        .unwrap();
        let tech = Technology::l03();
        let engine = Engine::new(&m.netlist, &tech);
        let opts = VbsimOptions::mtcmos(170.0);
        let run_a = engine
            .run(
                &m.input_values(0x00, 0x00),
                &m.input_values(0xFF, 0x81),
                &opts,
            )
            .unwrap();
        let run_b = engine
            .run(
                &m.input_values(0x7F, 0x81),
                &m.input_values(0xFF, 0x81),
                &opts,
            )
            .unwrap();
        assert!(
            run_a.peak_sleep_current() > run_b.peak_sleep_current() * 1.5,
            "A {} vs B {}",
            run_a.peak_sleep_current(),
            run_b.peak_sleep_current()
        );
        assert!(run_a.peak_vgnd() > run_b.peak_vgnd());
        // The underlying mechanism (§4): many more gates co-discharge
        // under vector A than under the rippling vector B.
        assert!(
            run_a.max_simultaneous_discharging > run_b.max_simultaneous_discharging,
            "A {} vs B {} simultaneous",
            run_a.max_simultaneous_discharging,
            run_b.max_simultaneous_discharging
        );
    }

    #[test]
    fn reverse_conduction_pins_low_outputs() {
        let tree = InverterTree::paper();
        let tech = tech07();
        let engine = Engine::new(&tree.netlist, &tech);
        let opts = VbsimOptions {
            reverse_conduction: true,
            ..VbsimOptions::mtcmos(2.0)
        };
        let run = engine.run(&[Logic::Zero], &[Logic::One], &opts).unwrap();
        // Stage-0 output falls first and sits at logic low while the
        // third stage discharges: with reverse conduction it must ride
        // above 0 V at some point.
        let s0 = tree.stage_outputs[0][0];
        let w = run.waveform(s0);
        let tail_min = w
            .points()
            .iter()
            .filter(|&&(t, _)| t > run.t_end * 0.2)
            .map(|&(_, v)| v)
            .fold(f64::INFINITY, f64::min);
        let _ = tail_min;
        assert!(w.max_value().unwrap() >= 0.0, "waveform exists");
        // The pinned floor shows up as a nonzero final-phase voltage on
        // some low net while vgnd is bounced; check against the plain run.
        let plain = engine
            .run(&[Logic::Zero], &[Logic::One], &VbsimOptions::mtcmos(2.0))
            .unwrap();
        let area = |p: &mtk_num::waveform::Pwl| -> f64 { p.points().iter().map(|&(_, v)| v).sum() };
        assert!(area(run.waveform(s0)) >= area(plain.waveform(s0)) - 1e-12);
    }

    #[test]
    fn body_effect_increases_delay() {
        let tree = InverterTree::paper();
        let tech = tech07();
        let engine = Engine::new(&tree.netlist, &tech);
        let plain = engine
            .run(&[Logic::Zero], &[Logic::One], &VbsimOptions::mtcmos(5.0))
            .unwrap();
        let body = engine
            .run(
                &[Logic::Zero],
                &[Logic::One],
                &VbsimOptions {
                    body_effect: true,
                    ..VbsimOptions::mtcmos(5.0)
                },
            )
            .unwrap();
        assert!(body.delay_over(tree.leaves()).unwrap() > plain.delay_over(tree.leaves()).unwrap());
    }

    #[test]
    fn no_op_transition_produces_no_events() {
        let tree = InverterTree::paper();
        let tech = tech07();
        let engine = Engine::new(&tree.netlist, &tech);
        let run = engine
            .run(&[Logic::One], &[Logic::One], &VbsimOptions::mtcmos(10.0))
            .unwrap();
        assert_eq!(run.breakpoints, 0);
        assert!(run.delay_over(tree.leaves()).is_none());
    }

    #[test]
    fn x_state_rejected() {
        let mut nl = Netlist::new("t");
        let a = nl.add_net("a").unwrap();
        let float = nl.add_net("float").unwrap();
        let y = nl.add_net("y").unwrap();
        nl.mark_primary_input(a).unwrap();
        nl.add_cell(
            "g",
            mtk_netlist::cell::CellKind::Nand2,
            vec![a, float],
            y,
            1.0,
        )
        .unwrap();
        let tech = tech07();
        let engine = Engine::new(&nl, &tech);
        let err = engine
            .run(&[Logic::One], &[Logic::Zero], &VbsimOptions::cmos())
            .unwrap_err();
        assert!(matches!(err, CoreError::UnknownState(_)), "{err}");
    }

    #[test]
    fn mismatched_vector_widths_rejected() {
        let tree = InverterTree::paper();
        let tech = tech07();
        let engine = Engine::new(&tree.netlist, &tech);
        assert!(engine
            .run(&[Logic::Zero], &[], &VbsimOptions::cmos())
            .is_err());
    }

    #[test]
    fn sleep_network_resistances() {
        let tech = tech07();
        assert_eq!(SleepNetwork::Cmos.resistance(&tech), 0.0);
        assert_eq!(SleepNetwork::Resistance(42.0).resistance(&tech), 42.0);
        let r = SleepNetwork::Transistor { w_over_l: 10.0 }.resistance(&tech);
        assert!((r - tech.sleep_resistance(10.0)).abs() < 1e-9);
    }

    /// For any adder vector pair: vbsim settles to the logic value the
    /// zero-delay evaluator predicts, in both CMOS and MTCMOS modes.
    #[test]
    fn adder_settles_to_logic_prediction() {
        let mut rng = mtk_num::prng::Xoshiro256pp::seed_from_u64(0x5E77);
        let add = RippleAdder::paper();
        let tech = tech07();
        let engine = Engine::new(&add.netlist, &tech);
        for _ in 0..16 {
            let a0 = rng.next_below(8);
            let b0 = rng.next_below(8);
            let a1 = rng.next_below(8);
            let b1 = rng.next_below(8);
            let mt = rng.next_bool();
            let opts = if mt {
                VbsimOptions::mtcmos(10.0)
            } else {
                VbsimOptions::cmos()
            };
            let run = engine
                .run(&add.input_values(a0, b0), &add.input_values(a1, b1), &opts)
                .unwrap();
            assert!(!run.stalled);
            let expect = add.netlist.evaluate(&add.input_values(a1, b1)).unwrap();
            for net in add.netlist.net_ids() {
                if add.netlist.net(net).tie.is_some() {
                    continue;
                }
                let v = run.waveform(net).final_value().unwrap();
                let dig = v > tech.v_switch();
                if let Some(e) = expect[net.index()].to_bool() {
                    assert_eq!(dig, e, "net {} at {}", add.netlist.net(net).name, v);
                }
            }
        }
    }

    /// Asserts every observable of two runs matches bit-for-bit —
    /// waveform points compared on their `f64` bit patterns, so even a
    /// `-0.0` vs `0.0` discrepancy fails.
    fn assert_runs_identical(a: &VbsimRun, b: &VbsimRun, what: &str) {
        let pwl_bits = |w: &Pwl| -> Vec<(u64, u64)> {
            w.points()
                .iter()
                .map(|&(t, v)| (t.to_bits(), v.to_bits()))
                .collect()
        };
        assert_eq!(a.waveforms.len(), b.waveforms.len(), "{what}: net count");
        for (i, (wa, wb)) in a.waveforms.iter().zip(&b.waveforms).enumerate() {
            assert_eq!(pwl_bits(wa), pwl_bits(wb), "{what}: waveform of net {i}");
        }
        assert_eq!(pwl_bits(&a.vgnd), pwl_bits(&b.vgnd), "{what}: vgnd");
        assert_eq!(
            pwl_bits(&a.sleep_current),
            pwl_bits(&b.sleep_current),
            "{what}: sleep current"
        );
        assert_eq!(a.breakpoints, b.breakpoints, "{what}: breakpoints");
        assert_eq!(a.stalled, b.stalled, "{what}: stalled");
        assert_eq!(a.truncated, b.truncated, "{what}: truncated");
        assert_eq!(
            a.max_simultaneous_discharging, b.max_simultaneous_discharging,
            "{what}: co-discharge metric"
        );
        assert_eq!(a.t_end.to_bits(), b.t_end.to_bits(), "{what}: t_end");
        assert_eq!(a.vdd.to_bits(), b.vdd.to_bits(), "{what}: vdd");
        assert_eq!(a.health, b.health, "{what}: health counters");
    }

    /// The event kernel is bit-identical to the dense-scan kernel across
    /// sleep models, the body-effect/reverse-conduction extensions, and
    /// scratch reuse.
    #[test]
    fn event_kernel_matches_dense_scan_bitwise() {
        let add = RippleAdder::paper();
        let tech = tech07();
        let engine = Engine::new(&add.netlist, &tech);
        let variants: Vec<VbsimOptions> = vec![
            VbsimOptions::cmos(),
            VbsimOptions::mtcmos(10.0),
            VbsimOptions::mtcmos(0.6),
            VbsimOptions {
                body_effect: true,
                ..VbsimOptions::mtcmos(5.0)
            },
            VbsimOptions {
                reverse_conduction: true,
                ..VbsimOptions::mtcmos(3.0)
            },
        ];
        let mut scratch = VbsimScratch::new();
        for opts in &variants {
            for (a0, b0, a1, b1) in [(0u64, 0u64, 7u64, 5u64), (3, 4, 1, 6), (7, 7, 0, 1)] {
                let from = add.input_values(a0, b0);
                let to = add.input_values(a1, b1);
                let dense = engine
                    .run(
                        &from,
                        &to,
                        &VbsimOptions {
                            kernel: VbsimKernel::DenseScan,
                            ..opts.clone()
                        },
                    )
                    .unwrap();
                let event = engine.run(&from, &to, opts).unwrap();
                let what = format!("{a0}{b0}->{a1}{b1}");
                assert_runs_identical(&dense, &event, &what);
                // Reused scratch (warm memo, recycled buffers) must not
                // change a single bit either.
                let warm = engine.run_with(&from, &to, opts, &mut scratch).unwrap();
                assert_runs_identical(&dense, &warm, &format!("warm {what}"));
            }
        }
    }

    /// Delay through the tree is monotone non-increasing in sleep W/L.
    #[test]
    fn tree_delay_monotone_in_sleep_size() {
        let tree = InverterTree::paper();
        let tech = tech07();
        let engine = Engine::new(&tree.netlist, &tech);
        let mut last = f64::INFINITY;
        for wl in [2.0, 5.0, 8.0, 11.0, 14.0, 17.0, 20.0] {
            let run = engine
                .run(&[Logic::Zero], &[Logic::One], &VbsimOptions::mtcmos(wl))
                .unwrap();
            let d = run.delay_over(tree.leaves()).unwrap();
            assert!(d <= last + 1e-15, "delay rose at wl={wl}");
            last = d;
        }
    }
}

#[cfg(test)]
mod partition_invariants {
    use super::*;
    use mtk_circuits::adder::RippleAdder;
    use mtk_netlist::tech::Technology;

    /// A single-group partition must be bit-identical to the plain run.
    #[test]
    fn single_group_partition_equals_plain_run() {
        let add = RippleAdder::paper();
        let tech = Technology::l07();
        let engine = Engine::new(&add.netlist, &tech);
        let opts = VbsimOptions::mtcmos(10.0);
        let partition = PartitionedSleep {
            assignment: vec![0; add.netlist.cells().len()],
            networks: vec![SleepNetwork::Transistor { w_over_l: 10.0 }],
        };
        for (a0, b0, a1, b1) in [(0u64, 0u64, 7u64, 5u64), (3, 4, 1, 6)] {
            let from = add.input_values(a0, b0);
            let to = add.input_values(a1, b1);
            let plain = engine.run(&from, &to, &opts).unwrap();
            let part = engine
                .run_partitioned(&from, &to, Some(&partition), &VbsimOptions::cmos())
                .unwrap();
            assert_eq!(plain.breakpoints, part.breakpoints);
            for net in add.netlist.net_ids() {
                assert_eq!(
                    plain.waveform(net).points(),
                    part.waveform(net).points(),
                    "net {}",
                    add.netlist.net(net).name
                );
            }
            assert_eq!(plain.vgnd.points(), part.vgnd.points());
        }
    }

    /// Bad partitions are rejected.
    #[test]
    fn partition_validation() {
        let add = RippleAdder::paper();
        let tech = Technology::l07();
        let engine = Engine::new(&add.netlist, &tech);
        let from = add.input_values(0, 0);
        let to = add.input_values(7, 7);
        let short = PartitionedSleep {
            assignment: vec![0; 3],
            networks: vec![SleepNetwork::Cmos],
        };
        assert!(engine
            .run_partitioned(&from, &to, Some(&short), &VbsimOptions::cmos())
            .is_err());
        let bad_group = PartitionedSleep {
            assignment: vec![9; add.netlist.cells().len()],
            networks: vec![SleepNetwork::Cmos],
        };
        assert!(engine
            .run_partitioned(&from, &to, Some(&bad_group), &VbsimOptions::cmos())
            .is_err());
    }
}
