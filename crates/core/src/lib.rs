//! The paper's contribution: MTCMOS delay analysis and sleep-transistor
//! sizing.
//!
//! Multi-threshold CMOS gates a block of low-V<sub>t</sub> logic with one
//! high-V<sub>t</sub> *sleep transistor* between virtual and real ground.
//! This crate implements the DAC '97 methodology for sizing that device:
//!
//! * [`model`] — the first-order delay model (§5.1): the virtual-ground
//!   equilibrium V<sub>x</sub> (Eq. 5) and the constant-current gate
//!   delay (Eq. 3), with the body effect as an optional extension.
//! * [`vbsim`] — the **variable-breakpoint switch-level simulator**
//!   (§5.2): every gate is an equivalent inverter driving a piecewise-
//!   linear output; breakpoints fire whenever any gate starts or stops
//!   switching and all currents are re-solved.
//! * [`sizing`] — degradation sweeps, vector-space screening, sizing to a
//!   target degradation, and the two conservative baselines the paper
//!   criticises (sum-of-widths and peak-current sizing).
//! * [`hybrid`] — the screen-with-vbsim / verify-with-SPICE flow (§7),
//!   backed by the `mtk-spice` transistor-level engine.
//! * [`sta`] — a conventional vector-blind static timing analyzer, the
//!   tool §4 argues is *not adequate* for MTCMOS, for comparison.
//! * [`mc`] — Monte Carlo yield analysis: per-trial technology
//!   perturbations from splittable PRNG streams, degradation/bounce
//!   distributions, and pass-rate-vs-sleep-width yield curves.
//! * [`search`] — worst-vector search heuristics for circuits whose
//!   transition space cannot be enumerated, parallelized with
//!   per-work-item PRNG streams so results are thread-count-invariant.
//! * [`par`] — the std-only scoped-thread executor behind the parallel
//!   screening and search phases, with per-worker cost counters.
//! * [`energy`] — sleep-device switching-energy overhead, standby
//!   leakage savings, and break-even idle time (§2.1's cost triangle).
//! * [`modules`] — per-module sleep transistors and hierarchical sizing
//!   (the paper's future-work direction).
//!
//! # Example
//!
//! Measuring how much a small sleep transistor slows the paper's Fig 4
//! inverter tree:
//!
//! ```
//! use mtk_circuits::tree::InverterTree;
//! use mtk_core::sizing::{vbsim_delay_pair, Transition};
//! use mtk_core::vbsim::{Engine, SleepNetwork, VbsimOptions};
//! use mtk_netlist::logic::Logic;
//! use mtk_netlist::tech::Technology;
//!
//! let tree = InverterTree::paper();
//! let tech = Technology::l07();
//! let engine = Engine::new(&tree.netlist, &tech);
//! let tr = Transition::new(vec![Logic::Zero], vec![Logic::One]);
//! let pair = vbsim_delay_pair(
//!     &engine,
//!     &tr,
//!     None,
//!     SleepNetwork::Transistor { w_over_l: 5.0 },
//!     &VbsimOptions::default(),
//! )
//! .unwrap()
//! .unwrap();
//! assert!(pair.mtcmos > pair.cmos);
//! ```

#![warn(missing_docs)]

pub mod cluster;
pub mod energy;
pub mod health;
pub mod hybrid;
pub mod mc;
pub mod model;
pub mod modules;
pub mod par;
pub mod search;
pub mod sizing;
pub mod sta;
pub mod vbsim;

use std::error::Error;
use std::fmt;

/// Errors produced by the MTCMOS analysis tools.
#[derive(Debug)]
pub enum CoreError {
    /// A numerical routine failed (equilibrium solve).
    Numeric(mtk_num::NumError),
    /// The underlying netlist was inconsistent.
    Netlist(mtk_netlist::NetlistError),
    /// A SPICE verification run failed.
    Spice(mtk_spice::SpiceError),
    /// The settled circuit state contained an unknown (`X`) net.
    UnknownState(String),
    /// The switch-level run exceeded its breakpoint budget (usually a
    /// glitch storm caused by an unstable configuration).
    EventOverflow {
        /// Breakpoints processed before giving up.
        events: usize,
        /// Simulated time at which the budget ran out.
        t: f64,
    },
    /// No size within the search bracket meets the degradation target.
    SizingInfeasible {
        /// Requested fractional degradation.
        target: f64,
        /// Largest size tried.
        at_w_over_l: f64,
    },
    /// Caller-supplied options were rejected up front (e.g. a
    /// non-positive `t_stop` or a zero breakpoint budget).
    InvalidOptions(String),
    /// A fault deliberately injected by a [`health::FaultPlan`] —
    /// only ever produced by the fault-injection test harness.
    FaultInjected {
        /// Index of the work item the fault was scheduled for.
        index: usize,
    },
    /// A worker closure panicked; the panic was caught at the work-item
    /// boundary instead of aborting the sweep.
    WorkerPanic {
        /// Index of the panicking work item.
        index: usize,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// A quarantining sweep exceeded its failure cap.
    TooManyFailures {
        /// Items quarantined.
        failures: usize,
        /// The cap from [`health::FailurePolicy::Quarantine`].
        max_failures: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Numeric(e) => write!(f, "numeric failure: {e}"),
            CoreError::Netlist(e) => write!(f, "netlist failure: {e}"),
            CoreError::Spice(e) => write!(f, "spice failure: {e}"),
            CoreError::UnknownState(n) => {
                write!(f, "circuit state contains unknown net '{n}'")
            }
            CoreError::EventOverflow { events, t } => {
                write!(
                    f,
                    "switch-level run exceeded {events} breakpoints at t={t:.3e}s"
                )
            }
            CoreError::SizingInfeasible {
                target,
                at_w_over_l,
            } => write!(
                f,
                "no size up to W/L={at_w_over_l} meets {:.1}% degradation",
                target * 100.0
            ),
            CoreError::InvalidOptions(msg) => {
                write!(f, "invalid options: {msg}")
            }
            CoreError::FaultInjected { index } => {
                write!(f, "fault injected at work item {index}")
            }
            CoreError::WorkerPanic { index, message } => {
                write!(f, "worker panicked on item {index}: {message}")
            }
            CoreError::TooManyFailures {
                failures,
                max_failures,
            } => write!(
                f,
                "sweep quarantined {failures} items, more than the allowed {max_failures}"
            ),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Numeric(e) => Some(e),
            CoreError::Netlist(e) => Some(e),
            CoreError::Spice(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mtk_num::NumError> for CoreError {
    fn from(e: mtk_num::NumError) -> Self {
        CoreError::Numeric(e)
    }
}

impl From<mtk_netlist::NetlistError> for CoreError {
    fn from(e: mtk_netlist::NetlistError) -> Self {
        CoreError::Netlist(e)
    }
}

impl From<mtk_spice::SpiceError> for CoreError {
    fn from(e: mtk_spice::SpiceError) -> Self {
        CoreError::Spice(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_nonempty() {
        let errs: Vec<CoreError> = vec![
            CoreError::Numeric(mtk_num::NumError::InvalidArgument("x".into())),
            CoreError::Netlist(mtk_netlist::NetlistError::DuplicateNet("n".into())),
            CoreError::Spice(mtk_spice::SpiceError::UnknownNode("n".into())),
            CoreError::UnknownState("n".into()),
            CoreError::EventOverflow {
                events: 10,
                t: 1e-9,
            },
            CoreError::SizingInfeasible {
                target: 0.05,
                at_w_over_l: 100.0,
            },
            CoreError::InvalidOptions("t_stop must be positive".into()),
            CoreError::FaultInjected { index: 3 },
            CoreError::WorkerPanic {
                index: 4,
                message: "boom".into(),
            },
            CoreError::TooManyFailures {
                failures: 5,
                max_failures: 2,
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
