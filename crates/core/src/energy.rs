//! Energy accounting for the sleep transistor.
//!
//! §2.1 lists the costs of over-sizing beyond area: "increased switching
//! energy overhead and increased leakage current can also be limiting
//! factors." This module quantifies both sides of that trade:
//!
//! * the energy to toggle the sleep transistor's gate once per
//!   sleep/wake cycle (grows linearly with W/L),
//! * the standby leakage power saved while asleep,
//! * the **break-even idle time**: how long a sleep period must last
//!   before gating pays for its own control energy — the quantity an
//!   event-driven system (the paper's "processor running an X-server")
//!   actually budgets against.

use mtk_netlist::netlist::Netlist;
use mtk_netlist::tech::Technology;
use mtk_spice::mos::THERMAL_VOLTAGE;

/// Gate capacitance of the sleep transistor at a given size.
pub fn sleep_gate_capacitance(tech: &Technology, w_over_l: f64) -> f64 {
    tech.c_gate * w_over_l
}

/// Energy to drive the sleep transistor's gate through one full
/// sleep/wake cycle, `C·Vdd²` (one charge plus one discharge of the gate
/// dissipates exactly `C·Vdd²` in the driver).
pub fn sleep_switching_energy(tech: &Technology, w_over_l: f64) -> f64 {
    sleep_gate_capacitance(tech, w_over_l) * tech.vdd * tech.vdd
}

/// Analytic estimate of a block's standby subthreshold leakage current
/// when *unguarded*: every cell leaks through its off devices. Assumes
/// half of each cell's transistors are off at V<sub>gs</sub> = 0 with
/// full V<sub>ds</sub> — the standard order-of-magnitude estimate.
pub fn unguarded_leakage_current(netlist: &Netlist, tech: &Technology) -> f64 {
    let sub = tech.subthreshold;
    let per_unit_n = sub.i0 * (-tech.vtn / (sub.n * THERMAL_VOLTAGE)).exp();
    let per_unit_p = sub.i0 * (-tech.vtp / (sub.n * THERMAL_VOLTAGE)).exp();
    netlist
        .cells()
        .iter()
        .map(|c| {
            let n_w = c.kind.pdn().transistor_count() as f64 * tech.unit_wn * c.drive;
            let p_w = c.kind.pun().transistor_count() as f64 * tech.unit_wp * c.drive;
            // Half the stacks conduct-block at any static state.
            0.5 * (n_w * per_unit_n + p_w * per_unit_p)
        })
        .sum()
}

/// Analytic estimate of the *gated* standby leakage: limited by the off
/// high-V<sub>t</sub> sleep device at V<sub>gs</sub> = 0 (the virtual
/// ground self-reverse-biases the stack, so the sleep device dominates).
pub fn gated_leakage_current(tech: &Technology, w_over_l: f64) -> f64 {
    let sub = tech.subthreshold;
    sub.i0 * w_over_l * (-tech.vt_high / (sub.n * THERMAL_VOLTAGE)).exp()
}

/// The break-even idle duration: sleeping saves
/// `(I_unguarded − I_gated)·Vdd` watts but costs one
/// [`sleep_switching_energy`] per cycle; below this duration, gating
/// *loses* energy.
///
/// Returns `f64::INFINITY` when gating saves nothing.
pub fn break_even_idle_time(netlist: &Netlist, tech: &Technology, w_over_l: f64) -> f64 {
    let saved_power = (unguarded_leakage_current(netlist, tech)
        - gated_leakage_current(tech, w_over_l))
        * tech.vdd;
    if saved_power <= 0.0 {
        return f64::INFINITY;
    }
    sleep_switching_energy(tech, w_over_l) / saved_power
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtk_circuits::tree::InverterTree;

    #[test]
    fn switching_energy_scales_linearly() {
        let tech = Technology::l07();
        let e10 = sleep_switching_energy(&tech, 10.0);
        let e20 = sleep_switching_energy(&tech, 20.0);
        assert!((e20 / e10 - 2.0).abs() < 1e-12);
        assert!((e10 - tech.c_gate * 10.0 * 1.44).abs() < 1e-18);
    }

    #[test]
    fn gated_leakage_orders_below_unguarded() {
        let tree = InverterTree::paper();
        let tech = Technology::l03();
        let unguarded = unguarded_leakage_current(&tree.netlist, &tech);
        let gated = gated_leakage_current(&tech, 10.0);
        assert!(unguarded > 0.0 && gated > 0.0);
        assert!(
            unguarded / gated > 1e3,
            "ratio {:.1e} should be orders of magnitude",
            unguarded / gated
        );
    }

    #[test]
    fn break_even_time_grows_with_sleep_width() {
        // A wider sleep device costs more gate energy per cycle and leaks
        // more asleep: break-even idle time must be monotone increasing.
        let tree = InverterTree::paper();
        let tech = Technology::l03();
        let mut last = 0.0;
        for wl in [2.0, 10.0, 50.0, 200.0] {
            let t = break_even_idle_time(&tree.netlist, &tech, wl);
            assert!(t.is_finite() && t > last, "wl={wl}: {t}");
            last = t;
        }
    }

    #[test]
    fn break_even_infinite_when_gating_cannot_win() {
        // A sleep device so wide its own leakage exceeds the block's.
        let tree = InverterTree::paper();
        let tech = Technology::l03();
        let unguarded = unguarded_leakage_current(&tree.netlist, &tech);
        let huge = unguarded / gated_leakage_current(&tech, 1.0) * 2.0;
        assert_eq!(
            break_even_idle_time(&tree.netlist, &tech, huge),
            f64::INFINITY
        );
    }

    #[test]
    fn high_vt_process_leaks_less_at_same_size() {
        let t03 = Technology::l03(); // vt 0.2
        let t07 = Technology::l07(); // vt 0.35
        let tree = InverterTree::paper();
        let l03 = unguarded_leakage_current(&tree.netlist, &t03);
        let l07 = unguarded_leakage_current(&tree.netlist, &t07);
        assert!(l03 > l07, "lower Vt must leak more: {l03} vs {l07}");
    }
}
