//! Per-module sleep transistors — the paper's future-work direction.
//!
//! A single shared sleep device makes *every* discharging gate interact.
//! Partitioning the block so each module gets its own (smaller) sleep
//! transistor decouples modules that never discharge at the same time;
//! the authors developed this into hierarchical sizing based on mutually
//! exclusive discharge patterns in their 1998 follow-up. This module
//! provides:
//!
//! * [`partition_by_depth`] — a structural partition (pipeline-stage
//!   style): cells grouped by logic depth, so gates that switch at
//!   different times land in different modules.
//! * [`size_modules_for_target`] — per-module sizing: each module's
//!   device is bisected against the target with the others held large,
//!   then the joint solution is verified and uniformly scaled up if the
//!   interaction pushed it over target.
//! * [`total_width`] — the area metric compared against the single
//!   global device.

use crate::sizing::Transition;
use crate::vbsim::{Engine, PartitionedSleep, SleepNetwork, VbsimOptions};
use crate::CoreError;
use mtk_netlist::netlist::{NetId, Netlist};

/// Assigns every cell to one of `n_groups` modules by logic depth.
///
/// # Errors
///
/// Returns [`CoreError::Netlist`] for cyclic netlists.
///
/// # Panics
///
/// Panics if `n_groups == 0`.
pub fn partition_by_depth(netlist: &Netlist, n_groups: usize) -> Result<Vec<usize>, CoreError> {
    assert!(n_groups > 0, "need at least one group");
    let order = netlist.topo_order().map_err(CoreError::Netlist)?;
    let mut depth_of_net = vec![0usize; netlist.nets().len()];
    let mut depth_of_cell = vec![0usize; netlist.cells().len()];
    let mut max_depth = 1usize;
    for ci in order {
        let cell = netlist.cell(ci);
        let d = cell
            .inputs
            .iter()
            .map(|&n| depth_of_net[n.index()])
            .max()
            .unwrap_or(0)
            + 1;
        depth_of_cell[ci.index()] = d;
        depth_of_net[cell.output.index()] = d;
        max_depth = max_depth.max(d);
    }
    Ok(depth_of_cell
        .into_iter()
        .map(|d| ((d - 1) * n_groups / max_depth).min(n_groups - 1))
        .collect())
}

/// Total sleep width of a per-module solution.
pub fn total_width(w_over_ls: &[f64]) -> f64 {
    w_over_ls.iter().sum()
}

/// Worst degradation over transitions for a given per-module sizing.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn worst_degradation_partitioned(
    engine: &Engine<'_>,
    transitions: &[Transition],
    probes: Option<&[NetId]>,
    assignment: &[usize],
    w_over_ls: &[f64],
    base: &VbsimOptions,
) -> Result<f64, CoreError> {
    let outputs: Vec<NetId> = match probes {
        Some(p) => p.to_vec(),
        None => engine.netlist().primary_outputs().to_vec(),
    };
    let partition = PartitionedSleep {
        assignment: assignment.to_vec(),
        networks: w_over_ls
            .iter()
            .map(|&wl| SleepNetwork::Transistor { w_over_l: wl })
            .collect(),
    };
    let mut worst = 0.0f64;
    for tr in transitions {
        let cmos = engine.run(&tr.from, &tr.to, &VbsimOptions::cmos())?;
        let Some(d_cmos) = cmos.delay_over(&outputs) else {
            continue;
        };
        let mt = engine.run_partitioned(&tr.from, &tr.to, Some(&partition), base)?;
        let d_mt = if mt.stalled || mt.truncated {
            f64::INFINITY
        } else {
            // Per-probe against the baseline: an output that switched in
            // CMOS but never under MTCMOS is a stalled gate (infinite
            // delay), not a probe to skip.
            mt.delay_over_baseline(&outputs, &cmos).unwrap_or(d_cmos)
        };
        worst = worst.max((d_mt - d_cmos) / d_cmos);
    }
    Ok(worst)
}

/// Sizes one sleep transistor per module so the worst degradation over
/// `transitions` is at most `target`.
///
/// Strategy: bisect each module independently (others pinned at `hi`),
/// then verify the joint solution and scale all modules up uniformly
/// (at most a few ×1.2 steps) if cross-module interaction pushed the
/// worst case past the target.
///
/// # Errors
///
/// * [`CoreError::SizingInfeasible`] when even all-`hi` misses the
///   target.
/// * Propagates simulator errors.
#[allow(clippy::too_many_arguments)]
pub fn size_modules_for_target(
    engine: &Engine<'_>,
    transitions: &[Transition],
    probes: Option<&[NetId]>,
    assignment: &[usize],
    n_groups: usize,
    target: f64,
    (lo, hi): (f64, f64),
    base: &VbsimOptions,
) -> Result<Vec<f64>, CoreError> {
    assert!(n_groups > 0 && lo > 0.0 && hi > lo, "invalid arguments");
    let worst = |wls: &[f64]| {
        worst_degradation_partitioned(engine, transitions, probes, assignment, wls, base)
    };
    let all_hi = vec![hi; n_groups];
    if worst(&all_hi)? > target {
        return Err(CoreError::SizingInfeasible {
            target,
            at_w_over_l: hi,
        });
    }
    // Per-module bisection with the rest held at hi.
    let mut sizes = vec![hi; n_groups];
    for g in 0..n_groups {
        let (mut glo, mut ghi) = (lo, hi);
        for _ in 0..24 {
            let mid = (glo * ghi).sqrt();
            let mut trial = vec![hi; n_groups];
            trial[g] = mid;
            if worst(&trial)? > target {
                glo = mid;
            } else {
                ghi = mid;
            }
            if ghi / glo < 1.02 {
                break;
            }
        }
        sizes[g] = ghi;
    }
    // Joint verification with uniform scale-up.
    for _ in 0..12 {
        if worst(&sizes)? <= target {
            return Ok(sizes);
        }
        for s in &mut sizes {
            *s = (*s * 1.2).min(hi);
        }
    }
    Ok(vec![hi; n_groups])
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtk_circuits::adder::RippleAdder;
    use mtk_circuits::tree::InverterTree;
    use mtk_netlist::logic::Logic;
    use mtk_netlist::tech::Technology;

    #[test]
    fn depth_partition_is_valid_and_ordered() {
        let add = RippleAdder::paper();
        let assignment = partition_by_depth(&add.netlist, 3).unwrap();
        assert_eq!(assignment.len(), add.netlist.cells().len());
        assert!(assignment.iter().all(|&g| g < 3));
        // All groups populated for a deep enough circuit.
        for g in 0..3 {
            assert!(assignment.contains(&g), "group {g} empty: {assignment:?}");
        }
    }

    #[test]
    fn tree_stage_partition_decouples_stages() {
        // In the Fig 4 tree, stage 0 and stage 2 both discharge on a
        // rising input. With one shared device they interact; with one
        // device per stage (same per-device size!) each stage sees only
        // its own current, so the delay improves.
        let tree = InverterTree::paper();
        let tech = Technology::l07();
        let engine = Engine::new(&tree.netlist, &tech);
        let assignment = partition_by_depth(&tree.netlist, 3).unwrap();
        let wl = 5.0;
        let single = engine
            .run(&[Logic::Zero], &[Logic::One], &VbsimOptions::mtcmos(wl))
            .unwrap();
        let partition = PartitionedSleep {
            assignment,
            networks: vec![SleepNetwork::Transistor { w_over_l: wl }; 3],
        };
        let multi = engine
            .run_partitioned(
                &[Logic::Zero],
                &[Logic::One],
                Some(&partition),
                &VbsimOptions::cmos(),
            )
            .unwrap();
        let d_single = single.delay_over(tree.leaves()).unwrap();
        let d_multi = multi.delay_over(tree.leaves()).unwrap();
        assert!(
            d_multi < d_single,
            "partitioned {d_multi} should beat shared {d_single}"
        );
    }

    #[test]
    fn per_module_sizing_meets_target_with_smaller_local_devices() {
        let tree = InverterTree::paper();
        let tech = Technology::l07();
        let engine = Engine::new(&tree.netlist, &tech);
        let tr = Transition::new(vec![Logic::Zero], vec![Logic::One]);
        let base = VbsimOptions::cmos(); // sleep comes from the partition
        let assignment = partition_by_depth(&tree.netlist, 3).unwrap();
        let target = 0.20;
        let sizes = size_modules_for_target(
            &engine,
            std::slice::from_ref(&tr),
            None,
            &assignment,
            3,
            target,
            (0.5, 400.0),
            &base,
        )
        .unwrap();
        let worst = worst_degradation_partitioned(
            &engine,
            std::slice::from_ref(&tr),
            None,
            &assignment,
            &sizes,
            &base,
        )
        .unwrap();
        assert!(worst <= target + 1e-9, "worst {worst}");
        // Compare with the single-device size for the same target.
        let single = crate::sizing::size_for_target(
            &engine,
            &[tr],
            None,
            target,
            (0.5, 400.0),
            &VbsimOptions::default(),
        )
        .unwrap();
        // The allocation must track per-module current: the third stage
        // (nine discharging gates) needs the widest device, the first
        // stage (one gate) the narrowest. No general ordering exists
        // against the shared-device size — the tree's stages lie on one
        // path, so the delay budget is *split* across modules (each
        // local device buys only part of the 20%), which is exactly the
        // sequential-path caveat of hierarchical sizing; the
        // exclusive-discharge win is demonstrated in EXT-MODULES.
        let stage_of_group: Vec<f64> = sizes.clone();
        assert!(
            stage_of_group[2] > stage_of_group[0],
            "nine-gate stage must get the widest device: {sizes:?} (single: {single})"
        );
        assert!(total_width(&sizes) > 0.0 && single > 0.0);
    }
}
