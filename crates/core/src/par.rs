//! A small std-only parallel executor for the screening/search hot path.
//!
//! The paper's workflow is embarrassingly parallel: thousands of input
//! vectors, each simulated independently by the switch-level simulator —
//! and, in the hybrid flow ([`crate::hybrid::run_hybrid`]), the top
//! screened candidates each verified independently by a SPICE transient
//! on a per-worker reusable circuit.
//! This module shards an indexed work list across scoped worker threads.
//! Work items are handed out dynamically (an atomic cursor over fixed
//! chunks), but results are keyed by item index, so the *output* is
//! independent of the schedule: any randomness a work item needs must
//! come from a per-index [`mtk_num::prng::Xoshiro256pp::stream`], never
//! from a worker-local generator — that is what makes screening and
//! search bit-identical at any thread count.
//!
//! Each worker also keeps observability counters (vectors simulated,
//! vbsim breakpoints solved, busy wall time) so binaries can report the
//! realised speedup.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// A work item whose closure panicked. The panic was caught at the
/// item boundary, so the rest of the sweep kept running; `message` is
/// the panic payload when it was a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ItemPanic {
    /// Index of the panicking item.
    pub index: usize,
    /// Stringified panic payload (`"<non-string panic payload>"` when
    /// the payload was not a `&str`/`String`).
    pub message: String,
}

pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Observability counters for one worker thread. These describe the
/// *schedule* (which is nondeterministic under dynamic sharding) — the
/// computed results never depend on them.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkerStats {
    /// Worker index, `0..threads`.
    pub worker: usize,
    /// Input-vector transitions simulated (CMOS + MTCMOS pairs count 1).
    pub vectors: u64,
    /// Switch-level breakpoints solved across all runs.
    pub breakpoints: u64,
    /// Seconds this worker spent busy.
    pub wall: f64,
}

impl WorkerStats {
    /// Merges another worker's counters into this one (used when a
    /// multi-phase computation reports one line per worker).
    pub fn absorb(&mut self, other: &WorkerStats) {
        self.vectors += other.vectors;
        self.breakpoints += other.breakpoints;
        self.wall += other.wall;
    }

    /// This worker's counters as a [`mtk_trace::WorkerTrace`] entry of
    /// the timing section (worker sinks are schedule-dependent, so they
    /// never enter the deterministic part of a trace).
    pub fn to_trace(&self) -> mtk_trace::WorkerTrace {
        mtk_trace::WorkerTrace {
            worker: self.worker as u64,
            items: self.vectors,
            breakpoints: self.breakpoints,
            busy_s: self.wall,
        }
    }
}

/// Converts per-worker stats into timing-section entries, preserving
/// worker index order.
pub fn worker_traces(workers: &[WorkerStats]) -> Vec<mtk_trace::WorkerTrace> {
    workers.iter().map(WorkerStats::to_trace).collect()
}

/// Resolves a `threads` knob: `0` means "all available cores".
pub fn num_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Maps `f` over `items`, sharded across `threads` scoped workers, with a
/// per-worker context built once by `init` (e.g. a worker-owned
/// [`crate::vbsim::Engine`] over a shared netlist). Results are returned
/// in item order; `stats` reports one entry per worker.
///
/// `chunk` is the number of consecutive indices claimed per cursor
/// increment: 1 for heavy items (one vbsim run each), larger for cheap
/// ones.
pub fn parallel_map_with<C, T, R, Init, F>(
    threads: usize,
    chunk: usize,
    items: &[T],
    init: Init,
    f: F,
) -> (Vec<R>, Vec<WorkerStats>)
where
    T: Sync,
    R: Send,
    Init: Fn() -> C + Sync,
    F: Fn(&mut C, usize, &T, &mut WorkerStats) -> R + Sync,
{
    let (results, stats) = try_parallel_map_with(threads, chunk, items, init, f);
    let out = results
        .into_iter()
        .map(|r| match r {
            Ok(v) => v,
            Err(p) => panic!("worker panicked on item {}: {}", p.index, p.message),
        })
        .collect();
    (out, stats)
}

/// [`parallel_map_with`] with per-item panic isolation: each call to `f`
/// runs under `catch_unwind`, so one panicking item becomes an
/// [`ItemPanic`] in its result slot instead of tearing down the sweep.
/// The per-worker context is rebuilt (via `init`) after a caught panic,
/// since the panicking call may have left it mid-update; items are still
/// keyed by index, so output remains schedule-independent.
pub fn try_parallel_map_with<C, T, R, Init, F>(
    threads: usize,
    chunk: usize,
    items: &[T],
    init: Init,
    f: F,
) -> (Vec<Result<R, ItemPanic>>, Vec<WorkerStats>)
where
    T: Sync,
    R: Send,
    Init: Fn() -> C + Sync,
    F: Fn(&mut C, usize, &T, &mut WorkerStats) -> R + Sync,
{
    let threads = num_threads(threads).min(items.len().max(1));
    let chunk = chunk.max(1);

    let run_item =
        |ctx: &mut C, idx: usize, item: &T, stats: &mut WorkerStats| -> Result<R, ItemPanic> {
            match catch_unwind(AssertUnwindSafe(|| f(&mut *ctx, idx, item, &mut *stats))) {
                Ok(v) => Ok(v),
                Err(payload) => {
                    *ctx = init();
                    Err(ItemPanic {
                        index: idx,
                        message: panic_message(payload),
                    })
                }
            }
        };

    if threads <= 1 {
        // Inline fast path: no thread spawn, same per-index semantics.
        let t0 = Instant::now();
        let mut ctx = init();
        let mut stats = WorkerStats::default();
        let out = items
            .iter()
            .enumerate()
            .map(|(i, item)| run_item(&mut ctx, i, item, &mut stats))
            .collect();
        stats.wall = t0.elapsed().as_secs_f64();
        return (out, vec![stats]);
    }

    let cursor = AtomicUsize::new(0);
    let mut results: Vec<Option<Result<R, ItemPanic>>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);
    let mut all_stats = vec![WorkerStats::default(); threads];

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for worker in 0..threads {
            let cursor = &cursor;
            let run_item = &run_item;
            let init = &init;
            handles.push(scope.spawn(move || {
                let t0 = Instant::now();
                let mut ctx = init();
                let mut stats = WorkerStats {
                    worker,
                    ..WorkerStats::default()
                };
                let mut local: Vec<(usize, Result<R, ItemPanic>)> = Vec::new();
                loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= items.len() {
                        break;
                    }
                    let end = (start + chunk).min(items.len());
                    for (i, item) in items[start..end].iter().enumerate() {
                        let idx = start + i;
                        local.push((idx, run_item(&mut ctx, idx, item, &mut stats)));
                    }
                }
                stats.wall = t0.elapsed().as_secs_f64();
                (local, stats)
            }));
        }
        for handle in handles {
            let (local, stats) = handle.join().expect("worker thread panicked");
            let worker = stats.worker;
            all_stats[worker] = stats;
            for (idx, r) in local {
                results[idx] = Some(r);
            }
        }
    });

    let out = results
        .into_iter()
        .map(|r| r.expect("executor covered every index"))
        .collect();
    (out, all_stats)
}

/// [`parallel_map_with`] without a per-worker context.
pub fn parallel_map<T, R, F>(
    threads: usize,
    chunk: usize,
    items: &[T],
    f: F,
) -> (Vec<R>, Vec<WorkerStats>)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T, &mut WorkerStats) -> R + Sync,
{
    parallel_map_with(threads, chunk, items, || (), |(), i, item, s| f(i, item, s))
}

/// Merges per-phase worker stats into one line per worker index (phases
/// may use different thread counts; the result is as long as the widest
/// phase).
pub fn merge_stats(phases: &[Vec<WorkerStats>]) -> Vec<WorkerStats> {
    let width = phases.iter().map(|p| p.len()).max().unwrap_or(0);
    let mut out: Vec<WorkerStats> = (0..width)
        .map(|worker| WorkerStats {
            worker,
            ..WorkerStats::default()
        })
        .collect();
    for phase in phases {
        for s in phase {
            out[s.worker].absorb(s);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_index_order_at_any_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8] {
            let (got, stats) = parallel_map(threads, 4, &items, |_, &x, s| {
                s.vectors += 1;
                x * 3 + 1
            });
            assert_eq!(got, expect, "threads={threads}");
            let total: u64 = stats.iter().map(|s| s.vectors).sum();
            assert_eq!(total, items.len() as u64);
        }
    }

    #[test]
    fn per_worker_context_is_reused() {
        // Count context constructions: one per worker, not per item.
        let builds = AtomicUsize::new(0);
        let items = vec![(); 64];
        let (got, stats) = parallel_map_with(
            2,
            1,
            &items,
            || {
                builds.fetch_add(1, Ordering::Relaxed);
                0usize
            },
            |ctx, i, (), _| {
                *ctx += 1;
                i
            },
        );
        assert_eq!(got, (0..64).collect::<Vec<_>>());
        assert!(builds.load(Ordering::Relaxed) <= stats.len());
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let items: Vec<u32> = Vec::new();
        let (got, stats) = parallel_map(4, 1, &items, |_, &x, _| x);
        assert!(got.is_empty());
        assert_eq!(stats.len(), 1, "clamped to one (inline) worker");
    }

    #[test]
    fn num_threads_resolves_zero_to_available() {
        assert!(num_threads(0) >= 1);
        assert_eq!(num_threads(3), 3);
    }

    #[test]
    fn panicking_item_is_isolated_at_any_thread_count() {
        let items: Vec<u64> = (0..64).collect();
        let mut expect: Vec<Result<u64, ItemPanic>> = items.iter().map(|&x| Ok(x * 2)).collect();
        expect[13] = Err(ItemPanic {
            index: 13,
            message: "injected panic at item 13".into(),
        });
        for threads in [1, 2, 8] {
            let (got, _) = try_parallel_map_with(
                threads,
                4,
                &items,
                || (),
                |(), i, &x, _| {
                    if i == 13 {
                        panic!("injected panic at item {i}");
                    }
                    x * 2
                },
            );
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn context_is_rebuilt_after_panic() {
        // A panicking item must not leak a half-updated context into the
        // items that follow it on the same worker.
        let items: Vec<u32> = (0..8).collect();
        let (got, _) = try_parallel_map_with(
            1,
            1,
            &items,
            || 0u32,
            |ctx, i, _, _| {
                *ctx += 1;
                if i == 3 {
                    panic!("poisoned");
                }
                *ctx
            },
        );
        // Context counts items since the last rebuild: 1,2,3,panic,1,2,...
        let values: Vec<Option<u32>> = got.into_iter().map(|r| r.ok()).collect();
        assert_eq!(
            values,
            vec![
                Some(1),
                Some(2),
                Some(3),
                None,
                Some(1),
                Some(2),
                Some(3),
                Some(4)
            ]
        );
    }

    #[test]
    #[should_panic(expected = "worker panicked on item 5")]
    fn strict_map_repanics_with_item_index() {
        let items: Vec<u32> = (0..16).collect();
        let _ = parallel_map(1, 1, &items, |i, &x, _| {
            if i == 5 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    fn merge_stats_sums_by_worker() {
        let a = vec![
            WorkerStats {
                worker: 0,
                vectors: 2,
                breakpoints: 10,
                wall: 0.5,
            },
            WorkerStats {
                worker: 1,
                vectors: 3,
                breakpoints: 20,
                wall: 0.6,
            },
        ];
        let b = vec![WorkerStats {
            worker: 0,
            vectors: 5,
            breakpoints: 1,
            wall: 0.1,
        }];
        let merged = merge_stats(&[a, b]);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].vectors, 7);
        assert_eq!(merged[0].breakpoints, 11);
        assert_eq!(merged[1].vectors, 3);
    }
}
