//! Monte Carlo yield analysis over process variation — "does the sized
//! sleep transistor still meet the degradation target when the dice
//! roll badly?"
//!
//! The DAC '97 flow sizes the sleep device against *nominal* process
//! parameters. This module closes the loop the paper leaves open: it
//! perturbs the technology per trial (threshold voltages, process
//! transconductances, and a common width factor, each scaled by the
//! technology's `sigma_*` fields), re-measures the worst delay
//! degradation and virtual-ground bounce through the switch-level
//! simulator, and reports pass-rate-vs-sleep-width *yield curves* plus
//! degradation/bounce distributions.
//!
//! # Determinism contract
//!
//! Trial `i` draws its perturbation from PRNG stream `(seed, i)`
//! ([`Xoshiro256pp::stream`]), runs as one work item of the shared
//! [`crate::par`] executor, and is folded index-ordered by
//! [`fold_item_reports`] — so the sample set, the yield curves, the
//! percentiles, and the deterministic trace are bit-identical at any
//! thread count. [`perturb_technology`] draws **exactly six** gaussians
//! per trial whatever the sigmas are, so adding a sigma never shifts
//! another field's draw.
//!
//! Degraded paths route through the standard machinery: an
//! `EventOverflow` trial gets one retry at a budget relaxed by
//! [`RETRY_BUDGET_FACTOR`], failures land in the [`SweepHealth`]
//! quarantine under the caller's [`FailurePolicy`], and everything
//! observable flows through the [`mtk_trace`] registry — never stderr.
//!
//! # Persistent store
//!
//! [`run_mc`] optionally writes every simulated trial through to a
//! crash-safe [`mtk_store::Store`], keyed by the netlist and technology
//! fingerprints, the transition set, the seed, and every option the
//! trial reads. A warm rerun replays the stored samples — *including*
//! the stored [`RunHealth`] and retry flag, which is what makes the
//! warm deterministic trace byte-identical to the cold one — and does
//! zero simulator work. Store write failures degrade to recompute-only
//! and are never surfaced as errors.

use crate::health::{
    fold_item_reports, FailurePolicy, FaultPlan, ItemReport, RunHealth, SweepHealth,
    RETRY_BUDGET_FACTOR,
};
use crate::par::{try_parallel_map_with, WorkerStats};
use crate::sizing::{DelayPair, Transition};
use crate::vbsim::{worst_delay_vs_baseline, Engine, SleepNetwork, VbsimOptions, VbsimScratch};
use crate::CoreError;
use mtk_netlist::logic::Logic;
use mtk_netlist::netlist::{NetId, Netlist};
use mtk_netlist::tech::Technology;
use mtk_num::prng::Xoshiro256pp;
use mtk_trace::{CounterId, Histogram, PhaseTrace};
use std::time::Instant;

/// Options for one Monte Carlo sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct McOptions {
    /// Number of trials. Trial `i` is a pure function of `(seed, i)`,
    /// so raising the count extends the sample set without moving the
    /// existing samples.
    pub trials: usize,
    /// PRNG seed; stream `(seed, i)` drives trial `i`.
    pub seed: u64,
    /// Nominal sleep W/L the degradation/bounce distributions are
    /// measured at.
    pub w_over_l: f64,
    /// Sleep W/L points of the yield curve (pass-rate per width).
    pub widths: Vec<f64>,
    /// Fractional degradation a trial must stay within to pass
    /// (e.g. `0.05` for the paper's 5 % criterion).
    pub target: f64,
    /// Worker threads (`0`/`1` run inline).
    pub threads: usize,
    /// What happens when a trial fails after its fallbacks.
    pub policy: FailurePolicy,
    /// Base simulator options; the sleep network field is replaced per
    /// leg and `max_events` is relaxed on the overflow retry.
    pub base: VbsimOptions,
}

impl Default for McOptions {
    fn default() -> Self {
        McOptions {
            trials: 256,
            seed: 0x4D43, // "MC"
            w_over_l: 10.0,
            widths: vec![5.0, 10.0, 20.0, 40.0],
            target: 0.05,
            threads: 1,
            policy: FailurePolicy::FailFast,
            base: VbsimOptions::default(),
        }
    }
}

/// One Monte Carlo trial's measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialSample {
    /// Worst fractional delay degradation over the transitions at the
    /// nominal width (`f64::INFINITY` when a gate stalled; `0.0` when
    /// no transition switched a probe).
    pub degradation: f64,
    /// Worst peak virtual-ground bounce over the MTCMOS legs at the
    /// nominal width, volts.
    pub bounce: f64,
    /// Per [`McOptions::widths`] entry: worst degradation at that width
    /// within [`McOptions::target`].
    pub pass_at_width: Vec<bool>,
    /// The sample was replayed from the persistent store rather than
    /// simulated.
    pub from_store: bool,
}

/// Perturbs a technology with one trial's process variation. Draws
/// **exactly six** standard gaussians in a fixed order (V<sub>tn</sub>,
/// V<sub>tp</sub>, high-V<sub>t</sub>, k'<sub>n</sub>, k'<sub>p</sub>,
/// width) whatever the sigmas are, so the draw layout is part of the
/// determinism contract. Returns the perturbed technology plus the
/// common width factor, which the caller must also apply to the sleep
/// device's W/L (the sleep transistor is drawn on the same wafer).
///
/// Clamps keep the result physical: thresholds stay inside
/// `[10 mV, 0.95·Vdd]`, transconductance and width factors stay at or
/// above 5 % of nominal. With all sigmas zero the output technology is
/// bit-identical to the input (the draws are still consumed).
pub fn perturb_technology(tech: &Technology, rng: &mut Xoshiro256pp) -> (Technology, f64) {
    let g_vtn = rng.next_gaussian();
    let g_vtp = rng.next_gaussian();
    let g_vth = rng.next_gaussian();
    let g_kpn = rng.next_gaussian();
    let g_kpp = rng.next_gaussian();
    let g_w = rng.next_gaussian();
    let clamp_vt = |v: f64| v.clamp(0.01, tech.vdd * 0.95);
    let clamp_scale = |s: f64| s.max(0.05);
    let mut t = tech.clone();
    t.vtn = clamp_vt(tech.vtn + tech.sigma_vt * g_vtn);
    t.vtp = clamp_vt(tech.vtp + tech.sigma_vt * g_vtp);
    t.vt_high = clamp_vt(tech.vt_high + tech.sigma_vt * g_vth);
    t.kp_n = tech.kp_n * clamp_scale(1.0 + tech.sigma_kp * g_kpn);
    t.kp_p = tech.kp_p * clamp_scale(1.0 + tech.sigma_kp * g_kpp);
    let w_scale = clamp_scale(1.0 + tech.sigma_w * g_w);
    t.unit_wn = tech.unit_wn * w_scale;
    t.unit_wp = tech.unit_wp * w_scale;
    (t, w_scale)
}

/// Tag prefix of Monte Carlo trial records in a persistent store,
/// versioned separately from the store container format: bump when the
/// key or value encoding changes so stale records read as misses.
const MC_RECORD_TAG: &[u8; 4] = b"mct1";

/// FNV-1a over a byte stream — digests the (possibly large) transition
/// set into the store key instead of embedding it.
fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn logic_byte(l: Logic) -> u8 {
    match l {
        Logic::Zero => 0,
        Logic::One => 1,
        Logic::X => 2,
    }
}

/// The shared prefix of every trial's store key: everything a trial's
/// result depends on except the trial index. Equal prefixes mean equal
/// sweeps, so a warm rerun of the same sweep hits every record.
struct McKey {
    prefix: Vec<u8>,
}

impl McKey {
    fn new(
        netlist: &Netlist,
        tech: &Technology,
        transitions: &[Transition],
        probes: Option<&[NetId]>,
        opts: &McOptions,
    ) -> Self {
        let transitions_digest = fnv1a(transitions.iter().flat_map(|tr| {
            tr.from
                .iter()
                .chain(tr.to.iter())
                .map(|&l| logic_byte(l))
                .chain([0xFF])
        }));
        let probes_digest = match probes {
            None => u64::MAX,
            Some(p) => fnv1a(p.iter().flat_map(|n| (n.index() as u64).to_le_bytes())),
        };
        let mut prefix = Vec::with_capacity(96);
        prefix.extend_from_slice(MC_RECORD_TAG);
        prefix.extend_from_slice(&netlist.fingerprint().to_le_bytes());
        prefix.extend_from_slice(&tech.fingerprint().to_le_bytes());
        prefix.extend_from_slice(&(transitions.len() as u64).to_le_bytes());
        prefix.extend_from_slice(&transitions_digest.to_le_bytes());
        prefix.extend_from_slice(&probes_digest.to_le_bytes());
        prefix.extend_from_slice(&opts.seed.to_le_bytes());
        prefix.extend_from_slice(&opts.w_over_l.to_bits().to_le_bytes());
        prefix.extend_from_slice(&opts.target.to_bits().to_le_bytes());
        prefix.extend_from_slice(&(opts.widths.len() as u32).to_le_bytes());
        for &w in &opts.widths {
            prefix.extend_from_slice(&w.to_bits().to_le_bytes());
        }
        prefix.push(opts.base.body_effect as u8);
        prefix.push(opts.base.reverse_conduction as u8);
        prefix.extend_from_slice(&opts.base.t_stop.to_bits().to_le_bytes());
        prefix.extend_from_slice(&(opts.base.max_events as u64).to_le_bytes());
        McKey { prefix }
    }

    fn trial(&self, index: usize) -> Vec<u8> {
        let mut key = self.prefix.clone();
        key.extend_from_slice(&(index as u64).to_le_bytes());
        key
    }
}

/// Byte encoding of one stored trial: the sample, the retry flag, and
/// every [`RunHealth`] counter — the stored health is what makes a warm
/// rerun's deterministic trace byte-identical to the cold one.
fn encode_trial(sample: &TrialSample, retried: bool, run: &RunHealth) -> Vec<u8> {
    let mut out = Vec::with_capacity(24 + sample.pass_at_width.len());
    out.extend_from_slice(&sample.degradation.to_bits().to_le_bytes());
    out.extend_from_slice(&sample.bounce.to_bits().to_le_bytes());
    out.extend_from_slice(&(sample.pass_at_width.len() as u32).to_le_bytes());
    for &p in &sample.pass_at_width {
        out.push(p as u8);
    }
    out.push(retried as u8);
    for v in [
        run.breakpoints,
        run.max_events,
        run.glitch_reversals,
        run.vx_fallbacks,
        run.cache_hits,
        run.cache_misses,
    ] {
        out.extend_from_slice(&(v as u64).to_le_bytes());
    }
    out
}

/// Inverse of [`encode_trial`], with `from_store` set. `None` on any
/// length or flag mismatch — a malformed record is a miss, never served.
fn decode_trial(bytes: &[u8]) -> Option<(TrialSample, bool, RunHealth)> {
    fn take<'a>(bytes: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
        if bytes.len() < n {
            return None;
        }
        let (head, tail) = bytes.split_at(n);
        *bytes = tail;
        Some(head)
    }
    fn take_u64(bytes: &mut &[u8]) -> Option<u64> {
        Some(u64::from_le_bytes(take(bytes, 8)?.try_into().ok()?))
    }
    fn flag(b: u8) -> Option<bool> {
        match b {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
    let mut rest = bytes;
    let degradation = f64::from_bits(take_u64(&mut rest)?);
    let bounce = f64::from_bits(take_u64(&mut rest)?);
    let n = u32::from_le_bytes(take(&mut rest, 4)?.try_into().ok()?) as usize;
    let mut pass_at_width = Vec::with_capacity(n);
    for _ in 0..n {
        pass_at_width.push(flag(take(&mut rest, 1)?[0])?);
    }
    let retried = flag(take(&mut rest, 1)?[0])?;
    let run = RunHealth {
        breakpoints: take_u64(&mut rest)? as usize,
        max_events: take_u64(&mut rest)? as usize,
        glitch_reversals: take_u64(&mut rest)? as usize,
        vx_fallbacks: take_u64(&mut rest)? as usize,
        cache_hits: take_u64(&mut rest)? as usize,
        cache_misses: take_u64(&mut rest)? as usize,
    };
    if !rest.is_empty() {
        return None;
    }
    Some((
        TrialSample {
            degradation,
            bounce,
            pass_at_width,
            from_store: true,
        },
        retried,
        run,
    ))
}

/// Everything one simulator leg contributes to a trial.
struct TrialLeg {
    crossings: Vec<Option<f64>>,
    stalled: bool,
    truncated: bool,
    bounce: f64,
}

/// Runs one leg, accumulating health/worker counters exactly like the
/// screening path (an overflowing run's cost is still counted).
fn run_trial_leg(
    engine: &Engine<'_>,
    tr: &Transition,
    outputs: &[NetId],
    opts: &VbsimOptions,
    scratch: &mut VbsimScratch,
    run: &mut RunHealth,
    stats: &mut WorkerStats,
) -> Result<TrialLeg, CoreError> {
    match engine.run_with(&tr.from, &tr.to, opts, scratch) {
        Ok(r) => {
            run.absorb(&r.health);
            stats.breakpoints += r.health.breakpoints as u64;
            Ok(TrialLeg {
                crossings: outputs.iter().map(|&n| r.last_crossing_time(n)).collect(),
                stalled: r.stalled,
                truncated: r.truncated,
                bounce: r.peak_vgnd(),
            })
        }
        Err(e) => {
            if let CoreError::EventOverflow { events, .. } = e {
                run.breakpoints += events;
                run.max_events = run.max_events.max(opts.max_events);
                stats.breakpoints += events as u64;
            }
            Err(e)
        }
    }
}

/// Worst (latest) baseline crossing, `None` when nothing switched.
fn worst_crossing(crossings: &[Option<f64>]) -> Option<f64> {
    crossings
        .iter()
        .flatten()
        .copied()
        .fold(None, |acc: Option<f64>, t| {
            Some(acc.map_or(t, |a| a.max(t)))
        })
}

/// Degradation of one MTCMOS leg against its CMOS baseline, with the
/// same stall semantics as the screening path.
fn leg_degradation(d_cmos: f64, baseline: &[Option<f64>], mt: &TrialLeg) -> f64 {
    let d_mt = if mt.stalled || mt.truncated {
        f64::INFINITY
    } else {
        worst_delay_vs_baseline(baseline, &mt.crossings).unwrap_or(d_cmos)
    };
    DelayPair {
        cmos: d_cmos,
        mtcmos: d_mt,
    }
    .degradation()
}

/// One Monte Carlo trial attempt at one breakpoint budget.
#[allow(clippy::too_many_arguments)]
fn trial_attempt(
    netlist: &Netlist,
    tech: &Technology,
    transitions: &[Transition],
    probes: Option<&[NetId]>,
    opts: &McOptions,
    budget: usize,
    index: usize,
    attempt: usize,
    fault: &FaultPlan,
    scratch: &mut VbsimScratch,
    run: &mut RunHealth,
    stats: &mut WorkerStats,
) -> Result<TrialSample, CoreError> {
    fault.check(index, attempt)?;
    let mut rng = Xoshiro256pp::stream(opts.seed, index as u64);
    let (tech_p, w_scale) = perturb_technology(tech, &mut rng);
    let engine = Engine::new(netlist, &tech_p);
    let outputs: Vec<NetId> = match probes {
        Some(p) => p.to_vec(),
        None => netlist.primary_outputs().to_vec(),
    };
    let leg_opts = |sleep: SleepNetwork| VbsimOptions {
        sleep,
        max_events: budget,
        ..opts.base.clone()
    };
    let mt_opts = |w: f64| {
        leg_opts(SleepNetwork::Transistor {
            w_over_l: w * w_scale,
        })
    };
    let mut worst_nominal: Option<f64> = None;
    let mut worst_bounce = 0.0f64;
    let mut worst_at_width: Vec<Option<f64>> = vec![None; opts.widths.len()];
    let fold = |acc: &mut Option<f64>, d: f64| {
        *acc = Some(acc.map_or(d, |a| a.max(d)));
    };
    for tr in transitions {
        let cmos = run_trial_leg(
            &engine,
            tr,
            &outputs,
            &leg_opts(SleepNetwork::Cmos),
            scratch,
            run,
            stats,
        )?;
        let Some(d_cmos) = worst_crossing(&cmos.crossings) else {
            // The transition never switches a probe; nothing to degrade.
            continue;
        };
        let nominal = run_trial_leg(
            &engine,
            tr,
            &outputs,
            &mt_opts(opts.w_over_l),
            scratch,
            run,
            stats,
        )?;
        let d_nominal = leg_degradation(d_cmos, &cmos.crossings, &nominal);
        fold(&mut worst_nominal, d_nominal);
        worst_bounce = worst_bounce.max(nominal.bounce);
        for (i, &w) in opts.widths.iter().enumerate() {
            // The nominal-width leg doubles as its curve point.
            let d = if w == opts.w_over_l {
                d_nominal
            } else {
                let leg = run_trial_leg(&engine, tr, &outputs, &mt_opts(w), scratch, run, stats)?;
                leg_degradation(d_cmos, &cmos.crossings, &leg)
            };
            fold(&mut worst_at_width[i], d);
        }
    }
    Ok(TrialSample {
        degradation: worst_nominal.unwrap_or(0.0),
        bounce: worst_bounce,
        pass_at_width: worst_at_width
            .iter()
            .map(|d| d.unwrap_or(0.0) <= opts.target)
            .collect(),
        from_store: false,
    })
}

/// One Monte Carlo work item: store lookup, first attempt, and — only
/// for [`CoreError::EventOverflow`] — one retry at a budget relaxed by
/// [`RETRY_BUDGET_FACTOR`], with write-through of the result.
#[allow(clippy::too_many_arguments)]
fn mc_item(
    netlist: &Netlist,
    tech: &Technology,
    transitions: &[Transition],
    probes: Option<&[NetId]>,
    opts: &McOptions,
    fault: &FaultPlan,
    store: Option<&mtk_store::Store>,
    key: &McKey,
    scratch: &mut VbsimScratch,
    index: usize,
    stats: &mut WorkerStats,
) -> ItemReport<TrialSample> {
    stats.vectors += 1;
    if let Some(store) = store {
        if let Some((sample, retried, run)) = store
            .get(&key.trial(index))
            .and_then(|bytes| decode_trial(&bytes))
        {
            return ItemReport {
                value: Ok(sample),
                retried,
                run,
            };
        }
    }
    let mut run = RunHealth::default();
    let mut value = trial_attempt(
        netlist,
        tech,
        transitions,
        probes,
        opts,
        opts.base.max_events,
        index,
        0,
        fault,
        scratch,
        &mut run,
        stats,
    );
    let mut retried = false;
    if matches!(value, Err(CoreError::EventOverflow { .. })) {
        retried = true;
        value = trial_attempt(
            netlist,
            tech,
            transitions,
            probes,
            opts,
            opts.base.max_events.saturating_mul(RETRY_BUDGET_FACTOR),
            index,
            1,
            fault,
            scratch,
            &mut run,
            stats,
        );
    }
    if let (Some(store), Ok(sample)) = (store, &value) {
        // A failed write degrades the store to recompute-only; it is
        // never an error for the sweep.
        let _ = store.put(&key.trial(index), &encode_trial(sample, retried, &run));
    }
    ItemReport {
        value,
        retried,
        run,
    }
}

/// Result of one [`run_mc`] sweep.
#[derive(Debug)]
pub struct McReport {
    /// Per-trial samples, indexed by trial; `None` = quarantined.
    pub samples: Vec<Option<TrialSample>>,
    /// The yield-curve widths the samples were measured at.
    pub widths: Vec<f64>,
    /// The pass criterion the samples were judged against.
    pub target: f64,
    /// Sweep-level health (quarantine, retries, summed run counters).
    pub health: SweepHealth,
    /// Per-worker cost counters.
    pub workers: Vec<WorkerStats>,
    /// End-to-end wall time, seconds.
    pub wall: f64,
}

/// A degradation as basis points (`0.05` → 500), saturating: a stalled
/// trial (infinite degradation) reports `u64::MAX`.
pub fn degradation_bp(d: f64) -> u64 {
    if !d.is_finite() {
        return u64::MAX;
    }
    let bp = (d.max(0.0) * 1e4).round();
    if bp >= u64::MAX as f64 {
        u64::MAX
    } else {
        bp as u64
    }
}

/// A bounce voltage as whole microvolts, saturating like
/// [`degradation_bp`].
pub fn bounce_uv(v: f64) -> u64 {
    if !v.is_finite() {
        return u64::MAX;
    }
    let uv = (v.max(0.0) * 1e6).round();
    if uv >= u64::MAX as f64 {
        u64::MAX
    } else {
        uv as u64
    }
}

/// Nearest-rank percentile of an unsorted sample set (`0` when empty).
fn percentile(values: &[u64], p: f64) -> u64 {
    if values.is_empty() {
        return 0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

impl McReport {
    /// The completed samples, trial-index-ordered.
    pub fn completed(&self) -> impl Iterator<Item = &TrialSample> {
        self.samples.iter().flatten()
    }

    /// Trials whose nominal-width degradation meets the target.
    pub fn passed(&self) -> usize {
        self.completed()
            .filter(|s| s.degradation <= self.target)
            .count()
    }

    /// Trials replayed from the persistent store.
    pub fn store_hits(&self) -> usize {
        self.completed().filter(|s| s.from_store).count()
    }

    /// Trials that had to be simulated (zero on a fully warm rerun).
    pub fn store_misses(&self) -> usize {
        self.completed().count() - self.store_hits()
    }

    /// Pass rate per sleep width: `(w_over_l, fraction of completed
    /// trials within target)` — the paper's sizing criterion as a yield
    /// curve under process variation.
    pub fn yield_curve(&self) -> Vec<(f64, f64)> {
        let n = self.completed().count();
        self.widths
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                let pass = self
                    .completed()
                    .filter(|s| s.pass_at_width.get(i).copied().unwrap_or(false))
                    .count();
                (w, if n == 0 { 0.0 } else { pass as f64 / n as f64 })
            })
            .collect()
    }

    /// Nearest-rank percentile of the nominal-width degradation
    /// distribution, in basis points.
    pub fn degradation_percentile_bp(&self, p: f64) -> u64 {
        let values: Vec<u64> = self
            .completed()
            .map(|s| degradation_bp(s.degradation))
            .collect();
        percentile(&values, p)
    }

    /// Nearest-rank percentile of the bounce distribution, microvolts.
    pub fn bounce_percentile_uv(&self, p: f64) -> u64 {
        let values: Vec<u64> = self.completed().map(|s| bounce_uv(s.bounce)).collect();
        percentile(&values, p)
    }

    /// This sweep as one phase of a [`mtk_trace::TraceReport`]: the
    /// sweep health plus the Monte Carlo counters, store traffic, and
    /// the degradation (basis points) and bounce (millivolts)
    /// distribution histograms.
    pub fn to_phase(&self, name: &str) -> PhaseTrace {
        let mut phase = self.health.phase(name).with_wall(self.wall);
        phase.workers = crate::par::worker_traces(&self.workers);
        phase
            .counters
            .add(CounterId::McTrials, self.samples.len() as u64);
        phase
            .counters
            .add(CounterId::McPassed, self.passed() as u64);
        phase
            .counters
            .add(CounterId::McP50DegrBp, self.degradation_percentile_bp(50.0));
        phase
            .counters
            .add(CounterId::McP95DegrBp, self.degradation_percentile_bp(95.0));
        phase
            .counters
            .add(CounterId::McP99DegrBp, self.degradation_percentile_bp(99.0));
        phase
            .counters
            .add(CounterId::McP99BounceUv, self.bounce_percentile_uv(99.0));
        phase
            .counters
            .add(CounterId::StoreHits, self.store_hits() as u64);
        phase
            .counters
            .add(CounterId::StoreMisses, self.store_misses() as u64);
        let mut degr = Histogram::new();
        let mut bounce = Histogram::new();
        for s in self.completed() {
            degr.record(degradation_bp(s.degradation));
            bounce.record(bounce_uv(s.bounce) / 1000);
        }
        phase.extra_histograms = vec![
            ("mc_degradation_bp".to_string(), degr),
            ("mc_bounce_mv".to_string(), bounce),
        ];
        phase
    }
}

/// Runs a Monte Carlo sweep: `opts.trials` perturbed copies of the
/// technology, each re-measured over the transitions, sharded across
/// `opts.threads` workers. See the module docs for the determinism and
/// store contracts.
///
/// # Errors
///
/// * [`CoreError::InvalidOptions`] on zero trials or non-finite /
///   non-positive widths and targets.
/// * Under [`FailurePolicy::FailFast`], the first failing trial's error
///   (lowest-indexed, deterministically).
/// * Under [`FailurePolicy::Quarantine`],
///   [`CoreError::TooManyFailures`] when the cap is exceeded.
pub fn run_mc(
    netlist: &Netlist,
    tech: &Technology,
    transitions: &[Transition],
    probes: Option<&[NetId]>,
    opts: &McOptions,
    store: Option<&mtk_store::Store>,
    fault: &FaultPlan,
) -> Result<McReport, CoreError> {
    if opts.trials == 0 {
        return Err(CoreError::InvalidOptions(
            "mc needs at least one trial".into(),
        ));
    }
    if !(opts.target.is_finite() && opts.target >= 0.0) {
        return Err(CoreError::InvalidOptions(format!(
            "mc target must be finite and non-negative, got {}",
            opts.target
        )));
    }
    for &w in opts.widths.iter().chain([&opts.w_over_l]) {
        if !(w.is_finite() && w > 0.0) {
            return Err(CoreError::InvalidOptions(format!(
                "mc sleep widths must be finite and positive, got {w}"
            )));
        }
    }
    let t0 = Instant::now();
    let key = McKey::new(netlist, tech, transitions, probes, opts);
    let items: Vec<usize> = (0..opts.trials).collect();
    let (reports, workers) = try_parallel_map_with(
        opts.threads,
        4,
        &items,
        VbsimScratch::new,
        |scratch, index, _trial, stats| {
            mc_item(
                netlist,
                tech,
                transitions,
                probes,
                opts,
                fault,
                store,
                &key,
                scratch,
                index,
                stats,
            )
        },
    );
    let (samples, health) = fold_item_reports(reports, opts.policy)?;
    Ok(McReport {
        samples,
        widths: opts.widths.clone(),
        target: opts.target,
        health,
        workers,
        wall: t0.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtk_circuits::tree::InverterTree;

    fn tech_with_sigmas() -> Technology {
        Technology {
            sigma_vt: 0.03,
            sigma_kp: 0.05,
            sigma_w: 0.04,
            ..Technology::l07()
        }
    }

    fn small_opts(trials: usize, threads: usize) -> McOptions {
        McOptions {
            trials,
            threads,
            w_over_l: 10.0,
            widths: vec![2.0, 10.0, 50.0],
            ..McOptions::default()
        }
    }

    fn tree_transitions() -> Vec<Transition> {
        vec![
            Transition::new(vec![Logic::Zero], vec![Logic::One]),
            Transition::new(vec![Logic::One], vec![Logic::Zero]),
        ]
    }

    #[test]
    fn perturbation_draws_exactly_six_gaussians_and_respects_sigmas() {
        let tech = tech_with_sigmas();
        let mut rng = Xoshiro256pp::stream(7, 3);
        let (p, w_scale) = perturb_technology(&tech, &mut rng);
        // Same stream, six manual draws: the next value after perturb
        // must equal the seventh draw of a fresh stream.
        let mut probe = Xoshiro256pp::stream(7, 3);
        for _ in 0..6 {
            probe.next_gaussian();
        }
        assert_eq!(rng.next_u64(), probe.next_u64());
        assert_ne!(p.fingerprint(), tech.fingerprint());
        assert!(p.vtn > 0.0 && p.vt_high < p.vdd);
        assert!(p.kp_n > 0.0 && p.kp_p > 0.0);
        assert!(w_scale > 0.0);
        // Width variation moves both unit widths by the same factor.
        assert!((p.unit_wn / tech.unit_wn - w_scale).abs() < 1e-12);
        assert!((p.unit_wp / tech.unit_wp - w_scale).abs() < 1e-12);
    }

    #[test]
    fn zero_sigmas_perturb_to_the_identical_technology() {
        let tech = Technology::l07();
        let mut rng = Xoshiro256pp::stream(1, 0);
        let (p, w_scale) = perturb_technology(&tech, &mut rng);
        assert_eq!(p.fingerprint(), tech.fingerprint());
        assert_eq!(w_scale, 1.0);
    }

    #[test]
    fn trial_records_round_trip_through_the_byte_codec() {
        let sample = TrialSample {
            degradation: 0.0734,
            bounce: 0.0521,
            pass_at_width: vec![false, true, true],
            from_store: false,
        };
        let run = RunHealth {
            breakpoints: 123,
            max_events: 200_000,
            glitch_reversals: 4,
            vx_fallbacks: 1,
            cache_hits: 0,
            cache_misses: 0,
        };
        let bytes = encode_trial(&sample, true, &run);
        let (decoded, retried, run2) = decode_trial(&bytes).unwrap();
        assert_eq!(decoded.degradation, sample.degradation);
        assert_eq!(decoded.bounce, sample.bounce);
        assert_eq!(decoded.pass_at_width, sample.pass_at_width);
        assert!(decoded.from_store, "replayed samples must say so");
        assert!(retried);
        assert_eq!(run2, run);
        // Truncated or padded records are misses, never wrong answers.
        assert!(decode_trial(&bytes[..bytes.len() - 1]).is_none());
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(decode_trial(&padded).is_none());
    }

    #[test]
    fn mc_is_deterministic_across_thread_counts() {
        let tree = InverterTree::paper();
        let tech = tech_with_sigmas();
        let transitions = tree_transitions();
        let opts1 = small_opts(32, 1);
        let r1 = run_mc(
            &tree.netlist,
            &tech,
            &transitions,
            None,
            &opts1,
            None,
            &FaultPlan::none(),
        )
        .unwrap();
        for threads in [2, 8] {
            let opts = McOptions {
                threads,
                ..opts1.clone()
            };
            let r = run_mc(
                &tree.netlist,
                &tech,
                &transitions,
                None,
                &opts,
                None,
                &FaultPlan::none(),
            )
            .unwrap();
            assert_eq!(r.samples, r1.samples, "threads={threads}");
            assert_eq!(r.yield_curve(), r1.yield_curve());
            assert_eq!(
                r.to_phase("mc").counters.iter().collect::<Vec<_>>(),
                r1.to_phase("mc").counters.iter().collect::<Vec<_>>()
            );
        }
        // The sweep actually measured something.
        assert_eq!(r1.samples.len(), 32);
        assert!(r1.completed().count() == 32);
        assert!(r1.completed().any(|s| s.degradation > 0.0));
        // Yield is monotone in sleep width on this circuit: a wider
        // device can only help.
        let curve = r1.yield_curve();
        assert!(curve.windows(2).all(|w| w[0].1 <= w[1].1), "{curve:?}");
    }

    #[test]
    fn variation_widens_the_distribution_but_typ_trials_agree() {
        let tree = InverterTree::paper();
        let transitions = tree_transitions();
        // With zero sigmas every trial measures the nominal circuit, so
        // the distribution collapses to a point.
        let tech0 = Technology::l07();
        let opts = small_opts(12, 2);
        let r0 = run_mc(
            &tree.netlist,
            &tech0,
            &transitions,
            None,
            &opts,
            None,
            &FaultPlan::none(),
        )
        .unwrap();
        let d0: Vec<u64> = r0
            .completed()
            .map(|s| degradation_bp(s.degradation))
            .collect();
        assert!(d0.windows(2).all(|w| w[0] == w[1]), "{d0:?}");
        assert_eq!(
            r0.degradation_percentile_bp(50.0),
            r0.degradation_percentile_bp(99.0)
        );
        // With sigmas the same seed produces a spread.
        let r1 = run_mc(
            &tree.netlist,
            &tech_with_sigmas(),
            &transitions,
            None,
            &opts,
            None,
            &FaultPlan::none(),
        )
        .unwrap();
        let d1: Vec<u64> = r1
            .completed()
            .map(|s| degradation_bp(s.degradation))
            .collect();
        assert!(d1.iter().any(|&d| d != d1[0]), "{d1:?}");
    }

    #[test]
    fn warm_store_rerun_replays_every_trial_without_simulating() {
        let dir = std::env::temp_dir().join(format!("mtk_mc_store_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mc.log");
        let tree = InverterTree::paper();
        let tech = tech_with_sigmas();
        let transitions = tree_transitions();
        let opts = small_opts(16, 2);
        let cold = {
            let store = mtk_store::Store::open(&path).unwrap();
            run_mc(
                &tree.netlist,
                &tech,
                &transitions,
                None,
                &opts,
                Some(&store),
                &FaultPlan::none(),
            )
            .unwrap()
        };
        assert_eq!(cold.store_hits(), 0);
        assert_eq!(cold.store_misses(), 16);
        let warm = {
            let store = mtk_store::Store::open(&path).unwrap();
            run_mc(
                &tree.netlist,
                &tech,
                &transitions,
                None,
                &opts,
                Some(&store),
                &FaultPlan::none(),
            )
            .unwrap()
        };
        assert_eq!(warm.store_hits(), 16, "every trial must replay");
        assert_eq!(warm.store_misses(), 0);
        // Samples agree except for provenance, and the deterministic
        // telemetry (health counters, histograms) is bit-identical
        // because the stored RunHealth replays.
        let strip = |r: &McReport| -> Vec<TrialSample> {
            r.completed()
                .map(|s| TrialSample {
                    from_store: false,
                    ..s.clone()
                })
                .collect()
        };
        assert_eq!(strip(&warm), strip(&cold));
        assert_eq!(warm.health.runs.breakpoints, cold.health.runs.breakpoints);
        // A different seed misses: trials are keyed by their stream.
        let reseeded = McOptions {
            seed: opts.seed + 1,
            ..opts.clone()
        };
        let store = mtk_store::Store::open(&path).unwrap();
        let other = run_mc(
            &tree.netlist,
            &tech,
            &transitions,
            None,
            &reseeded,
            Some(&store),
            &FaultPlan::none(),
        )
        .unwrap();
        assert_eq!(other.store_hits(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn faults_route_through_quarantine_and_retry_like_every_sweep() {
        let tree = InverterTree::paper();
        let tech = tech_with_sigmas();
        let transitions = tree_transitions();
        let opts = McOptions {
            policy: FailurePolicy::quarantine(4),
            ..small_opts(8, 2)
        };
        let fault = FaultPlan {
            error_at: vec![1],
            panic_at: vec![5],
            ..FaultPlan::none()
        };
        let r = run_mc(
            &tree.netlist,
            &tech,
            &transitions,
            None,
            &opts,
            None,
            &fault,
        )
        .unwrap();
        assert_eq!(r.health.quarantined_indices(), vec![1, 5]);
        assert_eq!(r.health.panics_recovered, 1);
        assert!(r.samples[1].is_none() && r.samples[5].is_none());
        assert_eq!(r.completed().count(), 6);
        // A transient overflow retries and succeeds without quarantine.
        let fault = FaultPlan {
            overflow_at: vec![2],
            ..FaultPlan::none()
        };
        let r = run_mc(
            &tree.netlist,
            &tech,
            &transitions,
            None,
            &opts,
            None,
            &fault,
        )
        .unwrap();
        assert_eq!(r.health.retries, 1);
        assert_eq!(r.health.retry_successes, 1);
        assert!(r.health.quarantined.is_empty());
        assert_eq!(r.completed().count(), 8);
    }

    #[test]
    fn invalid_options_are_rejected_up_front() {
        let tree = InverterTree::paper();
        let tech = Technology::l07();
        let transitions = tree_transitions();
        let bad = [
            McOptions {
                trials: 0,
                ..McOptions::default()
            },
            McOptions {
                target: f64::NAN,
                ..McOptions::default()
            },
            McOptions {
                w_over_l: 0.0,
                ..McOptions::default()
            },
            McOptions {
                widths: vec![10.0, f64::INFINITY],
                ..McOptions::default()
            },
        ];
        for opts in bad {
            let r = run_mc(
                &tree.netlist,
                &tech,
                &transitions,
                None,
                &opts,
                None,
                &FaultPlan::none(),
            );
            assert!(matches!(r, Err(CoreError::InvalidOptions(_))), "{opts:?}");
        }
    }

    #[test]
    fn percentiles_and_units_saturate_sanely() {
        assert_eq!(degradation_bp(0.05), 500);
        assert_eq!(degradation_bp(f64::INFINITY), u64::MAX);
        assert_eq!(degradation_bp(-0.01), 0);
        assert_eq!(bounce_uv(0.0521), 52_100);
        assert_eq!(percentile(&[], 99.0), 0);
        assert_eq!(percentile(&[7], 50.0), 7);
        let vals: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&vals, 50.0), 50);
        assert_eq!(percentile(&vals, 99.0), 99);
        assert_eq!(percentile(&vals, 100.0), 100);
    }
}
