//! Cluster-based sleep-transistor sizing from mutually-exclusive
//! discharge patterns.
//!
//! The paper's future-work direction (developed in the authors' 1998
//! follow-up) observes that gates which never discharge *at the same
//! time* can share one sleep transistor sized for the worst single
//! current instead of the sum. This module derives that structure from
//! the tool's own vector set — no new simulation semantics:
//!
//! * [`exclusive_partition`] — evaluates every transition with the
//!   existing logic evaluator, marks the cells whose outputs fall, and
//!   builds a conflict graph (two cells conflict iff some vector
//!   discharges both). A deterministic first-fit colouring in cell-id
//!   order groups mutually exclusive cells into clusters, folding into
//!   `max_clusters` when the conflict structure demands more colours.
//! * [`size_clusters_for_target`] — one virtual-ground sleep device per
//!   cluster, co-optimised under a shared degradation budget: each
//!   cluster's device is bisected as an independent, fault-tolerant
//!   `mtk_core::par` work item (index-ordered fold, quarantine, retry),
//!   then the joint solution is verified and uniformly scaled up.
//!   The **never-worse rule**: the single-device solution for the same
//!   target is always computed too, and whichever uses less total width
//!   wins — sequential paths split the delay budget across clusters and
//!   can genuinely need *more* total width (see
//!   [`crate::modules::size_modules_for_target`]'s caveat), so clustered
//!   sizing must not silently regress the area it exists to save.
//!
//! Every simulator evaluation can be written through a persistent
//! [`mtk_store::Store`] under its own record tag, so a warm rerun
//! replays the whole co-optimisation — including its [`RunHealth`]
//! telemetry, bit-identically — without simulating anything.

use crate::health::{
    fold_item_reports, FailurePolicy, FaultPlan, ItemReport, RunHealth, SweepHealth,
    RETRY_BUDGET_FACTOR,
};
use crate::par::{try_parallel_map_with, WorkerStats};
use crate::sizing::Transition;
use crate::vbsim::{Engine, PartitionedSleep, SleepNetwork, VbsimOptions, VbsimScratch};
use crate::CoreError;
use mtk_netlist::logic::Logic;
use mtk_netlist::netlist::{NetId, Netlist};
use mtk_netlist::tech::Technology;
use std::time::Instant;

/// A partition of a netlist's cells into clusters of (mostly) mutually
/// exclusive discharging gates, as produced by [`exclusive_partition`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExclusivePartition {
    /// Cluster index per cell, indexed by `CellId::index()`.
    pub assignment: Vec<usize>,
    /// Number of clusters (colours used by the first-fit colouring).
    pub n_clusters: usize,
    /// Edges of the conflict graph: unordered cell pairs that discharge
    /// together on at least one vector.
    pub conflict_edges: usize,
    /// Cells placed into a cluster they conflict with because the
    /// colouring needed more than `max_clusters` colours. Zero means
    /// every cluster is genuinely conflict-free.
    pub folded: usize,
}

impl ExclusivePartition {
    /// The per-cluster sleep configuration for a vector of device sizes
    /// (one W/L per cluster), ready for
    /// [`Engine::run_partitioned`].
    ///
    /// # Panics
    ///
    /// Panics when `w_over_ls.len() != self.n_clusters`.
    pub fn to_sleep(&self, w_over_ls: &[f64]) -> PartitionedSleep {
        assert_eq!(w_over_ls.len(), self.n_clusters, "one size per cluster");
        PartitionedSleep {
            assignment: self.assignment.clone(),
            networks: w_over_ls
                .iter()
                .map(|&wl| SleepNetwork::Transistor { w_over_l: wl })
                .collect(),
        }
    }
}

/// Whether a cell output moving `from → to` may pull current through
/// the sleep path. `X` on either side is treated conservatively as a
/// possible discharge.
fn may_discharge(from: Logic, to: Logic) -> bool {
    matches!(from, Logic::One | Logic::X) && matches!(to, Logic::Zero | Logic::X)
}

/// Partitions the netlist's cells into clusters of mutually-exclusive
/// discharging gates, inferred from the given vector set.
///
/// Two cells *conflict* when some transition discharges both (their
/// outputs settle high before the step and low after it, with `X`
/// counted conservatively on either side); conflicting cells must not
/// share a sleep device, so a first-fit colouring in cell-id order
/// assigns each cell the lowest conflict-free cluster. When the
/// conflict structure needs more than `max_clusters` colours, the cell
/// is folded into the existing cluster it conflicts with least (ties:
/// lowest cluster index) and counted in
/// [`ExclusivePartition::folded`] — per-cluster sizing simulates real
/// currents, so a folded cluster is sized correctly, just less tightly.
///
/// The result is a pure function of the netlist and the transition
/// list: no randomness, no schedule dependence.
///
/// # Errors
///
/// Propagates logic-evaluation errors ([`CoreError::Netlist`]) — cyclic
/// netlists, transitions whose width disagrees with the primary inputs.
///
/// # Panics
///
/// Panics when `max_clusters == 0`.
///
/// # Example
///
/// ```
/// use mtk_core::cluster::exclusive_partition;
/// use mtk_core::sizing::Transition;
/// use mtk_netlist::cell::CellKind;
/// use mtk_netlist::logic::Logic;
/// use mtk_netlist::netlist::Netlist;
///
/// let mut nl = Netlist::new("pair");
/// let a = nl.add_net("a")?;
/// let b = nl.add_net("b")?;
/// nl.mark_primary_input(a)?;
/// nl.mark_primary_input(b)?;
/// let x = nl.add_net("x")?;
/// let y = nl.add_net("y")?;
/// nl.add_cell("i1", CellKind::Inv, vec![a], x, 1.0)?;
/// nl.add_cell("i2", CellKind::Inv, vec![b], y, 1.0)?;
///
/// // a and b never rise together, so the two inverters never
/// // discharge at once and can share one cluster (and one device).
/// let exclusive = [
///     Transition::new(vec![Logic::Zero, Logic::One], vec![Logic::One, Logic::One]),
///     Transition::new(vec![Logic::One, Logic::Zero], vec![Logic::One, Logic::One]),
/// ];
/// let p = exclusive_partition(&nl, &exclusive, 8)?;
/// assert_eq!(p.assignment, vec![0, 0]);
/// assert_eq!((p.n_clusters, p.conflict_edges), (1, 0));
///
/// // One vector that switches both at once forces them apart.
/// let both = [Transition::new(
///     vec![Logic::Zero, Logic::Zero],
///     vec![Logic::One, Logic::One],
/// )];
/// let p = exclusive_partition(&nl, &both, 8)?;
/// assert_eq!(p.assignment, vec![0, 1]);
/// assert_eq!((p.n_clusters, p.conflict_edges), (2, 1));
/// # Ok::<(), mtk_core::CoreError>(())
/// ```
pub fn exclusive_partition(
    netlist: &Netlist,
    transitions: &[Transition],
    max_clusters: usize,
) -> Result<ExclusivePartition, CoreError> {
    assert!(max_clusters > 0, "need at least one cluster");
    let n_cells = netlist.cells().len();
    let words = n_cells.div_ceil(64);
    // Conflict adjacency as one bitset row per cell.
    let mut rows = vec![0u64; n_cells * words];
    let mut discharge = vec![0u64; words];
    let mut discharging: Vec<usize> = Vec::new();
    for tr in transitions {
        let before = netlist.evaluate(&tr.from).map_err(CoreError::Netlist)?;
        let after = netlist.evaluate(&tr.to).map_err(CoreError::Netlist)?;
        discharge.iter_mut().for_each(|w| *w = 0);
        discharging.clear();
        for (ci, cell) in netlist.cells().iter().enumerate() {
            let out = cell.output.index();
            if may_discharge(before[out], after[out]) {
                discharge[ci / 64] |= 1u64 << (ci % 64);
                discharging.push(ci);
            }
        }
        for &ci in &discharging {
            let row = &mut rows[ci * words..(ci + 1) * words];
            for (r, d) in row.iter_mut().zip(&discharge) {
                *r |= d;
            }
        }
    }
    // A cell does not conflict with itself.
    for ci in 0..n_cells {
        rows[ci * words + ci / 64] &= !(1u64 << (ci % 64));
    }
    let conflict_edges = rows.iter().map(|w| w.count_ones() as usize).sum::<usize>() / 2;

    // First-fit colouring in cell-id order; colours therefore appear in
    // increasing order of first use, so the labelling is canonical.
    let mut members: Vec<Vec<u64>> = Vec::new();
    let mut assignment = vec![0usize; n_cells];
    let mut folded = 0usize;
    for ci in 0..n_cells {
        let row = &rows[ci * words..(ci + 1) * words];
        let free =
            (0..members.len()).find(|&k| row.iter().zip(&members[k]).all(|(r, m)| r & m == 0));
        let k = match free {
            Some(k) => k,
            None if members.len() < max_clusters => {
                members.push(vec![0u64; words]);
                members.len() - 1
            }
            None => {
                // Fold into the least-conflicting existing cluster.
                folded += 1;
                (0..members.len())
                    .min_by_key(|&k| {
                        row.iter()
                            .zip(&members[k])
                            .map(|(r, m)| (r & m).count_ones())
                            .sum::<u32>()
                    })
                    .expect("max_clusters > 0 so at least one cluster exists")
            }
        };
        members[k][ci / 64] |= 1u64 << (ci % 64);
        assignment[ci] = k;
    }
    Ok(ExclusivePartition {
        assignment,
        n_clusters: members.len(),
        conflict_edges,
        folded,
    })
}

/// Tag prefix of cluster-evaluation records in a persistent store,
/// versioned separately from the store container format: bump when the
/// key or value encoding changes so stale records read as misses, never
/// as wrong answers. Distinct from the screening (`leg1`), serve
/// (`req1:`) and Monte Carlo (`mct1`) namespaces sharing the same log.
pub const CLUSTER_RECORD_TAG: &[u8; 4] = b"clu1";

/// FNV-1a, the same hash family the netlist fingerprint uses.
struct Digest(u64);

impl Digest {
    fn new() -> Self {
        Digest(0xcbf2_9ce4_8422_2325)
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
        }
    }
    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }
}

/// The shared store-key prefix of every evaluation of one co-optimise
/// call at one breakpoint budget: record tag, netlist and technology
/// fingerprints, then a digest over probes, transitions, assignment and
/// the [`VbsimOptions`] fields the simulator reads. The per-evaluation
/// suffix is the sizes vector itself.
fn eval_prefix(
    engine: &Engine<'_>,
    outputs: &[NetId],
    transitions: &[Transition],
    assignment: &[usize],
    base: &VbsimOptions,
) -> Vec<u8> {
    let mut d = Digest::new();
    d.write_u64(outputs.len() as u64);
    for n in outputs {
        d.write_u64(n.index() as u64);
    }
    let level = |l: &Logic| match l {
        Logic::Zero => 0u8,
        Logic::One => 1,
        Logic::X => 2,
    };
    d.write_u64(transitions.len() as u64);
    for tr in transitions {
        d.write_u64(tr.from.len() as u64);
        for l in tr.from.iter().chain(&tr.to) {
            d.write(&[level(l)]);
        }
    }
    d.write_u64(assignment.len() as u64);
    for &g in assignment {
        d.write_u64(g as u64);
    }
    d.write(&[base.body_effect as u8, base.reverse_conduction as u8]);
    d.write_u64(base.t_stop.to_bits());
    d.write_u64(base.max_events as u64);
    let mut out = Vec::with_capacity(4 + 24);
    out.extend_from_slice(CLUSTER_RECORD_TAG);
    out.extend_from_slice(&engine.fingerprint().to_le_bytes());
    out.extend_from_slice(&engine.tech().fingerprint().to_le_bytes());
    out.extend_from_slice(&d.0.to_le_bytes());
    out
}

/// Byte encoding of one stored evaluation: the worst degradation and
/// every [`RunHealth`] counter — the stored health is what makes a warm
/// rerun's telemetry bit-identical to the cold one.
fn encode_eval(worst: f64, health: &RunHealth) -> Vec<u8> {
    let mut out = Vec::with_capacity(56);
    out.extend_from_slice(&worst.to_bits().to_le_bytes());
    for v in [
        health.breakpoints,
        health.max_events,
        health.glitch_reversals,
        health.vx_fallbacks,
        health.cache_hits,
        health.cache_misses,
    ] {
        out.extend_from_slice(&(v as u64).to_le_bytes());
    }
    out
}

/// Inverse of [`encode_eval`]; `None` on any shape mismatch — a
/// malformed record is a miss, never an answer.
fn decode_eval(bytes: &[u8]) -> Option<(f64, RunHealth)> {
    if bytes.len() != 56 {
        return None;
    }
    let word = |i: usize| u64::from_le_bytes(bytes[i * 8..(i + 1) * 8].try_into().unwrap());
    Some((
        f64::from_bits(word(0)),
        RunHealth {
            breakpoints: word(1) as usize,
            max_events: word(2) as usize,
            glitch_reversals: word(3) as usize,
            vx_fallbacks: word(4) as usize,
            cache_hits: word(5) as usize,
            cache_misses: word(6) as usize,
        },
    ))
}

/// Worst degradation over the transitions for one per-cluster sizes
/// vector, served from the store when an identical evaluation was
/// recorded before (replaying its stored health), simulated and written
/// through otherwise.
#[allow(clippy::too_many_arguments)]
fn eval_worst(
    engine: &Engine<'_>,
    scratch: &mut VbsimScratch,
    transitions: &[Transition],
    outputs: &[NetId],
    assignment: &[usize],
    sizes: &[f64],
    base: &VbsimOptions,
    prefix: &[u8],
    store: Option<&mtk_store::Store>,
    run: &mut RunHealth,
    stats: &mut WorkerStats,
) -> Result<f64, CoreError> {
    let key: Vec<u8> = {
        let mut k = prefix.to_vec();
        for &s in sizes {
            k.extend_from_slice(&s.to_bits().to_le_bytes());
        }
        k
    };
    if let Some(store) = store {
        if let Some((worst, health)) = store.get(&key).and_then(|b| decode_eval(&b)) {
            run.absorb(&health);
            run.cache_hits += 1;
            stats.breakpoints += health.breakpoints as u64;
            return Ok(worst);
        }
    }
    let partition = PartitionedSleep {
        assignment: assignment.to_vec(),
        networks: sizes
            .iter()
            .map(|&wl| SleepNetwork::Transistor { w_over_l: wl })
            .collect(),
    };
    let cmos_opts = VbsimOptions {
        sleep: SleepNetwork::Cmos,
        ..base.clone()
    };
    let mut local = RunHealth::default();
    let mut simulate = || -> Result<f64, CoreError> {
        let mut worst = 0.0f64;
        for tr in transitions {
            stats.vectors += 1;
            let cmos = engine.run_with(&tr.from, &tr.to, &cmos_opts, scratch)?;
            local.absorb(&cmos.health);
            stats.breakpoints += cmos.health.breakpoints as u64;
            let Some(d_cmos) = cmos.delay_over(outputs) else {
                continue;
            };
            let mt =
                engine.run_partitioned_with(&tr.from, &tr.to, Some(&partition), base, scratch)?;
            local.absorb(&mt.health);
            stats.breakpoints += mt.health.breakpoints as u64;
            let d_mt = if mt.stalled || mt.truncated {
                f64::INFINITY
            } else {
                // Per-probe against the baseline: an output that
                // switched in CMOS but never under MTCMOS stalled
                // (infinite delay), it is not a probe to skip.
                mt.delay_over_baseline(outputs, &cmos).unwrap_or(d_cmos)
            };
            worst = worst.max((d_mt - d_cmos) / d_cmos);
        }
        Ok(worst)
    };
    let result = simulate();
    run.absorb(&local);
    match result {
        Ok(worst) => {
            if let Some(store) = store {
                run.cache_misses += 1;
                // A failed write degrades to recompute-on-rerun; it is
                // not an error.
                let _ = store.put(&key, &encode_eval(worst, &local));
            }
            Ok(worst)
        }
        Err(e) => {
            if let CoreError::EventOverflow { events, .. } = e {
                // The overflowing run's cost is real — count it.
                run.breakpoints += events;
                run.max_events = run.max_events.max(base.max_events);
                stats.breakpoints += events as u64;
            }
            Err(e)
        }
    }
}

/// One bisection attempt for one cluster: fault-injection check, then a
/// log-space bisection of that cluster's device with every other
/// cluster pinned at `hi`.
#[allow(clippy::too_many_arguments)]
fn cluster_attempt(
    engine: &Engine<'_>,
    scratch: &mut VbsimScratch,
    g: usize,
    n_clusters: usize,
    assignment: &[usize],
    transitions: &[Transition],
    outputs: &[NetId],
    target: f64,
    (lo, hi): (f64, f64),
    opts: &VbsimOptions,
    fault: &FaultPlan,
    attempt: usize,
    store: Option<&mtk_store::Store>,
    run: &mut RunHealth,
    stats: &mut WorkerStats,
) -> Result<f64, CoreError> {
    fault.check(g, attempt)?;
    let prefix = eval_prefix(engine, outputs, transitions, assignment, opts);
    let (mut glo, mut ghi) = (lo, hi);
    for _ in 0..24 {
        let mid = (glo * ghi).sqrt();
        let mut trial = vec![hi; n_clusters];
        trial[g] = mid;
        let worst = eval_worst(
            engine,
            scratch,
            transitions,
            outputs,
            assignment,
            &trial,
            opts,
            &prefix,
            store,
            run,
            stats,
        )?;
        if worst > target {
            glo = mid;
        } else {
            ghi = mid;
        }
        if ghi / glo < 1.02 {
            break;
        }
    }
    Ok(ghi)
}

/// One per-cluster work item under the retry policy: a first attempt at
/// the caller's breakpoint budget, then — only for
/// [`CoreError::EventOverflow`] — one retry relaxed by
/// [`RETRY_BUDGET_FACTOR`].
#[allow(clippy::too_many_arguments)]
fn cluster_item(
    engine: &Engine<'_>,
    scratch: &mut VbsimScratch,
    g: usize,
    n_clusters: usize,
    assignment: &[usize],
    transitions: &[Transition],
    outputs: &[NetId],
    target: f64,
    bracket: (f64, f64),
    base: &VbsimOptions,
    fault: &FaultPlan,
    store: Option<&mtk_store::Store>,
    stats: &mut WorkerStats,
) -> ItemReport<f64> {
    let mut run = RunHealth::default();
    let mut value = cluster_attempt(
        engine,
        scratch,
        g,
        n_clusters,
        assignment,
        transitions,
        outputs,
        target,
        bracket,
        base,
        fault,
        0,
        store,
        &mut run,
        stats,
    );
    let mut retried = false;
    if matches!(value, Err(CoreError::EventOverflow { .. })) {
        retried = true;
        let relaxed = VbsimOptions {
            max_events: base.max_events.saturating_mul(RETRY_BUDGET_FACTOR),
            ..base.clone()
        };
        value = cluster_attempt(
            engine,
            scratch,
            g,
            n_clusters,
            assignment,
            transitions,
            outputs,
            target,
            bracket,
            &relaxed,
            fault,
            1,
            store,
            &mut run,
            stats,
        );
    }
    ItemReport {
        value,
        retried,
        run,
    }
}

/// The chosen sleep configuration of one [`size_clusters_for_target`]
/// call.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSizing {
    /// Cluster index per cell of the *returned* solution — the
    /// partition's assignment, or all zeros when the single-device
    /// fallback won.
    pub assignment: Vec<usize>,
    /// W/L per cluster of the returned solution.
    pub w_over_ls: Vec<f64>,
    /// Total sleep width of the clustered candidate (before the
    /// never-worse comparison).
    pub clustered_width: f64,
    /// The single shared device sized for the same target, when
    /// feasible — the never-worse comparison baseline.
    pub single_w_over_l: Option<f64>,
    /// True when the single device used no more total width than the
    /// clustered candidate and was returned instead.
    pub fell_back: bool,
}

impl ClusterSizing {
    /// Total sleep width of the returned solution.
    pub fn total_width(&self) -> f64 {
        self.w_over_ls.iter().sum()
    }
}

/// Execution report of one [`size_clusters_for_target`] call.
#[derive(Debug)]
pub struct ClusterReport {
    /// Per-worker counters of the parallel per-cluster bisection phase.
    pub workers: Vec<WorkerStats>,
    /// End-to-end wall time, seconds.
    pub wall: f64,
    /// Sweep-level health: quarantined clusters, retries, recovered
    /// panics, summed run counters (serial verification and the
    /// single-device baseline included).
    pub health: SweepHealth,
    /// Number of clusters sized.
    pub n_clusters: usize,
    /// Conflict-graph edges of the partition.
    pub conflict_edges: usize,
    /// Cells folded into conflicting clusters by the colouring cap.
    pub folded: usize,
}

impl ClusterReport {
    /// This co-optimisation as a [`mtk_trace::PhaseTrace`]: the health
    /// counters plus the cluster registry counters, a `cluster_w_over_l`
    /// histogram of the returned per-cluster sizes, this report's wall
    /// time and per-worker sinks (timing section).
    pub fn to_phase(&self, name: &str, sizing: &ClusterSizing) -> mtk_trace::PhaseTrace {
        let mut phase = self.health.phase(name).with_wall(self.wall);
        phase.workers = crate::par::worker_traces(&self.workers);
        phase
            .counters
            .add(mtk_trace::CounterId::Clusters, self.n_clusters as u64);
        phase.counters.add(
            mtk_trace::CounterId::ClusterConflicts,
            self.conflict_edges as u64,
        );
        phase
            .counters
            .add(mtk_trace::CounterId::ClusterFolds, self.folded as u64);
        phase.counters.add(
            mtk_trace::CounterId::ClusterFallbacks,
            sizing.fell_back as u64,
        );
        let mut widths = mtk_trace::Histogram::new();
        for &wl in &sizing.w_over_ls {
            widths.record(wl.round().max(0.0) as u64);
        }
        phase
            .extra_histograms
            .push(("cluster_w_over_l".to_string(), widths));
        phase
    }
}

/// Sizes one sleep transistor per cluster so the worst degradation over
/// `transitions` is at most `target`, then applies the never-worse
/// rule against the single shared device.
///
/// Strategy: feasibility at all-`hi`, per-cluster log-bisection with
/// the other clusters pinned at `hi` — run as independent
/// [`crate::par`] work items (deterministic at any `threads`, with
/// quarantine/retry under `policy` and `fault`) — then joint
/// verification with uniform ×1.2 scale-up, and finally the
/// single-device solution for the same target; whichever candidate
/// uses less total width is returned. A quarantined cluster's device
/// conservatively stays at `hi`.
///
/// With `store`, every simulator evaluation is written through a
/// persistent log under [`CLUSTER_RECORD_TAG`]; a warm rerun replays
/// every evaluation — stored health included — so its deterministic
/// telemetry is bit-identical to the cold run apart from the
/// hit/miss counters, and nothing is simulated.
///
/// # Errors
///
/// * [`CoreError::SizingInfeasible`] when even all-`hi` misses the
///   target.
/// * Under [`FailurePolicy::FailFast`], the error of the
///   lowest-indexed failing cluster; under
///   [`FailurePolicy::Quarantine`], [`CoreError::TooManyFailures`]
///   past the cap.
/// * Propagates simulator errors.
///
/// # Panics
///
/// Panics on an empty netlist, a partition whose assignment length
/// disagrees with the cell count, or an invalid bracket.
#[allow(clippy::too_many_arguments)]
pub fn size_clusters_for_target(
    netlist: &Netlist,
    tech: &Technology,
    transitions: &[Transition],
    probes: Option<&[NetId]>,
    partition: &ExclusivePartition,
    target: f64,
    (lo, hi): (f64, f64),
    base: &VbsimOptions,
    threads: usize,
    policy: FailurePolicy,
    fault: &FaultPlan,
    store: Option<&mtk_store::Store>,
) -> Result<(ClusterSizing, ClusterReport), CoreError> {
    assert!(
        partition.assignment.len() == netlist.cells().len() && !partition.assignment.is_empty(),
        "partition must cover a non-empty netlist"
    );
    assert!(lo > 0.0 && hi > lo, "invalid sizing bracket");
    let t0 = Instant::now();
    let n = partition.n_clusters;
    let outputs: Vec<NetId> = match probes {
        Some(p) => p.to_vec(),
        None => netlist.primary_outputs().to_vec(),
    };
    let engine = Engine::new(netlist, tech);
    let mut serial_scratch = VbsimScratch::new();
    let mut serial_run = RunHealth::default();
    let mut serial_stats = WorkerStats::default();
    let prefix = eval_prefix(&engine, &outputs, transitions, &partition.assignment, base);
    let serial_eval = |sizes: &[f64],
                       run: &mut RunHealth,
                       scratch: &mut VbsimScratch,
                       stats: &mut WorkerStats|
     -> Result<f64, CoreError> {
        eval_worst(
            &engine,
            scratch,
            transitions,
            &outputs,
            &partition.assignment,
            sizes,
            base,
            &prefix,
            store,
            run,
            stats,
        )
    };
    // Feasibility: even with every cluster at hi?
    let all_hi = vec![hi; n];
    if serial_eval(
        &all_hi,
        &mut serial_run,
        &mut serial_scratch,
        &mut serial_stats,
    )? > target
    {
        return Err(CoreError::SizingInfeasible {
            target,
            at_w_over_l: hi,
        });
    }
    // Per-cluster bisection as independent, fault-tolerant work items.
    let items: Vec<usize> = (0..n).collect();
    let (reports, workers) = try_parallel_map_with(
        threads,
        1,
        &items,
        || (Engine::new(netlist, tech), VbsimScratch::new()),
        |(engine, scratch), _index, &g, stats| {
            cluster_item(
                engine,
                scratch,
                g,
                n,
                &partition.assignment,
                transitions,
                &outputs,
                target,
                (lo, hi),
                base,
                fault,
                store,
                stats,
            )
        },
    );
    let (values, mut health) = fold_item_reports(reports, policy)?;
    let mut sizes: Vec<f64> = values.into_iter().map(|v| v.unwrap_or(hi)).collect();
    // Joint verification with uniform scale-up: the per-cluster
    // bisections assumed everyone else at hi, so cross-cluster logic
    // interaction can push the joint worst case past the target.
    let mut joint_ok = false;
    for _ in 0..12 {
        if serial_eval(
            &sizes,
            &mut serial_run,
            &mut serial_scratch,
            &mut serial_stats,
        )? <= target
        {
            joint_ok = true;
            break;
        }
        for s in &mut sizes {
            *s = (*s * 1.2).min(hi);
        }
    }
    if !joint_ok {
        sizes = vec![hi; n];
    }
    let clustered_width: f64 = sizes.iter().sum();
    // The never-worse rule: a single shared device sized for the same
    // target with the same machinery. Sequential paths split the delay
    // budget across clusters, so the clustered candidate can genuinely
    // need more total width — in that case the single device wins.
    let single_assignment = vec![0usize; netlist.cells().len()];
    let single_prefix = eval_prefix(&engine, &outputs, transitions, &single_assignment, base);
    let mut single_eval = |wl: f64, run: &mut RunHealth, scratch: &mut VbsimScratch| {
        eval_worst(
            &engine,
            scratch,
            transitions,
            &outputs,
            &single_assignment,
            &[wl],
            base,
            &single_prefix,
            store,
            run,
            &mut serial_stats,
        )
    };
    let single_w_over_l = if single_eval(hi, &mut serial_run, &mut serial_scratch)? > target {
        None
    } else {
        let (mut glo, mut ghi) = (lo, hi);
        for _ in 0..24 {
            let mid = (glo * ghi).sqrt();
            if single_eval(mid, &mut serial_run, &mut serial_scratch)? > target {
                glo = mid;
            } else {
                ghi = mid;
            }
            if ghi / glo < 1.02 {
                break;
            }
        }
        Some(ghi)
    };
    let fell_back = single_w_over_l.is_some_and(|s| s <= clustered_width);
    let sizing = if fell_back {
        ClusterSizing {
            assignment: single_assignment,
            w_over_ls: vec![single_w_over_l.unwrap()],
            clustered_width,
            single_w_over_l,
            fell_back,
        }
    } else {
        ClusterSizing {
            assignment: partition.assignment.clone(),
            w_over_ls: sizes,
            clustered_width,
            single_w_over_l,
            fell_back,
        }
    };
    // Serial phases (feasibility, joint verify, single baseline) are
    // identical at any thread count, so merging their counters after
    // the fold keeps the whole report deterministic.
    health.runs.absorb(&serial_run);
    Ok((
        sizing,
        ClusterReport {
            workers,
            wall: t0.elapsed().as_secs_f64(),
            health,
            n_clusters: n,
            conflict_edges: partition.conflict_edges,
            folded: partition.folded,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtk_circuits::tree::InverterTree;
    use mtk_netlist::cell::CellKind;

    fn two_inverters() -> Netlist {
        let mut nl = Netlist::new("pair");
        let a = nl.add_net("a").unwrap();
        let b = nl.add_net("b").unwrap();
        nl.mark_primary_input(a).unwrap();
        nl.mark_primary_input(b).unwrap();
        let x = nl.add_net("x").unwrap();
        let y = nl.add_net("y").unwrap();
        nl.add_cell("i1", CellKind::Inv, vec![a], x, 1.0).unwrap();
        nl.add_cell("i2", CellKind::Inv, vec![b], y, 1.0).unwrap();
        nl.mark_primary_output(x);
        nl.mark_primary_output(y);
        nl
    }

    fn tr(from: &[Logic], to: &[Logic]) -> Transition {
        Transition::new(from.to_vec(), to.to_vec())
    }

    use Logic::{One, Zero};

    #[test]
    fn exclusive_gates_share_a_cluster() {
        let nl = two_inverters();
        let p = exclusive_partition(
            &nl,
            &[tr(&[Zero, One], &[One, One]), tr(&[One, Zero], &[One, One])],
            8,
        )
        .unwrap();
        assert_eq!(p.assignment, vec![0, 0]);
        assert_eq!(p.n_clusters, 1);
        assert_eq!(p.conflict_edges, 0);
        assert_eq!(p.folded, 0);
    }

    #[test]
    fn co_discharging_gates_are_separated() {
        let nl = two_inverters();
        let p = exclusive_partition(&nl, &[tr(&[Zero, Zero], &[One, One])], 8).unwrap();
        assert_eq!(p.assignment, vec![0, 1]);
        assert_eq!(p.n_clusters, 2);
        assert_eq!(p.conflict_edges, 1);
    }

    #[test]
    fn x_levels_are_conservative() {
        // An X→X output may discharge, so it conflicts with anything
        // that discharges on the same vector.
        let mut nl = two_inverters();
        let u = nl.add_net("u").unwrap(); // undriven: evaluates to X
        let z = nl.add_net("z").unwrap();
        nl.add_cell("i3", CellKind::Inv, vec![u], z, 1.0).unwrap();
        let p = exclusive_partition(&nl, &[tr(&[Zero, One], &[One, One])], 8).unwrap();
        // i1 discharges (x falls), i2 does not, i3 is conservatively
        // counted as discharging.
        assert_eq!(p.assignment[0], 0);
        assert_eq!(p.assignment[1], 0);
        assert_ne!(p.assignment[2], p.assignment[0]);
    }

    #[test]
    fn colouring_folds_at_the_cap_deterministically() {
        // Three gates that all discharge together need three colours;
        // capped at two, the third folds and is counted.
        let mut nl = Netlist::new("trio");
        let a = nl.add_net("a").unwrap();
        nl.mark_primary_input(a).unwrap();
        for i in 0..3 {
            let o = nl.add_net(&format!("o{i}")).unwrap();
            nl.add_cell(&format!("g{i}"), CellKind::Inv, vec![a], o, 1.0)
                .unwrap();
            nl.mark_primary_output(o);
        }
        let full = exclusive_partition(&nl, &[tr(&[Zero], &[One])], 8).unwrap();
        assert_eq!(full.assignment, vec![0, 1, 2]);
        assert_eq!(full.conflict_edges, 3);
        let capped = exclusive_partition(&nl, &[tr(&[Zero], &[One])], 2).unwrap();
        assert_eq!(capped.n_clusters, 2);
        assert_eq!(capped.folded, 1);
        assert!(capped.assignment.iter().all(|&g| g < 2));
        // Deterministic: same inputs, same partition.
        let again = exclusive_partition(&nl, &[tr(&[Zero], &[One])], 2).unwrap();
        assert_eq!(capped, again);
    }

    #[test]
    fn partition_is_a_pure_function_of_inputs() {
        let tree = InverterTree::paper();
        let trs = [tr(&[Zero], &[One]), tr(&[One], &[Zero])];
        let a = exclusive_partition(&tree.netlist, &trs, 16).unwrap();
        let b = exclusive_partition(&tree.netlist, &trs, 16).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.assignment.len(), tree.netlist.cells().len());
        // The tree's stages lie on one path: stage 1 and stage 3 both
        // discharge on the rising input, so they must be separated.
        assert!(a.n_clusters > 1);
    }

    #[test]
    fn bad_transition_width_is_reported() {
        let nl = two_inverters();
        let err = exclusive_partition(&nl, &[tr(&[Zero], &[One])], 4).unwrap_err();
        assert!(matches!(err, CoreError::Netlist(_)));
    }

    fn size_tree(
        threads: usize,
        policy: FailurePolicy,
        fault: &FaultPlan,
        store: Option<&mtk_store::Store>,
    ) -> Result<(ClusterSizing, ClusterReport), CoreError> {
        let tree = InverterTree::paper();
        let tech = Technology::l07();
        let trs = [tr(&[Zero], &[One]), tr(&[One], &[Zero])];
        let partition = exclusive_partition(&tree.netlist, &trs, 4).unwrap();
        size_clusters_for_target(
            &tree.netlist,
            &tech,
            &trs,
            None,
            &partition,
            0.20,
            (0.5, 400.0),
            &VbsimOptions::cmos(),
            threads,
            policy,
            fault,
            store,
        )
    }

    #[test]
    fn clustered_sizing_meets_target_and_is_never_worse() {
        let (sizing, report) =
            size_tree(1, FailurePolicy::FailFast, &FaultPlan::none(), None).unwrap();
        assert_eq!(report.n_clusters, 4);
        assert!(sizing.total_width() > 0.0);
        // Never-worse: whatever was returned uses no more total width
        // than the feasible single device.
        if let Some(single) = sizing.single_w_over_l {
            assert!(
                sizing.total_width() <= single + 1e-9,
                "returned {} vs single {single}",
                sizing.total_width()
            );
        }
        // And the returned solution actually meets the target.
        let tree = InverterTree::paper();
        let tech = Technology::l07();
        let engine = Engine::new(&tree.netlist, &tech);
        let worst = crate::modules::worst_degradation_partitioned(
            &engine,
            &[tr(&[Zero], &[One]), tr(&[One], &[Zero])],
            None,
            &sizing.assignment,
            &sizing.w_over_ls,
            &VbsimOptions::cmos(),
        )
        .unwrap();
        assert!(worst <= 0.20 + 1e-9, "worst {worst}");
    }

    #[test]
    fn sizing_is_identical_at_any_thread_count() {
        let (s1, r1) = size_tree(1, FailurePolicy::FailFast, &FaultPlan::none(), None).unwrap();
        for threads in [2usize, 8] {
            let (s, r) =
                size_tree(threads, FailurePolicy::FailFast, &FaultPlan::none(), None).unwrap();
            assert_eq!(s, s1, "threads={threads}");
            assert_eq!(r.health.runs, r1.health.runs, "threads={threads}");
            assert_eq!(
                r.health.breakpoints_per_item, r1.health.breakpoints_per_item,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn quarantined_cluster_falls_back_to_hi_deterministically() {
        let fault = FaultPlan {
            error_at: vec![1],
            ..FaultPlan::none()
        };
        let (sizing, report) = size_tree(2, FailurePolicy::quarantine(2), &fault, None).unwrap();
        assert_eq!(report.health.quarantined_indices(), vec![1]);
        if !sizing.fell_back {
            assert_eq!(
                sizing.w_over_ls[1], 400.0,
                "quarantined cluster stays at hi"
            );
        }
        // Same outcome at another thread count.
        let (s8, r8) = size_tree(8, FailurePolicy::quarantine(2), &fault, None).unwrap();
        assert_eq!(s8, sizing);
        assert_eq!(r8.health.quarantined_indices(), vec![1]);
    }

    #[test]
    fn infeasible_target_is_reported() {
        let tree = InverterTree::paper();
        let tech = Technology::l07();
        let trs = [tr(&[Zero], &[One])];
        let partition = exclusive_partition(&tree.netlist, &trs, 4).unwrap();
        let err = size_clusters_for_target(
            &tree.netlist,
            &tech,
            &trs,
            None,
            &partition,
            1e-9,
            (0.1, 0.2),
            &VbsimOptions::cmos(),
            1,
            FailurePolicy::FailFast,
            &FaultPlan::none(),
            None,
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::SizingInfeasible { .. }));
    }

    #[test]
    fn warm_store_rerun_replays_everything_without_simulating() {
        let dir = std::env::temp_dir().join(format!("mtk_cluster_store_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cluster.log");
        let _ = std::fs::remove_file(&path);

        let store = mtk_store::Store::open(&path).unwrap();
        let (cold_sizing, cold_report) =
            size_tree(2, FailurePolicy::FailFast, &FaultPlan::none(), Some(&store)).unwrap();
        let cold = cold_report.health.runs;
        assert!(cold.cache_misses > 0, "cold run must simulate");
        assert_eq!(cold.cache_hits, 0);
        drop(store);

        // A fresh process over the same log replays every evaluation.
        let store = mtk_store::Store::open(&path).unwrap();
        let (warm_sizing, warm_report) =
            size_tree(8, FailurePolicy::FailFast, &FaultPlan::none(), Some(&store)).unwrap();
        let warm = warm_report.health.runs;
        assert_eq!(warm_sizing, cold_sizing, "warm result must be identical");
        assert_eq!(warm.cache_misses, 0, "warm rerun simulated nothing");
        assert_eq!(warm.cache_hits, cold.cache_misses);
        // Replayed telemetry is bit-identical apart from the hit/miss
        // counters themselves.
        assert_eq!(warm.breakpoints, cold.breakpoints);
        assert_eq!(warm.glitch_reversals, cold.glitch_reversals);
        assert_eq!(warm.vx_fallbacks, cold.vx_fallbacks);

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn eval_records_roundtrip_and_reject_malformed() {
        let health = RunHealth {
            breakpoints: 7,
            max_events: 4096,
            glitch_reversals: 2,
            vx_fallbacks: 1,
            cache_hits: 0,
            cache_misses: 3,
        };
        let bytes = encode_eval(0.0375, &health);
        assert_eq!(decode_eval(&bytes), Some((0.0375, health)));
        assert_eq!(decode_eval(&bytes[..55]), None);
        let mut long = bytes.clone();
        long.push(0);
        assert_eq!(decode_eval(&long), None);
        // Infinity (a stalled evaluation) survives the roundtrip.
        let inf = encode_eval(f64::INFINITY, &health);
        assert_eq!(decode_eval(&inf).unwrap().0, f64::INFINITY);
    }

    #[test]
    fn store_keys_do_not_alias_other_record_namespaces() {
        let tree = InverterTree::paper();
        let tech = Technology::l07();
        let engine = Engine::new(&tree.netlist, &tech);
        let trs = [tr(&[Zero], &[One])];
        let outputs = tree.netlist.primary_outputs().to_vec();
        let assignment = vec![0usize; tree.netlist.cells().len()];
        let prefix = eval_prefix(&engine, &outputs, &trs, &assignment, &VbsimOptions::cmos());
        assert_eq!(&prefix[..4], CLUSTER_RECORD_TAG);
        for other in [b"leg1" as &[u8], b"req1", b"mct1"] {
            assert_ne!(&prefix[..4], other, "cluster records need their own tag");
        }
        // Different assignments (clustered vs flat) never share keys.
        let clustered = exclusive_partition(&tree.netlist, &trs, 4).unwrap();
        let p2 = eval_prefix(
            &engine,
            &outputs,
            &trs,
            &clustered.assignment,
            &VbsimOptions::cmos(),
        );
        assert_ne!(prefix, p2);
    }
}
