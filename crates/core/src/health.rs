//! Run- and sweep-level health telemetry plus the quarantine machinery
//! behind the fault-tolerant screening/search pipeline.
//!
//! The paper's tool exists to *screen thousands of input vectors* per
//! circuit (§5.2, §7). At that scale one pathological vector — a glitch
//! storm that blows the breakpoint budget, a singular equilibrium, or an
//! outright worker panic — must not discard the thousands of healthy
//! results already computed. This module defines:
//!
//! * [`RunHealth`] — per-simulator-run counters (breakpoints used vs.
//!   budget, glitch reversals, V<sub>x</sub>-solve fallbacks).
//! * [`SweepHealth`] — sweep-level aggregation: which items were
//!   quarantined and why, retries taken, panics recovered, and the summed
//!   per-run counters.
//! * [`FailurePolicy`] — fail-fast (the historical `?` behaviour) vs.
//!   quarantine-with-a-cap.
//! * [`FaultPlan`] — a deterministic fault-injection harness, keyed off
//!   [`mtk_num::prng`] per-index streams, used by tests to drive every
//!   degraded path without touching the simulator itself.
//! * [`fold_item_reports`] — the index-ordered fold that turns per-item
//!   outcomes into `(survivors, SweepHealth)` under a policy. Because the
//!   fold runs in item order over results keyed by index, the quarantine
//!   set and every surviving result are bit-identical at any thread
//!   count — the same contract [`crate::par`] pins for healthy sweeps.

use crate::par::ItemPanic;
use crate::CoreError;
use mtk_num::prng::Xoshiro256pp;
use mtk_trace::{CounterId, CounterSet, Histogram, PhaseTrace};

/// Factor by which the breakpoint budget is relaxed for the single
/// automatic retry of an [`CoreError::EventOverflow`] item.
pub const RETRY_BUDGET_FACTOR: usize = 4;

/// Observability counters for one switch-level simulator run. These
/// describe *fallback machinery that fired*, not results: two runs with
/// equal waveforms may differ here only if one needed a relaxed
/// V<sub>x</sub> solve.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunHealth {
    /// Breakpoints processed.
    pub breakpoints: usize,
    /// The budget those breakpoints were counted against
    /// (`VbsimOptions::max_events`; the largest budget seen when
    /// aggregated over runs).
    pub max_events: usize,
    /// Mid-swing direction reversals (glitches, §6.3) — the mechanism
    /// behind breakpoint-budget blowups.
    pub glitch_reversals: usize,
    /// Virtual-ground equilibrium solves that only converged under the
    /// relaxed fallback tolerances.
    pub vx_fallbacks: usize,
    /// Simulator legs served from a [`crate::sizing::ScreeningCache`]
    /// instead of re-simulated. Always 0 on the health of a raw engine
    /// run; only the `_cached` sizing entry points count here.
    pub cache_hits: usize,
    /// Simulator legs computed and inserted into a screening cache.
    pub cache_misses: usize,
}

impl RunHealth {
    /// Fraction of the breakpoint budget consumed (0 when no budget).
    pub fn budget_used(&self) -> f64 {
        if self.max_events == 0 {
            0.0
        } else {
            self.breakpoints as f64 / self.max_events as f64
        }
    }

    /// Merges another run's counters into this one (budget keeps the max
    /// so `budget_used` stays a per-run worst-case style bound).
    pub fn absorb(&mut self, other: &RunHealth) {
        self.breakpoints += other.breakpoints;
        self.max_events = self.max_events.max(other.max_events);
        self.glitch_reversals += other.glitch_reversals;
        self.vx_fallbacks += other.vx_fallbacks;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
    }

    /// These counters as entries in the [`mtk_trace`] registry — the
    /// simulator's contribution to the one telemetry spine.
    pub fn counters(&self) -> CounterSet {
        let mut set = CounterSet::new();
        set.add(CounterId::Breakpoints, self.breakpoints as u64);
        set.add(CounterId::MaxEvents, self.max_events as u64);
        set.add(CounterId::GlitchReversals, self.glitch_reversals as u64);
        set.add(CounterId::VxFallbacks, self.vx_fallbacks as u64);
        set.add(CounterId::CacheHits, self.cache_hits as u64);
        set.add(CounterId::CacheMisses, self.cache_misses as u64);
        set
    }
}

/// What a sweep does when one work item fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FailurePolicy {
    /// Abort the whole sweep on the lowest-indexed failing item — the
    /// historical `?` behaviour, still deterministic at any thread count.
    #[default]
    FailFast,
    /// Collect failing items (index-ordered) and keep going; abort only
    /// when more than `max_failures` items fail.
    Quarantine {
        /// Largest tolerated number of quarantined items.
        max_failures: usize,
    },
}

impl FailurePolicy {
    /// Quarantine with the given cap — shorthand for binaries.
    pub fn quarantine(max_failures: usize) -> Self {
        FailurePolicy::Quarantine { max_failures }
    }
}

/// One quarantined work item: its index in the caller's item list and
/// the error that condemned it.
#[derive(Debug)]
pub struct QuarantinedItem {
    /// Index into the sweep's item slice.
    pub index: usize,
    /// Whether the relaxed-budget retry was attempted before giving up.
    pub retried: bool,
    /// The error of the *final* attempt.
    pub error: CoreError,
}

/// Sweep-level health report: what fallback machinery fired across a
/// whole screening/search phase.
#[derive(Debug, Default)]
pub struct SweepHealth {
    /// Work items submitted.
    pub items: usize,
    /// Items that produced a result.
    pub completed: usize,
    /// Items that failed after all fallbacks, index-ordered.
    pub quarantined: Vec<QuarantinedItem>,
    /// Relaxed-budget retries attempted (for `EventOverflow` items).
    pub retries: usize,
    /// Retries whose second attempt succeeded.
    pub retry_successes: usize,
    /// Worker panics converted into quarantined items instead of
    /// aborting the process.
    pub panics_recovered: usize,
    /// Per-run counters summed over every attempt of every item.
    pub runs: RunHealth,
    /// Distribution of breakpoints per work item (every attempted item
    /// contributes, quarantined ones included — the cost was paid).
    /// Recorded by the index-ordered fold, so deterministic.
    pub breakpoints_per_item: Histogram,
}

impl SweepHealth {
    /// Indices of the quarantined items, in order.
    pub fn quarantined_indices(&self) -> Vec<usize> {
        self.quarantined.iter().map(|q| q.index).collect()
    }

    /// True when nothing degraded: no quarantine, no retry, no panic,
    /// no relaxed solve.
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty()
            && self.retries == 0
            && self.panics_recovered == 0
            && self.runs.vx_fallbacks == 0
    }

    /// Merges another phase's sweep health into this one (quarantined
    /// items keep their indices — offset them first if the phases share
    /// an index space).
    pub fn absorb(&mut self, other: SweepHealth) {
        self.items += other.items;
        self.completed += other.completed;
        self.quarantined.extend(other.quarantined);
        self.retries += other.retries;
        self.retry_successes += other.retry_successes;
        self.panics_recovered += other.panics_recovered;
        self.runs.absorb(&other.runs);
        self.breakpoints_per_item
            .absorb(&other.breakpoints_per_item);
    }

    /// These counters as entries in the [`mtk_trace`] registry: the
    /// sweep-level counts plus everything [`RunHealth::counters`]
    /// contributes.
    pub fn counters(&self) -> CounterSet {
        let mut set = self.runs.counters();
        set.add(CounterId::Items, self.items as u64);
        set.add(CounterId::Completed, self.completed as u64);
        set.add(CounterId::Quarantined, self.quarantined.len() as u64);
        set.add(CounterId::Retries, self.retries as u64);
        set.add(CounterId::RetrySuccesses, self.retry_successes as u64);
        set.add(CounterId::PanicsRecovered, self.panics_recovered as u64);
        set
    }

    /// This sweep as one named phase of a [`mtk_trace::TraceReport`] —
    /// the deterministic half only; callers attach wall time and worker
    /// sinks where they have them.
    pub fn phase(&self, name: &str) -> PhaseTrace {
        PhaseTrace {
            name: name.to_string(),
            counters: self.counters(),
            breakpoints_per_item: self.breakpoints_per_item.clone(),
            extra_histograms: Vec::new(),
            quarantined: self.quarantined_indices(),
            wall_s: None,
            workers: Vec::new(),
        }
    }

    /// One-line footer for the experiment binaries, rendered by the
    /// shared [`mtk_trace`] renderer (single source of the footer
    /// format).
    pub fn summary(&self) -> String {
        format!("run health: {}", self.phase("run").health_line())
    }
}

/// The outcome of one work item after its own fallbacks (at most one
/// relaxed-budget retry) ran. Produced inside worker closures, folded
/// index-ordered by [`fold_item_reports`].
#[derive(Debug)]
pub struct ItemReport<R> {
    /// The final result (or the final attempt's error).
    pub value: Result<R, CoreError>,
    /// Whether a relaxed-budget retry was attempted.
    pub retried: bool,
    /// Per-run counters accumulated over every attempt of this item.
    pub run: RunHealth,
}

/// Folds per-item outcomes into `(survivors, SweepHealth)` under a
/// policy. `reports` must be keyed by item index (the executor's output
/// order), which makes the fold — and therefore the quarantine set —
/// independent of the worker schedule.
///
/// # Errors
///
/// * Under [`FailurePolicy::FailFast`], the error (or
///   [`CoreError::WorkerPanic`]) of the lowest-indexed failing item.
/// * Under [`FailurePolicy::Quarantine`],
///   [`CoreError::TooManyFailures`] when the cap is exceeded (checked
///   after the full fold, so the count is schedule-independent).
pub fn fold_item_reports<R>(
    reports: Vec<Result<ItemReport<R>, ItemPanic>>,
    policy: FailurePolicy,
) -> Result<(Vec<Option<R>>, SweepHealth), CoreError> {
    let mut health = SweepHealth {
        items: reports.len(),
        ..SweepHealth::default()
    };
    let mut out: Vec<Option<R>> = Vec::with_capacity(reports.len());
    for (index, report) in reports.into_iter().enumerate() {
        match report {
            Err(panic) => {
                let error = CoreError::WorkerPanic {
                    index: panic.index,
                    message: panic.message,
                };
                if policy == FailurePolicy::FailFast {
                    return Err(error);
                }
                health.panics_recovered += 1;
                health.quarantined.push(QuarantinedItem {
                    index,
                    retried: false,
                    error,
                });
                out.push(None);
            }
            Ok(rep) => {
                health.runs.absorb(&rep.run);
                health
                    .breakpoints_per_item
                    .record(rep.run.breakpoints as u64);
                if rep.retried {
                    health.retries += 1;
                }
                match rep.value {
                    Ok(v) => {
                        health.completed += 1;
                        if rep.retried {
                            health.retry_successes += 1;
                        }
                        out.push(Some(v));
                    }
                    Err(error) => {
                        if policy == FailurePolicy::FailFast {
                            return Err(error);
                        }
                        health.quarantined.push(QuarantinedItem {
                            index,
                            retried: rep.retried,
                            error,
                        });
                        out.push(None);
                    }
                }
            }
        }
    }
    if let FailurePolicy::Quarantine { max_failures } = policy {
        if health.quarantined.len() > max_failures {
            return Err(CoreError::TooManyFailures {
                failures: health.quarantined.len(),
                max_failures,
            });
        }
    }
    Ok((out, health))
}

/// A fault injected at one work item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// `EventOverflow` on the first attempt only — exercises the
    /// relaxed-budget retry path end-to-end (the retry succeeds).
    TransientOverflow,
    /// `EventOverflow` on every attempt — retry fires, then quarantine.
    PersistentOverflow,
    /// A structured [`CoreError::FaultInjected`] — straight to
    /// quarantine, no retry.
    Error,
    /// A worker panic — exercises the `catch_unwind` isolation.
    Panic,
}

/// Deterministic fault-injection plan. Faults are a pure function of
/// `(plan, item index)`: explicit index lists take priority, then a
/// per-index draw from PRNG stream `(seed, index)` decides rate-based
/// transient overflows — so the injected set is identical however the
/// sweep is sharded across threads.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Base seed of the per-index decision streams.
    pub seed: u64,
    /// Items that overflow on their first attempt only.
    pub overflow_at: Vec<usize>,
    /// Items that overflow on every attempt.
    pub persistent_overflow_at: Vec<usize>,
    /// Items that fail with [`CoreError::FaultInjected`].
    pub error_at: Vec<usize>,
    /// Items whose worker closure panics.
    pub panic_at: Vec<usize>,
    /// Probability of a transient overflow for indices not listed above,
    /// drawn from stream `(seed, index)`.
    pub transient_overflow_rate: f64,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True when no fault can ever fire.
    pub fn is_empty(&self) -> bool {
        self.overflow_at.is_empty()
            && self.persistent_overflow_at.is_empty()
            && self.error_at.is_empty()
            && self.panic_at.is_empty()
            && self.transient_overflow_rate <= 0.0
    }

    /// The fault (if any) scheduled for an item index.
    pub fn fault_at(&self, index: usize) -> Option<InjectedFault> {
        if self.panic_at.contains(&index) {
            return Some(InjectedFault::Panic);
        }
        if self.error_at.contains(&index) {
            return Some(InjectedFault::Error);
        }
        if self.persistent_overflow_at.contains(&index) {
            return Some(InjectedFault::PersistentOverflow);
        }
        if self.overflow_at.contains(&index) {
            return Some(InjectedFault::TransientOverflow);
        }
        if self.transient_overflow_rate > 0.0 {
            let draw = Xoshiro256pp::stream(self.seed, index as u64).next_f64();
            if draw < self.transient_overflow_rate {
                return Some(InjectedFault::TransientOverflow);
            }
        }
        None
    }

    /// Applies the plan at the entry of attempt `attempt` of item
    /// `index`: panics, returns the injected error, or passes.
    ///
    /// # Errors
    ///
    /// The injected [`CoreError`], when one is scheduled for this
    /// `(index, attempt)`.
    ///
    /// # Panics
    ///
    /// When the plan schedules [`InjectedFault::Panic`] at `index` —
    /// that is the point: the caller's `catch_unwind` isolation is what
    /// is under test.
    pub fn check(&self, index: usize, attempt: usize) -> Result<(), CoreError> {
        match self.fault_at(index) {
            Some(InjectedFault::Panic) => panic!("injected panic at item {index}"),
            Some(InjectedFault::Error) => Err(CoreError::FaultInjected { index }),
            Some(InjectedFault::PersistentOverflow) => {
                Err(CoreError::EventOverflow { events: 0, t: 0.0 })
            }
            Some(InjectedFault::TransientOverflow) if attempt == 0 => {
                Err(CoreError::EventOverflow { events: 0, t: 0.0 })
            }
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok_report(v: u32) -> Result<ItemReport<u32>, ItemPanic> {
        Ok(ItemReport {
            value: Ok(v),
            retried: false,
            run: RunHealth {
                breakpoints: 10,
                max_events: 100,
                ..RunHealth::default()
            },
        })
    }

    fn err_report(retried: bool) -> Result<ItemReport<u32>, ItemPanic> {
        Ok(ItemReport {
            value: Err(CoreError::EventOverflow {
                events: 99,
                t: 1e-9,
            }),
            retried,
            run: RunHealth::default(),
        })
    }

    #[test]
    fn fold_all_healthy() {
        let reports = vec![ok_report(1), ok_report(2), ok_report(3)];
        let (out, health) = fold_item_reports(reports, FailurePolicy::FailFast).unwrap();
        assert_eq!(out, vec![Some(1), Some(2), Some(3)]);
        assert_eq!(health.completed, 3);
        assert!(health.is_clean());
        assert_eq!(health.runs.breakpoints, 30);
        assert_eq!(health.runs.max_events, 100);
    }

    #[test]
    fn fail_fast_returns_lowest_indexed_error() {
        let reports = vec![ok_report(1), err_report(false), err_report(true)];
        let err = fold_item_reports(reports, FailurePolicy::FailFast).unwrap_err();
        assert!(matches!(err, CoreError::EventOverflow { events: 99, .. }));
    }

    #[test]
    fn quarantine_collects_in_index_order() {
        let reports = vec![
            ok_report(1),
            err_report(true),
            ok_report(2),
            Err(ItemPanic {
                index: 3,
                message: "boom".into(),
            }),
        ];
        let (out, health) = fold_item_reports(reports, FailurePolicy::quarantine(4)).unwrap();
        assert_eq!(out, vec![Some(1), None, Some(2), None]);
        assert_eq!(health.quarantined_indices(), vec![1, 3]);
        assert_eq!(health.retries, 1);
        assert_eq!(health.retry_successes, 0);
        assert_eq!(health.panics_recovered, 1);
        assert!(matches!(
            health.quarantined[1].error,
            CoreError::WorkerPanic { index: 3, .. }
        ));
        assert!(!health.is_clean());
        assert!(health.summary().contains("2 quarantined"));
    }

    #[test]
    fn quarantine_cap_is_enforced_after_full_fold() {
        let reports = vec![err_report(false), err_report(false), ok_report(7)];
        let err = fold_item_reports(reports, FailurePolicy::quarantine(1)).unwrap_err();
        assert!(matches!(
            err,
            CoreError::TooManyFailures {
                failures: 2,
                max_failures: 1
            }
        ));
    }

    #[test]
    fn retry_success_is_counted() {
        let reports = vec![Ok(ItemReport {
            value: Ok(5u32),
            retried: true,
            run: RunHealth::default(),
        })];
        let (_, health) = fold_item_reports(reports, FailurePolicy::quarantine(0)).unwrap();
        assert_eq!(health.retries, 1);
        assert_eq!(health.retry_successes, 1);
    }

    #[test]
    fn run_health_absorb_and_budget() {
        let mut a = RunHealth {
            breakpoints: 50,
            max_events: 100,
            glitch_reversals: 2,
            vx_fallbacks: 1,
            cache_hits: 3,
            cache_misses: 2,
        };
        let b = RunHealth {
            breakpoints: 10,
            max_events: 400,
            glitch_reversals: 1,
            vx_fallbacks: 0,
            cache_hits: 1,
            cache_misses: 0,
        };
        a.absorb(&b);
        assert_eq!(a.breakpoints, 60);
        assert_eq!(a.max_events, 400);
        assert_eq!(a.glitch_reversals, 3);
        assert_eq!(a.vx_fallbacks, 1);
        assert_eq!(a.cache_hits, 4);
        assert_eq!(a.cache_misses, 2);
        assert!((a.budget_used() - 0.15).abs() < 1e-12);
        assert_eq!(RunHealth::default().budget_used(), 0.0);
    }

    #[test]
    fn fault_plan_explicit_indices() {
        let plan = FaultPlan {
            overflow_at: vec![7],
            persistent_overflow_at: vec![9],
            error_at: vec![5],
            panic_at: vec![3],
            ..FaultPlan::default()
        };
        assert!(!plan.is_empty());
        assert_eq!(plan.fault_at(3), Some(InjectedFault::Panic));
        assert_eq!(plan.fault_at(5), Some(InjectedFault::Error));
        assert_eq!(plan.fault_at(7), Some(InjectedFault::TransientOverflow));
        assert_eq!(plan.fault_at(9), Some(InjectedFault::PersistentOverflow));
        assert_eq!(plan.fault_at(0), None);
        // Transient clears on the retry attempt; persistent does not.
        assert!(plan.check(7, 0).is_err());
        assert!(plan.check(7, 1).is_ok());
        assert!(plan.check(9, 1).is_err());
        assert!(plan.check(0, 0).is_ok());
    }

    #[test]
    #[should_panic(expected = "injected panic at item 2")]
    fn fault_plan_panics_on_schedule() {
        let plan = FaultPlan {
            panic_at: vec![2],
            ..FaultPlan::default()
        };
        let _ = plan.check(2, 0);
    }

    #[test]
    fn fault_plan_rate_is_deterministic_per_index() {
        let plan = FaultPlan {
            seed: 42,
            transient_overflow_rate: 0.25,
            ..FaultPlan::default()
        };
        let picks: Vec<bool> = (0..512).map(|i| plan.fault_at(i).is_some()).collect();
        let again: Vec<bool> = (0..512).map(|i| plan.fault_at(i).is_some()).collect();
        assert_eq!(
            picks, again,
            "injection must be a pure function of the index"
        );
        let hits = picks.iter().filter(|&&b| b).count();
        assert!(
            (64..192).contains(&hits),
            "rate 0.25 over 512 items hit {hits} times"
        );
        assert!(FaultPlan::none().is_empty());
        assert_eq!(FaultPlan::none().fault_at(0), None);
    }
}
