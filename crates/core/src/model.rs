//! The first-order MTCMOS delay model (paper §5.1).
//!
//! With N gates discharging simultaneously through a shared sleep
//! resistance R, the virtual-ground voltage V<sub>x</sub> settles at the
//! equilibrium where the current through the resistor equals the sum of
//! the gates' saturation currents (Eq. 5):
//!
//! ```text
//! Vx / R = Σ_j (β_j / 2) · (Vdd − Vx − Vtn)^α
//! ```
//!
//! Each gate then discharges its load at the constant current
//! I<sub>j</sub> = (β<sub>j</sub>/2)(V<sub>dd</sub> − V<sub>x</sub> − V<sub>tn</sub>)^α,
//! giving the propagation delay of Eq. 3:
//! T<sub>pd,j</sub> = C<sub>L</sub>V<sub>dd</sub> / (2 I<sub>j</sub>).
//!
//! The paper's simple tool ignores the body effect; this implementation
//! optionally includes it (V<sub>tn</sub> rises with V<sub>x</sub>, §5.3's
//! first listed improvement) so the ablation benches can quantify it.

use crate::CoreError;
use mtk_netlist::tech::Technology;
use mtk_num::roots::{brent, RootOptions};

/// Options for the virtual-ground equilibrium solve.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct VxOptions {
    /// Include the body effect (V<sub>tn</sub> raised by the
    /// source-to-body bias V<sub>x</sub>). The paper's simple model omits
    /// it; enabling it is the §5.3 accuracy extension.
    pub body_effect: bool,
}

/// Solves Eq. 5 for the virtual-ground voltage V<sub>x</sub> given the
/// sleep resistance and the effective β of every *currently discharging*
/// gate.
///
/// Returns `0.0` when nothing is discharging or the resistance is zero
/// (conventional CMOS).
///
/// # Example
///
/// The more gates discharge simultaneously through one sleep transistor,
/// the higher the virtual ground rises — the crux of §5's worst-case
/// vector argument:
///
/// ```
/// use mtk_core::model::{solve_vx, VxOptions};
/// use mtk_netlist::tech::Technology;
///
/// let tech = Technology::l07();
/// let r_sleep = tech.sleep_resistance(20.0);
/// let beta = tech.kp_n * 8.0; // one discharging gate of W/L = 8
/// let one = solve_vx(&tech, r_sleep, &[beta], VxOptions::default()).unwrap();
/// let four = solve_vx(&tech, r_sleep, &[beta; 4], VxOptions::default()).unwrap();
/// assert!(one > 0.0);
/// assert!(four > one, "N parallel gates raise Vx above a single gate");
/// assert!(four < tech.vdd);
/// ```
///
/// # Errors
///
/// Returns [`CoreError::Numeric`] if the equilibrium solve fails
/// (it cannot for physical inputs; the error path guards against NaNs).
pub fn solve_vx(
    tech: &Technology,
    r_sleep: f64,
    discharging_betas: &[f64],
    opts: VxOptions,
) -> Result<f64, CoreError> {
    solve_vx_tracked(tech, r_sleep, discharging_betas, opts).map(|(vx, _)| vx)
}

/// [`solve_vx`] with fallback observability: the second element is
/// `true` when the strict-tolerance solve failed and the equilibrium was
/// only found under relaxed tolerances. The strict path is attempted
/// first, so healthy solves return bit-identical values to [`solve_vx`]
/// before the fallback existed.
///
/// # Errors
///
/// Returns [`CoreError::Numeric`] when even the relaxed solve fails.
pub fn solve_vx_tracked(
    tech: &Technology,
    r_sleep: f64,
    discharging_betas: &[f64],
    opts: VxOptions,
) -> Result<(f64, bool), CoreError> {
    if r_sleep <= 0.0 || discharging_betas.is_empty() {
        return Ok((0.0, false));
    }
    let total_current_at = |vx: f64| -> f64 {
        discharging_betas
            .iter()
            .map(|&beta| {
                // nmos_isat works in W/L units; convert β back.
                let wl_eff = beta / tech.kp_n;
                tech.nmos_isat(wl_eff, vx, opts.body_effect)
            })
            .sum()
    };
    // f(vx) = vx/R − ΣI(vx): negative at 0 (current flows), positive once
    // vx starves the gate drive.
    let f = |vx: f64| vx / r_sleep - total_current_at(vx);
    let hi = tech.vdd;
    if f(0.0) >= 0.0 {
        // No current at all (gates already stalled by definition) — the
        // equilibrium is 0.
        return Ok((0.0, false));
    }
    match brent(
        &f,
        0.0,
        hi,
        RootOptions {
            x_tol: 1e-9,
            f_tol: 1e-12,
            max_iter: 200,
        },
    ) {
        Ok(vx) => Ok((vx, false)),
        Err(_) => {
            // Relaxed fallback: looser tolerances, more iterations. Only
            // reached where the strict solve errored, so it cannot
            // perturb results that used to succeed.
            let vx = brent(
                &f,
                0.0,
                hi,
                RootOptions {
                    x_tol: 1e-7,
                    f_tol: 1e-9,
                    max_iter: 2000,
                },
            )
            .map_err(CoreError::Numeric)?;
            Ok((vx, true))
        }
    }
}

/// Closed-form solution of Eq. 5 for the pure square-law case
/// (α = 2, no body effect): the smaller root of
/// `(B/2)·Vx² − (B·A + 1/R)·Vx + (B/2)·A² = 0` with `B = Σβ`,
/// `A = Vdd − Vtn`.
///
/// Used to cross-check the iterative solver. Returns `0.0` for empty
/// inputs or `r_sleep <= 0`.
pub fn solve_vx_closed_form_square_law(tech: &Technology, r_sleep: f64, betas: &[f64]) -> f64 {
    if r_sleep <= 0.0 || betas.is_empty() {
        return 0.0;
    }
    let b: f64 = betas.iter().sum();
    let a = tech.vdd - tech.vtn;
    if a <= 0.0 {
        return 0.0;
    }
    // (B/2) vx^2 − (B a + 1/R) vx + (B/2) a^2 = 0.
    let qa = b / 2.0;
    let qb = -(b * a + 1.0 / r_sleep);
    let qc = b / 2.0 * a * a;
    let disc = (qb * qb - 4.0 * qa * qc).max(0.0);
    (-qb - disc.sqrt()) / (2.0 * qa)
}

/// Discharge current of a gate with effective pull-down β at
/// virtual-ground voltage `vx` (the I<sub>j</sub> of Eq. 4/5).
pub fn discharge_current(tech: &Technology, beta: f64, vx: f64, body_effect: bool) -> f64 {
    tech.nmos_isat(beta / tech.kp_n, vx, body_effect)
}

/// Charge (pull-up) current of a gate with effective PMOS β — unaffected
/// by an NMOS sleep device (§2.1: "the low to high transition behaves
/// exactly the same as conventional CMOS").
pub fn charge_current(tech: &Technology, beta_p: f64) -> f64 {
    tech.pmos_isat(beta_p / tech.kp_p)
}

/// Paper Eq. 3: propagation delay of gate `j` discharging `cl` at
/// constant current `i` — the time for the output to fall from
/// V<sub>dd</sub> to V<sub>dd</sub>/2.
///
/// Returns `f64::INFINITY` when the gate is stalled (`i <= 0`).
pub fn constant_current_delay(tech: &Technology, cl: f64, i: f64) -> f64 {
    if i <= 0.0 {
        f64::INFINITY
    } else {
        cl * tech.vdd / (2.0 * i)
    }
}

/// The delay of one inverter when `n` identical inverters (β, C<sub>L</sub>)
/// discharge simultaneously through sleep resistance `r` — the §5.1
/// worked model, used directly in tests and the model-level benches.
///
/// # Errors
///
/// Propagates [`CoreError::Numeric`] from the V<sub>x</sub> solve.
pub fn n_inverter_delay(
    tech: &Technology,
    r_sleep: f64,
    n: usize,
    beta: f64,
    cl: f64,
    opts: VxOptions,
) -> Result<f64, CoreError> {
    let betas = vec![beta; n];
    let vx = solve_vx(tech, r_sleep, &betas, opts)?;
    let i = discharge_current(tech, beta, vx, opts.body_effect);
    Ok(constant_current_delay(tech, cl, i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtk_num::prng::Xoshiro256pp;

    fn square_law_tech() -> Technology {
        Technology {
            alpha: 2.0,
            gamma: 0.0,
            ..Technology::l07()
        }
    }

    #[test]
    fn zero_resistance_gives_zero_vx() {
        let t = Technology::l07();
        let vx = solve_vx(&t, 0.0, &[1e-4, 1e-4], VxOptions::default()).unwrap();
        assert_eq!(vx, 0.0);
    }

    #[test]
    fn no_gates_gives_zero_vx() {
        let t = Technology::l07();
        assert_eq!(solve_vx(&t, 1e3, &[], VxOptions::default()).unwrap(), 0.0);
    }

    #[test]
    fn iterative_matches_closed_form_square_law() {
        let t = square_law_tech();
        for &r in &[100.0, 1_000.0, 10_000.0] {
            for n in [1usize, 3, 9] {
                let betas = vec![t.kp_n * 1.0; n];
                let it = solve_vx(&t, r, &betas, VxOptions { body_effect: false }).unwrap();
                let cf = solve_vx_closed_form_square_law(&t, r, &betas);
                assert!(
                    (it - cf).abs() < 1e-7,
                    "r={r} n={n}: iterative {it} vs closed form {cf}"
                );
            }
        }
    }

    #[test]
    fn vx_satisfies_equilibrium() {
        let t = Technology::l07();
        let betas = vec![t.kp_n * 1.0; 9];
        let r = t.sleep_resistance(10.0);
        let vx = solve_vx(&t, r, &betas, VxOptions { body_effect: true }).unwrap();
        let i_total: f64 = betas
            .iter()
            .map(|&b| discharge_current(&t, b, vx, true))
            .sum();
        assert!(
            (vx / r - i_total).abs() / i_total.max(1e-12) < 1e-6,
            "vx={vx}, I={i_total}"
        );
    }

    #[test]
    fn body_effect_raises_vx_degradation() {
        // With the body effect the gates weaken further, so the same
        // current balance happens at *lower* vx but lower current too —
        // delay must be longer.
        let t = Technology::l07();
        let r = t.sleep_resistance(5.0);
        let beta = t.kp_n;
        let d_plain =
            n_inverter_delay(&t, r, 9, beta, 50e-15, VxOptions { body_effect: false }).unwrap();
        let d_body =
            n_inverter_delay(&t, r, 9, beta, 50e-15, VxOptions { body_effect: true }).unwrap();
        assert!(d_body > d_plain, "{d_body} vs {d_plain}");
    }

    #[test]
    fn delay_formula_matches_hand_calc() {
        let t = square_law_tech();
        // Single inverter, no sleep resistance: I = β/2 (vdd−vtn)^2.
        let beta = t.kp_n * 2.0;
        let d = n_inverter_delay(&t, 0.0, 1, beta, 50e-15, VxOptions::default()).unwrap();
        let i = beta / 2.0 * (t.vdd - t.vtn).powi(2);
        assert!((d - 50e-15 * t.vdd / (2.0 * i)).abs() < 1e-18);
    }

    #[test]
    fn stalled_gate_has_infinite_delay() {
        let t = Technology::l07();
        assert_eq!(constant_current_delay(&t, 50e-15, 0.0), f64::INFINITY);
    }

    /// Vx is monotone increasing in R and in the number of gates.
    #[test]
    fn vx_monotone_in_r_and_n() {
        let mut rng = Xoshiro256pp::seed_from_u64(0x1101);
        for _ in 0..64 {
            let wl = rng.next_f64_in(2.0, 50.0);
            let n = 1 + rng.next_index(19);
            let t = Technology::l07();
            let betas_n = vec![t.kp_n; n];
            let betas_n1 = vec![t.kp_n; n + 1];
            let r1 = t.sleep_resistance(wl);
            let r2 = t.sleep_resistance(wl / 2.0); // larger resistance
            let o = VxOptions { body_effect: true };
            let v_r1 = solve_vx(&t, r1, &betas_n, o).unwrap();
            let v_r2 = solve_vx(&t, r2, &betas_n, o).unwrap();
            let v_n1 = solve_vx(&t, r1, &betas_n1, o).unwrap();
            assert!(v_r2 >= v_r1 - 1e-12, "wl={wl} n={n}");
            assert!(v_n1 >= v_r1 - 1e-12, "wl={wl} n={n}");
            // Physical bound: 0 <= vx < vdd.
            assert!(v_r1 >= 0.0 && v_r1 < t.vdd);
        }
    }

    /// Per-gate delay is monotone non-decreasing as sleep W/L shrinks.
    #[test]
    fn delay_monotone_in_sleep_size() {
        let mut rng = Xoshiro256pp::seed_from_u64(0x1102);
        for _ in 0..32 {
            let n = 1 + rng.next_index(14);
            let t = Technology::l07();
            let o = VxOptions { body_effect: true };
            let mut last = 0.0f64;
            for wl in [100.0, 50.0, 20.0, 10.0, 5.0, 2.0] {
                let r = t.sleep_resistance(wl);
                let d = n_inverter_delay(&t, r, n, t.kp_n, 50e-15, o).unwrap();
                assert!(d >= last - 1e-18, "delay not monotone at wl={wl} n={n}");
                last = d;
            }
        }
    }
}
