//! The Fig 4 inverter tree.
//!
//! A clock-distribution-style tree: one input inverter drives `fanout`
//! inverters, each of which drives `fanout` more, for `depth` stages.
//! The paper's instance has fanout 3 and three stages (1 + 3 + 9
//! inverters), each output loaded with 50 fF, V<sub>dd</sub> = 1.2 V —
//! when the input rises, all nine third-stage inverters discharge at
//! once through the shared sleep transistor.

use mtk_netlist::cell::CellKind;
use mtk_netlist::netlist::{NetId, Netlist};
use mtk_netlist::NetlistError;

/// Parameters of an inverter tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeSpec {
    /// Fanout of every stage (the paper uses 3).
    pub fanout: usize,
    /// Number of inverter stages including the input inverter (paper: 3).
    pub stages: usize,
    /// Explicit load on every inverter output, farads (paper: 50 fF).
    pub load_cap: f64,
    /// Drive-strength multiplier of every inverter.
    pub drive: f64,
}

impl Default for TreeSpec {
    /// The paper's Fig 4 configuration.
    fn default() -> Self {
        TreeSpec {
            fanout: 3,
            stages: 3,
            load_cap: 50e-15,
            drive: 1.0,
        }
    }
}

/// A generated inverter tree.
#[derive(Debug)]
pub struct InverterTree {
    /// The gate-level netlist.
    pub netlist: Netlist,
    /// The primary input net.
    pub input: NetId,
    /// Output nets per stage (stage 0 = the input inverter's output).
    pub stage_outputs: Vec<Vec<NetId>>,
}

impl InverterTree {
    /// Builds a tree from a spec.
    ///
    /// # Errors
    ///
    /// Propagates netlist construction errors (they indicate a bug in the
    /// generator, not bad user input, but are surfaced for completeness).
    pub fn new(spec: &TreeSpec) -> Result<Self, NetlistError> {
        assert!(spec.stages >= 1, "tree needs at least one stage");
        assert!(spec.fanout >= 1, "fanout must be at least 1");
        let mut nl = Netlist::new("inverter_tree");
        let input = nl.add_net("in")?;
        nl.mark_primary_input(input)?;
        let mut stage_outputs: Vec<Vec<NetId>> = Vec::new();
        let mut frontier = vec![input];
        let mut gate_idx = 0usize;
        for stage in 0..spec.stages {
            let mut outputs = Vec::new();
            let per_driver = if stage == 0 { 1 } else { spec.fanout };
            for &drv in &frontier {
                for _ in 0..per_driver {
                    let out = nl.add_net(&format!("s{stage}_{}", outputs.len()))?;
                    nl.add_cell(
                        &format!("inv{gate_idx}"),
                        CellKind::Inv,
                        vec![drv],
                        out,
                        spec.drive,
                    )?;
                    nl.add_extra_cap(out, spec.load_cap);
                    gate_idx += 1;
                    outputs.push(out);
                }
            }
            frontier = outputs.clone();
            stage_outputs.push(outputs);
        }
        for &leaf in stage_outputs.last().expect("stages >= 1") {
            nl.mark_primary_output(leaf);
        }
        Ok(InverterTree {
            netlist: nl,
            input,
            stage_outputs,
        })
    }

    /// The paper's Fig 4 instance (fanout 3, stages 1+3+9, 50 fF loads).
    pub fn paper() -> Self {
        InverterTree::new(&TreeSpec::default()).expect("paper tree spec is valid")
    }

    /// Leaf (final-stage) outputs.
    pub fn leaves(&self) -> &[NetId] {
        self.stage_outputs.last().expect("stages >= 1")
    }

    /// A representative leaf output for delay measurement.
    pub fn probe(&self) -> NetId {
        self.leaves()[0]
    }

    /// Which stages are *discharging* (falling) for a given input
    /// transition: with an odd number of inversions per stage, a rising
    /// input makes stage 0 fall, stage 1 rise, stage 2 fall, …
    pub fn falling_stages_for_rising_input(&self) -> Vec<usize> {
        (0..self.stage_outputs.len()).step_by(2).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtk_netlist::logic::Logic;

    #[test]
    fn paper_tree_shape() {
        let t = InverterTree::paper();
        assert_eq!(t.stage_outputs.len(), 3);
        assert_eq!(t.stage_outputs[0].len(), 1);
        assert_eq!(t.stage_outputs[1].len(), 3);
        assert_eq!(t.stage_outputs[2].len(), 9);
        assert_eq!(t.netlist.cells().len(), 13);
        assert_eq!(t.netlist.total_transistors(), 26);
    }

    #[test]
    fn logic_alternates_per_stage() {
        let t = InverterTree::paper();
        let v = t.netlist.evaluate(&[Logic::One]).unwrap();
        assert_eq!(v[t.stage_outputs[0][0].index()], Logic::Zero);
        for &n in &t.stage_outputs[1] {
            assert_eq!(v[n.index()], Logic::One);
        }
        for &n in &t.stage_outputs[2] {
            assert_eq!(v[n.index()], Logic::Zero);
        }
    }

    #[test]
    fn custom_spec_sizes() {
        let t = InverterTree::new(&TreeSpec {
            fanout: 2,
            stages: 4,
            load_cap: 10e-15,
            drive: 2.0,
        })
        .unwrap();
        assert_eq!(t.stage_outputs[3].len(), 8);
        assert_eq!(t.leaves().len(), 8);
        assert_eq!(t.netlist.cells().len(), 1 + 2 + 4 + 8);
    }

    #[test]
    fn falling_stages_identified() {
        let t = InverterTree::paper();
        assert_eq!(t.falling_stages_for_rising_input(), vec![0, 2]);
    }

    #[test]
    fn loads_applied() {
        let t = InverterTree::paper();
        let tech = mtk_netlist::tech::Technology::l07();
        // A leaf has no fanout: its load is the explicit 50 fF + driver drain.
        let c = t.netlist.load_cap(t.probe(), &tech);
        assert!(c >= 50e-15);
        assert!(c < 60e-15);
    }
}
