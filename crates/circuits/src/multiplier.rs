//! The Fig 6 carry-save (Braun) array multiplier.
//!
//! Partial products are AND gates (NAND2 + inverter); each array row
//! adds one partial-product row with the carries *saved* into the next
//! row (the carry-save structure the paper's Fig 6 shows for 4×4); a
//! final ripple (carry-propagate) row resolves the upper product bits —
//! "one critical path (many others exist) lies along the diagonal and
//! bottom row" (§4).

use crate::adder::full_adder;
use mtk_netlist::cell::CellKind;
use mtk_netlist::logic::{bits_lsb_first, Logic};
use mtk_netlist::netlist::{NetId, Netlist};
use mtk_netlist::NetlistError;

/// Parameters of an array multiplier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiplierSpec {
    /// Operand width in bits (the paper evaluates 8×8).
    pub bits: usize,
    /// Explicit load on each product output, farads.
    pub output_load: f64,
    /// Drive-strength multiplier of every cell.
    pub drive: f64,
}

impl Default for MultiplierSpec {
    /// The paper's 8×8 configuration.
    fn default() -> Self {
        MultiplierSpec {
            bits: 8,
            output_load: 15e-15,
            drive: 3.0,
        }
    }
}

/// A generated N×N array multiplier computing `p = x · y`.
#[derive(Debug)]
pub struct ArrayMultiplier {
    /// The gate-level netlist.
    pub netlist: Netlist,
    /// Operand X inputs, LSB first.
    pub x: Vec<NetId>,
    /// Operand Y inputs, LSB first.
    pub y: Vec<NetId>,
    /// Product outputs `p0 … p(2n−1)`, LSB first.
    pub p: Vec<NetId>,
}

impl ArrayMultiplier {
    /// Builds a multiplier. Primary inputs are declared `x[0..n]` then
    /// `y[0..n]` (LSB first), matching [`ArrayMultiplier::input_values`].
    ///
    /// # Errors
    ///
    /// Propagates netlist construction errors.
    pub fn new(spec: &MultiplierSpec) -> Result<Self, NetlistError> {
        assert!(spec.bits >= 2, "multiplier needs at least 2 bits");
        let n = spec.bits;
        let drive = spec.drive;
        let mut nl = Netlist::new("csa_multiplier");
        let x: Vec<NetId> = (0..n)
            .map(|i| nl.add_net(&format!("x{i}")))
            .collect::<Result<_, _>>()?;
        let y: Vec<NetId> = (0..n)
            .map(|i| nl.add_net(&format!("y{i}")))
            .collect::<Result<_, _>>()?;
        for &net in x.iter().chain(&y) {
            nl.mark_primary_input(net)?;
        }
        let zero = nl.add_net("const0")?;
        nl.tie_net(zero, Logic::Zero)?;

        // Partial products pp[i][j] = x_i & y_j (NAND2 + INV).
        let mut pp = vec![vec![zero; n]; n];
        for (i, &xi) in x.iter().enumerate() {
            for (j, &yj) in y.iter().enumerate() {
                let nand = nl.add_net(&format!("ppb{i}_{j}"))?;
                let and = nl.add_net(&format!("pp{i}_{j}"))?;
                nl.add_cell(
                    &format!("gppb{i}_{j}"),
                    CellKind::Nand2,
                    vec![xi, yj],
                    nand,
                    drive,
                )?;
                nl.add_cell(
                    &format!("gpp{i}_{j}"),
                    CellKind::Inv,
                    vec![nand],
                    and,
                    drive,
                )?;
                pp[i][j] = and;
            }
        }

        let mut p = Vec::with_capacity(2 * n);
        // Row 0 of the carry-save state is the y0 partial-product row:
        // s0[i] = pp[i][0] (weight i), carries all zero.
        p.push(pp[0][0]);
        let mut s: Vec<NetId> = (0..n).map(|i| pp[i][0]).collect();
        let mut c: Vec<NetId> = vec![zero; n];

        // Carry-save rows k = 1..n-1: cell i adds pp[i][k] (weight i+k)
        // to the incoming sum s[i+1] (same weight) and carry c[i].
        #[allow(clippy::needless_range_loop)] // k indexes pp, s, c and names cells
        for k in 1..n {
            let mut s_next = vec![zero; n];
            let mut c_next = vec![zero; n];
            for i in 0..n {
                let b_in = if i + 1 < n { s[i + 1] } else { zero };
                let (si, ci) =
                    full_adder(&mut nl, &format!("csa{k}_{i}"), pp[i][k], b_in, c[i], drive)?;
                s_next[i] = si;
                c_next[i] = ci;
            }
            p.push(s_next[0]);
            s = s_next;
            c = c_next;
        }

        // Final ripple row resolving weights n .. 2n-1.
        let mut carry = zero;
        for j in 1..n {
            let (pj, cj) = full_adder(&mut nl, &format!("rip{j}"), s[j], c[j - 1], carry, drive)?;
            p.push(pj);
            carry = cj;
        }
        let (top, _overflow) = full_adder(&mut nl, "rip_top", zero, c[n - 1], carry, drive)?;
        p.push(top);

        for &out in &p {
            nl.add_extra_cap(out, spec.output_load);
            nl.mark_primary_output(out);
        }
        Ok(ArrayMultiplier {
            netlist: nl,
            x,
            y,
            p,
        })
    }

    /// The paper's 8×8 instance.
    pub fn paper() -> Self {
        ArrayMultiplier::new(&MultiplierSpec::default()).expect("paper multiplier spec is valid")
    }

    /// Operand width.
    pub fn bits(&self) -> usize {
        self.x.len()
    }

    /// Primary-input logic levels for operands `(x, y)`.
    pub fn input_values(&self, x: u64, y: u64) -> Vec<Logic> {
        let n = self.bits() as u32;
        let mut v = bits_lsb_first(x, n);
        v.extend(bits_lsb_first(y, n));
        v
    }

    /// Decodes the product from evaluated net values.
    pub fn decode_product(&self, values: &[Logic]) -> Option<u64> {
        let mut out = 0u64;
        for (k, &net) in self.p.iter().enumerate() {
            out |= (values[net.index()].to_bool()? as u64) << k;
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtk_num::prng::Xoshiro256pp;

    #[test]
    fn four_by_four_is_exhaustively_correct() {
        let m = ArrayMultiplier::new(&MultiplierSpec {
            bits: 4,
            ..MultiplierSpec::default()
        })
        .unwrap();
        for a in 0..16u64 {
            for b in 0..16u64 {
                let v = m.netlist.evaluate(&m.input_values(a, b)).unwrap();
                assert_eq!(m.decode_product(&v), Some(a * b), "{a}*{b}");
            }
        }
    }

    #[test]
    fn two_by_two_works() {
        let m = ArrayMultiplier::new(&MultiplierSpec {
            bits: 2,
            ..MultiplierSpec::default()
        })
        .unwrap();
        for a in 0..4u64 {
            for b in 0..4u64 {
                let v = m.netlist.evaluate(&m.input_values(a, b)).unwrap();
                assert_eq!(m.decode_product(&v), Some(a * b));
            }
        }
    }

    #[test]
    fn eight_by_eight_matches_integer_multiplication() {
        let m = ArrayMultiplier::paper();
        let mut rng = Xoshiro256pp::seed_from_u64(0x88);
        for _ in 0..64 {
            let a = rng.next_below(256);
            let b = rng.next_below(256);
            let v = m.netlist.evaluate(&m.input_values(a, b)).unwrap();
            assert_eq!(m.decode_product(&v), Some(a * b), "{a}*{b}");
        }
    }

    #[test]
    fn paper_vectors_evaluate() {
        // Vector A: (x: 00, y: 00) -> (x: FF, y: 81); B: (7F,81) -> (FF,81).
        let m = ArrayMultiplier::paper();
        let v = m.netlist.evaluate(&m.input_values(0xFF, 0x81)).unwrap();
        assert_eq!(m.decode_product(&v), Some(0xFF * 0x81));
        let v = m.netlist.evaluate(&m.input_values(0x7F, 0x81)).unwrap();
        assert_eq!(m.decode_product(&v), Some(0x7F * 0x81));
    }

    #[test]
    fn structure_scales() {
        let m = ArrayMultiplier::paper();
        assert_eq!(m.p.len(), 16);
        assert_eq!(m.netlist.primary_inputs().len(), 16);
        // 64 partial products (NAND+INV) + (7 rows × 8 + 8 ripple) FAs.
        let fa_count = 7 * 8 + 8;
        assert_eq!(m.netlist.total_transistors(), 64 * 6 + fa_count * 28);
    }
}
