//! The Fig 12 ripple-carry adder built from mirror full adders.
//!
//! Each full adder is the Weste & Eshraghian 28-transistor mirror adder
//! (the paper's ref \[11]): a 10T carry stage producing `!Cout`, a 14T
//! sum stage producing `!Sum` (reusing `!Cout`), and two inverters. The
//! paper exhaustively simulates the 3-bit instance with the initial
//! carry grounded — 2⁶ · 2⁶ = 4096 input-vector transitions.

use mtk_netlist::cell::CellKind;
use mtk_netlist::hier::Module;
use mtk_netlist::logic::{bits_lsb_first, Logic};
use mtk_netlist::netlist::{NetId, Netlist};
use mtk_netlist::NetlistError;

/// Parameters of a ripple-carry adder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdderSpec {
    /// Word width in bits (the paper uses 3).
    pub bits: usize,
    /// Explicit load on each primary output, farads.
    pub output_load: f64,
    /// Drive-strength multiplier of every cell.
    pub drive: f64,
}

impl Default for AdderSpec {
    /// The paper's Fig 12 configuration (3 bits).
    fn default() -> Self {
        AdderSpec {
            bits: 3,
            output_load: 20e-15,
            drive: 1.0,
        }
    }
}

/// A generated ripple-carry adder.
#[derive(Debug)]
pub struct RippleAdder {
    /// The gate-level netlist.
    pub netlist: Netlist,
    /// Operand A inputs, LSB first.
    pub a: Vec<NetId>,
    /// Operand B inputs, LSB first.
    pub b: Vec<NetId>,
    /// Sum outputs, LSB first.
    pub sum: Vec<NetId>,
    /// Carry-out.
    pub cout: NetId,
}

impl RippleAdder {
    /// Builds an adder. Primary inputs are declared in the order
    /// `a[0..bits]` then `b[0..bits]` (LSB first), which is the bit
    /// order [`RippleAdder::input_values`] produces.
    ///
    /// # Errors
    ///
    /// Propagates netlist construction errors.
    pub fn new(spec: &AdderSpec) -> Result<Self, NetlistError> {
        assert!(spec.bits >= 1, "adder needs at least one bit");
        let n = spec.bits;
        let mut nl = Netlist::new("ripple_adder");
        let a: Vec<NetId> = (0..n)
            .map(|i| nl.add_net(&format!("a{i}")))
            .collect::<Result<_, _>>()?;
        let b: Vec<NetId> = (0..n)
            .map(|i| nl.add_net(&format!("b{i}")))
            .collect::<Result<_, _>>()?;
        for &net in a.iter().chain(&b) {
            nl.mark_primary_input(net)?;
        }
        // Initial carry grounded, per the paper.
        let c0 = nl.add_net("c0")?;
        nl.tie_net(c0, Logic::Zero)?;

        let mut carry = c0;
        let mut sum = Vec::with_capacity(n);
        for i in 0..n {
            let (s, cout) = full_adder(&mut nl, &format!("fa{i}"), a[i], b[i], carry, spec.drive)?;
            nl.add_extra_cap(s, spec.output_load);
            nl.mark_primary_output(s);
            sum.push(s);
            carry = cout;
        }
        nl.add_extra_cap(carry, spec.output_load);
        nl.mark_primary_output(carry);
        Ok(RippleAdder {
            netlist: nl,
            a,
            b,
            sum,
            cout: carry,
        })
    }

    /// The paper's 3-bit instance.
    pub fn paper() -> Self {
        RippleAdder::new(&AdderSpec::default()).expect("paper adder spec is valid")
    }

    /// Word width.
    pub fn bits(&self) -> usize {
        self.a.len()
    }

    /// Primary-input logic levels for operands `(a, b)`, in the netlist's
    /// declared input order.
    pub fn input_values(&self, a: u64, b: u64) -> Vec<Logic> {
        let n = self.bits() as u32;
        let mut v = bits_lsb_first(a, n);
        v.extend(bits_lsb_first(b, n));
        v
    }

    /// Decodes the sum (including carry-out) from evaluated net values.
    pub fn decode_sum(&self, values: &[Logic]) -> Option<u64> {
        let mut out = 0u64;
        for (k, &net) in self.sum.iter().enumerate() {
            out |= (values[net.index()].to_bool()? as u64) << k;
        }
        out |= (values[self.cout.index()].to_bool()? as u64) << self.bits();
        Some(out)
    }
}

/// A wide ripple-carry adder assembled hierarchically: one `chunk`-bit
/// adder-with-carry-in [`Module`], instantiated `bits / chunk` times
/// with the carries chained between instances. Behaviourally identical
/// to a flat [`RippleAdder`] of the same width; structurally it
/// exercises the module/instance flattening path, so its nets and cells
/// carry `u<k>/…` hierarchical names.
#[derive(Debug)]
pub struct ChainedAdder {
    /// The flattened gate-level netlist.
    pub netlist: Netlist,
    /// Operand A inputs, LSB first.
    pub a: Vec<NetId>,
    /// Operand B inputs, LSB first.
    pub b: Vec<NetId>,
    /// Sum outputs, LSB first.
    pub sum: Vec<NetId>,
    /// Carry-out.
    pub cout: NetId,
}

impl ChainedAdder {
    /// Builds a `spec.bits`-wide adder from `spec.bits / chunk`
    /// instances of a `chunk`-bit module. Primary inputs are declared
    /// `a[0..bits]` then `b[0..bits]` (LSB first), matching
    /// [`ChainedAdder::input_values`].
    ///
    /// # Errors
    ///
    /// Propagates netlist construction errors.
    ///
    /// # Panics
    ///
    /// Panics unless `chunk >= 1` and `chunk` divides `spec.bits`.
    pub fn new(spec: &AdderSpec, chunk: usize) -> Result<Self, NetlistError> {
        assert!(
            chunk >= 1 && spec.bits >= chunk && spec.bits.is_multiple_of(chunk),
            "chunk must divide the word width"
        );
        // The reusable block: a chunk-bit ripple adder with carry-in.
        // Port order (the instantiation contract): inputs a0.., b0..,
        // cin; outputs s0.., cout.
        let mut body = Netlist::new("add_slice");
        let ba: Vec<NetId> = (0..chunk)
            .map(|i| body.add_net(&format!("a{i}")))
            .collect::<Result<_, _>>()?;
        let bb: Vec<NetId> = (0..chunk)
            .map(|i| body.add_net(&format!("b{i}")))
            .collect::<Result<_, _>>()?;
        for &net in ba.iter().chain(&bb) {
            body.mark_primary_input(net)?;
        }
        let cin = body.add_net("cin")?;
        body.mark_primary_input(cin)?;
        let mut carry = cin;
        for i in 0..chunk {
            let (s, c) = full_adder(
                &mut body,
                &format!("fa{i}"),
                ba[i],
                bb[i],
                carry,
                spec.drive,
            )?;
            body.mark_primary_output(s);
            carry = c;
        }
        body.mark_primary_output(carry);
        let module = Module::new(&format!("add{chunk}"), body)?;

        let n = spec.bits;
        let mut nl = Netlist::new("chained_adder");
        let a: Vec<NetId> = (0..n)
            .map(|i| nl.add_net(&format!("a{i}")))
            .collect::<Result<_, _>>()?;
        let b: Vec<NetId> = (0..n)
            .map(|i| nl.add_net(&format!("b{i}")))
            .collect::<Result<_, _>>()?;
        for &net in a.iter().chain(&b) {
            nl.mark_primary_input(net)?;
        }
        // Initial carry grounded, like the flat adder.
        let c0 = nl.add_net("c0")?;
        nl.tie_net(c0, Logic::Zero)?;
        let sum: Vec<NetId> = (0..n)
            .map(|i| nl.add_net(&format!("s{i}")))
            .collect::<Result<_, _>>()?;
        let mut carry = c0;
        for k in 0..n / chunk {
            let carry_out = nl.add_net(&format!("c{}", (k + 1) * chunk))?;
            let mut inputs: Vec<NetId> = a[k * chunk..(k + 1) * chunk].to_vec();
            inputs.extend_from_slice(&b[k * chunk..(k + 1) * chunk]);
            inputs.push(carry);
            let mut outputs: Vec<NetId> = sum[k * chunk..(k + 1) * chunk].to_vec();
            outputs.push(carry_out);
            module.instantiate(&mut nl, &format!("u{k}"), &inputs, &outputs)?;
            carry = carry_out;
        }
        for &s in &sum {
            nl.add_extra_cap(s, spec.output_load);
            nl.mark_primary_output(s);
        }
        nl.add_extra_cap(carry, spec.output_load);
        nl.mark_primary_output(carry);
        Ok(ChainedAdder {
            netlist: nl,
            a,
            b,
            sum,
            cout: carry,
        })
    }

    /// Word width.
    pub fn bits(&self) -> usize {
        self.a.len()
    }

    /// Primary-input logic levels for operands `(a, b)`, in the
    /// netlist's declared input order.
    pub fn input_values(&self, a: u64, b: u64) -> Vec<Logic> {
        let n = self.bits() as u32;
        let mut v = bits_lsb_first(a, n);
        v.extend(bits_lsb_first(b, n));
        v
    }

    /// Decodes the sum (including carry-out) from evaluated net values.
    /// Wide enough for the 64-bit instance (a 65-bit result).
    pub fn decode_sum(&self, values: &[Logic]) -> Option<u128> {
        let mut out = 0u128;
        for (k, &net) in self.sum.iter().enumerate() {
            out |= (values[net.index()].to_bool()? as u128) << k;
        }
        out |= (values[self.cout.index()].to_bool()? as u128) << self.bits();
        Some(out)
    }
}

/// Instantiates one mirror full adder; returns `(sum, carry_out)` nets.
pub fn full_adder(
    nl: &mut Netlist,
    prefix: &str,
    a: NetId,
    b: NetId,
    ci: NetId,
    drive: f64,
) -> Result<(NetId, NetId), NetlistError> {
    let cob = nl.add_net(&format!("{prefix}_cob"))?;
    let cout = nl.add_net(&format!("{prefix}_co"))?;
    let sb = nl.add_net(&format!("{prefix}_sb"))?;
    let s = nl.add_net(&format!("{prefix}_s"))?;
    nl.add_cell(
        &format!("{prefix}_mc"),
        CellKind::MirrorCarryBar,
        vec![a, b, ci],
        cob,
        drive,
    )?;
    nl.add_cell(
        &format!("{prefix}_ci"),
        CellKind::Inv,
        vec![cob],
        cout,
        drive,
    )?;
    nl.add_cell(
        &format!("{prefix}_ms"),
        CellKind::MirrorSumBar,
        vec![a, b, ci, cob],
        sb,
        drive,
    )?;
    nl.add_cell(&format!("{prefix}_si"), CellKind::Inv, vec![sb], s, drive)?;
    Ok((s, cout))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtk_num::prng::Xoshiro256pp;

    #[test]
    fn paper_adder_transistor_count() {
        let add = RippleAdder::paper();
        // Paper §6.2: 3 × 28 transistors.
        assert_eq!(add.netlist.total_transistors(), 84);
    }

    #[test]
    fn three_bit_adder_is_exhaustively_correct() {
        let add = RippleAdder::paper();
        for a in 0..8u64 {
            for b in 0..8u64 {
                let v = add.netlist.evaluate(&add.input_values(a, b)).unwrap();
                assert_eq!(add.decode_sum(&v), Some(a + b), "{a}+{b}");
            }
        }
    }

    #[test]
    fn one_bit_adder_works() {
        let add = RippleAdder::new(&AdderSpec {
            bits: 1,
            ..AdderSpec::default()
        })
        .unwrap();
        for a in 0..2u64 {
            for b in 0..2u64 {
                let v = add.netlist.evaluate(&add.input_values(a, b)).unwrap();
                assert_eq!(add.decode_sum(&v), Some(a + b));
            }
        }
    }

    #[test]
    fn wide_adder_matches_integer_addition() {
        let add = RippleAdder::new(&AdderSpec {
            bits: 8,
            ..AdderSpec::default()
        })
        .unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(0xADD);
        for _ in 0..64 {
            let a = rng.next_below(256);
            let b = rng.next_below(256);
            let v = add.netlist.evaluate(&add.input_values(a, b)).unwrap();
            assert_eq!(add.decode_sum(&v), Some(a + b), "{a}+{b}");
        }
    }

    #[test]
    fn chained_adder_matches_flat_adder_exhaustively() {
        let chained = ChainedAdder::new(
            &AdderSpec {
                bits: 4,
                ..AdderSpec::default()
            },
            2,
        )
        .unwrap();
        let flat = RippleAdder::new(&AdderSpec {
            bits: 4,
            ..AdderSpec::default()
        })
        .unwrap();
        for a in 0..16u64 {
            for b in 0..16u64 {
                let vc = chained
                    .netlist
                    .evaluate(&chained.input_values(a, b))
                    .unwrap();
                let vf = flat.netlist.evaluate(&flat.input_values(a, b)).unwrap();
                assert_eq!(chained.decode_sum(&vc), Some((a + b) as u128), "{a}+{b}");
                assert_eq!(flat.decode_sum(&vf), Some(a + b), "{a}+{b}");
            }
        }
        // Same gate count as the flat adder, different (hierarchical) names.
        assert_eq!(
            chained.netlist.total_transistors(),
            flat.netlist.total_transistors()
        );
        assert_ne!(chained.netlist.fingerprint(), flat.netlist.fingerprint());
    }

    #[test]
    fn chained_64_bit_adder_matches_integer_addition() {
        let add = ChainedAdder::new(
            &AdderSpec {
                bits: 64,
                ..AdderSpec::default()
            },
            32,
        )
        .unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(0xADD64);
        let mut cases: Vec<(u64, u64)> = vec![(0, 0), (u64::MAX, 1), (u64::MAX, u64::MAX)];
        for _ in 0..16 {
            cases.push((rng.next_u64(), rng.next_u64()));
        }
        for (a, b) in cases {
            let v = add.netlist.evaluate(&add.input_values(a, b)).unwrap();
            assert_eq!(add.decode_sum(&v), Some(a as u128 + b as u128), "{a}+{b}");
        }
    }

    #[test]
    fn chained_adder_has_hierarchical_names() {
        let add = ChainedAdder::new(
            &AdderSpec {
                bits: 64,
                ..AdderSpec::default()
            },
            32,
        )
        .unwrap();
        // Internal full-adder nets and cells are prefixed per instance.
        assert!(add.netlist.find_net("u0/fa0_cob").is_some());
        assert!(add.netlist.find_net("u1/fa31_sb").is_some());
        assert!(add.netlist.cells().iter().any(|c| c.name == "u0/fa0_mc"));
        assert!(add.netlist.cells().iter().any(|c| c.name == "u1/fa31_si"));
        // The chained carry between instances is a top-level net.
        assert!(add.netlist.find_net("c32").is_some());
        // Construction is deterministic.
        let again = ChainedAdder::new(
            &AdderSpec {
                bits: 64,
                ..AdderSpec::default()
            },
            32,
        )
        .unwrap();
        assert_eq!(add.netlist.fingerprint(), again.netlist.fingerprint());
    }

    #[test]
    #[should_panic(expected = "chunk must divide")]
    fn chained_adder_rejects_nondividing_chunk() {
        let _ = ChainedAdder::new(
            &AdderSpec {
                bits: 8,
                ..AdderSpec::default()
            },
            3,
        );
    }

    #[test]
    fn outputs_are_marked() {
        let add = RippleAdder::paper();
        assert_eq!(add.netlist.primary_outputs().len(), 4); // s0..s2, cout
        assert_eq!(add.netlist.primary_inputs().len(), 6);
    }
}
