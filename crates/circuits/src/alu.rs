//! A small ALU slice: AND / OR / XOR / ADD per bit behind a one-hot
//! operation mux.
//!
//! Each bit computes all four functions in parallel — a NAND2+inverter
//! AND, a NOR2+inverter OR, an AOI21 XOR (`!(a·b + !(a+b))`), and the
//! mirror full adder shared with [`crate::adder`] — then selects one
//! through a two-level AOI22/NAND2 mux driven by a NOR2 one-hot decode
//! of the 2-bit opcode. The result is a circuit whose discharge pattern
//! depends on *which* functional unit is active, which is exactly the
//! data-dependency the paper's vector-driven sizing (and the cluster
//! partitioner built on it) exploits: under a fixed opcode, the three
//! unselected units of every bit never discharge the output mux.

use crate::adder::full_adder;
use mtk_netlist::cell::CellKind;
use mtk_netlist::logic::{bits_lsb_first, Logic};
use mtk_netlist::netlist::{NetId, Netlist};
use mtk_netlist::NetlistError;

/// The four operations, encoded one-hot from opcode bits `(op1, op0)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AluOp {
    /// `op = 00`: bitwise AND.
    And,
    /// `op = 01`: bitwise OR.
    Or,
    /// `op = 10`: bitwise XOR.
    Xor,
    /// `op = 11`: addition (carry-in grounded).
    Add,
}

impl AluOp {
    /// All operations, in opcode order.
    pub const ALL: [AluOp; 4] = [AluOp::And, AluOp::Or, AluOp::Xor, AluOp::Add];

    /// The `(op1, op0)` opcode bits.
    pub fn code(self) -> (bool, bool) {
        match self {
            AluOp::And => (false, false),
            AluOp::Or => (false, true),
            AluOp::Xor => (true, false),
            AluOp::Add => (true, true),
        }
    }

    /// The reference result on `bits`-wide operands (masked; the add
    /// carry-out is reported separately by [`AluSlice::decode`]).
    pub fn apply(self, a: u64, b: u64, bits: usize) -> u64 {
        let mask = if bits >= 64 {
            u64::MAX
        } else {
            (1 << bits) - 1
        };
        match self {
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Add => (a.wrapping_add(b)) & mask,
        }
    }
}

/// Parameters of an ALU slice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AluSpec {
    /// Word width in bits.
    pub bits: usize,
    /// Explicit load on each primary output, farads.
    pub output_load: f64,
    /// Drive-strength multiplier of every cell.
    pub drive: f64,
}

impl Default for AluSpec {
    /// The 4-bit golden configuration.
    fn default() -> Self {
        AluSpec {
            bits: 4,
            output_load: 20e-15,
            drive: 1.0,
        }
    }
}

/// A generated ALU slice.
#[derive(Debug)]
pub struct AluSlice {
    /// The gate-level netlist.
    pub netlist: Netlist,
    /// Operand A inputs, LSB first.
    pub a: Vec<NetId>,
    /// Operand B inputs, LSB first.
    pub b: Vec<NetId>,
    /// Opcode inputs `(op0, op1)`.
    pub op: (NetId, NetId),
    /// Result outputs, LSB first.
    pub f: Vec<NetId>,
    /// The adder unit's carry-out (valid under every opcode — the adder
    /// always runs; the mux only gates what reaches `f`).
    pub cout: NetId,
}

impl AluSlice {
    /// Builds an ALU slice. Primary inputs are declared in the order
    /// `a[0..bits]`, `b[0..bits]`, `op0`, `op1` — the bit order
    /// [`AluSlice::input_values`] produces.
    ///
    /// # Errors
    ///
    /// Propagates netlist construction errors.
    pub fn new(spec: &AluSpec) -> Result<Self, NetlistError> {
        assert!(spec.bits >= 1, "ALU needs at least one bit");
        let n = spec.bits;
        let d = spec.drive;
        let mut nl = Netlist::new("alu_slice");
        let a: Vec<NetId> = (0..n)
            .map(|i| nl.add_net(&format!("a{i}")))
            .collect::<Result<_, _>>()?;
        let b: Vec<NetId> = (0..n)
            .map(|i| nl.add_net(&format!("b{i}")))
            .collect::<Result<_, _>>()?;
        let op0 = nl.add_net("op0")?;
        let op1 = nl.add_net("op1")?;
        for &net in a.iter().chain(&b).chain([&op0, &op1]) {
            nl.mark_primary_input(net)?;
        }

        // One-hot opcode decode: sel_k high iff op == k.
        let op0n = nl.add_net("op0n")?;
        let op1n = nl.add_net("op1n")?;
        nl.add_cell("gop0n", CellKind::Inv, vec![op0], op0n, d)?;
        nl.add_cell("gop1n", CellKind::Inv, vec![op1], op1n, d)?;
        let sel = [
            (op1, op0, "sel0"),
            (op1, op0n, "sel1"),
            (op1n, op0, "sel2"),
            (op1n, op0n, "sel3"),
        ];
        let mut sels = Vec::with_capacity(4);
        for (x, y, name) in sel {
            let s = nl.add_net(name)?;
            nl.add_cell(&format!("g{name}"), CellKind::Nor2, vec![x, y], s, d)?;
            sels.push(s);
        }

        // Adder carry chain, grounded carry-in.
        let c0 = nl.add_net("c0")?;
        nl.tie_net(c0, Logic::Zero)?;
        let mut carry = c0;
        let mut f = Vec::with_capacity(n);
        for i in 0..n {
            // AND = Inv(Nand2), OR = Inv(Nor2), XOR = !(a·b + !(a+b)).
            let nand_i = nl.add_net(&format!("nand{i}"))?;
            let and_i = nl.add_net(&format!("and{i}"))?;
            let nor_i = nl.add_net(&format!("nor{i}"))?;
            let or_i = nl.add_net(&format!("or{i}"))?;
            let xor_i = nl.add_net(&format!("xor{i}"))?;
            nl.add_cell(
                &format!("gnand{i}"),
                CellKind::Nand2,
                vec![a[i], b[i]],
                nand_i,
                d,
            )?;
            nl.add_cell(&format!("gand{i}"), CellKind::Inv, vec![nand_i], and_i, d)?;
            nl.add_cell(
                &format!("gnor{i}"),
                CellKind::Nor2,
                vec![a[i], b[i]],
                nor_i,
                d,
            )?;
            nl.add_cell(&format!("gor{i}"), CellKind::Inv, vec![nor_i], or_i, d)?;
            nl.add_cell(
                &format!("gxor{i}"),
                CellKind::Aoi21,
                vec![a[i], b[i], nor_i],
                xor_i,
                d,
            )?;
            let (sum_i, c_next) = full_adder(&mut nl, &format!("fa{i}"), a[i], b[i], carry, d)?;
            carry = c_next;

            // Two AOI22 halves into a NAND2: with a one-hot select this
            // is f = Σ_k sel_k · unit_k.
            let m0 = nl.add_net(&format!("m0_{i}"))?;
            let m1 = nl.add_net(&format!("m1_{i}"))?;
            let fi = nl.add_net(&format!("f{i}"))?;
            nl.add_cell(
                &format!("gm0_{i}"),
                CellKind::Aoi22,
                vec![and_i, sels[0], or_i, sels[1]],
                m0,
                d,
            )?;
            nl.add_cell(
                &format!("gm1_{i}"),
                CellKind::Aoi22,
                vec![xor_i, sels[2], sum_i, sels[3]],
                m1,
                d,
            )?;
            nl.add_cell(&format!("gf{i}"), CellKind::Nand2, vec![m0, m1], fi, d)?;
            nl.add_extra_cap(fi, spec.output_load);
            nl.mark_primary_output(fi);
            f.push(fi);
        }
        nl.add_extra_cap(carry, spec.output_load);
        nl.mark_primary_output(carry);
        Ok(AluSlice {
            netlist: nl,
            a,
            b,
            op: (op0, op1),
            f,
            cout: carry,
        })
    }

    /// Word width.
    pub fn bits(&self) -> usize {
        self.a.len()
    }

    /// Primary-input logic levels for `(a, b, op)`, in the netlist's
    /// declared input order.
    pub fn input_values(&self, a: u64, b: u64, op: AluOp) -> Vec<Logic> {
        let n = self.bits() as u32;
        let mut v = bits_lsb_first(a, n);
        v.extend(bits_lsb_first(b, n));
        let (op1, op0) = op.code();
        v.push(Logic::from_bool(op0));
        v.push(Logic::from_bool(op1));
        v
    }

    /// Decodes `(f, adder_carry_out)` from evaluated net values.
    pub fn decode(&self, values: &[Logic]) -> Option<(u64, bool)> {
        let mut out = 0u64;
        for (k, &net) in self.f.iter().enumerate() {
            out |= (values[net.index()].to_bool()? as u64) << k;
        }
        Some((out, values[self.cout.index()].to_bool()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_bit_alu_is_exhaustively_correct() {
        let alu = AluSlice::new(&AluSpec::default()).unwrap();
        for op in AluOp::ALL {
            for a in 0..16u64 {
                for b in 0..16u64 {
                    let v = alu.netlist.evaluate(&alu.input_values(a, b, op)).unwrap();
                    let (f, cout) = alu.decode(&v).unwrap();
                    assert_eq!(f, op.apply(a, b, 4), "{op:?} {a},{b}");
                    // The adder unit always runs; its carry-out is
                    // opcode-independent.
                    assert_eq!(cout, a + b > 15, "cout {op:?} {a},{b}");
                }
            }
        }
    }

    #[test]
    fn one_bit_alu_works() {
        let alu = AluSlice::new(&AluSpec {
            bits: 1,
            ..AluSpec::default()
        })
        .unwrap();
        for op in AluOp::ALL {
            for a in 0..2u64 {
                for b in 0..2u64 {
                    let v = alu.netlist.evaluate(&alu.input_values(a, b, op)).unwrap();
                    assert_eq!(alu.decode(&v).unwrap().0, op.apply(a, b, 1));
                }
            }
        }
    }

    #[test]
    fn construction_is_deterministic() {
        let x = AluSlice::new(&AluSpec::default()).unwrap();
        let y = AluSlice::new(&AluSpec::default()).unwrap();
        assert_eq!(x.netlist.fingerprint(), y.netlist.fingerprint());
    }

    #[test]
    fn interface_is_marked() {
        let alu = AluSlice::new(&AluSpec::default()).unwrap();
        assert_eq!(alu.netlist.primary_inputs().len(), 10); // a,b × 4 + op0,op1
        assert_eq!(alu.netlist.primary_outputs().len(), 5); // f0..f3, cout
    }
}
