//! Generators for the paper's benchmark circuits.
//!
//! * [`tree`] — the Fig 4 clock-distribution inverter tree (1 → 3 → 9
//!   fanout), whose third stage discharges nine inverters simultaneously
//!   and bounces the virtual ground.
//! * [`adder`] — the Fig 12 N-bit ripple-carry adder built from 28T
//!   mirror full adders (3 bits in the paper's exhaustive experiment),
//!   plus the hierarchical [`adder::ChainedAdder`] that chains module
//!   instances of a narrower slice into a wide adder.
//! * [`alu`] — an AND/OR/XOR/ADD ALU slice behind a one-hot operation
//!   mux, whose discharge pattern depends on the selected opcode.
//! * [`multiplier`] — the Fig 6 N×N carry-save (Braun) array multiplier
//!   (the paper shows the 4×4 and evaluates the 8×8).
//! * [`nand_adder`] — a NAND-only adder: same function as [`adder`],
//!   different discharge pattern (implementation-style studies).
//! * [`random_logic`] — seeded random combinational blocks for property
//!   tests and scaling studies.
//! * [`vectors`] — input-vector utilities: exhaustive pair enumeration
//!   for the adder experiment and the paper's named multiplier vectors
//!   A and B.
//! * [`golden`] — the generators exported as golden `.mtk` designs
//!   (the files under `examples/`, pinned by CI).

pub mod adder;
pub mod alu;
pub mod golden;
pub mod multiplier;
pub mod nand_adder;
pub mod random_logic;
pub mod tree;
pub mod vectors;

pub use adder::{ChainedAdder, RippleAdder};
pub use alu::AluSlice;
pub use multiplier::ArrayMultiplier;
pub use nand_adder::NandRippleAdder;
pub use random_logic::RandomLogic;
pub use tree::InverterTree;
pub use vectors::VectorPair;
