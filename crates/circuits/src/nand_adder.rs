//! A NAND-only ripple-carry adder — an alternative implementation style
//! for §2.4's point that *implementation structure* changes a circuit's
//! MTCMOS discharge pattern.
//!
//! Each full adder is the classic nine-NAND2 realization. Functionally
//! identical to the mirror adder of [`crate::adder`], but its internal
//! transitions (and therefore its simultaneous-discharge profile through
//! a shared sleep transistor) differ, so the worst-case input vectors
//! and the required sleep sizing differ too.

use mtk_netlist::cell::CellKind;
use mtk_netlist::logic::{bits_lsb_first, Logic};
use mtk_netlist::netlist::{NetId, Netlist};
use mtk_netlist::NetlistError;

/// Parameters of a NAND-only ripple-carry adder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NandAdderSpec {
    /// Word width in bits.
    pub bits: usize,
    /// Explicit load on each primary output, farads.
    pub output_load: f64,
    /// Drive-strength multiplier of every cell.
    pub drive: f64,
}

impl Default for NandAdderSpec {
    fn default() -> Self {
        NandAdderSpec {
            bits: 3,
            output_load: 20e-15,
            drive: 1.0,
        }
    }
}

/// A generated NAND-only ripple-carry adder.
#[derive(Debug)]
pub struct NandRippleAdder {
    /// The gate-level netlist.
    pub netlist: Netlist,
    /// Operand A inputs, LSB first.
    pub a: Vec<NetId>,
    /// Operand B inputs, LSB first.
    pub b: Vec<NetId>,
    /// Sum outputs, LSB first.
    pub sum: Vec<NetId>,
    /// Carry-out.
    pub cout: NetId,
}

impl NandRippleAdder {
    /// Builds the adder; input declaration order matches
    /// [`crate::adder::RippleAdder`] (a bits then b bits, LSB first).
    ///
    /// # Errors
    ///
    /// Propagates netlist construction errors.
    pub fn new(spec: &NandAdderSpec) -> Result<Self, NetlistError> {
        assert!(spec.bits >= 1, "adder needs at least one bit");
        let n = spec.bits;
        let mut nl = Netlist::new("nand_ripple_adder");
        let a: Vec<NetId> = (0..n)
            .map(|i| nl.add_net(&format!("a{i}")))
            .collect::<Result<_, _>>()?;
        let b: Vec<NetId> = (0..n)
            .map(|i| nl.add_net(&format!("b{i}")))
            .collect::<Result<_, _>>()?;
        for &net in a.iter().chain(&b) {
            nl.mark_primary_input(net)?;
        }
        // The grounded initial carry: c0 = 0. The nine-NAND FA needs a
        // carry input; feed the constant.
        let c0 = nl.add_net("c0")?;
        nl.tie_net(c0, Logic::Zero)?;

        let mut carry = c0;
        let mut sum = Vec::with_capacity(n);
        for i in 0..n {
            let (s, cout) =
                nand_full_adder(&mut nl, &format!("nfa{i}"), a[i], b[i], carry, spec.drive)?;
            nl.add_extra_cap(s, spec.output_load);
            nl.mark_primary_output(s);
            sum.push(s);
            carry = cout;
        }
        nl.add_extra_cap(carry, spec.output_load);
        nl.mark_primary_output(carry);
        Ok(NandRippleAdder {
            netlist: nl,
            a,
            b,
            sum,
            cout: carry,
        })
    }

    /// Word width.
    pub fn bits(&self) -> usize {
        self.a.len()
    }

    /// Primary-input logic levels for operands `(a, b)`.
    pub fn input_values(&self, a: u64, b: u64) -> Vec<Logic> {
        let n = self.bits() as u32;
        let mut v = bits_lsb_first(a, n);
        v.extend(bits_lsb_first(b, n));
        v
    }

    /// Decodes the sum (including carry-out) from evaluated net values.
    pub fn decode_sum(&self, values: &[Logic]) -> Option<u64> {
        let mut out = 0u64;
        for (k, &net) in self.sum.iter().enumerate() {
            out |= (values[net.index()].to_bool()? as u64) << k;
        }
        out |= (values[self.cout.index()].to_bool()? as u64) << self.bits();
        Some(out)
    }
}

/// The nine-NAND2 full adder; returns `(sum, carry_out)`.
///
/// Structure: `t1 = !(a·b)`; the XOR half `t4 = a ⊕ b` from three more
/// NANDs; then the same trick against `ci`, with
/// `cout = !(t1 · t5) = a·b + ci·(a ⊕ b)`.
pub fn nand_full_adder(
    nl: &mut Netlist,
    prefix: &str,
    a: NetId,
    b: NetId,
    ci: NetId,
    drive: f64,
) -> Result<(NetId, NetId), NetlistError> {
    let mut gate_idx = 0usize;
    let mut nand = |nl: &mut Netlist, x: NetId, y: NetId| -> Result<NetId, NetlistError> {
        let out = nl.add_net(&format!("{prefix}_t{gate_idx}"))?;
        nl.add_cell(
            &format!("{prefix}_g{gate_idx}"),
            CellKind::Nand2,
            vec![x, y],
            out,
            drive,
        )?;
        gate_idx += 1;
        Ok(out)
    };
    let t1 = nand(nl, a, b)?;
    let t2 = nand(nl, a, t1)?;
    let t3 = nand(nl, b, t1)?;
    let t4 = nand(nl, t2, t3)?; // a ^ b
    let t5 = nand(nl, t4, ci)?;
    let t6 = nand(nl, t4, t5)?;
    let t7 = nand(nl, ci, t5)?;
    let s = nand(nl, t6, t7)?; // a ^ b ^ ci
    let cout = nand(nl, t1, t5)?;
    Ok((s, cout))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtk_num::prng::Xoshiro256pp;

    #[test]
    fn three_bit_nand_adder_is_exhaustively_correct() {
        let add = NandRippleAdder::new(&NandAdderSpec::default()).unwrap();
        for a in 0..8u64 {
            for b in 0..8u64 {
                let v = add.netlist.evaluate(&add.input_values(a, b)).unwrap();
                assert_eq!(add.decode_sum(&v), Some(a + b), "{a}+{b}");
            }
        }
    }

    #[test]
    fn structure() {
        let add = NandRippleAdder::new(&NandAdderSpec::default()).unwrap();
        // 9 NAND2s per bit, 4 transistors each.
        assert_eq!(add.netlist.cells().len(), 27);
        assert_eq!(add.netlist.total_transistors(), 27 * 4);
    }

    #[test]
    fn wide_nand_adder_matches_integer_addition() {
        let add = NandRippleAdder::new(&NandAdderSpec {
            bits: 6,
            ..NandAdderSpec::default()
        })
        .unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(0x4A);
        for _ in 0..64 {
            let a = rng.next_below(64);
            let b = rng.next_below(64);
            let v = add.netlist.evaluate(&add.input_values(a, b)).unwrap();
            assert_eq!(add.decode_sum(&v), Some(a + b), "{a}+{b}");
        }
    }
}
