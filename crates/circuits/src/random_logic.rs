//! Seeded random combinational blocks.
//!
//! The paper's tool exists because "complicated logic blocks" make
//! exhaustive SPICE impossible; random DAGs of library cells give the
//! test-suite (and the scaling studies) an endless supply of valid
//! combinational MTCMOS blocks with irregular discharge patterns —
//! unlike the hand-built arithmetic circuits, nothing about them is
//! symmetric.

use mtk_netlist::cell::CellKind;
use mtk_netlist::netlist::{NetId, Netlist};
use mtk_netlist::NetlistError;
use mtk_num::prng::Xoshiro256pp;

/// Parameters of a random combinational block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomLogicSpec {
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of gates.
    pub gates: usize,
    /// RNG seed (same seed → identical netlist).
    pub seed: u64,
    /// Explicit load on each primary output, farads.
    pub output_load: f64,
    /// Drive-strength multiplier of every cell.
    pub drive: f64,
}

impl Default for RandomLogicSpec {
    fn default() -> Self {
        RandomLogicSpec {
            inputs: 8,
            gates: 40,
            seed: 1,
            output_load: 10e-15,
            drive: 1.0,
        }
    }
}

/// A generated random block.
#[derive(Debug)]
pub struct RandomLogic {
    /// The gate-level netlist (guaranteed acyclic: gate `k` only reads
    /// inputs and outputs of gates `< k`).
    pub netlist: Netlist,
    /// Primary inputs.
    pub inputs: Vec<NetId>,
    /// Primary outputs (nets with no fanout).
    pub outputs: Vec<NetId>,
}

impl RandomLogic {
    /// Builds a random block.
    ///
    /// # Errors
    ///
    /// Propagates netlist construction errors (indicates a generator bug).
    pub fn new(spec: &RandomLogicSpec) -> Result<Self, NetlistError> {
        assert!(spec.inputs >= 1, "need at least one input");
        assert!(spec.gates >= 1, "need at least one gate");
        let mut rng = Xoshiro256pp::seed_from_u64(spec.seed);
        let mut nl = Netlist::new("random_logic");
        let inputs: Vec<NetId> = (0..spec.inputs)
            .map(|i| nl.add_net(&format!("in{i}")))
            .collect::<Result<_, _>>()?;
        for &ni in &inputs {
            nl.mark_primary_input(ni)?;
        }
        // Cells that can be driven by arbitrary prior nets (the mirror
        // cells are excluded: MirrorSumBar is only complementary when
        // fed a true carry-bar).
        let kinds = [
            CellKind::Inv,
            CellKind::Nand2,
            CellKind::Nand3,
            CellKind::Nor2,
            CellKind::Nor3,
            CellKind::Aoi21,
            CellKind::Oai21,
            CellKind::Aoi22,
            CellKind::Oai22,
        ];
        let mut pool = inputs.clone();
        for g in 0..spec.gates {
            let kind = kinds[rng.next_index(kinds.len())];
            let ins: Vec<NetId> = (0..kind.n_inputs())
                .map(|_| pool[rng.next_index(pool.len())])
                .collect();
            let out = nl.add_net(&format!("g{g}_y"))?;
            nl.add_cell(&format!("g{g}"), kind, ins, out, spec.drive)?;
            pool.push(out);
        }
        // Outputs: driven nets nobody reads.
        let outputs: Vec<NetId> = nl
            .net_ids()
            .filter(|&ni| nl.driver_of(ni).is_some() && nl.fanout_of(ni).is_empty())
            .collect();
        for &o in &outputs {
            nl.add_extra_cap(o, spec.output_load);
            nl.mark_primary_output(o);
        }
        Ok(RandomLogic {
            netlist: nl,
            inputs,
            outputs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtk_netlist::logic::{bits_lsb_first, Logic};

    #[test]
    fn generation_is_deterministic() {
        let a = RandomLogic::new(&RandomLogicSpec::default()).unwrap();
        let b = RandomLogic::new(&RandomLogicSpec::default()).unwrap();
        assert_eq!(a.netlist.cells().len(), b.netlist.cells().len());
        for (ca, cb) in a.netlist.cells().iter().zip(b.netlist.cells()) {
            assert_eq!(ca, cb);
        }
        let c = RandomLogic::new(&RandomLogicSpec {
            seed: 2,
            ..RandomLogicSpec::default()
        })
        .unwrap();
        assert!(
            a.netlist
                .cells()
                .iter()
                .zip(c.netlist.cells())
                .any(|(x, y)| x != y),
            "different seeds should differ"
        );
    }

    #[test]
    fn blocks_are_acyclic_and_evaluate() {
        for seed in 0..5 {
            let rl = RandomLogic::new(&RandomLogicSpec {
                seed,
                gates: 60,
                ..RandomLogicSpec::default()
            })
            .unwrap();
            assert!(rl.netlist.topo_order().is_ok());
            assert!(!rl.outputs.is_empty());
            let vals = rl.netlist.evaluate(&bits_lsb_first(0b10110101, 8)).unwrap();
            // Every net is defined (no X) for definite inputs.
            assert!(vals.iter().all(|v| v.is_known()));
        }
    }

    /// Evaluation is a pure function of the inputs.
    #[test]
    fn evaluation_is_deterministic() {
        let mut rng = Xoshiro256pp::seed_from_u64(0xC1);
        for _ in 0..32 {
            let seed = rng.next_below(20);
            let v = rng.next_below(256);
            let rl = RandomLogic::new(&RandomLogicSpec {
                seed,
                ..RandomLogicSpec::default()
            })
            .unwrap();
            let a = rl.netlist.evaluate(&bits_lsb_first(v, 8)).unwrap();
            let b = rl.netlist.evaluate(&bits_lsb_first(v, 8)).unwrap();
            assert_eq!(a, b);
        }
    }

    /// Inverting one input can only change nets in its fanout cone —
    /// sanity of the dependency structure.
    #[test]
    fn single_input_flip_is_contained() {
        let mut rng = Xoshiro256pp::seed_from_u64(0xC2);
        for _ in 0..32 {
            let seed = rng.next_below(10);
            let bit = rng.next_below(8) as u32;
            let rl = RandomLogic::new(&RandomLogicSpec {
                seed,
                ..RandomLogicSpec::default()
            })
            .unwrap();
            let base = rl.netlist.evaluate(&bits_lsb_first(0, 8)).unwrap();
            let flipped = rl.netlist.evaluate(&bits_lsb_first(1 << bit, 8)).unwrap();
            // The flipped input net itself must differ; all primary inputs
            // other than `bit` must not.
            for (k, &ni) in rl.inputs.iter().enumerate() {
                if k as u32 == bit {
                    assert_ne!(base[ni.index()], flipped[ni.index()]);
                } else {
                    assert_eq!(base[ni.index()], flipped[ni.index()]);
                }
            }
            let _ = Logic::X;
        }
    }
}
