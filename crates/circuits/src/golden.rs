//! Golden `.mtk` exports of the built-in generators.
//!
//! Each entry pairs a file stem (`adder3` → `examples/adder3.mtk`) with
//! the [`Design`] the generator produces, including the technology the
//! paper ran that circuit under and, where the paper names specific
//! stimulus vectors, those vectors. The `mtk gen` subcommand serializes
//! these; CI regenerates them and fails on any diff, so the files on
//! disk are pinned to the generators (and, transitively, the writer's
//! canonical form).

use crate::adder::{AdderSpec, ChainedAdder, RippleAdder};
use crate::alu::{AluOp, AluSlice, AluSpec};
use crate::multiplier::{ArrayMultiplier, MultiplierSpec};
use crate::nand_adder::{NandAdderSpec, NandRippleAdder};
use crate::random_logic::{RandomLogic, RandomLogicSpec};
use crate::tree::InverterTree;
use crate::vectors::{multiplier_vector_a, multiplier_vector_b, tree_rising_input, VectorPair};
use mtk_fe::{Design, Stimulus};
use mtk_netlist::logic::bits_lsb_first;
use mtk_netlist::tech::Technology;

/// Converts a packed [`VectorPair`] into a [`Stimulus`] over `width`
/// primary inputs (LSB first — matching every generator's input
/// declaration order).
pub fn stimulus_of(pair: VectorPair, width: u32) -> Stimulus {
    Stimulus {
        from: bits_lsb_first(pair.from, width),
        to: bits_lsb_first(pair.to, width),
    }
}

/// The generator catalog: `(file stem, one-line description)` in the
/// order [`golden_designs`] produces them. This is the **single source
/// of truth** consumed by both the `mtk gen` listing and the
/// documentation's generator table — keeping the CLI help and the docs
/// from drifting apart.
pub fn generator_catalog() -> Vec<(&'static str, &'static str)> {
    vec![
        ("adder3", "the paper's 3-bit mirror-adder (Fig 12), 0.7 um"),
        ("nand_adder3", "NAND-only 3-bit adder, 0.7 um"),
        (
            "invtree",
            "Fig 4 inverter tree with its rising-input stimulus, 0.7 um",
        ),
        (
            "mul8",
            "8x8 carry-save multiplier (Fig 6) with the paper's vectors A and B, 0.3 um",
        ),
        ("rand8x40", "default seeded random block, 0.7 um"),
        ("adder32", "flat 32-bit mirror-adder, 0.7 um"),
        (
            "adder64",
            "hierarchical 64-bit adder: two chained 32-bit module instances, 0.7 um",
        ),
        (
            "mul16",
            "16x16 carry-save multiplier with vectors A and B scaled to 16 bits, 0.3 um",
        ),
        (
            "alu4",
            "4-bit AND/OR/XOR/ADD ALU slice with per-opcode stimulus vectors, 0.7 um",
        ),
    ]
}

/// The golden designs, as `(file stem, design)` pairs — one per
/// [`generator_catalog`] entry, in the same order.
pub fn golden_designs() -> Vec<(&'static str, Design)> {
    let adder = RippleAdder::paper();
    let nand_adder =
        NandRippleAdder::new(&NandAdderSpec::default()).expect("generator is self-consistent");
    let tree = InverterTree::paper();
    let tree_width = tree.netlist.primary_inputs().len() as u32;
    let mul = ArrayMultiplier::paper();
    let mul_width = mul.netlist.primary_inputs().len() as u32;
    let rand = RandomLogic::new(&RandomLogicSpec::default()).expect("generator is self-consistent");
    let adder32 = RippleAdder::new(&AdderSpec {
        bits: 32,
        ..AdderSpec::default()
    })
    .expect("generator is self-consistent");
    let adder64 = ChainedAdder::new(
        &AdderSpec {
            bits: 64,
            ..AdderSpec::default()
        },
        32,
    )
    .expect("generator is self-consistent");
    let mul16 = ArrayMultiplier::new(&MultiplierSpec {
        bits: 16,
        ..MultiplierSpec::default()
    })
    .expect("generator is self-consistent");
    let mul16_width = mul16.netlist.primary_inputs().len() as u32;
    let alu = AluSlice::new(&AluSpec::default()).expect("generator is self-consistent");
    // Stimuli exercising mutually-exclusive functional units: the same
    // operand swing under a logic opcode and under ADD.
    let alu_vectors = vec![
        Stimulus {
            from: alu.input_values(0, 0, AluOp::And),
            to: alu.input_values(0xF, 0x9, AluOp::And),
        },
        Stimulus {
            from: alu.input_values(0, 0, AluOp::Add),
            to: alu.input_values(0xF, 0x9, AluOp::Add),
        },
    ];
    vec![
        ("adder3", Design::new(adder.netlist, Technology::l07())),
        (
            "nand_adder3",
            Design::new(nand_adder.netlist, Technology::l07()),
        ),
        (
            "invtree",
            Design::new(tree.netlist, Technology::l07())
                .with_vectors(vec![stimulus_of(tree_rising_input(), tree_width)]),
        ),
        (
            "mul8",
            Design::new(mul.netlist, Technology::l03()).with_vectors(vec![
                stimulus_of(multiplier_vector_a(), mul_width),
                stimulus_of(multiplier_vector_b(), mul_width),
            ]),
        ),
        ("rand8x40", Design::new(rand.netlist, Technology::l07())),
        ("adder32", Design::new(adder32.netlist, Technology::l07())),
        ("adder64", Design::new(adder64.netlist, Technology::l07())),
        (
            "mul16",
            Design::new(mul16.netlist, Technology::l03()).with_vectors(vec![
                stimulus_of(
                    VectorPair::from_operands((0, 0), (0xFFFF, 0x8001), 16),
                    mul16_width,
                ),
                stimulus_of(
                    VectorPair::from_operands((0x7FFF, 0x8001), (0xFFFF, 0x8001), 16),
                    mul16_width,
                ),
            ]),
        ),
        (
            "alu4",
            Design::new(alu.netlist, Technology::l07()).with_vectors(alu_vectors),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtk_netlist::logic::Logic;

    #[test]
    fn stems_are_unique_and_designs_round_trip() {
        let designs = golden_designs();
        assert_eq!(designs.len(), 9);
        let mut stems: Vec<_> = designs.iter().map(|(s, _)| *s).collect();
        stems.sort_unstable();
        stems.dedup();
        assert_eq!(stems.len(), 9, "duplicate golden stems");
        for (stem, design) in &designs {
            let text = design.to_mtk();
            let parsed =
                mtk_fe::parse_str(&text, &format!("{stem}.mtk")).expect("golden must parse");
            assert_eq!(parsed.netlist, design.netlist, "{stem}: netlist round trip");
            assert_eq!(parsed.tech, design.tech, "{stem}: tech round trip");
            assert_eq!(parsed.vectors, design.vectors, "{stem}: vector round trip");
            assert_eq!(
                parsed.netlist.fingerprint(),
                design.netlist.fingerprint(),
                "{stem}: fingerprint identity"
            );
            assert_eq!(parsed.to_mtk(), text, "{stem}: canonical fixpoint");
        }
    }

    #[test]
    fn catalog_matches_designs_exactly() {
        // The catalog drives `mtk gen` help and the docs; if it drifts
        // from the actual designs, both lie.
        let catalog = generator_catalog();
        let designs = golden_designs();
        assert_eq!(
            catalog.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            designs.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            "generator_catalog and golden_designs disagree"
        );
        for (_, desc) in &catalog {
            assert!(!desc.is_empty());
        }
    }

    #[test]
    fn multiplier_vectors_match_the_paper() {
        let designs = golden_designs();
        let (_, mul) = designs.iter().find(|(s, _)| *s == "mul8").unwrap();
        assert_eq!(mul.vectors.len(), 2);
        // Vector A starts from all-zero operands.
        assert!(mul.vectors[0].from.iter().all(|&l| l == Logic::Zero));
        assert_eq!(mul.vectors[0].from.len(), 16);
    }

    #[test]
    fn stimulus_of_is_lsb_first() {
        let s = stimulus_of(VectorPair::new(0b01, 0b10), 2);
        assert_eq!(s.from, vec![Logic::One, Logic::Zero]);
        assert_eq!(s.to, vec![Logic::Zero, Logic::One]);
    }
}
