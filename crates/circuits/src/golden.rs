//! Golden `.mtk` exports of the built-in generators.
//!
//! Each entry pairs a file stem (`adder3` → `examples/adder3.mtk`) with
//! the [`Design`] the generator produces, including the technology the
//! paper ran that circuit under and, where the paper names specific
//! stimulus vectors, those vectors. The `mtk gen` subcommand serializes
//! these; CI regenerates them and fails on any diff, so the files on
//! disk are pinned to the generators (and, transitively, the writer's
//! canonical form).

use crate::adder::RippleAdder;
use crate::multiplier::ArrayMultiplier;
use crate::nand_adder::{NandAdderSpec, NandRippleAdder};
use crate::random_logic::{RandomLogic, RandomLogicSpec};
use crate::tree::InverterTree;
use crate::vectors::{multiplier_vector_a, multiplier_vector_b, tree_rising_input, VectorPair};
use mtk_fe::{Design, Stimulus};
use mtk_netlist::logic::bits_lsb_first;
use mtk_netlist::tech::Technology;

/// Converts a packed [`VectorPair`] into a [`Stimulus`] over `width`
/// primary inputs (LSB first — matching every generator's input
/// declaration order).
pub fn stimulus_of(pair: VectorPair, width: u32) -> Stimulus {
    Stimulus {
        from: bits_lsb_first(pair.from, width),
        to: bits_lsb_first(pair.to, width),
    }
}

/// The golden designs, as `(file stem, design)` pairs.
///
/// * `adder3` — the paper's 3-bit mirror-adder (Fig 12), 0.7 µm.
/// * `nand_adder3` — the NAND-only 3-bit adder, 0.7 µm.
/// * `invtree` — the Fig 4 inverter tree with its rising-input
///   stimulus, 0.7 µm.
/// * `mul8` — the 8×8 carry-save multiplier (Fig 6) with the paper's
///   vectors A and B, 0.3 µm.
/// * `rand8x40` — the default seeded random block, 0.7 µm.
pub fn golden_designs() -> Vec<(&'static str, Design)> {
    let adder = RippleAdder::paper();
    let nand_adder =
        NandRippleAdder::new(&NandAdderSpec::default()).expect("generator is self-consistent");
    let tree = InverterTree::paper();
    let tree_width = tree.netlist.primary_inputs().len() as u32;
    let mul = ArrayMultiplier::paper();
    let mul_width = mul.netlist.primary_inputs().len() as u32;
    let rand = RandomLogic::new(&RandomLogicSpec::default()).expect("generator is self-consistent");
    vec![
        ("adder3", Design::new(adder.netlist, Technology::l07())),
        (
            "nand_adder3",
            Design::new(nand_adder.netlist, Technology::l07()),
        ),
        (
            "invtree",
            Design::new(tree.netlist, Technology::l07())
                .with_vectors(vec![stimulus_of(tree_rising_input(), tree_width)]),
        ),
        (
            "mul8",
            Design::new(mul.netlist, Technology::l03()).with_vectors(vec![
                stimulus_of(multiplier_vector_a(), mul_width),
                stimulus_of(multiplier_vector_b(), mul_width),
            ]),
        ),
        ("rand8x40", Design::new(rand.netlist, Technology::l07())),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtk_netlist::logic::Logic;

    #[test]
    fn stems_are_unique_and_designs_round_trip() {
        let designs = golden_designs();
        assert_eq!(designs.len(), 5);
        let mut stems: Vec<_> = designs.iter().map(|(s, _)| *s).collect();
        stems.sort_unstable();
        stems.dedup();
        assert_eq!(stems.len(), 5, "duplicate golden stems");
        for (stem, design) in &designs {
            let text = design.to_mtk();
            let parsed =
                mtk_fe::parse_str(&text, &format!("{stem}.mtk")).expect("golden must parse");
            assert_eq!(parsed.netlist, design.netlist, "{stem}: netlist round trip");
            assert_eq!(parsed.tech, design.tech, "{stem}: tech round trip");
            assert_eq!(parsed.vectors, design.vectors, "{stem}: vector round trip");
            assert_eq!(
                parsed.netlist.fingerprint(),
                design.netlist.fingerprint(),
                "{stem}: fingerprint identity"
            );
            assert_eq!(parsed.to_mtk(), text, "{stem}: canonical fixpoint");
        }
    }

    #[test]
    fn multiplier_vectors_match_the_paper() {
        let designs = golden_designs();
        let (_, mul) = designs.iter().find(|(s, _)| *s == "mul8").unwrap();
        assert_eq!(mul.vectors.len(), 2);
        // Vector A starts from all-zero operands.
        assert!(mul.vectors[0].from.iter().all(|&l| l == Logic::Zero));
        assert_eq!(mul.vectors[0].from.len(), 16);
    }

    #[test]
    fn stimulus_of_is_lsb_first() {
        let s = stimulus_of(VectorPair::new(0b01, 0b10), 2);
        assert_eq!(s.from, vec![Logic::One, Logic::Zero]);
        assert_eq!(s.to, vec![Logic::Zero, Logic::One]);
    }
}
