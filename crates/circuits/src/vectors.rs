//! Input-vector utilities.
//!
//! The paper's central observation (§2.4, §4) is that MTCMOS worst-case
//! delay is *input-vector dependent*: two transitions with identical
//! conventional-CMOS delay can differ wildly under a shared sleep
//! transistor. These helpers enumerate and name the vector transitions
//! the experiments sweep.

/// A transition between two input vectors applied to a circuit's
/// operand inputs.
///
/// For a two-operand circuit (adder, multiplier), `from`/`to` pack both
/// operands: low bits operand A/X, high bits operand B/Y, as produced by
/// [`VectorPair::pack`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VectorPair {
    /// Input vector before the transition.
    pub from: u64,
    /// Input vector after the transition.
    pub to: u64,
}

impl VectorPair {
    /// Creates a transition.
    pub fn new(from: u64, to: u64) -> Self {
        VectorPair { from, to }
    }

    /// Packs two operands of `bits` width each into one vector word
    /// (A in the low bits).
    pub fn pack(a: u64, b: u64, bits: u32) -> u64 {
        debug_assert!(bits <= 32, "pack supports up to 32-bit operands");
        (b << bits) | (a & ((1u64 << bits) - 1))
    }

    /// Unpacks a vector word into `(a, b)` operands of `bits` width.
    pub fn unpack(v: u64, bits: u32) -> (u64, u64) {
        let mask = (1u64 << bits) - 1;
        (v & mask, (v >> bits) & mask)
    }

    /// A transition between two operand pairs.
    pub fn from_operands((a0, b0): (u64, u64), (a1, b1): (u64, u64), bits: u32) -> Self {
        VectorPair::new(Self::pack(a0, b0, bits), Self::pack(a1, b1, bits))
    }

    /// Whether a particular input bit changes in this transition.
    pub fn bit_changes(&self, bit: u32) -> bool {
        ((self.from ^ self.to) >> bit) & 1 == 1
    }

    /// Number of changing input bits.
    pub fn hamming_distance(&self) -> u32 {
        (self.from ^ self.to).count_ones()
    }
}

/// All `2^bits × 2^bits` vector transitions over a `bits`-wide input
/// space — the paper's exhaustive 3-bit-adder experiment enumerates
/// `total_bits = 6`, i.e. 4096 transitions (§6.2).
pub fn exhaustive_transitions(total_bits: u32) -> Vec<VectorPair> {
    assert!(total_bits <= 16, "exhaustive enumeration capped at 16 bits");
    let n = 1u64 << total_bits;
    let mut out = Vec::with_capacity((n * n) as usize);
    for from in 0..n {
        for to in 0..n {
            out.push(VectorPair::new(from, to));
        }
    }
    out
}

/// The paper's multiplier **vector A** (larger currents): many internal
/// cells transition at once —
/// `(x: 0000 0000, y: 0000 0000) → (x: 1111 1111, y: 1000 0001)`.
pub fn multiplier_vector_a() -> VectorPair {
    VectorPair::from_operands((0x00, 0x00), (0xFF, 0x81), 8)
}

/// The paper's multiplier **vector B** (smaller currents): a rippling
/// effect with few cells discharging simultaneously —
/// `(x: 0111 1111, y: 1000 0001) → (x: 1111 1111, y: 1000 0001)`.
pub fn multiplier_vector_b() -> VectorPair {
    VectorPair::from_operands((0x7F, 0x81), (0xFF, 0x81), 8)
}

/// The inverter-tree stimulus: input 0 → 1, "especially slow because in
/// the third stage all nine inverters are discharging" (§3).
pub fn tree_rising_input() -> VectorPair {
    VectorPair::new(0, 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        let v = VectorPair::pack(0x2A, 0x15, 6);
        assert_eq!(VectorPair::unpack(v, 6), (0x2A, 0x15));
        let v8 = VectorPair::pack(0xFF, 0x81, 8);
        assert_eq!(VectorPair::unpack(v8, 8), (0xFF, 0x81));
    }

    #[test]
    fn exhaustive_count_matches_paper() {
        // 2^6 * 2^6 = 4096 possible vectors for the 3-bit adder.
        let all = exhaustive_transitions(6);
        assert_eq!(all.len(), 4096);
        // First and last entries.
        assert_eq!(all[0], VectorPair::new(0, 0));
        assert_eq!(all[4095], VectorPair::new(63, 63));
    }

    #[test]
    fn named_vectors_match_paper() {
        let a = multiplier_vector_a();
        assert_eq!(VectorPair::unpack(a.from, 8), (0x00, 0x00));
        assert_eq!(VectorPair::unpack(a.to, 8), (0xFF, 0x81));
        let b = multiplier_vector_b();
        assert_eq!(VectorPair::unpack(b.from, 8), (0x7F, 0x81));
        assert_eq!(VectorPair::unpack(b.to, 8), (0xFF, 0x81));
        // Vector A flips far more input bits than B.
        assert!(a.hamming_distance() > b.hamming_distance());
    }

    #[test]
    fn bit_change_queries() {
        let v = VectorPair::new(0b0001, 0b0100);
        assert!(v.bit_changes(0));
        assert!(v.bit_changes(2));
        assert!(!v.bit_changes(1));
        assert_eq!(v.hamming_distance(), 2);
    }

    #[test]
    fn tree_stimulus() {
        assert_eq!(tree_rising_input(), VectorPair::new(0, 1));
    }
}
