//! Numerical substrate for the MTCMOS reproduction suite.
//!
//! This crate provides the small set of numerical tools the rest of the
//! workspace is built on:
//!
//! * [`sparse`] — a triplet (coordinate) sparse-matrix builder and a sparse
//!   LU factorization with partial pivoting, used by the MNA circuit solver
//!   in `mtk-spice`.
//! * [`dense`] — a dense column-major matrix with LU factorization, used as
//!   a reference implementation and for small systems.
//! * [`ordering`] — reverse Cuthill–McKee bandwidth reduction for sparse
//!   factorizations.
//! * [`roots`] — safeguarded scalar root finding (Newton with bisection
//!   fallback, and Brent's method), used by the virtual-ground equilibrium
//!   solver in `mtk-core`.
//! * [`waveform`] — piecewise-linear waveforms with threshold-crossing
//!   queries and propagation-delay measurement, the common currency between
//!   the SPICE engine and the switch-level simulator.
//! * [`prng`] — vendored SplitMix64 / xoshiro256++ generators with
//!   splittable streams, so the workspace needs no external `rand`
//!   dependency and parallel vector searches stay deterministic.
//!
//! # Examples
//!
//! Solving a small linear system through the sparse path:
//!
//! ```
//! use mtk_num::sparse::Triplets;
//!
//! let mut a = Triplets::new(2);
//! a.add(0, 0, 2.0);
//! a.add(0, 1, 1.0);
//! a.add(1, 0, 1.0);
//! a.add(1, 1, 3.0);
//! let lu = a.factor().unwrap();
//! let x = lu.solve(&[5.0, 10.0]).unwrap();
//! assert!((x[0] - 1.0).abs() < 1e-12);
//! assert!((x[1] - 3.0).abs() < 1e-12);
//! ```

pub mod dense;
pub mod ordering;
pub mod prng;
pub mod roots;
pub mod sparse;
pub mod waveform;

use std::error::Error;
use std::fmt;

/// Errors produced by the numerical routines in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum NumError {
    /// A matrix factorization encountered a pivot smaller than the
    /// tolerance; the system is singular or numerically near-singular.
    SingularMatrix {
        /// Elimination step at which the zero pivot appeared.
        step: usize,
    },
    /// A right-hand side or index had a size inconsistent with the matrix.
    DimensionMismatch {
        /// Size the operation expected.
        expected: usize,
        /// Size the caller provided.
        actual: usize,
    },
    /// An iterative method exhausted its iteration budget.
    NoConvergence {
        /// Number of iterations performed before giving up.
        iterations: usize,
        /// Residual magnitude at the final iterate.
        residual: f64,
    },
    /// A bracketing method was given endpoints that do not bracket a root.
    NoBracket {
        /// Function value at the lower endpoint.
        f_lo: f64,
        /// Function value at the upper endpoint.
        f_hi: f64,
    },
    /// An argument was outside the routine's domain (NaN, negative size, …).
    InvalidArgument(String),
}

impl fmt::Display for NumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumError::SingularMatrix { step } => {
                write!(f, "matrix is singular at elimination step {step}")
            }
            NumError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            NumError::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "no convergence after {iterations} iterations (residual {residual:.3e})"
            ),
            NumError::NoBracket { f_lo, f_hi } => write!(
                f,
                "endpoints do not bracket a root (f(lo)={f_lo:.3e}, f(hi)={f_hi:.3e})"
            ),
            NumError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl Error for NumError {}

/// Result alias used throughout this crate.
pub type Result<T> = std::result::Result<T, NumError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_nonempty() {
        let errs = [
            NumError::SingularMatrix { step: 3 },
            NumError::DimensionMismatch {
                expected: 4,
                actual: 2,
            },
            NumError::NoConvergence {
                iterations: 50,
                residual: 1e-3,
            },
            NumError::NoBracket {
                f_lo: 1.0,
                f_hi: 2.0,
            },
            NumError::InvalidArgument("x".into()),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
            assert!(!format!("{e:?}").is_empty());
        }
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NumError>();
    }
}
